file(REMOVE_RECURSE
  "CMakeFiles/msem_workloads.dir/Art.cpp.o"
  "CMakeFiles/msem_workloads.dir/Art.cpp.o.d"
  "CMakeFiles/msem_workloads.dir/Bzip2.cpp.o"
  "CMakeFiles/msem_workloads.dir/Bzip2.cpp.o.d"
  "CMakeFiles/msem_workloads.dir/Gzip.cpp.o"
  "CMakeFiles/msem_workloads.dir/Gzip.cpp.o.d"
  "CMakeFiles/msem_workloads.dir/Mcf.cpp.o"
  "CMakeFiles/msem_workloads.dir/Mcf.cpp.o.d"
  "CMakeFiles/msem_workloads.dir/Mesa.cpp.o"
  "CMakeFiles/msem_workloads.dir/Mesa.cpp.o.d"
  "CMakeFiles/msem_workloads.dir/Registry.cpp.o"
  "CMakeFiles/msem_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/msem_workloads.dir/Vortex.cpp.o"
  "CMakeFiles/msem_workloads.dir/Vortex.cpp.o.d"
  "CMakeFiles/msem_workloads.dir/Vpr.cpp.o"
  "CMakeFiles/msem_workloads.dir/Vpr.cpp.o.d"
  "CMakeFiles/msem_workloads.dir/WorkloadLib.cpp.o"
  "CMakeFiles/msem_workloads.dir/WorkloadLib.cpp.o.d"
  "libmsem_workloads.a"
  "libmsem_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
