
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Art.cpp" "src/workloads/CMakeFiles/msem_workloads.dir/Art.cpp.o" "gcc" "src/workloads/CMakeFiles/msem_workloads.dir/Art.cpp.o.d"
  "/root/repo/src/workloads/Bzip2.cpp" "src/workloads/CMakeFiles/msem_workloads.dir/Bzip2.cpp.o" "gcc" "src/workloads/CMakeFiles/msem_workloads.dir/Bzip2.cpp.o.d"
  "/root/repo/src/workloads/Gzip.cpp" "src/workloads/CMakeFiles/msem_workloads.dir/Gzip.cpp.o" "gcc" "src/workloads/CMakeFiles/msem_workloads.dir/Gzip.cpp.o.d"
  "/root/repo/src/workloads/Mcf.cpp" "src/workloads/CMakeFiles/msem_workloads.dir/Mcf.cpp.o" "gcc" "src/workloads/CMakeFiles/msem_workloads.dir/Mcf.cpp.o.d"
  "/root/repo/src/workloads/Mesa.cpp" "src/workloads/CMakeFiles/msem_workloads.dir/Mesa.cpp.o" "gcc" "src/workloads/CMakeFiles/msem_workloads.dir/Mesa.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/msem_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/msem_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Vortex.cpp" "src/workloads/CMakeFiles/msem_workloads.dir/Vortex.cpp.o" "gcc" "src/workloads/CMakeFiles/msem_workloads.dir/Vortex.cpp.o.d"
  "/root/repo/src/workloads/Vpr.cpp" "src/workloads/CMakeFiles/msem_workloads.dir/Vpr.cpp.o" "gcc" "src/workloads/CMakeFiles/msem_workloads.dir/Vpr.cpp.o.d"
  "/root/repo/src/workloads/WorkloadLib.cpp" "src/workloads/CMakeFiles/msem_workloads.dir/WorkloadLib.cpp.o" "gcc" "src/workloads/CMakeFiles/msem_workloads.dir/WorkloadLib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/msem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
