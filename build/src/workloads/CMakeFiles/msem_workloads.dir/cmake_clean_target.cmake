file(REMOVE_RECURSE
  "libmsem_workloads.a"
)
