# Empty dependencies file for msem_workloads.
# This may be replaced when dependencies are built.
