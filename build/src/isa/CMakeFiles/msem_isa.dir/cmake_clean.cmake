file(REMOVE_RECURSE
  "CMakeFiles/msem_isa.dir/MachineInstr.cpp.o"
  "CMakeFiles/msem_isa.dir/MachineInstr.cpp.o.d"
  "libmsem_isa.a"
  "libmsem_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
