file(REMOVE_RECURSE
  "libmsem_isa.a"
)
