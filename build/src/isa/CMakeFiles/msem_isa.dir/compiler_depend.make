# Empty compiler generated dependencies file for msem_isa.
# This may be replaced when dependencies are built.
