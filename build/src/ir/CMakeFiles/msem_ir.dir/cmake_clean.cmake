file(REMOVE_RECURSE
  "CMakeFiles/msem_ir.dir/CFG.cpp.o"
  "CMakeFiles/msem_ir.dir/CFG.cpp.o.d"
  "CMakeFiles/msem_ir.dir/Cloning.cpp.o"
  "CMakeFiles/msem_ir.dir/Cloning.cpp.o.d"
  "CMakeFiles/msem_ir.dir/Dominators.cpp.o"
  "CMakeFiles/msem_ir.dir/Dominators.cpp.o.d"
  "CMakeFiles/msem_ir.dir/IR.cpp.o"
  "CMakeFiles/msem_ir.dir/IR.cpp.o.d"
  "CMakeFiles/msem_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/msem_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/msem_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/msem_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/msem_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/msem_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/msem_ir.dir/LoopBuilder.cpp.o"
  "CMakeFiles/msem_ir.dir/LoopBuilder.cpp.o.d"
  "CMakeFiles/msem_ir.dir/LoopInfo.cpp.o"
  "CMakeFiles/msem_ir.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/msem_ir.dir/Verifier.cpp.o"
  "CMakeFiles/msem_ir.dir/Verifier.cpp.o.d"
  "libmsem_ir.a"
  "libmsem_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
