
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/CFG.cpp" "src/ir/CMakeFiles/msem_ir.dir/CFG.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/CFG.cpp.o.d"
  "/root/repo/src/ir/Cloning.cpp" "src/ir/CMakeFiles/msem_ir.dir/Cloning.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/Cloning.cpp.o.d"
  "/root/repo/src/ir/Dominators.cpp" "src/ir/CMakeFiles/msem_ir.dir/Dominators.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/Dominators.cpp.o.d"
  "/root/repo/src/ir/IR.cpp" "src/ir/CMakeFiles/msem_ir.dir/IR.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/IR.cpp.o.d"
  "/root/repo/src/ir/IRBuilder.cpp" "src/ir/CMakeFiles/msem_ir.dir/IRBuilder.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/IRBuilder.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/ir/CMakeFiles/msem_ir.dir/IRPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/Interpreter.cpp" "src/ir/CMakeFiles/msem_ir.dir/Interpreter.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/Interpreter.cpp.o.d"
  "/root/repo/src/ir/LoopBuilder.cpp" "src/ir/CMakeFiles/msem_ir.dir/LoopBuilder.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/LoopBuilder.cpp.o.d"
  "/root/repo/src/ir/LoopInfo.cpp" "src/ir/CMakeFiles/msem_ir.dir/LoopInfo.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/LoopInfo.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/msem_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/msem_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/msem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
