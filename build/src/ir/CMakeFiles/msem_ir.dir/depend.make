# Empty dependencies file for msem_ir.
# This may be replaced when dependencies are built.
