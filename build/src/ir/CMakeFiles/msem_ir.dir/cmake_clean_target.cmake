file(REMOVE_RECURSE
  "libmsem_ir.a"
)
