file(REMOVE_RECURSE
  "libmsem_linalg.a"
)
