file(REMOVE_RECURSE
  "CMakeFiles/msem_linalg.dir/Matrix.cpp.o"
  "CMakeFiles/msem_linalg.dir/Matrix.cpp.o.d"
  "CMakeFiles/msem_linalg.dir/Solve.cpp.o"
  "CMakeFiles/msem_linalg.dir/Solve.cpp.o.d"
  "libmsem_linalg.a"
  "libmsem_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
