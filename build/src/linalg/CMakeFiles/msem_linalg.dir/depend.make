# Empty dependencies file for msem_linalg.
# This may be replaced when dependencies are built.
