# Empty compiler generated dependencies file for msem_support.
# This may be replaced when dependencies are built.
