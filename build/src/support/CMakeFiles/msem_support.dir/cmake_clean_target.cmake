file(REMOVE_RECURSE
  "libmsem_support.a"
)
