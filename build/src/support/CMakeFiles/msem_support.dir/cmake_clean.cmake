file(REMOVE_RECURSE
  "CMakeFiles/msem_support.dir/Env.cpp.o"
  "CMakeFiles/msem_support.dir/Env.cpp.o.d"
  "CMakeFiles/msem_support.dir/Error.cpp.o"
  "CMakeFiles/msem_support.dir/Error.cpp.o.d"
  "CMakeFiles/msem_support.dir/Format.cpp.o"
  "CMakeFiles/msem_support.dir/Format.cpp.o.d"
  "CMakeFiles/msem_support.dir/Statistics.cpp.o"
  "CMakeFiles/msem_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/msem_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/msem_support.dir/TablePrinter.cpp.o.d"
  "libmsem_support.a"
  "libmsem_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
