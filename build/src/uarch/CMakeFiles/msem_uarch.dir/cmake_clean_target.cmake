file(REMOVE_RECURSE
  "libmsem_uarch.a"
)
