# Empty compiler generated dependencies file for msem_uarch.
# This may be replaced when dependencies are built.
