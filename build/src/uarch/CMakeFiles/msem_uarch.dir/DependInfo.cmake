
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/BranchPredictor.cpp" "src/uarch/CMakeFiles/msem_uarch.dir/BranchPredictor.cpp.o" "gcc" "src/uarch/CMakeFiles/msem_uarch.dir/BranchPredictor.cpp.o.d"
  "/root/repo/src/uarch/Cache.cpp" "src/uarch/CMakeFiles/msem_uarch.dir/Cache.cpp.o" "gcc" "src/uarch/CMakeFiles/msem_uarch.dir/Cache.cpp.o.d"
  "/root/repo/src/uarch/EnergyModel.cpp" "src/uarch/CMakeFiles/msem_uarch.dir/EnergyModel.cpp.o" "gcc" "src/uarch/CMakeFiles/msem_uarch.dir/EnergyModel.cpp.o.d"
  "/root/repo/src/uarch/MachineConfig.cpp" "src/uarch/CMakeFiles/msem_uarch.dir/MachineConfig.cpp.o" "gcc" "src/uarch/CMakeFiles/msem_uarch.dir/MachineConfig.cpp.o.d"
  "/root/repo/src/uarch/OoOCore.cpp" "src/uarch/CMakeFiles/msem_uarch.dir/OoOCore.cpp.o" "gcc" "src/uarch/CMakeFiles/msem_uarch.dir/OoOCore.cpp.o.d"
  "/root/repo/src/uarch/Simulator.cpp" "src/uarch/CMakeFiles/msem_uarch.dir/Simulator.cpp.o" "gcc" "src/uarch/CMakeFiles/msem_uarch.dir/Simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/msem_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msem_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msem_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
