file(REMOVE_RECURSE
  "CMakeFiles/msem_uarch.dir/BranchPredictor.cpp.o"
  "CMakeFiles/msem_uarch.dir/BranchPredictor.cpp.o.d"
  "CMakeFiles/msem_uarch.dir/Cache.cpp.o"
  "CMakeFiles/msem_uarch.dir/Cache.cpp.o.d"
  "CMakeFiles/msem_uarch.dir/EnergyModel.cpp.o"
  "CMakeFiles/msem_uarch.dir/EnergyModel.cpp.o.d"
  "CMakeFiles/msem_uarch.dir/MachineConfig.cpp.o"
  "CMakeFiles/msem_uarch.dir/MachineConfig.cpp.o.d"
  "CMakeFiles/msem_uarch.dir/OoOCore.cpp.o"
  "CMakeFiles/msem_uarch.dir/OoOCore.cpp.o.d"
  "CMakeFiles/msem_uarch.dir/Simulator.cpp.o"
  "CMakeFiles/msem_uarch.dir/Simulator.cpp.o.d"
  "libmsem_uarch.a"
  "libmsem_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
