file(REMOVE_RECURSE
  "CMakeFiles/msem_design.dir/Doe.cpp.o"
  "CMakeFiles/msem_design.dir/Doe.cpp.o.d"
  "CMakeFiles/msem_design.dir/ParameterSpace.cpp.o"
  "CMakeFiles/msem_design.dir/ParameterSpace.cpp.o.d"
  "libmsem_design.a"
  "libmsem_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
