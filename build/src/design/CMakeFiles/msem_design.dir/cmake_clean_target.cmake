file(REMOVE_RECURSE
  "libmsem_design.a"
)
