# Empty compiler generated dependencies file for msem_design.
# This may be replaced when dependencies are built.
