file(REMOVE_RECURSE
  "CMakeFiles/msem_codegen.dir/Linker.cpp.o"
  "CMakeFiles/msem_codegen.dir/Linker.cpp.o.d"
  "CMakeFiles/msem_codegen.dir/Lowering.cpp.o"
  "CMakeFiles/msem_codegen.dir/Lowering.cpp.o.d"
  "CMakeFiles/msem_codegen.dir/PostRaScheduler.cpp.o"
  "CMakeFiles/msem_codegen.dir/PostRaScheduler.cpp.o.d"
  "CMakeFiles/msem_codegen.dir/RegAlloc.cpp.o"
  "CMakeFiles/msem_codegen.dir/RegAlloc.cpp.o.d"
  "libmsem_codegen.a"
  "libmsem_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
