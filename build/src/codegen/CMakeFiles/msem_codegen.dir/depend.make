# Empty dependencies file for msem_codegen.
# This may be replaced when dependencies are built.
