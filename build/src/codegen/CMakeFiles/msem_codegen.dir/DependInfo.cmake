
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/Linker.cpp" "src/codegen/CMakeFiles/msem_codegen.dir/Linker.cpp.o" "gcc" "src/codegen/CMakeFiles/msem_codegen.dir/Linker.cpp.o.d"
  "/root/repo/src/codegen/Lowering.cpp" "src/codegen/CMakeFiles/msem_codegen.dir/Lowering.cpp.o" "gcc" "src/codegen/CMakeFiles/msem_codegen.dir/Lowering.cpp.o.d"
  "/root/repo/src/codegen/PostRaScheduler.cpp" "src/codegen/CMakeFiles/msem_codegen.dir/PostRaScheduler.cpp.o" "gcc" "src/codegen/CMakeFiles/msem_codegen.dir/PostRaScheduler.cpp.o.d"
  "/root/repo/src/codegen/RegAlloc.cpp" "src/codegen/CMakeFiles/msem_codegen.dir/RegAlloc.cpp.o" "gcc" "src/codegen/CMakeFiles/msem_codegen.dir/RegAlloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/msem_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
