file(REMOVE_RECURSE
  "libmsem_codegen.a"
)
