
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/ConstantFold.cpp" "src/opt/CMakeFiles/msem_opt.dir/ConstantFold.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/ConstantFold.cpp.o.d"
  "/root/repo/src/opt/DeadCodeElim.cpp" "src/opt/CMakeFiles/msem_opt.dir/DeadCodeElim.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/DeadCodeElim.cpp.o.d"
  "/root/repo/src/opt/Gvn.cpp" "src/opt/CMakeFiles/msem_opt.dir/Gvn.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/Gvn.cpp.o.d"
  "/root/repo/src/opt/IfConvert.cpp" "src/opt/CMakeFiles/msem_opt.dir/IfConvert.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/IfConvert.cpp.o.d"
  "/root/repo/src/opt/Inliner.cpp" "src/opt/CMakeFiles/msem_opt.dir/Inliner.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/Inliner.cpp.o.d"
  "/root/repo/src/opt/IrScheduler.cpp" "src/opt/CMakeFiles/msem_opt.dir/IrScheduler.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/IrScheduler.cpp.o.d"
  "/root/repo/src/opt/Licm.cpp" "src/opt/CMakeFiles/msem_opt.dir/Licm.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/Licm.cpp.o.d"
  "/root/repo/src/opt/OptimizationConfig.cpp" "src/opt/CMakeFiles/msem_opt.dir/OptimizationConfig.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/OptimizationConfig.cpp.o.d"
  "/root/repo/src/opt/PassPipeline.cpp" "src/opt/CMakeFiles/msem_opt.dir/PassPipeline.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/PassPipeline.cpp.o.d"
  "/root/repo/src/opt/Prefetcher.cpp" "src/opt/CMakeFiles/msem_opt.dir/Prefetcher.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/Prefetcher.cpp.o.d"
  "/root/repo/src/opt/ReorderBlocks.cpp" "src/opt/CMakeFiles/msem_opt.dir/ReorderBlocks.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/ReorderBlocks.cpp.o.d"
  "/root/repo/src/opt/SimplifyCfg.cpp" "src/opt/CMakeFiles/msem_opt.dir/SimplifyCfg.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/SimplifyCfg.cpp.o.d"
  "/root/repo/src/opt/StrengthReduce.cpp" "src/opt/CMakeFiles/msem_opt.dir/StrengthReduce.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/StrengthReduce.cpp.o.d"
  "/root/repo/src/opt/TailDup.cpp" "src/opt/CMakeFiles/msem_opt.dir/TailDup.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/TailDup.cpp.o.d"
  "/root/repo/src/opt/Unroller.cpp" "src/opt/CMakeFiles/msem_opt.dir/Unroller.cpp.o" "gcc" "src/opt/CMakeFiles/msem_opt.dir/Unroller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/msem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
