file(REMOVE_RECURSE
  "libmsem_opt.a"
)
