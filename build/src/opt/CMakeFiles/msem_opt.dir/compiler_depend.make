# Empty compiler generated dependencies file for msem_opt.
# This may be replaced when dependencies are built.
