file(REMOVE_RECURSE
  "CMakeFiles/msem_opt.dir/ConstantFold.cpp.o"
  "CMakeFiles/msem_opt.dir/ConstantFold.cpp.o.d"
  "CMakeFiles/msem_opt.dir/DeadCodeElim.cpp.o"
  "CMakeFiles/msem_opt.dir/DeadCodeElim.cpp.o.d"
  "CMakeFiles/msem_opt.dir/Gvn.cpp.o"
  "CMakeFiles/msem_opt.dir/Gvn.cpp.o.d"
  "CMakeFiles/msem_opt.dir/IfConvert.cpp.o"
  "CMakeFiles/msem_opt.dir/IfConvert.cpp.o.d"
  "CMakeFiles/msem_opt.dir/Inliner.cpp.o"
  "CMakeFiles/msem_opt.dir/Inliner.cpp.o.d"
  "CMakeFiles/msem_opt.dir/IrScheduler.cpp.o"
  "CMakeFiles/msem_opt.dir/IrScheduler.cpp.o.d"
  "CMakeFiles/msem_opt.dir/Licm.cpp.o"
  "CMakeFiles/msem_opt.dir/Licm.cpp.o.d"
  "CMakeFiles/msem_opt.dir/OptimizationConfig.cpp.o"
  "CMakeFiles/msem_opt.dir/OptimizationConfig.cpp.o.d"
  "CMakeFiles/msem_opt.dir/PassPipeline.cpp.o"
  "CMakeFiles/msem_opt.dir/PassPipeline.cpp.o.d"
  "CMakeFiles/msem_opt.dir/Prefetcher.cpp.o"
  "CMakeFiles/msem_opt.dir/Prefetcher.cpp.o.d"
  "CMakeFiles/msem_opt.dir/ReorderBlocks.cpp.o"
  "CMakeFiles/msem_opt.dir/ReorderBlocks.cpp.o.d"
  "CMakeFiles/msem_opt.dir/SimplifyCfg.cpp.o"
  "CMakeFiles/msem_opt.dir/SimplifyCfg.cpp.o.d"
  "CMakeFiles/msem_opt.dir/StrengthReduce.cpp.o"
  "CMakeFiles/msem_opt.dir/StrengthReduce.cpp.o.d"
  "CMakeFiles/msem_opt.dir/TailDup.cpp.o"
  "CMakeFiles/msem_opt.dir/TailDup.cpp.o.d"
  "CMakeFiles/msem_opt.dir/Unroller.cpp.o"
  "CMakeFiles/msem_opt.dir/Unroller.cpp.o.d"
  "libmsem_opt.a"
  "libmsem_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
