# Empty compiler generated dependencies file for msem_model.
# This may be replaced when dependencies are built.
