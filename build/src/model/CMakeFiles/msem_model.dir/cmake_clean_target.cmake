file(REMOVE_RECURSE
  "libmsem_model.a"
)
