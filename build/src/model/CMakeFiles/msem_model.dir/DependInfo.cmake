
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/Diagnostics.cpp" "src/model/CMakeFiles/msem_model.dir/Diagnostics.cpp.o" "gcc" "src/model/CMakeFiles/msem_model.dir/Diagnostics.cpp.o.d"
  "/root/repo/src/model/LinearModel.cpp" "src/model/CMakeFiles/msem_model.dir/LinearModel.cpp.o" "gcc" "src/model/CMakeFiles/msem_model.dir/LinearModel.cpp.o.d"
  "/root/repo/src/model/Mars.cpp" "src/model/CMakeFiles/msem_model.dir/Mars.cpp.o" "gcc" "src/model/CMakeFiles/msem_model.dir/Mars.cpp.o.d"
  "/root/repo/src/model/Model.cpp" "src/model/CMakeFiles/msem_model.dir/Model.cpp.o" "gcc" "src/model/CMakeFiles/msem_model.dir/Model.cpp.o.d"
  "/root/repo/src/model/RbfNetwork.cpp" "src/model/CMakeFiles/msem_model.dir/RbfNetwork.cpp.o" "gcc" "src/model/CMakeFiles/msem_model.dir/RbfNetwork.cpp.o.d"
  "/root/repo/src/model/RegressionTree.cpp" "src/model/CMakeFiles/msem_model.dir/RegressionTree.cpp.o" "gcc" "src/model/CMakeFiles/msem_model.dir/RegressionTree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/msem_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/msem_design.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msem_support.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/msem_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/msem_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/msem_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msem_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
