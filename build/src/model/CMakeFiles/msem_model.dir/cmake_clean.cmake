file(REMOVE_RECURSE
  "CMakeFiles/msem_model.dir/Diagnostics.cpp.o"
  "CMakeFiles/msem_model.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/msem_model.dir/LinearModel.cpp.o"
  "CMakeFiles/msem_model.dir/LinearModel.cpp.o.d"
  "CMakeFiles/msem_model.dir/Mars.cpp.o"
  "CMakeFiles/msem_model.dir/Mars.cpp.o.d"
  "CMakeFiles/msem_model.dir/Model.cpp.o"
  "CMakeFiles/msem_model.dir/Model.cpp.o.d"
  "CMakeFiles/msem_model.dir/RbfNetwork.cpp.o"
  "CMakeFiles/msem_model.dir/RbfNetwork.cpp.o.d"
  "CMakeFiles/msem_model.dir/RegressionTree.cpp.o"
  "CMakeFiles/msem_model.dir/RegressionTree.cpp.o.d"
  "libmsem_model.a"
  "libmsem_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
