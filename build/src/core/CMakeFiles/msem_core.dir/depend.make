# Empty dependencies file for msem_core.
# This may be replaced when dependencies are built.
