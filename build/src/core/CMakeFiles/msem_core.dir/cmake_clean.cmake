file(REMOVE_RECURSE
  "CMakeFiles/msem_core.dir/ModelBuilder.cpp.o"
  "CMakeFiles/msem_core.dir/ModelBuilder.cpp.o.d"
  "CMakeFiles/msem_core.dir/ResponseSurface.cpp.o"
  "CMakeFiles/msem_core.dir/ResponseSurface.cpp.o.d"
  "libmsem_core.a"
  "libmsem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
