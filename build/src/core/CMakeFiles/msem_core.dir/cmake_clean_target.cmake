file(REMOVE_RECURSE
  "libmsem_core.a"
)
