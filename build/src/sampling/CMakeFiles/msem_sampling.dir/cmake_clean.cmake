file(REMOVE_RECURSE
  "CMakeFiles/msem_sampling.dir/Smarts.cpp.o"
  "CMakeFiles/msem_sampling.dir/Smarts.cpp.o.d"
  "libmsem_sampling.a"
  "libmsem_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
