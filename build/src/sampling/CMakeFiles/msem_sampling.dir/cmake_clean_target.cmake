file(REMOVE_RECURSE
  "libmsem_sampling.a"
)
