# Empty dependencies file for msem_sampling.
# This may be replaced when dependencies are built.
