file(REMOVE_RECURSE
  "libmsem_search.a"
)
