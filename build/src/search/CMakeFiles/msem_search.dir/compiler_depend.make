# Empty compiler generated dependencies file for msem_search.
# This may be replaced when dependencies are built.
