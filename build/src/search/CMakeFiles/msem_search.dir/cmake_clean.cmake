file(REMOVE_RECURSE
  "CMakeFiles/msem_search.dir/GeneticSearch.cpp.o"
  "CMakeFiles/msem_search.dir/GeneticSearch.cpp.o.d"
  "libmsem_search.a"
  "libmsem_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msem_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
