file(REMOVE_RECURSE
  "CMakeFiles/bench_multimetric.dir/bench_multimetric.cpp.o"
  "CMakeFiles/bench_multimetric.dir/bench_multimetric.cpp.o.d"
  "bench_multimetric"
  "bench_multimetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multimetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
