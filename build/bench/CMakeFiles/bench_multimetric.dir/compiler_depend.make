# Empty compiler generated dependencies file for bench_multimetric.
# This may be replaced when dependencies are built.
