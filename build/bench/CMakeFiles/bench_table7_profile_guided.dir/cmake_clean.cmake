file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_profile_guided.dir/bench_table7_profile_guided.cpp.o"
  "CMakeFiles/bench_table7_profile_guided.dir/bench_table7_profile_guided.cpp.o.d"
  "bench_table7_profile_guided"
  "bench_table7_profile_guided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_profile_guided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
