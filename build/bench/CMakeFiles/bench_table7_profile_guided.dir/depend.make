# Empty dependencies file for bench_table7_profile_guided.
# This may be replaced when dependencies are built.
