file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_speedups.dir/bench_fig7_speedups.cpp.o"
  "CMakeFiles/bench_fig7_speedups.dir/bench_fig7_speedups.cpp.o.d"
  "bench_fig7_speedups"
  "bench_fig7_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
