# Empty dependencies file for bench_fig7_speedups.
# This may be replaced when dependencies are built.
