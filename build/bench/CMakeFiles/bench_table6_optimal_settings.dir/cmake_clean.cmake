file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_optimal_settings.dir/bench_table6_optimal_settings.cpp.o"
  "CMakeFiles/bench_table6_optimal_settings.dir/bench_table6_optimal_settings.cpp.o.d"
  "bench_table6_optimal_settings"
  "bench_table6_optimal_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_optimal_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
