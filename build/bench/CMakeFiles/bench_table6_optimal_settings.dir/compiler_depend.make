# Empty compiler generated dependencies file for bench_table6_optimal_settings.
# This may be replaced when dependencies are built.
