
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table6_optimal_settings.cpp" "bench/CMakeFiles/bench_table6_optimal_settings.dir/bench_table6_optimal_settings.cpp.o" "gcc" "bench/CMakeFiles/bench_table6_optimal_settings.dir/bench_table6_optimal_settings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/msem_search.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/msem_model.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/msem_design.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/msem_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/msem_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/msem_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/msem_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/msem_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/msem_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/msem_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
