# Empty compiler generated dependencies file for bench_micro_models.
# This may be replaced when dependencies are built.
