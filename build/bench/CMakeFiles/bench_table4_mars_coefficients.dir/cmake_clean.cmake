file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_mars_coefficients.dir/bench_table4_mars_coefficients.cpp.o"
  "CMakeFiles/bench_table4_mars_coefficients.dir/bench_table4_mars_coefficients.cpp.o.d"
  "bench_table4_mars_coefficients"
  "bench_table4_mars_coefficients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_mars_coefficients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
