# Empty dependencies file for bench_table4_mars_coefficients.
# This may be replaced when dependencies are built.
