# Empty dependencies file for bench_table3_model_accuracy.
# This may be replaced when dependencies are built.
