# Empty compiler generated dependencies file for bench_fig3_unroll_icache.
# This may be replaced when dependencies are built.
