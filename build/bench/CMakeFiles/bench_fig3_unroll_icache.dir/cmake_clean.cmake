file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_unroll_icache.dir/bench_fig3_unroll_icache.cpp.o"
  "CMakeFiles/bench_fig3_unroll_icache.dir/bench_fig3_unroll_icache.cpp.o.d"
  "bench_fig3_unroll_icache"
  "bench_fig3_unroll_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_unroll_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
