# Empty dependencies file for bench_fig6_actual_vs_predicted.
# This may be replaced when dependencies are built.
