file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_actual_vs_predicted.dir/bench_fig6_actual_vs_predicted.cpp.o"
  "CMakeFiles/bench_fig6_actual_vs_predicted.dir/bench_fig6_actual_vs_predicted.cpp.o.d"
  "bench_fig6_actual_vs_predicted"
  "bench_fig6_actual_vs_predicted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_actual_vs_predicted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
