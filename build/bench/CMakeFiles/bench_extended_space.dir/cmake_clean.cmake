file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_space.dir/bench_extended_space.cpp.o"
  "CMakeFiles/bench_extended_space.dir/bench_extended_space.cpp.o.d"
  "bench_extended_space"
  "bench_extended_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
