# Empty compiler generated dependencies file for bench_extended_space.
# This may be replaced when dependencies are built.
