file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_training_size.dir/bench_fig5_training_size.cpp.o"
  "CMakeFiles/bench_fig5_training_size.dir/bench_fig5_training_size.cpp.o.d"
  "bench_fig5_training_size"
  "bench_fig5_training_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_training_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
