file(REMOVE_RECURSE
  "CMakeFiles/bench_smarts_accuracy.dir/bench_smarts_accuracy.cpp.o"
  "CMakeFiles/bench_smarts_accuracy.dir/bench_smarts_accuracy.cpp.o.d"
  "bench_smarts_accuracy"
  "bench_smarts_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smarts_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
