# Empty dependencies file for bench_smarts_accuracy.
# This may be replaced when dependencies are built.
