# Empty compiler generated dependencies file for bench_table1_table2_space.
# This may be replaced when dependencies are built.
