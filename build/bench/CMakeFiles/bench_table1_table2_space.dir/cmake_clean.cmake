file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_table2_space.dir/bench_table1_table2_space.cpp.o"
  "CMakeFiles/bench_table1_table2_space.dir/bench_table1_table2_space.cpp.o.d"
  "bench_table1_table2_space"
  "bench_table1_table2_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_table2_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
