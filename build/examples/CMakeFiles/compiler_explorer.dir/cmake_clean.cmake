file(REMOVE_RECURSE
  "CMakeFiles/compiler_explorer.dir/compiler_explorer.cpp.o"
  "CMakeFiles/compiler_explorer.dir/compiler_explorer.cpp.o.d"
  "compiler_explorer"
  "compiler_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
