# Empty compiler generated dependencies file for compiler_explorer.
# This may be replaced when dependencies are built.
