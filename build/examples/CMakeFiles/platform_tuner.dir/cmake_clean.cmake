file(REMOVE_RECURSE
  "CMakeFiles/platform_tuner.dir/platform_tuner.cpp.o"
  "CMakeFiles/platform_tuner.dir/platform_tuner.cpp.o.d"
  "platform_tuner"
  "platform_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
