# Empty compiler generated dependencies file for platform_tuner.
# This may be replaced when dependencies are built.
