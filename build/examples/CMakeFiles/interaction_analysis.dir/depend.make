# Empty dependencies file for interaction_analysis.
# This may be replaced when dependencies are built.
