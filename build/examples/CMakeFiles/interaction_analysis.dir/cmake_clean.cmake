file(REMOVE_RECURSE
  "CMakeFiles/interaction_analysis.dir/interaction_analysis.cpp.o"
  "CMakeFiles/interaction_analysis.dir/interaction_analysis.cpp.o.d"
  "interaction_analysis"
  "interaction_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interaction_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
