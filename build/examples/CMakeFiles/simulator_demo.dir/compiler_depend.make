# Empty compiler generated dependencies file for simulator_demo.
# This may be replaced when dependencies are built.
