file(REMOVE_RECURSE
  "CMakeFiles/simulator_demo.dir/simulator_demo.cpp.o"
  "CMakeFiles/simulator_demo.dir/simulator_demo.cpp.o.d"
  "simulator_demo"
  "simulator_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
