# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/uarch_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/design_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
