
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/msem_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/msem_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/msem_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
