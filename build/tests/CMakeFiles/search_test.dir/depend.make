# Empty dependencies file for search_test.
# This may be replaced when dependencies are built.
