file(REMOVE_RECURSE
  "CMakeFiles/design_test.dir/design_test.cpp.o"
  "CMakeFiles/design_test.dir/design_test.cpp.o.d"
  "design_test"
  "design_test.pdb"
  "design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
