file(REMOVE_RECURSE
  "CMakeFiles/sampling_test.dir/sampling_test.cpp.o"
  "CMakeFiles/sampling_test.dir/sampling_test.cpp.o.d"
  "sampling_test"
  "sampling_test.pdb"
  "sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
