file(REMOVE_RECURSE
  "CMakeFiles/uarch_test.dir/uarch_test.cpp.o"
  "CMakeFiles/uarch_test.dir/uarch_test.cpp.o.d"
  "uarch_test"
  "uarch_test.pdb"
  "uarch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
