# Empty compiler generated dependencies file for uarch_test.
# This may be replaced when dependencies are built.
