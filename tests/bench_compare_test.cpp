//===- tests/bench_compare_test.cpp - Regression sentinel tests -------------===//
//
// The contract of support/BenchCompare (the engine behind msem_bench_diff):
// BENCH json parsing, metric-direction classification, the noise-tolerant
// threshold split, config-drift hard failures, and the synthetic-regression
// acceptance criterion -- an injected slowdown must be flagged while the
// self-diff stays clean.
//
//===----------------------------------------------------------------------===//

#include "support/BenchCompare.h"
#include "support/FileSystem.h"
#include "support/Format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

using namespace msem;
using namespace msem::bench;

namespace {

std::string benchJson(const char *Name, double Mape, double PerSec,
                      double Seconds, int TrainN = 200) {
  return formatString(
      "{\"schema\":\"msem.bench.v1\",\"name\":\"%s\",\"build\":\"t\","
      "\"config\":{\"train_n\":%d,\"test_n\":50,\"input\":\"train\","
      "\"seed\":\"0x1324bb3\"},\"wall_seconds\":%g,"
      "\"metrics\":{\"mape.rbf\":%g,\"rows_per_s\":%g,"
      "\"fit_seconds\":%g,\"note\":\"free-form\"}}",
      Name, TrainN, Seconds, Mape, PerSec, Seconds);
}

BenchResult parse(const std::string &Text) {
  BenchResult R;
  std::string Error;
  EXPECT_TRUE(parseBenchResult(Text, "<test>", R, &Error)) << Error;
  return R;
}

TEST(BenchCompare, ParsesBenchV1) {
  BenchResult R = parse(benchJson("micro", 4.5, 1000.0, 2.0));
  EXPECT_EQ(R.Name, "micro");
  EXPECT_EQ(R.Build, "t");
  EXPECT_DOUBLE_EQ(R.WallSeconds, 2.0);
  // String metrics ("note") are skipped; three numeric metrics remain.
  EXPECT_EQ(R.Metrics.size(), 3u);
  // Config flattens deterministically, seed kept verbatim.
  ASSERT_EQ(R.Config.size(), 4u);
  EXPECT_EQ(R.Config[0], "input=train");
  EXPECT_EQ(R.Config[2], "test_n=50");
}

TEST(BenchCompare, RejectsWrongSchemaAndGarbage) {
  BenchResult R;
  std::string Error;
  EXPECT_FALSE(parseBenchResult("{\"schema\":\"msem.bench.v2\"}", "p", R,
                                &Error));
  EXPECT_NE(Error.find("unsupported schema"), std::string::npos);
  EXPECT_FALSE(parseBenchResult("not json", "p", R, &Error));
  EXPECT_FALSE(parseBenchResult(
      "{\"schema\":\"msem.bench.v1\",\"metrics\":{}}", "p", R, &Error));
  EXPECT_NE(Error.find("missing bench name"), std::string::npos);
}

TEST(BenchCompare, ClassifiesMetricDirections) {
  EXPECT_EQ(classifyMetric("mape.rbf"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(classifyMetric("fit_seconds"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(classifyMetric("latency_us"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(classifyMetric("detailedsim_cycles"),
            MetricDirection::LowerIsBetter);
  EXPECT_EQ(classifyMetric("rows_per_s"), MetricDirection::HigherIsBetter);
  EXPECT_EQ(classifyMetric("speedup.p8"), MetricDirection::HigherIsBetter);
  EXPECT_EQ(classifyMetric("throughput"), MetricDirection::HigherIsBetter);
  EXPECT_EQ(classifyMetric("instr_per_s"), MetricDirection::HigherIsBetter);
  EXPECT_EQ(classifyMetric("mystery_number"), MetricDirection::Unknown);

  EXPECT_TRUE(isTimingMetric("fit_seconds"));
  EXPECT_TRUE(isTimingMetric("rows_per_s"));
  EXPECT_TRUE(isTimingMetric("speedup.p2"));
  EXPECT_FALSE(isTimingMetric("mape.rbf"));
}

TEST(BenchCompare, SelfDiffIsClean) {
  std::vector<BenchResult> Base = {parse(benchJson("micro", 4.5, 1000, 2))};
  CompareReport R = compareBenches(Base, Base, CompareOptions());
  EXPECT_EQ(R.regressions(), 0u);
  EXPECT_EQ(R.improvements(), 0u);
  EXPECT_TRUE(R.Mismatches.empty());
  EXPECT_FALSE(R.hasFailures());
  EXPECT_EQ(R.Deltas.size(), 3u);
}

TEST(BenchCompare, FlagsInjectedRegression) {
  std::vector<BenchResult> Base = {parse(benchJson("micro", 4.5, 1000, 2))};
  // Synthetic regression: MAPE doubles (quality metric, 10% tolerance).
  std::vector<BenchResult> Cur = {parse(benchJson("micro", 9.0, 1000, 2))};
  CompareReport R = compareBenches(Base, Cur, CompareOptions());
  EXPECT_EQ(R.regressions(), 1u);
  EXPECT_TRUE(R.hasFailures());
  const MetricDelta *D = nullptr;
  for (const MetricDelta &X : R.Deltas)
    if (X.Key == "mape.rbf")
      D = &X;
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Kind, DeltaKind::Regressed);
  EXPECT_NEAR(D->RelChange, 1.0, 1e-12);
}

TEST(BenchCompare, TailQuantilesGetTheLoosestThreshold) {
  EXPECT_TRUE(isTailMetric("p99_us.open"));
  EXPECT_TRUE(isTailMetric("p95_us.closed"));
  EXPECT_TRUE(isTailMetric("latency.p99_max_us"));
  EXPECT_FALSE(isTailMetric("p50_us.closed"));     // Medians are stable.
  EXPECT_FALSE(isTailMetric("fit_seconds"));       // Timing but not tail.
  EXPECT_FALSE(isTailMetric("mape.p95"));          // Quality stays tight.

  auto tailJson = [](double P99) {
    return formatString(
        "{\"schema\":\"msem.bench.v1\",\"name\":\"serve\",\"build\":\"t\","
        "\"config\":{\"train_n\":200,\"test_n\":50,\"input\":\"train\","
        "\"seed\":\"0x1324bb3\"},\"wall_seconds\":1,"
        "\"metrics\":{\"p99_us.open\":%g,\"p50_us.closed\":100}}",
        P99);
  };
  std::vector<BenchResult> Base = {parse(tailJson(1500))};
  // A 2x tail wobble is single-run scheduler jitter: inside the 150%
  // tail tolerance even though it is far past the 50% timing one.
  std::vector<BenchResult> Jitter = {parse(tailJson(3000))};
  CompareReport R = compareBenches(Base, Jitter, CompareOptions());
  EXPECT_EQ(R.regressions(), 0u);
  for (const MetricDelta &D : R.Deltas) {
    if (D.Key == "p99_us.open") {
      EXPECT_NEAR(D.Threshold, 1.50, 1e-12);
    }
  }
  // A genuine tail blowup still gates.
  std::vector<BenchResult> Blowup = {parse(tailJson(6000))};
  EXPECT_EQ(compareBenches(Base, Blowup, CompareOptions()).regressions(),
            1u);
  // The median rides the normal timing threshold: doubling it regresses.
  std::vector<BenchResult> MedianDouble = {parse(formatString(
      "{\"schema\":\"msem.bench.v1\",\"name\":\"serve\",\"build\":\"t\","
      "\"config\":{\"train_n\":200,\"test_n\":50,\"input\":\"train\","
      "\"seed\":\"0x1324bb3\"},\"wall_seconds\":1,"
      "\"metrics\":{\"p99_us.open\":1500,\"p50_us.closed\":220}}"))};
  EXPECT_EQ(compareBenches(Base, MedianDouble, CompareOptions()).regressions(),
            1u);
}

TEST(BenchCompare, ThroughputDropRegressesAndGainImproves) {
  std::vector<BenchResult> Base = {parse(benchJson("micro", 4.5, 1000, 2))};
  // Throughput is a timing-class metric: the default 50% tolerance
  // absorbs a 30% dip but not a 4x cliff.
  std::vector<BenchResult> Noisy = {parse(benchJson("micro", 4.5, 700, 2))};
  EXPECT_EQ(compareBenches(Base, Noisy, CompareOptions()).regressions(), 0u);
  std::vector<BenchResult> Cliff = {parse(benchJson("micro", 4.5, 250, 2))};
  EXPECT_EQ(compareBenches(Base, Cliff, CompareOptions()).regressions(), 1u);
  std::vector<BenchResult> Faster = {parse(benchJson("micro", 4.5, 4000, 2))};
  CompareReport R = compareBenches(Base, Faster, CompareOptions());
  EXPECT_EQ(R.regressions(), 0u);
  EXPECT_EQ(R.improvements(), 1u);
  EXPECT_FALSE(R.hasFailures()); // Improvements never fail the gate.
}

TEST(BenchCompare, ConfigDriftIsAHardMismatch) {
  std::vector<BenchResult> Base = {parse(benchJson("micro", 4.5, 1000, 2))};
  std::vector<BenchResult> Cur = {
      parse(benchJson("micro", 4.5, 1000, 2, /*TrainN=*/40))};
  CompareReport R = compareBenches(Base, Cur, CompareOptions());
  ASSERT_EQ(R.Mismatches.size(), 1u);
  EXPECT_NE(R.Mismatches[0].find("config mismatch"), std::string::npos);
  EXPECT_TRUE(R.Deltas.empty()); // Incomparable: no metric verdicts.
  EXPECT_TRUE(R.hasFailures());
}

TEST(BenchCompare, MissingBenchesWarnButDoNotFail) {
  std::vector<BenchResult> Base = {parse(benchJson("old", 4.5, 1000, 2))};
  std::vector<BenchResult> Cur = {parse(benchJson("new", 4.5, 1000, 2))};
  CompareReport R = compareBenches(Base, Cur, CompareOptions());
  EXPECT_EQ(R.MissingBaselines, std::vector<std::string>{"new"});
  EXPECT_EQ(R.MissingResults, std::vector<std::string>{"old"});
  EXPECT_FALSE(R.hasFailures());
}

TEST(BenchCompare, UnknownMetricsNeverGate) {
  std::string Base = "{\"schema\":\"msem.bench.v1\",\"name\":\"m\","
                     "\"config\":{},\"metrics\":{\"mystery\":1.0}}";
  std::string Cur = "{\"schema\":\"msem.bench.v1\",\"name\":\"m\","
                    "\"config\":{},\"metrics\":{\"mystery\":100.0}}";
  CompareReport R =
      compareBenches({parse(Base)}, {parse(Cur)}, CompareOptions());
  ASSERT_EQ(R.Deltas.size(), 1u);
  EXPECT_EQ(R.Deltas[0].Kind, DeltaKind::Unchanged);
  EXPECT_EQ(R.Deltas[0].Direction, MetricDirection::Unknown);
  EXPECT_FALSE(R.hasFailures());
}

TEST(BenchCompare, ZeroBaselineMovementIsInfiniteChange) {
  std::string Base = "{\"schema\":\"msem.bench.v1\",\"name\":\"m\","
                     "\"config\":{},\"metrics\":{\"error_count\":0.0}}";
  std::string Cur = "{\"schema\":\"msem.bench.v1\",\"name\":\"m\","
                    "\"config\":{},\"metrics\":{\"error_count\":5.0}}";
  CompareReport R =
      compareBenches({parse(Base)}, {parse(Cur)}, CompareOptions());
  ASSERT_EQ(R.Deltas.size(), 1u);
  EXPECT_EQ(R.Deltas[0].Kind, DeltaKind::Regressed);
}

TEST(BenchCompare, RendersTextAndMarkdown) {
  std::vector<BenchResult> Base = {parse(benchJson("micro", 4.5, 1000, 2))};
  std::vector<BenchResult> Cur = {parse(benchJson("micro", 9.0, 4000, 2))};
  CompareReport R = compareBenches(Base, Cur, CompareOptions());

  std::string Text = renderCompareText(R);
  EXPECT_NE(Text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(Text.find("IMPROVED"), std::string::npos);
  EXPECT_NE(Text.find("summary:"), std::string::npos);

  std::string Md = renderCompareMarkdown(R);
  EXPECT_NE(Md.find("| Bench | Metric |"), std::string::npos);
  EXPECT_NE(Md.find("mape.rbf"), std::string::npos);
  EXPECT_NE(Md.find(":red_circle:"), std::string::npos);
  EXPECT_NE(Md.find("**Summary:**"), std::string::npos);
}

TEST(BenchCompare, LoadsDirectorySkippingGarbage) {
  std::string Dir = formatString("bench_compare_test_%d",
                                 static_cast<int>(getpid()));
  ASSERT_TRUE(createDirectories(Dir, nullptr));
  ASSERT_TRUE(writeFileAtomic(Dir + "/BENCH_a.json",
                              benchJson("a", 1, 10, 1), nullptr));
  ASSERT_TRUE(writeFileAtomic(Dir + "/BENCH_b.json",
                              benchJson("b", 2, 20, 2), nullptr));
  ASSERT_TRUE(writeFileAtomic(Dir + "/BENCH_bad.json", "oops", nullptr));
  ASSERT_TRUE(writeFileAtomic(Dir + "/unrelated.txt", "x", nullptr));

  std::vector<std::string> Errors;
  std::vector<BenchResult> Results = loadBenchDir(Dir, &Errors);
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Results[0].Name, "a");
  EXPECT_EQ(Results[1].Name, "b");
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].find("BENCH_bad.json"), std::string::npos);

  Errors.clear();
  EXPECT_TRUE(loadBenchDir(Dir + "/missing", &Errors).empty());
  EXPECT_EQ(Errors.size(), 1u);

  for (const char *F : {"/BENCH_a.json", "/BENCH_b.json", "/BENCH_bad.json",
                        "/unrelated.txt"})
    std::remove((Dir + F).c_str());
  ::rmdir(Dir.c_str());
}

} // namespace
