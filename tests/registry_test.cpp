//===- tests/registry_test.cpp - Model registry tests -----------------------===//

#include "registry/ModelRegistry.h"

#include "registry/ServingMonitor.h"

#include "campaign/Experiment.h"
#include "design/Doe.h"
#include "model/LinearModel.h"
#include "model/RbfNetwork.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <unistd.h>

using namespace msem;

namespace {

/// Per-process temp registry root (tests run concurrently per binary).
std::string tempRegistryDir(const char *Tag) {
  return formatString("registry_test_%s_%d", Tag, static_cast<int>(getpid()));
}

/// RAII cleanup of a registry directory tree.
struct DirGuard {
  std::string Dir;
  explicit DirGuard(std::string D) : Dir(std::move(D)) {
    std::filesystem::remove_all(Dir);
  }
  ~DirGuard() { std::filesystem::remove_all(Dir); }
};

/// A small trained model over the compiler space, deterministic per seed.
std::unique_ptr<Model> trainSmallModel(const ParameterSpace &Space,
                                       uint64_t Seed) {
  Rng R(Seed);
  std::vector<DesignPoint> Points;
  std::vector<double> Y;
  for (int I = 0; I < 60; ++I) {
    DesignPoint P = Space.randomPoint(R);
    std::vector<double> X = Space.encode(P);
    double V = 500 + 33.07 * X[0] - 12.9 * X[3] + 7.77 * X[0] * X[5] +
               R.normal(0, 2.0);
    Points.push_back(std::move(P));
    Y.push_back(V);
  }
  Matrix X = encodeMatrix(Space, Points);
  auto M = std::make_unique<LinearModel>();
  M->train(X, Y);
  return M;
}

ModelArtifactInfo makeInfo(const std::string &Workload,
                           const std::string &Platform = "joint") {
  ModelArtifactInfo Info;
  Info.Key.Workload = Workload;
  Info.Key.Input = InputSet::Train;
  Info.Key.Metric = ResponseMetric::Cycles;
  Info.Key.Technique = "linear";
  Info.Key.Platform = Platform;
  Info.Space = ParameterSpace::compilerSpace();
  Info.Campaign = "registry-test";
  Info.Seed = 0xABCDEF0123456789ull;
  Info.TrainSize = 60;
  Info.TestSize = 8;
  Info.SimulationsUsed = 68;
  Info.StopReason = "design-exhausted";
  Info.Quality = {3.5, 120.25, 0.93};
  return Info;
}

//===----------------------------------------------------------------------===//
// Artifact envelope
//===----------------------------------------------------------------------===//

TEST(ArtifactTest, EnvelopeRoundTripsMetadataAndSpace) {
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = trainSmallModel(Info.Space, 7);
  Json Doc = serializeArtifact(Info, *M);

  ModelArtifact Back;
  std::string Error;
  ASSERT_TRUE(deserializeArtifact(Doc, Back, &Error)) << Error;
  EXPECT_EQ(Back.SchemaVersion, kModelArtifactSchemaVersion);
  EXPECT_EQ(Back.Info.Key, Info.Key);
  EXPECT_EQ(Back.Info.Key.id(), "art-train-cycles-linear-joint");
  EXPECT_EQ(Back.Info.Seed, Info.Seed);
  EXPECT_EQ(Back.Info.TrainSize, Info.TrainSize);
  EXPECT_EQ(Back.Info.StopReason, Info.StopReason);
  EXPECT_DOUBLE_EQ(Back.Info.Quality.Mape, Info.Quality.Mape);
  EXPECT_DOUBLE_EQ(Back.Info.Quality.R2, Info.Quality.R2);
  EXPECT_FALSE(Back.Info.HasFrozenMachine);

  // The embedded space reproduces names, kinds, levels and the encode map.
  ASSERT_EQ(Back.Info.Space.size(), Info.Space.size());
  EXPECT_EQ(Back.Info.Space.numCompilerParams(),
            Info.Space.numCompilerParams());
  for (size_t I = 0; I < Info.Space.size(); ++I) {
    EXPECT_EQ(Back.Info.Space.param(I).Name, Info.Space.param(I).Name);
    EXPECT_EQ(Back.Info.Space.param(I).Levels, Info.Space.param(I).Levels);
  }
  Rng R(70);
  for (int I = 0; I < 20; ++I) {
    DesignPoint P = Info.Space.randomPoint(R);
    EXPECT_EQ(Back.Info.Space.encode(P), Info.Space.encode(P));
  }
}

TEST(ArtifactTest, FrozenMachineRoundTrips) {
  ModelArtifactInfo Info = makeInfo("art", "aggressive");
  Info.Space = ParameterSpace::paperSpace();
  Info.HasFrozenMachine = true;
  Info.Machine = MachineConfig::aggressive();
  std::unique_ptr<Model> M = trainSmallModel(Info.Space, 8);

  ModelArtifact Back;
  std::string Error;
  ASSERT_TRUE(deserializeArtifact(serializeArtifact(Info, *M), Back, &Error))
      << Error;
  ASSERT_TRUE(Back.Info.HasFrozenMachine);
  EXPECT_EQ(Back.Info.Machine, MachineConfig::aggressive());
}

TEST(ArtifactTest, RejectsUnsupportedSchemaVersion) {
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = trainSmallModel(Info.Space, 9);
  Json Doc = serializeArtifact(Info, *M);
  Doc.set("schema_version", Json::number(99));

  ModelArtifact Back;
  std::string Error;
  EXPECT_FALSE(deserializeArtifact(Doc, Back, &Error));
  EXPECT_NE(Error.find("schema_version"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Registry store
//===----------------------------------------------------------------------===//

TEST(RegistryTest, PublishFetchReproducesPredictionsBitwise) {
  DirGuard Guard(tempRegistryDir("roundtrip"));
  ModelRegistry Reg({Guard.Dir, 8});

  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = trainSmallModel(Info.Space, 10);
  std::string Error;
  ASSERT_TRUE(Reg.publish(Info, *M, &Error)) << Error;
  ASSERT_TRUE(Reg.contains(Info.Key));

  std::shared_ptr<const ModelArtifact> A = Reg.fetch(Info.Key, &Error);
  ASSERT_NE(A, nullptr) << Error;
  Rng R(110);
  for (int I = 0; I < 40; ++I) {
    DesignPoint P = Info.Space.randomPoint(R);
    std::vector<double> X = Info.Space.encode(P);
    ASSERT_EQ(A->M->predict(X), M->predict(X)) << "probe " << I;
  }
}

TEST(RegistryTest, ManifestListsEveryPublishSorted) {
  DirGuard Guard(tempRegistryDir("manifest"));
  ModelRegistry Reg({Guard.Dir, 8});

  std::string Error;
  for (const char *Workload : {"gzip", "art", "mcf"}) {
    ModelArtifactInfo Info = makeInfo(Workload);
    std::unique_ptr<Model> M = trainSmallModel(Info.Space, 11);
    ASSERT_TRUE(Reg.publish(Info, *M, &Error)) << Error;
  }

  std::vector<RegistryEntry> Entries = Reg.list(&Error);
  ASSERT_EQ(Entries.size(), 3u) << Error;
  EXPECT_EQ(Entries[0].Key.Workload, "art");
  EXPECT_EQ(Entries[1].Key.Workload, "gzip");
  EXPECT_EQ(Entries[2].Key.Workload, "mcf");
  for (const RegistryEntry &E : Entries) {
    EXPECT_DOUBLE_EQ(E.Quality.Mape, 3.5);
    EXPECT_TRUE(pathExists(Guard.Dir + "/" + E.File)) << E.File;
  }
}

TEST(RegistryTest, RepublishOverwritesAndInvalidatesCache) {
  DirGuard Guard(tempRegistryDir("republish"));
  ModelRegistry Reg({Guard.Dir, 8});

  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> First = trainSmallModel(Info.Space, 12);
  std::unique_ptr<Model> Second = trainSmallModel(Info.Space, 13);
  std::string Error;
  ASSERT_TRUE(Reg.publish(Info, *First, &Error)) << Error;
  std::shared_ptr<const ModelArtifact> A = Reg.fetch(Info.Key, &Error);
  ASSERT_NE(A, nullptr) << Error;

  ASSERT_TRUE(Reg.publish(Info, *Second, &Error)) << Error;
  std::shared_ptr<const ModelArtifact> B = Reg.fetch(Info.Key, &Error);
  ASSERT_NE(B, nullptr) << Error;

  // One manifest row, and the fetch observed the new model.
  EXPECT_EQ(Reg.list().size(), 1u);
  Rng R(113);
  std::vector<double> X = Info.Space.encode(Info.Space.randomPoint(R));
  EXPECT_EQ(B->M->predict(X), Second->predict(X));
  EXPECT_EQ(A->M->predict(X), First->predict(X)) << "old handle must stay "
                                                    "valid after republish";
}

TEST(RegistryTest, LruCacheEvictsLeastRecentlyUsed) {
  DirGuard Guard(tempRegistryDir("lru"));
  ModelRegistry Reg({Guard.Dir, 2});

  std::string Error;
  ModelKey Keys[3];
  const char *Workloads[3] = {"art", "gzip", "mcf"};
  for (int I = 0; I < 3; ++I) {
    ModelArtifactInfo Info = makeInfo(Workloads[I]);
    Keys[I] = Info.Key;
    std::unique_ptr<Model> M = trainSmallModel(Info.Space, 20 + I);
    ASSERT_TRUE(Reg.publish(Info, *M, &Error)) << Error;
  }

  auto A = Reg.fetch(Keys[0], &Error); // load; cache [A]
  ASSERT_NE(A, nullptr) << Error;
  auto B = Reg.fetch(Keys[1], &Error); // load; cache [B A]
  ASSERT_NE(B, nullptr) << Error;
  EXPECT_EQ(Reg.fetch(Keys[0], &Error), A); // hit (same shared artifact)
  auto C = Reg.fetch(Keys[2], &Error); // load; evicts B -> cache [C A]
  ASSERT_NE(C, nullptr) << Error;
  auto B2 = Reg.fetch(Keys[1], &Error); // load again; evicts A
  ASSERT_NE(B2, nullptr) << Error;

  ModelRegistry::Stats S = Reg.stats();
  EXPECT_EQ(S.Publishes, 3u);
  EXPECT_EQ(S.Loads, 4u);
  EXPECT_EQ(S.CacheHits, 1u);
  EXPECT_EQ(S.Evictions, 2u);
  // Eviction must not invalidate handed-out artifacts.
  EXPECT_TRUE(std::isfinite(B->M->predict(std::vector<double>(
      B->Info.Space.size(), 0.0))));
}

TEST(RegistryTest, CacheCapacityZeroAlwaysReadsDisk) {
  DirGuard Guard(tempRegistryDir("uncached"));
  ModelRegistry Reg({Guard.Dir, 0});
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = trainSmallModel(Info.Space, 30);
  std::string Error;
  ASSERT_TRUE(Reg.publish(Info, *M, &Error)) << Error;
  ASSERT_NE(Reg.fetch(Info.Key, &Error), nullptr) << Error;
  ASSERT_NE(Reg.fetch(Info.Key, &Error), nullptr) << Error;
  ModelRegistry::Stats S = Reg.stats();
  EXPECT_EQ(S.Loads, 2u);
  EXPECT_EQ(S.CacheHits, 0u);
}

TEST(RegistryTest, FetchRejectsVersionMismatchWithStructuredError) {
  DirGuard Guard(tempRegistryDir("version"));
  ModelRegistry Reg({Guard.Dir, 0});
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = trainSmallModel(Info.Space, 31);
  std::string Error;
  ASSERT_TRUE(Reg.publish(Info, *M, &Error)) << Error;

  // Corrupt the on-disk artifact into a future schema version.
  std::string Path = Reg.artifactPath(Info.Key);
  std::string Text;
  ASSERT_TRUE(readFileText(Path, Text, &Error)) << Error;
  Json Doc = Json::parse(Text, &Error);
  ASSERT_TRUE(Error.empty()) << Error;
  Doc.set("schema_version", Json::number(99));
  ASSERT_TRUE(writeFileAtomic(Path, Doc.dumpPretty(), &Error)) << Error;

  EXPECT_EQ(Reg.fetch(Info.Key, &Error), nullptr);
  EXPECT_NE(Error.find("schema_version 99"), std::string::npos) << Error;
}

TEST(RegistryTest, FetchMissingKeyReturnsStructuredError) {
  DirGuard Guard(tempRegistryDir("missing"));
  ModelRegistry Reg({Guard.Dir, 4});
  ModelKey Key = makeInfo("nonexistent").Key;
  std::string Error;
  EXPECT_EQ(Reg.fetch(Key, &Error), nullptr);
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(Reg.contains(Key));
}

TEST(RegistryTest, PublishLeavesNoTempFiles) {
  DirGuard Guard(tempRegistryDir("atomic"));
  ModelRegistry Reg({Guard.Dir, 4});
  std::string Error;
  for (const char *Workload : {"art", "gzip"}) {
    ModelArtifactInfo Info = makeInfo(Workload);
    std::unique_ptr<Model> M = trainSmallModel(Info.Space, 40);
    ASSERT_TRUE(Reg.publish(Info, *M, &Error)) << Error;
  }
  size_t Artifacts = 0;
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(Guard.Dir)) {
    std::string Name = Entry.path().filename().string();
    EXPECT_EQ(Name.find(".tmp"), std::string::npos) << Name;
    if (Entry.is_regular_file())
      ++Artifacts;
  }
  EXPECT_EQ(Artifacts, 3u); // manifest.json + two artifacts.
}

TEST(RegistryTest, InvalidateCacheDropsEveryEntry) {
  DirGuard Guard(tempRegistryDir("invalidate"));
  ModelRegistry Reg({Guard.Dir, 8});
  std::string Error;
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = trainSmallModel(Info.Space, 50);
  ASSERT_TRUE(Reg.publish(Info, *M, &Error)) << Error;

  std::shared_ptr<const ModelArtifact> A = Reg.fetch(Info.Key, &Error);
  ASSERT_NE(A, nullptr) << Error;
  EXPECT_EQ(Reg.fetch(Info.Key, &Error), A); // Cache hit.

  EXPECT_EQ(Reg.invalidateCache(), 1u);
  EXPECT_EQ(Reg.invalidateCache(), 0u); // Idempotent on an empty cache.

  // The next fetch deserializes disk again instead of reusing the
  // dropped entry...
  std::shared_ptr<const ModelArtifact> B = Reg.fetch(Info.Key, &Error);
  ASSERT_NE(B, nullptr) << Error;
  EXPECT_NE(B, A);
  ModelRegistry::Stats S = Reg.stats();
  EXPECT_EQ(S.Loads, 2u);
  EXPECT_EQ(S.CacheHits, 1u);
  // ...while the dropped handle keeps serving (zero-downtime contract).
  Rng R(51);
  std::vector<double> X = Info.Space.encode(Info.Space.randomPoint(R));
  EXPECT_EQ(A->M->predict(X), B->M->predict(X));
}

TEST(RegistryTest, ManifestSignatureTracksPublishes) {
  DirGuard Guard(tempRegistryDir("signature"));
  ModelRegistry Reg({Guard.Dir, 4});
  EXPECT_EQ(Reg.manifestSignature(), 0u); // No manifest yet.

  std::string Error;
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = trainSmallModel(Info.Space, 52);
  ASSERT_TRUE(Reg.publish(Info, *M, &Error)) << Error;
  uint64_t S1 = Reg.manifestSignature();
  EXPECT_NE(S1, 0u);
  EXPECT_EQ(Reg.manifestSignature(), S1); // Stable between rewrites.

  ModelArtifactInfo Info2 = makeInfo("gzip");
  ASSERT_TRUE(Reg.publish(Info2, *M, &Error)) << Error;
  EXPECT_NE(Reg.manifestSignature(), S1); // Every rewrite re-signs.
}

//===----------------------------------------------------------------------===//
// Campaign integration: every fitted model is published automatically
//===----------------------------------------------------------------------===//

TEST(RegistryTest, CampaignPublishesJointAndPlatformArtifacts) {
  DirGuard Guard(tempRegistryDir("campaign"));

  ExperimentSpec Spec;
  Spec.Name = "registry-campaign";
  Spec.Jobs = {{"art", InputSet::Test, ResponseMetric::Cycles,
                ModelTechnique::Rbf, 0}};
  Spec.InitialDesignSize = 8;
  Spec.MaxDesignSize = 8;
  Spec.TestSize = 4;
  Spec.TargetMape = 0.0;
  Spec.CandidateCount = 100;
  Spec.RegistryDir = Guard.Dir;
  Spec.TunePlatforms = {{"typical", MachineConfig::typical()}};
  Spec.Ga.Population = 8;
  Spec.Ga.Generations = 2;
  Spec.Ga.StallGenerations = 0;

  ExperimentResult R = runExperiment(Spec);
  ASSERT_TRUE(R.ok()) << R.Error;
  const ModelBuildResult &Build = R.Jobs[0].Build;
  ASSERT_NE(Build.FittedModel, nullptr);

  ModelRegistry Reg({Guard.Dir, 4});
  std::vector<RegistryEntry> Entries = Reg.list();
  ASSERT_EQ(Entries.size(), 2u); // joint + typical

  ModelKey Key;
  Key.Workload = "art";
  Key.Input = InputSet::Test;
  Key.Metric = ResponseMetric::Cycles;
  Key.Technique = "rbf";
  Key.Platform = "joint";
  std::string Error;
  std::shared_ptr<const ModelArtifact> Joint = Reg.fetch(Key, &Error);
  ASSERT_NE(Joint, nullptr) << Error;
  EXPECT_EQ(Joint->Info.Campaign, "registry-campaign");
  EXPECT_EQ(Joint->Info.TrainSize, Build.TrainPoints.size());
  EXPECT_DOUBLE_EQ(Joint->Info.Quality.Mape, Build.TestQuality.Mape);

  // Served predictions match the in-process model bitwise on the
  // campaign's own test design.
  ParameterSpace Space = makeSpace(Spec.Space);
  for (const DesignPoint &P : Build.TestPoints) {
    std::vector<double> X = Space.encode(P);
    ASSERT_EQ(Joint->M->predict(X), Build.FittedModel->predict(X));
  }

  // The platform artifact pins the Table-2 coordinates.
  Key.Platform = "typical";
  std::shared_ptr<const ModelArtifact> Platform = Reg.fetch(Key, &Error);
  ASSERT_NE(Platform, nullptr) << Error;
  ASSERT_TRUE(Platform->Info.HasFrozenMachine);
  EXPECT_EQ(Platform->Info.Machine, MachineConfig::typical());
}


//===----------------------------------------------------------------------===//
// ServingMonitor: rolling quality statistics and drift detection
//===----------------------------------------------------------------------===//

TEST(ServingMonitorTest, RollingErrorStatsMatchHandComputation) {
  ServingMonitor Mon;
  // Residuals: pred 110 vs 100 (10%), pred 90 vs 100 (10%).
  Mon.recordResidual("m", 110.0, 100.0);
  Mon.recordResidual("m", 90.0, 100.0);
  std::vector<ServingModelStats> S = Mon.stats();
  ASSERT_EQ(S.size(), 1u);
  EXPECT_EQ(S[0].ModelId, "m");
  EXPECT_EQ(S[0].Residuals, 2u);
  EXPECT_NEAR(S[0].RollingMape, 10.0, 1e-9);
  EXPECT_NEAR(S[0].RollingRmse, 10.0, 1e-9);
}

TEST(ServingMonitorTest, ZeroActualCountsIntoRmseOnly) {
  ServingMonitor Mon;
  Mon.recordResidual("m", 4.0, 0.0); // MAPE undefined; RMSE gets 4^2.
  std::vector<ServingModelStats> S = Mon.stats();
  ASSERT_EQ(S.size(), 1u);
  EXPECT_NEAR(S[0].RollingRmse, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(S[0].RollingMape, 0.0);
}

TEST(ServingMonitorTest, DriftFlagsOnlyAfterMinResiduals) {
  ServingMonitor::Options O;
  O.DriftThreshold = 2.0;
  O.MinResiduals = 8;
  ServingMonitor Mon(O);
  // Published MAPE 10%; every residual is 50% off -> ratio 5x.
  Mon.recordBatch("m", 1, 1000, /*BaselineMape=*/10.0);
  for (int I = 0; I < 7; ++I)
    Mon.recordResidual("m", 150.0, 100.0);
  EXPECT_FALSE(Mon.anyDrift()) << "must not flag below MinResiduals";
  Mon.recordResidual("m", 150.0, 100.0);
  EXPECT_TRUE(Mon.anyDrift());
  std::vector<ServingModelStats> S = Mon.stats();
  ASSERT_EQ(S.size(), 1u);
  EXPECT_TRUE(S[0].DriftFlagged);
  EXPECT_NEAR(S[0].DriftRatio, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(S[0].BaselineMape, 10.0);
}

TEST(ServingMonitorTest, AccurateServingNeverFlags) {
  ServingMonitor Mon;
  Mon.recordBatch("m", 4, 1000, /*BaselineMape=*/10.0);
  for (int I = 0; I < 64; ++I)
    Mon.recordResidual("m", 105.0, 100.0); // 5% < 2 x 10%.
  EXPECT_FALSE(Mon.anyDrift());
  std::vector<ServingModelStats> S = Mon.stats();
  EXPECT_NEAR(S[0].DriftRatio, 0.5, 1e-9);
}

TEST(ServingMonitorTest, DisabledThresholdNeverFlags) {
  ServingMonitor::Options O;
  O.DriftThreshold = 0.0; // <= 0 disables.
  ServingMonitor Mon(O);
  Mon.recordBatch("m", 1, 1000, 1.0);
  for (int I = 0; I < 32; ++I)
    Mon.recordResidual("m", 1000.0, 1.0);
  EXPECT_FALSE(Mon.anyDrift());
}

TEST(ServingMonitorTest, ResidualWindowEvictsOldEntries) {
  ServingMonitor::Options O;
  O.ResidualWindow = 4;
  O.MinResiduals = 2;
  ServingMonitor Mon(O);
  Mon.recordBatch("m", 1, 1000, /*BaselineMape=*/10.0);
  // Fill the window with terrible residuals, then wash them out with
  // perfect ones; only the last 4 (all perfect) remain.
  for (int I = 0; I < 4; ++I)
    Mon.recordResidual("m", 200.0, 100.0);
  EXPECT_TRUE(Mon.anyDrift());
  for (int I = 0; I < 4; ++I)
    Mon.recordResidual("m", 100.0, 100.0);
  std::vector<ServingModelStats> S = Mon.stats();
  EXPECT_EQ(S[0].Residuals, 4u);
  EXPECT_DOUBLE_EQ(S[0].RollingMape, 0.0);
  EXPECT_FALSE(Mon.anyDrift());
}

TEST(ServingMonitorTest, CountsRequestsBatchesAndErrors) {
  ServingMonitor Mon;
  Mon.recordBatch("a", 5, 2000, 0.0);
  Mon.recordBatch("a", 3, 1000, 0.0);
  Mon.recordError("a");
  Mon.recordBatch("b", 1, 100, 0.0);
  std::vector<ServingModelStats> S = Mon.stats();
  ASSERT_EQ(S.size(), 2u); // Sorted by model id.
  EXPECT_EQ(S[0].ModelId, "a");
  EXPECT_EQ(S[0].Requests, 8u);
  EXPECT_EQ(S[0].Batches, 2u);
  EXPECT_EQ(S[0].Errors, 1u);
  EXPECT_EQ(S[1].ModelId, "b");
  EXPECT_EQ(S[1].Requests, 1u);
}

TEST(ServingMonitorTest, SummaryTableNamesModelsAndFlagsDrift) {
  ServingMonitor::Options O;
  O.MinResiduals = 1;
  ServingMonitor Mon(O);
  Mon.recordBatch("drifty-model", 1, 1000, /*BaselineMape=*/1.0);
  Mon.recordResidual("drifty-model", 300.0, 100.0);
  std::string Table = Mon.renderSummary();
  EXPECT_NE(Table.find("drifty-model"), std::string::npos);
  EXPECT_NE(Table.find("DRIFT"), std::string::npos);
}

} // namespace
