//===- tests/support_test.cpp - Support library tests -------------------------===//

#include "support/Env.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

using namespace msem;

namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng R(11);
  OnlineStats S;
  for (int I = 0; I < 100000; ++I)
    S.add(R.uniform());
  EXPECT_NEAR(S.mean(), 0.5, 0.01);
}

TEST(RngTest, IntInRangeCoversEndpoints) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.intInRange(2, 5);
    EXPECT_GE(V, 2);
    EXPECT_LE(V, 5);
    SawLo |= V == 2;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NormalMoments) {
  Rng R(42);
  OnlineStats S;
  for (int I = 0; I < 100000; ++I)
    S.add(R.normal());
  EXPECT_NEAR(S.mean(), 0.0, 0.02);
  EXPECT_NEAR(S.stddev(), 1.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(5);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  auto Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng R(9);
  Rng Child = R.split();
  // Child and parent produce different sequences.
  EXPECT_NE(R.next(), Child.next());
}

TEST(RngTest, StateRoundTripContinuesSequence) {
  // The checkpointing contract: a generator restored from state()
  // continues the exact sequence of the original.
  Rng R(0xC0FFEE);
  for (int I = 0; I < 17; ++I)
    R.next();
  std::array<uint64_t, 4> Saved = R.state();
  Rng Restored(999); // Different seed; state restore must override it.
  Restored.setState(Saved);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.next(), Restored.next());
}

TEST(OnlineStatsTest, MatchesBatchFormulas) {
  std::vector<double> Data{1.0, 2.5, -3.0, 4.25, 0.5};
  OnlineStats S;
  for (double X : Data)
    S.add(X);
  EXPECT_NEAR(S.mean(), mean(Data), 1e-12);
  EXPECT_NEAR(S.stddev(), stddev(Data), 1e-12);
  EXPECT_EQ(S.count(), Data.size());
}

TEST(OnlineStatsTest, MergeEqualsCombined) {
  Rng R(77);
  OnlineStats A, B, All;
  for (int I = 0; I < 500; ++I) {
    double X = R.normal(3.0, 2.0);
    (I % 2 ? A : B).add(X);
    All.add(X);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_NEAR(A.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(A.variance(), All.variance(), 1e-9);
}

TEST(StatisticsTest, PercentileInterpolates) {
  std::vector<double> V{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(V, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 25);
}

TEST(StatisticsTest, ZValuesMatchTables) {
  EXPECT_NEAR(zValueForConfidence(0.95), 1.96, 0.001);
  EXPECT_NEAR(zValueForConfidence(0.99), 2.576, 0.001);
  EXPECT_NEAR(zValueForConfidence(0.997), 2.968, 0.001);
  // Arbitrary level via the approximation.
  EXPECT_NEAR(zValueForConfidence(0.80), 1.2816, 0.01);
}

TEST(StatisticsTest, ErrorMetrics) {
  std::vector<double> Actual{100, 200};
  std::vector<double> Pred{110, 180};
  EXPECT_NEAR(meanAbsolutePercentError(Actual, Pred), 10.0, 1e-9);
  EXPECT_NEAR(rootMeanSquaredError(Actual, Pred),
              std::sqrt((100.0 + 400.0) / 2.0), 1e-9);
  EXPECT_GT(rSquared(Actual, Pred), 0.5);
  EXPECT_NEAR(rSquared(Actual, Actual), 1.0, 1e-12);
}

TEST(FormatTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatString("%.2f", 3.14159), "3.14");
}

TEST(FormatTest, JoinAndSplit) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ","), "a,b,c");
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(trimString("  hi \n"), "hi");
  EXPECT_EQ(trimString("   "), "");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"Name", "Value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22222"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(Out.find("| b     | 22222 |"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(0, Hits.size(),
                   [&](size_t I) { Hits[I].fetch_add(1); });
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapFillsSlotsInIndexOrder) {
  ThreadPool Pool(3);
  std::vector<size_t> Out =
      Pool.parallelMap(257, [](size_t I) { return I * I; });
  ASSERT_EQ(Out.size(), 257u);
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], I * I);
}

TEST(ThreadPoolTest, ZeroAndEmptyRegionsAreNoOps) {
  ThreadPool Pool(4);
  bool Ran = false;
  Pool.parallelFor(5, 5, [&](size_t) { Ran = true; });
  Pool.parallelFor(7, 3, [&](size_t) { Ran = true; }); // End < Begin.
  EXPECT_FALSE(Ran);
  EXPECT_TRUE(Pool.parallelMap(0, [](size_t I) { return I; }).empty());
}

TEST(ThreadPoolTest, ExceptionsPropagateAndPoolStaysUsable) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 100,
                                [](size_t I) {
                                  if (I == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The failed region drained cleanly: the pool still works.
  std::atomic<size_t> Sum{0};
  Pool.parallelFor(0, 10, [&](size_t I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 45u);
}

TEST(ThreadPoolTest, NestedParallelForCompletesWithoutDeadlock) {
  ThreadPool Pool(4);
  constexpr size_t Outer = 48, Inner = 16;
  std::vector<std::atomic<int>> Cells(Outer * Inner);
  Pool.parallelFor(0, Outer, [&](size_t I) {
    Pool.parallelFor(I * Inner, (I + 1) * Inner, [&](size_t J) {
      // A nested region issued from a worker runs inline on that worker.
      if (ThreadPool::inWorker()) {
        EXPECT_TRUE(ThreadPool::inWorker());
      }
      Cells[J].fetch_add(1);
    });
  });
  for (const auto &C : Cells)
    EXPECT_EQ(C.load(), 1);
}

TEST(ThreadPoolTest, MainThreadIsNotAWorker) {
  EXPECT_FALSE(ThreadPool::inWorker());
}

TEST(ThreadPoolTest, SingleThreadRunsInlineDeterministically) {
  ThreadPool Pool(1);
  // With one thread there are no workers; iterations run in index order
  // on the caller, so even order-sensitive bodies behave sequentially.
  std::vector<size_t> Trace;
  Pool.parallelFor(0, 20, [&](size_t I) { Trace.push_back(I); });
  ASSERT_EQ(Trace.size(), 20u);
  for (size_t I = 0; I < Trace.size(); ++I)
    EXPECT_EQ(Trace[I], I);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnv) {
  ::setenv("MSEM_THREADS", "3", 1);
  EXPECT_EQ(defaultThreadCount(), 3u);
  ThreadPool Pool;
  EXPECT_EQ(Pool.threadCount(), 3u);
  ::unsetenv("MSEM_THREADS");
  EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, EmitsStageTelemetry) {
  namespace tl = msem::telemetry;
  tl::reset();
  tl::Config C;
  C.Sinks = tl::SinkSummary;
  tl::configure(C);
  {
    ThreadPool Pool(4);
    Pool.parallelFor(0, 100, [](size_t) {}, "testtag");
  }
  EXPECT_EQ(tl::counter("pool.regions").value(), 1u);
  EXPECT_EQ(tl::counter("pool.tasks.testtag").value(), 100u);
  EXPECT_EQ(tl::timer("pool.region.testtag").count(), 1u);
  EXPECT_DOUBLE_EQ(tl::gauge("pool.threads").value(), 4.0);
  double Util = tl::gauge("pool.utilization").value();
  EXPECT_GT(Util, 0.0);
  EXPECT_LE(Util, 1.0 + 1e-9);
  tl::reset();
}

TEST(EnvTest, DefaultsAndParses) {
  ::unsetenv("MSEM_TEST_KNOB");
  EXPECT_EQ(getEnvInt("MSEM_TEST_KNOB", 7), 7);
  ::setenv("MSEM_TEST_KNOB", "42", 1);
  EXPECT_EQ(getEnvInt("MSEM_TEST_KNOB", 7), 42);
  ::setenv("MSEM_TEST_KNOB", "2.5", 1);
  EXPECT_DOUBLE_EQ(getEnvDouble("MSEM_TEST_KNOB", 0.0), 2.5);
  ::setenv("MSEM_TEST_KNOB", "abc", 1);
  EXPECT_EQ(getEnvInt("MSEM_TEST_KNOB", 7), 7);
  EXPECT_EQ(getEnvString("MSEM_TEST_KNOB", ""), "abc");
  ::unsetenv("MSEM_TEST_KNOB");
}

} // namespace
