//===- tests/trace_replay_test.cpp - Trace capture & replay identity ------===//
//
// The bitwise-identity contract of the simulation fast path
// (uarch/TraceCache.h): a replayed simulation must reproduce the live one
// exactly -- every cycle count, every pipeline/memory/branch counter,
// every SMARTS CI field -- across all seven workloads and across machine
// configurations, because the timing models consume an identical retired-
// instruction stream. Also covers the flat store-forwarding table against
// a reference model, the cache's budget/LRU/fallback behavior, the
// MSEM_TRACE_CACHE_MB=0 kill switch, and thread-count determinism of
// measureAll with the cache active.
//
//===----------------------------------------------------------------------===//

#include "core/ResponseSurface.h"
#include "sampling/Smarts.h"
#include "support/ThreadPool.h"
#include "uarch/StoreForwardTable.h"
#include "uarch/TraceCache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_map>

using namespace msem;

namespace {

void expectExecEqual(const ExecResult &A, const ExecResult &B) {
  EXPECT_EQ(A.Trapped, B.Trapped);
  EXPECT_EQ(A.TrapMessage, B.TrapMessage);
  EXPECT_EQ(A.ReturnValue, B.ReturnValue);
  EXPECT_EQ(A.InstructionsExecuted, B.InstructionsExecuted);
  ASSERT_EQ(A.Output.size(), B.Output.size());
  for (size_t I = 0; I < A.Output.size(); ++I)
    EXPECT_TRUE(A.Output[I] == B.Output[I]);
}

void expectSimEqual(const SimulationResult &A, const SimulationResult &B) {
  expectExecEqual(A.Exec, B.Exec);
  EXPECT_EQ(A.Cycles, B.Cycles);

  EXPECT_EQ(A.Pipeline.Instructions, B.Pipeline.Instructions);
  EXPECT_EQ(A.Pipeline.Branches, B.Pipeline.Branches);
  EXPECT_EQ(A.Pipeline.TakenBranches, B.Pipeline.TakenBranches);
  EXPECT_EQ(A.Pipeline.Mispredicts, B.Pipeline.Mispredicts);
  EXPECT_EQ(A.Pipeline.Loads, B.Pipeline.Loads);
  EXPECT_EQ(A.Pipeline.Stores, B.Pipeline.Stores);
  EXPECT_EQ(A.Pipeline.LoadForwards, B.Pipeline.LoadForwards);
  EXPECT_EQ(A.Pipeline.StoreBufferStalls, B.Pipeline.StoreBufferStalls);
  EXPECT_EQ(A.Pipeline.FetchIcacheStallCycles,
            B.Pipeline.FetchIcacheStallCycles);
  EXPECT_EQ(A.Pipeline.FetchRedirectStallCycles,
            B.Pipeline.FetchRedirectStallCycles);
  EXPECT_EQ(A.Pipeline.DispatchRuuStallCycles,
            B.Pipeline.DispatchRuuStallCycles);
  EXPECT_EQ(A.Pipeline.IssueOperandStallCycles,
            B.Pipeline.IssueOperandStallCycles);
  EXPECT_EQ(A.Pipeline.IssueFuStallCycles, B.Pipeline.IssueFuStallCycles);
  EXPECT_EQ(A.Pipeline.CommitDrainStallCycles,
            B.Pipeline.CommitDrainStallCycles);

  EXPECT_EQ(A.Memory.IcacheAccesses, B.Memory.IcacheAccesses);
  EXPECT_EQ(A.Memory.IcacheMisses, B.Memory.IcacheMisses);
  EXPECT_EQ(A.Memory.DcacheAccesses, B.Memory.DcacheAccesses);
  EXPECT_EQ(A.Memory.DcacheMisses, B.Memory.DcacheMisses);
  EXPECT_EQ(A.Memory.L2Misses, B.Memory.L2Misses);
  EXPECT_EQ(A.Memory.Writebacks, B.Memory.Writebacks);
  EXPECT_EQ(A.Memory.Prefetches, B.Memory.Prefetches);

  EXPECT_EQ(A.Branch.Lookups, B.Branch.Lookups);
  EXPECT_EQ(A.Branch.Mispredicts, B.Branch.Mispredicts);
}

void expectSmartsEqual(const SmartsResult &A, const SmartsResult &B) {
  expectExecEqual(A.Exec, B.Exec);
  EXPECT_EQ(A.TotalInstructions, B.TotalInstructions);
  EXPECT_EQ(A.SampledInstructions, B.SampledInstructions);
  EXPECT_EQ(A.MeasuredWindows, B.MeasuredWindows);
  // Exact double equality is the contract, not a tolerance: identical
  // streams through identical arithmetic.
  EXPECT_EQ(A.EstimatedCpi, B.EstimatedCpi);
  EXPECT_EQ(A.EstimatedCycles, B.EstimatedCycles);
  EXPECT_EQ(A.RelativeErrorBound, B.RelativeErrorBound);
  EXPECT_EQ(A.FellBackToDetailed, B.FellBackToDetailed);
}

std::shared_ptr<const MachineProgram> compileShared(const std::string &W) {
  return std::make_shared<const MachineProgram>(
      compileWorkloadBinary(W, InputSet::Test, OptimizationConfig::O2()));
}

/// Captures \p Prog's functional run into a replay image (no timing).
std::shared_ptr<const ReplayImage>
captureImage(std::shared_ptr<const MachineProgram> Prog) {
  TraceBuilder Builder;
  CapturingExecutor Exec(*Prog, 4'000'000'000ull, Builder);
  Exec.run([](const RetiredInstr &) {});
  return ReplayImage::build(std::move(Prog),
                            Builder.finish(Exec.result(), 4'000'000'000ull));
}

//===----------------------------------------------------------------------===//
// Store-forwarding table
//===----------------------------------------------------------------------===//

/// Reference model: the exact unordered_map + FIFO-ring structure the flat
/// table replaced, including the duplicate-key aging quirk.
class ReferenceStoreTable {
public:
  explicit ReferenceStoreTable(unsigned LsqEntries) {
    Ring.assign(LsqEntries, ~0ull);
  }

  const uint64_t *find(uint64_t Key) const {
    auto It = Map.find(Key);
    return It == Map.end() ? nullptr : &It->second;
  }

  void recordStore(uint64_t Key, uint64_t ReadyCycle) {
    uint64_t Aged = Ring[Pos];
    if (Aged != ~0ull)
      Map.erase(Aged);
    Ring[Pos] = Key;
    Pos = (Pos + 1) % Ring.size();
    Map[Key] = ReadyCycle;
  }

private:
  std::unordered_map<uint64_t, uint64_t> Map;
  std::vector<uint64_t> Ring;
  size_t Pos = 0;
};

TEST(StoreForwardTable, MatchesReferenceModel) {
  for (unsigned Lsq : {8u, 16u, 64u}) {
    StoreForwardTable Flat(Lsq);
    ReferenceStoreTable Ref(Lsq);
    std::mt19937_64 Rng(42 + Lsq);
    // A small address pool forces duplicate keys, so the aging quirk (a
    // re-inserted key dying when its *older* ring slot expires) is hit.
    for (int Op = 0; Op < 20000; ++Op) {
      uint64_t Key = (Rng() % (Lsq * 2)) * 8;
      if (Rng() % 2) {
        uint64_t Cycle = Rng() % 1000000;
        Flat.recordStore(Key, Cycle);
        Ref.recordStore(Key, Cycle);
      } else {
        const uint64_t *F = Flat.find(Key);
        const uint64_t *R = Ref.find(Key);
        ASSERT_EQ(F != nullptr, R != nullptr) << "op " << Op;
        if (F) {
          ASSERT_EQ(*F, *R) << "op " << Op;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Stream-level identity
//===----------------------------------------------------------------------===//

struct StreamRecord {
  uint64_t CodeIndex;
  MOp Op;
  uint64_t MemAddr;
  bool BranchTaken;
  uint64_t NextCodeIndex;
};

TEST(TraceReplay, RegeneratesIdenticalRetiredStream) {
  auto Prog = compileShared("art");

  std::vector<StreamRecord> Live;
  TraceBuilder Builder;
  CapturingExecutor Cap(*Prog, 4'000'000'000ull, Builder);
  Cap.run([&](const RetiredInstr &RI) {
    Live.push_back({RI.CodeIndex, RI.MI->Op, RI.MemAddr, RI.BranchTaken,
                    RI.NextCodeIndex});
  });
  auto Image = ReplayImage::build(
      Prog, Builder.finish(Cap.result(), 4'000'000'000ull));

  size_t Pos = 0;
  ReplaySource Replay(*Image);
  Replay.run([&](const RetiredInstr &RI) {
    ASSERT_LT(Pos, Live.size());
    const StreamRecord &L = Live[Pos++];
    ASSERT_EQ(L.CodeIndex, RI.CodeIndex);
    ASSERT_EQ(L.Op, RI.MI->Op);
    ASSERT_EQ(L.MemAddr, RI.MemAddr);
    ASSERT_EQ(L.BranchTaken, RI.BranchTaken);
    ASSERT_EQ(L.NextCodeIndex, RI.NextCodeIndex);
  });
  EXPECT_EQ(Pos, Live.size());
  EXPECT_TRUE(Replay.halted());
  expectExecEqual(Cap.result(), Replay.result());

  // The encoding must stay far below the 12-bytes-per-instruction budget.
  EXPECT_LT(static_cast<double>(Image->Trace.bytes()),
            12.0 * static_cast<double>(Image->Trace.NumRetired));
}

TEST(TraceReplay, HonorsRunBudgetBoundaries) {
  auto Prog = compileShared("mcf");
  auto Image = captureImage(Prog);

  // Replaying in arbitrary chunk sizes must visit the same stream: the
  // SMARTS loop depends on run(sink, budget) resuming exactly where the
  // previous call stopped.
  Executor Liv(*Prog);
  ReplaySource Rep(*Image);
  uint64_t Budget = 1;
  while (!Liv.halted() || !Rep.halted()) {
    std::vector<uint64_t> A, B;
    uint64_t RA = Liv.run([&](const RetiredInstr &RI) {
      A.push_back(RI.CodeIndex);
    }, Budget);
    uint64_t RB = Rep.run([&](const RetiredInstr &RI) {
      B.push_back(RI.CodeIndex);
    }, Budget);
    ASSERT_EQ(RA, RB);
    ASSERT_EQ(A, B);
    ASSERT_EQ(Liv.halted(), Rep.halted());
    Budget = Budget * 7 + 3; // Growing, mutually prime chunk sizes.
  }
}

//===----------------------------------------------------------------------===//
// Simulation-level bitwise identity, all workloads x machine configs
//===----------------------------------------------------------------------===//

TEST(TraceReplay, DetailedBitwiseIdenticalAcrossWorkloadsAndMachines) {
  const MachineConfig Configs[] = {MachineConfig::constrained(),
                                   MachineConfig::typical(),
                                   MachineConfig::aggressive()};
  for (const WorkloadSpec &W : allWorkloads()) {
    SCOPED_TRACE(W.Name);
    auto Prog = compileShared(W.Name);
    auto Image = captureImage(Prog);
    for (const MachineConfig &M : Configs) {
      SimulationResult Live = simulateDetailed(*Prog, M);
      SimulationResult Replayed = simulateDetailedReplay(*Image, M);
      expectSimEqual(Live, Replayed);
    }
  }
}

TEST(TraceReplay, SmartsBitwiseIdenticalAcrossWorkloadsAndMachines) {
  SmartsConfig SC = ResponseSurface::Options::makeDefaultSmarts();
  const MachineConfig Configs[] = {MachineConfig::constrained(),
                                   MachineConfig::aggressive()};
  for (const WorkloadSpec &W : allWorkloads()) {
    SCOPED_TRACE(W.Name);
    auto Prog = compileShared(W.Name);
    auto Image = captureImage(Prog);
    for (const MachineConfig &M : Configs) {
      SmartsResult Live = simulateSmarts(*Prog, M, SC);
      SmartsResult Replayed = simulateSmartsReplay(*Image, M, SC);
      expectSmartsEqual(Live, Replayed);
    }
  }
}

TEST(TraceReplay, CaptureModeIsBitwiseTransparent) {
  // A capturing run must itself be identical to an uninstrumented one.
  auto Prog = compileShared("vpr");
  SmartsConfig SC = ResponseSurface::Options::makeDefaultSmarts();
  SmartsResult Plain = simulateSmarts(*Prog, MachineConfig::typical(), SC);
  TraceBuilder Builder;
  SmartsResult Captured = simulateSmarts(*Prog, MachineConfig::typical(), SC,
                                         4'000'000'000ull, &Builder);
  expectSmartsEqual(Plain, Captured);
}

TEST(TraceReplay, TooShortToSampleFallbackMatchesLive) {
  // A window size larger than the whole program forces the SMARTS
  // detailed-fallback path; replay must take it identically.
  auto Prog = compileShared("gzip");
  auto Image = captureImage(Prog);
  SmartsConfig SC;
  SC.WindowSize = 1'000'000'000ull;
  SC.SamplingInterval = 2;
  SmartsResult Live = simulateSmarts(*Prog, MachineConfig::typical(), SC);
  SmartsResult Replayed =
      simulateSmartsReplay(*Image, MachineConfig::typical(), SC);
  ASSERT_TRUE(Live.FellBackToDetailed);
  expectSmartsEqual(Live, Replayed);
}

//===----------------------------------------------------------------------===//
// TraceCache budget / LRU / kill switch
//===----------------------------------------------------------------------===//

/// Restores the global cache to its default-budget, empty state around
/// each test so cases compose in one process.
class TraceCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceCache::global().setBudgetBytes(256 * 1024 * 1024);
    TraceCache::global().clear();
  }
  void TearDown() override {
    TraceCache::global().setBudgetBytes(256 * 1024 * 1024);
    TraceCache::global().clear();
  }
};

TEST_F(TraceCacheTest, InsertLookupAndKeepFirst) {
  TraceCache &C = TraceCache::global();
  auto Image = captureImage(compileShared("gzip"));
  EXPECT_TRUE(C.insert("k1", Image));
  EXPECT_EQ(C.lookup("k1").get(), Image.get());
  EXPECT_EQ(C.lookup("absent"), nullptr);

  // Duplicate key: the first image is kept (concurrent capturers of the
  // same program produce identical traces, so either is valid).
  auto Other = captureImage(compileShared("gzip"));
  EXPECT_TRUE(C.insert("k1", Other));
  EXPECT_EQ(C.lookup("k1").get(), Image.get());
}

TEST_F(TraceCacheTest, EvictsLeastRecentlyUsedUnderBudget) {
  TraceCache &C = TraceCache::global();
  auto I1 = captureImage(compileShared("gzip"));
  auto I2 = captureImage(compileShared("art"));
  auto I3 = captureImage(compileShared("mcf"));
  // Budget fits I1 plus either of the other two, never all three: so
  // inserting I3 must evict exactly the LRU entry.
  C.setBudgetBytes(I1->bytes() + std::max(I2->bytes(), I3->bytes()));
  ASSERT_TRUE(C.insert("g", I1));
  ASSERT_TRUE(C.insert("a", I2));
  // Touch "g" so "a" is the LRU victim.
  ASSERT_NE(C.lookup("g"), nullptr);
  ASSERT_TRUE(C.insert("m", I3));
  EXPECT_EQ(C.lookup("a"), nullptr);
  EXPECT_NE(C.lookup("g"), nullptr);
  EXPECT_NE(C.lookup("m"), nullptr);
  EXPECT_GT(C.stats().Evictions, 0u);
}

TEST_F(TraceCacheTest, OversizedImageIsRejectedAsFallback) {
  TraceCache &C = TraceCache::global();
  auto Image = captureImage(compileShared("gzip"));
  uint64_t Before = C.stats().Fallbacks;
  C.setBudgetBytes(Image->bytes() / 2); // Image alone exceeds the budget.
  EXPECT_FALSE(C.insert("big", Image));
  EXPECT_EQ(C.lookup("big"), nullptr);
  EXPECT_EQ(C.stats().Fallbacks, Before + 1);
}

TEST_F(TraceCacheTest, ZeroBudgetDisablesEntirely) {
  TraceCache &C = TraceCache::global();
  C.setBudgetBytes(0);
  EXPECT_FALSE(C.enabled());
  auto Image = captureImage(compileShared("gzip"));
  EXPECT_FALSE(C.insert("k", Image));
  EXPECT_EQ(C.lookup("k"), nullptr);
  EXPECT_EQ(C.stats().Entries, 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end through ResponseSurface / measureAll
//===----------------------------------------------------------------------===//

std::vector<DesignPoint> machineSweepPoints(const ParameterSpace &Space) {
  // Two flag vectors x three machines: exercises both cache levels (six
  // points, two compiles, two functional executions).
  std::vector<DesignPoint> Points;
  for (const OptimizationConfig &Opt :
       {OptimizationConfig::O1(), OptimizationConfig::O3()})
    for (const MachineConfig &M :
         {MachineConfig::constrained(), MachineConfig::typical(),
          MachineConfig::aggressive()})
      Points.push_back(Space.fromConfigs(Opt, M));
  return Points;
}

std::vector<double> measureSweep(const ParameterSpace &Space,
                                 const std::string &Workload) {
  ResponseSurface::Options Opts;
  Opts.Workload = Workload;
  Opts.Input = InputSet::Test;
  ResponseSurface Surface(Space, Opts);
  return Surface.measureAll(machineSweepPoints(Space));
}

TEST(TraceReplayEndToEnd, CachedAndUncachedResponsesBitwiseIdentical) {
  ParameterSpace Space = ParameterSpace::paperSpace();
  TraceCache &C = TraceCache::global();

  C.setBudgetBytes(0); // Fully disabled: today's pipeline.
  std::vector<double> Disabled = measureSweep(Space, "vortex");

  C.setBudgetBytes(256 * 1024 * 1024);
  C.clear();
  std::vector<double> Cached = measureSweep(Space, "vortex");
  EXPECT_GT(C.stats().Hits, 0u) << "machine sweep should replay";

  // A budget too small for any trace: every insert is rejected and every
  // point runs live.
  C.setBudgetBytes(1);
  C.clear();
  std::vector<double> Starved = measureSweep(Space, "vortex");

  C.setBudgetBytes(256 * 1024 * 1024);
  C.clear();

  ASSERT_EQ(Disabled.size(), Cached.size());
  ASSERT_EQ(Disabled.size(), Starved.size());
  for (size_t I = 0; I < Disabled.size(); ++I) {
    EXPECT_EQ(Disabled[I], Cached[I]) << "point " << I;
    EXPECT_EQ(Disabled[I], Starved[I]) << "point " << I;
  }
}

TEST(TraceReplayEndToEnd, MeasureAllDeterministicAcrossThreadCounts) {
  ParameterSpace Space = ParameterSpace::paperSpace();
  TraceCache &C = TraceCache::global();

  setGlobalThreadCount(1);
  C.clear();
  std::vector<double> OneThread = measureSweep(Space, "bzip2");

  setGlobalThreadCount(8);
  C.clear();
  std::vector<double> EightThreads = measureSweep(Space, "bzip2");

  setGlobalThreadCount(0);
  C.clear();

  ASSERT_EQ(OneThread.size(), EightThreads.size());
  for (size_t I = 0; I < OneThread.size(); ++I)
    EXPECT_EQ(OneThread[I], EightThreads[I]) << "point " << I;
}

} // namespace
