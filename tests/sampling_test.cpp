//===- tests/sampling_test.cpp - SMARTS sampling tests -------------------------===//

#include "codegen/CodeGenerator.h"
#include "opt/Passes.h"
#include "sampling/Smarts.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

using namespace msem;
using namespace msem::testing;

namespace {

MachineProgram compileO2(Module &M) {
  OptimizationConfig C = OptimizationConfig::O2();
  runPassPipeline(M, C);
  CodeGenOptions Opts;
  Opts.PostRaSchedule = true;
  return compileToProgram(M, Opts);
}

TEST(SmartsTest, EstimateTracksDetailedSimulation) {
  auto M = makeNestedGrid(192, 192); // ~1M+ dynamic instructions.
  MachineProgram Prog = compileO2(*M);
  MachineConfig Cfg = MachineConfig::typical();

  SimulationResult Full = simulateDetailed(Prog, Cfg);
  ASSERT_FALSE(Full.Exec.Trapped);

  SmartsConfig SC;
  SC.WindowSize = 1000;
  SC.SamplingInterval = 10; // Denser than the paper: short program.
  SmartsResult Sampled = simulateSmarts(Prog, Cfg, SC);
  ASSERT_FALSE(Sampled.Exec.Trapped);
  EXPECT_FALSE(Sampled.FellBackToDetailed);
  EXPECT_GT(Sampled.MeasuredWindows, 20u);

  double Rel = std::fabs(static_cast<double>(Sampled.EstimatedCycles) -
                         static_cast<double>(Full.Cycles)) /
               static_cast<double>(Full.Cycles);
  EXPECT_LT(Rel, 0.05) << "sampled=" << Sampled.EstimatedCycles
                       << " full=" << Full.Cycles;
}

TEST(SmartsTest, SamplesFractionOfInstructions) {
  auto M = makeNestedGrid(128, 128);
  MachineProgram Prog = compileO2(*M);
  SmartsConfig SC;
  SC.WindowSize = 500;
  SC.SamplingInterval = 20;
  SmartsResult R = simulateSmarts(Prog, MachineConfig::typical(), SC);
  ASSERT_FALSE(R.Exec.Trapped);
  // Detailed portion ~ (1 warmup + 1 measured)/20 = 10%; sampled counter
  // only counts measured windows ~5%.
  EXPECT_LT(static_cast<double>(R.SampledInstructions),
            0.2 * static_cast<double>(R.TotalInstructions));
  EXPECT_GT(R.SampledInstructions, 0u);
}

TEST(SmartsTest, ReportsErrorBound) {
  auto M = makeNestedGrid(128, 128);
  MachineProgram Prog = compileO2(*M);
  SmartsConfig SC;
  SC.WindowSize = 500;
  SC.SamplingInterval = 10;
  SmartsResult R = simulateSmarts(Prog, MachineConfig::typical(), SC);
  EXPECT_GT(R.RelativeErrorBound, 0.0);
  EXPECT_LT(R.RelativeErrorBound, 1.0);
}

TEST(SmartsTest, ShortProgramFallsBackToDetailed) {
  auto M = makeSumLoop(10);
  MachineProgram Prog = compileO2(*M);
  SmartsConfig SC; // Interval 1000 x window 1000 >> program length.
  SmartsResult R = simulateSmarts(Prog, MachineConfig::typical(), SC);
  EXPECT_TRUE(R.FellBackToDetailed);
  EXPECT_GT(R.EstimatedCycles, 0u);
}

TEST(SmartsTest, ArchitecturalBehaviorUnchanged) {
  auto RefM = makeBranchy(23, 30000);
  InterpResult Ref = Interpreter().run(*RefM);
  auto M = makeBranchy(23, 30000);
  MachineProgram Prog = compileO2(*M);
  SmartsConfig SC;
  SC.WindowSize = 200;
  SC.SamplingInterval = 5;
  SmartsResult R = simulateSmarts(Prog, MachineConfig::constrained(), SC);
  EXPECT_EQ(R.Exec.ReturnValue, Ref.ReturnValue);
}

TEST(SmartsTest, DenserSamplingTightensBound) {
  auto M = makeNestedGrid(160, 160);
  MachineProgram Prog = compileO2(*M);
  SmartsConfig Sparse;
  Sparse.WindowSize = 500;
  Sparse.SamplingInterval = 40;
  SmartsConfig Dense = Sparse;
  Dense.SamplingInterval = 5;
  SmartsResult RSparse =
      simulateSmarts(Prog, MachineConfig::typical(), Sparse);
  SmartsResult RDense =
      simulateSmarts(Prog, MachineConfig::typical(), Dense);
  ASSERT_FALSE(RSparse.FellBackToDetailed);
  ASSERT_FALSE(RDense.FellBackToDetailed);
  EXPECT_GT(RDense.MeasuredWindows, RSparse.MeasuredWindows);
}

} // namespace

namespace {

TEST(SmartsTest, FunctionalWarmingImprovesEstimate) {
  // The defining SMARTS property: with warming off, detailed windows open
  // on stale cache/predictor state and the CPI estimate degrades.
  auto M = makeNestedGrid(160, 160);
  MachineProgram Prog = compileO2(*M);
  MachineConfig Cfg = MachineConfig::typical();
  Cfg.DcacheBytes = 8 * 1024; // Make cache state matter.
  SimulationResult Full = simulateDetailed(Prog, Cfg);

  SmartsConfig Warm;
  Warm.WindowSize = 500;
  Warm.SamplingInterval = 20;
  SmartsConfig Cold = Warm;
  Cold.FunctionalWarming = false;

  auto RelErr = [&](const SmartsResult &R) {
    return std::fabs(static_cast<double>(R.EstimatedCycles) -
                     static_cast<double>(Full.Cycles)) /
           static_cast<double>(Full.Cycles);
  };
  SmartsResult RWarm = simulateSmarts(Prog, Cfg, Warm);
  SmartsResult RCold = simulateSmarts(Prog, Cfg, Cold);
  ASSERT_FALSE(RWarm.FellBackToDetailed);
  ASSERT_FALSE(RCold.FellBackToDetailed);
  EXPECT_LE(RelErr(RWarm), RelErr(RCold) + 1e-9)
      << "warm " << RWarm.EstimatedCycles << " cold "
      << RCold.EstimatedCycles << " full " << Full.Cycles;
}

TEST(SmartsTest, ReentrantAcrossConcurrentThreads) {
  // The parallel measurement engine runs simulateSmarts concurrently from
  // pool workers; the simulator must keep all state per-call. Two threads
  // simulating the same binary must each reproduce the sequential result.
  auto M = makeNestedGrid(96, 96);
  MachineProgram Prog = compileO2(*M);
  MachineConfig Cfg = MachineConfig::typical();
  SmartsConfig SC;
  SC.SamplingInterval = 10;

  SmartsResult Base = simulateSmarts(Prog, Cfg, SC);
  ASSERT_FALSE(Base.Exec.Trapped);

  uint64_t CyclesA = 0, CyclesB = 0;
  size_t WindowsA = 0, WindowsB = 0;
  std::thread T1([&] {
    SmartsResult R = simulateSmarts(Prog, Cfg, SC);
    CyclesA = R.EstimatedCycles;
    WindowsA = R.MeasuredWindows;
  });
  std::thread T2([&] {
    SmartsResult R = simulateSmarts(Prog, Cfg, SC);
    CyclesB = R.EstimatedCycles;
    WindowsB = R.MeasuredWindows;
  });
  T1.join();
  T2.join();
  EXPECT_EQ(CyclesA, Base.EstimatedCycles);
  EXPECT_EQ(CyclesB, Base.EstimatedCycles);
  EXPECT_EQ(WindowsA, Base.MeasuredWindows);
  EXPECT_EQ(WindowsB, Base.MeasuredWindows);
}

} // namespace
