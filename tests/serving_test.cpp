//===- tests/serving_test.cpp - Serving stack tests -------------------------===//
//
// Coverage for the serving layer end to end: the shared HTTP/1.1 wire
// layer (incremental parser, route registration), the msem.predict.v1
// schema, the PredictionService facade (strict/tolerant semantics,
// admission coalescing, hot reload) and the epoll HttpServer driven
// through real loopback sockets -- byte-at-a-time clients, pipelining,
// keep-alive, oversized request lines and the CLI-vs-HTTP bitwise
// identity contract.
//
//===----------------------------------------------------------------------===//

#include "serving/HttpServer.h"
#include "serving/PredictSchema.h"
#include "serving/PredictionService.h"
#include "serving/SloTracker.h"

#include "design/Doe.h"
#include "model/LinearModel.h"
#include "registry/ModelRegistry.h"
#include "support/Format.h"
#include "support/Http.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "telemetry/OpenMetrics.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace msem;
using namespace msem::serving;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures (mirrors registry_test: temp registry + small trained model)
//===----------------------------------------------------------------------===//

std::string tempRegistryDir(const char *Tag) {
  return formatString("serving_test_%s_%d", Tag, static_cast<int>(getpid()));
}

struct DirGuard {
  std::string Dir;
  explicit DirGuard(std::string D) : Dir(std::move(D)) {
    std::filesystem::remove_all(Dir);
  }
  ~DirGuard() { std::filesystem::remove_all(Dir); }
};

std::unique_ptr<Model> trainSmallModel(const ParameterSpace &Space,
                                       uint64_t Seed) {
  Rng R(Seed);
  std::vector<DesignPoint> Points;
  std::vector<double> Y;
  for (int I = 0; I < 60; ++I) {
    DesignPoint P = Space.randomPoint(R);
    std::vector<double> X = Space.encode(P);
    double V = 500 + 33.07 * X[0] - 12.9 * X[3] + 7.77 * X[0] * X[5] +
               R.normal(0, 2.0);
    Points.push_back(std::move(P));
    Y.push_back(V);
  }
  Matrix X = encodeMatrix(Space, Points);
  auto M = std::make_unique<LinearModel>();
  M->train(X, Y);
  return M;
}

ModelArtifactInfo makeInfo(const std::string &Workload,
                           const std::string &Platform = "joint") {
  ModelArtifactInfo Info;
  Info.Key.Workload = Workload;
  Info.Key.Input = InputSet::Train;
  Info.Key.Metric = ResponseMetric::Cycles;
  Info.Key.Technique = "linear";
  Info.Key.Platform = Platform;
  Info.Space = ParameterSpace::compilerSpace();
  Info.Campaign = "serving-test";
  Info.Seed = 0x5EEDull;
  Info.TrainSize = 60;
  Info.TestSize = 8;
  Info.SimulationsUsed = 68;
  Info.StopReason = "design-exhausted";
  Info.Quality = {3.5, 120.25, 0.93};
  return Info;
}

/// Publishes a fresh linear model for \p Info into \p Dir and returns it
/// (the in-process reference the service results must match bitwise).
std::unique_ptr<Model> publishModel(const std::string &Dir,
                                    const ModelArtifactInfo &Info,
                                    uint64_t Seed) {
  ModelRegistry Reg({Dir, 4});
  std::unique_ptr<Model> M = trainSmallModel(Info.Space, Seed);
  std::string Error;
  EXPECT_TRUE(Reg.publish(Info, *M, &Error)) << Error;
  return M;
}

std::vector<DesignPoint> sampleRows(const ParameterSpace &Space, size_t N,
                                    uint64_t Seed) {
  Rng R(Seed);
  std::vector<DesignPoint> Rows;
  for (size_t I = 0; I < N; ++I)
    Rows.push_back(Space.randomPoint(R));
  return Rows;
}

//===----------------------------------------------------------------------===//
// Raw-socket test client
//===----------------------------------------------------------------------===//

int connectLoopback(int Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

struct WireResponse {
  int Status = 0;
  std::string Head;
  std::string Body;
};

/// Reads one framed response from \p Fd. \p Buf persists across calls on
/// one connection so keep-alive and pipelined responses parse cleanly.
/// \p HeadOnly skips the body read (HEAD semantics: Content-Length names
/// bytes that never arrive).
bool readWireResponse(int Fd, std::string &Buf, WireResponse &Out,
                      bool HeadOnly = false) {
  auto FillTo = [&](size_t Want) {
    char Tmp[4096];
    while (Buf.size() < Want) {
      ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
      if (N <= 0)
        return false;
      Buf.append(Tmp, static_cast<size_t>(N));
    }
    return true;
  };
  size_t HeadEnd;
  while ((HeadEnd = Buf.find("\r\n\r\n")) == std::string::npos)
    if (!FillTo(Buf.size() + 1))
      return false;
  Out.Head = Buf.substr(0, HeadEnd + 4);
  if (sscanf(Out.Head.c_str(), "HTTP/1.1 %d", &Out.Status) != 1)
    return false;
  size_t Cl = 0;
  size_t ClPos = Out.Head.find("Content-Length: ");
  if (ClPos != std::string::npos)
    Cl = std::strtoull(Out.Head.c_str() + ClPos + 16, nullptr, 10);
  if (HeadOnly) {
    Buf.erase(0, HeadEnd + 4);
    Out.Body.clear();
    return true;
  }
  if (!FillTo(HeadEnd + 4 + Cl))
    return false;
  Out.Body = Buf.substr(HeadEnd + 4, Cl);
  Buf.erase(0, HeadEnd + 4 + Cl);
  return true;
}

std::string postRequest(const std::string &Path, const std::string &Body) {
  return formatString("POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %zu"
                      "\r\n\r\n%s",
                      Path.c_str(), Body.size(), Body.c_str());
}

//===----------------------------------------------------------------------===//
// HttpParser
//===----------------------------------------------------------------------===//

TEST(HttpParserTest, ParsesPostedRequestOneByteAtATime) {
  std::string Wire = postRequest("/v1/predict?x=1", "{\"a\":1}");
  HttpParser P;
  for (size_t I = 0; I + 1 < Wire.size(); ++I)
    ASSERT_EQ(P.feed(&Wire[I], 1), HttpParser::Status::NeedMore)
        << "completed early at byte " << I;
  ASSERT_EQ(P.feed(&Wire[Wire.size() - 1], 1), HttpParser::Status::Complete);
  EXPECT_EQ(P.request().Method, "POST");
  EXPECT_EQ(P.request().Path, "/v1/predict");
  EXPECT_EQ(P.request().Query, "x=1");
  EXPECT_EQ(P.request().Body, "{\"a\":1}");
  EXPECT_EQ(P.request().header("host"), "t");
  EXPECT_TRUE(P.keepAlive());
}

TEST(HttpParserTest, ResetResumesPipelinedLeftovers) {
  std::string Wire = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n"
                     "Connection: close\r\n\r\n";
  HttpParser P;
  ASSERT_EQ(P.feed(Wire.data(), Wire.size()), HttpParser::Status::Complete);
  EXPECT_EQ(P.request().Path, "/a");
  P.reset();
  // The second request was already buffered: Complete with no new bytes.
  ASSERT_EQ(P.status(), HttpParser::Status::Complete);
  EXPECT_EQ(P.request().Path, "/b");
  EXPECT_FALSE(P.keepAlive());
}

TEST(HttpParserTest, EnforcesLimitsWithPreciseStatuses) {
  HttpParser::Limits Lim;
  Lim.MaxRequestLine = 32;
  {
    // Oversized request line fails even before a newline arrives.
    HttpParser P(Lim);
    std::string Line(64, 'a');
    ASSERT_EQ(P.feed(Line.data(), Line.size()), HttpParser::Status::Error);
    EXPECT_EQ(P.errorStatus(), 431);
  }
  {
    HttpParser::Limits BodyLim;
    BodyLim.MaxBodyBytes = 16;
    HttpParser P(BodyLim);
    std::string W = "POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
    ASSERT_EQ(P.feed(W.data(), W.size()), HttpParser::Status::Error);
    EXPECT_EQ(P.errorStatus(), 413);
  }
  {
    HttpParser P;
    std::string W = "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    ASSERT_EQ(P.feed(W.data(), W.size()), HttpParser::Status::Error);
    EXPECT_EQ(P.errorStatus(), 501);
  }
  {
    HttpParser P;
    std::string W = "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
    ASSERT_EQ(P.feed(W.data(), W.size()), HttpParser::Status::Error);
    EXPECT_EQ(P.errorStatus(), 400);
  }
  {
    HttpParser P;
    std::string W = "bogus\r\n\r\n";
    ASSERT_EQ(P.feed(W.data(), W.size()), HttpParser::Status::Error);
    EXPECT_EQ(P.errorStatus(), 400);
  }
}

TEST(HttpParserTest, HonorsHttp10AndConnectionHeaders) {
  {
    HttpParser P;
    std::string W = "GET / HTTP/1.0\r\n\r\n";
    ASSERT_EQ(P.feed(W.data(), W.size()), HttpParser::Status::Complete);
    EXPECT_FALSE(P.keepAlive()); // 1.0 defaults to close...
  }
  {
    HttpParser P;
    std::string W = "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
    ASSERT_EQ(P.feed(W.data(), W.size()), HttpParser::Status::Complete);
    EXPECT_TRUE(P.keepAlive()); // ...unless the header overrides.
  }
}

//===----------------------------------------------------------------------===//
// HttpRouter
//===----------------------------------------------------------------------===//

HttpResponse textResponse(const std::string &Body) {
  HttpResponse R;
  R.Body = Body;
  return R;
}

HttpRequest makeRequest(const std::string &Method, const std::string &Path) {
  HttpRequest R;
  R.Method = Method;
  R.Path = Path;
  return R;
}

TEST(HttpRouterTest, DispatchesExactHeadFallback405And404) {
  HttpRouter Router;
  Router.add("GET", "/ping", [](const HttpRequest &) {
    return textResponse("pong\n");
  });
  EXPECT_EQ(Router.dispatch(makeRequest("GET", "/ping")).Body, "pong\n");
  // HEAD routes like GET (the transport strips the body bytes).
  EXPECT_EQ(Router.dispatch(makeRequest("HEAD", "/ping")).Status, 200);
  EXPECT_EQ(Router.dispatch(makeRequest("POST", "/ping")).Status, 405);
  EXPECT_EQ(Router.dispatch(makeRequest("GET", "/nope")).Status, 404);
}

TEST(HttpRouterTest, ScopedRouteUnregistersOnDestruction) {
  HttpRouter Router;
  {
    ScopedRoute R(Router, "GET", "/scoped", [](const HttpRequest &) {
      return textResponse("in scope\n");
    });
    EXPECT_EQ(Router.dispatch(makeRequest("GET", "/scoped")).Status, 200);
  }
  EXPECT_EQ(Router.dispatch(makeRequest("GET", "/scoped")).Status, 404);
}

TEST(HttpRouterTest, StaleTokenCannotEvictReplacementRoute) {
  HttpRouter Router;
  uint64_t Old = Router.add("GET", "/x", [](const HttpRequest &) {
    return textResponse("old\n");
  });
  Router.add("GET", "/x", [](const HttpRequest &) {
    return textResponse("new\n");
  });
  EXPECT_EQ(Router.dispatch(makeRequest("GET", "/x")).Body, "new\n");
  // The replaced registration's teardown must not tear down its successor.
  Router.remove(Old);
  EXPECT_EQ(Router.dispatch(makeRequest("GET", "/x")).Body, "new\n");
}

//===----------------------------------------------------------------------===//
// msem.predict.v1 schema
//===----------------------------------------------------------------------===//

TEST(PredictSchemaTest, KeySpecParsesAndRoundTrips) {
  ModelKey Key;
  std::string Error;
  ASSERT_TRUE(parseKeySpec("art,train,cycles,rbf,aggressive", Key, Error))
      << Error;
  EXPECT_EQ(Key.Workload, "art");
  EXPECT_EQ(Key.Input, InputSet::Train);
  EXPECT_EQ(Key.Metric, ResponseMetric::Cycles);
  EXPECT_EQ(Key.Technique, "rbf");
  EXPECT_EQ(Key.Platform, "aggressive");
  EXPECT_EQ(keySpec(Key), "art,train,cycles,rbf,aggressive");

  // Four fields default the platform to the joint model.
  ASSERT_TRUE(parseKeySpec("gzip,test,cycles,mars", Key, Error)) << Error;
  EXPECT_EQ(Key.Platform, "joint");

  for (const char *Bad : {"art,train,cycles", "art,bogus,cycles,rbf",
                          "art,train,bogus,rbf", "art,train,cycles,,joint",
                          "a,b,c,d,e,f"})
    EXPECT_FALSE(parseKeySpec(Bad, Key, Error)) << Bad;
}

TEST(PredictSchemaTest, RequestDocumentRoundTrips) {
  PredictRequest Req;
  std::string Error;
  ASSERT_TRUE(parseKeySpec("art,train,cycles,linear,joint", Req.Key, Error));
  Req.Rows = {{1, 2, 3}, {4, 5, 6}};
  Req.Format = PredictFormat::Csv;
  Req.ComparePlatform = "typical";

  PredictRequest Back;
  ASSERT_TRUE(parsePredictRequest(serializePredictRequest(Req), Back, Error))
      << Error;
  EXPECT_EQ(keySpec(Back.Key), keySpec(Req.Key));
  EXPECT_EQ(Back.Rows, Req.Rows);
  EXPECT_EQ(Back.Format, PredictFormat::Csv);
  EXPECT_EQ(Back.ComparePlatform, "typical");

  // Default options are omitted from the document and restored on parse.
  Req.Format = PredictFormat::Json;
  Req.ComparePlatform.clear();
  Json Doc = serializePredictRequest(Req);
  EXPECT_FALSE(Doc.has("options"));
  ASSERT_TRUE(parsePredictRequest(Doc, Back, Error)) << Error;
  EXPECT_EQ(Back.Format, PredictFormat::Json);
  EXPECT_TRUE(Back.ComparePlatform.empty());
}

TEST(PredictSchemaTest, RequestParserRejectsBadDocuments) {
  auto Fails = [](const std::string &Text, const std::string &Needle) {
    std::string Error;
    Json Doc = Json::parse(Text, &Error);
    ASSERT_TRUE(Error.empty()) << Error;
    PredictRequest Req;
    EXPECT_FALSE(parsePredictRequest(Doc, Req, Error)) << Text;
    EXPECT_NE(Error.find(Needle), std::string::npos) << Error;
  };
  Fails("{\"model\": \"a,train,cycles,rbf\", \"rows\": [[1]]}", "schema");
  Fails("{\"schema\": \"msem.predict.v2\", \"model\": \"a,train,cycles,rbf\","
        " \"rows\": [[1]]}",
        "unsupported schema");
  Fails("{\"schema\": \"msem.predict.v1\", \"rows\": [[1]]}", "model");
  Fails("{\"schema\": \"msem.predict.v1\", \"model\": \"a,train,cycles,rbf\"}",
        "rows");
  Fails("{\"schema\": \"msem.predict.v1\", \"model\": \"a,train,cycles,rbf\","
        " \"rows\": [[1,2],[1]]}",
        "disagree on width");
  Fails("{\"schema\": \"msem.predict.v1\", \"model\": \"a,train,cycles,rbf\","
        " \"rows\": [[1,\"x\"]]}",
        "non-numeric");
  Fails("{\"schema\": \"msem.predict.v1\", \"model\": \"a,train,cycles,rbf\","
        " \"rows\": [[1]], \"options\": {\"format\": \"xml\"}}",
        "unknown format");
}

TEST(PredictSchemaTest, RowsTextParsesCsvAndJsonl) {
  std::vector<DesignPoint> Rows;
  bool FromJsonl = false;
  std::string Error;

  ASSERT_TRUE(parseRowsText("a,b,c\n1,2,3\n4,5,6\n", Rows, FromJsonl, Error))
      << Error;
  EXPECT_FALSE(FromJsonl);
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0], (DesignPoint{1, 2, 3}));
  EXPECT_EQ(Rows[1], (DesignPoint{4, 5, 6}));

  ASSERT_TRUE(parseRowsText("[1, 2, 3]\n[4, 5, 6]\n", Rows, FromJsonl, Error))
      << Error;
  EXPECT_TRUE(FromJsonl);
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[1], (DesignPoint{4, 5, 6}));

  EXPECT_FALSE(parseRowsText("a,b\n1,nope\n", Rows, FromJsonl, Error));
  EXPECT_NE(Error.find("bad integer"), std::string::npos) << Error;
  EXPECT_FALSE(parseRowsText("a,b\n1,2\n3\n", Rows, FromJsonl, Error));
  EXPECT_FALSE(parseRowsText("\n  \n", Rows, FromJsonl, Error));
}

TEST(PredictSchemaTest, RenderersEmitHistoricalCliBytes) {
  PredictResponse Resp;
  Resp.Metric = ResponseMetric::Cycles;
  Resp.Platform = "aggressive";
  Resp.Predictions = {1234.5, 1.0 / 3.0};

  EXPECT_EQ(renderPredictCsv(Resp),
            formatString("predicted_cycles\n%.17g\n%.17g\n", 1234.5,
                         1.0 / 3.0));
  EXPECT_EQ(renderPredictJsonl(Resp),
            formatString("{\"request\": 0, \"prediction\": %.17g}\n"
                         "{\"request\": 1, \"prediction\": %.17g}\n",
                         1234.5, 1.0 / 3.0));

  Resp.ComparePlatform = "typical";
  Resp.ComparePredictions = {2469.0, 0.0};
  EXPECT_EQ(renderPredictCsv(Resp),
            formatString("predicted_cycles_aggressive,predicted_cycles_"
                         "typical,ratio\n%.17g,%.17g,%.6g\n%.17g,%.17g,%.6g\n",
                         1234.5, 2469.0, 1234.5 / 2469.0, 1.0 / 3.0, 0.0,
                         0.0));

  // The JSON document skips error rows in predictions and carries them in
  // an errors array instead.
  Resp.ComparePlatform.clear();
  Resp.ComparePredictions.clear();
  Resp.Errors = {{0, "bad width"}};
  Json Doc = serializePredictResponse(Resp);
  EXPECT_EQ(Doc["predictions"].size(), 1u);
  EXPECT_EQ(Doc["predictions"].at(0)["row"].asInt(), 1);
  EXPECT_EQ(Doc["errors"].at(0)["error"].asString(), "bad width");
}

TEST(PredictSchemaTest, OptionsWithoutFormatDefaultsToJson) {
  // Regression: an options object without "format" must fall back to
  // json (the fallback string used to be read through a dangling
  // reference).
  std::string Error;
  Json Doc = Json::parse(
      "{\"schema\": \"msem.predict.v1\","
      " \"model\": \"art,train,cycles,linear,joint\","
      " \"rows\": [[1, 2, 3]],"
      " \"options\": {\"compare\": \"typical\"}}",
      &Error);
  ASSERT_TRUE(Error.empty()) << Error;
  PredictRequest Req;
  ASSERT_TRUE(parsePredictRequest(Doc, Req, Error)) << Error;
  EXPECT_TRUE(Req.Format == PredictFormat::Json);
  EXPECT_EQ(Req.ComparePlatform, "typical");
}

TEST(PredictSchemaTest, TolerantRenderersMarkErrorRows) {
  // Tolerant-mode rejected rows hold a 0.0 placeholder in Predictions;
  // the text renderers must mark them instead of emitting it as a real
  // prediction.
  PredictResponse Resp;
  Resp.Metric = ResponseMetric::Cycles;
  Resp.Platform = "aggressive";
  Resp.Predictions = {1234.5, 0.0, 42.0};
  Resp.Errors = {{1, "request width 2 \"bad\""}};

  EXPECT_EQ(renderPredictCsv(Resp),
            formatString("predicted_cycles\n%.17g\nnan\n%.17g\n", 1234.5,
                         42.0));
  EXPECT_EQ(renderPredictJsonl(Resp),
            formatString("{\"request\": 0, \"prediction\": %.17g}\n"
                         "{\"request\": 1, \"error\": "
                         "\"request width 2 \\\"bad\\\"\"}\n"
                         "{\"request\": 2, \"prediction\": %.17g}\n",
                         1234.5, 42.0));

  Resp.ComparePlatform = "typical";
  Resp.ComparePredictions = {2469.0, 0.0, 84.0};
  std::string Csv = renderPredictCsv(Resp);
  EXPECT_NE(Csv.find("nan,nan,nan\n"), std::string::npos) << Csv;
}

//===----------------------------------------------------------------------===//
// PredictionService
//===----------------------------------------------------------------------===//

PredictionService::Options serviceOptions(const std::string &Dir) {
  PredictionService::Options O;
  O.RegistryDir = Dir;
  return O;
}

TEST(PredictionServiceTest, MatchesDirectModelPredictionsBitwise) {
  DirGuard Guard(tempRegistryDir("bitwise"));
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = publishModel(Guard.Dir, Info, 101);
  PredictionService Svc(serviceOptions(Guard.Dir));

  PredictRequest Req;
  Req.Key = Info.Key;
  Req.Rows = sampleRows(Info.Space, 16, 102);
  PredictResponse Resp;
  std::string Error;
  ASSERT_EQ(Svc.predict(Req, Resp, Error, /*Strict=*/true), 200) << Error;
  EXPECT_EQ(Resp.ModelId, "art-train-cycles-linear-joint");
  EXPECT_TRUE(Resp.Errors.empty());
  ASSERT_EQ(Resp.Predictions.size(), Req.Rows.size());
  for (size_t I = 0; I < Req.Rows.size(); ++I)
    EXPECT_EQ(Resp.Predictions[I], M->predict(Info.Space.encode(Req.Rows[I])))
        << "row " << I;
}

TEST(PredictionServiceTest, StrictFailsFastTolerantReportsPerRow) {
  DirGuard Guard(tempRegistryDir("strict"));
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = publishModel(Guard.Dir, Info, 110);
  PredictionService Svc(serviceOptions(Guard.Dir));

  PredictRequest Req;
  Req.Key = Info.Key;
  Req.Rows = sampleRows(Info.Space, 3, 111);
  Req.Rows[1] = {1, 2, 3}; // Matches neither full width nor the prefix.

  PredictResponse Resp;
  std::string Error;
  EXPECT_EQ(Svc.predict(Req, Resp, Error, /*Strict=*/true), 400);
  EXPECT_EQ(Error.rfind("request 2: ", 0), 0u) << Error;

  ASSERT_EQ(Svc.predict(Req, Resp, Error, /*Strict=*/false), 200) << Error;
  ASSERT_EQ(Resp.Errors.size(), 1u);
  EXPECT_EQ(Resp.Errors[0].Row, 1u);
  ASSERT_EQ(Resp.Predictions.size(), 3u);
  EXPECT_EQ(Resp.Predictions[0], M->predict(Info.Space.encode(Req.Rows[0])));
  EXPECT_EQ(Resp.Predictions[1], 0.0); // Placeholder under the error row.
  EXPECT_EQ(Resp.Predictions[2], M->predict(Info.Space.encode(Req.Rows[2])));
}

TEST(PredictionServiceTest, MapsFailureModesToHttpStatuses) {
  DirGuard Guard(tempRegistryDir("status"));
  ModelArtifactInfo Info = makeInfo("art");
  publishModel(Guard.Dir, Info, 120);

  PredictionService::Options O = serviceOptions(Guard.Dir);
  O.MaxBatchRows = 4;
  O.MaxQueueRows = 2;
  PredictionService Svc(O);

  PredictRequest Req;
  Req.Key = Info.Key;
  PredictResponse Resp;
  std::string Error;

  Req.Rows.clear();
  EXPECT_EQ(Svc.predict(Req, Resp, Error, true), 400); // No rows.

  Req.Rows = sampleRows(Info.Space, 5, 121);
  EXPECT_EQ(Svc.predict(Req, Resp, Error, true), 413); // Over MaxBatchRows.
  EXPECT_NE(Error.find("per-request limit"), std::string::npos) << Error;

  Req.Rows = sampleRows(Info.Space, 3, 122);
  EXPECT_EQ(Svc.predict(Req, Resp, Error, true), 503); // Over MaxQueueRows.
  EXPECT_NE(Error.find("overloaded"), std::string::npos) << Error;

  Req.Rows = sampleRows(Info.Space, 2, 123);
  Req.Key.Workload = "nonexistent";
  EXPECT_EQ(Svc.predict(Req, Resp, Error, true), 404);
}

TEST(PredictionServiceTest, CompareModePredictsBothPlatforms) {
  DirGuard Guard(tempRegistryDir("compare"));
  ModelArtifactInfo Alpha = makeInfo("art", "alpha");
  ModelArtifactInfo Beta = makeInfo("art", "beta");
  std::unique_ptr<Model> MA = publishModel(Guard.Dir, Alpha, 130);
  std::unique_ptr<Model> MB = publishModel(Guard.Dir, Beta, 131);
  PredictionService Svc(serviceOptions(Guard.Dir));

  PredictRequest Req;
  Req.Key = Alpha.Key;
  Req.ComparePlatform = "beta";
  Req.Rows = sampleRows(Alpha.Space, 6, 132);
  PredictResponse Resp;
  std::string Error;
  ASSERT_EQ(Svc.predict(Req, Resp, Error, true), 200) << Error;
  EXPECT_EQ(Resp.ComparePlatform, "beta");
  ASSERT_EQ(Resp.ComparePredictions.size(), Req.Rows.size());
  for (size_t I = 0; I < Req.Rows.size(); ++I) {
    std::vector<double> X = Alpha.Space.encode(Req.Rows[I]);
    EXPECT_EQ(Resp.Predictions[I], MA->predict(X));
    EXPECT_EQ(Resp.ComparePredictions[I], MB->predict(X));
  }
  EXPECT_EQ(renderPredictCsv(Resp).rfind(
                "predicted_cycles_alpha,predicted_cycles_beta,ratio\n", 0),
            0u);

  // A missing compare platform fails the whole request, even tolerant.
  Req.ComparePlatform = "gamma";
  EXPECT_EQ(Svc.predict(Req, Resp, Error, false), 404);
}

TEST(PredictionServiceTest, ConcurrentRequestsCoalesceBitwiseClean) {
  DirGuard Guard(tempRegistryDir("coalesce"));
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> M = publishModel(Guard.Dir, Info, 140);
  PredictionService Svc(serviceOptions(Guard.Dir));

  // Each thread owns a distinct slice of rows; whatever mix of leaders
  // and followers the schedule produces, every caller must get exactly
  // the bytes a serial run yields (coalescing is bitwise-neutral).
  constexpr int Threads = 8, RowsPer = 5;
  std::vector<DesignPoint> All = sampleRows(Info.Space, Threads * RowsPer, 141);
  std::vector<std::vector<double>> Got(Threads);
  std::vector<int> Status(Threads, 0);
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      PredictRequest Req;
      Req.Key = Info.Key;
      Req.Rows.assign(All.begin() + T * RowsPer,
                      All.begin() + (T + 1) * RowsPer);
      PredictResponse Resp;
      std::string Error;
      Status[T] = Svc.predict(Req, Resp, Error, true);
      Got[T] = Resp.Predictions;
    });
  for (std::thread &W : Workers)
    W.join();

  for (int T = 0; T < Threads; ++T) {
    ASSERT_EQ(Status[T], 200) << "thread " << T;
    ASSERT_EQ(Got[T].size(), static_cast<size_t>(RowsPer));
    for (int I = 0; I < RowsPer; ++I)
      EXPECT_EQ(Got[T][I],
                M->predict(Info.Space.encode(All[T * RowsPer + I])))
          << "thread " << T << " row " << I;
  }
}

TEST(PredictionServiceTest, HotReloadCutsOverWithoutDroppingOldHandles) {
  DirGuard Guard(tempRegistryDir("reload"));
  ModelArtifactInfo Info = makeInfo("art");
  std::unique_ptr<Model> V1 = publishModel(Guard.Dir, Info, 150);
  PredictionService Svc(serviceOptions(Guard.Dir));

  PredictRequest Req;
  Req.Key = Info.Key;
  Req.Rows = sampleRows(Info.Space, 4, 151);
  PredictResponse Resp;
  std::string Error;
  ASSERT_EQ(Svc.predict(Req, Resp, Error, true), 200) << Error;
  std::vector<double> P1 = Resp.Predictions;

  // Seed the watch with the current manifest, then verify quiescence.
  EXPECT_TRUE(Svc.pollManifestOnce()); // First observation of the manifest.
  EXPECT_FALSE(Svc.pollManifestOnce());
  uint64_t ReloadsBefore = Svc.reloadCount();

  // An in-flight holder pins the artifact it resolved at admission.
  std::shared_ptr<const ModelArtifact> Pinned =
      Svc.registry().fetch(Info.Key, &Error);
  ASSERT_NE(Pinned, nullptr) << Error;

  // A second process publishes a new model under the same key...
  std::unique_ptr<Model> V2 = publishModel(Guard.Dir, Info, 160);

  // ...but until the watch observes the manifest change, the service's
  // cache keeps serving the pinned version (no torn cutover).
  ASSERT_EQ(Svc.predict(Req, Resp, Error, true), 200) << Error;
  EXPECT_EQ(Resp.Predictions, P1);

  ASSERT_TRUE(Svc.pollManifestOnce());
  EXPECT_EQ(Svc.reloadCount(), ReloadsBefore + 1);
  ASSERT_EQ(Svc.predict(Req, Resp, Error, true), 200) << Error;
  EXPECT_NE(Resp.Predictions, P1); // New version now serves...
  for (size_t I = 0; I < Req.Rows.size(); ++I) {
    std::vector<double> X = Info.Space.encode(Req.Rows[I]);
    EXPECT_EQ(Resp.Predictions[I], V2->predict(X));
    EXPECT_EQ(Pinned->M->predict(X), V1->predict(X)) // ...old handle drains
        << "pinned artifact must keep serving the old version";
  }
}

TEST(PredictionServiceTest, HandlePredictRendersRequestedFormat) {
  DirGuard Guard(tempRegistryDir("handle"));
  ModelArtifactInfo Info = makeInfo("art");
  publishModel(Guard.Dir, Info, 170);
  PredictionService Svc(serviceOptions(Guard.Dir));

  PredictRequest Req;
  Req.Key = Info.Key;
  Req.Rows = sampleRows(Info.Space, 5, 171);
  Req.Format = PredictFormat::Csv;

  // The HTTP handler must emit exactly the CLI's bytes for these rows.
  PredictResponse Expected;
  std::string Error;
  ASSERT_EQ(Svc.predict(Req, Expected, Error, true), 200) << Error;

  HttpRequest HReq = makeRequest("POST", "/v1/predict");
  HReq.Body = serializePredictRequest(Req).dump();
  HttpResponse HResp = Svc.handlePredict(HReq);
  EXPECT_EQ(HResp.Status, 200);
  EXPECT_EQ(HResp.ContentType, "text/csv; charset=utf-8");
  EXPECT_EQ(HResp.Body, renderPredictCsv(Expected));

  // Malformed body and unknown model map to structured JSON errors.
  HReq.Body = "{not json";
  EXPECT_EQ(Svc.handlePredict(HReq).Status, 400);
  Req.Key.Workload = "nonexistent";
  HReq.Body = serializePredictRequest(Req).dump();
  HttpResponse Missing = Svc.handlePredict(HReq);
  EXPECT_EQ(Missing.Status, 404);
  EXPECT_NE(Missing.Body.find("\"error\""), std::string::npos);
}

TEST(PredictionServiceTest, HandleModelsListsManifestInventory) {
  DirGuard Guard(tempRegistryDir("models"));
  ModelArtifactInfo Info = makeInfo("art");
  publishModel(Guard.Dir, Info, 180);
  PredictionService Svc(serviceOptions(Guard.Dir));

  HttpResponse Resp = Svc.handleModels(makeRequest("GET", "/v1/models"));
  EXPECT_EQ(Resp.Status, 200);
  EXPECT_NE(Resp.Body.find("\"models\""), std::string::npos);
  EXPECT_NE(Resp.Body.find("art-train-cycles-linear-joint"),
            std::string::npos);
  EXPECT_NE(Resp.Body.find("art,train,cycles,linear,joint"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// HttpServer (live loopback sockets)
//===----------------------------------------------------------------------===//

TEST(HttpServerTest, ServesKeepAliveConnectionsAndCounts) {
  HttpRouter Router;
  ScopedRoute Ping(Router, "GET", "/ping", [](const HttpRequest &) {
    return textResponse("pong\n");
  });
  HttpServer Server(Router, HttpServer::Options());
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  ASSERT_GT(Server.port(), 0);

  int Fd = connectLoopback(Server.port());
  ASSERT_GE(Fd, 0);
  std::string Buf;
  WireResponse R;
  for (int I = 0; I < 3; ++I) {
    ASSERT_TRUE(httpSendAll(Fd, "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
    ASSERT_TRUE(readWireResponse(Fd, Buf, R)) << "request " << I;
    EXPECT_EQ(R.Status, 200);
    EXPECT_EQ(R.Body, "pong\n");
    EXPECT_NE(R.Head.find("Connection: keep-alive"), std::string::npos);
  }
  ::close(Fd);
  Server.stop();
  EXPECT_FALSE(Server.running());
  EXPECT_EQ(Server.stats().Accepted, 1u);
  EXPECT_EQ(Server.stats().Requests, 3u);
  EXPECT_EQ(Server.stats().ParseErrors, 0u);
}

TEST(HttpServerTest, SurvivesByteAtATimeClients) {
  HttpRouter Router;
  ScopedRoute Echo(Router, "POST", "/echo", [](const HttpRequest &R) {
    return textResponse(R.Body);
  });
  HttpServer Server(Router, HttpServer::Options());
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  int Fd = connectLoopback(Server.port());
  ASSERT_GE(Fd, 0);
  std::string Wire = postRequest("/echo", "slow and steady");
  for (size_t I = 0; I < Wire.size(); ++I) {
    ASSERT_TRUE(httpSendAll(Fd, Wire.substr(I, 1)));
    if (I % 16 == 0) // Let the loop observe genuinely partial reads.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string Buf;
  WireResponse R;
  ASSERT_TRUE(readWireResponse(Fd, Buf, R));
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.Body, "slow and steady");
  ::close(Fd);
  Server.stop();
}

TEST(HttpServerTest, DrainsPipelinedRequestsInOrder) {
  HttpRouter Router;
  ScopedRoute Echo(Router, "POST", "/echo", [](const HttpRequest &R) {
    return textResponse(R.Body);
  });
  HttpServer Server(Router, HttpServer::Options());
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  int Fd = connectLoopback(Server.port());
  ASSERT_GE(Fd, 0);
  // Both requests land in one segment; responses must come back in order
  // on the same connection.
  ASSERT_TRUE(httpSendAll(Fd, postRequest("/echo", "first") +
                                  postRequest("/echo", "second")));
  std::string Buf;
  WireResponse R1, R2;
  ASSERT_TRUE(readWireResponse(Fd, Buf, R1));
  ASSERT_TRUE(readWireResponse(Fd, Buf, R2));
  EXPECT_EQ(R1.Body, "first");
  EXPECT_EQ(R2.Body, "second");
  ::close(Fd);
  Server.stop();
  EXPECT_EQ(Server.stats().Requests, 2u);
}

TEST(HttpServerTest, BackpressurePausesDispatchThenResumesOnDrain) {
  // A client that pipelines requests without reading responses must not
  // grow the server's per-connection output without bound: dispatch
  // pauses at MaxPendingOutBytes and resumes as the buffer drains, so
  // every response still arrives, in order.
  std::string Big(64 * 1024, 'x');
  HttpRouter Router;
  ScopedRoute BigRoute(Router, "GET", "/big", [&Big](const HttpRequest &) {
    return textResponse(Big);
  });
  HttpServer::Options O;
  O.MaxPendingOutBytes = 8 * 1024; // One response already trips the mark.
  HttpServer Server(Router, O);
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  // A tiny receive window forces the server into EAGAIN parking (not
  // just the in-call pause/resume fast path).
  int RcvBuf = 4096;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &RcvBuf, sizeof(RcvBuf));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Server.port()));
  inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);

  constexpr int N = 32; // 2 MiB of responses against an 8 KiB budget.
  std::string Wire;
  for (int I = 0; I < N; ++I)
    Wire += "GET /big HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_TRUE(httpSendAll(Fd, Wire));

  std::string Buf;
  WireResponse R;
  for (int I = 0; I < N; ++I) {
    ASSERT_TRUE(readWireResponse(Fd, Buf, R)) << "response " << I;
    EXPECT_EQ(R.Status, 200);
    EXPECT_EQ(R.Body, Big) << "response " << I;
  }
  ::close(Fd);
  Server.stop();
  EXPECT_EQ(Server.stats().Requests, static_cast<uint64_t>(N));
}

TEST(HttpServerTest, RejectsOversizedRequestLineAndCloses) {
  HttpRouter Router;
  HttpServer::Options O;
  O.Limits.MaxRequestLine = 128;
  HttpServer Server(Router, O);
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  int Fd = connectLoopback(Server.port());
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(httpSendAll(Fd, "GET /" + std::string(512, 'a') +
                                  " HTTP/1.1\r\n\r\n"));
  std::string Buf;
  WireResponse R;
  ASSERT_TRUE(readWireResponse(Fd, Buf, R));
  EXPECT_EQ(R.Status, 431);
  EXPECT_NE(R.Head.find("Connection: close"), std::string::npos);
  // The server closes after draining the error response.
  char Tmp[16];
  EXPECT_EQ(::recv(Fd, Tmp, sizeof(Tmp), 0), 0);
  ::close(Fd);
  Server.stop();
  EXPECT_EQ(Server.stats().ParseErrors, 1u);
  EXPECT_EQ(Server.stats().Requests, 0u);
}

TEST(HttpServerTest, HeadSuppressesBodyButKeepsLength) {
  HttpRouter Router;
  ScopedRoute Ping(Router, "GET", "/ping", [](const HttpRequest &) {
    return textResponse("pong\n");
  });
  HttpServer Server(Router, HttpServer::Options());
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  int Fd = connectLoopback(Server.port());
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(httpSendAll(Fd, "HEAD /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  std::string Buf;
  WireResponse R;
  ASSERT_TRUE(readWireResponse(Fd, Buf, R, /*HeadOnly=*/true));
  EXPECT_EQ(R.Status, 200);
  EXPECT_NE(R.Head.find("Content-Length: 5"), std::string::npos);
  // No body bytes follow; the next response on this keep-alive connection
  // starts immediately after the header block.
  ASSERT_TRUE(httpSendAll(Fd, "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  ASSERT_TRUE(readWireResponse(Fd, Buf, R));
  EXPECT_EQ(R.Body, "pong\n");
  ::close(Fd);
  Server.stop();
}

TEST(HttpServerTest, RoutesMissesTo404And405) {
  HttpRouter Router;
  ScopedRoute Ping(Router, "GET", "/ping", [](const HttpRequest &) {
    return textResponse("pong\n");
  });
  HttpServer Server(Router, HttpServer::Options());
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  int Fd = connectLoopback(Server.port());
  ASSERT_GE(Fd, 0);
  std::string Buf;
  WireResponse R;
  ASSERT_TRUE(httpSendAll(Fd, "GET /nope HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(readWireResponse(Fd, Buf, R));
  EXPECT_EQ(R.Status, 404);
  ASSERT_TRUE(httpSendAll(Fd, postRequest("/ping", "x")));
  ASSERT_TRUE(readWireResponse(Fd, Buf, R));
  EXPECT_EQ(R.Status, 405);
  ::close(Fd);
  Server.stop();
}

TEST(HttpServerTest, StopIsIdempotentAndPortIsReusable) {
  HttpRouter Router;
  auto Serve = [&] {
    HttpServer Server(Router, HttpServer::Options());
    std::string Error;
    ASSERT_TRUE(Server.start(&Error)) << Error;
    EXPECT_GT(Server.port(), 0);
    Server.stop();
    Server.stop(); // Idempotent.
  };
  // Two full start/stop cycles: no leaked fds, no lingering threads.
  Serve();
  Serve();
}

TEST(HttpServerTest, ServesPredictionsBitwiseIdenticalToCli) {
  DirGuard Guard(tempRegistryDir("e2e"));
  ModelArtifactInfo Info = makeInfo("art");
  publishModel(Guard.Dir, Info, 190);

  // The router must outlive the service: registerRoutes hands the service
  // ScopedRoutes that unregister themselves on destruction.
  HttpRouter Router;
  PredictionService Svc(serviceOptions(Guard.Dir));
  Svc.registerRoutes(Router);
  HttpServer Server(Router, HttpServer::Options());
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  PredictRequest Req;
  Req.Key = Info.Key;
  Req.Rows = sampleRows(Info.Space, 12, 191);
  Req.Format = PredictFormat::Csv;

  // The CLI path: strict predict + the shared CSV renderer.
  PredictResponse CliResp;
  ASSERT_EQ(Svc.predict(Req, CliResp, Error, true), 200) << Error;
  std::string CliBytes = renderPredictCsv(CliResp);

  // The HTTP path: the same document POSTed over a real socket.
  int Fd = connectLoopback(Server.port());
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(httpSendAll(
      Fd, postRequest("/v1/predict", serializePredictRequest(Req).dump())));
  std::string Buf;
  WireResponse R;
  ASSERT_TRUE(readWireResponse(Fd, Buf, R));
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.Body, CliBytes) << "HTTP bytes must equal the CLI bytes";
  ::close(Fd);
  Server.stop();
}

//===----------------------------------------------------------------------===//
// SloTracker: burn windows, access log, red.* fan-out
//===----------------------------------------------------------------------===//

TEST(SloTrackerTest, BurnRatesFollowInjectedClockAcrossWindows) {
  SloTracker::Options O;
  O.LatencyObjectiveMs = 1.0;    // 1000 us: the 5000 us request is "slow".
  O.AvailabilityObjective = 0.9; // A 10% error budget, so one bad request
                                 // in ten burns at exactly 1.0.
  SloTracker T(O);
  int64_t Now = 1000000;
  T.setClockForTest([&Now] { return Now; });

  auto Rec = [&T](int Status, double LatencyUs, uint64_t Trace) {
    SloTracker::Sample S;
    S.Method = "POST";
    S.Endpoint = "/v1/predict";
    S.Model = "m";
    S.Status = Status;
    S.LatencyUs = LatencyUs;
    S.TraceId = Trace;
    T.record(S);
  };

  for (int I = 0; I < 8; ++I)
    Rec(200, 500.0, 0);
  Rec(500, 500.0, 0xABCD); // Availability-bad, with an exemplar trace.
  Rec(200, 5000.0, 0);     // Latency-bad only.

  std::vector<SloTracker::KeyReport> R1 = T.report();
  ASSERT_EQ(R1.size(), 1u);
  EXPECT_EQ(R1[0].Endpoint, "/v1/predict");
  EXPECT_EQ(R1[0].Model, "m");
  EXPECT_EQ(R1[0].Requests, 10u);
  EXPECT_EQ(R1[0].Errors5xx, 1u);
  EXPECT_EQ(R1[0].Slow, 1u);
  // The slow request carried no trace id; the exemplar stays the 5xx one.
  EXPECT_EQ(R1[0].ExemplarTraceId, 0xABCDu);
  ASSERT_EQ(R1[0].Windows.size(), kSloWindowsSeconds.size());
  EXPECT_DOUBLE_EQ(R1[0].Windows[0].AvailabilityBurn, 1.0);
  EXPECT_DOUBLE_EQ(R1[0].Windows[0].LatencyBurn, 1.0);
  EXPECT_DOUBLE_EQ(R1[0].AllTime.AvailabilityBurn, 1.0);
  EXPECT_DOUBLE_EQ(R1[0].AllTime.LatencyBurn, 1.0);
  // Quantiles come from fixed buckets: ordered and clamped to the max.
  EXPECT_LE(R1[0].LatencyP50Us, R1[0].LatencyP95Us);
  EXPECT_LE(R1[0].LatencyP95Us, R1[0].LatencyP99Us);
  EXPECT_LE(R1[0].LatencyP99Us, R1[0].LatencyMaxUs);
  EXPECT_DOUBLE_EQ(R1[0].LatencyMaxUs, 5000.0);

  // 70 simulated seconds later, ten clean requests: the 60 s window has
  // forgotten the bad minute, the 300 s window still remembers it.
  Now += 70;
  for (int I = 0; I < 10; ++I)
    Rec(200, 500.0, 0);
  std::vector<SloTracker::KeyReport> R2 = T.report();
  ASSERT_EQ(R2.size(), 1u);
  EXPECT_EQ(R2[0].Windows[0].Requests, 10u);
  EXPECT_DOUBLE_EQ(R2[0].Windows[0].AvailabilityBurn, 0.0);
  EXPECT_DOUBLE_EQ(R2[0].Windows[0].LatencyBurn, 0.0);
  EXPECT_EQ(R2[0].Windows[1].Requests, 20u);
  EXPECT_DOUBLE_EQ(R2[0].Windows[1].AvailabilityBurn, 0.5);
  EXPECT_DOUBLE_EQ(R2[0].Windows[1].LatencyBurn, 0.5);
  EXPECT_DOUBLE_EQ(R2[0].AllTime.AvailabilityBurn, 0.5);
}

TEST(SloTrackerTest, SlozDocumentCarriesBurnTableAndExemplar) {
  SloTracker::Options O;
  O.AvailabilityObjective = 0.9;
  SloTracker T(O);
  int64_t Now = 5000;
  T.setClockForTest([&Now] { return Now; });

  SloTracker::Sample S;
  S.Method = "POST";
  S.Endpoint = "/v1/predict";
  S.Model = "m";
  S.Status = 503;
  S.TraceId = 0x1234;
  T.record(S);

  Json Doc = T.renderSloz();
  EXPECT_EQ(Doc["schema"].asString(), kSlozSchema);
  EXPECT_EQ(Doc["availability_objective"].asDouble(), 0.9);
  ASSERT_EQ(Doc["keys"].size(), 1u);
  const Json &K = Doc["keys"].at(0);
  EXPECT_EQ(K["endpoint"].asString(), "/v1/predict");
  EXPECT_EQ(K["model"].asString(), "m");
  EXPECT_EQ(K["errors_5xx"].asInt(), 1);
  EXPECT_EQ(K["exemplar_trace"].asHexU64(), 0x1234u);
  // One burn entry per window plus the all-time row.
  ASSERT_EQ(K["burn"].size(), kSloWindowsSeconds.size() + 1);
  EXPECT_EQ(K["burn"].at(0)["window_s"].asInt(), kSloWindowsSeconds[0]);
  EXPECT_DOUBLE_EQ(K["burn"].at(0)["availability_burn"].asDouble(), 10.0);
  EXPECT_EQ(K["burn"].at(kSloWindowsSeconds.size())["window_s"].asInt(), 0);
  EXPECT_EQ(Doc["tracker"]["samples"].asInt(), 1);
}

TEST(SloTrackerTest, AccessLogLinesAreValidSchemaDocuments) {
  DirGuard Guard(tempRegistryDir("accesslog"));
  std::string Error;
  std::filesystem::create_directories(Guard.Dir);
  SloTracker::Options O;
  O.AccessLogPath = Guard.Dir + "/access.jsonl";
  SloTracker T(O);
  int64_t Now = 1700000123;
  T.setClockForTest([&Now] { return Now; });

  SloTracker::Sample A;
  A.Method = "POST";
  A.Endpoint = "/v1/predict";
  A.Model = "art,test,cycles,rbf";
  A.Status = 200;
  A.Rows = 3;
  A.LatencyUs = 42.5;
  A.TraceId = 0xFEED;
  T.record(A);
  SloTracker::Sample B;
  B.Method = "GET";
  B.Endpoint = "/v1/models";
  B.Status = 200;
  T.record(B);

  std::ifstream In(O.AccessLogPath);
  ASSERT_TRUE(In.good());
  std::vector<Json> Lines;
  std::string Line;
  while (std::getline(In, Line)) {
    Json Doc = Json::parse(Line, &Error);
    ASSERT_TRUE(Error.empty()) << Error << " in: " << Line;
    EXPECT_EQ(Doc["schema"].asString(), kAccessLogSchema);
    Lines.push_back(std::move(Doc));
  }
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_EQ(Lines[0]["method"].asString(), "POST");
  EXPECT_EQ(Lines[0]["endpoint"].asString(), "/v1/predict");
  EXPECT_EQ(Lines[0]["model"].asString(), "art,test,cycles,rbf");
  EXPECT_EQ(Lines[0]["status"].asInt(), 200);
  EXPECT_EQ(Lines[0]["rows"].asInt(), 3);
  EXPECT_DOUBLE_EQ(Lines[0]["latency_us"].asDouble(), 42.5);
  EXPECT_EQ(Lines[0]["trace"].asHexU64(), 0xFEEDu);
  EXPECT_EQ(Lines[0]["unix_ms"].asInt(), 1700000123000);
  // Model and trace are omitted, not empty, when absent.
  EXPECT_FALSE(Lines[1].has("model"));
  EXPECT_FALSE(Lines[1].has("trace"));
}

TEST(SloTrackerTest, RedFanOutRendersMultiLabelFamilies) {
  namespace tl = msem::telemetry;
  tl::reset();
  tl::Config C;
  C.Sinks = tl::SinkSummary;
  tl::configure(C);

  {
    SloTracker T(SloTracker::Options{});
    SloTracker::Sample S;
    S.Method = "POST";
    S.Endpoint = "/v1/predict";
    S.Model = "m.1";
    S.Status = 503;
    S.LatencyUs = 250.0;
    T.record(S);
    S.Status = 200;
    T.record(S);
  }

  std::string Doc = tl::renderOpenMetrics(tl::snapshotMetrics());
  std::string Error;
  EXPECT_TRUE(tl::validateOpenMetrics(Doc, &Error)) << Error;
  EXPECT_NE(
      Doc.find("msem_red_requests_total{endpoint=\"/v1/predict\",model=\"m.1\"} 2"),
      std::string::npos)
      << Doc;
  EXPECT_NE(Doc.find("msem_red_errors_total{endpoint=\"/v1/predict\","
                     "model=\"m.1\",class=\"5xx\"} 1"),
            std::string::npos);
  EXPECT_NE(Doc.find("msem_red_latency_us_bucket{endpoint=\"/v1/predict\","
                     "model=\"m.1\",le=\"500\"} 2"),
            std::string::npos);
  tl::reset();
}

} // namespace
