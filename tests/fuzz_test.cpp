//===- tests/fuzz_test.cpp - Randomized end-to-end equivalence ------------------===//
//
// Property-based testing of the whole compiler: a generator builds random
// (but well-formed) IR programs -- nested counted loops, data-dependent
// branches, arrays, calls -- and every program must behave identically
// under the interpreter, under every optimization configuration, and as
// machine code on the executor.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"
#include "ir/Interpreter.h"
#include "ir/IRPrinter.h"
#include "ir/LoopBuilder.h"
#include "ir/Verifier.h"
#include "isa/Executor.h"
#include "opt/Passes.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace msem;

namespace {

/// Generates a random program: a few globals, a helper function, and a
/// main with nested loops and branches combining values through a
/// wrap-around accumulator (no div/rem on data paths, so no traps).
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::unique_ptr<Module> generate() {
    auto M = std::make_unique<Module>("fuzz");
    B.emplace(*M);
    G1 = M->createGlobal("g1", 512 * 8);
    G2 = M->createGlobal("g2", 1024);

    Helper = M->createFunction("helper", Type::I64,
                               {Type::I64, Type::I64}, {"a", "b"});
    B->setInsertPoint(Helper->createBlock("entry"));
    Value *H = B->add(B->mul(Helper->arg(0), B->constInt(17)),
                      B->xorOp(Helper->arg(1), B->constInt(0x5A)));
    B->ret(B->andOp(H, B->constInt(0xFFFFFF)));

    Function *Main = M->createFunction("main", Type::I64, {});
    B->setInsertPoint(Main->createBlock("entry"));
    Value *Result = emitBlockOfCode(Main, B->constInt(7), 0);
    B->emit(Result);
    B->ret(Result);
    return M;
  }

private:
  /// Emits a random straight-line expression over i64 values.
  Value *randomExpr(Value *A, Value *Bv) {
    switch (R.nextBelow(8)) {
    case 0:
      return B->add(A, Bv);
    case 1:
      return B->sub(A, Bv);
    case 2:
      return B->mul(B->andOp(A, B->constInt(0xFFFF)),
                    B->andOp(Bv, B->constInt(0xFF)));
    case 3:
      return B->xorOp(A, Bv);
    case 4:
      return B->orOp(A, Bv);
    case 5:
      return B->shl(B->andOp(A, B->constInt(0xFFFFFF)),
                    B->andOp(Bv, B->constInt(7)));
    case 6:
      return B->select(B->icmp(CmpPred::LT, A, Bv), A, Bv);
    default:
      return B->add(B->shr(A, B->constInt(3)), Bv);
    }
  }

  /// Emits a nest of code returning a value; Depth bounds recursion.
  Value *emitBlockOfCode(Function *F, Value *Seed, int Depth) {
    Value *Acc = Seed;
    unsigned Items = 2 + R.nextBelow(3);
    for (unsigned I = 0; I < Items; ++I) {
      switch (R.nextBelow(Depth < 2 ? 5u : 3u)) {
      case 0: { // Arithmetic.
        Acc = randomExpr(Acc, B->constInt(R.intInRange(1, 1000)));
        break;
      }
      case 1: { // Array traffic.
        Value *Idx = B->andOp(Acc, B->constInt(511));
        B->storeElem(Acc, G1, Idx, MemKind::Int64);
        Value *Back = B->loadElem(G1, Idx, MemKind::Int64);
        Value *ByteIdx = B->andOp(Acc, B->constInt(1023));
        B->storeElem(B->andOp(Acc, B->constInt(255)), G2, ByteIdx,
                     MemKind::Int8);
        Acc = B->add(Back, B->loadElem(G2, ByteIdx, MemKind::Int8));
        break;
      }
      case 2: { // Call.
        Acc = B->call(Helper, {Acc, B->constInt(R.intInRange(0, 99))});
        break;
      }
      case 3: { // Counted loop with a carried accumulator.
        int64_t Trip = R.intInRange(0, 12);
        int64_t Step = R.chance(0.2) ? 2 : 1;
        LoopBuilder L(*B, B->constInt(0), B->constInt(Trip), Step,
                      "f" + std::to_string(Counter++));
        Value *Carried = L.carried(Acc);
        Value *Body = emitBlockOfCode(F, B->add(Carried, L.indVar()),
                                      Depth + 1);
        L.setNext(Carried, B->andOp(Body, B->constInt(0x7FFFFFFF)));
        L.finish();
        Acc = L.exitValue(Carried);
        break;
      }
      default: { // Branch diamond.
        Value *Cond = B->icmp(CmpPred::GT, B->andOp(Acc, B->constInt(7)),
                              B->constInt(R.intInRange(0, 7)));
        BasicBlock *T = F->createBlock("t" + std::to_string(Counter));
        BasicBlock *E = F->createBlock("e" + std::to_string(Counter));
        BasicBlock *J = F->createBlock("j" + std::to_string(Counter));
        ++Counter;
        B->br(Cond, T, E);
        B->setInsertPoint(T);
        Value *VT = emitBlockOfCode(F, B->add(Acc, B->constInt(3)),
                                    Depth + 1);
        BasicBlock *TEnd = B->insertBlock();
        B->jmp(J);
        B->setInsertPoint(E);
        Value *VE = randomExpr(Acc, B->constInt(11));
        BasicBlock *EEnd = B->insertBlock();
        B->jmp(J);
        B->setInsertPoint(J);
        Instruction *Phi = B->phi(Type::I64);
        Phi->addPhiIncoming(VT, TEnd);
        Phi->addPhiIncoming(VE, EEnd);
        Acc = Phi;
        break;
      }
      }
    }
    return Acc;
  }

  Rng R;
  std::optional<IRBuilder> B;
  GlobalVariable *G1 = nullptr;
  GlobalVariable *G2 = nullptr;
  Function *Helper = nullptr;
  int Counter = 0;
};

OptimizationConfig randomConfig(Rng &R) {
  OptimizationConfig C;
  C.InlineFunctions = R.chance(0.5);
  C.UnrollLoops = R.chance(0.5);
  C.ScheduleInsns2 = R.chance(0.5);
  C.LoopOptimize = R.chance(0.5);
  C.Gcse = R.chance(0.5);
  C.StrengthReduce = R.chance(0.5);
  C.OmitFramePointer = R.chance(0.5);
  C.ReorderBlocks = R.chance(0.5);
  C.PrefetchLoopArrays = R.chance(0.5);
  C.MaxInlineInsnsAuto = static_cast<int>(R.intInRange(50, 150));
  C.InlineUnitGrowth = static_cast<int>(R.intInRange(25, 75));
  C.InlineCallCost = static_cast<int>(R.intInRange(12, 20));
  C.MaxUnrollTimes = static_cast<int>(R.intInRange(4, 12));
  C.MaxUnrolledInsns = static_cast<int>(R.intInRange(100, 300));
  C.IfConvert = R.chance(0.5);
  C.MaxIfConvertInsns = static_cast<int>(R.intInRange(2, 12));
  C.Tracer = R.chance(0.5);
  C.TailDupInsns = static_cast<int>(R.intInRange(2, 16));
  return C;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomProgramSurvivesEverything) {
  uint64_t Seed = 0xF0220000ull + static_cast<uint64_t>(GetParam());
  ProgramGenerator Gen(Seed);
  auto M = Gen.generate();
  ASSERT_TRUE(verifyModule(*M).empty()) << printModule(*M);

  InterpResult Ref = Interpreter().run(*M);
  ASSERT_FALSE(Ref.Trapped) << Ref.TrapMessage;

  Rng R(Seed ^ 0xC0FF);
  for (int Trial = 0; Trial < 3; ++Trial) {
    ProgramGenerator Gen2(Seed);
    auto M2 = Gen2.generate();
    OptimizationConfig C = randomConfig(R);

    runPassPipeline(*M2, C);
    ASSERT_TRUE(verifyModule(*M2).empty())
        << "config " << C.toString() << "\n"
        << printModule(*M2);
    InterpResult Opt = Interpreter().run(*M2);
    ASSERT_FALSE(Opt.Trapped) << C.toString() << ": " << Opt.TrapMessage;
    ASSERT_EQ(Ref.ReturnValue, Opt.ReturnValue) << C.toString();
    ASSERT_EQ(Ref.Output.size(), Opt.Output.size());

    CodeGenOptions CG;
    CG.OmitFramePointer = C.OmitFramePointer;
    CG.PostRaSchedule = C.ScheduleInsns2;
    MachineProgram Prog = compileToProgram(*M2, CG);
    ExecResult Got = Executor(Prog).runToCompletion();
    ASSERT_FALSE(Got.Trapped) << C.toString() << ": " << Got.TrapMessage;
    ASSERT_EQ(Ref.ReturnValue, Got.ReturnValue) << C.toString();
    for (size_t I = 0; I < Ref.Output.size(); ++I)
      ASSERT_TRUE(Ref.Output[I] == Got.Output[I]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 24));

} // namespace
