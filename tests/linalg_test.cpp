//===- tests/linalg_test.cpp - Matrix and solver tests -------------------------===//

#include "linalg/Matrix.h"
#include "linalg/Solve.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace msem;

namespace {

TEST(MatrixTest, BasicAccessors) {
  Matrix M(2, 3, 1.5);
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 3u);
  M.at(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(M.at(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(M.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(M.maxAbs(), 4.0);
}

TEST(MatrixTest, FromRowsAndTranspose) {
  Matrix M = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix T = M.transposed();
  EXPECT_EQ(T.rows(), 3u);
  EXPECT_EQ(T.cols(), 2u);
  EXPECT_DOUBLE_EQ(T.at(2, 1), 6);
  EXPECT_DOUBLE_EQ(T.at(0, 0), 1);
}

TEST(MatrixTest, MultiplyMatchesHand) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix B = Matrix::fromRows({{5, 6}, {7, 8}});
  Matrix C = A.multiply(B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50);
}

TEST(MatrixTest, GramEqualsAtA) {
  Rng R(5);
  Matrix A(7, 4);
  for (size_t I = 0; I < 7; ++I)
    for (size_t J = 0; J < 4; ++J)
      A.at(I, J) = R.normal();
  Matrix G = A.gram();
  Matrix Ref = A.transposed().multiply(A);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 4; ++J)
      EXPECT_NEAR(G.at(I, J), Ref.at(I, J), 1e-10);
}

TEST(MatrixTest, VectorProducts) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
  std::vector<double> X{1, -1};
  auto Y = A.multiplyVector(X);
  ASSERT_EQ(Y.size(), 3u);
  EXPECT_DOUBLE_EQ(Y[0], -1);
  EXPECT_DOUBLE_EQ(Y[2], -1);
  std::vector<double> Z{1, 0, 2};
  auto W = A.transposeMultiplyVector(Z);
  ASSERT_EQ(W.size(), 2u);
  EXPECT_DOUBLE_EQ(W[0], 11);
  EXPECT_DOUBLE_EQ(W[1], 14);
}

TEST(MatrixTest, AppendRowGrows) {
  Matrix M;
  M.appendRow({1, 2});
  M.appendRow({3, 4});
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_DOUBLE_EQ(M.at(1, 1), 4);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // SPD: A = [[4,2],[2,3]], b = [6,5] -> x = [1,1].
  Matrix A = Matrix::fromRows({{4, 2}, {2, 3}});
  Cholesky C(A);
  ASSERT_TRUE(C.ok());
  auto X = C.solve({6, 5});
  EXPECT_NEAR(X[0], 1.0, 1e-12);
  EXPECT_NEAR(X[1], 1.0, 1e-12);
}

TEST(CholeskyTest, LogDeterminantMatches) {
  Matrix A = Matrix::fromRows({{4, 2}, {2, 3}});
  Cholesky C(A);
  ASSERT_TRUE(C.ok());
  // det = 4*3 - 2*2 = 8.
  EXPECT_NEAR(C.logDeterminant(), std::log(8.0), 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix A = Matrix::fromRows({{1, 2}, {2, 1}}); // Eigenvalues 3, -1.
  Cholesky C(A);
  EXPECT_FALSE(C.ok());
}

TEST(CholeskyTest, InverseTimesAIsIdentity) {
  Rng R(17);
  Matrix B(6, 4);
  for (size_t I = 0; I < 6; ++I)
    for (size_t J = 0; J < 4; ++J)
      B.at(I, J) = R.normal();
  Matrix A = B.gram();
  A.addToDiagonal(0.5);
  Cholesky C(A);
  ASSERT_TRUE(C.ok());
  Matrix Inv = C.inverse();
  Matrix P = A.multiply(Inv);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 4; ++J)
      EXPECT_NEAR(P.at(I, J), I == J ? 1.0 : 0.0, 1e-9);
}

TEST(LeastSquaresTest, RecoversExactCoefficients) {
  // y = 2 + 3*x1 - x2, noise-free.
  Rng R(23);
  Matrix A(50, 3);
  std::vector<double> Y(50);
  for (size_t I = 0; I < 50; ++I) {
    double X1 = R.uniform(-1, 1), X2 = R.uniform(-1, 1);
    A.at(I, 0) = 1;
    A.at(I, 1) = X1;
    A.at(I, 2) = X2;
    Y[I] = 2 + 3 * X1 - X2;
  }
  auto Beta = leastSquaresQR(A, Y);
  EXPECT_NEAR(Beta[0], 2, 1e-9);
  EXPECT_NEAR(Beta[1], 3, 1e-9);
  EXPECT_NEAR(Beta[2], -1, 1e-9);
}

TEST(LeastSquaresTest, HandlesRankDeficiency) {
  // Third column duplicates the second; solver must not blow up.
  Matrix A(4, 3);
  std::vector<double> Y{1, 2, 3, 4};
  for (size_t I = 0; I < 4; ++I) {
    A.at(I, 0) = 1;
    A.at(I, 1) = static_cast<double>(I);
    A.at(I, 2) = static_cast<double>(I);
  }
  auto Beta = leastSquaresQR(A, Y);
  // Residual must still be (near) minimal: predictions match y.
  for (size_t I = 0; I < 4; ++I) {
    double Pred = Beta[0] + Beta[1] * static_cast<double>(I) +
                  Beta[2] * static_cast<double>(I);
    EXPECT_NEAR(Pred, Y[I], 1e-9);
  }
}

TEST(RidgeTest, ShrinksTowardZero) {
  Rng R(31);
  Matrix A(30, 2);
  std::vector<double> Y(30);
  for (size_t I = 0; I < 30; ++I) {
    double X = R.uniform(-1, 1);
    A.at(I, 0) = 1;
    A.at(I, 1) = X;
    Y[I] = 5 * X;
  }
  auto Small = ridgeLeastSquares(A, Y, 1e-8);
  auto Large = ridgeLeastSquares(A, Y, 1e3);
  EXPECT_NEAR(Small[1], 5.0, 1e-3);
  EXPECT_LT(std::fabs(Large[1]), std::fabs(Small[1]));
}

TEST(RidgeTest, AgreesWithQROnWellConditioned) {
  Rng R(41);
  Matrix A(40, 4);
  std::vector<double> Y(40);
  for (size_t I = 0; I < 40; ++I) {
    A.at(I, 0) = 1;
    for (size_t J = 1; J < 4; ++J)
      A.at(I, J) = R.normal();
    Y[I] = 1 + 2 * A.at(I, 1) - 3 * A.at(I, 2) + 0.5 * A.at(I, 3) +
           0.01 * R.normal();
  }
  auto Qr = leastSquaresQR(A, Y);
  auto Ridge = ridgeLeastSquares(A, Y, 0.0);
  for (size_t J = 0; J < 4; ++J)
    EXPECT_NEAR(Qr[J], Ridge[J], 1e-5);
}

TEST(DotProductTest, Basic) {
  EXPECT_DOUBLE_EQ(dotProduct({1, 2, 3}, {4, 5, 6}), 32);
}

} // namespace
