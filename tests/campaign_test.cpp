//===- tests/campaign_test.cpp - Campaign engine tests ----------------------------===//
//
// The fault-tolerance contract of src/campaign/: checkpoints round-trip
// exactly, a budget-paused or SIGKILLed campaign resumes to results
// bitwise identical to an uninterrupted run (at any thread count), and
// the fault policies retry / skip / abort behave structurally.
//
// The kill test re-executes this binary (fork + exec of /proc/self/exe
// with a gtest filter) so the child can SIGKILL itself from the
// checkpoint-written hook at a deterministic point; a plain fork would
// duplicate a process whose thread-pool workers do not survive it.
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "campaign/Checkpoint.h"
#include "campaign/Experiment.h"
#include "support/Json.h"
#include "core/ModelBuilder.h"
#include "design/Doe.h"
#include "model/LinearModel.h"
#include "search/GeneticSearch.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sys/wait.h>
#include <unistd.h>

using namespace msem;

namespace {

/// Restores the default global pool when a test exits.
struct PoolGuard {
  ~PoolGuard() { setGlobalThreadCount(0); }
};

/// A campaign small enough for tests but big enough to exercise every
/// checkpoint site: three build iterations (24 -> 36 -> 48), then a GA
/// tuning search that checkpoints every other generation.
ExperimentSpec smallSpec() {
  ExperimentSpec Spec;
  Spec.Name = "campaign-test";
  Spec.Jobs = {{"art", InputSet::Test, ResponseMetric::Cycles,
                ModelTechnique::Rbf, 0}};
  Spec.InitialDesignSize = 24;
  Spec.AugmentStep = 12;
  Spec.MaxDesignSize = 48;
  Spec.TestSize = 8;
  Spec.TargetMape = 0.1; // Unreachably strict: always runs to MaxDesignSize.
  Spec.CandidateCount = 200;
  Spec.TunePlatforms = {{"typical", MachineConfig::typical()}};
  Spec.Ga.Population = 12;
  Spec.Ga.Generations = 6;
  Spec.Ga.StallGenerations = 0; // Exactly 6 generations, deterministically.
  Spec.GaCheckpointEvery = 2;
  Spec.VerifyTunings = true;
  return Spec;
}

std::string tempCheckpointPath(const char *Tag) {
  return formatString("campaign_test_%s_%d.ckpt.json", Tag,
                      static_cast<int>(getpid()));
}

/// The bitwise-identity oracle: every number a campaign produces --
/// measured responses, designs, error curves, tuning results and the
/// fitted model's predictions -- must match exactly.
void expectIdenticalResults(const ExperimentResult &A,
                            const ExperimentResult &B) {
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.SimulationsUsed, B.SimulationsUsed);
  ASSERT_EQ(A.Jobs.size(), B.Jobs.size());
  for (size_t J = 0; J < A.Jobs.size(); ++J) {
    const ModelBuildResult &BA = A.Jobs[J].Build;
    const ModelBuildResult &BB = B.Jobs[J].Build;
    EXPECT_EQ(A.Jobs[J].State, B.Jobs[J].State);
    EXPECT_EQ(BA.TrainPoints, BB.TrainPoints);
    EXPECT_EQ(BA.TrainY, BB.TrainY);
    EXPECT_EQ(BA.TestPoints, BB.TestPoints);
    EXPECT_EQ(BA.TestY, BB.TestY);
    EXPECT_EQ(BA.ErrorCurve, BB.ErrorCurve);
    EXPECT_EQ(BA.TestQuality.Mape, BB.TestQuality.Mape);
    EXPECT_EQ(BA.TestQuality.R2, BB.TestQuality.R2);
    ASSERT_EQ(BA.FittedModel != nullptr, BB.FittedModel != nullptr);
    if (BA.FittedModel) {
      // Model identity, observably: equal predictions at probe points.
      ParameterSpace Space = ParameterSpace::paperSpace();
      Rng Probe(0xBEEF);
      for (const DesignPoint &P :
           generateRandomCandidates(Space, 5, Probe)) {
        std::vector<double> X = Space.encode(P);
        EXPECT_EQ(BA.FittedModel->predict(X), BB.FittedModel->predict(X));
      }
    }
    ASSERT_EQ(A.Jobs[J].Tunings.size(), B.Jobs[J].Tunings.size());
    for (size_t P = 0; P < A.Jobs[J].Tunings.size(); ++P) {
      const PlatformTuning &TA = A.Jobs[J].Tunings[P];
      const PlatformTuning &TB = B.Jobs[J].Tunings[P];
      EXPECT_EQ(TA.Platform, TB.Platform);
      EXPECT_EQ(TA.Search.BestPoint, TB.Search.BestPoint);
      EXPECT_EQ(TA.Search.PredictedResponse, TB.Search.PredictedResponse);
      EXPECT_EQ(TA.Search.GenerationsRun, TB.Search.GenerationsRun);
      EXPECT_EQ(TA.MeasuredBest, TB.MeasuredBest);
      EXPECT_EQ(TA.MeasuredO2, TB.MeasuredO2);
      EXPECT_EQ(TA.MeasuredO3, TB.MeasuredO3);
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(JsonTest, BuildNavigateDump) {
  Json Doc = Json::object();
  Doc.set("flag", Json::boolean(true));
  Doc.set("count", Json::number(42));
  Doc.set("name", Json::string("a\"b\\c\nd"));
  Json Arr = Json::array();
  Arr.push(Json::number(1)).push(Json::number(2.5));
  Doc.set("values", std::move(Arr));

  EXPECT_TRUE(Doc["flag"].asBool());
  EXPECT_EQ(Doc["count"].asInt(), 42);
  EXPECT_EQ(Doc["values"].size(), 2u);
  EXPECT_EQ(Doc["values"].at(1).asDouble(), 2.5);
  EXPECT_TRUE(Doc["missing"].isNull());
  EXPECT_EQ(Doc["missing"].asInt(-7), -7);

  std::string Error;
  Json Back = Json::parse(Doc.dump(), &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Back["name"].asString(), "a\"b\\c\nd");
  EXPECT_EQ(Back.dump(), Doc.dump());
  // Pretty form parses back to the same document too.
  EXPECT_EQ(Json::parse(Doc.dumpPretty()).dump(), Doc.dump());
}

TEST(JsonTest, DoublesRoundTripBitwise) {
  const double Cases[] = {0.0,    -0.0,       1.0 / 3.0, 3.141592653589793,
                          1e-300, 1.7976e308, 123456789.123456789};
  for (double V : Cases) {
    Json Back = Json::parse(Json::number(V).dump());
    EXPECT_EQ(Back.asDouble(), V) << V;
  }
}

TEST(JsonTest, NonFiniteDoublesRoundTrip) {
  // NaN and infinities have no JSON number form; they serialize as
  // strings asDouble() decodes, so a degenerate score (say, a NaN fit
  // quality reaching GaState.Scores) cannot produce a checkpoint that
  // fails to load.
  const double Inf = std::numeric_limits<double>::infinity();
  for (double V : {std::numeric_limits<double>::quiet_NaN(), Inf, -Inf}) {
    std::string Error;
    Json Back = Json::parse(Json::number(V).dump(), &Error);
    EXPECT_TRUE(Error.empty()) << Error;
    if (std::isnan(V))
      EXPECT_TRUE(std::isnan(Back.asDouble()));
    else
      EXPECT_EQ(Back.asDouble(), V);
  }
  // An ordinary string is still not a number.
  EXPECT_EQ(Json::string("Infinite").asDouble(-1.0), -1.0);
}

TEST(JsonTest, HexU64RoundTripsExactly) {
  // JSON numbers are doubles; 64-bit seeds and RNG words go through hex
  // strings instead, losslessly.
  const uint64_t Cases[] = {0ull, 1ull, 0xDEADBEEFCAFEBABEull,
                            ~0ull, 1ull << 63};
  for (uint64_t V : Cases) {
    Json Back = Json::parse(Json::hexU64(V).dump());
    EXPECT_EQ(Back.asHexU64(), V);
  }
  EXPECT_EQ(Json::string("not hex").asHexU64(7u), 7u);
}

TEST(JsonTest, ParseErrorsAreDiagnosed) {
  const char *Bad[] = {"",        "{",       "[1,]",     "{\"a\":}",
                       "nul",     "\"open",  "{\"a\" 1}", "1 2"};
  for (const char *Text : Bad) {
    std::string Error;
    Json V = Json::parse(Text, &Error);
    EXPECT_TRUE(V.isNull()) << Text;
    EXPECT_FALSE(Error.empty()) << Text;
  }
  // Errors carry a position.
  std::string Error;
  Json::parse("{\n  \"a\": nope\n}", &Error);
  EXPECT_NE(Error.find("2:"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Checkpoint serialization
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, SpecRoundTrips) {
  ExperimentSpec Spec = smallSpec();
  Spec.Space = SpaceKind::Extended;
  Spec.Jobs.push_back({"gzip", InputSet::Ref, ResponseMetric::CodeBytes,
                       ModelTechnique::Mars, 64});
  Spec.Seed = 0xFEEDFACE12345678ull;
  Spec.CacheDir = "some/cache";
  Spec.Faults.OnFault = FaultAction::Skip;
  Spec.Faults.MaxAttempts = 3;
  Spec.Faults.InjectRate = 0.25;
  Spec.Budget.MaxSimulations = 1234;
  Spec.Budget.MaxWallSeconds = 5.5;
  Spec.Ga.Seed = ~0ull;

  ExperimentSpec Back;
  std::string Error;
  ASSERT_TRUE(deserializeSpec(serializeSpec(Spec), Back, &Error)) << Error;
  EXPECT_EQ(Back.Name, Spec.Name);
  EXPECT_EQ(Back.Space, Spec.Space);
  ASSERT_EQ(Back.Jobs.size(), Spec.Jobs.size());
  EXPECT_EQ(Back.Jobs[1].Workload, "gzip");
  EXPECT_EQ(Back.Jobs[1].Input, InputSet::Ref);
  EXPECT_EQ(Back.Jobs[1].Metric, ResponseMetric::CodeBytes);
  EXPECT_EQ(Back.Jobs[1].Technique, ModelTechnique::Mars);
  EXPECT_EQ(Back.Jobs[1].DesignSizeCap, 64u);
  EXPECT_EQ(Back.InitialDesignSize, Spec.InitialDesignSize);
  EXPECT_EQ(Back.MaxDesignSize, Spec.MaxDesignSize);
  EXPECT_EQ(Back.TargetMape, Spec.TargetMape);
  EXPECT_EQ(Back.Seed, Spec.Seed);
  EXPECT_EQ(Back.CacheDir, Spec.CacheDir);
  EXPECT_EQ(Back.Faults.OnFault, FaultAction::Skip);
  EXPECT_EQ(Back.Faults.MaxAttempts, 3);
  EXPECT_EQ(Back.Faults.InjectRate, 0.25);
  EXPECT_EQ(Back.Budget.MaxSimulations, 1234u);
  EXPECT_EQ(Back.Budget.MaxWallSeconds, 5.5);
  ASSERT_EQ(Back.TunePlatforms.size(), 1u);
  EXPECT_EQ(Back.TunePlatforms[0].Config.RuuSize,
            MachineConfig::typical().RuuSize);
  EXPECT_EQ(Back.Ga.Seed, ~0ull);
  EXPECT_EQ(Back.Ga.Generations, 6);
  EXPECT_TRUE(Back.VerifyTunings);
}

TEST(CheckpointTest, CheckpointRoundTripsThroughDisk) {
  CampaignCheckpoint Ckpt;
  Ckpt.Spec = smallSpec();
  JobProgress P;
  P.State = JobState::Tuning;
  P.ErrorCurve = {{24, 12.5}, {36, 0.1 + 0.2}};
  P.TuningsDone = 1;
  P.HasGaState = true;
  P.Ga.Generation = 4;
  P.Ga.Population = {{0, 1, 2}, {3, 4, 5}};
  P.Ga.Scores = {1.0 / 3.0, 2.5};
  P.Ga.BestSoFar = 0.125;
  P.Ga.SinceImprovement = 2;
  P.Ga.RngState = {1ull, ~0ull, 0xDEADBEEFull, 1ull << 62};
  Ckpt.Jobs.push_back(P);
  SurfaceShard Shard;
  Shard.Points = {{1, 0, 1}, {0, 1, 0}};
  Shard.Values = {3.14159, 2.71828};
  Ckpt.Surfaces.emplace("art|test|cycles", Shard);
  Ckpt.SimulationsSpent = 99;
  Ckpt.WallSecondsSpent = 1.5;
  Ckpt.CachePath = "msem_cache/responses.csv";
  Ckpt.Build = "abc1234 Release GNU 12.2.0";

  std::string Path = tempCheckpointPath("roundtrip");
  std::string Error;
  ASSERT_TRUE(saveCheckpoint(Ckpt, Path, &Error)) << Error;

  CampaignCheckpoint Back;
  ASSERT_TRUE(loadCheckpoint(Path, Back, &Error)) << Error;
  std::remove(Path.c_str());

  ASSERT_EQ(Back.Jobs.size(), 1u);
  EXPECT_EQ(Back.Jobs[0].State, JobState::Tuning);
  EXPECT_EQ(Back.Jobs[0].ErrorCurve, P.ErrorCurve);
  EXPECT_EQ(Back.Jobs[0].TuningsDone, 1u);
  ASSERT_TRUE(Back.Jobs[0].HasGaState);
  EXPECT_EQ(Back.Jobs[0].Ga.Generation, 4);
  EXPECT_EQ(Back.Jobs[0].Ga.Population, P.Ga.Population);
  EXPECT_EQ(Back.Jobs[0].Ga.Scores, P.Ga.Scores);
  EXPECT_EQ(Back.Jobs[0].Ga.BestSoFar, 0.125);
  EXPECT_EQ(Back.Jobs[0].Ga.RngState, P.Ga.RngState);
  ASSERT_EQ(Back.Surfaces.count("art|test|cycles"), 1u);
  EXPECT_EQ(Back.Surfaces["art|test|cycles"].Points, Shard.Points);
  EXPECT_EQ(Back.Surfaces["art|test|cycles"].Values, Shard.Values);
  EXPECT_EQ(Back.SimulationsSpent, 99u);
  EXPECT_EQ(Back.WallSecondsSpent, 1.5);
  EXPECT_EQ(Back.CachePath, "msem_cache/responses.csv");
  EXPECT_EQ(Back.Build, "abc1234 Release GNU 12.2.0");

  // The atomic publish leaves no temp file behind.
  std::FILE *Tmp = std::fopen((Path + ".tmp").c_str(), "rb");
  EXPECT_EQ(Tmp, nullptr);
  if (Tmp)
    std::fclose(Tmp);
}

TEST(CheckpointTest, LoadFailuresAreStructured) {
  CampaignCheckpoint Out;
  std::string Error;
  EXPECT_FALSE(loadCheckpoint("no/such/checkpoint.json", Out, &Error));
  EXPECT_FALSE(Error.empty());

  std::string Path = tempCheckpointPath("malformed");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("{\"version\": 1, \"spec\": {", F);
  std::fclose(F);
  EXPECT_FALSE(loadCheckpoint(Path, Out, &Error));
  EXPECT_FALSE(Error.empty());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Budget pause + resume
//===----------------------------------------------------------------------===//

TEST(CampaignTest, BudgetPauseResumeChainMatchesUninterrupted) {
  PoolGuard Guard;
  std::string Path = tempCheckpointPath("budget");
  std::remove(Path.c_str());

  // Reference: uninterrupted, 4 threads.
  setGlobalThreadCount(4);
  ExperimentResult Ref = runExperiment(smallSpec());
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  // Same campaign at 1 thread, strangled by a simulation budget: pauses
  // mid-modeling, then (budget 45) mid-GA-search, then completes.
  setGlobalThreadCount(1);
  ExperimentSpec Budgeted = smallSpec();
  Budgeted.CheckpointPath = Path;
  Budgeted.Budget.MaxSimulations = 20;
  ExperimentResult R1 = runExperiment(Budgeted);
  EXPECT_EQ(R1.Status, CampaignStatus::BudgetExhausted);
  EXPECT_EQ(R1.Jobs[0].Build.Stop, BuildStop::Paused);

  ExperimentBudget MidBudget;
  MidBudget.MaxSimulations = 45;
  ExperimentResult R2 = Campaign::resume(Path, &MidBudget);
  EXPECT_EQ(R2.Status, CampaignStatus::BudgetExhausted);
  // This pause lands in the GA phase: its state is in the checkpoint.
  CampaignCheckpoint Mid;
  std::string Error;
  ASSERT_TRUE(loadCheckpoint(Path, Mid, &Error)) << Error;
  EXPECT_EQ(Mid.Jobs[0].State, JobState::Tuning);
  EXPECT_TRUE(Mid.Jobs[0].HasGaState);
  EXPECT_EQ(Mid.Jobs[0].Ga.Population.size(), smallSpec().Ga.Population);

  ExperimentBudget Unlimited;
  ExperimentResult R3 = Campaign::resume(Path, &Unlimited);
  ASSERT_TRUE(R3.ok()) << R3.Error;

  expectIdenticalResults(Ref, R3);
  std::remove(Path.c_str());
}

TEST(CampaignTest, CheckpointsOnResumePreserveUnmaterializedShards) {
  PoolGuard Guard;
  setGlobalThreadCount(2);
  std::string Path = tempCheckpointPath("multijob");
  std::remove(Path.c_str());

  // Two jobs with distinct surface keys, so the checkpoint carries two
  // measurement shards. The second job's static metric keeps it cheap.
  ExperimentSpec Spec = smallSpec();
  Spec.TunePlatforms.clear();
  Spec.Jobs.push_back({"art", InputSet::Test, ResponseMetric::CodeBytes,
                       ModelTechnique::Rbf, 0});
  Spec.CheckpointPath = Path;
  ExperimentResult Ref = runExperiment(Spec);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  CampaignCheckpoint Full;
  std::string Error;
  ASSERT_TRUE(loadCheckpoint(Path, Full, &Error)) << Error;
  ASSERT_EQ(Full.Surfaces.size(), 2u);

  // Resume with an instantly-exhausted budget: the campaign writes a
  // checkpoint before materializing any surface, so every shard it
  // keeps must come from the restored state. Losing one here would
  // force re-simulation on the next resume while the restored
  // simulation count still charges for the original measurements.
  ExperimentBudget Tiny;
  Tiny.MaxSimulations = 1;
  ExperimentResult Paused = Campaign::resume(Path, &Tiny);
  EXPECT_EQ(Paused.Status, CampaignStatus::BudgetExhausted);

  CampaignCheckpoint After;
  ASSERT_TRUE(loadCheckpoint(Path, After, &Error)) << Error;
  ASSERT_EQ(After.Surfaces.size(), 2u);
  for (auto &[Key, Shard] : Full.Surfaces) {
    ASSERT_EQ(After.Surfaces.count(Key), 1u) << Key;
    EXPECT_EQ(After.Surfaces[Key].Points, Shard.Points) << Key;
    EXPECT_EQ(After.Surfaces[Key].Values, Shard.Values) << Key;
  }

  // With the shards intact, a second resume replays every measurement
  // from the checkpoint: bitwise-identical results, equal simulation
  // count (expectIdenticalResults compares SimulationsUsed).
  ExperimentBudget Unlimited;
  ExperimentResult Final = Campaign::resume(Path, &Unlimited);
  ASSERT_TRUE(Final.ok()) << Final.Error;
  expectIdenticalResults(Ref, Final);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Kill -9 + resume
//===----------------------------------------------------------------------===//

/// Child body for the kill test: runs the checkpointed campaign and
/// SIGKILLs itself right after the fourth checkpoint (mid-GA-search).
/// Skipped unless the parent re-executed this binary with the hook
/// environment set.
TEST(CampaignKillChild, Run) {
  const char *Path = std::getenv("MSEM_CAMPAIGN_KILL_CKPT");
  if (!Path)
    GTEST_SKIP() << "kill-test child body; run by the parent test only";
  ExperimentSpec Spec = smallSpec();
  Spec.CheckpointPath = Path;
  Spec.OnCheckpointWritten = [](size_t N) {
    if (N >= 4)
      raise(SIGKILL);
  };
  runExperiment(Spec);
  FAIL() << "child was supposed to die at the fourth checkpoint";
}

TEST(CampaignTest, KilledCampaignResumesBitwiseIdentical) {
  PoolGuard Guard;
  std::string Path = tempCheckpointPath("kill");
  std::remove(Path.c_str());

  // Reference: uninterrupted, 1 thread.
  setGlobalThreadCount(1);
  ExperimentResult Ref = runExperiment(smallSpec());
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  // Child: same campaign, killed -9 after checkpoint 4 (two model
  // iterations plus two GA checkpoints). exec'd rather than forked so the
  // child gets a working thread pool.
  setenv("MSEM_CAMPAIGN_KILL_CKPT", Path.c_str(), 1);
  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    execl("/proc/self/exe", "campaign_test",
          "--gtest_filter=CampaignKillChild.Run", nullptr);
    _exit(127); // exec failed.
  }
  unsetenv("MSEM_CAMPAIGN_KILL_CKPT");
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFSIGNALED(Status))
      << "child should die by signal, status=" << Status;
  EXPECT_EQ(WTERMSIG(Status), SIGKILL);

  // The checkpoint the child left behind is valid and mid-flight.
  CampaignCheckpoint Ckpt;
  std::string Error;
  ASSERT_TRUE(loadCheckpoint(Path, Ckpt, &Error)) << Error;
  EXPECT_EQ(Ckpt.Jobs[0].State, JobState::Tuning);
  EXPECT_TRUE(Ckpt.Jobs[0].HasGaState);
  EXPECT_FALSE(Ckpt.Surfaces.empty());

  // Resume at a different thread count; the completed campaign must be
  // bitwise identical to the never-killed reference.
  setGlobalThreadCount(4);
  ExperimentResult Resumed = Campaign::resume(Path);
  ASSERT_TRUE(Resumed.ok()) << Resumed.Error;
  expectIdenticalResults(Ref, Resumed);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Fault policies
//===----------------------------------------------------------------------===//

TEST(FaultPolicyTest, RetryConvergesToFaultFreeMeasurements) {
  ParameterSpace Space = ParameterSpace::paperSpace();
  ResponseSurface::Options Clean;
  Clean.Workload = "art";
  Clean.Input = InputSet::Test;
  Clean.Smarts.SamplingInterval = 10;
  Clean.Faults.InjectRate = 0.0;

  ResponseSurface::Options Flaky = Clean;
  Flaky.Faults.InjectRate = 0.5;
  Flaky.Faults.OnFault = FaultAction::Retry;
  Flaky.Faults.MaxAttempts = 16;

  Rng R(7);
  std::vector<DesignPoint> Points = generateRandomCandidates(Space, 8, R);

  ResponseSurface CleanSurface(Space, Clean);
  ResponseSurface FlakySurface(Space, Flaky);
  MeasurementReport CleanReport, FlakyReport;
  std::vector<double> Want = CleanSurface.measureAll(Points, &CleanReport);
  std::vector<double> Got = FlakySurface.measureAll(Points, &FlakyReport);

  // Retried measurements converge to exactly the fault-free responses.
  EXPECT_EQ(Want, Got);
  EXPECT_TRUE(FlakyReport.ok());
  EXPECT_EQ(CleanReport.FaultsInjected, 0u);
  EXPECT_GT(FlakyReport.FaultsInjected, 0u);
  EXPECT_GT(FlakyReport.Retries, 0u);
  // Injection is a pure function of (point, attempt): a second flaky
  // surface sees the identical fault pattern.
  ResponseSurface FlakyAgain(Space, Flaky);
  MeasurementReport AgainReport;
  FlakyAgain.measureAll(Points, &AgainReport);
  EXPECT_EQ(AgainReport.FaultsInjected, FlakyReport.FaultsInjected);
  EXPECT_EQ(AgainReport.Retries, FlakyReport.Retries);
}

TEST(FaultPolicyTest, RetryExhaustionAbortsStructurally) {
  // A point whose every attempt faults must not silently degrade into
  // the Skip path: retrying callers never opted into losing design
  // points, so exhaustion aborts the batch with a structured error.
  ParameterSpace Space = ParameterSpace::paperSpace();
  ResponseSurface::Options Opts;
  Opts.Workload = "art";
  Opts.Input = InputSet::Test;
  Opts.Smarts.SamplingInterval = 10;
  Opts.Faults.InjectRate = 1.0; // Every attempt fails.
  Opts.Faults.OnFault = FaultAction::Retry;
  Opts.Faults.MaxAttempts = 3;
  ResponseSurface Surface(Space, Opts);

  Rng R(11);
  std::vector<DesignPoint> Points = generateRandomCandidates(Space, 4, R);
  MeasurementReport Report;
  std::vector<double> Y = Surface.measureAll(Points, &Report);
  EXPECT_TRUE(Y.empty());
  EXPECT_TRUE(Report.Aborted);
  EXPECT_TRUE(Report.SkippedIndices.empty());
  EXPECT_NE(Report.Error.find("retry"), std::string::npos) << Report.Error;
  EXPECT_EQ(Report.FaultsInjected, 12u); // 4 points x 3 attempts.
}

TEST(FaultPolicyTest, SkipPolicyRecordsSkippedPoints) {
  ParameterSpace Space = ParameterSpace::paperSpace();
  ResponseSurface::Options Opts;
  Opts.Workload = "art";
  Opts.Input = InputSet::Test;
  Opts.Smarts.SamplingInterval = 10;
  Opts.Faults.InjectRate = 0.3;
  Opts.Faults.OnFault = FaultAction::Skip;
  ResponseSurface Surface(Space, Opts);

  ModelBuilderOptions Build;
  Build.Technique = ModelTechnique::Rbf;
  Build.InitialDesignSize = 30;
  Build.MaxDesignSize = 30;
  Build.TestSize = 6;
  Build.CandidateCount = 150;
  ModelBuildResult Result = buildModel(Surface, Build);

  // The build completes on the surviving points and reports the rest.
  EXPECT_EQ(Result.Stop, BuildStop::DesignExhausted);
  EXPECT_FALSE(Result.SkippedPoints.empty());
  EXPECT_LT(Result.TrainPoints.size(), 30u);
  EXPECT_EQ(Result.TrainPoints.size(), Result.TrainY.size());
  ASSERT_NE(Result.FittedModel, nullptr);
  EXPECT_GT(Result.TestQuality.Mape, 0.0);
}

TEST(FaultPolicyTest, AbortPolicySurfacesStructuredError) {
  ExperimentSpec Spec = smallSpec();
  Spec.TunePlatforms.clear();
  Spec.Faults.InjectRate = 0.9;
  Spec.Faults.OnFault = FaultAction::Abort;

  // No crash, no exception: a failed campaign is a structured result.
  ExperimentResult Result = runExperiment(Spec);
  EXPECT_EQ(Result.Status, CampaignStatus::Failed);
  EXPECT_FALSE(Result.Error.empty());
  ASSERT_EQ(Result.Jobs.size(), 1u);
  EXPECT_EQ(Result.Jobs[0].State, JobState::Failed);
  EXPECT_EQ(Result.Jobs[0].Build.Stop, BuildStop::Failed);
  EXPECT_FALSE(Result.Jobs[0].Error.empty());
}

//===----------------------------------------------------------------------===//
// GA checkpoint/resume (model-level, no simulator)
//===----------------------------------------------------------------------===//

TEST(GaResumeTest, PausedSearchResumesBitwiseIdentical) {
  ParameterSpace Space = ParameterSpace::paperSpace();
  // A cheap deterministic fitness oracle: a linear model fitted to a
  // synthetic response.
  Rng R(5);
  std::vector<DesignPoint> Points = generateRandomCandidates(Space, 60, R);
  Matrix X = encodeMatrix(Space, Points);
  std::vector<double> Y(Points.size());
  for (size_t I = 0; I < Points.size(); ++I) {
    double V = 100.0;
    for (size_t J = 0; J < X.cols(); ++J)
      V += static_cast<double>(J + 1) * X.at(I, J);
    Y[I] = V;
  }
  LinearModel M;
  M.train(X, Y);

  DesignPoint Frozen = Space.fromConfigs(OptimizationConfig::O2(),
                                         MachineConfig::typical());
  GaOptions Options;
  Options.Population = 16;
  Options.Generations = 10;
  Options.StallGenerations = 0;

  GaResult Straight = searchOptimalSettings(M, Space, Frozen, Options);
  EXPECT_FALSE(Straight.Paused);
  EXPECT_EQ(Straight.GenerationsRun, 10);

  // Pause at generation 4, capturing the state...
  GaState Captured;
  GaOptions Pausing = Options;
  Pausing.OnGeneration = [&Captured](const GaState &S) {
    if (S.Generation == 4) {
      Captured = S;
      return false;
    }
    return true;
  };
  GaResult Paused = searchOptimalSettings(M, Space, Frozen, Pausing);
  EXPECT_TRUE(Paused.Paused);
  EXPECT_EQ(Captured.Generation, 4);

  // ...and resume from it: the finished search matches the uninterrupted
  // one exactly.
  GaOptions Resuming = Options;
  Resuming.ResumeFrom = &Captured;
  GaResult Resumed = searchOptimalSettings(M, Space, Frozen, Resuming);
  EXPECT_FALSE(Resumed.Paused);
  EXPECT_EQ(Resumed.GenerationsRun, Straight.GenerationsRun);
  EXPECT_EQ(Resumed.BestPoint, Straight.BestPoint);
  EXPECT_EQ(Resumed.PredictedResponse, Straight.PredictedResponse);
}

//===----------------------------------------------------------------------===//
// Cache path exposure
//===----------------------------------------------------------------------===//

TEST(CampaignTest, SurfaceExposesCachePath) {
  ParameterSpace Space = ParameterSpace::paperSpace();
  ResponseSurface::Options Memory;
  Memory.Workload = "art";
  Memory.Input = InputSet::Test;
  ResponseSurface InMemory(Space, Memory);
  EXPECT_TRUE(InMemory.cachePath().empty());

  ResponseSurface::Options OnDisk = Memory;
  OnDisk.CacheDir = formatString("campaign_test_cache_%d",
                                 static_cast<int>(getpid()));
  {
    ResponseSurface Cached(Space, OnDisk);
    EXPECT_EQ(Cached.cachePath(), OnDisk.CacheDir + "/responses.csv");
  }
  std::remove((OnDisk.CacheDir + "/responses.csv").c_str());
  rmdir(OnDisk.CacheDir.c_str());
}
