//===- tests/search_test.cpp - Genetic search tests -------------------------------===//

#include "search/GeneticSearch.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace msem;

namespace {

/// A model with a known optimum over the compiler subspace.
class QuadraticModel : public Model {
public:
  void train(const Matrix &, const std::vector<double> &) override {}
  double predict(const std::vector<double> &X) const override {
    // Minimized when x0=-1 (flag off), x1=+1 (flag on), x9=0.4,
    // x12=-0.2; the frozen machine vars contribute a constant shift.
    double V = 100;
    V += 5 * (X[0] + 1) * (X[0] + 1);
    V += 5 * (X[1] - 1) * (X[1] - 1);
    V += 10 * (X[9] - 0.4) * (X[9] - 0.4);
    V += 10 * (X[12] + 0.2) * (X[12] + 0.2);
    V += 2 * X[14]; // Machine coordinate: frozen during search.
    return V;
  }
  std::string name() const override { return "quad"; }
  void save(Json &) const override {}
  bool load(const Json &, std::string *) override { return false; }
};

TEST(GaTest, FindsKnownOptimum) {
  ParameterSpace S = ParameterSpace::paperSpace();
  QuadraticModel M;
  DesignPoint Frozen = S.fromConfigs(OptimizationConfig::O2(),
                                     MachineConfig::typical());
  GaOptions Opts;
  Opts.Generations = 60;
  GaResult R = searchOptimalSettings(M, S, Frozen, Opts);

  EXPECT_EQ(R.BestPoint[0], 0); // Flag 1 off.
  EXPECT_EQ(R.BestPoint[1], 1); // Flag 2 on.
  // Heuristic 10 (max-inline-insns-auto, 50..150): encoded 0.4 -> 120.
  EXPECT_NEAR(static_cast<double>(R.BestPoint[9]), 120.0, 10.0);
  // Heuristic 13 (max-unroll-times 4..12): encoded -0.2 -> ~7.
  EXPECT_NEAR(static_cast<double>(R.BestPoint[12]), 7.0, 1.0);
}

TEST(GaTest, FrozenMachineCoordinatesUntouched) {
  ParameterSpace S = ParameterSpace::paperSpace();
  QuadraticModel M;
  DesignPoint Frozen = S.fromConfigs(OptimizationConfig::O2(),
                                     MachineConfig::aggressive());
  GaResult R = searchOptimalSettings(M, S, Frozen);
  EXPECT_EQ(S.toMachineConfig(R.BestPoint), MachineConfig::aggressive());
}

TEST(GaTest, DeterministicForSeed) {
  ParameterSpace S = ParameterSpace::paperSpace();
  QuadraticModel M;
  DesignPoint Frozen = S.fromConfigs(OptimizationConfig::O2(),
                                     MachineConfig::typical());
  GaOptions Opts;
  Opts.Seed = 1234;
  GaResult A = searchOptimalSettings(M, S, Frozen, Opts);
  GaResult B = searchOptimalSettings(M, S, Frozen, Opts);
  EXPECT_EQ(A.BestPoint, B.BestPoint);
  EXPECT_DOUBLE_EQ(A.PredictedResponse, B.PredictedResponse);
}

TEST(GaTest, BeatsRandomSearchOfSameBudget) {
  ParameterSpace S = ParameterSpace::paperSpace();
  QuadraticModel M;
  DesignPoint Frozen = S.fromConfigs(OptimizationConfig::O2(),
                                     MachineConfig::typical());
  GaOptions Opts;
  Opts.Population = 30;
  Opts.Generations = 30;
  GaResult Ga = searchOptimalSettings(M, S, Frozen, Opts);

  // Random search with the same number of evaluations.
  Rng R(777);
  double RandomBest = 1e300;
  for (int I = 0; I < 30 * 30; ++I) {
    DesignPoint P = S.randomPoint(R);
    S.freezeMachine(P, S.toMachineConfig(Frozen));
    RandomBest = std::min(RandomBest, M.predict(S.encode(P)));
  }
  EXPECT_LE(Ga.PredictedResponse, RandomBest + 1e-9);
}

TEST(GaTest, MoreGenerationsNeverWorse) {
  ParameterSpace S = ParameterSpace::paperSpace();
  QuadraticModel M;
  DesignPoint Frozen = S.fromConfigs(OptimizationConfig::O2(),
                                     MachineConfig::typical());
  GaOptions Short;
  Short.Generations = 3;
  Short.Seed = 99;
  GaOptions Long = Short;
  Long.Generations = 50;
  double ShortBest =
      searchOptimalSettings(M, S, Frozen, Short).PredictedResponse;
  double LongBest =
      searchOptimalSettings(M, S, Frozen, Long).PredictedResponse;
  EXPECT_LE(LongBest, ShortBest + 1e-9);
}

} // namespace

namespace {

TEST(GaTest, EarlyStopTerminatesSooner) {
  ParameterSpace S = ParameterSpace::paperSpace();
  QuadraticModel M;
  DesignPoint Frozen = S.fromConfigs(OptimizationConfig::O2(),
                                     MachineConfig::typical());
  GaOptions Patient;
  Patient.Generations = 200;
  Patient.StallGenerations = 0; // Disabled: must run all generations.
  GaOptions Impatient = Patient;
  Impatient.StallGenerations = 5;
  GaResult RPatient = searchOptimalSettings(M, S, Frozen, Patient);
  GaResult RImpatient = searchOptimalSettings(M, S, Frozen, Impatient);
  EXPECT_EQ(RPatient.GenerationsRun, 200);
  EXPECT_LT(RImpatient.GenerationsRun, 200);
  // Early stopping must not cost solution quality on this easy surface.
  EXPECT_NEAR(RImpatient.PredictedResponse, RPatient.PredictedResponse,
              1.0);
}

} // namespace
