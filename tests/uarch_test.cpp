//===- tests/uarch_test.cpp - Cache/predictor/core timing tests ----------------===//

#include "codegen/CodeGenerator.h"
#include "opt/Passes.h"
#include "tests/TestPrograms.h"
#include "uarch/Simulator.h"

#include <gtest/gtest.h>

using namespace msem;
using namespace msem::testing;

namespace {

// ----------------------------------------------------------------- Cache unit
TEST(CacheTest, HitAfterFill) {
  Cache C(1024, 1, 32);
  EXPECT_FALSE(C.access(0x100, false)); // Cold miss.
  EXPECT_TRUE(C.access(0x100, false));  // Hit.
  EXPECT_TRUE(C.access(0x11F, false));  // Same 32B line.
  EXPECT_FALSE(C.access(0x120, false)); // Next line.
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(CacheTest, DirectMappedConflict) {
  // 1KB direct mapped, 32B lines -> 32 sets; addresses 1KB apart conflict.
  Cache C(1024, 1, 32);
  C.access(0x0, false);
  C.access(0x400, false); // Evicts 0x0.
  EXPECT_FALSE(C.access(0x0, false));
}

TEST(CacheTest, TwoWayAvoidsPingPong) {
  Cache C(1024, 2, 32);
  C.access(0x0, false);
  C.access(0x400, false);
  EXPECT_TRUE(C.access(0x0, false));
  EXPECT_TRUE(C.access(0x400, false));
}

TEST(CacheTest, LruEvictsOldest) {
  Cache C(1024, 2, 32); // 16 sets; 0x0, 0x200(?)... use set 0: 0x0,0x200*?
  // Set index = (addr/32) % 16. Addresses 0x0, 0x200, 0x400 share set 0.
  C.access(0x0, false);
  C.access(0x200, false);
  C.access(0x0, false);   // Refresh 0x0; LRU is 0x200.
  C.access(0x400, false); // Evicts 0x200.
  EXPECT_TRUE(C.probe(0x0));
  EXPECT_FALSE(C.probe(0x200));
  EXPECT_TRUE(C.probe(0x400));
}

TEST(CacheTest, DirtyEvictionReported) {
  Cache C(1024, 1, 32);
  C.access(0x0, true); // Dirty fill.
  bool Dirty = false;
  C.access(0x400, false, &Dirty); // Evicts dirty 0x0.
  EXPECT_TRUE(Dirty);
}

// ----------------------------------------------------------- MemoryHierarchy
TEST(HierarchyTest, LatencyComposition) {
  MachineConfig Cfg = MachineConfig::typical(); // dl1 2, l2 10, mem 100.
  MemoryHierarchy H(Cfg);
  // Cold miss: dl1 + l2 + mem (plus possible bus wait, none here).
  uint64_t Ready = H.accessData(0x10000, false, false, 1000);
  EXPECT_EQ(Ready, 1000 + 2 + 10 + 100);
  // Now everything is cached: dl1 hit.
  EXPECT_EQ(H.accessData(0x10000, false, false, 2000), 2000 + 2);
  EXPECT_EQ(H.stats().DcacheMisses, 1u);
  EXPECT_EQ(H.stats().L2Misses, 1u);
}

TEST(HierarchyTest, L2HitSkipsMemory) {
  MachineConfig Cfg = MachineConfig::typical();
  MemoryHierarchy H(Cfg);
  H.accessData(0x20000, false, false, 0); // Fill both levels.
  // Evict from tiny... instead use a second address mapping to a different
  // dl1 set is hard to force; use touch of a conflicting dl1 line: dl1 is
  // 32KB direct-mapped -> lines 32KB apart conflict, but L2 (1MB) keeps
  // both.
  H.accessData(0x20000 + 32 * 1024, false, false, 0);
  uint64_t Ready = H.accessData(0x20000, false, false, 5000);
  EXPECT_EQ(Ready, 5000 + 2 + 10); // dl1 miss, L2 hit.
}

TEST(HierarchyTest, BusContentionSerializes) {
  MachineConfig Cfg = MachineConfig::typical();
  MemoryHierarchy H(Cfg);
  // Two simultaneous cold misses: the second waits for the bus.
  uint64_t R1 = H.accessData(0x100000, false, false, 0);
  uint64_t R2 = H.accessData(0x200000, false, false, 0);
  EXPECT_GT(R2, R1 - Cfg.MemoryLatency + MachineConfig::MemoryBusOccupancy -
                    1);
  EXPECT_GT(R2, R1); // Strictly later due to bus occupancy.
}

TEST(HierarchyTest, WarmingTouchFillsWithoutTiming) {
  MachineConfig Cfg = MachineConfig::typical();
  MemoryHierarchy H(Cfg);
  H.touchData(0x30000, false);
  EXPECT_EQ(H.accessData(0x30000, false, false, 100), 100 + 2); // Warm hit.
}

// ------------------------------------------------------------ BranchPredictor
TEST(PredictorTest, BimodalLearnsBias) {
  BimodalPredictor P(512);
  for (int I = 0; I < 10; ++I)
    P.update(0x40, true);
  EXPECT_TRUE(P.predict(0x40));
  for (int I = 0; I < 20; ++I)
    P.update(0x40, false);
  EXPECT_FALSE(P.predict(0x40));
}

TEST(PredictorTest, TwoLevelLearnsAlternation) {
  // Strict alternation defeats bimodal but is captured by global history.
  TwoLevelPredictor P(4096);
  bool Dir = false;
  int Correct = 0;
  for (int I = 0; I < 2000; ++I) {
    Dir = !Dir;
    if (I > 1000 && P.predict(0x80) == Dir)
      ++Correct;
    P.update(0x80, Dir);
  }
  EXPECT_GT(Correct, 900); // Near-perfect after warm-up.
}

TEST(PredictorTest, CombinedTracksBetterComponent) {
  CombinedPredictor P(2048, 8);
  bool Dir = false;
  int Correct = 0;
  for (int I = 0; I < 4000; ++I) {
    Dir = !Dir;
    if (I > 2000 && P.predictConditional(0x80) == Dir)
      ++Correct;
    P.updateConditional(0x80, Dir);
  }
  EXPECT_GT(Correct, 1800);
}

TEST(PredictorTest, ReturnStackPredictsNestedReturns) {
  CombinedPredictor P(512, 8);
  P.pushReturn(100);
  P.pushReturn(200);
  EXPECT_TRUE(P.predictReturn(200));
  EXPECT_TRUE(P.predictReturn(100));
  EXPECT_FALSE(P.predictReturn(300)); // Stack empty/garbage.
}

// ------------------------------------------------------------- Detailed core
MachineProgram compile(Module &M,
                       OptimizationConfig C = OptimizationConfig::O2()) {
  runPassPipeline(M, C);
  CodeGenOptions Opts;
  Opts.OmitFramePointer = C.OmitFramePointer;
  Opts.PostRaSchedule = C.ScheduleInsns2;
  return compileToProgram(M, Opts);
}

TEST(CoreTest, ProducesPlausibleCpi) {
  auto M = makeArraySum(4096);
  MachineProgram Prog = compile(*M);
  SimulationResult R = simulateDetailed(Prog, MachineConfig::typical());
  ASSERT_FALSE(R.Exec.Trapped) << R.Exec.TrapMessage;
  EXPECT_GT(R.Cycles, 0u);
  double Cpi = R.cpi();
  EXPECT_GT(Cpi, 0.25); // Cannot beat issue width 4.
  EXPECT_LT(Cpi, 30.0); // Sanity upper bound.
}

TEST(CoreTest, ArchitecturalResultsUnaffectedByTiming) {
  auto M = makeBranchy(27, 500);
  InterpResult Ref = Interpreter().run(*M);
  MachineProgram Prog = compile(*M);
  SimulationResult R = simulateDetailed(Prog, MachineConfig::constrained());
  EXPECT_EQ(R.Exec.ReturnValue, Ref.ReturnValue);
}

TEST(CoreTest, WiderIssueIsNotSlower) {
  auto M = makeFpKernel(2048);
  MachineProgram Prog = compile(*M);
  MachineConfig Narrow = MachineConfig::typical();
  Narrow.IssueWidth = 2;
  MachineConfig Wide = MachineConfig::typical();
  Wide.IssueWidth = 4;
  uint64_t CyclesNarrow = simulateDetailed(Prog, Narrow).Cycles;
  uint64_t CyclesWide = simulateDetailed(Prog, Wide).Cycles;
  EXPECT_LE(CyclesWide, CyclesNarrow);
}

TEST(CoreTest, LargerDcacheHelpsBigArrays) {
  // A 64KB array swept repeatedly: reuse misses in an 8KB cache, hits in a
  // 128KB one (streaming-only workloads see no difference -- reuse is what
  // cache capacity buys).
  Module M0("sweep");
  constexpr int64_t N = 8192; // 64KB of i64.
  GlobalVariable *G = M0.createGlobal("buf", N * 8);
  Function *F = M0.createFunction("main", Type::I64, {});
  IRBuilder B(M0);
  B.setInsertPoint(F->createBlock("entry"));
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "fill");
    B.storeElem(L.indVar(), G, L.indVar(), MemKind::Int64);
    L.finish();
  }
  LoopBuilder Passes(B, B.constInt(0), B.constInt(6), 1, "pass");
  Value *Acc0 = Passes.carried(B.constInt(0));
  LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "sum");
  Value *Acc = L.carried(Acc0);
  L.setNext(Acc, B.add(Acc, B.loadElem(G, L.indVar(), MemKind::Int64)));
  L.finish();
  Passes.setNext(Acc0, L.exitValue(Acc));
  Passes.finish();
  B.ret(Passes.exitValue(Acc0));
  MachineProgram Prog = compile(M0);
  MachineConfig Small = MachineConfig::typical();
  Small.DcacheBytes = 8 * 1024;
  MachineConfig Big = MachineConfig::typical();
  Big.DcacheBytes = 128 * 1024;
  SimulationResult RS = simulateDetailed(Prog, Small);
  SimulationResult RB = simulateDetailed(Prog, Big);
  EXPECT_LT(RB.Memory.DcacheMisses, RS.Memory.DcacheMisses);
  EXPECT_LT(RB.Cycles, RS.Cycles);
}

TEST(CoreTest, MemoryLatencyHurts) {
  auto M = makeNestedGrid(256, 256);
  MachineProgram Prog = compile(*M);
  MachineConfig Fast = MachineConfig::typical();
  Fast.MemoryLatency = 50;
  Fast.L2Bytes = 256 * 1024; // Force memory traffic.
  MachineConfig Slow = Fast;
  Slow.MemoryLatency = 150;
  EXPECT_LT(simulateDetailed(Prog, Fast).Cycles,
            simulateDetailed(Prog, Slow).Cycles);
}

TEST(CoreTest, BiggerPredictorReducesMispredicts) {
  auto M = makeBranchy(29, 20000);
  MachineProgram Prog = compile(*M);
  MachineConfig Small = MachineConfig::typical();
  Small.BranchPredictorSize = 512;
  MachineConfig Big = MachineConfig::typical();
  Big.BranchPredictorSize = 8192;
  SimulationResult RS = simulateDetailed(Prog, Small);
  SimulationResult RB = simulateDetailed(Prog, Big);
  EXPECT_LE(RB.Branch.Mispredicts, RS.Branch.Mispredicts);
}

TEST(CoreTest, RuuSizeBoundsIlp) {
  auto M = makeFpKernel(4096);
  MachineProgram Prog = compile(*M);
  MachineConfig Tiny = MachineConfig::typical();
  Tiny.RuuSize = 16;
  MachineConfig Huge = MachineConfig::typical();
  Huge.RuuSize = 128;
  EXPECT_LE(simulateDetailed(Prog, Huge).Cycles,
            simulateDetailed(Prog, Tiny).Cycles);
}

TEST(CoreTest, StatsAreConsistent) {
  auto M = makeCallLoop(200);
  MachineProgram Prog = compile(*M);
  SimulationResult R = simulateDetailed(Prog, MachineConfig::typical());
  EXPECT_EQ(R.Pipeline.Instructions, R.Exec.InstructionsExecuted);
  EXPECT_GE(R.Pipeline.Branches, 200u); // At least the loop back edges.
  EXPECT_GE(R.Branch.Lookups, R.Branch.Mispredicts);
  EXPECT_GT(R.Pipeline.Loads, 0u);
  EXPECT_GT(R.Pipeline.Stores, 0u);
}

} // namespace

#include "uarch/EnergyModel.h"

namespace {

TEST(EnergyModelTest, ScalesWithWorkAndCapacity) {
  auto M1 = makeArraySum(512);
  MachineProgram P1 = compile(*M1);
  MachineConfig Typ = MachineConfig::typical();
  SimulationResult RSmallWork = simulateDetailed(P1, Typ);

  auto M2 = makeArraySum(4096);
  MachineProgram P2 = compile(*M2);
  SimulationResult RBigWork = simulateDetailed(P2, Typ);

  double ESmall = estimateEnergyNanojoules(RSmallWork, Typ);
  double EBig = estimateEnergyNanojoules(RBigWork, Typ);
  EXPECT_GT(ESmall, 0);
  EXPECT_GT(EBig, ESmall); // More instructions, more energy.

  // Same run costed against a larger-capacity machine leaks more.
  MachineConfig BigCaches = Typ;
  BigCaches.L2Bytes = 8 * 1024 * 1024;
  EXPECT_GT(estimateEnergyNanojoules(RBigWork, BigCaches), EBig);
}

TEST(EnergyModelTest, CacheTrafficCostsEnergy) {
  // The same program with a thrashing dcache burns more energy in the
  // L2/bus than with a big one (miss overheads + transfers), even though
  // leakage is lower.
  Module M0("sweep2");
  constexpr int64_t N = 8192;
  GlobalVariable *G = M0.createGlobal("buf", N * 8);
  Function *F = M0.createFunction("main", Type::I64, {});
  IRBuilder B(M0);
  B.setInsertPoint(F->createBlock("entry"));
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "fill");
    B.storeElem(L.indVar(), G, L.indVar(), MemKind::Int64);
    L.finish();
  }
  LoopBuilder Passes(B, B.constInt(0), B.constInt(6), 1, "pass");
  Value *Acc0 = Passes.carried(B.constInt(0));
  LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "sum");
  Value *Acc = L.carried(Acc0);
  L.setNext(Acc, B.add(Acc, B.loadElem(G, L.indVar(), MemKind::Int64)));
  L.finish();
  Passes.setNext(Acc0, L.exitValue(Acc));
  Passes.finish();
  B.ret(Passes.exitValue(Acc0));
  MachineProgram Prog = compile(M0);

  MachineConfig Small = MachineConfig::typical();
  Small.DcacheBytes = 8 * 1024;
  SimulationResult RS = simulateDetailed(Prog, Small);
  MachineConfig Big = Small;
  Big.DcacheBytes = 128 * 1024;
  SimulationResult RB = simulateDetailed(Prog, Big);
  ASSERT_GT(RS.Memory.DcacheMisses, RB.Memory.DcacheMisses);
  // Compare on the SAME config constants (isolate the traffic term) by
  // costing both runs against the small config.
  double ETrafficHeavy = estimateEnergyNanojoules(RS, Small);
  double ETrafficLight = estimateEnergyNanojoules(RB, Small);
  EXPECT_GT(ETrafficHeavy, ETrafficLight);
}

} // namespace
