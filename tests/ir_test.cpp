//===- tests/ir_test.cpp - IR construction/analysis/interpretation tests -----===//

#include "ir/CFG.h"
#include "ir/Dominators.h"
#include "ir/IRPrinter.h"
#include "ir/Interpreter.h"
#include "ir/LoopInfo.h"
#include "ir/Verifier.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace msem;
using namespace msem::testing;

namespace {

TEST(IrBuilderTest, SumLoopVerifiesAndRuns) {
  auto M = makeSumLoop(10);
  EXPECT_TRUE(verifyModule(*M).empty());
  Interpreter Interp;
  InterpResult R = Interp.run(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  // 7 + 3*sum(0..9) = 7 + 3*45 = 142.
  EXPECT_EQ(R.ReturnValue, 142);
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0].IntVal, 142);
}

TEST(IrBuilderTest, ZeroTripLoopSkipsBody) {
  auto M = makeSumLoop(0);
  Interpreter Interp;
  InterpResult R = Interp.run(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  EXPECT_EQ(R.ReturnValue, 7); // Initial accumulator value.
}

TEST(IrBuilderTest, NegativeBoundSkipsBody) {
  auto M = makeSumLoop(-5);
  InterpResult R = Interpreter().run(*M);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 7);
}

TEST(IrBuilderTest, ArraySumComputesSquares) {
  auto M = makeArraySum(20);
  EXPECT_TRUE(verifyModule(*M).empty());
  InterpResult R = Interpreter().run(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  int64_t Expected = 0;
  for (int64_t I = 0; I < 20; ++I)
    Expected += I * I;
  EXPECT_EQ(R.ReturnValue, Expected);
}

TEST(IrBuilderTest, CallLoopRuns) {
  auto M = makeCallLoop(50);
  EXPECT_TRUE(verifyModule(*M).empty());
  InterpResult R = Interpreter().run(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  int64_t Acc = 1;
  for (int64_t I = 0; I < 50; ++I)
    Acc = (I * 5 + Acc) % 1000003;
  EXPECT_EQ(R.ReturnValue, Acc);
}

TEST(IrBuilderTest, BranchyMatchesReference) {
  auto M = makeBranchy(27, 100);
  EXPECT_TRUE(verifyModule(*M).empty());
  InterpResult R = Interpreter().run(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  int64_t X = 27;
  for (int64_t I = 0; I < 100; ++I) {
    X = (X & 1) ? 3 * X + 1 : X / 2;
    if (X <= 1)
      X += 97;
  }
  EXPECT_EQ(R.ReturnValue, X);
}

TEST(IrBuilderTest, FpKernelMatchesReference) {
  auto M = makeFpKernel(64);
  InterpResult R = Interpreter().run(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  double Acc = 0;
  for (int64_t I = 0; I < 64; ++I)
    Acc += (0.5 * static_cast<double>(I)) *
           (static_cast<double>(I) + 1.25);
  EXPECT_EQ(R.ReturnValue, static_cast<int64_t>(Acc));
}

TEST(IrBuilderTest, NestedGridMatchesReference) {
  auto M = makeNestedGrid(8, 12);
  InterpResult R = Interpreter().run(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  int64_t Expected = 0;
  for (int64_t R0 = 0; R0 < 8; ++R0)
    for (int64_t C = 0; C < 12; ++C)
      Expected += static_cast<int32_t>((R0 * 31) ^ (C * 17));
  EXPECT_EQ(R.ReturnValue, Expected);
}

TEST(VerifierTest, CatchesMissingTerminator) {
  Module M("bad");
  Function *F = M.createFunction("main", Type::I64, {});
  F->createBlock("entry"); // Left empty: no terminator.
  EXPECT_FALSE(verifyFunction(*F).empty());
}

TEST(VerifierTest, CatchesTypeMismatch) {
  Module M("bad");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  // Hand-build an add with a float operand (IRBuilder would assert).
  auto I = std::make_unique<Instruction>(Opcode::Add, Type::I64);
  I->addOperand(M.constInt(1));
  I->addOperand(M.constFloat(2.0));
  Value *BadAdd = F->entry()->append(std::move(I));
  B.ret(BadAdd);
  EXPECT_FALSE(verifyFunction(*F).empty());
}

TEST(VerifierTest, CatchesUseBeforeDef) {
  Module M("bad");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  B.setInsertPoint(Entry);
  // use = add(x, 1) where x is defined *after* the use in the same block.
  auto Use = std::make_unique<Instruction>(Opcode::Add, Type::I64);
  auto Def = std::make_unique<Instruction>(Opcode::Add, Type::I64);
  Def->addOperand(M.constInt(1));
  Def->addOperand(M.constInt(2));
  Instruction *DefI = Def.get();
  Use->addOperand(DefI);
  Use->addOperand(M.constInt(1));
  Value *UseI = Entry->append(std::move(Use));
  Entry->append(std::move(Def));
  B.ret(UseI);
  EXPECT_FALSE(verifyFunction(*F).empty());
}

TEST(DominatorsTest, LinearChain) {
  Module M("dom");
  Function *F = M.createFunction("main", Type::Void, {});
  IRBuilder B(M);
  BasicBlock *A = F->createBlock("a");
  BasicBlock *Bb = F->createBlock("b");
  BasicBlock *C = F->createBlock("c");
  B.setInsertPoint(A);
  B.jmp(Bb);
  B.setInsertPoint(Bb);
  B.jmp(C);
  B.setInsertPoint(C);
  B.ret();
  DominatorTree DT(*F);
  EXPECT_TRUE(DT.dominates(A, C));
  EXPECT_TRUE(DT.dominates(Bb, C));
  EXPECT_FALSE(DT.dominates(C, A));
  EXPECT_EQ(DT.idom(C), Bb);
  EXPECT_EQ(DT.idom(Bb), A);
  EXPECT_EQ(DT.idom(A), nullptr);
}

TEST(DominatorsTest, DiamondJoinDominatedByTop) {
  Module M("dom2");
  Function *F = M.createFunction("main", Type::Void, {});
  IRBuilder B(M);
  BasicBlock *Top = F->createBlock("top");
  BasicBlock *L = F->createBlock("l");
  BasicBlock *R = F->createBlock("r");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertPoint(Top);
  B.br(M.constInt(1), L, R);
  B.setInsertPoint(L);
  B.jmp(Join);
  B.setInsertPoint(R);
  B.jmp(Join);
  B.setInsertPoint(Join);
  B.ret();
  DominatorTree DT(*F);
  EXPECT_EQ(DT.idom(Join), Top);
  EXPECT_FALSE(DT.dominates(L, Join));
  EXPECT_FALSE(DT.dominates(R, Join));
}

TEST(LoopInfoTest, FindsCountedLoop) {
  auto M = makeSumLoop(10);
  Function *F = M->mainFunction();
  DominatorTree DT(*F);
  LoopAnalysis LA(*F, DT);
  ASSERT_EQ(LA.loops().size(), 1u);
  const Loop &L = *LA.loops()[0];
  EXPECT_EQ(L.Depth, 1u);
  EXPECT_NE(L.Preheader, nullptr);
  ASSERT_EQ(L.Latches.size(), 1u);
  CountedLoop CL;
  ASSERT_TRUE(LoopAnalysis::matchCountedLoop(L, CL));
  EXPECT_EQ(CL.StepValue, 1);
  EXPECT_TRUE(CL.CondOnNext);
}

TEST(LoopInfoTest, NestedLoopsHaveDepths) {
  auto M = makeNestedGrid(4, 4);
  Function *F = M->mainFunction();
  DominatorTree DT(*F);
  LoopAnalysis LA(*F, DT);
  // Outer+inner for the fill nest plus the reduce loop = 3 loops.
  ASSERT_EQ(LA.loops().size(), 3u);
  unsigned Depth2 = 0;
  for (const auto &L : LA.loops())
    if (L->Depth == 2)
      ++Depth2;
  EXPECT_EQ(Depth2, 1u);
}

TEST(CfgTest, ReversePostOrderStartsAtEntry) {
  auto M = makeBranchy(7, 10);
  Function *F = M->mainFunction();
  auto RPO = reversePostOrder(*F);
  ASSERT_FALSE(RPO.empty());
  EXPECT_EQ(RPO.front(), F->entry());
  // RPO visits every reachable block exactly once.
  EXPECT_EQ(RPO.size(), F->blocks().size());
}

TEST(CfgTest, RemoveUnreachableBlocks) {
  Module M("unreach");
  Function *F = M.createFunction("main", Type::Void, {});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Dead = F->createBlock("dead");
  B.setInsertPoint(Entry);
  B.ret();
  B.setInsertPoint(Dead);
  B.ret();
  EXPECT_EQ(removeUnreachableBlocks(*F), 1u);
  EXPECT_EQ(F->blocks().size(), 1u);
}

TEST(InterpreterTest, TrapsOnDivByZero) {
  Module M("div0");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  // Hide the zero behind a load so constant folding can't see it.
  GlobalVariable *G = M.createGlobal("zero", 8);
  Value *Z = B.load(G, MemKind::Int64);
  B.ret(B.divS(B.constInt(1), Z));
  InterpResult R = Interpreter().run(M);
  EXPECT_TRUE(R.Trapped);
}

TEST(InterpreterTest, TrapsOnOutOfBounds) {
  Module M("oob");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  GlobalVariable *G = M.createGlobal("small", 8);
  Value *P = B.ptrAdd(G, B.constInt(1 << 30));
  B.ret(B.load(P, MemKind::Int64));
  InterpResult R = Interpreter().run(M);
  EXPECT_TRUE(R.Trapped);
}

TEST(InterpreterTest, GlobalInitializerIsVisible) {
  Module M("ginit");
  GlobalVariable *G = M.createGlobal("data", 16);
  std::vector<uint8_t> Init(16, 0);
  Init[0] = 42;
  G->setInitializer(Init);
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(B.load(G, MemKind::Int8));
  InterpResult R = Interpreter().run(M);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 42);
}

TEST(PrinterTest, RoundTripContainsStructure) {
  auto M = makeSumLoop(3);
  std::string Text = printModule(*M);
  EXPECT_NE(Text.find("func @main"), std::string::npos);
  EXPECT_NE(Text.find("phi"), std::string::npos);
  EXPECT_NE(Text.find("br"), std::string::npos);
}

} // namespace

namespace {

TEST(InterpreterTest, TrapsOnRunawayRecursion) {
  Module M("recurse");
  Function *F = M.createFunction("spin", Type::I64, {Type::I64}, {"x"});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(B.call(F, {B.add(F->arg(0), B.constInt(1))}));
  Function *Main = M.createFunction("main", Type::I64, {});
  B.setInsertPoint(Main->createBlock("entry"));
  B.ret(B.call(F, {B.constInt(0)}));
  InterpResult R = Interpreter().run(M);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("stack"), std::string::npos);
}

TEST(InterpreterTest, InstructionBudgetEnforced) {
  auto M = makeSumLoop(1'000'000);
  Interpreter Interp(/*MemoryBytes=*/1 << 20, /*MaxInstructions=*/5000);
  InterpResult R = Interp.run(*M);
  EXPECT_TRUE(R.Trapped);
}

TEST(LoopBuilderTest, StepGreaterThanOne) {
  Module M("step3");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(10), 3, "l");
  Value *Acc = L.carried(B.constInt(0));
  L.setNext(Acc, B.add(Acc, L.indVar()));
  L.finish();
  B.ret(L.exitValue(Acc));
  // Iterations: 0, 3, 6, 9 -> sum 18.
  EXPECT_EQ(Interpreter().run(M).ReturnValue, 18);
}

TEST(LoopBuilderTest, NegativeStepCountsDown) {
  Module M("down");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(5), B.constInt(0), -1, "l");
  Value *Acc = L.carried(B.constInt(0));
  L.setNext(Acc, B.add(Acc, L.indVar()));
  L.finish();
  B.ret(L.exitValue(Acc));
  // Iterations: 5, 4, 3, 2, 1 -> sum 15.
  EXPECT_EQ(Interpreter().run(M).ReturnValue, 15);
}

TEST(LoopBuilderTest, RuntimeBoundsWork) {
  Module M("rt");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  GlobalVariable *G = M.createGlobal("n", 8);
  std::vector<uint8_t> Init(8, 0);
  Init[0] = 7;
  G->setInitializer(Init);
  B.setInsertPoint(F->createBlock("entry"));
  Value *N = B.load(G, MemKind::Int64);
  LoopBuilder L(B, B.constInt(0), N, 1, "l");
  Value *Acc = L.carried(B.constInt(0));
  L.setNext(Acc, B.add(Acc, B.constInt(2)));
  L.finish();
  B.ret(L.exitValue(Acc));
  EXPECT_EQ(Interpreter().run(M).ReturnValue, 14);
}

} // namespace
