//===- tests/workloads_test.cpp - SPEC-archetype workload tests ----------------===//
//
// Every workload must: verify, run deterministically in the interpreter,
// and behave identically when compiled at various optimization levels and
// executed as machine code.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"
#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "isa/Executor.h"
#include "opt/Passes.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace msem;

namespace {

class WorkloadTest : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadTest, VerifiesAndRunsDeterministically) {
  auto M1 = buildWorkload(GetParam(), InputSet::Test);
  ASSERT_TRUE(verifyModule(*M1).empty());
  InterpResult R1 = Interpreter().run(*M1);
  ASSERT_FALSE(R1.Trapped) << R1.TrapMessage;
  EXPECT_FALSE(R1.Output.empty());

  auto M2 = buildWorkload(GetParam(), InputSet::Test);
  InterpResult R2 = Interpreter().run(*M2);
  EXPECT_EQ(R1.ReturnValue, R2.ReturnValue);
  EXPECT_GT(R1.InstructionsExecuted, 10000u)
      << "workload too small to be a meaningful benchmark";
}

TEST_P(WorkloadTest, CompiledO0MatchesInterpreter) {
  auto M = buildWorkload(GetParam(), InputSet::Test);
  InterpResult Ref = Interpreter().run(*M);
  MachineProgram Prog = compileToProgram(*M, CodeGenOptions());
  ExecResult Got = Executor(Prog).runToCompletion();
  ASSERT_FALSE(Got.Trapped) << Got.TrapMessage;
  EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue);
  ASSERT_EQ(Ref.Output.size(), Got.Output.size());
  for (size_t I = 0; I < Ref.Output.size(); ++I)
    EXPECT_TRUE(Ref.Output[I] == Got.Output[I]);
}

TEST_P(WorkloadTest, CompiledEverythingOnMatchesInterpreter) {
  auto Ref = Interpreter().run(*buildWorkload(GetParam(), InputSet::Test));
  auto M = buildWorkload(GetParam(), InputSet::Test);
  OptimizationConfig C = OptimizationConfig::O3();
  C.UnrollLoops = true;
  C.MaxUnrollTimes = 6;
  runPassPipeline(*M, C);
  ASSERT_TRUE(verifyModule(*M).empty());
  CodeGenOptions Opts;
  Opts.OmitFramePointer = true;
  Opts.PostRaSchedule = true;
  MachineProgram Prog = compileToProgram(*M, Opts);
  ExecResult Got = Executor(Prog).runToCompletion();
  ASSERT_FALSE(Got.Trapped) << Got.TrapMessage;
  EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue);
}

TEST_P(WorkloadTest, OptimizationPreservesBehaviorPerFlag) {
  auto Ref = Interpreter().run(*buildWorkload(GetParam(), InputSet::Test));
  for (int Flag = 0; Flag < 4; ++Flag) {
    auto M = buildWorkload(GetParam(), InputSet::Test);
    OptimizationConfig C;
    switch (Flag) {
    case 0:
      C.InlineFunctions = true;
      break;
    case 1:
      C.UnrollLoops = true;
      C.MaxUnrollTimes = 4;
      break;
    case 2:
      C.Gcse = true;
      C.StrengthReduce = true;
      break;
    case 3:
      C.LoopOptimize = true;
      C.PrefetchLoopArrays = true;
      break;
    }
    runPassPipeline(*M, C);
    ASSERT_TRUE(verifyModule(*M).empty()) << "flag set " << Flag;
    InterpResult Got = Interpreter().run(*M);
    ASSERT_FALSE(Got.Trapped) << Got.TrapMessage;
    EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue) << "flag set " << Flag;
  }
}

TEST_P(WorkloadTest, TrainInputIsLargerThanTest) {
  auto MT = buildWorkload(GetParam(), InputSet::Test);
  auto MTr = buildWorkload(GetParam(), InputSet::Train);
  InterpResult RT = Interpreter().run(*MT);
  InterpResult RTr = Interpreter().run(*MTr);
  ASSERT_FALSE(RTr.Trapped) << RTr.TrapMessage;
  EXPECT_GT(RTr.InstructionsExecuted, RT.InstructionsExecuted);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest,
                         ::testing::Values("gzip", "vpr", "mesa", "art",
                                           "mcf", "vortex", "bzip2"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

TEST(WorkloadRegistryTest, HasSevenPaperBenchmarks) {
  const auto &All = allWorkloads();
  ASSERT_EQ(All.size(), 7u);
  EXPECT_EQ(All[0].PaperName, "164.gzip-graphic");
  EXPECT_EQ(All[4].Name, "mcf");
}

TEST(WorkloadScaleTest, InstructionCountsAreBenchmarkSized) {
  // Log dynamic sizes (documenting the scales used by the benches).
  for (const WorkloadSpec &Spec : allWorkloads()) {
    auto M = Spec.Build(InputSet::Train);
    InterpResult R = Interpreter().run(*M);
    ASSERT_FALSE(R.Trapped) << Spec.Name << ": " << R.TrapMessage;
    // Train inputs: large enough to exercise the memory system, small
    // enough for a few hundred simulations.
    EXPECT_GT(R.InstructionsExecuted, 300000u) << Spec.Name;
    EXPECT_LT(R.InstructionsExecuted, 80000000u) << Spec.Name;
    printf("[ scale ] %-8s train: %llu instrs, checksum %lld\n",
           Spec.Name.c_str(),
           static_cast<unsigned long long>(R.InstructionsExecuted),
           static_cast<long long>(R.ReturnValue));
  }
}

} // namespace
