//===- tests/isa_test.cpp - ISA metadata and executor unit tests ----------------===//
//
// Exhaustive checks of the machine-instruction metadata the timing model
// relies on (destination/source registers, access sizes, functional-unit
// classes) plus focused executor semantics that the end-to-end tests
// exercise only incidentally.
//
//===----------------------------------------------------------------------===//

#include "isa/Executor.h"
#include "isa/MachineProgram.h"

#include <gtest/gtest.h>

using namespace msem;

namespace {

MachineInstr make(MOp Op, int32_t Rd = -1, int32_t Rs1 = -1,
                  int32_t Rs2 = -1, int64_t Imm = 0) {
  MachineInstr MI;
  MI.Op = Op;
  MI.Rd = Rd;
  MI.Rs1 = Rs1;
  MI.Rs2 = Rs2;
  MI.Imm = Imm;
  return MI;
}

TEST(MachineInstrTest, DestRegConventions) {
  EXPECT_EQ(make(MOp::ADD, 3, 1, 2).destReg(), 3);
  EXPECT_EQ(make(MOp::LD64, 5, 31).destReg(), 5);
  EXPECT_EQ(make(MOp::ST64, -1, 31, 5).destReg(), -1);
  EXPECT_EQ(make(MOp::BEQZ, -1, 4).destReg(), -1);
  EXPECT_EQ(make(MOp::PREF, -1, 4).destReg(), -1);
  EXPECT_EQ(make(MOp::EMIT, -1, 4).destReg(), -1);
  EXPECT_EQ(make(MOp::J).destReg(), -1);
  EXPECT_EQ(make(MOp::JR, -1, reg::RA).destReg(), -1);
  // JAL writes the link register.
  MachineInstr Jal = make(MOp::JAL, reg::RA);
  EXPECT_EQ(Jal.destReg(), reg::RA);
  EXPECT_EQ(make(MOp::HALT).destReg(), -1);
}

TEST(MachineInstrTest, SrcRegConventions) {
  int32_t Srcs[3];
  EXPECT_EQ(make(MOp::ADD, 3, 1, 2).srcRegs(Srcs), 2u);
  EXPECT_EQ(Srcs[0], 1);
  EXPECT_EQ(Srcs[1], 2);
  EXPECT_EQ(make(MOp::LI, 3).srcRegs(Srcs), 0u);
  EXPECT_EQ(make(MOp::LD64, 3, 7).srcRegs(Srcs), 1u);
  EXPECT_EQ(Srcs[0], 7);
  // Stores read base and data.
  EXPECT_EQ(make(MOp::ST64, -1, 7, 9).srcRegs(Srcs), 2u);
  // CMOV reads condition, source AND its own destination.
  EXPECT_EQ(make(MOp::CMOV, 4, 1, 2).srcRegs(Srcs), 3u);
  EXPECT_EQ(Srcs[2], 4);
  EXPECT_EQ(make(MOp::JAL, reg::RA).srcRegs(Srcs), 0u);
  EXPECT_EQ(make(MOp::JR, -1, reg::RA).srcRegs(Srcs), 1u);
}

TEST(MachineInstrTest, AccessSizes) {
  EXPECT_EQ(make(MOp::LD8, 1, 2).accessSize(), 1u);
  EXPECT_EQ(make(MOp::LD32, 1, 2).accessSize(), 4u);
  EXPECT_EQ(make(MOp::LD64, 1, 2).accessSize(), 8u);
  EXPECT_EQ(make(MOp::LDF, 33, 2).accessSize(), 8u);
  EXPECT_EQ(make(MOp::ST8, -1, 2, 3).accessSize(), 1u);
  EXPECT_EQ(make(MOp::PREF, -1, 2).accessSize(), 8u);
  EXPECT_EQ(make(MOp::ADD, 1, 2, 3).accessSize(), 0u);
}

TEST(MachineInstrTest, FuClasses) {
  EXPECT_EQ(make(MOp::ADD, 1, 2, 3).fuClass(), FuClass::IntAlu);
  EXPECT_EQ(make(MOp::MUL, 1, 2, 3).fuClass(), FuClass::IntMult);
  EXPECT_EQ(make(MOp::DIV, 1, 2, 3).fuClass(), FuClass::IntDiv);
  EXPECT_EQ(make(MOp::REM, 1, 2, 3).fuClass(), FuClass::IntDiv);
  EXPECT_EQ(make(MOp::FADD, 33, 34, 35).fuClass(), FuClass::FpAdd);
  EXPECT_EQ(make(MOp::FMUL, 33, 34, 35).fuClass(), FuClass::FpMult);
  EXPECT_EQ(make(MOp::FDIV, 33, 34, 35).fuClass(), FuClass::FpDiv);
  EXPECT_EQ(make(MOp::LD64, 1, 2).fuClass(), FuClass::MemPort);
  EXPECT_EQ(make(MOp::PREF, -1, 2).fuClass(), FuClass::MemPort);
  EXPECT_EQ(make(MOp::BEQZ, -1, 2).fuClass(), FuClass::IntAlu);
  EXPECT_EQ(make(MOp::HALT).fuClass(), FuClass::None);
}

TEST(MachineInstrTest, Classification) {
  EXPECT_TRUE(make(MOp::BEQZ, -1, 1).isConditionalBranch());
  EXPECT_TRUE(make(MOp::BNEZ, -1, 1).isConditionalBranch());
  EXPECT_FALSE(make(MOp::J).isConditionalBranch());
  EXPECT_TRUE(make(MOp::J).isBranch());
  EXPECT_TRUE(make(MOp::JAL, reg::RA).isBranch());
  EXPECT_TRUE(make(MOp::JR, -1, reg::RA).isBranch());
  EXPECT_TRUE(make(MOp::LDF, 33, 1).isLoad());
  EXPECT_TRUE(make(MOp::STF, -1, 1, 34).isStore());
  EXPECT_TRUE(make(MOp::PREF, -1, 1).isPrefetch());
}

/// Builds a tiny program by hand: stub + body.
MachineProgram handProgram(std::vector<MachineInstr> Body) {
  MachineProgram P;
  MachineInstr Call = make(MOp::JAL, reg::RA);
  Call.Target = 2;
  P.Code.push_back(Call);
  P.Code.push_back(make(MOp::HALT));
  for (MachineInstr &MI : Body)
    P.Code.push_back(MI);
  P.DataBase = 4096;
  P.DataEnd = 8192;
  P.MemoryBytes = 64 * 1024;
  LinkedFunction Main;
  Main.Name = "main";
  Main.EntryIndex = 2;
  Main.EndIndex = P.Code.size();
  P.Functions.push_back(Main);
  return P;
}

TEST(ExecutorTest, ReturnValueConvention) {
  // main: li x1, 77; jr ra  -> program returns 77.
  auto P = handProgram({make(MOp::LI, 1, -1, -1, 77),
                        make(MOp::JR, -1, reg::RA)});
  ExecResult R = Executor(P).runToCompletion();
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  EXPECT_EQ(R.ReturnValue, 77);
  EXPECT_EQ(R.InstructionsExecuted, 4u); // jal, li, jr, halt.
}

TEST(ExecutorTest, EmitFloatStream) {
  MachineInstr Fli = make(MOp::FLI, reg::FpBase + 2);
  Fli.FpImm = 2.75;
  auto P = handProgram({Fli, make(MOp::EMITF, -1, reg::FpBase + 2),
                        make(MOp::LI, 1, -1, -1, 0),
                        make(MOp::JR, -1, reg::RA)});
  ExecResult R = Executor(P).runToCompletion();
  ASSERT_FALSE(R.Trapped);
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_TRUE(R.Output[0].IsFloat);
  EXPECT_DOUBLE_EQ(R.Output[0].FpVal, 2.75);
}

TEST(ExecutorTest, MemoryRoundTripAllWidths) {
  // Store 0x1122334455667788 as i64, read back pieces.
  auto P = handProgram({
      make(MOp::LI, 2, -1, -1, 4096),
      make(MOp::LI, 3, -1, -1, 0x1122334455667788LL),
      make(MOp::ST64, -1, 2, 3, 0),
      make(MOp::LD8, 4, 2, -1, 0),  // 0x88 zero-extended.
      make(MOp::LD32, 5, 2, -1, 0), // 0x55667788 sign-extended.
      make(MOp::ADD, 1, 4, 5),
      make(MOp::JR, -1, reg::RA),
  });
  ExecResult R = Executor(P).runToCompletion();
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  EXPECT_EQ(R.ReturnValue, 0x88 + 0x55667788LL);
}

TEST(ExecutorTest, TrapsOnWildStore) {
  auto P = handProgram({
      make(MOp::LI, 2, -1, -1, 1 << 30),
      make(MOp::ST64, -1, 2, 2, 0),
      make(MOp::JR, -1, reg::RA),
  });
  ExecResult R = Executor(P).runToCompletion();
  EXPECT_TRUE(R.Trapped);
}

TEST(ExecutorTest, PrefetchNeverFaults) {
  auto P = handProgram({
      make(MOp::LI, 2, -1, -1, 1 << 30),
      make(MOp::PREF, -1, 2, -1, 0), // Way out of bounds: must not trap.
      make(MOp::LI, 1, -1, -1, 5),
      make(MOp::JR, -1, reg::RA),
  });
  ExecResult R = Executor(P).runToCompletion();
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 5);
}

TEST(ExecutorTest, CmovSemantics) {
  auto P = handProgram({
      make(MOp::LI, 1, -1, -1, 10),  // dst
      make(MOp::LI, 2, -1, -1, 0),   // cond false
      make(MOp::LI, 3, -1, -1, 99),  // src
      make(MOp::CMOV, 1, 2, 3),      // no move
      make(MOp::LI, 2, -1, -1, 1),   // cond true
      make(MOp::CMOV, 1, 2, 3),      // move
      make(MOp::JR, -1, reg::RA),
  });
  ExecResult R = Executor(P).runToCompletion();
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.ReturnValue, 99);
}

TEST(ExecutorTest, ResetRestoresInitialState) {
  auto P = handProgram({make(MOp::LI, 1, -1, -1, 3),
                        make(MOp::JR, -1, reg::RA)});
  Executor E(P);
  ExecResult First = E.runToCompletion();
  E.reset();
  ExecResult Second = E.runToCompletion();
  EXPECT_EQ(First.ReturnValue, Second.ReturnValue);
  EXPECT_EQ(First.InstructionsExecuted, Second.InstructionsExecuted);
}

TEST(DisassemblerTest, PrintsAllForms) {
  EXPECT_EQ(printMachineInstr(make(MOp::ADDI, 3, 31, -1, -16)),
            "addi x3, x31, -16");
  EXPECT_EQ(printMachineInstr(make(MOp::LD64, 5, 31, -1, 8)),
            "ld64 x5, [x31+8]");
  EXPECT_EQ(printMachineInstr(make(MOp::ST8, -1, 2, 7, 1)),
            "st8 x7, [x2+1]");
  MachineInstr Cmp = make(MOp::CMP, 1, 2, 3);
  Cmp.Pred = CmpPred::LE;
  EXPECT_EQ(printMachineInstr(Cmp), "cmp.le x1, x2, x3");
  MachineInstr B = make(MOp::BNEZ, -1, 4);
  B.Target = 17;
  EXPECT_EQ(printMachineInstr(B), "bnez x4, @17");
  EXPECT_EQ(printMachineInstr(make(MOp::FMOV, reg::FpBase + 1,
                                   reg::FpBase + 2)),
            "fmov f1, f2");
}

} // namespace
