//===- tests/model_test.cpp - Empirical model tests ------------------------------===//

#include "model/Diagnostics.h"
#include "model/LinearModel.h"
#include "model/Mars.h"
#include "model/RbfNetwork.h"
#include "model/RegressionTree.h"
#include "model/TransformedModel.h"
#include "support/Rng.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

using namespace msem;

namespace {

/// Samples a synthetic response surface over [-1,1]^K.
void sampleSurface(std::function<double(const std::vector<double> &)> F,
                   size_t N, size_t K, uint64_t Seed, Matrix &X,
                   std::vector<double> &Y, double Noise = 0.0) {
  Rng R(Seed);
  X = Matrix(N, K);
  Y.resize(N);
  for (size_t I = 0; I < N; ++I) {
    std::vector<double> Row(K);
    for (size_t D = 0; D < K; ++D)
      Row[D] = R.uniform(-1, 1);
    X.setRow(I, Row);
    Y[I] = F(Row) + (Noise > 0 ? R.normal(0, Noise) : 0.0);
  }
}

// --------------------------------------------------------------- LinearModel
TEST(LinearModelTest, RecoversLinearFunction) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(
      [](const std::vector<double> &V) {
        return 10 + 3 * V[0] - 2 * V[1] + 0.5 * V[2];
      },
      120, 3, 1, X, Y);
  LinearModel M;
  M.train(X, Y);
  EXPECT_NEAR(M.coefficients()[0], 10, 1e-6);
  EXPECT_NEAR(M.coefficients()[1], 3, 1e-6);
  EXPECT_NEAR(M.coefficients()[2], -2, 1e-6);
  EXPECT_NEAR(M.coefficients()[3], 0.5, 1e-6);
  EXPECT_NEAR(M.trainingSse(), 0.0, 1e-9);
}

TEST(LinearModelTest, RecoversInteractionTerm) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(
      [](const std::vector<double> &V) { return 5 + 2 * V[0] * V[1]; },
      150, 2, 2, X, Y);
  LinearModel M;
  M.train(X, Y);
  // Coefficients: [b0, b1, b2, b12].
  EXPECT_NEAR(M.coefficients()[3], 2.0, 1e-6);
  std::vector<double> P{0.5, -0.5};
  EXPECT_NEAR(M.predict(P), 5 + 2 * 0.25 * -1, 1e-6);
}

TEST(LinearModelTest, FailsOnStrongNonlinearity) {
  // The Figure 3 lesson: a hinge-shaped response defeats linear models.
  Matrix X;
  std::vector<double> Y;
  auto Hinge = [](const std::vector<double> &V) {
    return V[0] < 0.2 ? 100 - 50 * V[0] : 90 + 80 * (V[0] - 0.2);
  };
  sampleSurface(Hinge, 200, 1, 3, X, Y);
  LinearModel Lin;
  Lin.train(X, Y);
  MarsModel Mars;
  Mars.train(X, Y);
  ModelQuality QLin = evaluateModel(Lin, X, Y);
  ModelQuality QMars = evaluateModel(Mars, X, Y);
  EXPECT_LT(QMars.Mape, QLin.Mape);
}

TEST(ModelCriteriaTest, BicAndGcvFormulas) {
  // BIC (Equation 9) at p=100, gamma=10, SSE=50.
  double Bic = bicScore(50.0, 100, 10);
  double Expected = (100 + (std::log(100.0) - 1) * 10) / (100.0 * 90.0) * 50;
  EXPECT_NEAR(Bic, Expected, 1e-12);
  EXPECT_GT(bicScore(50.0, 100, 60), Bic); // More params, worse score.
  EXPECT_GE(bicScore(50.0, 10, 10), 1e299); // Saturated.

  double Gcv = gcvScore(50.0, 100, 10);
  EXPECT_NEAR(Gcv, (50.0 / 100) / (0.9 * 0.9), 1e-12);
}

// --------------------------------------------------------------------- MARS
TEST(MarsTest, FitsHingeExactly) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(
      [](const std::vector<double> &V) {
        return 3 + 4 * std::max(0.0, V[0] - 0.1);
      },
      150, 2, 4, X, Y);
  MarsModel M;
  M.train(X, Y);
  ModelQuality Q = evaluateModel(M, X, Y);
  EXPECT_LT(Q.Mape, 2.0);
  EXPECT_GT(Q.R2, 0.98);
}

TEST(MarsTest, CapturesInteractions) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(
      [](const std::vector<double> &V) {
        return 20 + 5 * V[0] + 5 * V[1] + 6 * V[0] * V[1];
      },
      200, 3, 5, X, Y);
  MarsModel M;
  M.train(X, Y);
  ModelQuality Q = evaluateModel(M, X, Y);
  EXPECT_GT(Q.R2, 0.9);
}

TEST(MarsTest, PruningControlsBasisCount) {
  Matrix X;
  std::vector<double> Y;
  // Pure noise: pruning should collapse toward the constant model.
  sampleSurface([](const std::vector<double> &) { return 100.0; }, 100, 4,
                6, X, Y, /*Noise=*/1.0);
  MarsModel M;
  M.train(X, Y);
  EXPECT_LE(M.basis().size(), 6u);
}

TEST(MarsTest, GeneralizesOutOfSample) {
  auto F = [](const std::vector<double> &V) {
    return 50 + 10 * std::max(0.0, V[0]) - 8 * std::max(0.0, -V[1]) +
           3 * V[2];
  };
  Matrix XTrain, XTest;
  std::vector<double> YTrain, YTest;
  sampleSurface(F, 250, 4, 7, XTrain, YTrain);
  sampleSurface(F, 100, 4, 8, XTest, YTest);
  MarsModel M;
  M.train(XTrain, YTrain);
  ModelQuality Q = evaluateModel(M, XTest, YTest);
  EXPECT_LT(Q.Mape, 5.0);
}

// ----------------------------------------------------------- RegressionTree
TEST(RegressionTreeTest, LearnsStepFunction) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(
      [](const std::vector<double> &V) { return V[0] > 0 ? 10.0 : -10.0; },
      200, 2, 9, X, Y);
  RegressionTree T;
  T.train(X, Y);
  EXPECT_NEAR(T.predict({0.5, 0.0}), 10.0, 0.5);
  EXPECT_NEAR(T.predict({-0.5, 0.0}), -10.0, 0.5);
  EXPECT_GE(T.leaves().size(), 2u);
}

TEST(RegressionTreeTest, RespectsLeafBudget) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(
      [](const std::vector<double> &V) { return std::sin(3 * V[0]); }, 300,
      3, 10, X, Y);
  RegressionTree::Options Opts;
  Opts.MaxLeaves = 8;
  RegressionTree T(Opts);
  T.train(X, Y);
  EXPECT_LE(T.leaves().size(), 8u);
  // Region metadata is populated.
  for (const TreeRegion &L : T.leaves()) {
    EXPECT_FALSE(L.Samples.empty());
    EXPECT_EQ(L.Centroid.size(), 3u);
    EXPECT_EQ(L.HalfWidth.size(), 3u);
  }
}

// ---------------------------------------------------------------------- RBF
TEST(RbfTest, FitsSmoothNonlinearSurface) {
  auto F = [](const std::vector<double> &V) {
    return 100 + 30 * std::exp(-3 * (V[0] * V[0] + V[1] * V[1])) +
           10 * V[2];
  };
  Matrix XTrain, XTest;
  std::vector<double> YTrain, YTest;
  sampleSurface(F, 300, 3, 11, XTrain, YTrain);
  sampleSurface(F, 100, 3, 12, XTest, YTest);
  RbfNetwork M;
  M.train(XTrain, YTrain);
  ModelQuality Q = evaluateModel(M, XTest, YTest);
  EXPECT_LT(Q.Mape, 5.0);
  EXPECT_GT(M.numNeurons(), 0u);
}

TEST(RbfTest, BothKernelsWork) {
  auto F = [](const std::vector<double> &V) {
    return 10 + 5 * V[0] * V[0];
  };
  Matrix X;
  std::vector<double> Y;
  sampleSurface(F, 200, 2, 13, X, Y);
  for (RbfKernel K : {RbfKernel::Gaussian, RbfKernel::Multiquadric}) {
    RbfNetwork::Options Opts;
    Opts.Kernel = K;
    RbfNetwork M(Opts);
    M.train(X, Y);
    ModelQuality Q = evaluateModel(M, X, Y);
    EXPECT_LT(Q.Mape, 8.0) << "kernel " << static_cast<int>(K);
  }
}

TEST(RbfTest, BeatsLinearOnNonlinearResponse) {
  // The paper's central Table 3 finding, on a synthetic stand-in.
  auto F = [](const std::vector<double> &V) {
    double Unroll = V[0];
    double Cache = V[1];
    // Saturating benefit + interaction cliff, like Figure 3.
    return 200 - 40 * std::min(0.5, Unroll + 0.3) +
           30 * std::max(0.0, -Cache) * std::max(0.0, Unroll);
  };
  Matrix XTrain, XTest;
  std::vector<double> YTrain, YTest;
  sampleSurface(F, 250, 4, 14, XTrain, YTrain);
  sampleSurface(F, 120, 4, 15, XTest, YTest);
  LinearModel Lin;
  Lin.train(XTrain, YTrain);
  RbfNetwork Rbf;
  Rbf.train(XTrain, YTrain);
  double LinMape = evaluateModel(Lin, XTest, YTest).Mape;
  double RbfMape = evaluateModel(Rbf, XTest, YTest).Mape;
  EXPECT_LT(RbfMape, LinMape);
}

// ---------------------------------------------------------------- Diagnostics
TEST(DiagnosticsTest, MainEffectRecoversCoefficient) {
  ParameterSpace S = ParameterSpace::compilerSpace();
  // A hand-made "model" whose response is linear in encoded coordinates.
  class FakeModel : public Model {
  public:
    void train(const Matrix &, const std::vector<double> &) override {}
    double predict(const std::vector<double> &X) const override {
      return 100 + 7 * X[0] - 4 * X[5] + 3 * X[0] * X[5];
    }
    std::string name() const override { return "fake"; }
    void save(Json &) const override {}
    bool load(const Json &, std::string *) override { return false; }
  };
  FakeModel M;
  Rng R(16);
  // Effect of var 0: d f / d x0 averaged = 7 + 3 * E[x5] ~ 7.
  double E0 = mainEffect(M, S, 0, 400, R);
  EXPECT_NEAR(E0, 7.0, 0.5);
  double E5 = mainEffect(M, S, 5, 400, R);
  EXPECT_NEAR(E5, -4.0, 0.5);
  double I05 = interactionEffect(M, S, 0, 5, 200, R);
  EXPECT_NEAR(I05, 3.0, 0.2);
  // A variable the model ignores has a null effect.
  double E7 = mainEffect(M, S, 7, 200, R);
  EXPECT_NEAR(E7, 0.0, 0.3);
}

TEST(DiagnosticsTest, RankEffectsOrdersByMagnitude) {
  ParameterSpace S = ParameterSpace::compilerSpace();
  class FakeModel : public Model {
  public:
    void train(const Matrix &, const std::vector<double> &) override {}
    double predict(const std::vector<double> &X) const override {
      return 10 * X[1] + 2 * X[2];
    }
    std::string name() const override { return "fake"; }
    void save(Json &) const override {}
    bool load(const Json &, std::string *) override { return false; }
  };
  FakeModel M;
  auto Effects = rankEffects(M, S, 200, 5, 99);
  ASSERT_GE(Effects.size(), 2u);
  EXPECT_EQ(Effects[0].Label, "funroll-loops"); // Var index 1.
  EXPECT_NEAR(Effects[0].Coefficient, 10.0, 0.8);
}

TEST(DiagnosticsTest, EvaluateModelMetrics) {
  class IdModel : public Model {
  public:
    void train(const Matrix &, const std::vector<double> &) override {}
    double predict(const std::vector<double> &X) const override {
      return X[0];
    }
    std::string name() const override { return "id"; }
    void save(Json &) const override {}
    bool load(const Json &, std::string *) override { return false; }
  };
  Matrix X = Matrix::fromRows({{100.0}, {200.0}});
  std::vector<double> Y{110.0, 190.0};
  IdModel M;
  ModelQuality Q = evaluateModel(M, X, Y);
  EXPECT_NEAR(Q.Mape, (10.0 / 110 + 10.0 / 190) / 2 * 100, 1e-9);
}

// Property sweep: every technique stays finite and sane on random data.
class TechniqueTest : public ::testing::TestWithParam<int> {};

TEST_P(TechniqueTest, FiniteOnRandomData) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(
      [](const std::vector<double> &V) {
        return 1000 + 100 * V[0] + 50 * V[1] * V[2] +
               30 * std::max(0.0, V[3]);
      },
      150, 5, 17 + GetParam(), X, Y, 5.0);
  std::unique_ptr<Model> M;
  switch (GetParam()) {
  case 0:
    M = std::make_unique<LinearModel>();
    break;
  case 1:
    M = std::make_unique<MarsModel>();
    break;
  case 2:
    M = std::make_unique<RbfNetwork>();
    break;
  default:
    M = std::make_unique<RegressionTree>();
    break;
  }
  M->train(X, Y);
  Rng R(100);
  for (int I = 0; I < 200; ++I) {
    std::vector<double> P(5);
    for (auto &V : P)
      V = R.uniform(-1, 1);
    double Pred = M->predict(P);
    EXPECT_TRUE(std::isfinite(Pred));
    EXPECT_GT(Pred, 0.0);    // Response scale is ~1000.
    EXPECT_LT(Pred, 5000.0); // No wild extrapolation inside the domain.
  }
}

std::string techniqueCaseName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"linear", "mars", "rbf", "tree"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, TechniqueTest,
                         ::testing::Values(0, 1, 2, 3), techniqueCaseName);

} // namespace

#include "model/TransformedModel.h"

namespace {

TEST(TransformedModelTest, LogResponseFitsMultiplicativeSurface) {
  // y = 1000 * 8^x0 * 2^x1: huge relative range; the raw model's MAPE
  // collapses under the log transform.
  Matrix X;
  std::vector<double> Y;
  Rng R(55);
  X = Matrix(250, 3);
  Y.resize(250);
  for (size_t I = 0; I < 250; ++I) {
    std::vector<double> Row{R.uniform(-1, 1), R.uniform(-1, 1),
                            R.uniform(-1, 1)};
    X.setRow(I, Row);
    Y[I] = 1000.0 * std::pow(8.0, Row[0]) * std::pow(2.0, Row[1]);
  }
  RbfNetwork Raw;
  Raw.train(X, Y);
  LogResponseModel Logged(std::make_unique<RbfNetwork>());
  Logged.train(X, Y);
  double RawMape = evaluateModel(Raw, X, Y).Mape;
  double LogMape = evaluateModel(Logged, X, Y).Mape;
  EXPECT_LT(LogMape, RawMape);
  EXPECT_LT(LogMape, 5.0);
  EXPECT_EQ(Logged.name(), "log-rbf");
}

TEST(TransformedModelTest, PredictionsArePositive) {
  Matrix X = Matrix::fromRows({{-1.0}, {0.0}, {1.0}});
  std::vector<double> Y{10.0, 100.0, 1000.0};
  LogResponseModel M(std::make_unique<LinearModel>());
  M.train(X, Y);
  for (double V : {-1.0, -0.3, 0.6, 1.0})
    EXPECT_GT(M.predict({V}), 0.0);
}

} // namespace

namespace {

TEST(MarsTest, AdditiveModeForbidsInteractions) {
  MarsModel::Options Opts;
  Opts.MaxInteraction = 1;
  MarsModel M(Opts);
  Matrix X;
  std::vector<double> Y;
  sampleSurface(
      [](const std::vector<double> &V) {
        return 10 + 4 * std::max(0.0, V[0]) + 2 * V[1];
      },
      150, 3, 31, X, Y);
  M.train(X, Y);
  for (const MarsBasis &Basis : M.basis())
    EXPECT_LE(Basis.Factors.size(), 1u);
  EXPECT_LT(evaluateModel(M, X, Y).Mape, 5.0);
}

TEST(RbfTest, SurvivesTinySamples) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface([](const std::vector<double> &V) { return 5 + V[0]; }, 12,
                2, 32, X, Y);
  RbfNetwork M;
  M.train(X, Y);
  EXPECT_TRUE(std::isfinite(M.predict({0.0, 0.0})));
}

TEST(RegressionTreeTest, ConstantResponseSingleLeaf) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface([](const std::vector<double> &) { return 42.0; }, 60, 2,
                33, X, Y);
  RegressionTree T;
  T.train(X, Y);
  EXPECT_EQ(T.leaves().size(), 1u);
  EXPECT_DOUBLE_EQ(T.predict({0.3, -0.7}), 42.0);
}

//===----------------------------------------------------------------------===//
// Serialization: save -> dump -> parse -> load must reproduce predictions
// bitwise for every model kind (artifacts depend on it).
//===----------------------------------------------------------------------===//

/// Serializes \p M through JSON *text* (not just the DOM) and rebuilds it
/// via the Model::fromJson factory, so the test covers the 17-digit
/// double round-trip that artifacts rely on.
std::unique_ptr<Model> roundTripThroughText(const Model &M) {
  Json Out = Json::object();
  M.save(Out);
  std::string ParseError;
  Json Back = Json::parse(Out.dumpPretty(), &ParseError);
  EXPECT_TRUE(ParseError.empty()) << ParseError;
  std::string Error;
  std::unique_ptr<Model> Loaded = Model::fromJson(Back, &Error);
  EXPECT_NE(Loaded, nullptr) << Error;
  return Loaded;
}

/// Predictions of \p A and \p B must agree bitwise on random probes.
void expectBitwiseEqualPredictions(const Model &A, const Model &B, size_t K,
                                   uint64_t Seed) {
  Rng R(Seed);
  for (int Probe = 0; Probe < 64; ++Probe) {
    std::vector<double> X(K);
    for (double &V : X)
      V = R.uniform(-1, 1);
    double PA = A.predict(X);
    double PB = B.predict(X);
    ASSERT_EQ(PA, PB) << "probe " << Probe << " diverged";
  }
}

/// The irrational surface all round-trip tests train on: coefficients
/// with no short binary representation, so any formatting loss shows.
double irrationalSurface(const std::vector<double> &V) {
  double Y = 1000 * std::sqrt(2.0);
  Y += 31.4159 * V[0] - 27.1828 * V[1];
  Y += 17.32 * std::max(0.0, V[2] - 0.123456789);
  Y += 9.81 * V[0] * V[3];
  return Y;
}

TEST(SerializationTest, LinearRoundTripsBitwise) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(irrationalSurface, 150, 4, 41, X, Y, 3.0);
  LinearModel M;
  M.train(X, Y);
  std::unique_ptr<Model> Back = roundTripThroughText(M);
  EXPECT_EQ(Back->name(), "linear");
  expectBitwiseEqualPredictions(M, *Back, 4, 141);
}

TEST(SerializationTest, LinearMainEffectsOnlyRoundTripsBitwise) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(irrationalSurface, 120, 4, 42, X, Y, 2.0);
  LinearModel M(LinearModel::Options{/*TwoFactorInteractions=*/false,
                                     /*Ridge=*/1e-6});
  M.train(X, Y);
  std::unique_ptr<Model> Back = roundTripThroughText(M);
  expectBitwiseEqualPredictions(M, *Back, 4, 142);
}

TEST(SerializationTest, MarsRoundTripsBitwise) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(irrationalSurface, 200, 4, 43, X, Y, 2.0);
  MarsModel M;
  M.train(X, Y);
  std::unique_ptr<Model> Back = roundTripThroughText(M);
  EXPECT_EQ(Back->name(), "mars");
  expectBitwiseEqualPredictions(M, *Back, 4, 143);
}

TEST(SerializationTest, RbfRoundTripsBitwiseBothKernels) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(irrationalSurface, 150, 4, 44, X, Y, 2.0);
  for (RbfKernel Kernel : {RbfKernel::Gaussian, RbfKernel::Multiquadric}) {
    RbfNetwork::Options Opts;
    Opts.Kernel = Kernel;
    RbfNetwork M(Opts);
    M.train(X, Y);
    std::unique_ptr<Model> Back = roundTripThroughText(M);
    EXPECT_EQ(Back->name(), "rbf");
    expectBitwiseEqualPredictions(M, *Back, 4, 144);
  }
}

TEST(SerializationTest, TreeRoundTripsBitwise) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(irrationalSurface, 200, 4, 45, X, Y);
  RegressionTree M;
  M.train(X, Y);
  std::unique_ptr<Model> Back = roundTripThroughText(M);
  EXPECT_EQ(Back->name(), "tree");
  expectBitwiseEqualPredictions(M, *Back, 4, 145);
}

TEST(SerializationTest, LogResponseRoundTripsBitwise) {
  Matrix X;
  std::vector<double> Y;
  // Strictly positive response for the log transform.
  sampleSurface(irrationalSurface, 150, 4, 46, X, Y);
  LogResponseModel M(std::make_unique<RbfNetwork>());
  M.train(X, Y);
  std::unique_ptr<Model> Back = roundTripThroughText(M);
  EXPECT_EQ(Back->name(), "log-rbf");
  expectBitwiseEqualPredictions(M, *Back, 4, 146);
}

TEST(SerializationTest, FactoryRejectsUnknownKind) {
  Json Doc = Json::object();
  Doc.set("kind", Json::string("neural-net"));
  std::string Error;
  EXPECT_EQ(Model::fromJson(Doc, &Error), nullptr);
  EXPECT_NE(Error.find("neural-net"), std::string::npos) << Error;
}

TEST(SerializationTest, LoadRejectsCoefficientArityMismatch) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(irrationalSurface, 100, 4, 47, X, Y);
  LinearModel M;
  M.train(X, Y);
  Json Doc = Json::object();
  M.save(Doc);
  // Truncate the coefficient vector: load must refuse, not mispredict.
  Json Beta = Json::array();
  Beta.push(Json::number(1.0));
  Doc.set("beta", std::move(Beta));
  std::string Error;
  EXPECT_EQ(Model::fromJson(Doc, &Error), nullptr);
  EXPECT_FALSE(Error.empty());
}

TEST(SerializationTest, LoadRejectsKindMismatch) {
  Matrix X;
  std::vector<double> Y;
  sampleSurface(irrationalSurface, 100, 4, 48, X, Y);
  MarsModel M;
  M.train(X, Y);
  Json Doc = Json::object();
  M.save(Doc);
  LinearModel Wrong;
  std::string Error;
  EXPECT_FALSE(Wrong.load(Doc, &Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
