//===- tests/core_test.cpp - End-to-end pipeline tests ----------------------------===//
//
// Integration tests of the full measurement + modeling loop at reduced
// scale (Test inputs, small designs). These are the slowest tests in the
// suite; the full paper-scale campaigns live in bench/.
//
//===----------------------------------------------------------------------===//

#include "core/ModelBuilder.h"
#include "core/ResponseSurface.h"
#include "search/GeneticSearch.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace msem;

namespace {

ResponseSurface::Options testSurface(const std::string &Workload) {
  ResponseSurface::Options Opts;
  Opts.Workload = Workload;
  Opts.Input = InputSet::Test;
  Opts.UseSmarts = true;
  Opts.Smarts.SamplingInterval = 10; // Test inputs are short.
  return Opts;
}

TEST(ResponseSurfaceTest, MeasuresAndMemoizes) {
  ParameterSpace S = ParameterSpace::paperSpace();
  ResponseSurface Surface(S, testSurface("art"));
  DesignPoint P = S.fromConfigs(OptimizationConfig::O2(),
                                MachineConfig::typical());
  double C1 = Surface.measure(P);
  EXPECT_GT(C1, 0);
  EXPECT_EQ(Surface.simulationsRun(), 1u);
  double C2 = Surface.measure(P);
  EXPECT_EQ(C1, C2);
  EXPECT_EQ(Surface.simulationsRun(), 1u);
  EXPECT_EQ(Surface.cacheHits(), 1u);
}

TEST(ResponseSurfaceTest, DifferentPointsDifferentBinaries) {
  ParameterSpace S = ParameterSpace::paperSpace();
  ResponseSurface Surface(S, testSurface("art"));
  DesignPoint A = S.fromConfigs(OptimizationConfig::O0(),
                                MachineConfig::typical());
  DesignPoint B = S.fromConfigs(OptimizationConfig::O2(),
                                MachineConfig::typical());
  OptimizationConfig WithUnroll = OptimizationConfig::O2();
  WithUnroll.UnrollLoops = true;
  DesignPoint C = S.fromConfigs(WithUnroll, MachineConfig::typical());
  double CyclesA = Surface.measure(A);
  double CyclesB = Surface.measure(B);
  double CyclesC = Surface.measure(C);
  // -O2 beats -O0 on the FP kernel, and unrolling helps further (art is
  // the paper's Figure 3 subject).
  EXPECT_LT(CyclesB, CyclesA);
  EXPECT_LT(CyclesC, CyclesB);
}

TEST(ResponseSurfaceTest, MachineConfigChangesResponse) {
  ParameterSpace S = ParameterSpace::paperSpace();
  // Train input: the 1.5MB node pool exceeds a 256KB L2, so the chase
  // loads become dependent memory accesses (mcf's defining behaviour).
  ResponseSurface::Options Opts = testSurface("mcf");
  Opts.Input = InputSet::Train;
  ResponseSurface Surface(S, Opts);
  MachineConfig Small = MachineConfig::typical();
  Small.L2Bytes = 256 * 1024; // The mcf pool no longer fits in L2.
  DesignPoint Fast = S.fromConfigs(OptimizationConfig::O2(), Small);
  DesignPoint Slow = Fast;
  Slow[S.indexOf("memory-latency")] = 150;
  Fast[S.indexOf("memory-latency")] = 50;
  EXPECT_LT(Surface.measure(Fast), Surface.measure(Slow));
}

TEST(ResponseSurfaceTest, DiskCachePersists) {
  std::string Dir = ::testing::TempDir() + "/msem_cache_test";
  ParameterSpace S = ParameterSpace::paperSpace();
  DesignPoint P = S.fromConfigs(OptimizationConfig::O2(),
                                MachineConfig::constrained());
  double First;
  {
    ResponseSurface::Options Opts = testSurface("vpr");
    Opts.CacheDir = Dir;
    ResponseSurface Surface(S, Opts);
    First = Surface.measure(P);
    EXPECT_EQ(Surface.simulationsRun(), 1u);
  }
  {
    ResponseSurface::Options Opts = testSurface("vpr");
    Opts.CacheDir = Dir;
    ResponseSurface Surface(S, Opts);
    double Second = Surface.measure(P);
    EXPECT_EQ(Surface.simulationsRun(), 0u) << "disk cache not used";
    EXPECT_EQ(First, Second);
  }
  std::remove((Dir + "/responses.csv").c_str());
}

TEST(CompileWorkloadTest, AllWorkloadsAtO3) {
  for (const WorkloadSpec &Spec : allWorkloads()) {
    MachineProgram Prog = compileWorkloadBinary(Spec.Name, InputSet::Test,
                                                OptimizationConfig::O3());
    EXPECT_GT(Prog.Code.size(), 50u) << Spec.Name;
  }
}

TEST(ModelBuilderTest, EndToEndSmallCampaign) {
  ParameterSpace S = ParameterSpace::paperSpace();
  ResponseSurface Surface(S, testSurface("art"));

  ModelBuilderOptions Opts;
  Opts.Technique = ModelTechnique::Rbf;
  Opts.InitialDesignSize = 40;
  Opts.AugmentStep = 20;
  Opts.MaxDesignSize = 60;
  Opts.TestSize = 20;
  Opts.TargetMape = 3.0; // Likely unreachable at this scale: forces the
                         // augmentation path to run.
  Opts.CandidateCount = 400;

  ModelBuildResult R = buildModel(Surface, Opts);
  ASSERT_NE(R.FittedModel, nullptr);
  EXPECT_GE(R.TrainPoints.size(), 40u);
  EXPECT_EQ(R.TestPoints.size(), 20u);
  EXPECT_TRUE(std::isfinite(R.TestQuality.Mape));
  EXPECT_FALSE(R.ErrorCurve.empty());
  // The model must carry real signal: far better than a null model.
  EXPECT_GT(R.TestQuality.R2, 0.0);
  std::printf("[ art/test ] rbf test MAPE = %.2f%% (R2 %.3f) after %zu "
              "simulations\n",
              R.TestQuality.Mape, R.TestQuality.R2, R.SimulationsUsed);
}

TEST(ModelBuilderTest, SharedTestSetAcrossTechniques) {
  ParameterSpace S = ParameterSpace::paperSpace();
  ResponseSurface Surface(S, testSurface("vpr"));
  Rng R(5);
  auto TestPoints = generateRandomCandidates(S, 15, R);
  auto TestY = Surface.measureAll(TestPoints);

  ModelBuilderOptions Opts;
  Opts.InitialDesignSize = 40;
  Opts.MaxDesignSize = 40;
  Opts.TargetMape = 0.0;
  Opts.CandidateCount = 300;

  for (ModelTechnique T :
       {ModelTechnique::Linear, ModelTechnique::Mars, ModelTechnique::Rbf}) {
    Opts.Technique = T;
    Opts.ExternalTest = TestSet{TestPoints, TestY};
    ModelBuildResult Res = buildModel(Surface, Opts);
    EXPECT_TRUE(std::isfinite(Res.TestQuality.Mape))
        << modelTechniqueName(T);
    std::printf("[ vpr/test ] %-6s MAPE = %.2f%%\n", modelTechniqueName(T),
                Res.TestQuality.Mape);
  }
}

TEST(ModelGuidedSearchTest, FindsSettingsNoWorseThanO2) {
  // Miniature version of the paper's Section 6.3 flow.
  ParameterSpace S = ParameterSpace::paperSpace();
  ResponseSurface Surface(S, testSurface("art"));

  ModelBuilderOptions Opts;
  Opts.Technique = ModelTechnique::Rbf;
  Opts.InitialDesignSize = 50;
  Opts.MaxDesignSize = 50;
  Opts.TestSize = 10;
  Opts.TargetMape = 0.0;
  Opts.CandidateCount = 400;
  ModelBuildResult R = buildModel(Surface, Opts);

  MachineConfig Platform = MachineConfig::typical();
  DesignPoint Frozen =
      S.fromConfigs(OptimizationConfig::O2(), Platform);
  GaOptions Ga;
  Ga.Generations = 25;
  GaResult Best = searchOptimalSettings(*R.FittedModel, S, Frozen, Ga);

  double CyclesBest = Surface.measure(Best.BestPoint);
  double CyclesO2 = Surface.measure(Frozen);
  // The model-guided settings should be in the same league as -O2 (the
  // paper finds they usually beat it; at this miniature scale we assert
  // no catastrophic regression).
  EXPECT_LT(CyclesBest, CyclesO2 * 1.25);
  std::printf("[ search ] model-guided %.0f vs O2 %.0f cycles (%+.1f%%)\n",
              CyclesBest, CyclesO2,
              100.0 * (CyclesO2 - CyclesBest) / CyclesO2);
}

} // namespace

namespace {

TEST(ResponseMetricTest, CodeBytesNeedsNoSimulationAndTracksUnrolling) {
  ParameterSpace S = ParameterSpace::paperSpace();
  ResponseSurface::Options Opts = testSurface("art");
  Opts.Metric = ResponseMetric::CodeBytes;
  ResponseSurface Surface(S, Opts);

  DesignPoint NoUnroll = S.fromConfigs(OptimizationConfig::O2(),
                                       MachineConfig::typical());
  OptimizationConfig WithUnroll = OptimizationConfig::O2();
  WithUnroll.UnrollLoops = true;
  WithUnroll.MaxUnrollTimes = 12;
  WithUnroll.MaxUnrolledInsns = 300;
  DesignPoint Unrolled = S.fromConfigs(WithUnroll, MachineConfig::typical());
  // Unrolling grows static code; the machine half must not matter at all.
  EXPECT_GT(Surface.measure(Unrolled), Surface.measure(NoUnroll) * 2);
  DesignPoint OtherMachine = NoUnroll;
  S.freezeMachine(OtherMachine, MachineConfig::aggressive());
  EXPECT_EQ(Surface.measure(NoUnroll), Surface.measure(OtherMachine));
}

TEST(ResponseMetricTest, EnergyIsPositiveAndCapacitySensitive) {
  ParameterSpace S = ParameterSpace::paperSpace();
  ResponseSurface::Options Opts = testSurface("vpr");
  Opts.Metric = ResponseMetric::EnergyNanojoules;
  ResponseSurface Surface(S, Opts);

  DesignPoint Small = S.fromConfigs(OptimizationConfig::O2(),
                                    MachineConfig::constrained());
  DesignPoint Big = S.fromConfigs(OptimizationConfig::O2(),
                                  MachineConfig::aggressive());
  double ESmall = Surface.measure(Small);
  double EBig = Surface.measure(Big);
  EXPECT_GT(ESmall, 0);
  // The aggressive machine's 8MB L2 leaks far more than 256KB: energy up.
  EXPECT_GT(EBig, ESmall);
}

TEST(ResponseMetricTest, MetricsAreCachedIndependently) {
  ParameterSpace S = ParameterSpace::paperSpace();
  DesignPoint P = S.fromConfigs(OptimizationConfig::O2(),
                                MachineConfig::typical());
  ResponseSurface::Options CyclesOpts = testSurface("art");
  ResponseSurface::Options SizeOpts = testSurface("art");
  SizeOpts.Metric = ResponseMetric::CodeBytes;
  ResponseSurface CyclesSurf(S, CyclesOpts);
  ResponseSurface SizeSurf(S, SizeOpts);
  double Cycles = CyclesSurf.measure(P);
  double Bytes = SizeSurf.measure(P);
  EXPECT_NE(Cycles, Bytes);
}

} // namespace
