//===- tests/distributed_test.cpp - Distributed campaign tests --------------------===//
//
// The distributed-campaign contract of src/campaign/: the versioned wire
// format round-trips and rejects documents from the future, ShardStore
// merges deterministically, and a coordinator fanning measurement out to
// N worker processes produces results -- and merged checkpoints --
// bitwise identical to a single-process run, including when workers are
// SIGKILLed mid-round and respawned, at any worker count and any
// MSEM_THREADS.
//
// Worker processes are this binary re-executed with a gtest filter
// (DistributedWorkerChild.Run reads MSEM_WORKER_DIR / MSEM_WORKER_ID and
// calls runWorker), the same re-exec idiom campaign_test.cpp uses for
// its kill test.
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "campaign/Checkpoint.h"
#include "campaign/Coordinator.h"
#include "campaign/Experiment.h"
#include "campaign/ShardStore.h"
#include "design/Doe.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "telemetry/OpenMetrics.h"
#include "telemetry/TelemetrySnapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sys/wait.h>
#include <unistd.h>

using namespace msem;

namespace {

/// Restores the default global pool when a test exits.
struct PoolGuard {
  ~PoolGuard() { setGlobalThreadCount(0); }
};

/// A scratch directory removed on entry and exit.
struct DirGuard {
  std::string Dir;
  explicit DirGuard(std::string D) : Dir(std::move(D)) {
    std::filesystem::remove_all(Dir);
  }
  ~DirGuard() { std::filesystem::remove_all(Dir); }
};

/// Sets an environment variable for the guard's lifetime (the coordinator
/// passes the environment through to spawned workers).
struct EnvGuard {
  std::string Name;
  EnvGuard(const char *N, const std::string &Value) : Name(N) {
    setenv(N, Value.c_str(), 1);
  }
  ~EnvGuard() { unsetenv(Name.c_str()); }
};

std::string tempPath(const char *Tag) {
  return ::testing::TempDir() +
         formatString("msem_dist_%s_%d", Tag, static_cast<int>(getpid()));
}

/// A campaign small enough for a worker-count x thread-count matrix but
/// still covering both design augmentation and a GA tuning search.
ExperimentSpec distSpec() {
  ExperimentSpec Spec;
  Spec.Name = "distributed-test";
  Spec.Jobs = {{"art", InputSet::Test, ResponseMetric::Cycles,
                ModelTechnique::Rbf, 0}};
  Spec.InitialDesignSize = 16;
  Spec.AugmentStep = 8;
  Spec.MaxDesignSize = 24;
  Spec.TestSize = 6;
  Spec.TargetMape = 0.1; // Unreachably strict: always runs to MaxDesignSize.
  Spec.CandidateCount = 150;
  Spec.TunePlatforms = {{"typical", MachineConfig::typical()}};
  Spec.Ga.Population = 10;
  Spec.Ga.Generations = 4;
  Spec.Ga.StallGenerations = 0; // Exactly 4 generations, deterministically.
  Spec.GaCheckpointEvery = 2;
  Spec.VerifyTunings = true;
  return Spec;
}

/// Coordinator options that spawn this test binary's worker body.
CoordinatorOptions coordOpts(int Workers, const std::string &ShardDir) {
  CoordinatorOptions Opts;
  Opts.Workers = Workers;
  Opts.ShardDir = ShardDir;
  Opts.WorkerCommand = {"/proc/self/exe",
                        "--gtest_filter=DistributedWorkerChild.Run"};
  return Opts;
}

/// The bitwise-identity oracle (the campaign_test one): every number a
/// campaign produces must match exactly.
void expectIdenticalResults(const ExperimentResult &A,
                            const ExperimentResult &B) {
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.SimulationsUsed, B.SimulationsUsed);
  ASSERT_EQ(A.Jobs.size(), B.Jobs.size());
  for (size_t J = 0; J < A.Jobs.size(); ++J) {
    const ModelBuildResult &BA = A.Jobs[J].Build;
    const ModelBuildResult &BB = B.Jobs[J].Build;
    EXPECT_EQ(A.Jobs[J].State, B.Jobs[J].State);
    EXPECT_EQ(BA.TrainPoints, BB.TrainPoints);
    EXPECT_EQ(BA.TrainY, BB.TrainY);
    EXPECT_EQ(BA.TestPoints, BB.TestPoints);
    EXPECT_EQ(BA.TestY, BB.TestY);
    EXPECT_EQ(BA.ErrorCurve, BB.ErrorCurve);
    EXPECT_EQ(BA.TestQuality.Mape, BB.TestQuality.Mape);
    EXPECT_EQ(BA.TestQuality.R2, BB.TestQuality.R2);
    ASSERT_EQ(BA.FittedModel != nullptr, BB.FittedModel != nullptr);
    if (BA.FittedModel) {
      // Model identity, observably: equal predictions at probe points.
      ParameterSpace Space = ParameterSpace::paperSpace();
      Rng Probe(0xBEEF);
      for (const DesignPoint &P :
           generateRandomCandidates(Space, 5, Probe)) {
        std::vector<double> X = Space.encode(P);
        EXPECT_EQ(BA.FittedModel->predict(X), BB.FittedModel->predict(X));
      }
    }
    ASSERT_EQ(A.Jobs[J].Tunings.size(), B.Jobs[J].Tunings.size());
    for (size_t P = 0; P < A.Jobs[J].Tunings.size(); ++P) {
      const PlatformTuning &TA = A.Jobs[J].Tunings[P];
      const PlatformTuning &TB = B.Jobs[J].Tunings[P];
      EXPECT_EQ(TA.Platform, TB.Platform);
      EXPECT_EQ(TA.Search.BestPoint, TB.Search.BestPoint);
      EXPECT_EQ(TA.Search.PredictedResponse, TB.Search.PredictedResponse);
      EXPECT_EQ(TA.Search.GenerationsRun, TB.Search.GenerationsRun);
      EXPECT_EQ(TA.MeasuredBest, TB.MeasuredBest);
      EXPECT_EQ(TA.MeasuredO2, TB.MeasuredO2);
      EXPECT_EQ(TA.MeasuredO3, TB.MeasuredO3);
    }
  }
}

/// The merged measurements two checkpoints hold must be bitwise equal.
void expectIdenticalSurfaces(const std::string &PathA,
                             const std::string &PathB) {
  CampaignCheckpoint A, B;
  std::string Error;
  ASSERT_TRUE(loadCheckpoint(PathA, A, &Error)) << Error;
  ASSERT_TRUE(loadCheckpoint(PathB, B, &Error)) << Error;
  ASSERT_EQ(A.Surfaces.size(), B.Surfaces.size());
  for (const auto &[Key, SA] : A.Surfaces) {
    auto It = B.Surfaces.find(Key);
    ASSERT_NE(It, B.Surfaces.end()) << Key;
    EXPECT_EQ(SA.Points, It->second.Points) << Key;
    EXPECT_EQ(SA.Values, It->second.Values) << Key;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Schema versioning
//===----------------------------------------------------------------------===//

TEST(CampaignSchemaTest, CheckpointStampedWithV1) {
  CampaignCheckpoint Ckpt;
  Ckpt.Spec = distSpec();
  Ckpt.Jobs.resize(Ckpt.Spec.Jobs.size());
  Json Doc = serializeCheckpoint(Ckpt);
  EXPECT_EQ(Doc["schema_version"].asString(), kCampaignSchema);

  CampaignCheckpoint Back;
  std::string Error;
  EXPECT_TRUE(deserializeCheckpoint(Doc, Back, &Error)) << Error;
}

TEST(CampaignSchemaTest, LegacyUnversionedCheckpointAccepted) {
  CampaignCheckpoint Ckpt;
  Ckpt.Spec = distSpec();
  Ckpt.Jobs.resize(Ckpt.Spec.Jobs.size());
  Json Doc = serializeCheckpoint(Ckpt);

  // Checkpoints written before the schema_version stamp existed carry
  // only the numeric "version" member; they must keep loading.
  Json Legacy = Json::object();
  for (const auto &[Key, Value] : Doc.members())
    if (Key != "schema_version")
      Legacy.set(Key, Value);
  EXPECT_TRUE(Legacy["schema_version"].isNull());

  CampaignCheckpoint Back;
  std::string Error;
  EXPECT_TRUE(deserializeCheckpoint(Legacy, Back, &Error)) << Error;
  EXPECT_EQ(Back.Spec.Name, "distributed-test");
}

TEST(CampaignSchemaTest, FutureCheckpointVersionRejected) {
  CampaignCheckpoint Ckpt;
  Ckpt.Spec = distSpec();
  Json Doc = serializeCheckpoint(Ckpt);
  Doc.set("schema_version", Json::string("msem.campaign.v2"));

  CampaignCheckpoint Back;
  std::string Error;
  EXPECT_FALSE(deserializeCheckpoint(Doc, Back, &Error));
  // The diagnostic names the offending version and says what to do.
  EXPECT_NE(Error.find("msem.campaign.v2"), std::string::npos) << Error;
  EXPECT_NE(Error.find("newer"), std::string::npos) << Error;
}

TEST(CampaignSchemaTest, FutureWorkerShardRejected) {
  std::string Path = tempPath("shard_schema") + ".json";
  std::remove(Path.c_str());

  WorkerShard Shard;
  Shard.Round = 3;
  Shard.Epoch = 0xABCD;
  Shard.Worker = 1;
  std::string Error;
  ASSERT_TRUE(saveWorkerShard(Shard, Path, &Error)) << Error;

  // The good file round-trips.
  WorkerShard Back;
  ASSERT_TRUE(loadWorkerShard(Path, Back, &Error)) << Error;
  EXPECT_EQ(Back.Round, 3u);
  EXPECT_EQ(Back.Epoch, 0xABCDu);
  EXPECT_EQ(Back.Worker, 1);

  // The same file from a future build does not.
  std::string Text;
  ASSERT_TRUE(readFileText(Path, Text, &Error)) << Error;
  Json Doc = Json::parse(Text, &Error);
  ASSERT_TRUE(Error.empty()) << Error;
  Doc.set("schema_version", Json::string("msem.campaign.v7"));
  ASSERT_TRUE(writeFileAtomic(Path, Doc.dump(), &Error)) << Error;
  EXPECT_FALSE(loadWorkerShard(Path, Back, &Error));
  EXPECT_NE(Error.find("msem.campaign.v7"), std::string::npos) << Error;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// ShardStore
//===----------------------------------------------------------------------===//

TEST(ShardStoreTest, MergeShardDedupsAndStaysSorted) {
  ParameterSpace Space = ParameterSpace::paperSpace();
  Rng R(0x5EED);
  std::vector<DesignPoint> P = generateRandomCandidates(Space, 4, R);
  std::sort(P.begin(), P.end());

  SurfaceShard Dst;
  Dst.Points = {P[0], P[2]};
  Dst.Values = {10.0, 12.0};
  SurfaceShard Src;
  Src.Points = {P[1], P[2], P[3]};
  Src.Values = {21.0, 99.0, 23.0};

  ShardStore::mergeShard(Dst, Src);
  ASSERT_EQ(Dst.Points.size(), 4u);
  EXPECT_TRUE(std::is_sorted(Dst.Points.begin(), Dst.Points.end()));
  EXPECT_EQ(Dst.Points, P);
  // The stored value wins on the duplicate point.
  EXPECT_EQ(Dst.Values, (std::vector<double>{10.0, 21.0, 12.0, 23.0}));
}

TEST(ShardStoreTest, UpdateReplacesAndFindLocates) {
  ParameterSpace Space = ParameterSpace::paperSpace();
  Rng R(0x5EED);
  std::vector<DesignPoint> P = generateRandomCandidates(Space, 3, R);
  std::sort(P.begin(), P.end());

  ShardStore Store;
  EXPECT_EQ(Store.find("art|test|cycles"), nullptr);

  Store.merge("art|test|cycles", {{P[0]}, {1.0}});
  const SurfaceShard *S = Store.find("art|test|cycles");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Points.size(), 1u);

  // update() is authoritative: a live snapshot replaces the stored shard.
  Store.update("art|test|cycles", {{P[1], 2.0}, {P[2], 3.0}});
  S = Store.find("art|test|cycles");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Points, (std::vector<DesignPoint>{P[1], P[2]}));
  EXPECT_EQ(S->Values, (std::vector<double>{2.0, 3.0}));
  EXPECT_EQ(Store.shards().size(), 1u);

  Store.restore({});
  EXPECT_EQ(Store.find("art|test|cycles"), nullptr);
}

//===----------------------------------------------------------------------===//
// Wire format round-trips
//===----------------------------------------------------------------------===//

TEST(WireFormatTest, PlanManifestHeartbeatRoundTrip) {
  DirGuard Guard(tempPath("wire"));
  std::string Error;
  ASSERT_TRUE(createDirectories(Guard.Dir, &Error)) << Error;

  CampaignManifest M;
  M.Workers = 3;
  M.Spec = distSpec();
  M.TraceId = 0xDEADBEEFCAFEF00Dull; // Full 64 bits must survive JSON.
  M.SpanId = 0x0123456789ABCDEFull;
  ASSERT_TRUE(saveManifest(M, manifestPath(Guard.Dir), &Error)) << Error;
  CampaignManifest MBack;
  ASSERT_TRUE(loadManifest(manifestPath(Guard.Dir), MBack, &Error)) << Error;
  EXPECT_EQ(MBack.Workers, 3);
  EXPECT_EQ(MBack.Spec.Name, "distributed-test");
  EXPECT_EQ(MBack.Spec.MaxDesignSize, 24u);
  EXPECT_EQ(MBack.TraceId, M.TraceId);
  EXPECT_EQ(MBack.SpanId, M.SpanId);

  ParameterSpace Space = ParameterSpace::paperSpace();
  Rng R(0xD15);
  RoundPlan Plan;
  Plan.Round = 7;
  Plan.Epoch = 0xFEEDFACEull << 8;
  Plan.Workers = 3;
  Plan.Surface = {"art", InputSet::Test, ResponseMetric::Cycles};
  Plan.Points = generateRandomCandidates(Space, 5, R);
  ASSERT_TRUE(savePlan(Plan, planPath(Guard.Dir), &Error)) << Error;
  RoundPlan PBack;
  ASSERT_TRUE(loadPlan(planPath(Guard.Dir), PBack, &Error)) << Error;
  EXPECT_EQ(PBack.Round, 7u);
  EXPECT_EQ(PBack.Epoch, Plan.Epoch);
  EXPECT_EQ(PBack.Workers, 3);
  EXPECT_FALSE(PBack.Done);
  EXPECT_EQ(PBack.Surface.Workload, "art");
  EXPECT_EQ(PBack.Surface.Input, InputSet::Test);
  EXPECT_EQ(PBack.Points, Plan.Points);

  WorkerShard Shard;
  Shard.Round = 7;
  Shard.Epoch = Plan.Epoch;
  Shard.Worker = 2;
  Shard.Done = true;
  Shard.Surface = Plan.Surface;
  Shard.Indices = {2};
  Shard.Points = {Plan.Points[2]};
  PointOutcome Out;
  Out.Value = 1.0 / 3.0; // Bitwise round-trip matters.
  Out.Ok = true;
  Out.Faults = 2;
  Out.Retries = 1;
  Shard.Outcomes = {Out};
  std::string ShardFile = workerShardPath(Guard.Dir, 7, 2);
  ASSERT_TRUE(saveWorkerShard(Shard, ShardFile, &Error)) << Error;
  WorkerShard SBack;
  ASSERT_TRUE(loadWorkerShard(ShardFile, SBack, &Error)) << Error;
  EXPECT_EQ(SBack.Round, 7u);
  EXPECT_EQ(SBack.Epoch, Plan.Epoch);
  EXPECT_EQ(SBack.Worker, 2);
  EXPECT_TRUE(SBack.Done);
  EXPECT_EQ(SBack.Indices, Shard.Indices);
  EXPECT_EQ(SBack.Points, Shard.Points);
  ASSERT_EQ(SBack.Outcomes.size(), 1u);
  EXPECT_EQ(SBack.Outcomes[0].Value, 1.0 / 3.0);
  EXPECT_TRUE(SBack.Outcomes[0].Ok);
  EXPECT_EQ(SBack.Outcomes[0].Faults, 2u);
  EXPECT_EQ(SBack.Outcomes[0].Retries, 1u);

  WorkerHeartbeat Hb;
  Hb.Worker = 2;
  Hb.Pid = 4321;
  Hb.Round = 7;
  Hb.Measured = 13;
  Hb.UnixSeconds = 1700000000;
  // The embedded msem.telemetry.v1 snapshot must round-trip bitwise: a
  // 64-bit counter that doubles cannot survive, and a histogram sum of
  // 1/3 exercises the full-precision float path.
  Hb.HasTelemetry = true;
  Hb.Telemetry.Counters = {{"smarts.runs", (1ull << 63) + 5}};
  Hb.Telemetry.Gauges = {{"pool.threads", 8.0}};
  Hb.Telemetry.Timers = {{"worker.round", 3, 123456789}};
  Hb.Telemetry.Histograms = {
      {"smarts.window_cpi", {0.5, 1.0, 2.0}, {1, 2, 3, 4}, 1.0 / 3.0, 2.5}};
  ASSERT_TRUE(saveHeartbeat(Hb, heartbeatPath(Guard.Dir, 2), &Error)) << Error;
  WorkerHeartbeat HBack;
  ASSERT_TRUE(loadHeartbeat(heartbeatPath(Guard.Dir, 2), HBack, &Error))
      << Error;
  EXPECT_EQ(HBack.Worker, 2);
  EXPECT_EQ(HBack.Pid, 4321);
  EXPECT_EQ(HBack.Round, 7u);
  EXPECT_EQ(HBack.Measured, 13u);
  EXPECT_EQ(HBack.UnixSeconds, 1700000000);
  ASSERT_TRUE(HBack.HasTelemetry);
  ASSERT_EQ(HBack.Telemetry.Counters.size(), 1u);
  EXPECT_EQ(HBack.Telemetry.Counters[0].Name, "smarts.runs");
  EXPECT_EQ(HBack.Telemetry.Counters[0].Value, (1ull << 63) + 5);
  ASSERT_EQ(HBack.Telemetry.Timers.size(), 1u);
  EXPECT_EQ(HBack.Telemetry.Timers[0].Count, 3u);
  EXPECT_EQ(HBack.Telemetry.Timers[0].TotalNs, 123456789u);
  ASSERT_EQ(HBack.Telemetry.Histograms.size(), 1u);
  EXPECT_EQ(HBack.Telemetry.Histograms[0].Bounds, Hb.Telemetry.Histograms[0].Bounds);
  EXPECT_EQ(HBack.Telemetry.Histograms[0].Counts, Hb.Telemetry.Histograms[0].Counts);
  EXPECT_EQ(HBack.Telemetry.Histograms[0].Sum, 1.0 / 3.0);

  // A legacy heartbeat (no telemetry section) still loads.
  WorkerHeartbeat Legacy;
  Legacy.Worker = 1;
  ASSERT_TRUE(saveHeartbeat(Legacy, heartbeatPath(Guard.Dir, 1), &Error))
      << Error;
  WorkerHeartbeat LBack;
  ASSERT_TRUE(loadHeartbeat(heartbeatPath(Guard.Dir, 1), LBack, &Error))
      << Error;
  EXPECT_FALSE(LBack.HasTelemetry);

  // Loads are tolerant of missing files: false plus a diagnostic.
  RoundPlan Missing;
  EXPECT_FALSE(loadPlan(Guard.Dir + "/nope.json", Missing, &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Worker child body (spawned by the coordinator tests below)
//===----------------------------------------------------------------------===//

/// Worker-process body: the coordinator re-executes this binary with
/// --gtest_filter selecting this test and MSEM_WORKER_DIR/MSEM_WORKER_ID
/// in the environment. Skipped in a normal test run.
TEST(DistributedWorkerChild, Run) {
  const char *Dir = std::getenv("MSEM_WORKER_DIR");
  const char *Id = std::getenv("MSEM_WORKER_ID");
  if (!Dir || !Id)
    GTEST_SKIP() << "worker body; spawned by the coordinator tests only";
  WorkerOptions Opts;
  Opts.Dir = Dir;
  Opts.Worker = std::atoi(Id);
  Opts.FlushEvery = 2; // Frequent flushes: more durable partial shards.
  if (const char *Kill = std::getenv("MSEM_WORKER_KILL_AFTER"))
    Opts.KillAfter = Kill;
  EXPECT_EQ(runWorker(Opts), 0);
}

/// Child body for the distributed-resume test: runs the checkpointed
/// campaign single-process and SIGKILLs itself mid-GA-search.
TEST(DistributedKillChild, Run) {
  const char *Path = std::getenv("MSEM_DIST_KILL_CKPT");
  if (!Path)
    GTEST_SKIP() << "kill-test child body; run by the parent test only";
  ExperimentSpec Spec = distSpec();
  Spec.CheckpointPath = Path;
  Spec.OnCheckpointWritten = [](size_t N) {
    if (N >= 3)
      raise(SIGKILL);
  };
  runExperiment(Spec);
  FAIL() << "child was supposed to die at the third checkpoint";
}

//===----------------------------------------------------------------------===//
// Distributed campaigns
//===----------------------------------------------------------------------===//

TEST(DistributedCampaignTest, TwoWorkersBitwiseIdenticalToSingleProcess) {
  PoolGuard Pool;
  DirGuard Shards(tempPath("two_shards"));
  std::string RefPath = tempPath("two_ref") + ".ckpt.json";
  std::string DistPath = tempPath("two_dist") + ".ckpt.json";
  std::remove(RefPath.c_str());
  std::remove(DistPath.c_str());

  setGlobalThreadCount(1);
  ExperimentSpec RefSpec = distSpec();
  RefSpec.CheckpointPath = RefPath;
  ExperimentResult Ref = runExperiment(RefSpec);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  ExperimentSpec DistSpec = distSpec();
  DistSpec.CheckpointPath = DistPath;
  Coordinator C(coordOpts(2, Shards.Dir));
  ExperimentResult Dist = C.run(DistSpec);
  ASSERT_TRUE(Dist.ok()) << Dist.Error;

  expectIdenticalResults(Ref, Dist);
  expectIdenticalSurfaces(RefPath, DistPath);

  // Both workers participated and reported liveness.
  std::vector<WorkerStatus> Status = C.workerStatus();
  ASSERT_EQ(Status.size(), 2u);
  for (const WorkerStatus &S : Status) {
    EXPECT_GE(S.Round, 1u) << "worker " << S.Worker;
    EXPECT_GT(S.HeartbeatUnixSeconds, 0) << "worker " << S.Worker;
    EXPECT_EQ(S.Respawns, 0) << "worker " << S.Worker;
  }

  std::remove(RefPath.c_str());
  std::remove(DistPath.c_str());
}

// The satellite matrix: kill a worker at a deterministic injected point
// (first fresh measurement), let the Retry policy respawn it, and require
// results bitwise identical to a single-process single-thread run --
// across {1, 2, 4} workers x {1, 8} threads, with deterministic fault
// injection active so retries flow through the wire format too.
TEST(DistributedCampaignTest, WorkerKillRespawnMatrixBitwiseIdentical) {
  PoolGuard Pool;

  ExperimentSpec Base = distSpec();
  Base.Faults.InjectRate = 0.15; // Deterministic hash of (point, attempt).
  Base.Faults.OnFault = FaultAction::Retry;
  Base.Faults.MaxAttempts = 16;

  setGlobalThreadCount(1);
  ExperimentResult Ref = runExperiment(Base);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  for (int Workers : {1, 2, 4}) {
    for (int Threads : {1, 8}) {
      SCOPED_TRACE(formatString("workers=%d threads=%d", Workers, Threads));
      DirGuard Shards(
          tempPath(formatString("kill_w%d_t%d", Workers, Threads).c_str()));

      // The victim dies after its first fresh measurement; the marker it
      // leaves disarms the hook in its replacement.
      int Victim = Workers - 1;
      EnvGuard Kill("MSEM_WORKER_KILL_AFTER",
                    formatString("%d:1", Victim));
      EnvGuard WorkerThreads("MSEM_THREADS", formatString("%d", Threads));
      setGlobalThreadCount(Threads);

      Coordinator C(coordOpts(Workers, Shards.Dir));
      ExperimentResult Dist = C.run(Base);
      ASSERT_TRUE(Dist.ok()) << Dist.Error;
      expectIdenticalResults(Ref, Dist);

      // The kill actually fired (marker on disk) and was survived by a
      // respawn, not by luck.
      EXPECT_TRUE(pathExists(Shards.Dir +
                             formatString("/killed-w%d", Victim)));
      std::vector<WorkerStatus> Status = C.workerStatus();
      ASSERT_EQ(Status.size(), static_cast<size_t>(Workers));
      EXPECT_GE(Status[static_cast<size_t>(Victim)].Respawns, 1);
    }
  }
}

TEST(DistributedCampaignTest, ResumeDistributedAfterSingleProcessKill) {
  PoolGuard Pool;
  DirGuard Shards(tempPath("resume_shards"));
  std::string Path = tempPath("resume") + ".ckpt.json";
  std::remove(Path.c_str());

  // Reference: uninterrupted, single-process, 1 thread.
  setGlobalThreadCount(1);
  ExperimentResult Ref = runExperiment(distSpec());
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  // Child: the same campaign, SIGKILLed at the third checkpoint.
  setenv("MSEM_DIST_KILL_CKPT", Path.c_str(), 1);
  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    execl("/proc/self/exe", "distributed_test",
          "--gtest_filter=DistributedKillChild.Run", nullptr);
    _exit(127); // exec failed.
  }
  unsetenv("MSEM_DIST_KILL_CKPT");
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFSIGNALED(Status))
      << "child should die by signal, status=" << Status;
  EXPECT_EQ(WTERMSIG(Status), SIGKILL);

  // Resume the mid-flight checkpoint *distributed*: the completed
  // campaign must be bitwise identical to the never-killed reference.
  Coordinator C(coordOpts(2, Shards.Dir));
  ExperimentResult Resumed = C.resume(Path);
  ASSERT_TRUE(Resumed.ok()) << Resumed.Error;
  expectIdenticalResults(Ref, Resumed);
  std::remove(Path.c_str());
}

TEST(DistributedCampaignTest, AbortPolicyFailsCampaignOnWorkerDeath) {
  PoolGuard Pool;
  DirGuard Shards(tempPath("abort_shards"));
  setGlobalThreadCount(1);

  ExperimentSpec Spec = distSpec();
  Spec.Faults.OnFault = FaultAction::Abort;
  EnvGuard Kill("MSEM_WORKER_KILL_AFTER", "1:1");

  Coordinator C(coordOpts(2, Shards.Dir));
  ExperimentResult Result = C.run(Spec);
  EXPECT_FALSE(Result.ok());
  // The diagnostic carries the worker's death, not a generic fault.
  EXPECT_NE(Result.Error.find("worker 1 died"), std::string::npos)
      << Result.Error;
}

TEST(DistributedCampaignTest, SkipPolicyDropsDeadWorkersPoints) {
  PoolGuard Pool;
  DirGuard Shards(tempPath("skip_shards"));
  setGlobalThreadCount(1);

  ExperimentSpec Spec = distSpec();
  Spec.Faults.OnFault = FaultAction::Skip;
  // Skip never respawns: the dead worker's unmeasured points fall out as
  // skipped responses and the campaign completes on the survivors.
  Spec.TunePlatforms.clear(); // Tuning a half-skipped design is not the point.
  Spec.VerifyTunings = false;
  EnvGuard Kill("MSEM_WORKER_KILL_AFTER", "1:1");

  Coordinator C(coordOpts(2, Shards.Dir));
  ExperimentResult Result = C.run(Spec);
  ASSERT_TRUE(Result.ok()) << Result.Error;
  ASSERT_EQ(Result.Jobs.size(), 1u);
  EXPECT_NE(Result.Jobs[0].Build.FittedModel, nullptr);

  // The dead worker stayed dead (no respawn under Skip) and the build
  // really lost its points.
  std::vector<WorkerStatus> Status = C.workerStatus();
  ASSERT_EQ(Status.size(), 2u);
  EXPECT_EQ(Status[1].Respawns, 0);
  EXPECT_FALSE(Status[1].Alive);
  setGlobalThreadCount(1);
  ExperimentSpec Clean = Spec;
  ExperimentResult Full = runExperiment(Clean);
  ASSERT_TRUE(Full.ok()) << Full.Error;
  EXPECT_LT(Result.Jobs[0].Build.TrainY.size(),
            Full.Jobs[0].Build.TrainY.size());
}

//===----------------------------------------------------------------------===//
// Fleet metrics plane
//===----------------------------------------------------------------------===//

namespace {

/// The counter families whose fleet-wide sums are a function of the set of
/// measured points, not of scheduling: simulation event counts, pass
/// activity, pipeline runs, measurement task counts and compile-cache
/// misses. Timers (wall clock), gauges (last-writer wins) and chunking
/// counters like pool.regions legitimately vary across worker and thread
/// counts and are excluded.
std::string deterministicCounterView(const telemetry::MetricsSnapshot &S) {
  static const char *Prefixes[] = {"opt.",  "pass.",    "pool.tasks.",
                                   "sim.trace_cache.", "smarts.",
                                   "surface.binary_cache."};
  std::string Out;
  for (const telemetry::MetricsSnapshot::CounterValue &C : S.Counters) {
    for (const char *P : Prefixes) {
      if (C.Name.rfind(P, 0) == 0) {
        Out += formatString("%s %llu\n", C.Name.c_str(),
                            static_cast<unsigned long long>(C.Value));
        break;
      }
    }
  }
  return Out;
}

} // namespace

// The observability satellite: the fleet rollup the coordinator exposes on
// /metrics is a pure function of the campaign, not of how it was sharded.
// Run the same campaign at {1, 2, 4} workers x {1, 8} threads, rebuild the
// fleet view from the final on-disk heartbeats (the same transport the
// coordinator's /metrics handler reads), and require (a) the deterministic
// counter families to merge to identical bytes in every configuration and
// (b) the full worker-labeled exposition to pass the OpenMetrics validator.
TEST(DistributedCampaignTest, FleetMetricsDeterministicAcrossShardings) {
  PoolGuard Pool;
  // Workers inherit the environment: give them a metrics-enabled config so
  // their heartbeats carry non-empty msem.telemetry.v1 snapshots.
  EnvGuard Telemetry("MSEM_TELEMETRY", "summary");

  std::string Reference;
  std::string ReferenceConfig;
  for (int Workers : {1, 2, 4}) {
    for (int Threads : {1, 8}) {
      SCOPED_TRACE(formatString("workers=%d threads=%d", Workers, Threads));
      DirGuard Shards(
          tempPath(formatString("fleet_w%d_t%d", Workers, Threads).c_str()));
      EnvGuard WorkerThreads("MSEM_THREADS", formatString("%d", Threads));
      setGlobalThreadCount(Threads);

      Coordinator C(coordOpts(Workers, Shards.Dir));
      ExperimentResult Result = C.run(distSpec());
      ASSERT_TRUE(Result.ok()) << Result.Error;

      // Rebuild the fleet view from the final heartbeats the workers left
      // behind (they write a last beat on the Done sentinel, and the
      // coordinator reaps every worker before run() returns).
      std::vector<telemetry::FleetMember> Members;
      telemetry::MetricsSnapshot Fleet;
      for (int W = 0; W < Workers; ++W) {
        WorkerHeartbeat Hb;
        std::string Error;
        ASSERT_TRUE(loadHeartbeat(heartbeatPath(Shards.Dir, W), Hb, &Error))
            << Error;
        ASSERT_TRUE(Hb.HasTelemetry) << "worker " << W;
        EXPECT_FALSE(Hb.Telemetry.Counters.empty()) << "worker " << W;
        telemetry::mergeTelemetrySnapshot(Fleet, Hb.Telemetry);
        Members.push_back({formatString("%d", W), std::move(Hb.Telemetry)});
      }

      std::string View = deterministicCounterView(Fleet);
      EXPECT_FALSE(View.empty());
      if (Reference.empty()) {
        Reference = View;
        ReferenceConfig = formatString("workers=%d threads=%d", Workers,
                                       Threads);
      } else {
        EXPECT_EQ(View, Reference) << "fleet rollup diverged from "
                                   << ReferenceConfig;
      }

      // The worker-labeled exposition is validator-clean and names every
      // worker.
      std::string Doc = telemetry::renderOpenMetricsFleet(
          telemetry::MetricsSnapshot{}, Members);
      std::string ValidateError;
      EXPECT_TRUE(telemetry::validateOpenMetrics(Doc, &ValidateError))
          << ValidateError;
      for (int W = 0; W < Workers; ++W)
        EXPECT_NE(Doc.find(formatString("worker=\"%d\"", W)),
                  std::string::npos)
            << "worker " << W << " missing from fleet exposition";
    }
  }
}
