//===- tests/TestPrograms.h - Shared IR test programs -------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR programs shared by the optimizer, codegen and simulator tests. Each
/// builder returns a verified module whose observable behaviour (return
/// value + Emit stream) the tests compare across the interpreter, the
/// optimizer and compiled machine code.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_TESTS_TESTPROGRAMS_H
#define MSEM_TESTS_TESTPROGRAMS_H

#include "ir/IRBuilder.h"
#include "ir/LoopBuilder.h"
#include "ir/Module.h"

#include <memory>

namespace msem::testing {

/// sum_{i=0}^{n-1} i*3 + 7, computed with a counted loop; emits the sum.
inline std::unique_ptr<Module> makeSumLoop(int64_t N) {
  auto M = std::make_unique<Module>("sumloop");
  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));

  LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "sum");
  Value *Acc = L.carried(B.constInt(7));
  Value *Term = B.mul(L.indVar(), B.constInt(3));
  L.setNext(Acc, B.add(Acc, Term));
  L.finish();
  Value *Result = L.exitValue(Acc);
  B.emit(Result);
  B.ret(Result);
  return M;
}

/// Array workout: writes a[i] = i*i into a global, then reduces with a
/// stride; exercises loads/stores/prefetchable strides. Emits the total.
inline std::unique_ptr<Module> makeArraySum(int64_t N) {
  auto M = std::make_unique<Module>("arraysum");
  GlobalVariable *Arr =
      M->createGlobal("arr", static_cast<uint64_t>(N) * 8);
  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));

  {
    LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "fill");
    Value *Sq = B.mul(L.indVar(), L.indVar());
    B.storeElem(Sq, Arr, L.indVar(), MemKind::Int64);
    L.finish();
  }
  LoopBuilder L2(B, B.constInt(0), B.constInt(N), 1, "reduce");
  Value *Acc = L2.carried(B.constInt(0));
  Value *V = B.loadElem(Arr, L2.indVar(), MemKind::Int64);
  L2.setNext(Acc, B.add(Acc, V));
  L2.finish();
  Value *Result = L2.exitValue(Acc);
  B.emit(Result);
  B.ret(Result);
  return M;
}

/// Calls a helper (a*b+c) in a loop; exercises calls/inlining/arguments.
inline std::unique_ptr<Module> makeCallLoop(int64_t N) {
  auto M = std::make_unique<Module>("callloop");
  Function *Madd =
      M->createFunction("madd", Type::I64, {Type::I64, Type::I64, Type::I64},
                        {"a", "b", "c"});
  {
    IRBuilder B(*M);
    B.setInsertPoint(Madd->createBlock("entry"));
    Value *P = B.mul(Madd->arg(0), Madd->arg(1));
    B.ret(B.add(P, Madd->arg(2)));
  }
  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "calls");
  Value *Acc = L.carried(B.constInt(1));
  Value *R = B.call(Madd, {L.indVar(), B.constInt(5), Acc});
  L.setNext(Acc, B.rem(R, B.constInt(1000003)));
  L.finish();
  Value *Result = L.exitValue(Acc);
  B.emit(Result);
  B.ret(Result);
  return M;
}

/// Branchy program: collatz-style iteration with data-dependent branches;
/// emits the step count. Exercises branch prediction and select-free CFs.
inline std::unique_ptr<Module> makeBranchy(int64_t Seed, int64_t Iters) {
  auto M = std::make_unique<Module>("branchy");
  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));

  LoopBuilder L(B, B.constInt(0), B.constInt(Iters), 1, "steps");
  Value *X = L.carried(B.constInt(Seed));
  // if (x & 1) x = 3x + 1 else x = x / 2; then clamp small values up.
  Value *Odd = B.andOp(X, B.constInt(1));
  Function *F = Main;
  BasicBlock *ThenBB = F->createBlock("odd");
  BasicBlock *ElseBB = F->createBlock("even");
  BasicBlock *Merge = F->createBlock("merge");
  B.br(Odd, ThenBB, ElseBB);
  B.setInsertPoint(ThenBB);
  Value *X1 = B.add(B.mul(X, B.constInt(3)), B.constInt(1));
  B.jmp(Merge);
  B.setInsertPoint(ElseBB);
  Value *X2 = B.divS(X, B.constInt(2));
  B.jmp(Merge);
  B.setInsertPoint(Merge);
  Instruction *XNew = B.phi(Type::I64);
  XNew->addPhiIncoming(X1, ThenBB);
  XNew->addPhiIncoming(X2, ElseBB);
  Value *Small = B.icmp(CmpPred::LE, XNew, B.constInt(1));
  Value *Bumped = B.select(Small, B.add(XNew, B.constInt(97)), XNew);
  L.setNext(X, Bumped);
  L.finish();
  Value *Result = L.exitValue(X);
  B.emit(Result);
  B.ret(Result);
  return M;
}

/// Floating-point kernel: dot products with conversions; emits the result
/// rounded to an integer (exact comparisons stay valid: all operations are
/// identical across interpreter and machine code).
inline std::unique_ptr<Module> makeFpKernel(int64_t N) {
  auto M = std::make_unique<Module>("fpkernel");
  GlobalVariable *A = M->createGlobal("A", static_cast<uint64_t>(N) * 8);
  GlobalVariable *Bv = M->createGlobal("B", static_cast<uint64_t>(N) * 8);
  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "init");
    Value *Fi = B.siToFp(L.indVar());
    B.storeElem(B.fmul(Fi, B.constFloat(0.5)), A, L.indVar(),
                MemKind::Float64);
    B.storeElem(B.fadd(Fi, B.constFloat(1.25)), Bv, L.indVar(),
                MemKind::Float64);
    L.finish();
  }
  LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "dot");
  Value *Acc = L.carried(B.constFloat(0.0));
  Value *Av = B.loadElem(A, L.indVar(), MemKind::Float64);
  Value *BvV = B.loadElem(Bv, L.indVar(), MemKind::Float64);
  L.setNext(Acc, B.fadd(Acc, B.fmul(Av, BvV)));
  L.finish();
  Value *Result = B.fpToSi(L.exitValue(Acc));
  B.emit(Result);
  B.ret(Result);
  return M;
}

/// Nested loops over a small 2D grid with byte and i32 accesses.
inline std::unique_ptr<Module> makeNestedGrid(int64_t Rows, int64_t Cols) {
  auto M = std::make_unique<Module>("grid");
  GlobalVariable *G = M->createGlobal(
      "grid", static_cast<uint64_t>(Rows * Cols) * 4);
  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));
  {
    LoopBuilder Lr(B, B.constInt(0), B.constInt(Rows), 1, "r");
    {
      LoopBuilder Lc(B, B.constInt(0), B.constInt(Cols), 1, "c");
      Value *Idx = B.add(B.mul(Lr.indVar(), B.constInt(Cols)), Lc.indVar());
      Value *V = B.xorOp(B.mul(Lr.indVar(), B.constInt(31)),
                         B.mul(Lc.indVar(), B.constInt(17)));
      B.storeElem(V, G, Idx, MemKind::Int32);
      Lc.finish();
    }
    Lr.finish();
  }
  LoopBuilder L(B, B.constInt(0), B.constInt(Rows * Cols), 1, "sum");
  Value *Acc = L.carried(B.constInt(0));
  Value *V = B.loadElem(G, L.indVar(), MemKind::Int32);
  L.setNext(Acc, B.add(Acc, V));
  L.finish();
  Value *Result = L.exitValue(Acc);
  B.emit(Result);
  B.ret(Result);
  return M;
}

} // namespace msem::testing

#endif // MSEM_TESTS_TESTPROGRAMS_H
