//===- tests/parallel_test.cpp - Parallel engine determinism tests ----------------===//
//
// The parallel measurement & fitting engine promises bitwise-identical
// outputs for every MSEM_THREADS setting: parallel regions write disjoint
// slots and every reduction runs sequentially in index order. These tests
// pin that contract by running the same campaigns with a 1-thread and an
// 8-thread global pool and comparing results with exact equality. The
// disk-cache tests cover the atomic (temp file + rename) rewrite and the
// tolerant loader.
//
//===----------------------------------------------------------------------===//

#include "core/ModelBuilder.h"
#include "core/ResponseSurface.h"
#include "design/Doe.h"
#include "search/GeneticSearch.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

using namespace msem;

namespace {

ResponseSurface::Options testSurface(const std::string &Workload) {
  ResponseSurface::Options Opts;
  Opts.Workload = Workload;
  Opts.Input = InputSet::Test;
  Opts.UseSmarts = true;
  Opts.Smarts.SamplingInterval = 10; // Test inputs are short.
  return Opts;
}

/// Restores the environment-derived global pool when a test ends, so the
/// thread-count games here never leak into other tests in the binary.
struct PoolGuard {
  ~PoolGuard() { setGlobalThreadCount(0); }
};

TEST(ParallelDeterminismTest, MeasureAllMatchesSequentialBitwise) {
  PoolGuard Guard;
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(42);
  std::vector<DesignPoint> Points = generateRandomCandidates(S, 10, R);
  // Duplicates exercise the distinct-point dedup and the hit accounting.
  Points.push_back(Points[0]);
  Points.push_back(Points[3]);

  setGlobalThreadCount(1);
  ResponseSurface Seq(S, testSurface("art"));
  std::vector<double> YSeq = Seq.measureAll(Points);
  EXPECT_EQ(Seq.simulationsRun(), 10u);
  EXPECT_EQ(Seq.cacheHits(), 2u);

  setGlobalThreadCount(8);
  ResponseSurface Par(S, testSurface("art"));
  std::vector<double> YPar = Par.measureAll(Points);

  ASSERT_EQ(YSeq.size(), YPar.size());
  for (size_t I = 0; I < YSeq.size(); ++I)
    EXPECT_EQ(YSeq[I], YPar[I]) << "point " << I;
  // The counters follow sequential semantics at every thread count.
  EXPECT_EQ(Par.simulationsRun(), Seq.simulationsRun());
  EXPECT_EQ(Par.cacheHits(), Seq.cacheHits());
}

/// Everything comparable out of one full Figure-1 build.
struct BuildSnapshot {
  std::vector<DesignPoint> TrainPoints, TestPoints;
  std::vector<double> TrainY, TestY, Pred;
  std::vector<std::pair<size_t, double>> ErrorCurve;
  double Mape = 0;
  size_t Sims = 0;
};

BuildSnapshot buildCampaignAt(size_t Threads) {
  setGlobalThreadCount(Threads);
  ParameterSpace S = ParameterSpace::paperSpace();
  ResponseSurface Surface(S, testSurface("art"));
  ModelBuilderOptions Opts;
  Opts.Technique = ModelTechnique::Mars; // Exercises the knot-scan fan-out.
  Opts.InitialDesignSize = 20;
  Opts.AugmentStep = 10;
  Opts.MaxDesignSize = 30;
  Opts.TestSize = 10;
  Opts.TargetMape = 0.0; // Unreachable: forces the augmentation loop.
  Opts.CandidateCount = 200;
  ModelBuildResult R = buildModel(Surface, Opts);

  BuildSnapshot Snap;
  Snap.TrainPoints = R.TrainPoints;
  Snap.TestPoints = R.TestPoints;
  Snap.TrainY = R.TrainY;
  Snap.TestY = R.TestY;
  Snap.Pred = R.FittedModel->predictAll(encodeMatrix(S, R.TestPoints));
  Snap.ErrorCurve = R.ErrorCurve;
  Snap.Mape = R.TestQuality.Mape;
  Snap.Sims = R.SimulationsUsed;
  return Snap;
}

TEST(ParallelDeterminismTest, FullModelBuildMatchesSequentialBitwise) {
  PoolGuard Guard;
  BuildSnapshot A = buildCampaignAt(1);
  BuildSnapshot B = buildCampaignAt(8);
  // Exact, not approximate: the whole DOE -> measure -> fit -> augment
  // loop must be reproduced bit for bit.
  EXPECT_EQ(A.TrainPoints, B.TrainPoints);
  EXPECT_EQ(A.TestPoints, B.TestPoints);
  EXPECT_EQ(A.TrainY, B.TrainY);
  EXPECT_EQ(A.TestY, B.TestY);
  EXPECT_EQ(A.Pred, B.Pred);
  EXPECT_EQ(A.ErrorCurve, B.ErrorCurve);
  EXPECT_EQ(A.Mape, B.Mape);
  EXPECT_EQ(A.Sims, B.Sims);
}

TEST(ParallelDeterminismTest, DOptimalSelectionMatchesSequential) {
  PoolGuard Guard;
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(7);
  std::vector<DesignPoint> Candidates = generateRandomCandidates(S, 400, R);
  DOptimalOptions Opt;
  Opt.DesignSize = 24;

  setGlobalThreadCount(1);
  DOptimalResult A = selectDOptimal(S, Candidates, Opt);
  setGlobalThreadCount(8);
  DOptimalResult B = selectDOptimal(S, Candidates, Opt);

  EXPECT_EQ(A.Selected, B.Selected);
  EXPECT_EQ(A.LogDetInformation, B.LogDetInformation);
  EXPECT_EQ(A.PassesUsed, B.PassesUsed);
}

TEST(ParallelDeterminismTest, ModelTrainingMatchesSequential) {
  PoolGuard Guard;
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(11);
  std::vector<DesignPoint> Pts = generateRandomCandidates(S, 60, R);
  Matrix X = encodeMatrix(S, Pts);
  // A synthetic but nontrivial response: linear trend + curvature.
  std::vector<double> Y(X.rows());
  for (size_t I = 0; I < X.rows(); ++I) {
    double V = 100.0;
    for (size_t J = 0; J < X.cols(); ++J)
      V += static_cast<double>(J + 1) * X.at(I, J) +
           3.0 * X.at(I, J) * X.at(I, J);
    Y[I] = V;
  }
  std::vector<DesignPoint> Probe = generateRandomCandidates(S, 40, R);
  Matrix P = encodeMatrix(S, Probe);

  for (ModelTechnique T : {ModelTechnique::Mars, ModelTechnique::Rbf}) {
    setGlobalThreadCount(1);
    std::unique_ptr<Model> Seq = makeModel(T);
    Seq->train(X, Y);
    setGlobalThreadCount(8);
    std::unique_ptr<Model> Par = makeModel(T);
    Par->train(X, Y);
    EXPECT_EQ(Seq->predictAll(P), Par->predictAll(P))
        << modelTechniqueName(T);
  }
}

TEST(ParallelDeterminismTest, GaSearchMatchesSequential) {
  PoolGuard Guard;
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(13);
  std::vector<DesignPoint> Pts = generateRandomCandidates(S, 80, R);
  Matrix X = encodeMatrix(S, Pts);
  std::vector<double> Y(X.rows());
  for (size_t I = 0; I < X.rows(); ++I) {
    double V = 1000.0;
    for (size_t J = 0; J < X.cols(); ++J)
      V += static_cast<double>(J + 1) * X.at(I, J);
    Y[I] = V;
  }
  std::unique_ptr<Model> M = makeModel(ModelTechnique::Rbf);
  M->train(X, Y);

  DesignPoint Frozen =
      S.fromConfigs(OptimizationConfig::O2(), MachineConfig::typical());
  GaOptions Ga;
  Ga.Generations = 30;

  setGlobalThreadCount(1);
  GaResult A = searchOptimalSettings(*M, S, Frozen, Ga);
  setGlobalThreadCount(8);
  GaResult B = searchOptimalSettings(*M, S, Frozen, Ga);

  EXPECT_EQ(A.BestPoint, B.BestPoint);
  EXPECT_EQ(A.PredictedResponse, B.PredictedResponse);
  EXPECT_EQ(A.GenerationsRun, B.GenerationsRun);
}

TEST(DiskCacheTest, LoaderToleratesGarbageAndPartialLines) {
  std::string Dir = ::testing::TempDir() + "/msem_parallel_cache";
  ParameterSpace S = ParameterSpace::paperSpace();
  DesignPoint P =
      S.fromConfigs(OptimizationConfig::O2(), MachineConfig::typical());
  double First;
  {
    ResponseSurface::Options O = testSurface("art");
    O.CacheDir = Dir;
    ResponseSurface Surface(S, O);
    First = Surface.measure(P);
    EXPECT_EQ(Surface.simulationsRun(), 1u);
  }
  // Corrupt the cache the ways a crashed or concurrent writer could:
  // unparseable junk, a non-positive value, a wrong-arity point, and a
  // truncated (newline-less) final line.
  std::string File = Dir + "/responses.csv";
  std::FILE *F = std::fopen(File.c_str(), "a");
  ASSERT_NE(F, nullptr);
  std::fprintf(F, "not a cache line at all\n");
  std::fprintf(F, "other|v|test|cycles|s,1,2;-5\n");
  std::fprintf(F, "garbage;;;\n");
  std::fprintf(F, "art|truncated-mid-wri"); // No newline: must be dropped.
  std::fclose(F);
  {
    ResponseSurface::Options O = testSurface("art");
    O.CacheDir = Dir;
    ResponseSurface Surface(S, O);
    EXPECT_EQ(Surface.measure(P), First) << "valid row lost";
    EXPECT_EQ(Surface.simulationsRun(), 0u) << "valid row not loaded";
  }
  std::remove(File.c_str());
}

TEST(DiskCacheTest, AtomicRewritePreservesForeignRows) {
  std::string Dir = ::testing::TempDir() + "/msem_parallel_cache2";
  ::mkdir(Dir.c_str(), 0755);
  std::string File = Dir + "/responses.csv";
  {
    std::FILE *F = std::fopen(File.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fprintf(F, "foreign|surface|row,9;123.5\n");
    std::fclose(F);
  }
  ParameterSpace S = ParameterSpace::paperSpace();
  DesignPoint P =
      S.fromConfigs(OptimizationConfig::O2(), MachineConfig::typical());
  {
    ResponseSurface::Options O = testSurface("art");
    O.CacheDir = Dir;
    ResponseSurface Surface(S, O);
    Surface.measure(P); // Flushes (merge + atomic rename) on destruction.
  }
  std::FILE *F = std::fopen(File.c_str(), "r");
  ASSERT_NE(F, nullptr);
  std::string Content;
  char Buf[4096];
  while (std::fgets(Buf, sizeof(Buf), F))
    Content += Buf;
  std::fclose(F);
  EXPECT_NE(Content.find("foreign|surface|row,9;123.5"), std::string::npos)
      << "merge-rewrite dropped another surface's row";
  EXPECT_NE(Content.find("art|"), std::string::npos)
      << "our own row missing";
  // The temp file was renamed away, not left behind.
  std::string Tmp = File + ".tmp." + std::to_string(::getpid());
  EXPECT_NE(::access(Tmp.c_str(), F_OK), 0);
  std::remove(File.c_str());
}

} // namespace
