//===- tests/opt_test.cpp - Optimization pass tests ----------------------------===//
//
// Every pass is tested two ways: (1) it preserves observable behaviour
// (interpreter equivalence on the Emit stream and return value), and
// (2) it has the intended structural effect on the IR.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/LoopInfo.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "tests/TestPrograms.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace msem;
using namespace msem::testing;

namespace {

void expectSameBehavior(const InterpResult &Ref, const InterpResult &Got,
                        const std::string &What) {
  ASSERT_FALSE(Ref.Trapped) << What << ": reference trapped";
  ASSERT_FALSE(Got.Trapped) << What << ": " << Got.TrapMessage;
  EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue) << What;
  ASSERT_EQ(Ref.Output.size(), Got.Output.size()) << What;
  for (size_t I = 0; I < Ref.Output.size(); ++I)
    EXPECT_TRUE(Ref.Output[I] == Got.Output[I]) << What << " output " << I;
}

unsigned countOpcode(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Op)
        ++N;
  return N;
}

// ---------------------------------------------------------------- ConstantFold
TEST(ConstantFoldTest, FoldsConstantChain) {
  Module M("fold");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Value *V = B.add(B.constInt(2), B.constInt(3));
  V = B.mul(V, B.constInt(4));
  V = B.sub(V, B.constInt(20)); // (2+3)*4 - 20 = 0
  B.ret(V);
  runConstantFold(*F);
  runDeadCodeElim(*F);
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_EQ(F->instructionCount(), 1u); // Just the ret.
  InterpResult R = Interpreter().run(M);
  EXPECT_EQ(R.ReturnValue, 0);
}

TEST(ConstantFoldTest, AlgebraicIdentities) {
  Module M("ident");
  Function *F = M.createFunction("main", Type::I64, {Type::I64}, {"x"});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Value *X = F->arg(0);
  Value *V = B.add(X, B.constInt(0)); // x
  V = B.mul(V, B.constInt(1));        // x
  V = B.xorOp(V, B.constInt(0));      // x
  B.ret(V);
  runConstantFold(*F);
  runDeadCodeElim(*F);
  EXPECT_EQ(F->instructionCount(), 1u);
  // The ret must now return the argument directly.
  Instruction *Ret = F->entry()->terminator();
  EXPECT_EQ(Ret->operand(0), X);
}

TEST(ConstantFoldTest, MulByZeroCollapses) {
  Module M("mzero");
  Function *F = M.createFunction("main", Type::I64, {Type::I64}, {"x"});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(B.mul(F->arg(0), B.constInt(0)));
  runConstantFold(*F);
  Instruction *Ret = F->entry()->terminator();
  auto *C = dyn_cast<Constant>(Ret->operand(0));
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->intValue(), 0);
}

TEST(ConstantFoldTest, FoldsFloatOpsAndCompares) {
  Module M("ffold");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Value *FV = B.fmul(B.constFloat(2.0), B.constFloat(3.5)); // 7.0
  Value *C = B.fcmp(CmpPred::GT, FV, B.constFloat(6.0));    // 1
  B.ret(C);
  runConstantFold(*F);
  Instruction *Ret = F->entry()->terminator();
  auto *CC = dyn_cast<Constant>(Ret->operand(0));
  ASSERT_NE(CC, nullptr);
  EXPECT_EQ(CC->intValue(), 1);
}

// ------------------------------------------------------------------------ DCE
TEST(DceTest, RemovesDeadPureCode) {
  Module M("dce");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.add(B.constInt(1), B.constInt(2)); // Dead.
  B.mul(B.constInt(3), B.constInt(4)); // Dead.
  B.ret(B.constInt(9));
  EXPECT_TRUE(runDeadCodeElim(*F));
  EXPECT_EQ(F->instructionCount(), 1u);
}

TEST(DceTest, KeepsSideEffects) {
  Module M("dce2");
  GlobalVariable *G = M.createGlobal("g", 8);
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.store(B.constInt(1), G, MemKind::Int64); // Kept.
  B.emit(B.constInt(5));                     // Kept.
  B.ret(B.constInt(0));
  runDeadCodeElim(*F);
  EXPECT_EQ(countOpcode(*F, Opcode::Store), 1u);
  EXPECT_EQ(countOpcode(*F, Opcode::Emit), 1u);
}

TEST(DceTest, RemovesDeadPhiCycle) {
  // Two phis referencing each other across a loop, never otherwise used.
  auto M = makeSumLoop(5);
  Function *F = M->mainFunction();
  IRBuilder B(*M);
  // Find the body block (has phis) and add a dead mutually-referencing pair.
  BasicBlock *Body = nullptr;
  for (const auto &BB : F->blocks())
    if (!BB->empty() && BB->instructions()[0]->opcode() == Opcode::Phi)
      Body = BB.get();
  ASSERT_NE(Body, nullptr);
  Instruction *IvPhi = Body->instructions()[0].get();
  // deadPhi = phi [0, pre], [deadPhi+1 computed in latch...]. Use the same
  // incoming blocks as the existing phi.
  B.setInsertPoint(Body);
  Instruction *DeadPhi = B.phi(Type::I64);
  for (size_t I = 0; I < IvPhi->phiBlocks().size(); ++I)
    DeadPhi->addPhiIncoming(DeadPhi, IvPhi->phiBlocks()[I]);
  unsigned Before = F->instructionCount();
  EXPECT_TRUE(runDeadCodeElim(*F));
  EXPECT_LT(F->instructionCount(), Before);
  EXPECT_TRUE(verifyFunction(*F).empty());
}

// ----------------------------------------------------------------- SimplifyCFG
TEST(SimplifyCfgTest, FoldsConstantBranch) {
  Module M("scfg");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  B.setInsertPoint(Entry);
  B.br(M.constInt(1), T, E);
  B.setInsertPoint(T);
  B.ret(B.constInt(10));
  B.setInsertPoint(E);
  B.ret(B.constInt(20));
  EXPECT_TRUE(runSimplifyCfg(*F));
  EXPECT_TRUE(verifyFunction(*F).empty());
  // Dead branch removed; blocks merged into one.
  EXPECT_EQ(F->blocks().size(), 1u);
  InterpResult R = Interpreter().run(M);
  EXPECT_EQ(R.ReturnValue, 10);
}

TEST(SimplifyCfgTest, MergesLinearChain) {
  Module M("chain");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  BasicBlock *A = F->createBlock("a");
  BasicBlock *Bb = F->createBlock("b");
  BasicBlock *C = F->createBlock("c");
  B.setInsertPoint(A);
  B.jmp(Bb);
  B.setInsertPoint(Bb);
  B.jmp(C);
  B.setInsertPoint(C);
  B.ret(B.constInt(3));
  EXPECT_TRUE(runSimplifyCfg(*F));
  EXPECT_EQ(F->blocks().size(), 1u);
  EXPECT_EQ(Interpreter().run(M).ReturnValue, 3);
}

TEST(SimplifyCfgTest, PreservesLoopSemantics) {
  auto Ref = Interpreter().run(*makeSumLoop(9));
  auto M = makeSumLoop(9);
  for (const auto &F : M->functions())
    runSimplifyCfg(*F);
  EXPECT_TRUE(verifyModule(*M).empty());
  expectSameBehavior(Ref, Interpreter().run(*M), "simplifycfg sumloop");
}

// ------------------------------------------------------------------------ GVN
TEST(GvnTest, EliminatesRedundantExpressions) {
  Module M("gvn");
  Function *F = M.createFunction("main", Type::I64,
                                 {Type::I64, Type::I64}, {"a", "b"});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Value *S1 = B.add(F->arg(0), F->arg(1));
  Value *S2 = B.add(F->arg(0), F->arg(1)); // Redundant.
  Value *S3 = B.add(F->arg(1), F->arg(0)); // Commutative-redundant.
  B.ret(B.add(B.mul(S1, S2), S3));
  unsigned Before = F->instructionCount();
  EXPECT_TRUE(runGvn(*F));
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_LT(F->instructionCount(), Before);
  EXPECT_EQ(countOpcode(*F, Opcode::Add), 2u); // One a+b, one final add.
}

TEST(GvnTest, RespectsDominance) {
  // Same expression in two sibling branches must NOT merge.
  Module M("gvn2");
  Function *F = M.createFunction("main", Type::I64, {Type::I64}, {"x"});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  B.setInsertPoint(Entry);
  B.br(F->arg(0), T, E);
  B.setInsertPoint(T);
  Value *V1 = B.mul(F->arg(0), B.constInt(3));
  B.ret(V1);
  B.setInsertPoint(E);
  Value *V2 = B.mul(F->arg(0), B.constInt(3));
  B.ret(V2);
  runGvn(*F);
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_EQ(countOpcode(*F, Opcode::Mul), 2u);
}

TEST(GvnTest, PreservesBehavior) {
  auto Ref = Interpreter().run(*makeNestedGrid(6, 7));
  auto M = makeNestedGrid(6, 7);
  for (const auto &F : M->functions())
    runGvn(*F);
  EXPECT_TRUE(verifyModule(*M).empty());
  expectSameBehavior(Ref, Interpreter().run(*M), "gvn grid");
}

// ----------------------------------------------------------------------- LICM
TEST(LicmTest, HoistsInvariantComputation) {
  Module M("licm");
  Function *F = M.createFunction("main", Type::I64, {Type::I64}, {"n"});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(100), 1, "l");
  Value *Acc = L.carried(B.constInt(0));
  // Invariant: n*n+5 recomputed every iteration.
  Value *Inv = B.add(B.mul(F->arg(0), F->arg(0)), B.constInt(5));
  L.setNext(Acc, B.add(Acc, Inv));
  L.finish();
  B.ret(L.exitValue(Acc));

  DominatorTree DT(*F);
  LoopAnalysis LA(*F, DT);
  ASSERT_EQ(LA.loops().size(), 1u);
  Loop *Lp = LA.loops()[0].get();
  auto InLoopMuls = [&](Loop *Loop0) {
    unsigned N = 0;
    for (BasicBlock *BB : Loop0->Blocks)
      for (const auto &I : BB->instructions())
        if (I->opcode() == Opcode::Mul)
          ++N;
    return N;
  };
  EXPECT_EQ(InLoopMuls(Lp), 1u);
  EXPECT_TRUE(runLicm(*F));
  EXPECT_TRUE(verifyFunction(*F).empty());
  DominatorTree DT2(*F);
  LoopAnalysis LA2(*F, DT2);
  EXPECT_EQ(InLoopMuls(LA2.loops()[0].get()), 0u);
}

TEST(LicmTest, PreservesBehavior) {
  auto Ref = Interpreter().run(*makeFpKernel(32));
  auto M = makeFpKernel(32);
  for (const auto &F : M->functions())
    runLicm(*F);
  EXPECT_TRUE(verifyModule(*M).empty());
  expectSameBehavior(Ref, Interpreter().run(*M), "licm fp");
}

// ------------------------------------------------------------- StrengthReduce
TEST(StrengthReduceTest, ReplacesIvMultiply) {
  auto M = makeArraySum(16);
  Function *F = M->mainFunction();
  // elemPtr emits mul(iv, 8) in both loops.
  unsigned MulsBefore = countOpcode(*F, Opcode::Mul);
  ASSERT_GE(MulsBefore, 2u);
  EXPECT_TRUE(runStrengthReduce(*F));
  runConstantFold(*F);
  runDeadCodeElim(*F);
  EXPECT_TRUE(verifyFunction(*F).empty());
  // The iv*8 multiplies are gone (the fill loop's i*i data multiply stays).
  EXPECT_LT(countOpcode(*F, Opcode::Mul), MulsBefore);
  auto Ref = Interpreter().run(*makeArraySum(16));
  expectSameBehavior(Ref, Interpreter().run(*M), "strength-reduce");
}

TEST(StrengthReduceTest, HandlesNegativeStride) {
  Module M("sr2");
  GlobalVariable *G = M.createGlobal("a", 64 * 8);
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(63), B.constInt(-1), -1, "down");
  Value *Acc = L.carried(B.constInt(0));
  B.storeElem(L.indVar(), G, L.indVar(), MemKind::Int64);
  Value *V = B.loadElem(G, L.indVar(), MemKind::Int64);
  L.setNext(Acc, B.add(Acc, V));
  L.finish();
  B.ret(L.exitValue(Acc));
  auto RefRet = Interpreter().run(M).ReturnValue;
  EXPECT_TRUE(runStrengthReduce(*F));
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_EQ(Interpreter().run(M).ReturnValue, RefRet);
}

// --------------------------------------------------------------------- Unroll
TEST(UnrollTest, GrowsCodeAndPreservesSemantics) {
  for (int64_t N : {0, 1, 3, 7, 8, 9, 100}) {
    auto Ref = Interpreter().run(*makeSumLoop(N));
    auto M = makeSumLoop(N);
    Function *F = M->mainFunction();
    unsigned Before = F->instructionCount();
    OptimizationConfig C;
    C.UnrollLoops = true;
    C.MaxUnrollTimes = 4;
    C.MaxUnrolledInsns = 300;
    EXPECT_TRUE(runUnroll(*F, C));
    EXPECT_TRUE(verifyFunction(*F).empty()) << "N=" << N;
    EXPECT_GT(F->instructionCount(), Before);
    expectSameBehavior(Ref, Interpreter().run(*M),
                       "unroll N=" + std::to_string(N));
  }
}

TEST(UnrollTest, RespectsSizeGate) {
  auto M = makeSumLoop(10);
  Function *F = M->mainFunction();
  OptimizationConfig C;
  C.UnrollLoops = true;
  C.MaxUnrollTimes = 4;
  C.MaxUnrolledInsns = 2; // Too small for any loop body.
  EXPECT_FALSE(runUnroll(*F, C));
}

TEST(UnrollTest, UnrollsBranchyBody) {
  auto Ref = Interpreter().run(*makeBranchy(27, 50));
  auto M = makeBranchy(27, 50);
  Function *F = M->mainFunction();
  OptimizationConfig C;
  C.UnrollLoops = true;
  C.MaxUnrollTimes = 3;
  C.MaxUnrolledInsns = 300;
  EXPECT_TRUE(runUnroll(*F, C));
  EXPECT_TRUE(verifyFunction(*F).empty());
  expectSameBehavior(Ref, Interpreter().run(*M), "unroll branchy");
}

TEST(UnrollTest, UsesExitValuesCorrectly) {
  // The induction variable's exit value is used after the loop; unrolling
  // must keep it correct via LCSSA phis.
  for (int64_t N : {5, 12}) {
    auto Ref = Interpreter().run(*makeArraySum(N));
    auto M = makeArraySum(N);
    OptimizationConfig C;
    C.UnrollLoops = true;
    C.MaxUnrollTimes = 5;
    C.MaxUnrolledInsns = 300;
    runUnroll(*M->mainFunction(), C);
    EXPECT_TRUE(verifyModule(*M).empty());
    expectSameBehavior(Ref, Interpreter().run(*M), "unroll arraysum");
  }
}

// ------------------------------------------------------------------- Prefetch
TEST(PrefetchTest, InsertsPrefetchForStridedLoads) {
  auto M = makeArraySum(64);
  Function *F = M->mainFunction();
  EXPECT_EQ(countOpcode(*F, Opcode::Prefetch), 0u);
  EXPECT_TRUE(runPrefetch(*F));
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_GE(countOpcode(*F, Opcode::Prefetch), 1u);
  auto Ref = Interpreter().run(*makeArraySum(64));
  expectSameBehavior(Ref, Interpreter().run(*M), "prefetch");
}

TEST(PrefetchTest, SkipsNonStridedLoads) {
  // Pointer-chasing load (address loaded from memory) gets no prefetch.
  Module M("chase");
  GlobalVariable *G = M.createGlobal("nodes", 128 * 8);
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(10), 1, "chase");
  Value *P = L.carried(B.constInt(0));
  Value *Next = B.loadElem(G, P, MemKind::Int64);
  L.setNext(P, B.andOp(Next, B.constInt(127)));
  L.finish();
  B.ret(L.exitValue(P));
  runPrefetch(*F);
  EXPECT_EQ(countOpcode(*F, Opcode::Prefetch), 0u);
}

// ------------------------------------------------------------------- Schedule
TEST(IrScheduleTest, PreservesBehaviorEverywhere) {
  auto Progs = {makeSumLoop(20), makeArraySum(24), makeBranchy(19, 40),
                makeFpKernel(16), makeNestedGrid(5, 5), makeCallLoop(12)};
  for (auto &M : Progs) {
    // Fresh reference (the module list above is moved-from one by one).
    Interpreter I;
    auto Ref = I.run(*M);
    for (const auto &F : M->functions())
      runIrSchedule(*F);
    EXPECT_TRUE(verifyModule(*M).empty());
    expectSameBehavior(Ref, Interpreter().run(*M), "irsched " + M->name());
  }
}

TEST(IrScheduleTest, KeepsStoreLoadOrder) {
  Module M("memorder");
  GlobalVariable *G = M.createGlobal("g", 8);
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.store(B.constInt(11), G, MemKind::Int64);
  Value *V1 = B.load(G, MemKind::Int64);
  B.store(B.constInt(22), G, MemKind::Int64);
  Value *V2 = B.load(G, MemKind::Int64);
  B.ret(B.add(B.mul(V1, B.constInt(100)), V2));
  runIrSchedule(*F);
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_EQ(Interpreter().run(M).ReturnValue, 11 * 100 + 22);
}

// -------------------------------------------------------------- ReorderBlocks
TEST(ReorderBlocksTest, KeepsEntryFirstAndSemantics) {
  auto Ref = Interpreter().run(*makeBranchy(33, 64));
  auto M = makeBranchy(33, 64);
  Function *F = M->mainFunction();
  runReorderBlocks(*F);
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_EQ(F->blocks().front()->name(), "entry");
  expectSameBehavior(Ref, Interpreter().run(*M), "reorder");
}

// --------------------------------------------------------------------- Inline
TEST(InlineTest, InlinesSmallCallee) {
  auto M = makeCallLoop(20);
  OptimizationConfig C;
  C.InlineFunctions = true;
  C.MaxInlineInsnsAuto = 100;
  C.InlineUnitGrowth = 75;
  C.InlineCallCost = 20;
  auto Ref = Interpreter().run(*makeCallLoop(20));
  EXPECT_TRUE(runInline(*M, C));
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(countOpcode(*M->mainFunction(), Opcode::Call), 0u);
  expectSameBehavior(Ref, Interpreter().run(*M), "inline");
}

TEST(InlineTest, RespectsSizeCap) {
  auto M = makeCallLoop(20);
  OptimizationConfig C;
  C.InlineFunctions = true;
  C.MaxInlineInsnsAuto = 1; // Callee (4 instrs) exceeds the cap.
  C.InlineCallCost = 20;
  EXPECT_FALSE(runInline(*M, C));
  EXPECT_EQ(countOpcode(*M->mainFunction(), Opcode::Call), 1u);
}

TEST(InlineTest, CallCostGatesProfitability) {
  auto M = makeCallLoop(20);
  OptimizationConfig C;
  C.InlineFunctions = true;
  C.MaxInlineInsnsAuto = 150;
  C.InlineCallCost = 0; // 8*0 = 0: nothing is profitable.
  EXPECT_FALSE(runInline(*M, C));
}

TEST(InlineTest, DisabledFlagIsNoOp) {
  auto M = makeCallLoop(5);
  OptimizationConfig C; // InlineFunctions = false.
  EXPECT_FALSE(runInline(*M, C));
}

// ------------------------------------------------------------------- Pipeline
struct PipelineCase {
  const char *Name;
  OptimizationConfig Config;
};

class PipelineEquivalenceTest
    : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEquivalenceTest, AllProgramsBehaveIdentically) {
  const OptimizationConfig &C = GetParam().Config;
  struct Prog {
    const char *Name;
    std::unique_ptr<Module> (*Make)();
  };
  auto Cases = std::vector<std::pair<std::string,
                                     std::function<std::unique_ptr<Module>()>>>{
      {"sum", [] { return makeSumLoop(37); }},
      {"arr", [] { return makeArraySum(41); }},
      {"call", [] { return makeCallLoop(23); }},
      {"branchy", [] { return makeBranchy(27, 80); }},
      {"fp", [] { return makeFpKernel(29); }},
      {"grid", [] { return makeNestedGrid(7, 9); }},
  };
  for (auto &[Name, Make] : Cases) {
    auto RefM = Make();
    auto Ref = Interpreter().run(*RefM);
    auto M = Make();
    runPassPipeline(*M, C);
    ASSERT_TRUE(verifyModule(*M).empty())
        << GetParam().Name << "/" << Name;
    expectSameBehavior(Ref, Interpreter().run(*M),
                       std::string(GetParam().Name) + "/" + Name);
  }
}

OptimizationConfig allOn() {
  OptimizationConfig C = OptimizationConfig::O3();
  C.UnrollLoops = true;
  C.MaxUnrollTimes = 6;
  return C;
}

OptimizationConfig onlyFlag(int Which) {
  OptimizationConfig C;
  switch (Which) {
  case 1:
    C.InlineFunctions = true;
    break;
  case 2:
    C.UnrollLoops = true;
    break;
  case 3:
    C.ScheduleInsns2 = true;
    break;
  case 4:
    C.LoopOptimize = true;
    break;
  case 5:
    C.Gcse = true;
    break;
  case 6:
    C.StrengthReduce = true;
    break;
  case 8:
    C.ReorderBlocks = true;
    break;
  case 9:
    C.PrefetchLoopArrays = true;
    break;
  }
  return C;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineEquivalenceTest,
    ::testing::Values(
        PipelineCase{"O0", OptimizationConfig::O0()},
        PipelineCase{"O2", OptimizationConfig::O2()},
        PipelineCase{"O3", OptimizationConfig::O3()},
        PipelineCase{"AllOn", allOn()},
        PipelineCase{"OnlyInline", onlyFlag(1)},
        PipelineCase{"OnlyUnroll", onlyFlag(2)},
        PipelineCase{"OnlySched", onlyFlag(3)},
        PipelineCase{"OnlyLoopOpt", onlyFlag(4)},
        PipelineCase{"OnlyGcse", onlyFlag(5)},
        PipelineCase{"OnlyStrength", onlyFlag(6)},
        PipelineCase{"OnlyReorder", onlyFlag(8)},
        PipelineCase{"OnlyPrefetch", onlyFlag(9)}),
    [](const ::testing::TestParamInfo<PipelineCase> &Info) {
      return std::string(Info.param.Name);
    });

} // namespace

namespace {

// ------------------------------------------------- StrengthReduce + LFTR
TEST(LftrTest, EliminatesInductionVariable) {
  // Loop where the IV is used only for addressing and the exit test:
  // after strength reduction + LFTR + DCE only the reduced recurrence
  // should remain (one phi instead of two).
  Module M("lftr");
  GlobalVariable *G = M.createGlobal("a", 128 * 8);
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(128), 1, "l");
  B.storeElem(B.constInt(5), G, L.indVar(), MemKind::Int64);
  L.finish();
  B.ret(B.constInt(0));

  auto CountPhis = [&]() {
    unsigned N = 0;
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        N += I->opcode() == Opcode::Phi;
    return N;
  };
  runConstantFold(*F);
  runDeadCodeElim(*F); // Drop the unused join phis first.
  unsigned PhisBefore = CountPhis();
  EXPECT_TRUE(runStrengthReduce(*F));
  runConstantFold(*F);
  runDeadCodeElim(*F);
  EXPECT_TRUE(verifyFunction(*F).empty());
  // LFTR retargets the exit test onto the byte-offset recurrence, so the
  // original IV dies: the phi count must not grow.
  EXPECT_LE(CountPhis(), PhisBefore);
  // And no multiply remains in the loop.
  unsigned Muls = 0;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      Muls += I->opcode() == Opcode::Mul;
  EXPECT_EQ(Muls, 0u);
  InterpResult R = Interpreter().run(M);
  ASSERT_FALSE(R.Trapped);
}

TEST(LftrTest, KeepsIvWhenUsedAfterLoop) {
  // The IV's final value is returned: LFTR must not break it.
  Module M("lftr2");
  GlobalVariable *G = M.createGlobal("a", 64 * 8);
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(50), 1, "l");
  B.storeElem(L.indVar(), G, L.indVar(), MemKind::Int64);
  L.finish();
  B.ret(L.exitValue(L.indVar()));
  int64_t Before = Interpreter().run(M).ReturnValue;
  runStrengthReduce(*F);
  runConstantFold(*F);
  runDeadCodeElim(*F);
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_EQ(Interpreter().run(M).ReturnValue, Before);
  EXPECT_EQ(Before, 50);
}

TEST(LftrTest, NegativeStrideSemanticsPreserved) {
  Module M("lftr3");
  GlobalVariable *G = M.createGlobal("a", 64 * 8);
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(63), B.constInt(-1), -1, "down");
  B.storeElem(B.constInt(9), G, L.indVar(), MemKind::Int64);
  L.finish();
  LoopBuilder L2(B, B.constInt(0), B.constInt(64), 1, "sum");
  Value *Acc = L2.carried(B.constInt(0));
  L2.setNext(Acc, B.add(Acc, B.loadElem(G, L2.indVar(), MemKind::Int64)));
  L2.finish();
  B.ret(L2.exitValue(Acc));
  int64_t Before = Interpreter().run(M).ReturnValue;
  EXPECT_EQ(Before, 64 * 9);
  runStrengthReduce(*F);
  runConstantFold(*F);
  runDeadCodeElim(*F);
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_EQ(Interpreter().run(M).ReturnValue, Before);
}

} // namespace

namespace {

// ------------------------------------------------------------- IfConvert
TEST(IfConvertTest, ConvertsDiamondToSelects) {
  auto Make = [] { return makeBranchy(27, 80); };
  auto Ref = Interpreter().run(*Make());
  auto M = Make();
  Function *F = M->mainFunction();
  unsigned BranchesBefore = countOpcode(*F, Opcode::Br);
  OptimizationConfig C;
  C.IfConvert = true;
  C.MaxIfConvertInsns = 8;
  EXPECT_TRUE(runIfConvert(*F, C));
  runConstantFold(*F);
  runSimplifyCfg(*F);
  runDeadCodeElim(*F);
  EXPECT_TRUE(verifyFunction(*F).empty());
  // The odd/even diamond becomes selects; one conditional branch gone.
  EXPECT_LT(countOpcode(*F, Opcode::Br), BranchesBefore);
  EXPECT_GE(countOpcode(*F, Opcode::Select), 1u);
  expectSameBehavior(Ref, Interpreter().run(*M), "ifconvert branchy");
}

TEST(IfConvertTest, RespectsSpeculationBudget) {
  auto M = makeBranchy(27, 40);
  Function *F = M->mainFunction();
  OptimizationConfig C;
  C.IfConvert = true;
  C.MaxIfConvertInsns = 0; // Nothing may be speculated.
  EXPECT_FALSE(runIfConvert(*F, C));
}

TEST(IfConvertTest, RefusesSideEffectingBlocks) {
  // A diamond whose arms store to memory must NOT be converted
  // (speculating a store is wrong).
  Module M("ifc");
  GlobalVariable *G = M.createGlobal("g", 16);
  Function *F = M.createFunction("main", Type::I64, {Type::I64}, {"x"});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  BasicBlock *J = F->createBlock("j");
  B.setInsertPoint(Entry);
  B.br(F->arg(0), T, E);
  B.setInsertPoint(T);
  B.store(B.constInt(1), G, MemKind::Int64);
  B.jmp(J);
  B.setInsertPoint(E);
  B.store(B.constInt(2), G, MemKind::Int64);
  B.jmp(J);
  B.setInsertPoint(J);
  B.ret(B.load(G, MemKind::Int64));
  OptimizationConfig C;
  C.IfConvert = true;
  C.MaxIfConvertInsns = 12;
  EXPECT_FALSE(runIfConvert(*F, C));
}

TEST(IfConvertTest, PreservesAllWorkloads) {
  for (const WorkloadSpec &Spec : allWorkloads()) {
    auto Ref = Interpreter().run(*Spec.Build(InputSet::Test));
    auto M = Spec.Build(InputSet::Test);
    OptimizationConfig C = OptimizationConfig::O2();
    C.IfConvert = true;
    C.MaxIfConvertInsns = 10;
    runPassPipeline(*M, C);
    ASSERT_TRUE(verifyModule(*M).empty()) << Spec.Name;
    InterpResult Got = Interpreter().run(*M);
    ASSERT_FALSE(Got.Trapped) << Spec.Name << ": " << Got.TrapMessage;
    EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue) << Spec.Name;
  }
}

// --------------------------------------------------------------- TailDup
TEST(TailDupTest, DuplicatesSmallJoin) {
  // Two paths converge on a tiny return block: tracing duplicates it.
  Module M("td");
  Function *F = M.createFunction("main", Type::I64, {Type::I64}, {"x"});
  IRBuilder B(M);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  BasicBlock *J = F->createBlock("join");
  B.setInsertPoint(Entry);
  B.br(F->arg(0), T, E);
  B.setInsertPoint(T);
  Value *VT = B.add(F->arg(0), B.constInt(10));
  B.jmp(J);
  B.setInsertPoint(E);
  Value *VE = B.mul(F->arg(0), B.constInt(3));
  B.jmp(J);
  B.setInsertPoint(J);
  Instruction *Phi = B.phi(Type::I64);
  Phi->addPhiIncoming(VT, T);
  Phi->addPhiIncoming(VE, E);
  B.emit(Phi);
  B.ret(Phi);
  ASSERT_TRUE(verifyModule(M).empty());

  size_t BlocksBefore = F->blocks().size();
  OptimizationConfig C;
  C.Tracer = true;
  C.TailDupInsns = 8;
  EXPECT_TRUE(runTailDup(*F, C));
  EXPECT_TRUE(verifyFunction(*F).empty());
  EXPECT_GT(F->blocks().size(), BlocksBefore);
}

TEST(TailDupTest, PreservesWorkloadSemantics) {
  for (const char *Name : {"bzip2", "vpr", "mcf"}) {
    auto Ref = Interpreter().run(*buildWorkload(Name, InputSet::Test));
    auto M = buildWorkload(Name, InputSet::Test);
    OptimizationConfig C = OptimizationConfig::O2();
    C.Tracer = true;
    C.TailDupInsns = 12;
    runPassPipeline(*M, C);
    ASSERT_TRUE(verifyModule(*M).empty()) << Name;
    InterpResult Got = Interpreter().run(*M);
    ASSERT_FALSE(Got.Trapped) << Name << ": " << Got.TrapMessage;
    EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue) << Name;
  }
}

TEST(TailDupTest, RespectsGrowthBudget) {
  auto M = buildWorkload("bzip2", InputSet::Test);
  Function *F = M->mainFunction();
  OptimizationConfig C;
  C.Tracer = true;
  C.TailDupInsns = 0; // No block fits the budget.
  EXPECT_FALSE(runTailDup(*F, C));
}

} // namespace

namespace {

TEST(PipelineVerifyTest, VerifyPassesKnobRunsCleanly) {
  ::setenv("MSEM_VERIFY_PASSES", "1", 1);
  auto M = makeCallLoop(10);
  OptimizationConfig C = OptimizationConfig::O3();
  C.UnrollLoops = true;
  runPassPipeline(*M, C); // Would fatalError on any verifier breakage.
  ::unsetenv("MSEM_VERIFY_PASSES");
  EXPECT_TRUE(verifyModule(*M).empty());
}

} // namespace
