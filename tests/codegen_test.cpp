//===- tests/codegen_test.cpp - Code generation and execution tests -----------===//
//
// The golden invariant: for every program and every optimization config,
// compiled machine code observed by the Executor behaves exactly like the
// IR interpreter (return value and Emit stream).
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"
#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "isa/Executor.h"
#include "opt/Passes.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace msem;
using namespace msem::testing;

namespace {

void expectMatchesInterpreter(Module &M, const CodeGenOptions &Opts,
                              const std::string &What) {
  InterpResult Ref = Interpreter().run(M);
  ASSERT_FALSE(Ref.Trapped) << What << ": interpreter trapped";
  MachineProgram Prog = compileToProgram(M, Opts);
  Executor Exec(Prog);
  ExecResult Got = Exec.runToCompletion();
  ASSERT_FALSE(Got.Trapped) << What << ": " << Got.TrapMessage << "\n"
                            << Prog.disassemble();
  EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue) << What;
  ASSERT_EQ(Ref.Output.size(), Got.Output.size()) << What;
  for (size_t I = 0; I < Ref.Output.size(); ++I)
    EXPECT_TRUE(Ref.Output[I] == Got.Output[I]) << What << " output " << I;
}

TEST(CodegenTest, SumLoopO0) {
  auto M = makeSumLoop(25);
  expectMatchesInterpreter(*M, CodeGenOptions(), "sum O0");
}

TEST(CodegenTest, ArraySumO0) {
  auto M = makeArraySum(40);
  expectMatchesInterpreter(*M, CodeGenOptions(), "arr O0");
}

TEST(CodegenTest, CallLoopO0) {
  auto M = makeCallLoop(30);
  expectMatchesInterpreter(*M, CodeGenOptions(), "call O0");
}

TEST(CodegenTest, BranchyO0) {
  auto M = makeBranchy(27, 60);
  expectMatchesInterpreter(*M, CodeGenOptions(), "branchy O0");
}

TEST(CodegenTest, FpKernelO0) {
  auto M = makeFpKernel(48);
  expectMatchesInterpreter(*M, CodeGenOptions(), "fp O0");
}

TEST(CodegenTest, NestedGridO0) {
  auto M = makeNestedGrid(9, 11);
  expectMatchesInterpreter(*M, CodeGenOptions(), "grid O0");
}

TEST(CodegenTest, OmitFramePointerVariants) {
  for (bool Omit : {false, true}) {
    auto M = makeCallLoop(20);
    CodeGenOptions Opts;
    Opts.OmitFramePointer = Omit;
    expectMatchesInterpreter(*M, Opts,
                             Omit ? "call omit-fp" : "call keep-fp");
  }
}

TEST(CodegenTest, PostRaScheduleIsSemanticsPreserving) {
  for (auto Make : {makeArraySum, makeFpKernel}) {
    auto M = Make(33);
    CodeGenOptions Opts;
    Opts.PostRaSchedule = true;
    expectMatchesInterpreter(*M, Opts, "post-ra sched");
  }
}

TEST(CodegenTest, SpillStressManyLiveValues) {
  // More simultaneously live values than allocatable registers.
  Module M("spill");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  GlobalVariable *G = M.createGlobal("seed", 8 * 64);
  std::vector<Value *> Vals;
  for (int I = 0; I < 48; ++I) {
    B.storeElem(B.constInt(I * 7 + 1), G, B.constInt(I), MemKind::Int64);
    Vals.push_back(B.loadElem(G, B.constInt(I), MemKind::Int64));
  }
  // Combine them in reverse so everything stays live across the block.
  Value *Acc = B.constInt(0);
  for (int I = 47; I >= 0; --I)
    Acc = B.add(B.mul(Acc, B.constInt(3)), Vals[I]);
  B.emit(Acc);
  B.ret(Acc);
  ASSERT_TRUE(verifyModule(M).empty());
  expectMatchesInterpreter(M, CodeGenOptions(), "spill stress");
}

TEST(CodegenTest, FpSpillStress) {
  Module M("fpspill");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  std::vector<Value *> Vals;
  for (int I = 0; I < 40; ++I)
    Vals.push_back(B.fmul(B.constFloat(I + 0.5), B.constFloat(1.25)));
  Value *Acc = B.constFloat(0.0);
  for (int I = 39; I >= 0; --I)
    Acc = B.fadd(Acc, Vals[static_cast<size_t>(I)]);
  B.ret(B.fpToSi(Acc));
  expectMatchesInterpreter(M, CodeGenOptions(), "fp spill");
}

TEST(CodegenTest, DeepCallChain) {
  // f3(x) = x+1; f2 = f3(x)*2; f1 = f2(x)+f3(x); main sums f1 over a loop.
  Module M("deep");
  Function *F3 = M.createFunction("f3", Type::I64, {Type::I64}, {"x"});
  {
    IRBuilder B(M);
    B.setInsertPoint(F3->createBlock("entry"));
    B.ret(B.add(F3->arg(0), B.constInt(1)));
  }
  Function *F2 = M.createFunction("f2", Type::I64, {Type::I64}, {"x"});
  {
    IRBuilder B(M);
    B.setInsertPoint(F2->createBlock("entry"));
    Value *T = B.call(F3, {F2->arg(0)});
    B.ret(B.mul(T, B.constInt(2)));
  }
  Function *F1 = M.createFunction("f1", Type::I64, {Type::I64}, {"x"});
  {
    IRBuilder B(M);
    B.setInsertPoint(F1->createBlock("entry"));
    Value *A = B.call(F2, {F1->arg(0)});
    Value *Bv = B.call(F3, {F1->arg(0)});
    B.ret(B.add(A, Bv));
  }
  Function *Main = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(Main->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(10), 1, "l");
  Value *Acc = L.carried(B.constInt(0));
  Value *R = B.call(F1, {L.indVar()});
  L.setNext(Acc, B.add(Acc, R));
  L.finish();
  B.ret(L.exitValue(Acc));
  ASSERT_TRUE(verifyModule(M).empty());
  expectMatchesInterpreter(M, CodeGenOptions(), "deep calls");
}

TEST(CodegenTest, ManyArguments) {
  Module M("args8");
  std::vector<Type> ArgTys(8, Type::I64);
  Function *F = M.createFunction("sum8", Type::I64, ArgTys);
  {
    IRBuilder B(M);
    B.setInsertPoint(F->createBlock("entry"));
    Value *S = F->arg(0);
    for (unsigned I = 1; I < 8; ++I)
      S = B.add(S, F->arg(I));
    B.ret(S);
  }
  Function *Main = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(Main->createBlock("entry"));
  std::vector<Value *> Args;
  for (int I = 1; I <= 8; ++I)
    Args.push_back(B.constInt(I * I));
  B.ret(B.call(F, Args));
  expectMatchesInterpreter(M, CodeGenOptions(), "8 args");
}

TEST(CodegenTest, MixedIntFpArguments) {
  Module M("mixargs");
  Function *F = M.createFunction(
      "mix", Type::F64, {Type::I64, Type::F64, Type::I64, Type::F64});
  {
    IRBuilder B(M);
    B.setInsertPoint(F->createBlock("entry"));
    Value *A = B.siToFp(F->arg(0));
    Value *C = B.siToFp(F->arg(2));
    Value *S = B.fadd(B.fmul(A, F->arg(1)), B.fmul(C, F->arg(3)));
    B.ret(S);
  }
  Function *Main = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(Main->createBlock("entry"));
  Value *R = B.call(F, {B.constInt(2), B.constFloat(1.5), B.constInt(3),
                        B.constFloat(2.5)});
  B.ret(B.fpToSi(R)); // 2*1.5 + 3*2.5 = 10.5 -> 10
  InterpResult Ref = Interpreter().run(M);
  EXPECT_EQ(Ref.ReturnValue, 10);
  expectMatchesInterpreter(M, CodeGenOptions(), "mixed args");
}

// Full matrix: every pipeline config x every program, compiled and executed.
struct FullCase {
  const char *Name;
  OptimizationConfig Opt;
  bool OmitFp;
  bool PostRa;
};

class FullCompileTest : public ::testing::TestWithParam<FullCase> {};

TEST_P(FullCompileTest, CompiledCodeMatchesInterpreter) {
  const FullCase &FC = GetParam();
  auto Cases =
      std::vector<std::pair<std::string,
                            std::function<std::unique_ptr<Module>()>>>{
          {"sum", [] { return makeSumLoop(31); }},
          {"arr", [] { return makeArraySum(37); }},
          {"call", [] { return makeCallLoop(17); }},
          {"branchy", [] { return makeBranchy(41, 70); }},
          {"fp", [] { return makeFpKernel(21); }},
          {"grid", [] { return makeNestedGrid(6, 8); }},
      };
  for (auto &[Name, Make] : Cases) {
    auto RefM = Make();
    InterpResult Ref = Interpreter().run(*RefM);
    auto M = Make();
    runPassPipeline(*M, FC.Opt);
    ASSERT_TRUE(verifyModule(*M).empty()) << FC.Name << "/" << Name;
    CodeGenOptions Opts;
    Opts.OmitFramePointer = FC.OmitFp;
    Opts.PostRaSchedule = FC.PostRa;
    MachineProgram Prog = compileToProgram(*M, Opts);
    ExecResult Got = Executor(Prog).runToCompletion();
    ASSERT_FALSE(Got.Trapped)
        << FC.Name << "/" << Name << ": " << Got.TrapMessage;
    EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue) << FC.Name << "/" << Name;
    ASSERT_EQ(Ref.Output.size(), Got.Output.size())
        << FC.Name << "/" << Name;
    for (size_t I = 0; I < Ref.Output.size(); ++I)
      EXPECT_TRUE(Ref.Output[I] == Got.Output[I])
          << FC.Name << "/" << Name << " output " << I;
  }
}

OptimizationConfig everythingOn() {
  OptimizationConfig C = OptimizationConfig::O3();
  C.UnrollLoops = true;
  C.MaxUnrollTimes = 5;
  return C;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FullCompileTest,
    ::testing::Values(
        FullCase{"O0_plain", OptimizationConfig::O0(), false, false},
        FullCase{"O2_plain", OptimizationConfig::O2(), false, true},
        FullCase{"O3_omitfp", OptimizationConfig::O3(), true, true},
        FullCase{"AllOn_omitfp", everythingOn(), true, true},
        FullCase{"AllOn_keepfp", everythingOn(), false, false},
        FullCase{"UnrollOnly", [] {
                   OptimizationConfig C;
                   C.UnrollLoops = true;
                   C.MaxUnrollTimes = 8;
                   return C;
                 }(),
                 false, false}),
    [](const ::testing::TestParamInfo<FullCase> &Info) {
      return std::string(Info.param.Name);
    });

TEST(LinkerTest, DisassemblyListsFunctions) {
  auto M = makeCallLoop(3);
  MachineProgram Prog = compileToProgram(*M, CodeGenOptions());
  std::string Dis = Prog.disassemble();
  EXPECT_NE(Dis.find("main:"), std::string::npos);
  EXPECT_NE(Dis.find("madd:"), std::string::npos);
  EXPECT_NE(Dis.find("jal"), std::string::npos);
}

TEST(LinkerTest, StartupStubCallsMainThenHalts) {
  auto M = makeSumLoop(2);
  MachineProgram Prog = compileToProgram(*M, CodeGenOptions());
  ASSERT_GE(Prog.Code.size(), 2u);
  EXPECT_EQ(Prog.Code[0].Op, MOp::JAL);
  EXPECT_EQ(Prog.Code[1].Op, MOp::HALT);
}

TEST(ExecutorTest, ReportsInstructionCount) {
  auto M = makeSumLoop(10);
  MachineProgram Prog = compileToProgram(*M, CodeGenOptions());
  ExecResult R = Executor(Prog).runToCompletion();
  EXPECT_GT(R.InstructionsExecuted, 10u);
  EXPECT_FALSE(R.Trapped);
}

TEST(ExecutorTest, BudgetTrap) {
  auto M = makeSumLoop(1000000);
  MachineProgram Prog = compileToProgram(*M, CodeGenOptions());
  Executor Exec(Prog, /*MaxInstructions=*/1000);
  ExecResult R = Exec.runToCompletion();
  EXPECT_TRUE(R.Trapped);
}

} // namespace

namespace {

// ------------------------------------------------------- Copy coalescing
TEST(CoalescingTest, PhiCopiesCoalesceWhenValueDiesInLoop) {
  // A loop whose carried value is NOT used after the loop: the
  // double-copy phi lowering must coalesce down to one MOV per carried
  // value on the back edge.
  Module M("tight");
  GlobalVariable *G = M.createGlobal("out", 8);
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(100), 1, "l");
  B.storeElem(L.indVar(), G, B.constInt(0), MemKind::Int64);
  L.finish();
  B.ret(B.load(G, MemKind::Int64));
  runPassPipeline(M, OptimizationConfig::O0()); // Cleanup: drop dead join phis.
  MachineProgram Prog = compileToProgram(M, CodeGenOptions());
  size_t Movs = 0;
  for (const MachineInstr &MI : Prog.Code)
    Movs += MI.Op == MOp::MOV || MI.Op == MOp::FMOV;
  // One carried value (the induction variable) -> at most one MOV on the
  // back edge plus the zero-trip entry path.
  EXPECT_LE(Movs, 2u) << Prog.disassemble();
}

TEST(CoalescingTest, ExitLiveValuesStayConservative) {
  // When the carried values ARE used after the loop (join phis), the
  // envelope coalescer must keep enough copies to stay correct; this
  // bounds the cost rather than the exact shape.
  auto M = msem::testing::makeSumLoop(100);
  MachineProgram Prog = compileToProgram(*M, CodeGenOptions());
  size_t Movs = 0;
  for (const MachineInstr &MI : Prog.Code)
    Movs += MI.Op == MOp::MOV || MI.Op == MOp::FMOV;
  EXPECT_LE(Movs, 12u) << Prog.disassemble();
}

TEST(CoalescingTest, NoSpillsInSimpleLoops) {
  auto M = msem::testing::makeArraySum(64);
  MachineProgram Prog = compileToProgram(*M, CodeGenOptions());
  size_t SpillOps = 0;
  for (const MachineInstr &MI : Prog.Code)
    if ((MI.isLoad() || MI.isStore()) && MI.Rs1 == reg::SP)
      ++SpillOps;
  EXPECT_LE(SpillOps, 2u) << Prog.disassemble();
}

TEST(CoalescingTest, SwapPatternStaysCorrect) {
  // Classic swap: two phis exchanging values each iteration. Coalescing
  // must not merge them into one register.
  Module M("swap");
  Function *F = M.createFunction("main", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  LoopBuilder L(B, B.constInt(0), B.constInt(9), 1, "l");
  Value *A = L.carried(B.constInt(1));
  Value *Bv = L.carried(B.constInt(100));
  L.setNext(A, Bv);
  L.setNext(Bv, B.add(A, Bv));
  L.finish();
  Value *R = B.add(B.mul(L.exitValue(A), B.constInt(100000)),
                   L.exitValue(Bv));
  B.emit(R);
  B.ret(R);
  ASSERT_TRUE(verifyModule(M).empty());
  InterpResult Ref = Interpreter().run(M);
  MachineProgram Prog = compileToProgram(M, CodeGenOptions());
  ExecResult Got = Executor(Prog).runToCompletion();
  ASSERT_FALSE(Got.Trapped);
  EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue);
}

} // namespace
