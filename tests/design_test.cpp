//===- tests/design_test.cpp - Parameter space and DoE tests --------------------===//

#include "design/Doe.h"
#include "design/ParameterSpace.h"
#include "linalg/Solve.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace msem;

namespace {

TEST(ParameterSpaceTest, PaperSpaceMatchesTables) {
  ParameterSpace S = ParameterSpace::paperSpace();
  ASSERT_EQ(S.size(), 25u);
  EXPECT_EQ(S.numCompilerParams(), 14u);

  // Table 1 spot checks.
  const Parameter &Inline = S.param(S.indexOf("max-inline-insns-auto"));
  EXPECT_EQ(Inline.low(), 50);
  EXPECT_EQ(Inline.high(), 150);
  EXPECT_EQ(Inline.numLevels(), 11u);
  const Parameter &CallCost = S.param(S.indexOf("inline-call-cost"));
  EXPECT_EQ(CallCost.numLevels(), 9u);
  const Parameter &UnrollInsns = S.param(S.indexOf("max-unrolled-insns"));
  EXPECT_EQ(UnrollInsns.numLevels(), 21u);

  // Table 2 spot checks.
  const Parameter &Bpred = S.param(S.indexOf("bpred-size"));
  EXPECT_EQ(Bpred.numLevels(), 5u);
  EXPECT_EQ(Bpred.Kind, ParamKind::LogDiscrete);
  const Parameter &L2 = S.param(S.indexOf("ul2-size"));
  EXPECT_EQ(L2.numLevels(), 6u);
  const Parameter &Mem = S.param(S.indexOf("memory-latency"));
  EXPECT_EQ(Mem.numLevels(), 21u);
  const Parameter &L2Lat = S.param(S.indexOf("ul2-latency"));
  EXPECT_EQ(L2Lat.numLevels(), 11u);
}

TEST(ParameterSpaceTest, EncodeDecodeRoundTrip) {
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(42);
  for (int Trial = 0; Trial < 50; ++Trial) {
    DesignPoint P = S.randomPoint(R);
    std::vector<double> E = S.encode(P);
    for (double V : E) {
      EXPECT_GE(V, -1.0);
      EXPECT_LE(V, 1.0);
    }
    EXPECT_EQ(S.decode(E), P);
  }
}

TEST(ParameterSpaceTest, LogTransformIsEquispaced) {
  ParameterSpace S = ParameterSpace::paperSpace();
  const Parameter &L2 = S.param(S.indexOf("ul2-size"));
  // Power-of-two levels must be evenly spaced after encoding.
  double Prev = L2.encode(L2.Levels[0]);
  double Step0 = L2.encode(L2.Levels[1]) - Prev;
  for (size_t I = 1; I < L2.numLevels(); ++I) {
    double Cur = L2.encode(L2.Levels[I]);
    EXPECT_NEAR(Cur - Prev, Step0, 1e-9);
    Prev = Cur;
  }
}

TEST(ParameterSpaceTest, ConfigBridgesRoundTrip) {
  ParameterSpace S = ParameterSpace::paperSpace();
  OptimizationConfig Opt = OptimizationConfig::O3();
  Opt.MaxUnrollTimes = 9;
  MachineConfig Mach = MachineConfig::aggressive();
  DesignPoint P = S.fromConfigs(Opt, Mach);
  EXPECT_EQ(S.toOptimizationConfig(P), Opt);
  EXPECT_EQ(S.toMachineConfig(P), Mach);
}

TEST(ParameterSpaceTest, FreezeMachineOverwritesTail) {
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(7);
  DesignPoint P = S.randomPoint(R);
  S.freezeMachine(P, MachineConfig::constrained());
  EXPECT_EQ(S.toMachineConfig(P), MachineConfig::constrained());
}

TEST(DoeTest, LatinHypercubeCoversLevels) {
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(3);
  auto Points = generateLatinHypercube(S, 100, R);
  ASSERT_EQ(Points.size(), 100u);
  // Binary parameters must be split ~50/50.
  size_t Ones = 0;
  for (const DesignPoint &P : Points)
    Ones += P[0] != 0;
  EXPECT_EQ(Ones, 50u);
  // Every level of an 11-level parameter appears at least several times.
  size_t Idx = S.indexOf("max-inline-insns-auto");
  std::set<int64_t> Seen;
  for (const DesignPoint &P : Points)
    Seen.insert(P[Idx]);
  EXPECT_EQ(Seen.size(), 11u);
}

TEST(DoeTest, ExpansionColumnCounts) {
  EXPECT_EQ(expansionColumns(ExpansionKind::Linear, 25), 26u);
  EXPECT_EQ(expansionColumns(ExpansionKind::LinearWith2FI, 25),
            1u + 25u + 300u);
  std::vector<double> X{0.5, -1.0};
  auto Lin = expandRow(ExpansionKind::Linear, X);
  ASSERT_EQ(Lin.size(), 3u);
  EXPECT_DOUBLE_EQ(Lin[0], 1.0);
  auto Fi = expandRow(ExpansionKind::LinearWith2FI, X);
  ASSERT_EQ(Fi.size(), 4u);
  EXPECT_DOUBLE_EQ(Fi[3], -0.5);
}

double logDetOf(const ParameterSpace &S,
                const std::vector<DesignPoint> &Candidates,
                const std::vector<size_t> &Sel, ExpansionKind Kind) {
  std::vector<DesignPoint> Pts;
  for (size_t I : Sel)
    Pts.push_back(Candidates[I]);
  Matrix X = expandMatrix(Kind, S, Pts);
  Matrix Info = X.gram();
  Info.addToDiagonal(1e-6);
  Cholesky C(Info);
  return C.ok() ? C.logDeterminant() : -1e300;
}

TEST(DoeTest, DOptimalBeatsRandomSelection) {
  ParameterSpace S = ParameterSpace::paperSpace();
  Rng R(11);
  auto Candidates = generateRandomCandidates(S, 400, R);

  DOptimalOptions Opt;
  Opt.DesignSize = 60;
  Opt.Expansion = ExpansionKind::Linear;
  DOptimalResult Res = selectDOptimal(S, Candidates, Opt);
  ASSERT_EQ(Res.Selected.size(), 60u);

  // Average log-det of random picks of the same size.
  double RandomBest = -1e300;
  for (int Trial = 0; Trial < 5; ++Trial) {
    std::vector<size_t> Pick;
    std::vector<size_t> All(Candidates.size());
    for (size_t I = 0; I < All.size(); ++I)
      All[I] = I;
    R.shuffle(All);
    Pick.assign(All.begin(), All.begin() + 60);
    RandomBest = std::max(
        RandomBest, logDetOf(S, Candidates, Pick, ExpansionKind::Linear));
  }
  EXPECT_GT(Res.LogDetInformation, RandomBest);
}

TEST(DoeTest, DOptimalSelectsDistinctPoints) {
  ParameterSpace S = ParameterSpace::compilerSpace();
  Rng R(5);
  auto Candidates = generateLatinHypercube(S, 300, R);
  DOptimalOptions Opt;
  Opt.DesignSize = 40;
  DOptimalResult Res = selectDOptimal(S, Candidates, Opt);
  std::set<size_t> Unique(Res.Selected.begin(), Res.Selected.end());
  EXPECT_EQ(Unique.size(), Res.Selected.size());
}

TEST(DoeTest, AugmentationKeepsPreselected) {
  ParameterSpace S = ParameterSpace::compilerSpace();
  Rng R(9);
  auto Candidates = generateLatinHypercube(S, 300, R);
  DOptimalOptions Opt;
  Opt.DesignSize = 30;
  DOptimalResult First = selectDOptimal(S, Candidates, Opt);
  Opt.DesignSize = 50;
  DOptimalResult Second = selectDOptimal(S, Candidates, Opt, First.Selected);
  ASSERT_EQ(Second.Selected.size(), 50u);
  for (size_t I = 0; I < First.Selected.size(); ++I)
    EXPECT_EQ(Second.Selected[I], First.Selected[I])
        << "preselected point was exchanged";
  // More points never reduce the information determinant.
  EXPECT_GE(Second.LogDetInformation, First.LogDetInformation);
}

TEST(DoeTest, DeterministicGivenSeed) {
  ParameterSpace S = ParameterSpace::compilerSpace();
  Rng R1(21), R2(21);
  auto C1 = generateLatinHypercube(S, 200, R1);
  auto C2 = generateLatinHypercube(S, 200, R2);
  EXPECT_EQ(C1, C2);
  DOptimalOptions Opt;
  Opt.DesignSize = 25;
  EXPECT_EQ(selectDOptimal(S, C1, Opt).Selected,
            selectDOptimal(S, C2, Opt).Selected);
}

} // namespace

namespace {

TEST(ExtendedSpaceTest, LayoutAndRoundTrip) {
  ParameterSpace S = ParameterSpace::extendedSpace();
  EXPECT_EQ(S.size(), 29u);
  EXPECT_EQ(S.numCompilerParams(), 18u);
  EXPECT_EQ(S.param(14).Name, "fif-convert");
  EXPECT_EQ(S.param(17).Name, "tail-dup-insns");
  EXPECT_EQ(S.param(18).Name, "issue-width");

  OptimizationConfig Opt = OptimizationConfig::O3();
  Opt.IfConvert = true;
  Opt.MaxIfConvertInsns = 8;
  Opt.Tracer = true;
  Opt.TailDupInsns = 12;
  MachineConfig Mach = MachineConfig::constrained();
  DesignPoint P = S.fromConfigs(Opt, Mach);
  EXPECT_EQ(S.toOptimizationConfig(P), Opt);
  EXPECT_EQ(S.toMachineConfig(P), Mach);

  // Paper space must ignore/zero the extension fields.
  ParameterSpace Paper = ParameterSpace::paperSpace();
  OptimizationConfig Plain = OptimizationConfig::O3();
  DesignPoint PP = Paper.fromConfigs(Plain, Mach);
  EXPECT_EQ(Paper.toOptimizationConfig(PP), Plain);
}

TEST(ExtendedSpaceTest, EncodeDecodeRoundTrip) {
  ParameterSpace S = ParameterSpace::extendedSpace();
  Rng R(77);
  for (int Trial = 0; Trial < 30; ++Trial) {
    DesignPoint P = S.randomPoint(R);
    EXPECT_EQ(S.decode(S.encode(P)), P);
  }
}

} // namespace
