//===- tests/introspection_test.cpp - Live introspection plane tests --------===//
//
// The observability contract of the stats server, the telemetry endpoint
// registrations, the sampling profiler and the msem_report CLI:
//
//   - StatsServer routing: built-ins, registered handlers, 404/405, HEAD.
//   - Scoped providers: register, compose into /statusz and /healthz,
//     deregister on destruction (token-checked).
//   - A live loopback socket round-trip against a private server instance.
//   - /metrics serves a document validateOpenMetrics accepts.
//   - A running campaign's /healthz reflects checkpoint progress (probed
//     from the OnCheckpointWritten hook, while the provider is live).
//   - The sampling profiler attributes >= 90% of samples from a busy
//     span-instrumented loop to the named span stack.
//   - msem_report --check / --html / --profile over a traced campaign's
//     events file, exercised as a subprocess (MSEM_REPORT_BIN).
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "campaign/Experiment.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/StatsServer.h"
#include "support/ThreadPool.h"
#include "telemetry/Introspection.h"
#include "telemetry/OpenMetrics.h"
#include "telemetry/SampleProfiler.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

using namespace msem;

namespace {

StatsRequest makeRequest(const std::string &Method, const std::string &Path,
                         const std::string &Query = "") {
  StatsRequest R;
  R.Method = Method;
  R.Path = Path;
  R.Query = Query;
  return R;
}


/// Minimal HTTP/1.0-style GET against 127.0.0.1:Port; returns the whole
/// response (headers + body), or "" on connect failure.
std::string httpGet(int Port, const std::string &Target,
                    const char *Method = "GET") {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return "";
  }
  std::string Req = formatString("%s %s HTTP/1.1\r\nHost: localhost\r\n"
                                 "Connection: close\r\n\r\n",
                                 Method, Target.c_str());
  ::send(Fd, Req.data(), Req.size(), MSG_NOSIGNAL);
  std::string Out;
  char Chunk[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Chunk, sizeof(Chunk), 0)) > 0)
    Out.append(Chunk, static_cast<size_t>(N));
  ::close(Fd);
  return Out;
}

std::string bodyOf(const std::string &Response) {
  size_t Pos = Response.find("\r\n\r\n");
  return Pos == std::string::npos ? "" : Response.substr(Pos + 4);
}

//===----------------------------------------------------------------------===//
// Routing (no socket)
//===----------------------------------------------------------------------===//

TEST(StatsServerDispatch, BuiltinsAndErrors) {
  StatsResponse Index = StatsServer::dispatch(makeRequest("GET", "/"));
  EXPECT_EQ(Index.Status, 200);
  EXPECT_NE(Index.Body.find("/healthz"), std::string::npos);

  StatsResponse Health = StatsServer::dispatch(makeRequest("GET", "/healthz"));
  EXPECT_EQ(Health.Status, 200);
  EXPECT_NE(Health.Body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(Health.ContentType, "application/json; charset=utf-8");

  StatsResponse Status = StatsServer::dispatch(makeRequest("GET", "/statusz"));
  EXPECT_EQ(Status.Status, 200);
  EXPECT_NE(Status.Body.find("build:"), std::string::npos);
  EXPECT_NE(Status.Body.find("uptime_seconds:"), std::string::npos);

  EXPECT_EQ(StatsServer::dispatch(makeRequest("GET", "/nope")).Status, 404);
  EXPECT_EQ(StatsServer::dispatch(makeRequest("POST", "/healthz")).Status, 405);
  EXPECT_EQ(StatsServer::dispatch(makeRequest("PUT", "/")).Status, 405);
  // HEAD routes like GET (the server suppresses the body on the wire).
  EXPECT_EQ(StatsServer::dispatch(makeRequest("HEAD", "/healthz")).Status, 200);
}

TEST(StatsServerDispatch, RegisteredHandlerOwnsPath) {
  StatsServer::registerHandler("/test-owned", [](const StatsRequest &Req) {
    StatsResponse R;
    R.Body = "owned:" + Req.Query;
    return R;
  });
  StatsResponse Resp = StatsServer::dispatch(makeRequest("GET", "/test-owned", "x=1"));
  EXPECT_EQ(Resp.Status, 200);
  EXPECT_EQ(Resp.Body, "owned:x=1");
  // The index lists registered paths.
  EXPECT_NE(StatsServer::dispatch(makeRequest("GET", "/")).Body.find("/test-owned"),
            std::string::npos);
}

TEST(StatsServerDispatch, ScopedProvidersComposeAndDeregister) {
  {
    ScopedStatusProvider Status("test-section",
                                [] { return std::string("s-body"); });
    ScopedHealthProvider Health("test-health",
                                [] { return std::string("{\"n\":7}"); });
    std::string S = StatsServer::dispatch(makeRequest("GET", "/statusz")).Body;
    EXPECT_NE(S.find("== test-section =="), std::string::npos);
    EXPECT_NE(S.find("s-body"), std::string::npos);
    std::string H = StatsServer::dispatch(makeRequest("GET", "/healthz")).Body;
    EXPECT_NE(H.find("\"test-health\":{\"n\":7}"), std::string::npos);
  }
  // RAII deregistration: gone after scope exit.
  EXPECT_EQ(StatsServer::dispatch(makeRequest("GET", "/statusz"))
                .Body.find("test-section"),
            std::string::npos);
  EXPECT_EQ(StatsServer::dispatch(makeRequest("GET", "/healthz"))
                .Body.find("test-health"),
            std::string::npos);
}

TEST(StatsServerDispatch, ReplacementProviderSurvivesOldTeardown) {
  auto Old = std::make_unique<ScopedStatusProvider>(
      "test-replace", [] { return std::string("old"); });
  ScopedStatusProvider New("test-replace", [] { return std::string("new"); });
  Old.reset(); // Must not remove New's registration (token mismatch).
  EXPECT_NE(StatsServer::dispatch(makeRequest("GET", "/statusz")).Body.find("new"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Live socket round-trip
//===----------------------------------------------------------------------===//

TEST(StatsServerLive, ServesOverLoopback) {
  StatsServer Server;
  std::string Error;
  ASSERT_TRUE(Server.start(0, &Error)) << Error;
  ASSERT_GT(Server.port(), 0);

  std::string Health = httpGet(Server.port(), "/healthz");
  EXPECT_NE(Health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(Health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(Health.find("Content-Length:"), std::string::npos);

  std::string Missing = httpGet(Server.port(), "/definitely-not-here");
  EXPECT_NE(Missing.find("HTTP/1.1 404"), std::string::npos);

  std::string Head = httpGet(Server.port(), "/healthz", "HEAD");
  EXPECT_NE(Head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(bodyOf(Head), ""); // HEAD: headers only.

  Server.stop();
  EXPECT_FALSE(Server.running());
  // Stopped: connections fail fast.
  EXPECT_EQ(httpGet(Server.port() ? Server.port() : 1, "/healthz"), "");
}

TEST(StatsServerLive, MetricsEndpointServesValidOpenMetrics) {
  telemetry::ensureIntrospection(); // Registers /metrics et al.
  telemetry::counter("introspection.test.hits").add(3);
  telemetry::gauge("introspection.test.level").set(0.5);

  StatsServer Server;
  std::string Error;
  ASSERT_TRUE(Server.start(0, &Error)) << Error;
  std::string Resp = httpGet(Server.port(), "/metrics");
  Server.stop();

  EXPECT_NE(Resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(Resp.find("application/openmetrics-text"), std::string::npos);
  std::string Body = bodyOf(Resp);
  EXPECT_TRUE(telemetry::validateOpenMetrics(Body, &Error)) << Error;
  EXPECT_NE(Body.find("msem_introspection_test_hits_total 3"),
            std::string::npos);
}

TEST(StatsServerLive, TracezAndProfilezRespond) {
  telemetry::ensureIntrospection();
  StatsResponse Tracez = StatsServer::dispatch(makeRequest("GET", "/tracez"));
  EXPECT_EQ(Tracez.Status, 200);
  EXPECT_NE(Tracez.Body.find("tracez:"), std::string::npos);
  StatsResponse Profilez = StatsServer::dispatch(makeRequest("GET", "/profilez"));
  EXPECT_EQ(Profilez.Status, 200);
  EXPECT_NE(Profilez.Body.find("profilez:"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Campaign /healthz progress
//===----------------------------------------------------------------------===//

TEST(CampaignHealth, HealthzReflectsCheckpointProgress) {
  telemetry::reset();
  std::string Ckpt = formatString("introspection_test_%d.ckpt.json",
                                  static_cast<int>(getpid()));
  ExperimentSpec Spec;
  Spec.Name = "introspection-health";
  Spec.Jobs = {{"art", InputSet::Test, ResponseMetric::Cycles,
                ModelTechnique::Linear, 0}};
  Spec.InitialDesignSize = 8;
  Spec.MaxDesignSize = 8;
  Spec.TestSize = 4;
  Spec.TargetMape = 0.0;
  Spec.CandidateCount = 50;
  Spec.CheckpointPath = Ckpt;

  std::vector<std::string> HealthBodies;
  Spec.OnCheckpointWritten = [&HealthBodies](size_t) {
    // Probed while Campaign::run is live, so the "campaign" provider is
    // registered and current.
    HealthBodies.push_back(StatsServer::dispatch(makeRequest("GET", "/healthz")).Body);
  };

  ExperimentResult Result = Campaign(Spec).run();
  EXPECT_EQ(Result.Status, CampaignStatus::Complete);
  ASSERT_FALSE(HealthBodies.empty());
  const std::string &Last = HealthBodies.back();
  EXPECT_NE(Last.find("\"campaign\":{"), std::string::npos) << Last;
  EXPECT_NE(Last.find("\"state\":\"running\""), std::string::npos) << Last;
  EXPECT_NE(Last.find("\"checkpoints\":"), std::string::npos) << Last;
  EXPECT_NE(Last.find("\"jobs_total\":1"), std::string::npos) << Last;

  // Deregistered once run() returned: the fragment is gone.
  EXPECT_EQ(StatsServer::dispatch(makeRequest("GET", "/healthz"))
                .Body.find("\"campaign\""),
            std::string::npos);
  std::remove(Ckpt.c_str());
}

TEST(PoolStatus, StatuszShowsThreadPool) {
  globalThreadPool(); // Materialize the pool (registers its section).
  std::string S = StatsServer::dispatch(makeRequest("GET", "/statusz")).Body;
  EXPECT_NE(S.find("== pool =="), std::string::npos);
  EXPECT_NE(S.find("threads:"), std::string::npos);
  EXPECT_NE(S.find("queued tasks:"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sampling profiler
//===----------------------------------------------------------------------===//

TEST(SampleProfiler, AttributesSamplesToNamedSpans) {
  telemetry::reset();
  telemetry::SampleProfiler::resetSamples();
  telemetry::SampleProfiler::start({2000});

  // Burn CPU inside a two-deep named span stack until enough samples
  // accumulated (ITIMER_PROF counts CPU time, and the loop is pure CPU).
  volatile double Sink = 1.0;
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (telemetry::SampleProfiler::sampleCount() < 100 &&
         std::chrono::steady_clock::now() < Deadline) {
    telemetry::ScopedTimer Outer("prof.outer");
    telemetry::ScopedTimer Inner("prof.inner");
    for (int I = 0; I < 200000; ++I)
      Sink = Sink * 1.0000001 + 0.25;
  }
  telemetry::SampleProfiler::stop();

  uint64_t Total = 0, Attributed = 0, InNamedStack = 0;
  for (const auto &[Stack, Count] :
       telemetry::SampleProfiler::collapsedStacks()) {
    Total += Count;
    if (Stack != "(no span)")
      Attributed += Count;
    if (Stack == "prof.outer;prof.inner" || Stack == "prof.outer")
      InNamedStack += Count;
  }
  ASSERT_GE(Total, 100u) << "profiler took too few samples";
  // The acceptance bar: >= 90% of samples land in named spans.
  EXPECT_GE(static_cast<double>(Attributed),
            0.9 * static_cast<double>(Total));
  EXPECT_GE(static_cast<double>(InNamedStack),
            0.9 * static_cast<double>(Total));
  EXPECT_EQ(telemetry::SampleProfiler::droppedCount(), 0u);

  // Collapsed rendering is flamegraph.pl input: "stack count" lines.
  std::string Collapsed = telemetry::SampleProfiler::renderCollapsed();
  EXPECT_NE(Collapsed.find("prof.outer;prof.inner "), std::string::npos);
  telemetry::reset();
}

//===----------------------------------------------------------------------===//
// msem_report subprocess (--check, --html, --profile)
//===----------------------------------------------------------------------===//

#ifdef MSEM_REPORT_BIN

int runCommand(const std::string &Cmd) {
  int Rc = std::system(Cmd.c_str());
  return WIFEXITED(Rc) ? WEXITSTATUS(Rc) : -1;
}

TEST(MsemReportCli, ChecksAndRendersTracedCampaign) {
  telemetry::reset();
  std::string Tag = formatString("introspection_report_%d",
                                 static_cast<int>(getpid()));
  std::string EventsFile = Tag + ".events.jsonl";
  std::string HtmlFile = Tag + ".html";

  telemetry::Config C;
  C.Sinks = telemetry::SinkEvents;
  C.EventsFile = EventsFile;
  telemetry::configure(C);

  ExperimentSpec Spec;
  Spec.Name = "introspection-report";
  Spec.Jobs = {{"art", InputSet::Test, ResponseMetric::Cycles,
                ModelTechnique::Linear, 0}};
  Spec.InitialDesignSize = 8;
  Spec.MaxDesignSize = 8;
  Spec.TestSize = 4;
  Spec.TargetMape = 0.0;
  Spec.CandidateCount = 50;
  ExperimentResult Result = Campaign(Spec).run();
  ASSERT_EQ(Result.Status, CampaignStatus::Complete);
  telemetry::flush();
  telemetry::reset(); // Drop the sink config before other tests run.

  ASSERT_TRUE(pathExists(EventsFile));
  const std::string Bin = MSEM_REPORT_BIN;

  // --check: the traced campaign's event log validates.
  EXPECT_EQ(runCommand(Bin + " --check --events " + EventsFile), 0);
  // --html: renders a standalone page.
  EXPECT_EQ(runCommand(Bin + " --html " + HtmlFile + " --events " +
                       EventsFile),
            0);
  std::string Html;
  ASSERT_TRUE(readFileText(HtmlFile, Html, nullptr));
  EXPECT_NE(Html.find("campaign.run"), std::string::npos);

  // --check rejects a corrupted log (exit non-zero).
  std::string BadFile = Tag + ".bad.jsonl";
  ASSERT_TRUE(writeFileAtomic(BadFile, "{\"event\":\"span\"}\n", nullptr));
  EXPECT_NE(runCommand(Bin + " --check --events " + BadFile + " 2>/dev/null"),
            0);

  // --profile renders collapsed stacks with an attribution line.
  std::string ProfileFile = Tag + ".collapsed";
  ASSERT_TRUE(writeFileAtomic(
      ProfileFile, "campaign.run;sim.detailed 90\n(no span) 10\n", nullptr));
  EXPECT_EQ(runCommand(Bin + " --profile " + ProfileFile + " > " + Tag +
                       ".profile.txt"),
            0);
  std::string ProfileOut;
  ASSERT_TRUE(readFileText(Tag + ".profile.txt", ProfileOut, nullptr));
  EXPECT_NE(ProfileOut.find("90.0% attributed"), std::string::npos)
      << ProfileOut;

  std::remove(EventsFile.c_str());
  std::remove(HtmlFile.c_str());
  std::remove(BadFile.c_str());
  std::remove(ProfileFile.c_str());
  std::remove((Tag + ".profile.txt").c_str());
}

#endif // MSEM_REPORT_BIN

} // namespace
