//===- tests/telemetry_test.cpp - Telemetry library tests ---------------------===//

#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <thread>

using namespace msem;
namespace tl = msem::telemetry;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, literals). Used to parse the trace/JSONL output back.
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(std::string_view Text) : Text(Text) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}')
        return ++Pos, true;
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']')
        return ++Pos, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\')
        ++Pos;
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    ++Pos; // Closing quote.
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(std::string_view L) {
    if (Text.substr(Pos, L.size()) != L)
      return false;
    Pos += L.size();
    return true;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  std::string_view Text;
  size_t Pos = 0;
};

/// Fixture: every test starts from a clean registry with all sinks on
/// (in-memory only -- render*() is called directly, flush() never is).
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    tl::reset();
    tl::Config C;
    C.Sinks = tl::SinkSummary | tl::SinkJsonl | tl::SinkTrace;
    tl::configure(C);
  }
  void TearDown() override { tl::reset(); }
};

TEST_F(TelemetryTest, CounterRegistrationIsIdempotent) {
  tl::Counter &A = tl::counter("test.counter");
  tl::Counter &B = tl::counter("test.counter");
  EXPECT_EQ(&A, &B);
  A.add(3);
  B.add(4);
  EXPECT_EQ(A.value(), 7u);
}

TEST_F(TelemetryTest, ConcurrentCounterAddsMerge) {
  tl::Counter &C = tl::counter("test.concurrent");
  std::thread T1([&] {
    for (int I = 0; I < 10000; ++I)
      C.add(1);
  });
  std::thread T2([&] {
    for (int I = 0; I < 10000; ++I)
      C.add(2);
  });
  T1.join();
  T2.join();
  EXPECT_EQ(C.value(), 30000u);
}

TEST_F(TelemetryTest, HistogramBucketsAndMerge) {
  tl::Histogram &H = tl::histogram("test.hist", {1.0, 2.0, 4.0});
  std::thread T1([&] {
    for (int I = 0; I < 100; ++I)
      H.observe(0.5); // Bucket 0 (<= 1).
  });
  std::thread T2([&] {
    for (int I = 0; I < 50; ++I)
      H.observe(3.0); // Bucket 2 (<= 4).
    H.observe(100.0); // Overflow bucket.
  });
  T1.join();
  T2.join();
  ASSERT_EQ(H.numBuckets(), 4u);
  EXPECT_EQ(H.bucketCount(0), 100u);
  EXPECT_EQ(H.bucketCount(1), 0u);
  EXPECT_EQ(H.bucketCount(2), 50u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  EXPECT_EQ(H.totalCount(), 151u);
}

TEST_F(TelemetryTest, HistogramBoundsFixedAtFirstRegistration) {
  tl::histogram("test.hist2", {1.0, 2.0});
  tl::Histogram &H = tl::histogram("test.hist2", {9.0, 10.0, 11.0});
  EXPECT_EQ(H.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(TelemetryTest, GaugeSetAndSignedAccumulate) {
  tl::Gauge &G = tl::gauge("test.gauge");
  G.set(1.5);
  G.add(-3.0);
  EXPECT_DOUBLE_EQ(G.value(), -1.5);
}

TEST_F(TelemetryTest, NestedScopedTimersRecordContainedSpans) {
  {
    tl::ScopedTimer Outer("test.outer");
    {
      tl::ScopedTimer Inner("test.inner");
      tl::counter("test.work").add(1);
    }
  }
  std::vector<tl::SpanEvent> Spans = tl::spans();
  ASSERT_EQ(Spans.size(), 2u);
  // Destruction order: inner completes first.
  EXPECT_EQ(Spans[0].Name, "test.inner");
  EXPECT_EQ(Spans[1].Name, "test.outer");
  const tl::SpanEvent &Inner = Spans[0], &Outer = Spans[1];
  // Chrome's nesting rule: the inner span is contained in the outer.
  EXPECT_GE(Inner.StartNs, Outer.StartNs);
  EXPECT_LE(Inner.StartNs + Inner.DurationNs,
            Outer.StartNs + Outer.DurationNs);
  // And both accumulated into their timers.
  EXPECT_EQ(tl::timer("test.outer").count(), 1u);
  EXPECT_EQ(tl::timer("test.inner").count(), 1u);
  EXPECT_GE(tl::timer("test.outer").totalNs(),
            tl::timer("test.inner").totalNs());
}

TEST_F(TelemetryTest, TraceJsonParsesBack) {
  {
    tl::ScopedTimer A("phase \"quoted\"\\slashed");
    tl::ScopedTimer B("phase.inner");
  }
  tl::series("test.series").record(0, 1.5);
  tl::series("test.series").record(1, 2.5);

  std::string Trace = tl::renderTraceJson();
  EXPECT_TRUE(JsonChecker(Trace).valid()) << Trace;
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);
  // Series points recorded with trace on become counter events.
  EXPECT_NE(Trace.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(TelemetryTest, MetricsJsonlEveryLineParses) {
  tl::counter("test.counter").add(42);
  tl::gauge("test.gauge").set(3.25);
  tl::timer("test.timer").add(1000);
  tl::histogram("test.hist", {1.0}).observe(0.5);
  tl::series("test.series").record(1, 2);

  std::string Jsonl = tl::renderMetricsJsonl();
  size_t Lines = 0, Pos = 0;
  while (Pos < Jsonl.size()) {
    size_t Nl = Jsonl.find('\n', Pos);
    ASSERT_NE(Nl, std::string::npos);
    std::string_view Line(Jsonl.data() + Pos, Nl - Pos);
    EXPECT_TRUE(JsonChecker(Line).valid()) << Line;
    Pos = Nl + 1;
    ++Lines;
  }
  EXPECT_EQ(Lines, 5u);
  EXPECT_NE(Jsonl.find("\"value\":42"), std::string::npos);
}

TEST_F(TelemetryTest, SummaryIncludesAllMetricKinds) {
  tl::counter("test.counter").add(7);
  tl::gauge("test.gauge").set(2.5);
  {
    tl::ScopedTimer T("test.span");
  }
  tl::histogram("test.hist", {1.0}).observe(0.5);
  tl::series("test.series").record(3, 4);

  std::string Summary = tl::renderSummary();
  EXPECT_NE(Summary.find("test.counter"), std::string::npos);
  EXPECT_NE(Summary.find("test.gauge"), std::string::npos);
  EXPECT_NE(Summary.find("test.span"), std::string::npos);
  EXPECT_NE(Summary.find("test.hist"), std::string::npos);
  EXPECT_NE(Summary.find("test.series"), std::string::npos);
}

TEST_F(TelemetryTest, SeriesKeepsOrderedTrajectory) {
  tl::Series &S = tl::series("test.traj");
  for (int I = 0; I < 5; ++I)
    S.record(I, 10.0 - I);
  auto Pts = S.points();
  ASSERT_EQ(Pts.size(), 5u);
  EXPECT_DOUBLE_EQ(Pts[0].Y, 10.0);
  EXPECT_DOUBLE_EQ(Pts[4].Y, 6.0);
  // Trace sink was on, so timestamps are monotonic non-decreasing.
  for (size_t I = 1; I < Pts.size(); ++I)
    EXPECT_GE(Pts[I].TsNs, Pts[I - 1].TsNs);
}

//===----------------------------------------------------------------------===//
// Disabled path
//===----------------------------------------------------------------------===//

class TelemetryDisabledTest : public ::testing::Test {
protected:
  void SetUp() override {
    tl::reset(); // Leaves everything disabled, no env re-read.
  }
  void TearDown() override { tl::reset(); }
};

TEST_F(TelemetryDisabledTest, RegistryStillSafeWhenDisabled) {
  EXPECT_FALSE(tl::enabled());
  EXPECT_FALSE(tl::traceEnabled());
  // Direct registry access keeps working.
  tl::counter("off.counter").add(5);
  EXPECT_EQ(tl::counter("off.counter").value(), 5u);
  // Convenience entry points are no-ops: nothing is registered.
  tl::count("off.convenience", 3);
  tl::gaugeSet("off.gauge", 1.0);
  tl::record("off.series", 1, 2);
  std::string Jsonl = tl::renderMetricsJsonl();
  EXPECT_EQ(Jsonl.find("off.convenience"), std::string::npos);
  EXPECT_EQ(Jsonl.find("off.gauge"), std::string::npos);
  EXPECT_EQ(Jsonl.find("off.series"), std::string::npos);
}

TEST_F(TelemetryDisabledTest, ScopedTimerIsInertWhenDisabled) {
  {
    tl::ScopedTimer T("off.span");
    EXPECT_EQ(T.elapsedNs(), 0u);
  }
  EXPECT_TRUE(tl::spans().empty());
  EXPECT_EQ(tl::timer("off.span").count(), 0u);
}

TEST_F(TelemetryDisabledTest, ConfigureEnablesAndReconfigures) {
  tl::Config C;
  C.Sinks = tl::SinkTrace;
  C.TraceFile = "custom_trace.json";
  tl::configure(C);
  EXPECT_TRUE(tl::enabled());
  EXPECT_TRUE(tl::traceEnabled());
  EXPECT_EQ(tl::currentConfig().TraceFile, "custom_trace.json");
  C.Sinks = tl::SinkNone;
  tl::configure(C);
  EXPECT_FALSE(tl::enabled());
}

TEST_F(TelemetryDisabledTest, ConcurrentMetricUpdatesAreConsistent) {
  // The parallel engine hammers the registry from pool workers; this is
  // the stress test the TSan target runs to certify the implementation
  // (atomics for scalars, a mutex for registry/series/span buffers).
  tl::Config C;
  C.Sinks = tl::SinkTrace; // Buffers spans and series timestamps too.
  C.TraceFile = ::testing::TempDir() + "/msem_tl_stress_trace.json";
  tl::configure(C);

  constexpr int NumThreads = 4;
  constexpr int Iters = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([T] {
      for (int I = 0; I < Iters; ++I) {
        tl::counter("stress.count").add(1);
        tl::gauge("stress.acc").add(1.0);
        tl::timer("stress.timer").add(3);
        tl::series("stress.series")
            .record(static_cast<double>(I), static_cast<double>(T));
        tl::histogram("stress.hist", {5.0, 50.0})
            .observe(static_cast<double>(I % 100));
        tl::ScopedTimer Span("stress.span");
      }
    });
  for (std::thread &T : Threads)
    T.join();

  constexpr uint64_t Total = uint64_t(NumThreads) * Iters;
  EXPECT_EQ(tl::counter("stress.count").value(), Total);
  EXPECT_DOUBLE_EQ(tl::gauge("stress.acc").value(),
                   static_cast<double>(Total));
  EXPECT_EQ(tl::timer("stress.timer").count(), Total);
  EXPECT_EQ(tl::timer("stress.timer").totalNs(), 3 * Total);
  EXPECT_EQ(tl::series("stress.series").size(), Total);
  EXPECT_EQ(tl::histogram("stress.hist", {}).totalCount(), Total);
  EXPECT_EQ(tl::timer("stress.span").count(), Total);
  EXPECT_EQ(tl::spans().size(), Total);
}

TEST_F(TelemetryDisabledTest, ConfigFromEnvParsesSinkList) {
  setenv("MSEM_TELEMETRY", "summary, trace", 1);
  setenv("MSEM_TRACE_FILE", "t.json", 1);
  tl::Config C = tl::configFromEnv();
  EXPECT_EQ(C.Sinks, tl::SinkSummary | tl::SinkTrace);
  EXPECT_EQ(C.TraceFile, "t.json");
  unsetenv("MSEM_TELEMETRY");
  unsetenv("MSEM_TRACE_FILE");
  EXPECT_EQ(tl::configFromEnv().Sinks, tl::SinkNone + 0u);
}

} // namespace
