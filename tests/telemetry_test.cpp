//===- tests/telemetry_test.cpp - Telemetry library tests ---------------------===//

#include "telemetry/Telemetry.h"

#include "support/FileSystem.h"
#include "support/ThreadPool.h"
#include "telemetry/EventLog.h"
#include "telemetry/OpenMetrics.h"
#include "telemetry/TelemetrySnapshot.h"

#include <gtest/gtest.h>

#include <cctype>
#include <csignal>
#include <cstdlib>
#include <thread>

using namespace msem;
namespace tl = msem::telemetry;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, literals). Used to parse the trace/JSONL output back.
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(std::string_view Text) : Text(Text) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}')
        return ++Pos, true;
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']')
        return ++Pos, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\')
        ++Pos;
      ++Pos;
    }
    if (Pos >= Text.size())
      return false;
    ++Pos; // Closing quote.
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(std::string_view L) {
    if (Text.substr(Pos, L.size()) != L)
      return false;
    Pos += L.size();
    return true;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  std::string_view Text;
  size_t Pos = 0;
};

/// Fixture: every test starts from a clean registry with all sinks on
/// (in-memory only -- render*() is called directly, flush() never is).
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    tl::reset();
    tl::Config C;
    C.Sinks = tl::SinkSummary | tl::SinkJsonl | tl::SinkTrace;
    tl::configure(C);
  }
  void TearDown() override { tl::reset(); }
};

TEST_F(TelemetryTest, CounterRegistrationIsIdempotent) {
  tl::Counter &A = tl::counter("test.counter");
  tl::Counter &B = tl::counter("test.counter");
  EXPECT_EQ(&A, &B);
  A.add(3);
  B.add(4);
  EXPECT_EQ(A.value(), 7u);
}

TEST_F(TelemetryTest, ConcurrentCounterAddsMerge) {
  tl::Counter &C = tl::counter("test.concurrent");
  std::thread T1([&] {
    for (int I = 0; I < 10000; ++I)
      C.add(1);
  });
  std::thread T2([&] {
    for (int I = 0; I < 10000; ++I)
      C.add(2);
  });
  T1.join();
  T2.join();
  EXPECT_EQ(C.value(), 30000u);
}

TEST_F(TelemetryTest, HistogramBucketsAndMerge) {
  tl::Histogram &H = tl::histogram("test.hist", {1.0, 2.0, 4.0});
  std::thread T1([&] {
    for (int I = 0; I < 100; ++I)
      H.observe(0.5); // Bucket 0 (<= 1).
  });
  std::thread T2([&] {
    for (int I = 0; I < 50; ++I)
      H.observe(3.0); // Bucket 2 (<= 4).
    H.observe(100.0); // Overflow bucket.
  });
  T1.join();
  T2.join();
  ASSERT_EQ(H.numBuckets(), 4u);
  EXPECT_EQ(H.bucketCount(0), 100u);
  EXPECT_EQ(H.bucketCount(1), 0u);
  EXPECT_EQ(H.bucketCount(2), 50u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  EXPECT_EQ(H.totalCount(), 151u);
}

TEST_F(TelemetryTest, HistogramBoundsFixedAtFirstRegistration) {
  tl::histogram("test.hist2", {1.0, 2.0});
  tl::Histogram &H = tl::histogram("test.hist2", {9.0, 10.0, 11.0});
  EXPECT_EQ(H.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(TelemetryTest, GaugeSetAndSignedAccumulate) {
  tl::Gauge &G = tl::gauge("test.gauge");
  G.set(1.5);
  G.add(-3.0);
  EXPECT_DOUBLE_EQ(G.value(), -1.5);
}

TEST_F(TelemetryTest, NestedScopedTimersRecordContainedSpans) {
  {
    tl::ScopedTimer Outer("test.outer");
    {
      tl::ScopedTimer Inner("test.inner");
      tl::counter("test.work").add(1);
    }
  }
  std::vector<tl::SpanEvent> Spans = tl::spans();
  ASSERT_EQ(Spans.size(), 2u);
  // Destruction order: inner completes first.
  EXPECT_EQ(Spans[0].Name, "test.inner");
  EXPECT_EQ(Spans[1].Name, "test.outer");
  const tl::SpanEvent &Inner = Spans[0], &Outer = Spans[1];
  // Chrome's nesting rule: the inner span is contained in the outer.
  EXPECT_GE(Inner.StartNs, Outer.StartNs);
  EXPECT_LE(Inner.StartNs + Inner.DurationNs,
            Outer.StartNs + Outer.DurationNs);
  // And both accumulated into their timers.
  EXPECT_EQ(tl::timer("test.outer").count(), 1u);
  EXPECT_EQ(tl::timer("test.inner").count(), 1u);
  EXPECT_GE(tl::timer("test.outer").totalNs(),
            tl::timer("test.inner").totalNs());
}

TEST_F(TelemetryTest, TraceJsonParsesBack) {
  {
    tl::ScopedTimer A("phase \"quoted\"\\slashed");
    tl::ScopedTimer B("phase.inner");
  }
  tl::series("test.series").record(0, 1.5);
  tl::series("test.series").record(1, 2.5);

  std::string Trace = tl::renderTraceJson();
  EXPECT_TRUE(JsonChecker(Trace).valid()) << Trace;
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);
  // Series points recorded with trace on become counter events.
  EXPECT_NE(Trace.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(TelemetryTest, MetricsJsonlEveryLineParses) {
  tl::counter("test.counter").add(42);
  tl::gauge("test.gauge").set(3.25);
  tl::timer("test.timer").add(1000);
  tl::histogram("test.hist", {1.0}).observe(0.5);
  tl::series("test.series").record(1, 2);

  std::string Jsonl = tl::renderMetricsJsonl();
  size_t Lines = 0, Pos = 0;
  while (Pos < Jsonl.size()) {
    size_t Nl = Jsonl.find('\n', Pos);
    ASSERT_NE(Nl, std::string::npos);
    std::string_view Line(Jsonl.data() + Pos, Nl - Pos);
    EXPECT_TRUE(JsonChecker(Line).valid()) << Line;
    Pos = Nl + 1;
    ++Lines;
  }
  EXPECT_EQ(Lines, 5u);
  EXPECT_NE(Jsonl.find("\"value\":42"), std::string::npos);
}

TEST_F(TelemetryTest, SummaryIncludesAllMetricKinds) {
  tl::counter("test.counter").add(7);
  tl::gauge("test.gauge").set(2.5);
  {
    tl::ScopedTimer T("test.span");
  }
  tl::histogram("test.hist", {1.0}).observe(0.5);
  tl::series("test.series").record(3, 4);

  std::string Summary = tl::renderSummary();
  EXPECT_NE(Summary.find("test.counter"), std::string::npos);
  EXPECT_NE(Summary.find("test.gauge"), std::string::npos);
  EXPECT_NE(Summary.find("test.span"), std::string::npos);
  EXPECT_NE(Summary.find("test.hist"), std::string::npos);
  EXPECT_NE(Summary.find("test.series"), std::string::npos);
}

TEST_F(TelemetryTest, SeriesKeepsOrderedTrajectory) {
  tl::Series &S = tl::series("test.traj");
  for (int I = 0; I < 5; ++I)
    S.record(I, 10.0 - I);
  auto Pts = S.points();
  ASSERT_EQ(Pts.size(), 5u);
  EXPECT_DOUBLE_EQ(Pts[0].Y, 10.0);
  EXPECT_DOUBLE_EQ(Pts[4].Y, 6.0);
  // Trace sink was on, so timestamps are monotonic non-decreasing.
  for (size_t I = 1; I < Pts.size(); ++I)
    EXPECT_GE(Pts[I].TsNs, Pts[I - 1].TsNs);
}

//===----------------------------------------------------------------------===//
// Disabled path
//===----------------------------------------------------------------------===//

class TelemetryDisabledTest : public ::testing::Test {
protected:
  void SetUp() override {
    tl::reset(); // Leaves everything disabled, no env re-read.
  }
  void TearDown() override { tl::reset(); }
};

TEST_F(TelemetryDisabledTest, RegistryStillSafeWhenDisabled) {
  EXPECT_FALSE(tl::enabled());
  EXPECT_FALSE(tl::traceEnabled());
  // Direct registry access keeps working.
  tl::counter("off.counter").add(5);
  EXPECT_EQ(tl::counter("off.counter").value(), 5u);
  // Convenience entry points are no-ops: nothing is registered.
  tl::count("off.convenience", 3);
  tl::gaugeSet("off.gauge", 1.0);
  tl::record("off.series", 1, 2);
  std::string Jsonl = tl::renderMetricsJsonl();
  EXPECT_EQ(Jsonl.find("off.convenience"), std::string::npos);
  EXPECT_EQ(Jsonl.find("off.gauge"), std::string::npos);
  EXPECT_EQ(Jsonl.find("off.series"), std::string::npos);
}

TEST_F(TelemetryDisabledTest, ScopedTimerIsInertWhenDisabled) {
  {
    tl::ScopedTimer T("off.span");
    EXPECT_EQ(T.elapsedNs(), 0u);
  }
  EXPECT_TRUE(tl::spans().empty());
  EXPECT_EQ(tl::timer("off.span").count(), 0u);
}

TEST_F(TelemetryDisabledTest, ConfigureEnablesAndReconfigures) {
  tl::Config C;
  C.Sinks = tl::SinkTrace;
  C.TraceFile = "custom_trace.json";
  tl::configure(C);
  EXPECT_TRUE(tl::enabled());
  EXPECT_TRUE(tl::traceEnabled());
  EXPECT_EQ(tl::currentConfig().TraceFile, "custom_trace.json");
  C.Sinks = tl::SinkNone;
  tl::configure(C);
  EXPECT_FALSE(tl::enabled());
}

TEST_F(TelemetryDisabledTest, ConcurrentMetricUpdatesAreConsistent) {
  // The parallel engine hammers the registry from pool workers; this is
  // the stress test the TSan target runs to certify the implementation
  // (atomics for scalars, a mutex for registry/series/span buffers).
  tl::Config C;
  C.Sinks = tl::SinkTrace; // Buffers spans and series timestamps too.
  C.TraceFile = ::testing::TempDir() + "/msem_tl_stress_trace.json";
  tl::configure(C);

  constexpr int NumThreads = 4;
  constexpr int Iters = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([T] {
      for (int I = 0; I < Iters; ++I) {
        tl::counter("stress.count").add(1);
        tl::gauge("stress.acc").add(1.0);
        tl::timer("stress.timer").add(3);
        tl::series("stress.series")
            .record(static_cast<double>(I), static_cast<double>(T));
        tl::histogram("stress.hist", {5.0, 50.0})
            .observe(static_cast<double>(I % 100));
        tl::ScopedTimer Span("stress.span");
      }
    });
  for (std::thread &T : Threads)
    T.join();

  constexpr uint64_t Total = uint64_t(NumThreads) * Iters;
  EXPECT_EQ(tl::counter("stress.count").value(), Total);
  EXPECT_DOUBLE_EQ(tl::gauge("stress.acc").value(),
                   static_cast<double>(Total));
  EXPECT_EQ(tl::timer("stress.timer").count(), Total);
  EXPECT_EQ(tl::timer("stress.timer").totalNs(), 3 * Total);
  EXPECT_EQ(tl::series("stress.series").size(), Total);
  EXPECT_EQ(tl::histogram("stress.hist", {}).totalCount(), Total);
  EXPECT_EQ(tl::timer("stress.span").count(), Total);
  EXPECT_EQ(tl::spans().size(), Total);
}

TEST_F(TelemetryDisabledTest, ConfigFromEnvParsesSinkList) {
  setenv("MSEM_TELEMETRY", "summary, trace", 1);
  setenv("MSEM_TRACE_FILE", "t.json", 1);
  tl::Config C = tl::configFromEnv();
  EXPECT_EQ(C.Sinks, tl::SinkSummary | tl::SinkTrace);
  EXPECT_EQ(C.TraceFile, "t.json");
  unsetenv("MSEM_TELEMETRY");
  unsetenv("MSEM_TRACE_FILE");
  EXPECT_EQ(tl::configFromEnv().Sinks, tl::SinkNone + 0u);
}

//===----------------------------------------------------------------------===//
// Causal tracing: deterministic span identity, context propagation
//===----------------------------------------------------------------------===//

/// Span-capturing fixture: events sink on, no files written (render only).
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    tl::reset();
    tl::Config C;
    C.Sinks = tl::SinkEvents;
    tl::configure(C);
  }
  void TearDown() override {
    setGlobalThreadCount(0);
    tl::reset();
  }
};

TEST_F(TraceTest, DeriveTraceIdIsStableAndNonZero) {
  uint64_t A = tl::deriveTraceId("campaign-x", 7);
  EXPECT_EQ(A, tl::deriveTraceId("campaign-x", 7));
  EXPECT_NE(A, tl::deriveTraceId("campaign-x", 8));
  EXPECT_NE(A, tl::deriveTraceId("campaign-y", 7));
  EXPECT_NE(A, 0u);
  EXPECT_NE(tl::deriveTraceId("", 0), 0u);
}

TEST_F(TraceTest, NestedSpansParentCorrectly) {
  uint64_t Root, Mid, Leaf;
  {
    tl::ScopedTimer R("root", tl::ScopedTimer::TraceRoot{42});
    Root = R.spanId();
    EXPECT_EQ(R.traceId(), 42u);
    EXPECT_EQ(R.parentSpanId(), 0u);
    {
      tl::ScopedTimer M("mid");
      Mid = M.spanId();
      EXPECT_EQ(M.traceId(), 42u);
      EXPECT_EQ(M.parentSpanId(), Root);
      tl::ScopedTimer L("leaf", 3);
      Leaf = L.spanId();
      EXPECT_EQ(L.parentSpanId(), Mid);
    }
  }
  std::vector<tl::SpanEvent> Spans = tl::spans();
  ASSERT_EQ(Spans.size(), 3u);
  for (const tl::SpanEvent &S : Spans)
    EXPECT_EQ(S.TraceId, 42u);
  (void)Leaf;
}

TEST_F(TraceTest, UnkeyedSiblingsGetDistinctOrdinals) {
  uint64_t A, B;
  {
    tl::ScopedTimer R("root", tl::ScopedTimer::TraceRoot{1});
    {
      tl::ScopedTimer S1("step");
      A = S1.spanId();
    }
    {
      tl::ScopedTimer S2("step");
      B = S2.spanId();
    }
  }
  EXPECT_NE(A, B); // Same name, consecutive ordinals.
}

TEST_F(TraceTest, SpansWithNoContextSelfRoot) {
  uint64_t Trace;
  {
    tl::ScopedTimer S("lonely");
    Trace = S.traceId();
    EXPECT_NE(Trace, 0u);
    EXPECT_EQ(S.parentSpanId(), 0u);
  }
  // Deterministic: the same name roots the same trace id again.
  tl::ScopedTimer T("lonely");
  EXPECT_EQ(T.traceId(), Trace);
}

TEST_F(TraceTest, ParallelForSpansParentToEnqueuingSpan) {
  setGlobalThreadCount(4);
  uint64_t RootSpan;
  {
    tl::ScopedTimer R("region", tl::ScopedTimer::TraceRoot{99});
    RootSpan = R.spanId();
    globalThreadPool().parallelFor(
        0, 16,
        [&](size_t I) { tl::ScopedTimer S("iter", I); },
        "test");
  }
  std::vector<tl::SpanEvent> Spans = tl::spans();
  size_t Iters = 0;
  for (const tl::SpanEvent &S : Spans) {
    if (S.Name != "iter")
      continue;
    ++Iters;
    EXPECT_EQ(S.TraceId, 99u);
    EXPECT_EQ(S.ParentSpanId, RootSpan);
  }
  EXPECT_EQ(Iters, 16u);
}

namespace {

/// The deterministic traced workload used by the thread-count-invariance
/// oracle: a root, a parallel region of keyed spans, a nested child per
/// iteration, and a sequential coda.
void runTracedWorkload() {
  tl::ScopedTimer Root("work.root",
                       tl::ScopedTimer::TraceRoot{tl::deriveTraceId("w", 1)});
  Root.setDetail("oracle");
  globalThreadPool().parallelFor(
      0, 24,
      [&](size_t I) {
        tl::ScopedTimer S("work.item", I);
        tl::ScopedTimer Inner("work.inner");
      },
      "oracle");
  tl::ScopedTimer Coda("work.coda");
}

} // namespace

TEST_F(TraceTest, CanonicalSpansIdenticalAcrossThreadCounts) {
  setGlobalThreadCount(1);
  runTracedWorkload();
  std::string OneThread = tl::renderCanonicalSpans();

  tl::reset();
  tl::Config C;
  C.Sinks = tl::SinkEvents;
  tl::configure(C);
  setGlobalThreadCount(8);
  runTracedWorkload();
  std::string EightThreads = tl::renderCanonicalSpans();

  EXPECT_FALSE(OneThread.empty());
  EXPECT_EQ(OneThread, EightThreads);
}

TEST_F(TraceTest, TraceSampleZeroDropsSpansButKeepsTimers) {
  tl::reset();
  tl::Config C;
  C.Sinks = tl::SinkEvents;
  C.TraceSample = 0.0;
  tl::configure(C);
  {
    tl::ScopedTimer S("sampled.out", tl::ScopedTimer::TraceRoot{7});
    EXPECT_FALSE(S.capturing());
  }
  EXPECT_TRUE(tl::spans().empty());
  EXPECT_EQ(tl::timer("sampled.out").count(), 1u);
}

//===----------------------------------------------------------------------===//
// Events JSONL: render -> parse round trip, validation, aggregation
//===----------------------------------------------------------------------===//

TEST_F(TraceTest, EventsJsonlRoundTripsAndTreeIsDeep) {
  {
    tl::ScopedTimer A("a", tl::ScopedTimer::TraceRoot{5});
    tl::ScopedTimer B("b");
    tl::ScopedTimer Inner("c", 0);
    Inner.setDetail("leaf \"quoted\"");
  }
  std::string Text = tl::renderEventsJsonl();

  tl::EventLog Log;
  std::string Error;
  ASSERT_TRUE(tl::parseEventsJsonl(Text, Log, &Error)) << Error;
  EXPECT_EQ(Log.Schema, "msem.events.v1");
  EXPECT_FALSE(Log.Build.empty());
  ASSERT_EQ(Log.Spans.size(), 3u);

  tl::SpanTree Tree = tl::buildSpanTree(Log.Spans);
  EXPECT_EQ(Tree.Roots.size(), 1u);
  EXPECT_EQ(Tree.depth(), 3u);

  // The detail string with quotes survived the JSON round trip.
  bool FoundDetail = false;
  for (const tl::SpanEvent &S : Log.Spans)
    FoundDetail = FoundDetail || S.Detail == "leaf \"quoted\"";
  EXPECT_TRUE(FoundDetail);
}

TEST_F(TraceTest, EventsParserRejectsMalformedLogs) {
  tl::EventLog Log;
  std::string Error;
  EXPECT_FALSE(tl::parseEventsJsonl("", Log, &Error));
  EXPECT_FALSE(tl::parseEventsJsonl(
      "{\"event\":\"span\",\"name\":\"x\"}\n", Log, &Error));
  EXPECT_FALSE(tl::parseEventsJsonl(
      "{\"event\":\"meta\",\"schema\":\"msem.events.v999\"}\n", Log,
      &Error));
  std::string Meta =
      "{\"event\":\"meta\",\"schema\":\"msem.events.v1\",\"build\":\"t\"}\n";
  EXPECT_FALSE(tl::parseEventsJsonl(
      Meta + "{\"event\":\"span\",\"name\":\"x\",\"trace\":\"0\","
             "\"span\":\"1\",\"parent\":\"0\",\"start_ns\":0,"
             "\"dur_ns\":1,\"tid\":0}\n",
      Log, &Error))
      << "zero trace id must be rejected";
  EXPECT_FALSE(tl::parseEventsJsonl(
      Meta + "{\"event\":\"widget\"}\n", Log, &Error));
  EXPECT_TRUE(tl::parseEventsJsonl(
      Meta + "{\"event\":\"span\",\"name\":\"x\",\"trace\":\"2\","
             "\"span\":\"1\",\"parent\":\"0\",\"start_ns\":0,"
             "\"dur_ns\":1,\"tid\":0}\n",
      Log, &Error))
      << Error;
}

TEST_F(TraceTest, PhaseAggregationAndSlowestSpans) {
  {
    tl::ScopedTimer R("phase.root", tl::ScopedTimer::TraceRoot{11});
    for (int I = 0; I < 3; ++I)
      tl::ScopedTimer S("phase.leaf", static_cast<uint64_t>(I));
  }
  std::string Text = tl::renderEventsJsonl();
  tl::EventLog Log;
  std::string Error;
  ASSERT_TRUE(tl::parseEventsJsonl(Text, Log, &Error)) << Error;
  tl::SpanTree Tree = tl::buildSpanTree(Log.Spans);

  std::vector<tl::PhaseStat> Phases = tl::aggregatePhases(Log.Spans, Tree);
  ASSERT_EQ(Phases.size(), 2u);
  const tl::PhaseStat *Leaf = nullptr;
  for (const tl::PhaseStat &P : Phases)
    if (P.Name == "phase.leaf")
      Leaf = &P;
  ASSERT_NE(Leaf, nullptr);
  EXPECT_EQ(Leaf->Count, 3u);

  std::vector<tl::SpanEvent> Slow =
      tl::slowestSpans(Log.Spans, "phase.leaf", 2);
  ASSERT_EQ(Slow.size(), 2u);
  EXPECT_GE(Slow[0].DurationNs, Slow[1].DurationNs);

  std::vector<std::pair<std::string, uint64_t>> Stacks =
      tl::collapseStacks(Log.Spans, Tree);
  bool SawPath = false;
  for (const auto &[Path, SelfNs] : Stacks)
    SawPath = SawPath || Path == "phase.root;phase.leaf";
  EXPECT_TRUE(SawPath);
}

//===----------------------------------------------------------------------===//
// OpenMetrics exposition
//===----------------------------------------------------------------------===//

TEST_F(TraceTest, OpenMetricsRenderPassesValidator) {
  tl::counter("campaign.simulations").add(15);
  tl::counter("pool.tasks.measure").add(7);
  tl::counter("pass.dce.changed").add(3);
  tl::gauge("pool.utilization").set(0.75);
  tl::gauge("pass.dce.ir_delta").set(-415);
  tl::gauge("serving.rolling_mape.m-1").set(12.5);
  tl::timer("pass.dce").add(1000);
  tl::timer("campaign.run").add(5000000);
  tl::histogram("serving.latency_us.m-1", {1, 10, 100}).observe(5.0);
  tl::histogram("serving.latency_us.m-1", {}).observe(50000.0);
  tl::series("ga.best_fitness").record(0, 1.5); // Omitted from exposition.

  std::string Text = tl::renderOpenMetrics(tl::snapshotMetrics());
  std::string Error;
  EXPECT_TRUE(tl::validateOpenMetrics(Text, &Error)) << Error << "\n" << Text;
  EXPECT_NE(Text.find("# TYPE msem_campaign_simulations counter"),
            std::string::npos);
  EXPECT_NE(Text.find("msem_campaign_simulations_total 15"),
            std::string::npos);
  EXPECT_NE(Text.find("msem_pool_tasks_total{stage=\"measure\"} 7"),
            std::string::npos);
  EXPECT_NE(Text.find("msem_pass_changed_total{pass=\"dce\"} 3"),
            std::string::npos);
  EXPECT_NE(Text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(Text.find("model=\"m-1\""), std::string::npos);
  EXPECT_EQ(Text.find("ga_best_fitness"), std::string::npos);
  EXPECT_EQ(Text.substr(Text.size() - 6), "# EOF\n");
}

TEST_F(TraceTest, OpenMetricsValidatorRejectsBadDocuments) {
  std::string Error;
  // Missing EOF.
  EXPECT_FALSE(tl::validateOpenMetrics(
      "# TYPE a counter\na_total 1\n", &Error));
  // Sample without a TYPE declaration.
  EXPECT_FALSE(tl::validateOpenMetrics("a_total 1\n# EOF\n", &Error));
  // Wrong suffix for the declared type.
  EXPECT_FALSE(tl::validateOpenMetrics(
      "# TYPE a counter\na 1\n# EOF\n", &Error));
  // Histogram buckets not cumulative.
  EXPECT_FALSE(tl::validateOpenMetrics(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\n# EOF\n",
      &Error));
  // Histogram without +Inf.
  EXPECT_FALSE(tl::validateOpenMetrics(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n# EOF\n", &Error));
  // Interleaved families.
  EXPECT_FALSE(tl::validateOpenMetrics(
      "# TYPE a counter\n# TYPE b counter\na_total 1\nb_total 1\n# EOF\n",
      &Error));
  // Unquoted label value.
  EXPECT_FALSE(tl::validateOpenMetrics(
      "# TYPE a counter\na_total{x=1} 1\n# EOF\n", &Error));
  // Negative counter.
  EXPECT_FALSE(tl::validateOpenMetrics(
      "# TYPE a counter\na_total -1\n# EOF\n", &Error));
  // Content after EOF.
  EXPECT_FALSE(tl::validateOpenMetrics(
      "# TYPE a counter\na_total 1\n# EOF\na_total 2\n", &Error));
  // A correct document passes.
  EXPECT_TRUE(tl::validateOpenMetrics(
      "# TYPE a counter\na_total{x=\"y\"} 1\n# EOF\n", &Error))
      << Error;
}

TEST_F(TraceTest, HistogramQuantilesInterpolateAndClamp) {
  tl::Histogram &H = tl::histogram("q.test_us", {10, 100, 1000});
  for (int I = 0; I < 50; ++I)
    H.observe(5.0); // First bucket.
  for (int I = 0; I < 50; ++I)
    H.observe(50.0); // Second bucket.
  EXPECT_EQ(H.totalCount(), 100u);
  EXPECT_DOUBLE_EQ(H.max(), 50.0);
  EXPECT_NEAR(H.sum(), 50 * 5.0 + 50 * 50.0, 1e-9);
  double P50 = H.quantile(0.50);
  EXPECT_GE(P50, 0.0);
  EXPECT_LE(P50, 10.0); // Median sits at the first-bucket boundary.
  double P99 = H.quantile(0.99);
  EXPECT_GT(P99, 10.0);
  EXPECT_LE(P99, 50.0); // Clamped to the observed max.
  EXPECT_DOUBLE_EQ(H.quantile(1.0), 50.0);
  EXPECT_EQ(tl::histogram("q.empty", {1}).quantile(0.5), 0.0);

  EXPECT_EQ(tl::unitForMetricName("q.test_us"), "us");
  EXPECT_EQ(tl::unitForMetricName("a.b_ns"), "ns");
  EXPECT_EQ(tl::unitForMetricName("a.b_ms"), "ms");
  EXPECT_EQ(tl::unitForMetricName("plain"), "");
}

//===----------------------------------------------------------------------===//
// On-demand metrics dumps (SIGUSR1 / requestMetricsDump)
//===----------------------------------------------------------------------===//

TEST_F(TraceTest, RequestedDumpWritesMetricsFile) {
  std::string Path = ::testing::TempDir() + "msem_dump_test.jsonl";
  std::remove(Path.c_str());
  tl::reset();
  tl::Config C;
  C.Sinks = tl::SinkJsonl;
  C.MetricsFile = Path;
  tl::configure(C);
  tl::counter("dump.test").add(3);

  tl::maybeDumpMetrics(); // No request pending: must not write.
  EXPECT_FALSE(pathExists(Path));

  tl::requestMetricsDump();
  tl::maybeDumpMetrics();
  ASSERT_TRUE(pathExists(Path));
  std::string Text;
  ASSERT_TRUE(readFileText(Path, Text));
  tl::MetricsSnapshot Snap;
  std::string Error;
  ASSERT_TRUE(tl::parseMetricsJsonl(Text, Snap, &Error)) << Error;
  bool Found = false;
  for (const auto &Cv : Snap.Counters)
    Found = Found || (Cv.Name == "dump.test" && Cv.Value == 3);
  EXPECT_TRUE(Found);
  std::remove(Path.c_str());
}

#ifdef SIGUSR1
TEST_F(TraceTest, Sigusr1TriggersDumpAtNextPollPoint) {
  std::string Path = ::testing::TempDir() + "msem_sigusr1_test.txt";
  std::remove(Path.c_str());
  tl::reset();
  tl::Config C;
  C.Sinks = tl::SinkJsonl;
  C.MetricsFile = Path;
  C.MetricsFormat = "openmetrics";
  tl::configure(C);
  tl::counter("sig.test").add(1);

  ASSERT_EQ(std::raise(SIGUSR1), 0);
  { tl::ScopedTimer Poll("sig.poll"); } // Dtor polls the dump flag.
  ASSERT_TRUE(pathExists(Path));
  std::string Text;
  ASSERT_TRUE(readFileText(Path, Text));
  std::string Error;
  EXPECT_TRUE(tl::validateOpenMetrics(Text, &Error)) << Error;
  EXPECT_NE(Text.find("msem_sig_test_total 1"), std::string::npos);
  std::remove(Path.c_str());
}
#endif

//===----------------------------------------------------------------------===//
// Metrics snapshot JSONL round trip
//===----------------------------------------------------------------------===//

TEST_F(TraceTest, MetricsJsonlRoundTripsThroughSnapshotParser) {
  tl::counter("rt.count").add(2);
  tl::gauge("rt.gauge").set(1.25);
  tl::timer("rt.timer").add(500);
  tl::histogram("rt.hist", {1, 10}).observe(5);
  tl::series("rt.series").record(1, 2);

  tl::MetricsSnapshot Snap;
  std::string Error;
  ASSERT_TRUE(tl::parseMetricsJsonl(tl::renderMetricsJsonl(), Snap, &Error))
      << Error;
  ASSERT_EQ(Snap.Counters.size(), 1u);
  EXPECT_EQ(Snap.Counters[0].Value, 2u);
  ASSERT_EQ(Snap.Histograms.size(), 1u);
  EXPECT_EQ(Snap.Histograms[0].Counts.size(), 3u);
  EXPECT_DOUBLE_EQ(Snap.Histograms[0].Sum, 5.0);
  EXPECT_DOUBLE_EQ(Snap.Histograms[0].Max, 5.0);
  ASSERT_EQ(Snap.SeriesList.size(), 1u);
  ASSERT_EQ(Snap.SeriesList[0].Points.size(), 1u);
  EXPECT_DOUBLE_EQ(Snap.SeriesList[0].Points[0].Y, 2.0);
}

//===----------------------------------------------------------------------===//
// msem.telemetry.v1: the mergeable cross-process snapshot document
//===----------------------------------------------------------------------===//

TEST(TelemetrySnapshotTest, RoundTripsBitwise) {
  tl::MetricsSnapshot S;
  // Values chosen to die in a doubles-only JSON number space: a counter
  // above 2^53 and non-terminating binary fractions.
  S.Counters = {{"a.count", (1ull << 63) + 1}, {"b.count", 7}};
  S.Gauges = {{"a.gauge", 1.0 / 3.0}};
  S.Timers = {{"a.timer", 5, (1ull << 62) + 3}};
  S.Histograms = {{"a.hist", {0.5, 2.0}, {1, 2, 3}, 2.0 / 3.0, 123.5}};
  S.SeriesList = {{"a.series", {{1.0, 2.0, 0}}}}; // Deliberately not carried.

  Json Doc = tl::telemetrySnapshotToJson(S);
  EXPECT_EQ(Doc["schema"].asString(), tl::kTelemetrySchema);

  // Through text, as the heartbeat transport does.
  std::string Error;
  Json Back = Json::parse(Doc.dump(), &Error);
  ASSERT_TRUE(Error.empty()) << Error;
  tl::MetricsSnapshot Out;
  ASSERT_TRUE(tl::telemetrySnapshotFromJson(Back, Out, &Error)) << Error;

  ASSERT_EQ(Out.Counters.size(), 2u);
  EXPECT_EQ(Out.Counters[0].Name, "a.count");
  EXPECT_EQ(Out.Counters[0].Value, (1ull << 63) + 1);
  EXPECT_EQ(Out.Counters[1].Value, 7u);
  ASSERT_EQ(Out.Gauges.size(), 1u);
  EXPECT_EQ(Out.Gauges[0].Value, 1.0 / 3.0);
  ASSERT_EQ(Out.Timers.size(), 1u);
  EXPECT_EQ(Out.Timers[0].Count, 5u);
  EXPECT_EQ(Out.Timers[0].TotalNs, (1ull << 62) + 3);
  ASSERT_EQ(Out.Histograms.size(), 1u);
  EXPECT_EQ(Out.Histograms[0].Bounds, S.Histograms[0].Bounds);
  EXPECT_EQ(Out.Histograms[0].Counts, S.Histograms[0].Counts);
  EXPECT_EQ(Out.Histograms[0].Sum, 2.0 / 3.0);
  EXPECT_EQ(Out.Histograms[0].Max, 123.5);
  // Series are unbounded per-process trajectories; the wire doc drops them.
  EXPECT_TRUE(Out.SeriesList.empty());
}

TEST(TelemetrySnapshotTest, RejectsForeignSchema) {
  Json Doc = tl::telemetrySnapshotToJson(tl::MetricsSnapshot{});
  Doc.set("schema", Json::string("msem.telemetry.v999"));
  tl::MetricsSnapshot Out;
  std::string Error;
  EXPECT_FALSE(tl::telemetrySnapshotFromJson(Doc, Out, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(TelemetrySnapshotTest, MergeFollowsPerKindRules) {
  tl::MetricsSnapshot Dst;
  Dst.Counters = {{"shared.count", 10}, {"only.dst", 1}};
  Dst.Gauges = {{"shared.gauge", 1.0}};
  Dst.Timers = {{"shared.timer", 2, 100}};
  Dst.Histograms = {{"shared.hist", {1.0, 2.0}, {1, 1, 1}, 3.0, 2.5},
                    {"mismatch.hist", {1.0}, {4, 5}, 9.0, 1.0}};

  tl::MetricsSnapshot Src;
  Src.Counters = {{"only.src", 100}, {"shared.count", 5}};
  Src.Gauges = {{"shared.gauge", 7.0}};
  Src.Timers = {{"shared.timer", 3, 50}};
  Src.Histograms = {{"shared.hist", {1.0, 2.0}, {2, 0, 1}, 1.5, 9.0},
                    {"mismatch.hist", {1.0, 2.0}, {1, 1, 1}, 1.0, 1.0}};

  tl::mergeTelemetrySnapshot(Dst, Src);

  // Counters sum; the union ends sorted by name.
  ASSERT_EQ(Dst.Counters.size(), 3u);
  EXPECT_EQ(Dst.Counters[0].Name, "only.dst");
  EXPECT_EQ(Dst.Counters[1].Name, "only.src");
  EXPECT_EQ(Dst.Counters[1].Value, 100u);
  EXPECT_EQ(Dst.Counters[2].Name, "shared.count");
  EXPECT_EQ(Dst.Counters[2].Value, 15u);
  // Gauges: the incoming (later-merged) writer wins.
  ASSERT_EQ(Dst.Gauges.size(), 1u);
  EXPECT_EQ(Dst.Gauges[0].Value, 7.0);
  // Timers sum count and total.
  ASSERT_EQ(Dst.Timers.size(), 1u);
  EXPECT_EQ(Dst.Timers[0].Count, 5u);
  EXPECT_EQ(Dst.Timers[0].TotalNs, 150u);
  // Histograms with agreeing bounds add bucket-wise, sums add, maxima max.
  ASSERT_EQ(Dst.Histograms.size(), 2u);
  const tl::MetricsSnapshot::HistogramValue *Shared = nullptr;
  const tl::MetricsSnapshot::HistogramValue *Mismatch = nullptr;
  for (const auto &H : Dst.Histograms)
    (H.Name == "shared.hist" ? Shared : Mismatch) = &H;
  ASSERT_NE(Shared, nullptr);
  EXPECT_EQ(Shared->Counts, (std::vector<uint64_t>{3, 1, 2}));
  EXPECT_EQ(Shared->Sum, 4.5);
  EXPECT_EQ(Shared->Max, 9.0);
  // A bounds mismatch keeps the destination untouched: merging foreign
  // buckets would fabricate quantiles.
  ASSERT_NE(Mismatch, nullptr);
  EXPECT_EQ(Mismatch->Counts, (std::vector<uint64_t>{4, 5}));
  EXPECT_EQ(Mismatch->Sum, 9.0);

  // Merge order is the determinism contract: folding A then B must equal
  // re-folding the same sequence, regardless of arrival interleavings.
  tl::MetricsSnapshot X, Y;
  tl::mergeTelemetrySnapshot(X, Dst);
  tl::mergeTelemetrySnapshot(Y, Dst);
  EXPECT_EQ(tl::telemetrySnapshotToJson(X).dump(),
            tl::telemetrySnapshotToJson(Y).dump());
}

TEST(TelemetrySnapshotTest, FleetRenderLabelsWorkersAndRollsUp) {
  tl::MetricsSnapshot Local;
  Local.Counters = {{"fleet.count", 1}};
  tl::FleetMember W0{"0", {}};
  W0.Snapshot.Counters = {{"fleet.count", 10}};
  W0.Snapshot.Histograms = {{"fleet.hist", {1.0}, {2, 3}, 4.0, 1.5}};
  tl::FleetMember W1{"1", {}};
  W1.Snapshot.Counters = {{"fleet.count", 100}};

  std::string Doc = tl::renderOpenMetricsFleet(Local, {W0, W1});
  std::string Error;
  EXPECT_TRUE(tl::validateOpenMetrics(Doc, &Error)) << Error;

  // The unlabeled rollup is the merge of all three; the labeled samples
  // attribute each contribution.
  EXPECT_NE(Doc.find("msem_fleet_count_total 111"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("msem_fleet_count_total{worker=\"coordinator\"} 1"),
            std::string::npos);
  EXPECT_NE(Doc.find("msem_fleet_count_total{worker=\"0\"} 10"),
            std::string::npos);
  EXPECT_NE(Doc.find("msem_fleet_count_total{worker=\"1\"} 100"),
            std::string::npos);
}

} // namespace
