//===- search/GeneticSearch.cpp - GA over compiler settings ----------------------===//

#include "search/GeneticSearch.h"

#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

using namespace msem;

namespace {

/// A genome: one level index per searched parameter.
using Genome = GaGenome;

struct GenomeHash {
  size_t operator()(const Genome &G) const {
    size_t H = 0xcbf29ce484222325ull;
    for (size_t V : G) {
      H ^= V + 0x9e3779b97f4a7c15ull;
      H *= 0x100000001b3ull;
    }
    return H;
  }
};

/// Memoizes Model::predict per genome. Elitism and convergence make
/// re-evaluations frequent, so this is both a speedup and the source of
/// the "ga.cache_hit_rate" telemetry gauge.
///
/// Thread-safety by construction: scoreAll collects the distinct unscored
/// genomes on the calling thread, fans only the pure Model::predict calls
/// across the pool, and merges results back on the calling thread -- the
/// memo itself is never touched concurrently, and the hit/evaluation
/// counters are identical for every MSEM_THREADS setting.
class FitnessCache {
public:
  /// Fills Scores[I] with the fitness of Pop[I], evaluating unseen
  /// genomes in parallel through \p Eval (which must be re-entrant).
  template <typename Fn>
  void scoreAll(const std::vector<Genome> &Pop, std::vector<double> &Scores,
                Fn &&Eval) {
    std::vector<const Genome *> Fresh;
    for (const Genome &G : Pop)
      if (!Memo.count(G) && Pending.insert(G).second)
        Fresh.push_back(&G);
    Pending.clear();

    std::vector<double> Fit = globalThreadPool().parallelMap(
        Fresh.size(), [&](size_t I) { return Eval(*Fresh[I]); }, "ga.eval");
    for (size_t I = 0; I < Fresh.size(); ++I)
      Memo.emplace(*Fresh[I], Fit[I]);

    Evaluations += Pop.size();
    Hits += Pop.size() - Fresh.size();
    Scores.resize(Pop.size());
    for (size_t I = 0; I < Pop.size(); ++I)
      Scores[I] = Memo.at(Pop[I]);
  }

  uint64_t evaluations() const { return Evaluations; }
  uint64_t hits() const { return Hits; }

private:
  std::unordered_map<Genome, double, GenomeHash> Memo;
  std::unordered_set<Genome, GenomeHash> Pending; ///< Batch-local dedup.
  uint64_t Evaluations = 0;
  uint64_t Hits = 0;
};

} // namespace

GaResult msem::searchOptimalSettings(const Model &M,
                                     const ParameterSpace &Space,
                                     const DesignPoint &Frozen,
                                     const GaOptions &Options) {
  telemetry::ScopedTimer Span("ga.search");
  assert(Frozen.size() == Space.size() && "frozen point arity mismatch");
  const size_t SearchVars = Space.numCompilerParams();
  Rng R(Options.Seed);

  auto ToPoint = [&](const Genome &G) {
    DesignPoint P = Frozen;
    for (size_t V = 0; V < SearchVars; ++V)
      P[V] = Space.param(V).Levels[G[V]];
    return P;
  };
  FitnessCache Cache;
  // The fitness oracle: pure and re-entrant (Model::predict is const on
  // immutable fitted state), so generations evaluate in parallel.
  auto Fitness = [&](const Genome &G) {
    return M.predict(Space.encode(ToPoint(G)));
  };
  auto RandomGenome = [&]() {
    Genome G(SearchVars);
    for (size_t V = 0; V < SearchVars; ++V)
      G[V] = R.nextBelow(Space.param(V).numLevels());
    return G;
  };

  std::vector<Genome> Population;
  std::vector<double> Scores;
  double BestSoFar = 1e300;
  int SinceImprovement = 0;
  int Gen = 0;
  if (Options.ResumeFrom) {
    // Continue a checkpointed search: the captured state was taken at the
    // top of a generation, so restoring it and re-entering the loop there
    // replays the remainder bitwise (Model::predict is pure; the fitness
    // memo only affects telemetry counters).
    const GaState &S = *Options.ResumeFrom;
    assert(S.Population.size() == S.Scores.size() &&
           "corrupt GA state: population/score arity mismatch");
    Population = S.Population;
    Scores = S.Scores;
    BestSoFar = S.BestSoFar;
    SinceImprovement = S.SinceImprovement;
    Gen = S.Generation;
    R.setState(S.RngState);
  } else {
    Population.reserve(Options.Population);
    for (size_t I = 0; I < Options.Population; ++I)
      Population.push_back(RandomGenome());
    Cache.scoreAll(Population, Scores, Fitness);
  }

  auto Tournament = [&]() -> const Genome & {
    size_t Best = R.nextBelow(Population.size());
    for (size_t T = 1; T < Options.TournamentSize; ++T) {
      size_t Cand = R.nextBelow(Population.size());
      if (Scores[Cand] < Scores[Best])
        Best = Cand;
    }
    return Population[Best];
  };

  GaResult Result;
  for (; Gen < Options.Generations; ++Gen) {
    // Keyed on the generation number so resumed searches produce the same
    // span ids as an uninterrupted run.
    telemetry::ScopedTimer GenSpan("ga.generation", Gen);
    // The checkpoint hook, at the exact point GaState reconstructs: a
    // state captured here and resumed continues as if never interrupted.
    if (Options.OnGeneration) {
      GaState Snapshot;
      Snapshot.Generation = Gen;
      Snapshot.Population = Population;
      Snapshot.Scores = Scores;
      Snapshot.BestSoFar = BestSoFar;
      Snapshot.SinceImprovement = SinceImprovement;
      Snapshot.RngState = R.state();
      if (!Options.OnGeneration(Snapshot)) {
        Result.Paused = true;
        break;
      }
    }
    // Convergence-based early stop.
    double GenBest = *std::min_element(Scores.begin(), Scores.end());
    if (telemetry::enabled()) {
      double Sum = 0.0;
      for (double S : Scores)
        Sum += S;
      telemetry::series("ga.best_fitness")
          .record(static_cast<double>(Gen), GenBest);
      telemetry::series("ga.mean_fitness")
          .record(static_cast<double>(Gen),
                  Sum / static_cast<double>(Scores.size()));
    }
    if (GenBest < BestSoFar - 1e-12 * (1.0 + std::fabs(BestSoFar))) {
      BestSoFar = GenBest;
      SinceImprovement = 0;
    } else if (Options.StallGenerations > 0 &&
               ++SinceImprovement >= Options.StallGenerations) {
      break;
    }
    // Rank for elitism.
    std::vector<size_t> Order(Population.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(),
              [&](size_t A, size_t B) { return Scores[A] < Scores[B]; });

    std::vector<Genome> Next;
    Next.reserve(Population.size());
    for (size_t E = 0; E < Options.EliteCount && E < Order.size(); ++E)
      Next.push_back(Population[Order[E]]);

    while (Next.size() < Population.size()) {
      Genome Child = Tournament();
      if (R.chance(Options.CrossoverRate)) {
        const Genome &Other = Tournament();
        for (size_t V = 0; V < SearchVars; ++V)
          if (R.chance(0.5))
            Child[V] = Other[V];
      }
      for (size_t V = 0; V < SearchVars; ++V)
        if (R.chance(Options.MutationRate))
          Child[V] = R.nextBelow(Space.param(V).numLevels());
      Next.push_back(std::move(Child));
    }
    Population = std::move(Next);
    Cache.scoreAll(Population, Scores, Fitness);
  }

  size_t Best = 0;
  for (size_t I = 1; I < Population.size(); ++I)
    if (Scores[I] < Scores[Best])
      Best = I;
  Result.BestPoint = ToPoint(Population[Best]);
  Result.PredictedResponse = Scores[Best];
  Result.GenerationsRun = Gen;
  if (telemetry::enabled()) {
    telemetry::counter("ga.searches").add(1);
    telemetry::counter("ga.generations").add(static_cast<uint64_t>(Gen));
    telemetry::counter("ga.evaluations").add(Cache.evaluations());
    telemetry::counter("ga.cache_hits").add(Cache.hits());
    if (Cache.evaluations())
      telemetry::gauge("ga.cache_hit_rate")
          .set(static_cast<double>(Cache.hits()) /
               static_cast<double>(Cache.evaluations()));
  }
  return Result;
}
