//===- search/GeneticSearch.h - GA over compiler settings ---------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6.3 search: a genetic algorithm that explores the
/// compiler-flag/heuristic subspace for a *frozen* microarchitectural
/// configuration, using an empirical model as a zero-cost fitness oracle.
/// Population members are level-index genomes; selection is tournament,
/// crossover is uniform, mutation re-draws a level.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SEARCH_GENETICSEARCH_H
#define MSEM_SEARCH_GENETICSEARCH_H

#include "design/ParameterSpace.h"
#include "model/Model.h"

namespace msem {

/// GA knobs.
struct GaOptions {
  size_t Population = 48;
  int Generations = 40;
  /// Stop early after this many generations without improvement of the
  /// best fitness (the paper's GA "terminates either when the optimal
  /// design point is reached or the number of generations exceeds a user
  /// specified threshold"). 0 disables early stopping.
  int StallGenerations = 12;
  double CrossoverRate = 0.9;
  double MutationRate = 0.08;
  size_t EliteCount = 2;
  size_t TournamentSize = 3;
  uint64_t Seed = 0x6A5EED;
};

/// Result of the model-based search.
struct GaResult {
  DesignPoint BestPoint;       ///< Full point (search vars + frozen vars).
  double PredictedResponse = 0; ///< Model's prediction at the optimum.
  int GenerationsRun = 0;
};

/// Minimizes Model.predict over the first numCompilerParams() coordinates
/// of \p Space; the remaining coordinates stay frozen at \p Frozen's
/// values (the platform configuration).
GaResult searchOptimalSettings(const Model &M, const ParameterSpace &Space,
                               const DesignPoint &Frozen,
                               const GaOptions &Options = GaOptions());

} // namespace msem

#endif // MSEM_SEARCH_GENETICSEARCH_H
