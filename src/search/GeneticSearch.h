//===- search/GeneticSearch.h - GA over compiler settings ---------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6.3 search: a genetic algorithm that explores the
/// compiler-flag/heuristic subspace for a *frozen* microarchitectural
/// configuration, using an empirical model as a zero-cost fitness oracle.
/// Population members are level-index genomes; selection is tournament,
/// crossover is uniform, mutation re-draws a level.
///
/// The search is checkpointable at generation granularity: GaOptions can
/// install an OnGeneration observer that sees the full GaState (population,
/// scores, stall counters, RNG state) at the top of every generation, and a
/// search resumed from a captured GaState continues bitwise identically to
/// one that never stopped.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SEARCH_GENETICSEARCH_H
#define MSEM_SEARCH_GENETICSEARCH_H

#include "design/ParameterSpace.h"
#include "model/Model.h"

#include <array>
#include <functional>

namespace msem {

/// One population member: a level index per searched parameter.
using GaGenome = std::vector<size_t>;

/// Everything the GA loop carries between generations -- capturing this at
/// the top of generation G and resuming from it replays the remainder of
/// the search exactly.
struct GaState {
  int Generation = 0;
  std::vector<GaGenome> Population;
  std::vector<double> Scores; ///< Fitness of Population (same order).
  double BestSoFar = 1e300;
  int SinceImprovement = 0;
  std::array<uint64_t, 4> RngState{};
};

/// GA knobs.
struct GaOptions {
  size_t Population = 48;
  int Generations = 40;
  /// Stop early after this many generations without improvement of the
  /// best fitness (the paper's GA "terminates either when the optimal
  /// design point is reached or the number of generations exceeds a user
  /// specified threshold"). 0 disables early stopping.
  int StallGenerations = 12;
  double CrossoverRate = 0.9;
  double MutationRate = 0.08;
  size_t EliteCount = 2;
  size_t TournamentSize = 3;
  uint64_t Seed = 0x6A5EED;
  /// Called at the top of every generation with the resumable state;
  /// campaigns checkpoint here. Returning false pauses the search: the
  /// result carries the best point seen so far and Paused = true.
  std::function<bool(const GaState &)> OnGeneration;
  /// When non-null, skip initialization and continue from this captured
  /// state (Seed is then only used for stream-compatibility of a state
  /// captured from a run with the same options).
  const GaState *ResumeFrom = nullptr;
};

/// Result of the model-based search.
struct GaResult {
  DesignPoint BestPoint;       ///< Full point (search vars + frozen vars).
  double PredictedResponse = 0; ///< Model's prediction at the optimum.
  int GenerationsRun = 0;
  bool Paused = false; ///< OnGeneration requested a pause (resumable).
};

/// Minimizes Model.predict over the first numCompilerParams() coordinates
/// of \p Space; the remaining coordinates stay frozen at \p Frozen's
/// values (the platform configuration).
GaResult searchOptimalSettings(const Model &M, const ParameterSpace &Space,
                               const DesignPoint &Frozen,
                               const GaOptions &Options = GaOptions());

} // namespace msem

#endif // MSEM_SEARCH_GENETICSEARCH_H
