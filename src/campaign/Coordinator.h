//===- campaign/Coordinator.h - Multi-process campaign coordinator -*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Distributed campaigns: the coordinator breaks the single-process
/// MSEM_THREADS ceiling by fanning measurement -- and only measurement --
/// out to N worker processes, while keeping every result bitwise identical
/// to a single-process run.
///
/// ## How bitwise identity survives distribution
///
/// The campaign engine is deterministic given measured responses, and a
/// measured response is a pure function of its design point (fault
/// injection included: the injection decision is a deterministic hash of
/// (point, attempt)). So the coordinator runs the *entire* campaign
/// in-process -- design, fitting, GA, checkpointing, publishing -- and
/// installs ExperimentSpec::RemoteMeasure so each surface's measureAll
/// hands its distinct unmeasured batch to workers instead of the local
/// simulator. Per-point outcomes come back byte-equal to what
/// ResponseSurface::measureOutcomes would have produced (workers run the
/// identical measureWithPolicy code via the shared surfaceOptionsFor
/// path), and the unchanged reduction in measureAll does the rest. The
/// shard->job assignment is fixed (plan index I -> worker I % N) and the
/// merge walks workers in sequential order, so the merged checkpoint,
/// registry artifacts and predictions are bitwise identical at any worker
/// count and any MSEM_THREADS.
///
/// ## How worker death is survived
///
/// Workers rewrite their round shard atomically after every chunk, so a
/// SIGKILLed worker's completed outcomes are durable; its replacement
/// preloads the partial shard and measures only the missing points -- the
/// campaign resume-by-replay idiom at shard granularity. Death itself is
/// routed through the spec's FaultPolicy: Retry respawns the worker (up to
/// MaxAttempts), Skip lets the dead worker's unmeasured points fall out as
/// skipped (NaN) responses, Abort fails the campaign with the worker's
/// death in the diagnostic.
///
/// Multi-host note: nothing below requires fork/exec -- workers started by
/// hand on N machines against a shared (network) shard directory behave
/// identically, except death-respawn supervision is the operator's job.
/// Set CoordinatorOptions::SpawnWorkers = false for that mode.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CAMPAIGN_COORDINATOR_H
#define MSEM_CAMPAIGN_COORDINATOR_H

#include "campaign/Experiment.h"
#include "campaign/ShardStore.h"
#include "telemetry/OpenMetrics.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace msem {

/// How a campaign is distributed.
struct CoordinatorOptions {
  /// Worker processes (>= 1). 1 still exercises the full wire protocol.
  int Workers = 2;
  /// Shard directory the coordinator and workers exchange files through
  /// ("" = "<checkpoint path>.shards", or "msem_cache/shards" when the
  /// spec has no checkpoint).
  std::string ShardDir;
  /// argv of a worker process. The coordinator execs it verbatim with
  /// MSEM_WORKER_DIR / MSEM_WORKER_ID set (and the introspection /
  /// profiler knobs scrubbed so N children do not fight over one port
  /// file). Default: this binary's "worker" subcommand.
  std::vector<std::string> WorkerCommand = {"/proc/self/exe", "worker"};
  /// Spawn (and on Retry respawn) workers via fork/exec. False = workers
  /// are started externally (multi-host); the coordinator only plans,
  /// polls and merges.
  bool SpawnWorkers = true;
  /// Poll interval while waiting on worker shards, microseconds.
  unsigned PollMicros = 2000;
};

/// One worker's live status, as surfaced under /statusz and the
/// /healthz "workers" fragment.
struct WorkerStatus {
  int Worker = 0;
  int64_t Pid = 0;       ///< 0 when not spawned / already reaped.
  bool Alive = false;
  int Respawns = 0;      ///< Deaths survived via the Retry policy.
  uint64_t Round = 0;    ///< Last round seen in its heartbeat.
  size_t Measured = 0;   ///< Outcomes recorded in that round.
  int64_t HeartbeatUnixSeconds = 0;
};

/// Runs campaigns distributed across worker processes. Construct with
/// options, then call run() or resume() once (mirroring Campaign).
class Coordinator {
public:
  explicit Coordinator(CoordinatorOptions Opts);
  ~Coordinator();

  Coordinator(const Coordinator &) = delete;
  Coordinator &operator=(const Coordinator &) = delete;

  /// Runs \p Spec distributed: writes the campaign manifest, spawns
  /// workers, and executes the full campaign engine in-process with
  /// measurement delegated to the workers. Returns exactly what a
  /// single-process runExperiment(Spec) would.
  ExperimentResult run(ExperimentSpec Spec);

  /// Resumes the checkpoint at \p Path distributed, via Campaign::resume
  /// with the RemoteMeasure hook reinstalled on the embedded spec.
  ExperimentResult resume(const std::string &Path,
                          const ExperimentBudget *NewBudget = nullptr);

  /// Per-worker status snapshot (thread-safe; the /statusz provider and
  /// tests read this while the campaign runs).
  std::vector<WorkerStatus> workerStatus() const;

  /// The latest telemetry snapshot from each worker's heartbeat, in
  /// worker-index order -- the deterministic fold order the fleet
  /// /metrics view is defined over. Workers whose heartbeat has not yet
  /// carried a snapshot are absent. Thread-safe.
  std::vector<telemetry::FleetMember> fleetMembers() const;

private:
  struct Child {
    int64_t Pid = 0;
    bool Alive = false;
    int Respawns = 0;
    bool GaveUp = false; ///< Dead and no longer eligible for respawn.
  };

  ExperimentResult runCampaign(
      const ExperimentSpec &Spec,
      const std::function<ExperimentResult(const ExperimentSpec &)> &Go);

  /// The RemoteMeasure implementation: plans one round, waits for every
  /// worker shard (supervising children), and merges outcomes in worker
  /// order. \p Spec is the running campaign's spec (fault policy).
  std::vector<PointOutcome>
  measureRound(const ExperimentSpec &Spec, const ExperimentJob &Job,
               const std::vector<DesignPoint> &Points);

  void spawnWorker(int Worker);
  /// waitpid(WNOHANG) sweep; applies the Retry respawn policy to
  /// unexpected deaths. Returns a human-readable death note for worker
  /// \p Worker when it has permanently failed.
  void superviseChildren(const FaultPolicy &Faults);
  /// Publishes a Done plan and reaps every child.
  void shutdownWorkers();
  void refreshStatus();

  CoordinatorOptions Opts;
  std::string Dir;
  uint64_t Epoch = 0;
  uint64_t Round = 0;
  std::vector<Child> Children;
  std::vector<std::string> DeathNotes; ///< Per worker, "" while healthy.

  mutable std::mutex StatusMutex;
  std::vector<WorkerStatus> Status;
  /// Latest per-worker telemetry snapshots (see fleetMembers()); replaced
  /// wholesale on every refresh -- heartbeat snapshots are cumulative per
  /// worker process, so respawn means replace, never accumulate.
  std::vector<telemetry::FleetMember> Fleet;
};

/// A worker process's identity and wiring, normally parsed from
/// MSEM_WORKER_DIR / MSEM_WORKER_ID (set by the coordinator, or by hand
/// in multi-host mode).
struct WorkerOptions {
  std::string Dir;
  int Worker = -1;
  /// Shard flush granularity: outcomes measured between atomic shard
  /// rewrites (1 = maximum durability; the default balances fsync cost).
  size_t FlushEvery = 4;
  /// Poll interval while waiting for a new round plan, microseconds.
  unsigned PollMicros = 2000;
  /// "w:n" death injection (see MSEM_WORKER_KILL_AFTER in support/Env.h).
  std::string KillAfter;
};

/// The worker entrypoint: joins the campaign at WorkerOptions::Dir and
/// measures its share of every round until the coordinator publishes the
/// Done sentinel. Returns a process exit code (0 = clean shutdown).
int runWorker(const WorkerOptions &Opts);

} // namespace msem

#endif // MSEM_CAMPAIGN_COORDINATOR_H
