//===- campaign/Coordinator.cpp - Multi-process campaign coordinator -------===//

#include "campaign/Coordinator.h"

#include "campaign/Campaign.h"
#include "support/Env.h"
#include "support/Error.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/StatsServer.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

using namespace msem;

namespace {

std::string dirJoin(const std::string &Dir, const std::string &Name) {
  if (Dir.empty() || Dir.back() == '/')
    return Dir + Name;
  return Dir + "/" + Name;
}

/// The once-per-directory marker the kill-after test hook writes before
/// raising SIGKILL, so a respawned worker does not kill itself again.
std::string killMarkerPath(const std::string &Dir, int Worker) {
  return dirJoin(Dir, formatString("killed-w%d", Worker));
}

std::string describeExit(int Wstatus) {
  if (WIFSIGNALED(Wstatus))
    return formatString("signal %d", WTERMSIG(Wstatus));
  if (WIFEXITED(Wstatus))
    return formatString("exit status %d", WEXITSTATUS(Wstatus));
  return "unknown exit";
}

} // namespace

//===----------------------------------------------------------------------===//
// Coordinator
//===----------------------------------------------------------------------===//

Coordinator::Coordinator(CoordinatorOptions O) : Opts(std::move(O)) {
  Opts.Workers = std::max(1, Opts.Workers);
}

Coordinator::~Coordinator() {
  // Belt and braces: never leak worker processes, even on an error path
  // that skipped the orderly shutdown.
  for (Child &C : Children)
    if (C.Alive && C.Pid > 0) {
      ::kill(static_cast<pid_t>(C.Pid), SIGKILL);
      int Wstatus = 0;
      ::waitpid(static_cast<pid_t>(C.Pid), &Wstatus, 0);
      C.Alive = false;
    }
}

void Coordinator::spawnWorker(int Worker) {
  // argv / envp are assembled pre-fork: the child only calls execve
  // (async-signal-safe), never the allocator.
  std::vector<char *> Argv;
  for (const std::string &Arg : Opts.WorkerCommand)
    Argv.push_back(const_cast<char *>(Arg.c_str()));
  Argv.push_back(nullptr);

  // Children inherit the environment minus the knobs that must not be
  // shared: worker identity (replaced), and the introspection/profiler
  // outputs N children would otherwise clobber.
  std::vector<std::string> EnvStorage;
  for (char **E = environ; E && *E; ++E) {
    const char *Entry = *E;
    if (strncmp(Entry, "MSEM_WORKER_DIR=", 16) == 0 ||
        strncmp(Entry, "MSEM_WORKER_ID=", 15) == 0 ||
        strncmp(Entry, "MSEM_STATS_PORT=", 16) == 0 ||
        strncmp(Entry, "MSEM_STATS_PORT_FILE=", 21) == 0 ||
        strncmp(Entry, "MSEM_PROFILE=", 13) == 0)
      continue;
    EnvStorage.emplace_back(Entry);
  }
  EnvStorage.push_back("MSEM_WORKER_DIR=" + Dir);
  EnvStorage.push_back(formatString("MSEM_WORKER_ID=%d", Worker));
  std::vector<char *> Envp;
  for (const std::string &E : EnvStorage)
    Envp.push_back(const_cast<char *>(E.c_str()));
  Envp.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0)
    fatalError(formatString("coordinator: fork failed for worker %d: %s",
                            Worker, strerror(errno)));
  if (Pid == 0) {
    ::execve(Argv[0], Argv.data(), Envp.data());
    // Exec failed; 127 mirrors the shell's convention.
    _exit(127);
  }
  Children[static_cast<size_t>(Worker)].Pid = Pid;
  Children[static_cast<size_t>(Worker)].Alive = true;
  telemetry::count("coordinator.spawns");
}

void Coordinator::superviseChildren(const FaultPolicy &Faults) {
  if (!Opts.SpawnWorkers)
    return;
  for (size_t K = 0; K < Children.size(); ++K) {
    Child &C = Children[K];
    if (!C.Alive || C.Pid <= 0)
      continue;
    int Wstatus = 0;
    pid_t Reaped = ::waitpid(static_cast<pid_t>(C.Pid), &Wstatus, WNOHANG);
    if (Reaped != static_cast<pid_t>(C.Pid))
      continue;
    C.Alive = false;
    std::string How = describeExit(Wstatus);
    telemetry::count("coordinator.worker_deaths");
    // A worker's death is a fault, handled by the campaign's fault
    // policy: Retry respawns it (its partial shard survives, so only the
    // missing points get re-measured); Skip and Abort give up on the
    // worker and let measureRound route the consequences through
    // measureAll's skip/abort handling.
    if (Faults.OnFault == FaultAction::Retry &&
        C.Respawns + 1 < std::max(1, Faults.MaxAttempts)) {
      ++C.Respawns;
      telemetry::count("coordinator.worker_respawns");
      fprintf(stderr, "msem coordinator: worker %zu died (%s); respawning "
                      "(attempt %d)\n",
              K, How.c_str(), C.Respawns + 1);
      spawnWorker(static_cast<int>(K));
      continue;
    }
    C.GaveUp = true;
    DeathNotes[K] = Faults.OnFault == FaultAction::Retry
                        ? formatString("worker %zu died (%s) after %d "
                                       "attempt(s)",
                                       K, How.c_str(), C.Respawns + 1)
                        : formatString("worker %zu died (%s)", K, How.c_str());
    fprintf(stderr, "msem coordinator: %s; giving up on it (%s policy)\n",
            DeathNotes[K].c_str(), faultActionName(Faults.OnFault));
  }
}

void Coordinator::refreshStatus() {
  std::vector<WorkerStatus> Fresh(static_cast<size_t>(Opts.Workers));
  for (size_t K = 0; K < Fresh.size(); ++K) {
    WorkerStatus &S = Fresh[K];
    S.Worker = static_cast<int>(K);
    if (K < Children.size()) {
      S.Pid = Children[K].Pid;
      S.Alive = Children[K].Alive;
      S.Respawns = Children[K].Respawns;
    }
    WorkerHeartbeat Hb;
    std::string Error;
    if (loadHeartbeat(heartbeatPath(Dir, static_cast<int>(K)), Hb, &Error)) {
      S.Round = Hb.Round;
      S.Measured = Hb.Measured;
      S.HeartbeatUnixSeconds = Hb.UnixSeconds;
    }
  }
  std::lock_guard<std::mutex> Lock(StatusMutex);
  Status = std::move(Fresh);
}

std::vector<WorkerStatus> Coordinator::workerStatus() const {
  std::lock_guard<std::mutex> Lock(StatusMutex);
  return Status;
}

std::vector<PointOutcome>
Coordinator::measureRound(const ExperimentSpec &Spec, const ExperimentJob &Job,
                          const std::vector<DesignPoint> &Points) {
  if (Points.empty())
    return {};
  telemetry::ScopedTimer Span("coordinator.round", Round + 1);
  const size_t N = Points.size();
  const int W = Opts.Workers;
  ++Round;

  RoundPlan Plan;
  Plan.Round = Round;
  Plan.Epoch = Epoch;
  Plan.Workers = W;
  Plan.Surface = {Job.Workload, Job.Input, Job.Metric};
  Plan.Points = Points;
  std::string Error;
  if (!savePlan(Plan, planPath(Dir), &Error))
    fatalError("coordinator: cannot publish round plan: " + Error);

  std::vector<PointOutcome> Outcomes(N);
  std::vector<bool> Collected(static_cast<size_t>(W), true);
  for (size_t I = 0; I < N; ++I)
    Collected[I % W] = false; // Only workers with assigned points report.

  // Splices worker K's shard into Outcomes; every entry is validated
  // against the plan so a stale or foreign file can never corrupt the
  // campaign.
  auto splice = [&](const WorkerShard &Shard, size_t K) {
    for (size_t J = 0; J < Shard.Indices.size(); ++J) {
      size_t Idx = Shard.Indices[J];
      if (Idx >= N || Idx % W != K || Shard.Points[J] != Points[Idx])
        fatalError(formatString(
            "coordinator: worker %zu shard for round %llu does not match "
            "the plan (index %zu)",
            K, static_cast<unsigned long long>(Round), Idx));
      Outcomes[Idx] = Shard.Outcomes[J];
    }
  };

  unsigned TicksSinceStatus = ~0u;
  for (;;) {
    superviseChildren(Spec.Faults);
    bool AllDone = true;
    for (size_t K = 0; K < static_cast<size_t>(W); ++K) {
      if (Collected[K])
        continue;
      WorkerShard Shard;
      std::string ShardError;
      bool Loaded =
          loadWorkerShard(workerShardPath(Dir, Round, static_cast<int>(K)),
                          Shard, &ShardError) &&
          Shard.Round == Round && Shard.Epoch == Epoch;
      if (Loaded && Shard.Done) {
        splice(Shard, K);
        Collected[K] = true;
        continue;
      }
      if (!DeathNotes[K].empty()) {
        // The worker is permanently gone. Its durable partial results are
        // still valid (responses are pure functions of their points); the
        // missing ones carry the death note, which measureAll turns into
        // a skip or an abort per the fault policy.
        if (Loaded)
          splice(Shard, K);
        for (size_t I = K; I < N; I += W)
          if (!Outcomes[I].Ok && Outcomes[I].Error.empty())
            Outcomes[I].Error = DeathNotes[K];
        Collected[K] = true;
        continue;
      }
      AllDone = false;
    }
    if (AllDone)
      break;
    if (++TicksSinceStatus >= 16) { // ~every 32ms at the default poll
      refreshStatus();
      TicksSinceStatus = 0;
    }
    ::usleep(Opts.PollMicros);
  }
  refreshStatus();
  return Outcomes;
}

ExperimentResult Coordinator::runCampaign(
    const ExperimentSpec &Spec,
    const std::function<ExperimentResult(const ExperimentSpec &)> &Go) {
  // Shard-directory layout and lifecycle are documented in ShardStore.h.
  Dir = !Opts.ShardDir.empty() ? Opts.ShardDir
        : !Spec.CheckpointPath.empty()
            ? Spec.CheckpointPath + ".shards"
            : "msem_cache/shards";
  std::string Error;
  if (!createDirectories(Dir, &Error))
    fatalError("coordinator: cannot create shard directory: " + Error);

  // The epoch tags this incarnation's plan/shard files so leftovers from
  // an earlier run of the same directory are ignored, not merged. It
  // never reaches the checkpoint, so it cannot perturb bitwise identity.
  Epoch = static_cast<uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()) ^
          (static_cast<uint64_t>(::getpid()) << 32) ^ 0x9E3779B97F4A7C15ull;
  Round = 0;
  Children.assign(static_cast<size_t>(Opts.Workers), Child{});
  DeathNotes.assign(static_cast<size_t>(Opts.Workers), std::string());

  CampaignManifest Manifest;
  Manifest.Workers = Opts.Workers;
  Manifest.Spec = Spec;
  if (!saveManifest(Manifest, manifestPath(Dir), &Error))
    fatalError("coordinator: cannot write campaign manifest: " + Error);
  // Publish an empty round-0 plan: it overwrites any stale plan (so a
  // fresh worker cannot act on a previous incarnation's round) and
  // carries this incarnation's epoch.
  RoundPlan Boot;
  Boot.Epoch = Epoch;
  Boot.Workers = Opts.Workers;
  if (!savePlan(Boot, planPath(Dir), &Error))
    fatalError("coordinator: cannot publish boot plan: " + Error);

  if (Opts.SpawnWorkers)
    for (int K = 0; K < Opts.Workers; ++K)
      spawnWorker(K);
  refreshStatus();

  // Live worker progress: a /statusz section and a /healthz fragment for
  // the lifetime of the distributed run.
  ScopedStatusProvider StatusSection("workers", [this] {
    std::string Text;
    int64_t Now = static_cast<int64_t>(::time(nullptr));
    for (const WorkerStatus &S : workerStatus())
      Text += formatString(
          "worker %d: pid=%lld alive=%d respawns=%d round=%llu "
          "measured=%zu heartbeat_age_s=%lld\n",
          S.Worker, static_cast<long long>(S.Pid), S.Alive ? 1 : 0,
          S.Respawns, static_cast<unsigned long long>(S.Round), S.Measured,
          S.HeartbeatUnixSeconds
              ? static_cast<long long>(Now - S.HeartbeatUnixSeconds)
              : -1ll);
    return Text;
  });
  ScopedHealthProvider HealthSection("workers", [this] {
    std::vector<WorkerStatus> Snapshot = workerStatus();
    size_t Alive = 0;
    int Respawns = 0;
    uint64_t MaxRound = 0;
    Json PerWorker = Json::array();
    for (const WorkerStatus &S : Snapshot) {
      Alive += S.Alive ? 1 : 0;
      Respawns += S.Respawns;
      MaxRound = std::max(MaxRound, S.Round);
      Json WJ = Json::object();
      WJ.set("worker", Json::number(S.Worker));
      WJ.set("alive", Json::boolean(S.Alive));
      WJ.set("respawns", Json::number(S.Respawns));
      WJ.set("round", Json::number(static_cast<double>(S.Round)));
      WJ.set("measured", Json::number(static_cast<double>(S.Measured)));
      PerWorker.push(std::move(WJ));
    }
    Json H = Json::object();
    H.set("count", Json::number(static_cast<double>(Snapshot.size())));
    H.set("alive", Json::number(static_cast<double>(Alive)));
    H.set("respawns", Json::number(Respawns));
    H.set("round", Json::number(static_cast<double>(MaxRound)));
    H.set("workers", std::move(PerWorker));
    return H.dump();
  });

  ExperimentResult Result = Go(Spec);
  shutdownWorkers();
  return Result;
}

ExperimentResult Coordinator::run(ExperimentSpec Spec) {
  return runCampaign(Spec, [this](const ExperimentSpec &Prepared) {
    ExperimentSpec Distributed = Prepared;
    Distributed.RemoteMeasure =
        [this, Policy = Prepared](const ExperimentJob &Job,
                                  const std::string &,
                                  const std::vector<DesignPoint> &Points) {
          return measureRound(Policy, Job, Points);
        };
    Campaign C(std::move(Distributed));
    return C.run();
  });
}

ExperimentResult Coordinator::resume(const std::string &Path,
                                     const ExperimentBudget *NewBudget) {
  // Load the checkpoint first: the manifest the workers read must carry
  // the *embedded* spec (the resume contract), not anything the caller
  // has on hand.
  CampaignCheckpoint Ckpt;
  std::string Error;
  if (!loadCheckpoint(Path, Ckpt, &Error)) {
    ExperimentResult Result;
    Result.Status = CampaignStatus::Failed;
    Result.Error = Error;
    return Result;
  }
  Ckpt.Spec.CheckpointPath = Path;
  return runCampaign(Ckpt.Spec, [&](const ExperimentSpec &Prepared) {
    FaultPolicy Faults = Prepared.Faults;
    return Campaign::resume(
        Path, NewBudget, [this, Faults](ExperimentSpec &Embedded) {
          Embedded.RemoteMeasure =
              [this, Faults](const ExperimentJob &Job, const std::string &,
                             const std::vector<DesignPoint> &Points) {
                ExperimentSpec Policy;
                Policy.Faults = Faults;
                return measureRound(Policy, Job, Points);
              };
        });
  });
}

void Coordinator::shutdownWorkers() {
  if (Dir.empty())
    return;
  // The Done sentinel: workers exit their poll loop cleanly.
  RoundPlan Done;
  Done.Round = Round + 1;
  Done.Epoch = Epoch;
  Done.Workers = Opts.Workers;
  Done.Done = true;
  std::string Error;
  if (!savePlan(Done, planPath(Dir), &Error))
    fprintf(stderr, "msem coordinator: cannot publish shutdown plan: %s\n",
            Error.c_str());

  if (!Opts.SpawnWorkers)
    return;
  // Give workers a grace period to see the sentinel, then force the
  // issue -- the coordinator must never hang on a wedged child.
  const int GraceTicks = 5 * 1000 * 1000 / 2000; // ~5s at 2ms ticks
  for (int Tick = 0; Tick < GraceTicks; ++Tick) {
    bool AnyAlive = false;
    for (Child &C : Children) {
      if (!C.Alive || C.Pid <= 0)
        continue;
      int Wstatus = 0;
      if (::waitpid(static_cast<pid_t>(C.Pid), &Wstatus, WNOHANG) ==
          static_cast<pid_t>(C.Pid))
        C.Alive = false;
      else
        AnyAlive = true;
    }
    if (!AnyAlive)
      break;
    ::usleep(2000);
  }
  for (Child &C : Children) {
    if (!C.Alive || C.Pid <= 0)
      continue;
    ::kill(static_cast<pid_t>(C.Pid), SIGKILL);
    int Wstatus = 0;
    ::waitpid(static_cast<pid_t>(C.Pid), &Wstatus, 0);
    C.Alive = false;
  }
  refreshStatus();
}

//===----------------------------------------------------------------------===//
// Worker entrypoint
//===----------------------------------------------------------------------===//

namespace {

/// "w:n" -> kill worker w after n fresh measurements (see
/// MSEM_WORKER_KILL_AFTER).
struct KillSwitch {
  bool Armed = false;
  int Worker = -1;
  size_t After = 0;
};

KillSwitch parseKillAfter(const std::string &Spec) {
  KillSwitch K;
  size_t Colon = Spec.find(':');
  if (Colon == std::string::npos)
    return K;
  char *End = nullptr;
  long W = strtol(Spec.c_str(), &End, 10);
  unsigned long long N = strtoull(Spec.c_str() + Colon + 1, &End, 10);
  if (W < 0 || N == 0)
    return K;
  K.Armed = true;
  K.Worker = static_cast<int>(W);
  K.After = static_cast<size_t>(N);
  return K;
}

} // namespace

int msem::runWorker(const WorkerOptions &Opts) {
  if (Opts.Dir.empty() || Opts.Worker < 0) {
    fprintf(stderr, "msem worker: MSEM_WORKER_DIR and MSEM_WORKER_ID (>= 0) "
                    "are required\n");
    return 2;
  }

  // The coordinator writes the manifest before spawning; a brief retry
  // covers the multi-host case where workers start first.
  CampaignManifest Manifest;
  std::string Error;
  for (int Attempt = 0;; ++Attempt) {
    if (loadManifest(manifestPath(Opts.Dir), Manifest, &Error))
      break;
    if (Attempt >= 1000) {
      fprintf(stderr, "msem worker %d: %s\n", Opts.Worker, Error.c_str());
      return 2;
    }
    ::usleep(Opts.PollMicros);
  }

  ParameterSpace Space = makeSpace(Manifest.Spec.Space);
  // Surfaces are memory-only (CacheDir overridden to ""): the worker's
  // durable memo is its shard file, and the shared binary/trace caches do
  // the expensive reuse. Keyed like the campaign's own surfaces.
  const std::string NoCache;
  std::map<std::string, std::unique_ptr<ResponseSurface>> Surfaces;

  KillSwitch Kill = parseKillAfter(Opts.KillAfter);
  if (Kill.Armed && Kill.Worker != Opts.Worker)
    Kill.Armed = false;
  if (Kill.Armed && pathExists(killMarkerPath(Opts.Dir, Opts.Worker)))
    Kill.Armed = false; // Already fired once in this directory.

  auto writeBeat = [&](uint64_t Round, size_t Measured) {
    WorkerHeartbeat Hb;
    Hb.Worker = Opts.Worker;
    Hb.Pid = static_cast<int64_t>(::getpid());
    Hb.Round = Round;
    Hb.Measured = Measured;
    Hb.UnixSeconds = static_cast<int64_t>(::time(nullptr));
    std::string BeatError;
    saveHeartbeat(Hb, heartbeatPath(Opts.Dir, Opts.Worker), &BeatError);
  };

  uint64_t LastRound = 0;
  size_t FreshTotal = 0; // Fresh measurements by this process (kill hook).
  writeBeat(0, 0);

  for (;;) {
    RoundPlan Plan;
    if (!loadPlan(planPath(Opts.Dir), Plan, &Error)) {
      ::usleep(Opts.PollMicros);
      continue;
    }
    if (Plan.Done) {
      writeBeat(Plan.Round, 0);
      return 0;
    }
    if (Plan.Round == 0 || Plan.Round == LastRound || Plan.Workers <= 0) {
      ::usleep(Opts.PollMicros);
      continue;
    }

    // --- One round ------------------------------------------------------
    const int W = Plan.Workers;
    std::vector<size_t> Mine;
    for (size_t I = static_cast<size_t>(Opts.Worker); I < Plan.Points.size();
         I += W)
      Mine.push_back(I);

    WorkerShard Shard;
    Shard.Round = Plan.Round;
    Shard.Epoch = Plan.Epoch;
    Shard.Worker = Opts.Worker;
    Shard.Surface = Plan.Surface;
    const std::string ShardPath =
        workerShardPath(Opts.Dir, Plan.Round, Opts.Worker);

    // Resume from our own partial shard: a respawned worker re-measures
    // only the points its previous incarnation had not flushed.
    std::map<size_t, PointOutcome> Done;
    {
      WorkerShard Existing;
      std::string LoadError;
      if (loadWorkerShard(ShardPath, Existing, &LoadError) &&
          Existing.Round == Plan.Round && Existing.Epoch == Plan.Epoch)
        for (size_t J = 0; J < Existing.Indices.size(); ++J) {
          size_t Idx = Existing.Indices[J];
          if (Idx < Plan.Points.size() &&
              Existing.Points[J] == Plan.Points[Idx])
            Done.emplace(Idx, Existing.Outcomes[J]);
        }
    }

    auto flush = [&](bool Complete) {
      Shard.Indices.clear();
      Shard.Points.clear();
      Shard.Outcomes.clear();
      for (size_t Idx : Mine) {
        auto It = Done.find(Idx);
        if (It == Done.end())
          continue;
        Shard.Indices.push_back(Idx);
        Shard.Points.push_back(Plan.Points[Idx]);
        Shard.Outcomes.push_back(It->second);
      }
      Shard.Done = Complete;
      std::string FlushError;
      if (!saveWorkerShard(Shard, ShardPath, &FlushError))
        fatalError(formatString("msem worker %d: cannot write shard: ",
                                Opts.Worker) +
                   FlushError);
      writeBeat(Plan.Round, Shard.Outcomes.size());
    };

    ExperimentJob Job;
    Job.Workload = Plan.Surface.Workload;
    Job.Input = Plan.Surface.Input;
    Job.Metric = Plan.Surface.Metric;
    const std::string Key = surfaceKeyFor(Job);
    auto SurfaceIt = Surfaces.find(Key);
    if (SurfaceIt == Surfaces.end())
      SurfaceIt =
          Surfaces
              .emplace(Key, std::make_unique<ResponseSurface>(
                                Space, surfaceOptionsFor(Manifest.Spec, Job,
                                                         &NoCache)))
              .first;
    ResponseSurface &Surface = *SurfaceIt->second;

    std::vector<size_t> Missing;
    for (size_t Idx : Mine)
      if (!Done.count(Idx))
        Missing.push_back(Idx);

    const size_t Chunk = std::max<size_t>(1, Opts.FlushEvery);
    for (size_t Begin = 0; Begin < Missing.size(); Begin += Chunk) {
      size_t End = std::min(Missing.size(), Begin + Chunk);
      std::vector<DesignPoint> Batch;
      Batch.reserve(End - Begin);
      for (size_t J = Begin; J < End; ++J)
        Batch.push_back(Plan.Points[Missing[J]]);
      std::vector<PointOutcome> Out = Surface.measureOutcomes(Batch);
      for (size_t J = Begin; J < End; ++J)
        Done.emplace(Missing[J], Out[J - Begin]);
      FreshTotal += End - Begin;
      flush(false);
      if (Kill.Armed && FreshTotal >= Kill.After) {
        // Marker first (atomic), then die without cleanup -- the whole
        // point is simulating kill -9 at a deterministic moment.
        writeFileAtomic(killMarkerPath(Opts.Dir, Opts.Worker), "killed\n",
                        nullptr);
        ::raise(SIGKILL);
      }
    }
    flush(true);
    LastRound = Plan.Round;
  }
}
