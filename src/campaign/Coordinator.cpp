//===- campaign/Coordinator.cpp - Multi-process campaign coordinator -------===//

#include "campaign/Coordinator.h"

#include "campaign/Campaign.h"
#include "support/Env.h"
#include "support/Error.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/StatsServer.h"
#include "telemetry/EventLog.h"
#include "telemetry/Introspection.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <optional>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

using namespace msem;

namespace {

std::string dirJoin(const std::string &Dir, const std::string &Name) {
  if (Dir.empty() || Dir.back() == '/')
    return Dir + Name;
  return Dir + "/" + Name;
}

/// The once-per-directory marker the kill-after test hook writes before
/// raising SIGKILL, so a respawned worker does not kill itself again.
std::string killMarkerPath(const std::string &Dir, int Worker) {
  return dirJoin(Dir, formatString("killed-w%d", Worker));
}

/// Per-worker telemetry output files inside the shard directory:
/// "events-w<K>.jsonl", "trace-w<K>.json", "metrics-w<K>.jsonl",
/// "profile-w<K>.collapsed". The coordinator rewrites the corresponding
/// MSEM_* env knobs to these paths when spawning, so N children never
/// clobber one shared file -- and the per-worker events files become the
/// input to the stitched fleet trace (msem_report --merge-traces) and the
/// /tracez fleet section.
std::string workerAuxPath(const std::string &Dir, const char *Kind,
                          int Worker, const char *Ext) {
  return dirJoin(Dir, formatString("%s-w%d.%s", Kind, Worker, Ext));
}

/// The /tracez fleet section: the newest few spans from every worker's
/// events file, as a flat per-worker list (the full stitched tree is
/// msem_report --merge-traces territory).
std::string fleetTracezSection(const std::string &Dir, int Workers) {
  std::string Out = "\n--- fleet (per-worker recent spans) ---\n";
  constexpr size_t MaxPerWorker = 15;
  for (int K = 0; K < Workers; ++K) {
    std::string Text;
    if (!readFileText(workerAuxPath(Dir, "events", K, "jsonl"), Text,
                      nullptr)) {
      Out += formatString("worker %d: no events file (workers write one "
                          "when MSEM_TELEMETRY includes 'events')\n",
                          K);
      continue;
    }
    telemetry::EventLog Log;
    std::string Error;
    if (!telemetry::parseEventsJsonl(Text, Log, &Error)) {
      // Workers rewrite their events file between rounds; a torn read is
      // a display blip, not an error worth more than a note.
      Out += formatString("worker %d: unreadable events file (%s)\n", K,
                          Error.c_str());
      continue;
    }
    Out += formatString("worker %d: %zu spans\n", K, Log.Spans.size());
    size_t Begin =
        Log.Spans.size() > MaxPerWorker ? Log.Spans.size() - MaxPerWorker : 0;
    for (size_t I = Begin; I < Log.Spans.size(); ++I) {
      const telemetry::SpanEvent &S = Log.Spans[I];
      Out += formatString("  %s  %.3f ms", S.Name.c_str(),
                          static_cast<double>(S.DurationNs) / 1e6);
      if (!S.Detail.empty())
        Out += "  [" + S.Detail + "]";
      Out += '\n';
    }
  }
  return Out;
}

std::string describeExit(int Wstatus) {
  if (WIFSIGNALED(Wstatus))
    return formatString("signal %d", WTERMSIG(Wstatus));
  if (WIFEXITED(Wstatus))
    return formatString("exit status %d", WEXITSTATUS(Wstatus));
  return "unknown exit";
}

} // namespace

//===----------------------------------------------------------------------===//
// Coordinator
//===----------------------------------------------------------------------===//

Coordinator::Coordinator(CoordinatorOptions O) : Opts(std::move(O)) {
  Opts.Workers = std::max(1, Opts.Workers);
}

Coordinator::~Coordinator() {
  // Belt and braces: never leak worker processes, even on an error path
  // that skipped the orderly shutdown.
  for (Child &C : Children)
    if (C.Alive && C.Pid > 0) {
      ::kill(static_cast<pid_t>(C.Pid), SIGKILL);
      int Wstatus = 0;
      ::waitpid(static_cast<pid_t>(C.Pid), &Wstatus, 0);
      C.Alive = false;
    }
}

void Coordinator::spawnWorker(int Worker) {
  // argv / envp are assembled pre-fork: the child only calls execve
  // (async-signal-safe), never the allocator.
  std::vector<char *> Argv;
  for (const std::string &Arg : Opts.WorkerCommand)
    Argv.push_back(const_cast<char *>(Arg.c_str()));
  Argv.push_back(nullptr);

  // Children inherit the environment minus the knobs that must not be
  // shared: worker identity (replaced), the stats-server port N children
  // would fight over, and the telemetry/profiler output files -- those are
  // re-pointed at per-worker paths in the shard directory rather than
  // dropped, so a child's sinks write "events-w<K>.jsonl" instead of
  // clobbering the parent's files.
  std::vector<std::string> EnvStorage;
  for (char **E = environ; E && *E; ++E) {
    const char *Entry = *E;
    if (strncmp(Entry, "MSEM_WORKER_DIR=", 16) == 0 ||
        strncmp(Entry, "MSEM_WORKER_ID=", 15) == 0 ||
        strncmp(Entry, "MSEM_STATS_PORT=", 16) == 0 ||
        strncmp(Entry, "MSEM_STATS_PORT_FILE=", 21) == 0 ||
        strncmp(Entry, "MSEM_PROFILE=", 13) == 0 ||
        strncmp(Entry, "MSEM_EVENTS_FILE=", 17) == 0 ||
        strncmp(Entry, "MSEM_TRACE_FILE=", 16) == 0 ||
        strncmp(Entry, "MSEM_METRICS_FILE=", 18) == 0)
      continue;
    EnvStorage.emplace_back(Entry);
  }
  EnvStorage.push_back("MSEM_WORKER_DIR=" + Dir);
  EnvStorage.push_back(formatString("MSEM_WORKER_ID=%d", Worker));
  EnvStorage.push_back("MSEM_EVENTS_FILE=" +
                       workerAuxPath(Dir, "events", Worker, "jsonl"));
  EnvStorage.push_back("MSEM_TRACE_FILE=" +
                       workerAuxPath(Dir, "trace", Worker, "json"));
  EnvStorage.push_back("MSEM_METRICS_FILE=" +
                       workerAuxPath(Dir, "metrics", Worker, "jsonl"));
  // A profiled campaign profiles its whole fleet: each worker collects
  // its own collapsed stacks, which msem_report --profile merges into one
  // fleet flamegraph.
  if (::getenv("MSEM_PROFILE"))
    EnvStorage.push_back("MSEM_PROFILE=" +
                         workerAuxPath(Dir, "profile", Worker, "collapsed"));
  std::vector<char *> Envp;
  for (const std::string &E : EnvStorage)
    Envp.push_back(const_cast<char *>(E.c_str()));
  Envp.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0)
    fatalError(formatString("coordinator: fork failed for worker %d: %s",
                            Worker, strerror(errno)));
  if (Pid == 0) {
    ::execve(Argv[0], Argv.data(), Envp.data());
    // Exec failed; 127 mirrors the shell's convention.
    _exit(127);
  }
  Children[static_cast<size_t>(Worker)].Pid = Pid;
  Children[static_cast<size_t>(Worker)].Alive = true;
  telemetry::count("coordinator.spawns");
}

void Coordinator::superviseChildren(const FaultPolicy &Faults) {
  if (!Opts.SpawnWorkers)
    return;
  for (size_t K = 0; K < Children.size(); ++K) {
    Child &C = Children[K];
    if (!C.Alive || C.Pid <= 0)
      continue;
    int Wstatus = 0;
    pid_t Reaped = ::waitpid(static_cast<pid_t>(C.Pid), &Wstatus, WNOHANG);
    if (Reaped != static_cast<pid_t>(C.Pid))
      continue;
    C.Alive = false;
    std::string How = describeExit(Wstatus);
    telemetry::count("coordinator.worker_deaths");
    // A worker's death is a fault, handled by the campaign's fault
    // policy: Retry respawns it (its partial shard survives, so only the
    // missing points get re-measured); Skip and Abort give up on the
    // worker and let measureRound route the consequences through
    // measureAll's skip/abort handling.
    if (Faults.OnFault == FaultAction::Retry &&
        C.Respawns + 1 < std::max(1, Faults.MaxAttempts)) {
      ++C.Respawns;
      telemetry::count("coordinator.worker_respawns");
      fprintf(stderr, "msem coordinator: worker %zu died (%s); respawning "
                      "(attempt %d)\n",
              K, How.c_str(), C.Respawns + 1);
      spawnWorker(static_cast<int>(K));
      continue;
    }
    C.GaveUp = true;
    DeathNotes[K] = Faults.OnFault == FaultAction::Retry
                        ? formatString("worker %zu died (%s) after %d "
                                       "attempt(s)",
                                       K, How.c_str(), C.Respawns + 1)
                        : formatString("worker %zu died (%s)", K, How.c_str());
    fprintf(stderr, "msem coordinator: %s; giving up on it (%s policy)\n",
            DeathNotes[K].c_str(), faultActionName(Faults.OnFault));
  }
}

void Coordinator::refreshStatus() {
  std::vector<WorkerStatus> Fresh(static_cast<size_t>(Opts.Workers));
  std::vector<telemetry::FleetMember> FreshFleet;
  for (size_t K = 0; K < Fresh.size(); ++K) {
    WorkerStatus &S = Fresh[K];
    S.Worker = static_cast<int>(K);
    if (K < Children.size()) {
      S.Pid = Children[K].Pid;
      S.Alive = Children[K].Alive;
      S.Respawns = Children[K].Respawns;
    }
    WorkerHeartbeat Hb;
    std::string Error;
    if (loadHeartbeat(heartbeatPath(Dir, static_cast<int>(K)), Hb, &Error)) {
      S.Round = Hb.Round;
      S.Measured = Hb.Measured;
      S.HeartbeatUnixSeconds = Hb.UnixSeconds;
      if (Hb.HasTelemetry)
        FreshFleet.push_back(
            {std::to_string(K), std::move(Hb.Telemetry)});
    }
  }
  std::lock_guard<std::mutex> Lock(StatusMutex);
  Status = std::move(Fresh);
  Fleet = std::move(FreshFleet);
}

std::vector<WorkerStatus> Coordinator::workerStatus() const {
  std::lock_guard<std::mutex> Lock(StatusMutex);
  return Status;
}

std::vector<telemetry::FleetMember> Coordinator::fleetMembers() const {
  std::lock_guard<std::mutex> Lock(StatusMutex);
  return Fleet;
}

std::vector<PointOutcome>
Coordinator::measureRound(const ExperimentSpec &Spec, const ExperimentJob &Job,
                          const std::vector<DesignPoint> &Points) {
  if (Points.empty())
    return {};
  telemetry::ScopedTimer Span("coordinator.round", Round + 1);
  const size_t N = Points.size();
  const int W = Opts.Workers;
  ++Round;

  RoundPlan Plan;
  Plan.Round = Round;
  Plan.Epoch = Epoch;
  Plan.Workers = W;
  Plan.Surface = {Job.Workload, Job.Input, Job.Metric};
  Plan.Points = Points;
  std::string Error;
  if (!savePlan(Plan, planPath(Dir), &Error))
    fatalError("coordinator: cannot publish round plan: " + Error);

  std::vector<PointOutcome> Outcomes(N);
  std::vector<bool> Collected(static_cast<size_t>(W), true);
  for (size_t I = 0; I < N; ++I)
    Collected[I % W] = false; // Only workers with assigned points report.

  // Splices worker K's shard into Outcomes; every entry is validated
  // against the plan so a stale or foreign file can never corrupt the
  // campaign.
  auto splice = [&](const WorkerShard &Shard, size_t K) {
    for (size_t J = 0; J < Shard.Indices.size(); ++J) {
      size_t Idx = Shard.Indices[J];
      if (Idx >= N || Idx % W != K || Shard.Points[J] != Points[Idx])
        fatalError(formatString(
            "coordinator: worker %zu shard for round %llu does not match "
            "the plan (index %zu)",
            K, static_cast<unsigned long long>(Round), Idx));
      Outcomes[Idx] = Shard.Outcomes[J];
    }
  };

  unsigned TicksSinceStatus = ~0u;
  for (;;) {
    superviseChildren(Spec.Faults);
    bool AllDone = true;
    for (size_t K = 0; K < static_cast<size_t>(W); ++K) {
      if (Collected[K])
        continue;
      WorkerShard Shard;
      std::string ShardError;
      bool Loaded =
          loadWorkerShard(workerShardPath(Dir, Round, static_cast<int>(K)),
                          Shard, &ShardError) &&
          Shard.Round == Round && Shard.Epoch == Epoch;
      if (Loaded && Shard.Done) {
        splice(Shard, K);
        Collected[K] = true;
        continue;
      }
      if (!DeathNotes[K].empty()) {
        // The worker is permanently gone. Its durable partial results are
        // still valid (responses are pure functions of their points); the
        // missing ones carry the death note, which measureAll turns into
        // a skip or an abort per the fault policy.
        if (Loaded)
          splice(Shard, K);
        for (size_t I = K; I < N; I += W)
          if (!Outcomes[I].Ok && Outcomes[I].Error.empty())
            Outcomes[I].Error = DeathNotes[K];
        Collected[K] = true;
        continue;
      }
      AllDone = false;
    }
    if (AllDone)
      break;
    if (++TicksSinceStatus >= 16) { // ~every 32ms at the default poll
      refreshStatus();
      TicksSinceStatus = 0;
    }
    ::usleep(Opts.PollMicros);
  }
  refreshStatus();
  return Outcomes;
}

ExperimentResult Coordinator::runCampaign(
    const ExperimentSpec &Spec,
    const std::function<ExperimentResult(const ExperimentSpec &)> &Go) {
  // The fleet hooks below plug into the introspection routes; make sure
  // they exist even when the caller skipped ensureIntrospection.
  telemetry::ensureIntrospection();

  // Shard-directory layout and lifecycle are documented in ShardStore.h.
  Dir = !Opts.ShardDir.empty() ? Opts.ShardDir
        : !Spec.CheckpointPath.empty()
            ? Spec.CheckpointPath + ".shards"
            : "msem_cache/shards";
  std::string Error;
  if (!createDirectories(Dir, &Error))
    fatalError("coordinator: cannot create shard directory: " + Error);

  // The epoch tags this incarnation's plan/shard files so leftovers from
  // an earlier run of the same directory are ignored, not merged. It
  // never reaches the checkpoint, so it cannot perturb bitwise identity.
  Epoch = static_cast<uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()) ^
          (static_cast<uint64_t>(::getpid()) << 32) ^ 0x9E3779B97F4A7C15ull;
  Round = 0;
  Children.assign(static_cast<size_t>(Opts.Workers), Child{});
  DeathNotes.assign(static_cast<size_t>(Opts.Workers), std::string());

  // The fleet trace root. Workers adopt (trace, span) from the manifest,
  // so campaign -> worker -> point -> simulator spans form one causal
  // tree across processes, stitched back together by msem_report
  // --merge-traces. The identity is salted differently from
  // Campaign::run's own "campaign.run" root, so the two traces -- the
  // engine's (whose shape the determinism tests pin) and the fleet's --
  // never collide.
  telemetry::ScopedTimer FleetSpan(
      "coordinator.campaign",
      telemetry::ScopedTimer::TraceRoot{
          telemetry::deriveTraceId("coordinator:" + Spec.Name, Spec.Seed)});
  if (FleetSpan.capturing())
    FleetSpan.setDetail(Spec.Name);

  CampaignManifest Manifest;
  Manifest.Workers = Opts.Workers;
  Manifest.Spec = Spec;
  Manifest.TraceId = FleetSpan.traceId();
  Manifest.SpanId = FleetSpan.spanId();
  if (!saveManifest(Manifest, manifestPath(Dir), &Error))
    fatalError("coordinator: cannot write campaign manifest: " + Error);
  // Publish an empty round-0 plan: it overwrites any stale plan (so a
  // fresh worker cannot act on a previous incarnation's round) and
  // carries this incarnation's epoch.
  RoundPlan Boot;
  Boot.Epoch = Epoch;
  Boot.Workers = Opts.Workers;
  if (!savePlan(Boot, planPath(Dir), &Error))
    fatalError("coordinator: cannot publish boot plan: " + Error);

  if (Opts.SpawnWorkers)
    for (int K = 0; K < Opts.Workers; ++K)
      spawnWorker(K);
  refreshStatus();

  // Live worker progress: a /statusz section and a /healthz fragment for
  // the lifetime of the distributed run.
  // heartbeat_age_s is clamped to >= 0: heartbeats carry the *worker's*
  // wall clock, and on a multi-host shard directory its clock may run
  // ahead of ours -- a negative age reads as an alert, not as skew. -1
  // still means "no heartbeat seen yet".
  auto heartbeatAge = [](int64_t Now, int64_t BeatUnixSeconds) {
    if (!BeatUnixSeconds)
      return -1ll;
    return static_cast<long long>(
        std::max<int64_t>(0, Now - BeatUnixSeconds));
  };
  ScopedStatusProvider StatusSection("workers", [this, heartbeatAge] {
    std::string Text;
    int64_t Now = static_cast<int64_t>(::time(nullptr));
    for (const WorkerStatus &S : workerStatus())
      Text += formatString(
          "worker %d: pid=%lld alive=%d respawns=%d round=%llu "
          "measured=%zu heartbeat_age_s=%lld\n",
          S.Worker, static_cast<long long>(S.Pid), S.Alive ? 1 : 0,
          S.Respawns, static_cast<unsigned long long>(S.Round), S.Measured,
          heartbeatAge(Now, S.HeartbeatUnixSeconds));
    return Text;
  });
  // The fleet telemetry plane at a glance: how much metric state each
  // worker's latest heartbeat carried (the full exposition is /metrics).
  ScopedStatusProvider FleetSection("fleet", [this] {
    std::vector<telemetry::FleetMember> Members = fleetMembers();
    std::string Text = formatString("reporting workers: %zu\n", Members.size());
    for (const telemetry::FleetMember &M : Members)
      Text += formatString(
          "worker %s: counters=%zu gauges=%zu timers=%zu histograms=%zu\n",
          M.Worker.c_str(), M.Snapshot.Counters.size(),
          M.Snapshot.Gauges.size(), M.Snapshot.Timers.size(),
          M.Snapshot.Histograms.size());
    return Text;
  });
  ScopedHealthProvider HealthSection("workers", [this, heartbeatAge] {
    std::vector<WorkerStatus> Snapshot = workerStatus();
    int64_t Now = static_cast<int64_t>(::time(nullptr));
    size_t Alive = 0;
    int Respawns = 0;
    uint64_t MaxRound = 0;
    Json PerWorker = Json::array();
    for (const WorkerStatus &S : Snapshot) {
      Alive += S.Alive ? 1 : 0;
      Respawns += S.Respawns;
      MaxRound = std::max(MaxRound, S.Round);
      Json WJ = Json::object();
      WJ.set("worker", Json::number(S.Worker));
      WJ.set("alive", Json::boolean(S.Alive));
      WJ.set("respawns", Json::number(S.Respawns));
      WJ.set("round", Json::number(static_cast<double>(S.Round)));
      WJ.set("measured", Json::number(static_cast<double>(S.Measured)));
      WJ.set("heartbeat_age_s",
             Json::number(static_cast<double>(
                 heartbeatAge(Now, S.HeartbeatUnixSeconds))));
      PerWorker.push(std::move(WJ));
    }
    Json H = Json::object();
    H.set("count", Json::number(static_cast<double>(Snapshot.size())));
    H.set("alive", Json::number(static_cast<double>(Alive)));
    H.set("respawns", Json::number(Respawns));
    H.set("round", Json::number(static_cast<double>(MaxRound)));
    H.set("workers", std::move(PerWorker));
    return H.dump();
  });

  // Fleet observability hooks for the lifetime of the run: /metrics
  // switches to the worker-labeled fleet exposition (unlabeled rollup +
  // worker="coordinator" + worker="<K>" series) and /tracez gains a
  // per-worker recent-span section. RAII-cleared so a finished campaign
  // leaves the process's introspection exactly as it found it.
  telemetry::setFleetMetricsProvider([this] {
    return telemetry::renderOpenMetricsFleet(telemetry::snapshotMetrics(),
                                             fleetMembers());
  });
  telemetry::setTracezSection(
      [Dir = Dir, Workers = Opts.Workers] {
        return fleetTracezSection(Dir, Workers);
      });
  struct HookGuard {
    ~HookGuard() {
      telemetry::setFleetMetricsProvider(nullptr);
      telemetry::setTracezSection(nullptr);
    }
  } Hooks;

  ExperimentResult Result = Go(Spec);
  shutdownWorkers();
  return Result;
}

ExperimentResult Coordinator::run(ExperimentSpec Spec) {
  return runCampaign(Spec, [this](const ExperimentSpec &Prepared) {
    ExperimentSpec Distributed = Prepared;
    Distributed.RemoteMeasure =
        [this, Policy = Prepared](const ExperimentJob &Job,
                                  const std::string &,
                                  const std::vector<DesignPoint> &Points) {
          return measureRound(Policy, Job, Points);
        };
    Campaign C(std::move(Distributed));
    return C.run();
  });
}

ExperimentResult Coordinator::resume(const std::string &Path,
                                     const ExperimentBudget *NewBudget) {
  // Load the checkpoint first: the manifest the workers read must carry
  // the *embedded* spec (the resume contract), not anything the caller
  // has on hand.
  CampaignCheckpoint Ckpt;
  std::string Error;
  if (!loadCheckpoint(Path, Ckpt, &Error)) {
    ExperimentResult Result;
    Result.Status = CampaignStatus::Failed;
    Result.Error = Error;
    return Result;
  }
  Ckpt.Spec.CheckpointPath = Path;
  return runCampaign(Ckpt.Spec, [&](const ExperimentSpec &Prepared) {
    FaultPolicy Faults = Prepared.Faults;
    return Campaign::resume(
        Path, NewBudget, [this, Faults](ExperimentSpec &Embedded) {
          Embedded.RemoteMeasure =
              [this, Faults](const ExperimentJob &Job, const std::string &,
                             const std::vector<DesignPoint> &Points) {
                ExperimentSpec Policy;
                Policy.Faults = Faults;
                return measureRound(Policy, Job, Points);
              };
        });
  });
}

void Coordinator::shutdownWorkers() {
  if (Dir.empty())
    return;
  // The Done sentinel: workers exit their poll loop cleanly.
  RoundPlan Done;
  Done.Round = Round + 1;
  Done.Epoch = Epoch;
  Done.Workers = Opts.Workers;
  Done.Done = true;
  std::string Error;
  if (!savePlan(Done, planPath(Dir), &Error))
    fprintf(stderr, "msem coordinator: cannot publish shutdown plan: %s\n",
            Error.c_str());

  if (!Opts.SpawnWorkers)
    return;
  // Give workers a grace period to see the sentinel, then force the
  // issue -- the coordinator must never hang on a wedged child.
  const int GraceTicks = 5 * 1000 * 1000 / 2000; // ~5s at 2ms ticks
  for (int Tick = 0; Tick < GraceTicks; ++Tick) {
    bool AnyAlive = false;
    for (Child &C : Children) {
      if (!C.Alive || C.Pid <= 0)
        continue;
      int Wstatus = 0;
      if (::waitpid(static_cast<pid_t>(C.Pid), &Wstatus, WNOHANG) ==
          static_cast<pid_t>(C.Pid))
        C.Alive = false;
      else
        AnyAlive = true;
    }
    if (!AnyAlive)
      break;
    ::usleep(2000);
  }
  for (Child &C : Children) {
    if (!C.Alive || C.Pid <= 0)
      continue;
    ::kill(static_cast<pid_t>(C.Pid), SIGKILL);
    int Wstatus = 0;
    ::waitpid(static_cast<pid_t>(C.Pid), &Wstatus, 0);
    C.Alive = false;
  }
  refreshStatus();
}

//===----------------------------------------------------------------------===//
// Worker entrypoint
//===----------------------------------------------------------------------===//

namespace {

/// "w:n" -> kill worker w after n fresh measurements (see
/// MSEM_WORKER_KILL_AFTER).
struct KillSwitch {
  bool Armed = false;
  int Worker = -1;
  size_t After = 0;
};

KillSwitch parseKillAfter(const std::string &Spec) {
  KillSwitch K;
  size_t Colon = Spec.find(':');
  if (Colon == std::string::npos)
    return K;
  char *End = nullptr;
  long W = strtol(Spec.c_str(), &End, 10);
  unsigned long long N = strtoull(Spec.c_str() + Colon + 1, &End, 10);
  if (W < 0 || N == 0)
    return K;
  K.Armed = true;
  K.Worker = static_cast<int>(W);
  K.After = static_cast<size_t>(N);
  return K;
}

} // namespace

int msem::runWorker(const WorkerOptions &Opts) {
  if (Opts.Dir.empty() || Opts.Worker < 0) {
    fprintf(stderr, "msem worker: MSEM_WORKER_DIR and MSEM_WORKER_ID (>= 0) "
                    "are required\n");
    return 2;
  }

  // Workers are full observability citizens: introspection arms the
  // SIGPROF profiler when the coordinator re-pointed MSEM_PROFILE at this
  // worker's collapsed-stacks file (the stats server itself stays off --
  // the coordinator scrubs MSEM_STATS_PORT), and forced metric recording
  // means every heartbeat carries a meaningful msem.telemetry.v1 snapshot
  // even when no sink is configured. Neither touches measurement results:
  // outcomes are pure functions of their design points.
  telemetry::ensureIntrospection();
  telemetry::setMetricsForced(true);

  // The coordinator writes the manifest before spawning; a brief retry
  // covers the multi-host case where workers start first.
  CampaignManifest Manifest;
  std::string Error;
  for (int Attempt = 0;; ++Attempt) {
    if (loadManifest(manifestPath(Opts.Dir), Manifest, &Error))
      break;
    if (Attempt >= 1000) {
      fprintf(stderr, "msem worker %d: %s\n", Opts.Worker, Error.c_str());
      return 2;
    }
    ::usleep(Opts.PollMicros);
  }

  // Join the coordinator's causal tree when the manifest carries a trace
  // context: this process's spans become "worker.run" under the
  // coordinator's "coordinator.campaign" root, keyed by worker index so
  // sibling identity is stable at any worker count and spawn order.
  std::optional<telemetry::ContextGuard> FleetCtxGuard;
  std::optional<telemetry::ScopedTimer> RunSpan;
  if (Manifest.TraceId) {
    telemetry::TraceContext FleetCtx;
    FleetCtx.TraceId = Manifest.TraceId;
    FleetCtx.SpanId = Manifest.SpanId;
    FleetCtxGuard.emplace(FleetCtx);
    RunSpan.emplace("worker.run", static_cast<uint64_t>(Opts.Worker));
    if (RunSpan->capturing())
      RunSpan->setDetail(formatString("worker=%d", Opts.Worker));
  }

  ParameterSpace Space = makeSpace(Manifest.Spec.Space);
  // Surfaces are memory-only (CacheDir overridden to ""): the worker's
  // durable memo is its shard file, and the shared binary/trace caches do
  // the expensive reuse. Keyed like the campaign's own surfaces.
  const std::string NoCache;
  std::map<std::string, std::unique_ptr<ResponseSurface>> Surfaces;

  KillSwitch Kill = parseKillAfter(Opts.KillAfter);
  if (Kill.Armed && Kill.Worker != Opts.Worker)
    Kill.Armed = false;
  if (Kill.Armed && pathExists(killMarkerPath(Opts.Dir, Opts.Worker)))
    Kill.Armed = false; // Already fired once in this directory.

  auto writeBeat = [&](uint64_t Round, size_t Measured) {
    WorkerHeartbeat Hb;
    Hb.Worker = Opts.Worker;
    Hb.Pid = static_cast<int64_t>(::getpid());
    Hb.Round = Round;
    Hb.Measured = Measured;
    Hb.UnixSeconds = static_cast<int64_t>(::time(nullptr));
    // Every beat carries the full metric state: the heartbeat file is the
    // transport of the fleet metrics plane (the coordinator folds the
    // latest snapshot from each worker into its /metrics view).
    Hb.Telemetry = telemetry::snapshotMetrics();
    Hb.HasTelemetry = true;
    std::string BeatError;
    saveHeartbeat(Hb, heartbeatPath(Opts.Dir, Opts.Worker), &BeatError);
  };

  uint64_t LastRound = 0;
  size_t FreshTotal = 0; // Fresh measurements by this process (kill hook).
  writeBeat(0, 0);

  for (;;) {
    RoundPlan Plan;
    if (!loadPlan(planPath(Opts.Dir), Plan, &Error)) {
      ::usleep(Opts.PollMicros);
      continue;
    }
    if (Plan.Done) {
      writeBeat(Plan.Round, 0);
      return 0;
    }
    if (Plan.Round == 0 || Plan.Round == LastRound || Plan.Workers <= 0) {
      ::usleep(Opts.PollMicros);
      continue;
    }

    // --- One round ------------------------------------------------------
    // Keyed by round number: a child of worker.run (when the fleet trace
    // is live), order-independent across resumed/respawned incarnations.
    telemetry::ScopedTimer RoundSpan("worker.round", Plan.Round);
    const int W = Plan.Workers;
    std::vector<size_t> Mine;
    for (size_t I = static_cast<size_t>(Opts.Worker); I < Plan.Points.size();
         I += W)
      Mine.push_back(I);

    WorkerShard Shard;
    Shard.Round = Plan.Round;
    Shard.Epoch = Plan.Epoch;
    Shard.Worker = Opts.Worker;
    Shard.Surface = Plan.Surface;
    const std::string ShardPath =
        workerShardPath(Opts.Dir, Plan.Round, Opts.Worker);

    // Resume from our own partial shard: a respawned worker re-measures
    // only the points its previous incarnation had not flushed.
    std::map<size_t, PointOutcome> Done;
    {
      WorkerShard Existing;
      std::string LoadError;
      if (loadWorkerShard(ShardPath, Existing, &LoadError) &&
          Existing.Round == Plan.Round && Existing.Epoch == Plan.Epoch)
        for (size_t J = 0; J < Existing.Indices.size(); ++J) {
          size_t Idx = Existing.Indices[J];
          if (Idx < Plan.Points.size() &&
              Existing.Points[J] == Plan.Points[Idx])
            Done.emplace(Idx, Existing.Outcomes[J]);
        }
    }

    auto flush = [&](bool Complete) {
      Shard.Indices.clear();
      Shard.Points.clear();
      Shard.Outcomes.clear();
      for (size_t Idx : Mine) {
        auto It = Done.find(Idx);
        if (It == Done.end())
          continue;
        Shard.Indices.push_back(Idx);
        Shard.Points.push_back(Plan.Points[Idx]);
        Shard.Outcomes.push_back(It->second);
      }
      Shard.Done = Complete;
      std::string FlushError;
      if (!saveWorkerShard(Shard, ShardPath, &FlushError))
        fatalError(formatString("msem worker %d: cannot write shard: ",
                                Opts.Worker) +
                   FlushError);
      writeBeat(Plan.Round, Shard.Outcomes.size());
    };

    ExperimentJob Job;
    Job.Workload = Plan.Surface.Workload;
    Job.Input = Plan.Surface.Input;
    Job.Metric = Plan.Surface.Metric;
    const std::string Key = surfaceKeyFor(Job);
    auto SurfaceIt = Surfaces.find(Key);
    if (SurfaceIt == Surfaces.end())
      SurfaceIt =
          Surfaces
              .emplace(Key, std::make_unique<ResponseSurface>(
                                Space, surfaceOptionsFor(Manifest.Spec, Job,
                                                         &NoCache)))
              .first;
    ResponseSurface &Surface = *SurfaceIt->second;

    std::vector<size_t> Missing;
    for (size_t Idx : Mine)
      if (!Done.count(Idx))
        Missing.push_back(Idx);

    const size_t Chunk = std::max<size_t>(1, Opts.FlushEvery);
    for (size_t Begin = 0; Begin < Missing.size(); Begin += Chunk) {
      size_t End = std::min(Missing.size(), Begin + Chunk);
      std::vector<DesignPoint> Batch;
      Batch.reserve(End - Begin);
      for (size_t J = Begin; J < End; ++J)
        Batch.push_back(Plan.Points[Missing[J]]);
      std::vector<PointOutcome> Out = Surface.measureOutcomes(Batch);
      for (size_t J = Begin; J < End; ++J)
        Done.emplace(Missing[J], Out[J - Begin]);
      FreshTotal += End - Begin;
      flush(false);
      if (Kill.Armed && FreshTotal >= Kill.After) {
        // Marker first (atomic), then die without cleanup -- the whole
        // point is simulating kill -9 at a deterministic moment.
        writeFileAtomic(killMarkerPath(Opts.Dir, Opts.Worker), "killed\n",
                        nullptr);
        ::raise(SIGKILL);
      }
    }
    flush(true);
    // Re-dump the events sink (when configured) after every round, so the
    // coordinator's /tracez fleet section shows live-ish spans instead of
    // only what the atexit flush leaves behind.
    telemetry::dumpEvents();
    LastRound = Plan.Round;
  }
}
