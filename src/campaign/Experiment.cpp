//===- campaign/Experiment.cpp - The unified experiment facade -------------===//

#include "campaign/Experiment.h"

#include "campaign/Campaign.h"

using namespace msem;

const char *msem::spaceKindName(SpaceKind Kind) {
  return Kind == SpaceKind::Paper ? "paper" : "extended";
}

const char *msem::jobStateName(JobState State) {
  switch (State) {
  case JobState::Pending:
    return "pending";
  case JobState::Modeling:
    return "modeling";
  case JobState::Tuning:
    return "tuning";
  case JobState::Done:
    return "done";
  case JobState::Failed:
    return "failed";
  }
  return "unknown";
}

const char *msem::campaignStatusName(CampaignStatus Status) {
  switch (Status) {
  case CampaignStatus::Complete:
    return "complete";
  case CampaignStatus::BudgetExhausted:
    return "budget-exhausted";
  case CampaignStatus::Failed:
    return "failed";
  }
  return "unknown";
}

ParameterSpace msem::makeSpace(SpaceKind Kind) {
  return Kind == SpaceKind::Paper ? ParameterSpace::paperSpace()
                                  : ParameterSpace::extendedSpace();
}

ExperimentResult msem::runExperiment(const ExperimentSpec &Spec) {
  Campaign C(Spec);
  return C.run();
}
