//===- campaign/Campaign.h - Fault-tolerant campaign engine -------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine behind runExperiment: runs an ExperimentSpec's jobs through
/// the Figure-1 build loop and the Section 6.3 tuning searches, enforcing
/// budgets between iterations/generations and writing atomic checkpoints
/// as it goes.
///
/// Fault tolerance is resume-by-replay. Every quantity the campaign
/// computes is a deterministic function of the spec's seeds plus the
/// measured responses, and measured responses are pure functions of their
/// design points -- so the checkpoint persists only measurements, GA
/// state and budget spend. Campaign::resume reconstructs the engine from
/// the embedded spec, preloads the measurement memo, and re-runs the
/// campaign: finished work replays from the memo at zero simulator cost,
/// and the run continues seamlessly from wherever the checkpoint was cut,
/// producing results bitwise identical to a run that was never
/// interrupted -- at any MSEM_THREADS setting.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CAMPAIGN_CAMPAIGN_H
#define MSEM_CAMPAIGN_CAMPAIGN_H

#include "campaign/Checkpoint.h"
#include "campaign/Experiment.h"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>

namespace msem {

class ModelRegistry;

/// One campaign execution: construct with a spec (or via resume from a
/// checkpoint file) and call run() once.
class Campaign {
public:
  explicit Campaign(ExperimentSpec Spec);
  ~Campaign();

  Campaign(const Campaign &) = delete;
  Campaign &operator=(const Campaign &) = delete;

  /// Executes the campaign: every job, tuning included, until complete,
  /// budget-exhausted (checkpointed, resumable) or failed (structured
  /// error).
  ExperimentResult run();

  /// Loads the checkpoint at \p Path and continues the campaign it
  /// describes. \p NewBudget, when given, replaces the spec's budget --
  /// the usual way to give a budget-exhausted campaign more headroom.
  /// \p Customize, when given, runs on the embedded spec before the
  /// engine starts: the way to reinstall non-serialized hooks (progress
  /// callbacks, the Coordinator's RemoteMeasure) on a resumed campaign.
  /// A load failure returns CampaignStatus::Failed with a diagnostic.
  static ExperimentResult
  resume(const std::string &Path, const ExperimentBudget *NewBudget = nullptr,
         const std::function<void(ExperimentSpec &)> &Customize = nullptr);

private:
  /// The surface for one job, created (and preloaded from any restored
  /// checkpoint shard) on first use. Jobs sharing (workload, input,
  /// metric) share the surface, so e.g. a technique-comparison campaign
  /// measures each design point once.
  ResponseSurface &surfaceFor(const ExperimentJob &Job);

  /// Simulations across all surfaces plus restored prior spend.
  size_t totalSimulations() const;
  /// Seconds since run() started plus restored prior spend.
  double totalWallSeconds() const;
  bool budgetExceeded() const;

  /// Flushes surfaces and publishes the checkpoint file atomically
  /// (no-op without Spec.CheckpointPath). Invokes OnCheckpointWritten.
  void writeCheckpoint();

  /// Re-renders the /healthz "campaign" fragment (job progress, budget
  /// spend, checkpoint count). The stats-server thread reads the rendered
  /// string under HealthMutex, so the engine never races it.
  void updateHealth(const char *State);

  /// Runs job \p J's build loop. Returns false when the campaign must
  /// stop (budget pause or failure), with \p Result updated.
  bool runBuildPhase(size_t J, ExperimentJobResult &JR,
                     ExperimentResult &Result);
  /// Runs job \p J's per-platform tuning searches. Same contract.
  bool runTuningPhase(size_t J, ExperimentJobResult &JR,
                      ExperimentResult &Result);

  /// Publishes job \p J's fitted model to the registry (no-op when no
  /// registry directory is configured): the joint-space artifact, plus
  /// one frozen-machine artifact per tuning platform so cross-platform
  /// serving can encode requests without a MachineConfig of its own.
  void publishModels(size_t J, const ExperimentJobResult &JR);

  ExperimentSpec Spec;
  ParameterSpace Space;
  /// Surfaces keyed "workload|input|metric"; values are stable (surfaces
  /// hand out references into themselves).
  std::map<std::string, std::unique_ptr<ResponseSurface>> Surfaces;

  /// Shard store: restored checkpoint shards plus live surface snapshots,
  /// the single code path every checkpoint's "surfaces" section flows
  /// through (see campaign/ShardStore.h).
  ShardStore Shards;

  /// State carried in from a checkpoint (empty on a fresh campaign).
  std::vector<JobProgress> RestoredJobs;
  size_t RestoredSimulations = 0;
  double RestoredWallSeconds = 0;

  /// Artifact store, opened lazily on the first publish.
  std::unique_ptr<ModelRegistry> Registry;

  /// Live progress, mirrored into every checkpoint.
  std::vector<JobProgress> Progress;
  std::chrono::steady_clock::time_point RunStart;
  size_t CheckpointsWritten = 0;

  /// The pre-rendered /healthz fragment (see updateHealth).
  mutable std::mutex HealthMutex;
  std::string HealthJson;
};

} // namespace msem

#endif // MSEM_CAMPAIGN_CAMPAIGN_H
