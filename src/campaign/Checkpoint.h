//===- campaign/Checkpoint.h - Resumable campaign state -----------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable state of a campaign: everything needed to continue after a
/// kill -9 and still produce results bitwise identical to an uninterrupted
/// run. The campaign engine is deterministic-by-replay -- designs, fits
/// and GA streams are pure functions of the spec's seeds -- so a
/// checkpoint does not serialize models or builder internals. It records
/// the three things replay cannot cheaply regenerate:
///
///   * every measured (design point, response) pair per response surface
///     (replay then hits the memo instead of the simulator),
///   * the in-flight GA search's GaState, population and RNG included
///     (model predictions are cheap, but mid-search resume is required
///     to honor budgets at generation granularity),
///   * budget spend carried over from prior runs (simulations, seconds).
///
/// Checkpoints are single JSON documents, written atomically (sibling temp
/// file + rename) so a crash mid-write leaves the previous checkpoint
/// intact. Loading is tolerant: structural problems produce a structured
/// error string, never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CAMPAIGN_CHECKPOINT_H
#define MSEM_CAMPAIGN_CHECKPOINT_H

#include "campaign/Experiment.h"
#include "campaign/ShardStore.h"
#include "support/Json.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace msem {

/// One job's durable progress. States map to resume behavior: Done /
/// Failed jobs replay entirely from the measurement memo; a Modeling or
/// Tuning job replays its finished part and continues; Pending jobs run
/// from scratch.
struct JobProgress {
  JobState State = JobState::Pending;
  /// The (training size, test MAPE) curve so far -- informational, for
  /// humans inspecting a checkpoint; replay regenerates it.
  std::vector<std::pair<size_t, double>> ErrorCurve;
  /// Completed per-platform tunings (resume replays them from the warm
  /// memo; the count marks where the in-flight GA below belongs).
  size_t TuningsDone = 0;
  /// Captured state of the in-flight GA search for platform index
  /// TuningsDone, valid when HasGaState.
  bool HasGaState = false;
  GaState Ga;
  std::string Error; ///< Diagnostic when State == Failed.
};

/// The whole campaign, durably. Stamped "schema_version":
/// "msem.campaign.v1" on disk (see ShardStore.h); the numeric Version is
/// kept alongside for pre-stamp readers. SurfaceShard and its JSON
/// encoding live in campaign/ShardStore.h.
struct CampaignCheckpoint {
  int Version = 1;
  /// The spec this checkpoint belongs to (hooks are not serialized).
  /// Resume runs this embedded spec, not whatever the caller has on hand,
  /// so a drifted caller cannot silently corrupt a resumed campaign.
  ExperimentSpec Spec;
  std::vector<JobProgress> Jobs;
  /// Measured (point, response) pairs keyed by surface identity
  /// ("workload|input|metric").
  std::map<std::string, SurfaceShard> Surfaces;
  /// Budget spend accumulated across all prior runs of this campaign.
  size_t SimulationsSpent = 0;
  double WallSecondsSpent = 0;
  /// The disk-cache file backing the campaign's surfaces at save time
  /// ("" when the campaign is memory-only). Informational cross-reference:
  /// the checkpoint itself carries all measurements, so resume works even
  /// if the cache file is gone.
  std::string CachePath;
  /// Build identity (msem::buildStamp()) of the binary that wrote this
  /// checkpoint. Informational only -- resume accepts checkpoints from any
  /// build; the stamp tells a human which binary produced the state.
  std::string Build;
};

/// Checkpoint -> JSON document.
Json serializeCheckpoint(const CampaignCheckpoint &Ckpt);

/// JSON document -> checkpoint. Returns false (with a diagnostic in
/// \p Error) on version or structure mismatches.
bool deserializeCheckpoint(const Json &Doc, CampaignCheckpoint &Out,
                           std::string *Error);

/// Serializes and writes \p Ckpt to \p Path atomically: the document is
/// written to a sibling temp file which is then renamed over \p Path, so
/// readers (and crashes) see either the old or the new checkpoint, never
/// a torn one.
bool saveCheckpoint(const CampaignCheckpoint &Ckpt, const std::string &Path,
                    std::string *Error);

/// Reads and deserializes \p Path. Returns false with a diagnostic on a
/// missing file, malformed JSON or structural mismatch.
bool loadCheckpoint(const std::string &Path, CampaignCheckpoint &Out,
                    std::string *Error);

// Spec <-> JSON (exposed for tests; hooks are not serialized).
Json serializeSpec(const ExperimentSpec &Spec);
bool deserializeSpec(const Json &Doc, ExperimentSpec &Out, std::string *Error);

} // namespace msem

#endif // MSEM_CAMPAIGN_CHECKPOINT_H
