//===- campaign/ShardStore.h - Measurement shards as a first-class API -*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one home of campaign measurement shards: the in-memory store the
/// campaign engine checkpoints through, the JSON encoding those shards use
/// on disk, and the versioned wire format distributed campaigns exchange
/// through a shared shard directory. Before this header existed the shard
/// read/merge/write logic lived ad hoc inside Checkpoint.cpp and
/// Campaign::writeCheckpoint; now every producer and consumer -- the
/// single-process engine, the multi-process Coordinator, its workers and
/// the msem_campaign merge tool -- goes through exactly one code path.
///
/// ## Schema versioning
///
/// Every standalone campaign document (checkpoints, worker shards, round
/// plans, the campaign manifest) is stamped
///
///   "schema_version": "msem.campaign.v1"
///
/// mirroring ModelArtifact's strict versioning. Loaders accept v1 and
/// legacy unversioned documents (checkpoints written before the stamp
/// existed), and reject anything newer with a clear diagnostic instead of
/// misparsing it.
///
/// ## Distributed wire format (all files atomic temp+rename writes)
///
///   <shard-dir>/campaign.json      CampaignManifest: worker count + the
///                                  embedded ExperimentSpec every worker
///                                  builds its surfaces from.
///   <shard-dir>/plan.json          RoundPlan: the current measurement
///                                  round -- surface identity plus the
///                                  batch's distinct unmeasured points.
///                                  Point index I belongs to worker
///                                  I % Workers (the fixed deterministic
///                                  shard->job assignment). Done=true is
///                                  the shutdown sentinel.
///   <shard-dir>/shard-r<R>-w<K>.json
///                                  WorkerShard: worker K's PointOutcomes
///                                  for round R, rewritten incrementally
///                                  as it measures (so a SIGKILLed worker
///                                  resumes from its own partial shard)
///                                  and marked Done when the subset is
///                                  complete.
///   <shard-dir>/worker-<K>.json    WorkerHeartbeat: liveness breadcrumb
///                                  for /statusz and multi-host
///                                  operators.
///
/// The coordinator merges worker shards in sequential order (round by
/// round, plan index by plan index), so the merged responses -- and
/// therefore the merged checkpoint, the fitted models and the published
/// artifacts -- are bitwise identical to a single-process run at any
/// worker count and any MSEM_THREADS.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CAMPAIGN_SHARDSTORE_H
#define MSEM_CAMPAIGN_SHARDSTORE_H

#include "campaign/Experiment.h"
#include "support/Json.h"
#include "telemetry/Telemetry.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace msem {

/// The campaign wire-format version this build reads and writes.
inline constexpr char kCampaignSchema[] = "msem.campaign.v1";

/// Validates \p Doc's "schema_version" stamp: accepts kCampaignSchema and
/// legacy unversioned documents, rejects any other version with a clear
/// error naming \p What (e.g. "checkpoint", "worker shard").
bool checkCampaignSchema(const Json &Doc, const char *What,
                         std::string *Error);

/// Measured responses of one surface, as parallel point/value arrays
/// (sorted by point -- the ResponseSurface::snapshot order).
struct SurfaceShard {
  std::vector<DesignPoint> Points;
  std::vector<double> Values;
};

// Design points encode as JSON arrays of raw level values.
Json designPointToJson(const DesignPoint &Point);
DesignPoint designPointFromJson(const Json &Doc);

/// SurfaceShard <-> {"points": [...], "values": [...]} (the encoding
/// campaign checkpoints have always used for their "surfaces" members).
Json shardToJson(const SurfaceShard &Shard);
bool shardFromJson(const Json &Doc, SurfaceShard &Out, std::string *Error);

/// The in-memory shard store a campaign checkpoints through. Keys are
/// surface identities (surfaceKeyFor). The store carries both shards
/// restored from a checkpoint whose surface has not been materialized
/// yet and the live snapshots of materialized surfaces, so serializing
/// shards() can never lose measurements across resume cycles.
class ShardStore {
public:
  /// Replaces the store's contents (resume: the checkpoint's shards).
  void restore(std::map<std::string, SurfaceShard> Shards);

  /// The stored shard for \p Key, or nullptr.
  const SurfaceShard *find(const std::string &Key) const;

  /// Replaces \p Key's shard with a live surface snapshot. A materialized
  /// surface is preloaded from its restored shard, so its snapshot is
  /// always a superset of what the store held.
  void update(const std::string &Key,
              const std::vector<std::pair<DesignPoint, double>> &Snapshot);

  /// Merges \p Incoming into \p Key's shard: points absent from the
  /// stored shard are inserted, existing points keep their stored value
  /// (both sides agree anyway -- responses are pure functions of their
  /// points), and the result stays sorted by point.
  void merge(const std::string &Key, const SurfaceShard &Incoming);

  /// Every stored shard, keyed by surface identity.
  const std::map<std::string, SurfaceShard> &shards() const {
    return Store;
  }

  /// The merge primitive behind merge(): Dst := sorted union, Dst wins
  /// on duplicate points.
  static void mergeShard(SurfaceShard &Dst, const SurfaceShard &Src);

private:
  std::map<std::string, SurfaceShard> Store;
};

//===----------------------------------------------------------------------===//
// Distributed wire format
//===----------------------------------------------------------------------===//

/// Identity of the surface a round measures, in the serialized-name forms
/// the checkpoint spec uses.
struct SurfaceRef {
  std::string Workload = "art";
  InputSet Input = InputSet::Train;
  ResponseMetric Metric = ResponseMetric::Cycles;
};

/// campaign.json: what a worker needs to participate -- the spec its
/// surfaces are built from and the worker count the shard assignment is
/// defined over.
struct CampaignManifest {
  int Workers = 0;
  ExperimentSpec Spec;
  /// The coordinator's trace context, propagated so worker spans join the
  /// coordinator's causal tree ("coordinator.campaign" -> "worker.run").
  /// 0 = absent (legacy manifests, or tracing disabled); workers then
  /// root their own traces exactly as before.
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
};

/// plan.json: one measurement round. Point index I is assigned to worker
/// I % Workers; Epoch identifies the coordinator incarnation so shard
/// files from an earlier run of the same directory can never be mistaken
/// for fresh results.
struct RoundPlan {
  uint64_t Round = 0;
  uint64_t Epoch = 0;
  int Workers = 0;
  bool Done = false; ///< Shutdown sentinel: workers exit cleanly.
  SurfaceRef Surface;
  std::vector<DesignPoint> Points;
};

/// shard-r<R>-w<K>.json: worker K's outcomes for its subset of round R,
/// in plan-index order.
struct WorkerShard {
  uint64_t Round = 0;
  uint64_t Epoch = 0;
  int Worker = 0;
  bool Done = false; ///< True once every assigned point has an outcome.
  /// Echo of the plan's surface, so shards are self-describing -- the
  /// offline merge subcommand attributes outcomes without a live plan.
  SurfaceRef Surface;
  std::vector<size_t> Indices; ///< Plan indices, echoed for validation.
  std::vector<DesignPoint> Points; ///< The points, echoed for validation.
  std::vector<PointOutcome> Outcomes;
};

/// worker-<K>.json: liveness breadcrumb (for /statusz and operators; no
/// correctness depends on it). Each beat also carries the worker's full
/// telemetry snapshot as an embedded msem.telemetry.v1 document, the
/// transport of the fleet metrics plane: the coordinator folds the latest
/// snapshot from every worker into the worker-labeled /metrics view.
struct WorkerHeartbeat {
  int Worker = 0;
  int64_t Pid = 0;
  uint64_t Round = 0;
  size_t Measured = 0;     ///< Outcomes recorded in the current round.
  int64_t UnixSeconds = 0; ///< Wall-clock time of the last write.
  /// The worker's metric state at the time of the beat (cumulative since
  /// process start, so the coordinator replaces rather than accumulates
  /// per-worker state). Absent in legacy heartbeats.
  telemetry::MetricsSnapshot Telemetry;
  bool HasTelemetry = false;
};

// File names within a shard directory.
std::string manifestPath(const std::string &Dir);
std::string planPath(const std::string &Dir);
std::string workerShardPath(const std::string &Dir, uint64_t Round,
                            int Worker);
std::string heartbeatPath(const std::string &Dir, int Worker);

// Atomic save / tolerant load of each wire document. Loads return false
// with a diagnostic on missing files, malformed JSON, schema or
// structural mismatches -- never crash.
bool saveManifest(const CampaignManifest &M, const std::string &Path,
                  std::string *Error);
bool loadManifest(const std::string &Path, CampaignManifest &Out,
                  std::string *Error);
bool savePlan(const RoundPlan &Plan, const std::string &Path,
              std::string *Error);
bool loadPlan(const std::string &Path, RoundPlan &Out, std::string *Error);
bool saveWorkerShard(const WorkerShard &Shard, const std::string &Path,
                     std::string *Error);
bool loadWorkerShard(const std::string &Path, WorkerShard &Out,
                     std::string *Error);
bool saveHeartbeat(const WorkerHeartbeat &Hb, const std::string &Path,
                   std::string *Error);
bool loadHeartbeat(const std::string &Path, WorkerHeartbeat &Out,
                   std::string *Error);

} // namespace msem

#endif // MSEM_CAMPAIGN_SHARDSTORE_H
