//===- campaign/Checkpoint.cpp - Resumable campaign state ------------------===//

#include "campaign/Checkpoint.h"

#include "registry/ModelArtifact.h"
#include "support/FileSystem.h"
#include "support/Format.h"

using namespace msem;

//===----------------------------------------------------------------------===//
// Enum <-> string (parsers mirror the library's *Name functions)
//===----------------------------------------------------------------------===//

namespace {

bool parseSpaceKind(const std::string &S, SpaceKind &Out) {
  if (S == "paper")
    Out = SpaceKind::Paper;
  else if (S == "extended")
    Out = SpaceKind::Extended;
  else
    return false;
  return true;
}

// Input set, metric and technique parse via the shared library helpers
// (inputSetFromName, responseMetricFromName, modelTechniqueFromName);
// machine configs via registry/ModelArtifact.h's machineConfigFrom/ToJson.

const char *expansionName(ExpansionKind Kind) {
  return Kind == ExpansionKind::Linear ? "linear" : "linear+2fi";
}

bool parseExpansion(const std::string &S, ExpansionKind &Out) {
  if (S == "linear")
    Out = ExpansionKind::Linear;
  else if (S == "linear+2fi")
    Out = ExpansionKind::LinearWith2FI;
  else
    return false;
  return true;
}

bool parseFaultAction(const std::string &S, FaultAction &Out) {
  if (S == "retry")
    Out = FaultAction::Retry;
  else if (S == "skip")
    Out = FaultAction::Skip;
  else if (S == "abort")
    Out = FaultAction::Abort;
  else
    return false;
  return true;
}

bool parseJobState(const std::string &S, JobState &Out) {
  if (S == "pending")
    Out = JobState::Pending;
  else if (S == "modeling")
    Out = JobState::Modeling;
  else if (S == "tuning")
    Out = JobState::Tuning;
  else if (S == "done")
    Out = JobState::Done;
  else if (S == "failed")
    Out = JobState::Failed;
  else
    return false;
  return true;
}

bool failWith(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

//===----------------------------------------------------------------------===//
// Leaf serializers (design points and surface shards encode via the
// shared helpers in campaign/ShardStore.h)
//===----------------------------------------------------------------------===//

Json gaStateToJson(const GaState &S) {
  Json J = Json::object();
  J.set("generation", Json::number(S.Generation));
  Json Pop = Json::array();
  for (const GaGenome &G : S.Population) {
    Json Row = Json::array();
    for (size_t V : G)
      Row.push(Json::number(static_cast<double>(V)));
    Pop.push(std::move(Row));
  }
  J.set("population", std::move(Pop));
  Json Scores = Json::array();
  for (double V : S.Scores)
    Scores.push(Json::number(V));
  J.set("scores", std::move(Scores));
  J.set("best_so_far", Json::number(S.BestSoFar));
  J.set("since_improvement", Json::number(S.SinceImprovement));
  Json RngState = Json::array();
  for (uint64_t W : S.RngState)
    RngState.push(Json::hexU64(W));
  J.set("rng", std::move(RngState));
  return J;
}

bool gaStateFromJson(const Json &J, GaState &Out, std::string *Error) {
  Out.Generation = static_cast<int>(J["generation"].asInt());
  Out.Population.clear();
  for (const Json &Row : J["population"].items()) {
    GaGenome G;
    G.reserve(Row.size());
    for (const Json &V : Row.items())
      G.push_back(static_cast<size_t>(V.asInt()));
    Out.Population.push_back(std::move(G));
  }
  Out.Scores.clear();
  for (const Json &V : J["scores"].items())
    Out.Scores.push_back(V.asDouble());
  if (Out.Scores.size() != Out.Population.size())
    return failWith(Error, "GA state: population/score arity mismatch");
  Out.BestSoFar = J["best_so_far"].asDouble(1e300);
  Out.SinceImprovement = static_cast<int>(J["since_improvement"].asInt());
  const Json &R = J["rng"];
  if (R.size() != Out.RngState.size())
    return failWith(Error, "GA state: RNG state must have 4 words");
  for (size_t I = 0; I < Out.RngState.size(); ++I)
    Out.RngState[I] = R.at(I).asHexU64();
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec <-> JSON
//===----------------------------------------------------------------------===//

Json msem::serializeSpec(const ExperimentSpec &Spec) {
  Json J = Json::object();
  J.set("name", Json::string(Spec.Name));
  J.set("space", Json::string(spaceKindName(Spec.Space)));

  Json Jobs = Json::array();
  for (const ExperimentJob &Job : Spec.Jobs) {
    Json JJ = Json::object();
    JJ.set("workload", Json::string(Job.Workload));
    JJ.set("input", Json::string(inputSetName(Job.Input)));
    JJ.set("metric", Json::string(responseMetricName(Job.Metric)));
    JJ.set("technique", Json::string(modelTechniqueName(Job.Technique)));
    if (Job.DesignSizeCap)
      JJ.set("design_size_cap",
             Json::number(static_cast<double>(Job.DesignSizeCap)));
    Jobs.push(std::move(JJ));
  }
  J.set("jobs", std::move(Jobs));

  Json Design = Json::object();
  Design.set("initial", Json::number(static_cast<double>(Spec.InitialDesignSize)));
  Design.set("augment_step", Json::number(static_cast<double>(Spec.AugmentStep)));
  Design.set("max", Json::number(static_cast<double>(Spec.MaxDesignSize)));
  Design.set("test", Json::number(static_cast<double>(Spec.TestSize)));
  Design.set("target_mape", Json::number(Spec.TargetMape));
  Design.set("candidates", Json::number(static_cast<double>(Spec.CandidateCount)));
  Design.set("expansion", Json::string(expansionName(Spec.Expansion)));
  Design.set("seed", Json::hexU64(Spec.Seed));
  J.set("design", std::move(Design));

  Json Measure = Json::object();
  Measure.set("use_smarts", Json::boolean(Spec.UseSmarts));
  Measure.set("smarts_interval", Json::number(Spec.SmartsInterval));
  Measure.set("cache_dir", Json::string(Spec.CacheDir));
  Json Faults = Json::object();
  Faults.set("on_fault", Json::string(faultActionName(Spec.Faults.OnFault)));
  Faults.set("max_attempts", Json::number(Spec.Faults.MaxAttempts));
  Faults.set("backoff_micros", Json::number(Spec.Faults.BackoffBaseMicros));
  Faults.set("inject_rate", Json::number(Spec.Faults.InjectRate));
  Measure.set("faults", std::move(Faults));
  J.set("measure", std::move(Measure));

  Json Orchestration = Json::object();
  Orchestration.set("checkpoint_path", Json::string(Spec.CheckpointPath));
  Orchestration.set("ga_checkpoint_every", Json::number(Spec.GaCheckpointEvery));
  Orchestration.set("max_simulations",
                    Json::number(static_cast<double>(Spec.Budget.MaxSimulations)));
  Orchestration.set("max_wall_seconds", Json::number(Spec.Budget.MaxWallSeconds));
  Orchestration.set("registry_dir", Json::string(Spec.RegistryDir));
  J.set("orchestration", std::move(Orchestration));

  Json Tuning = Json::object();
  Json Platforms = Json::array();
  for (const PlatformSpec &P : Spec.TunePlatforms) {
    Json PJ = Json::object();
    PJ.set("name", Json::string(P.Name));
    PJ.set("machine", machineConfigToJson(P.Config));
    Platforms.push(std::move(PJ));
  }
  Tuning.set("platforms", std::move(Platforms));
  Json Ga = Json::object();
  Ga.set("population", Json::number(static_cast<double>(Spec.Ga.Population)));
  Ga.set("generations", Json::number(Spec.Ga.Generations));
  Ga.set("stall_generations", Json::number(Spec.Ga.StallGenerations));
  Ga.set("crossover_rate", Json::number(Spec.Ga.CrossoverRate));
  Ga.set("mutation_rate", Json::number(Spec.Ga.MutationRate));
  Ga.set("elite", Json::number(static_cast<double>(Spec.Ga.EliteCount)));
  Ga.set("tournament", Json::number(static_cast<double>(Spec.Ga.TournamentSize)));
  Ga.set("seed", Json::hexU64(Spec.Ga.Seed));
  Tuning.set("ga", std::move(Ga));
  Tuning.set("verify", Json::boolean(Spec.VerifyTunings));
  J.set("tuning", std::move(Tuning));
  return J;
}

bool msem::deserializeSpec(const Json &Doc, ExperimentSpec &Out,
                           std::string *Error) {
  if (Doc.kind() != Json::Kind::Object)
    return failWith(Error, "spec: expected an object");
  ExperimentSpec Spec;
  Spec.Name = Doc["name"].asString(Spec.Name);
  if (!parseSpaceKind(Doc["space"].asString("paper"), Spec.Space))
    return failWith(Error, "spec: unknown space kind '" +
                               Doc["space"].asString() + "'");

  Spec.Jobs.clear();
  for (const Json &JJ : Doc["jobs"].items()) {
    ExperimentJob Job;
    Job.Workload = JJ["workload"].asString(Job.Workload);
    if (!inputSetFromName(JJ["input"].asString("train"), Job.Input))
      return failWith(Error, "spec: unknown input set '" +
                                 JJ["input"].asString() + "'");
    if (!responseMetricFromName(JJ["metric"].asString("cycles"), Job.Metric))
      return failWith(Error, "spec: unknown metric '" +
                                 JJ["metric"].asString() + "'");
    if (!modelTechniqueFromName(JJ["technique"].asString("rbf"), Job.Technique))
      return failWith(Error, "spec: unknown technique '" +
                                 JJ["technique"].asString() + "'");
    Job.DesignSizeCap = static_cast<size_t>(JJ["design_size_cap"].asInt(0));
    Spec.Jobs.push_back(std::move(Job));
  }

  const Json &Design = Doc["design"];
  Spec.InitialDesignSize =
      static_cast<size_t>(Design["initial"].asInt(
          static_cast<int64_t>(Spec.InitialDesignSize)));
  Spec.AugmentStep = static_cast<size_t>(
      Design["augment_step"].asInt(static_cast<int64_t>(Spec.AugmentStep)));
  Spec.MaxDesignSize = static_cast<size_t>(
      Design["max"].asInt(static_cast<int64_t>(Spec.MaxDesignSize)));
  Spec.TestSize = static_cast<size_t>(
      Design["test"].asInt(static_cast<int64_t>(Spec.TestSize)));
  Spec.TargetMape = Design["target_mape"].asDouble(Spec.TargetMape);
  Spec.CandidateCount = static_cast<size_t>(
      Design["candidates"].asInt(static_cast<int64_t>(Spec.CandidateCount)));
  if (!parseExpansion(Design["expansion"].asString("linear"), Spec.Expansion))
    return failWith(Error, "spec: unknown expansion '" +
                               Design["expansion"].asString() + "'");
  Spec.Seed = Design["seed"].asHexU64(Spec.Seed);

  const Json &Measure = Doc["measure"];
  Spec.UseSmarts = Measure["use_smarts"].asBool(Spec.UseSmarts);
  Spec.SmartsInterval =
      static_cast<int>(Measure["smarts_interval"].asInt(Spec.SmartsInterval));
  Spec.CacheDir = Measure["cache_dir"].asString(Spec.CacheDir);
  const Json &Faults = Measure["faults"];
  if (!parseFaultAction(Faults["on_fault"].asString("retry"),
                        Spec.Faults.OnFault))
    return failWith(Error, "spec: unknown fault action '" +
                               Faults["on_fault"].asString() + "'");
  Spec.Faults.MaxAttempts =
      static_cast<int>(Faults["max_attempts"].asInt(Spec.Faults.MaxAttempts));
  Spec.Faults.BackoffBaseMicros = static_cast<unsigned>(
      Faults["backoff_micros"].asInt(Spec.Faults.BackoffBaseMicros));
  Spec.Faults.InjectRate = Faults["inject_rate"].asDouble(-1.0);

  const Json &Orchestration = Doc["orchestration"];
  Spec.CheckpointPath =
      Orchestration["checkpoint_path"].asString(Spec.CheckpointPath);
  Spec.GaCheckpointEvery = static_cast<int>(
      Orchestration["ga_checkpoint_every"].asInt(Spec.GaCheckpointEvery));
  Spec.Budget.MaxSimulations = static_cast<size_t>(
      Orchestration["max_simulations"].asInt(0));
  Spec.Budget.MaxWallSeconds =
      Orchestration["max_wall_seconds"].asDouble(0);
  Spec.RegistryDir = Orchestration["registry_dir"].asString(Spec.RegistryDir);

  const Json &Tuning = Doc["tuning"];
  Spec.TunePlatforms.clear();
  for (const Json &PJ : Tuning["platforms"].items()) {
    PlatformSpec P;
    P.Name = PJ["name"].asString();
    P.Config = machineConfigFromJson(PJ["machine"]);
    Spec.TunePlatforms.push_back(std::move(P));
  }
  const Json &Ga = Tuning["ga"];
  Spec.Ga.Population = static_cast<size_t>(
      Ga["population"].asInt(static_cast<int64_t>(Spec.Ga.Population)));
  Spec.Ga.Generations =
      static_cast<int>(Ga["generations"].asInt(Spec.Ga.Generations));
  Spec.Ga.StallGenerations = static_cast<int>(
      Ga["stall_generations"].asInt(Spec.Ga.StallGenerations));
  Spec.Ga.CrossoverRate = Ga["crossover_rate"].asDouble(Spec.Ga.CrossoverRate);
  Spec.Ga.MutationRate = Ga["mutation_rate"].asDouble(Spec.Ga.MutationRate);
  Spec.Ga.EliteCount = static_cast<size_t>(
      Ga["elite"].asInt(static_cast<int64_t>(Spec.Ga.EliteCount)));
  Spec.Ga.TournamentSize = static_cast<size_t>(
      Ga["tournament"].asInt(static_cast<int64_t>(Spec.Ga.TournamentSize)));
  Spec.Ga.Seed = Ga["seed"].asHexU64(Spec.Ga.Seed);
  Spec.VerifyTunings = Tuning["verify"].asBool(Spec.VerifyTunings);

  Out = std::move(Spec);
  return true;
}

//===----------------------------------------------------------------------===//
// Checkpoint <-> JSON
//===----------------------------------------------------------------------===//

Json msem::serializeCheckpoint(const CampaignCheckpoint &Ckpt) {
  Json J = Json::object();
  // The string stamp is authoritative; the numeric version rides along so
  // pre-stamp builds still load v1 checkpoints.
  J.set("schema_version", Json::string(kCampaignSchema));
  J.set("version", Json::number(Ckpt.Version));
  J.set("spec", serializeSpec(Ckpt.Spec));

  Json Jobs = Json::array();
  for (const JobProgress &P : Ckpt.Jobs) {
    Json JJ = Json::object();
    JJ.set("state", Json::string(jobStateName(P.State)));
    if (!P.ErrorCurve.empty()) {
      Json Curve = Json::array();
      for (const auto &[Size, Mape] : P.ErrorCurve) {
        Json Row = Json::array();
        Row.push(Json::number(static_cast<double>(Size)));
        Row.push(Json::number(Mape));
        Curve.push(std::move(Row));
      }
      JJ.set("error_curve", std::move(Curve));
    }
    if (P.TuningsDone)
      JJ.set("tunings_done",
             Json::number(static_cast<double>(P.TuningsDone)));
    if (P.HasGaState)
      JJ.set("ga", gaStateToJson(P.Ga));
    if (!P.Error.empty())
      JJ.set("error", Json::string(P.Error));
    Jobs.push(std::move(JJ));
  }
  J.set("jobs", std::move(Jobs));

  Json Surfaces = Json::object();
  for (const auto &[Key, Shard] : Ckpt.Surfaces)
    Surfaces.set(Key, shardToJson(Shard));
  J.set("surfaces", std::move(Surfaces));

  J.set("simulations_spent",
        Json::number(static_cast<double>(Ckpt.SimulationsSpent)));
  J.set("wall_seconds_spent", Json::number(Ckpt.WallSecondsSpent));
  J.set("cache_path", Json::string(Ckpt.CachePath));
  if (!Ckpt.Build.empty())
    J.set("build", Json::string(Ckpt.Build));
  return J;
}

bool msem::deserializeCheckpoint(const Json &Doc, CampaignCheckpoint &Out,
                                 std::string *Error) {
  if (Doc.kind() != Json::Kind::Object)
    return failWith(Error, "checkpoint: expected a JSON object");
  // The string stamp governs when present (v1 or legacy unversioned pass,
  // future versions are rejected with a clear message); the numeric
  // version is the pre-stamp compatibility check.
  if (!checkCampaignSchema(Doc, "checkpoint", Error))
    return false;
  CampaignCheckpoint Ckpt;
  Ckpt.Version = static_cast<int>(
      Doc["version"].asInt(Doc.has("schema_version") ? 1 : 0));
  if (Ckpt.Version != 1)
    return failWith(Error,
                    formatString("checkpoint: unsupported version %d",
                                 Ckpt.Version));
  if (!deserializeSpec(Doc["spec"], Ckpt.Spec, Error))
    return false;

  for (const Json &JJ : Doc["jobs"].items()) {
    JobProgress P;
    if (!parseJobState(JJ["state"].asString("pending"), P.State))
      return failWith(Error, "checkpoint: unknown job state '" +
                                 JJ["state"].asString() + "'");
    for (const Json &Row : JJ["error_curve"].items())
      P.ErrorCurve.emplace_back(static_cast<size_t>(Row.at(0).asInt()),
                                Row.at(1).asDouble());
    P.TuningsDone = static_cast<size_t>(JJ["tunings_done"].asInt(0));
    if (JJ.has("ga")) {
      if (!gaStateFromJson(JJ["ga"], P.Ga, Error))
        return false;
      P.HasGaState = true;
    }
    P.Error = JJ["error"].asString();
    Ckpt.Jobs.push_back(std::move(P));
  }
  if (Ckpt.Jobs.size() !=
      (Ckpt.Spec.Jobs.empty() ? 1 : Ckpt.Spec.Jobs.size()))
    return failWith(Error, "checkpoint: job progress/spec arity mismatch");

  for (const auto &[Key, SJ] : Doc["surfaces"].members()) {
    SurfaceShard Shard;
    std::string ShardError;
    if (!shardFromJson(SJ, Shard, &ShardError))
      return failWith(Error,
                      "checkpoint: surface '" + Key + "': " + ShardError);
    Ckpt.Surfaces.emplace(Key, std::move(Shard));
  }

  Ckpt.SimulationsSpent =
      static_cast<size_t>(Doc["simulations_spent"].asInt(0));
  Ckpt.WallSecondsSpent = Doc["wall_seconds_spent"].asDouble(0);
  Ckpt.CachePath = Doc["cache_path"].asString();
  Ckpt.Build = Doc["build"].asString();
  Out = std::move(Ckpt);
  return true;
}

//===----------------------------------------------------------------------===//
// File IO (atomic publish, tolerant load)
//===----------------------------------------------------------------------===//

bool msem::saveCheckpoint(const CampaignCheckpoint &Ckpt,
                          const std::string &Path, std::string *Error) {
  return writeFileAtomic(Path, serializeCheckpoint(Ckpt).dumpPretty(), Error);
}

bool msem::loadCheckpoint(const std::string &Path, CampaignCheckpoint &Out,
                          std::string *Error) {
  std::string Text;
  if (!readFileText(Path, Text, Error)) {
    if (Error)
      *Error = "cannot open checkpoint: " + *Error;
    return false;
  }

  std::string ParseError;
  Json Doc = Json::parse(Text, &ParseError);
  if (!ParseError.empty())
    return failWith(Error, "checkpoint '" + Path + "': " + ParseError);
  return deserializeCheckpoint(Doc, Out, Error);
}
