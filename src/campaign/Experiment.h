//===- campaign/Experiment.h - The unified experiment facade ------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public face of the measurement/modeling stack. One typed spec
/// replaces the scatter of ResponseSurface::Options + ModelBuilderOptions +
/// GaOptions + environment variables that every driver used to wire by
/// hand:
///
///   ExperimentSpec Spec;
///   Spec.Jobs = {{"art", InputSet::Train}};
///   Spec.TunePlatforms = {{"typical", MachineConfig::typical()}};
///   Spec.CheckpointPath = "msem_cache/art.ckpt.json";
///   ExperimentResult R = runExperiment(Spec);
///
/// runExperiment owns the full Figure-1 lifecycle per job -- D-optimal
/// design, measurement, fitting, augmentation, and optionally the paper's
/// Section 6.3 per-platform GA tuning -- under a wall-clock/simulation
/// budget, with periodic atomic JSON checkpoints and a fault policy for
/// flaky measurements. A killed campaign resumes from its checkpoint via
/// Campaign::resume (campaign/Campaign.h) and produces results bitwise
/// identical to an uninterrupted run.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CAMPAIGN_EXPERIMENT_H
#define MSEM_CAMPAIGN_EXPERIMENT_H

#include "core/ModelBuilder.h"
#include "search/GeneticSearch.h"

#include <functional>
#include <string>
#include <vector>

namespace msem {

/// Which predictor space the campaign models.
enum class SpaceKind {
  Paper,    ///< Tables 1+2: 14 compiler + 11 microarchitectural parameters.
  Extended, ///< Paper + Section 2.2 trace-formation knobs (29 parameters).
};

const char *spaceKindName(SpaceKind Kind);

/// One model-building job: which program, input, response and technique.
struct ExperimentJob {
  std::string Workload = "art";
  InputSet Input = InputSet::Train;
  ResponseMetric Metric = ResponseMetric::Cycles;
  ModelTechnique Technique = ModelTechnique::Rbf;
  /// Per-job design-size override (0 = use the spec-wide sizes). Both the
  /// initial and maximum design size are clamped to this, turning off
  /// augmentation for the job -- e.g. the smaller fully-detailed energy
  /// campaigns of bench_multimetric.
  size_t DesignSizeCap = 0;
};

/// A target machine for the Section 6.3 per-platform flag search.
struct PlatformSpec {
  std::string Name;
  MachineConfig Config;
};

/// Campaign-level resource limits (0 = unlimited). Budgets are checked
/// between iterations / generations, so a campaign overshoots by at most
/// one unit of work before pausing with a resumable checkpoint.
struct ExperimentBudget {
  /// Simulator measurements across all jobs (resume carries prior spend).
  size_t MaxSimulations = 0;
  /// Wall-clock seconds across all jobs (resume carries prior spend).
  double MaxWallSeconds = 0;
};

/// Everything a campaign needs, in one typed, serializable struct.
struct ExperimentSpec {
  /// Display name; also recorded in checkpoints.
  std::string Name = "experiment";
  SpaceKind Space = SpaceKind::Paper;
  /// The (workload, input, metric, technique) jobs, run in order. Empty
  /// defaults to one job with ExperimentJob's defaults.
  std::vector<ExperimentJob> Jobs;

  // --- Design scale (the Figure 1 loop) ------------------------------------
  size_t InitialDesignSize = 100;
  size_t AugmentStep = 50;
  size_t MaxDesignSize = 400;
  size_t TestSize = 100;
  double TargetMape = 5.0;
  size_t CandidateCount = 1500;
  ExpansionKind Expansion = ExpansionKind::Linear;
  uint64_t Seed = 0xB11D0001;

  // --- Measurement ---------------------------------------------------------
  bool UseSmarts = true;
  /// SMARTS sampling interval (0 = auto: dense sampling for the short
  /// Test inputs, the standard interval otherwise).
  int SmartsInterval = 0;
  /// Response disk-cache directory ("" = memory only).
  std::string CacheDir;
  FaultPolicy Faults;

  // --- Fault tolerance / orchestration -------------------------------------
  /// Checkpoint file path ("" = no checkpointing). Written atomically
  /// (temp file + rename) after every model iteration, every
  /// GaCheckpointEvery GA generations, and at every job boundary.
  std::string CheckpointPath;
  int GaCheckpointEvery = 5;
  ExperimentBudget Budget;
  /// Model-artifact registry root. Every model the campaign fits is
  /// published there (joint-space, plus one frozen-machine artifact per
  /// tuning platform) for msem_predict to serve. "" falls back to
  /// MSEM_REGISTRY_DIR; publishing is off when both are empty.
  std::string RegistryDir;

  // --- Per-platform tuning (Section 6.3), Paper space only -----------------
  std::vector<PlatformSpec> TunePlatforms;
  GaOptions Ga;
  /// Measure (don't just predict) each platform's tuned point plus its O2
  /// and O3 baselines on the simulator.
  bool VerifyTunings = false;

  /// Test/progress hook: called after each checkpoint write with the
  /// number of checkpoints written so far this process. Not serialized.
  std::function<void(size_t)> OnCheckpointWritten;

  /// Distributed-measurement hook: when set, every surface the campaign
  /// materializes delegates its unmeasured batches here -- (job, surface
  /// key, distinct unmeasured points) -> per-point outcomes -- instead of
  /// measuring in-process. The contract is bitwise: outcomes must equal
  /// what ResponseSurface::measureOutcomes would produce. Installed by
  /// campaign/Coordinator.h; never serialized, so a resumed distributed
  /// campaign reinstalls it through Campaign::resume's spec customizer.
  std::function<std::vector<PointOutcome>(
      const ExperimentJob &, const std::string &,
      const std::vector<DesignPoint> &)>
      RemoteMeasure;
};

/// Surface identity within a campaign ("workload|input|metric"). Jobs
/// agreeing on it share one surface -- and one checkpoint shard.
std::string surfaceKeyFor(const ExperimentJob &Job);

/// The ResponseSurface options \p Spec implies for \p Job: the one code
/// path turning a spec into measurement configuration, shared by the
/// campaign engine and distributed worker processes so the two cannot
/// drift. \p CacheDir overrides the spec's disk cache (workers run
/// memory-only: their shard file is their durable memo).
ResponseSurface::Options
surfaceOptionsFor(const ExperimentSpec &Spec, const ExperimentJob &Job,
                  const std::string *CacheDirOverride = nullptr);

/// One platform's tuning outcome.
struct PlatformTuning {
  std::string Platform;
  GaResult Search;
  /// Simulator verification (only when ExperimentSpec::VerifyTunings).
  double MeasuredBest = 0;
  double MeasuredO2 = 0;
  double MeasuredO3 = 0;
};

/// Per-job progress, also the unit of checkpointing.
enum class JobState { Pending, Modeling, Tuning, Done, Failed };

const char *jobStateName(JobState State);

/// One job's results.
struct ExperimentJobResult {
  ExperimentJob Job;
  JobState State = JobState::Pending;
  ModelBuildResult Build;
  std::vector<PlatformTuning> Tunings;
  std::string Error; ///< Set when State == Failed.
};

/// How the campaign ended.
enum class CampaignStatus {
  Complete,        ///< Every job ran to completion.
  BudgetExhausted, ///< Paused at the budget; resume from the checkpoint.
  Failed,          ///< A job aborted (fault policy) or the spec/checkpoint
                   ///< was invalid; see Error.
};

const char *campaignStatusName(CampaignStatus Status);

/// Everything a campaign returns.
struct ExperimentResult {
  CampaignStatus Status = CampaignStatus::Complete;
  std::vector<ExperimentJobResult> Jobs;
  /// Simulator measurements spent, including prior runs when resumed.
  size_t SimulationsUsed = 0;
  /// Wall-clock seconds spent, including prior runs when resumed.
  double WallSeconds = 0;
  /// The checkpoint this campaign wrote (empty when checkpointing is off).
  std::string CheckpointPath;
  std::string Error; ///< Set when Status == Failed.

  bool ok() const { return Status == CampaignStatus::Complete; }
};

/// Runs the campaign described by \p Spec to completion (or to its budget
/// / first abort). The single public entry point; examples and benches
/// drive everything through this.
ExperimentResult runExperiment(const ExperimentSpec &Spec);

/// The parameter space a spec models.
ParameterSpace makeSpace(SpaceKind Kind);

} // namespace msem

#endif // MSEM_CAMPAIGN_EXPERIMENT_H
