//===- campaign/ShardStore.cpp - Measurement shards as a first-class API ---===//

#include "campaign/ShardStore.h"

#include "campaign/Checkpoint.h"
#include "support/FileSystem.h"
#include "support/Format.h"
#include "telemetry/TelemetrySnapshot.h"

#include <algorithm>
#include <map>

using namespace msem;

namespace {

bool failWith(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

std::string joinPath(const std::string &Dir, const std::string &Name) {
  if (Dir.empty())
    return Name;
  if (Dir.back() == '/')
    return Dir + Name;
  return Dir + "/" + Name;
}

// Shared by every wire document: stamp, atomic write, parse + schema check.
bool saveWireDoc(Json Doc, const std::string &Path, std::string *Error) {
  Doc.set("schema_version", Json::string(kCampaignSchema));
  return writeFileAtomic(Path, Doc.dump(), Error);
}

bool loadWireDoc(const std::string &Path, const char *What, Json &Out,
                 std::string *Error) {
  std::string Text;
  if (!readFileText(Path, Text, Error)) {
    if (Error)
      *Error = std::string("cannot open ") + What + ": " + *Error;
    return false;
  }
  std::string ParseError;
  Out = Json::parse(Text, &ParseError);
  if (!ParseError.empty())
    return failWith(Error,
                    std::string(What) + " '" + Path + "': " + ParseError);
  if (Out.kind() != Json::Kind::Object)
    return failWith(Error, std::string(What) + " '" + Path +
                               "': expected a JSON object");
  return checkCampaignSchema(Out, What, Error);
}

} // namespace

//===----------------------------------------------------------------------===//
// Schema versioning
//===----------------------------------------------------------------------===//

bool msem::checkCampaignSchema(const Json &Doc, const char *What,
                               std::string *Error) {
  if (!Doc.has("schema_version"))
    return true; // Legacy document from before the stamp existed.
  const std::string Schema = Doc["schema_version"].asString();
  if (Schema == kCampaignSchema)
    return true;
  const bool LooksNewer = Schema.rfind("msem.campaign.v", 0) == 0;
  return failWith(
      Error,
      formatString("%s: schema '%s' is not supported by this build (which "
                   "reads '%s'%s)",
                   What, Schema.c_str(), kCampaignSchema,
                   LooksNewer
                       ? "; it was written by a newer msem -- upgrade to load it"
                       : ""));
}

//===----------------------------------------------------------------------===//
// Leaf encodings
//===----------------------------------------------------------------------===//

Json msem::designPointToJson(const DesignPoint &Point) {
  Json A = Json::array();
  for (int64_t V : Point)
    A.push(Json::number(static_cast<double>(V)));
  return A;
}

DesignPoint msem::designPointFromJson(const Json &Doc) {
  DesignPoint P;
  P.reserve(Doc.size());
  for (const Json &V : Doc.items())
    P.push_back(V.asInt());
  return P;
}

Json msem::shardToJson(const SurfaceShard &Shard) {
  Json J = Json::object();
  Json Points = Json::array();
  for (const DesignPoint &P : Shard.Points)
    Points.push(designPointToJson(P));
  J.set("points", std::move(Points));
  Json Values = Json::array();
  for (double V : Shard.Values)
    Values.push(Json::number(V));
  J.set("values", std::move(Values));
  return J;
}

bool msem::shardFromJson(const Json &Doc, SurfaceShard &Out,
                         std::string *Error) {
  SurfaceShard Shard;
  for (const Json &PJ : Doc["points"].items())
    Shard.Points.push_back(designPointFromJson(PJ));
  for (const Json &V : Doc["values"].items())
    Shard.Values.push_back(V.asDouble());
  if (Shard.Points.size() != Shard.Values.size())
    return failWith(Error, "surface shard: point/value arity mismatch");
  Out = std::move(Shard);
  return true;
}

//===----------------------------------------------------------------------===//
// ShardStore
//===----------------------------------------------------------------------===//

void ShardStore::restore(std::map<std::string, SurfaceShard> Shards) {
  Store = std::move(Shards);
}

const SurfaceShard *ShardStore::find(const std::string &Key) const {
  auto It = Store.find(Key);
  return It == Store.end() ? nullptr : &It->second;
}

void ShardStore::update(
    const std::string &Key,
    const std::vector<std::pair<DesignPoint, double>> &Snapshot) {
  SurfaceShard &Shard = Store[Key];
  Shard.Points.clear();
  Shard.Values.clear();
  Shard.Points.reserve(Snapshot.size());
  Shard.Values.reserve(Snapshot.size());
  for (const auto &[Point, Value] : Snapshot) {
    Shard.Points.push_back(Point);
    Shard.Values.push_back(Value);
  }
}

void ShardStore::mergeShard(SurfaceShard &Dst, const SurfaceShard &Src) {
  // Sorted union via a point-keyed map: Dst's entries land first and win
  // on duplicates; std::map iteration then rebuilds the sorted arrays.
  std::map<DesignPoint, double> Union;
  for (size_t I = 0; I < Dst.Points.size(); ++I)
    Union.emplace(Dst.Points[I], Dst.Values[I]);
  for (size_t I = 0; I < Src.Points.size(); ++I)
    Union.emplace(Src.Points[I], Src.Values[I]);
  Dst.Points.clear();
  Dst.Values.clear();
  Dst.Points.reserve(Union.size());
  Dst.Values.reserve(Union.size());
  for (const auto &[Point, Value] : Union) {
    Dst.Points.push_back(Point);
    Dst.Values.push_back(Value);
  }
}

void ShardStore::merge(const std::string &Key, const SurfaceShard &Incoming) {
  mergeShard(Store[Key], Incoming);
}

//===----------------------------------------------------------------------===//
// Wire-format paths
//===----------------------------------------------------------------------===//

std::string msem::manifestPath(const std::string &Dir) {
  return joinPath(Dir, "campaign.json");
}

std::string msem::planPath(const std::string &Dir) {
  return joinPath(Dir, "plan.json");
}

std::string msem::workerShardPath(const std::string &Dir, uint64_t Round,
                                  int Worker) {
  return joinPath(Dir, formatString("shard-r%llu-w%d.json",
                                    static_cast<unsigned long long>(Round),
                                    Worker));
}

std::string msem::heartbeatPath(const std::string &Dir, int Worker) {
  return joinPath(Dir, formatString("worker-%d.json", Worker));
}

//===----------------------------------------------------------------------===//
// Wire documents
//===----------------------------------------------------------------------===//

namespace {

Json surfaceRefToJson(const SurfaceRef &Ref) {
  Json J = Json::object();
  J.set("workload", Json::string(Ref.Workload));
  J.set("input", Json::string(inputSetName(Ref.Input)));
  J.set("metric", Json::string(responseMetricName(Ref.Metric)));
  return J;
}

bool surfaceRefFromJson(const Json &Doc, SurfaceRef &Out, std::string *Error) {
  SurfaceRef Ref;
  Ref.Workload = Doc["workload"].asString(Ref.Workload);
  if (!inputSetFromName(Doc["input"].asString("train"), Ref.Input))
    return failWith(Error, "surface ref: unknown input set '" +
                               Doc["input"].asString() + "'");
  if (!responseMetricFromName(Doc["metric"].asString("cycles"), Ref.Metric))
    return failWith(Error, "surface ref: unknown metric '" +
                               Doc["metric"].asString() + "'");
  Out = std::move(Ref);
  return true;
}

} // namespace

bool msem::saveManifest(const CampaignManifest &M, const std::string &Path,
                        std::string *Error) {
  Json J = Json::object();
  J.set("workers", Json::number(M.Workers));
  J.set("spec", serializeSpec(M.Spec));
  if (M.TraceId) {
    J.set("trace", Json::hexU64(M.TraceId));
    J.set("span", Json::hexU64(M.SpanId));
  }
  return saveWireDoc(std::move(J), Path, Error);
}

bool msem::loadManifest(const std::string &Path, CampaignManifest &Out,
                        std::string *Error) {
  Json Doc;
  if (!loadWireDoc(Path, "campaign manifest", Doc, Error))
    return false;
  CampaignManifest M;
  M.Workers = static_cast<int>(Doc["workers"].asInt(0));
  if (M.Workers <= 0)
    return failWith(Error, "campaign manifest: missing worker count");
  if (!deserializeSpec(Doc["spec"], M.Spec, Error))
    return false;
  M.TraceId = Doc["trace"].asHexU64(0);
  M.SpanId = Doc["span"].asHexU64(0);
  Out = std::move(M);
  return true;
}

bool msem::savePlan(const RoundPlan &Plan, const std::string &Path,
                    std::string *Error) {
  Json J = Json::object();
  J.set("round", Json::number(static_cast<double>(Plan.Round)));
  J.set("epoch", Json::hexU64(Plan.Epoch));
  J.set("workers", Json::number(Plan.Workers));
  J.set("done", Json::boolean(Plan.Done));
  J.set("surface", surfaceRefToJson(Plan.Surface));
  Json Points = Json::array();
  for (const DesignPoint &P : Plan.Points)
    Points.push(designPointToJson(P));
  J.set("points", std::move(Points));
  return saveWireDoc(std::move(J), Path, Error);
}

bool msem::loadPlan(const std::string &Path, RoundPlan &Out,
                    std::string *Error) {
  Json Doc;
  if (!loadWireDoc(Path, "round plan", Doc, Error))
    return false;
  RoundPlan Plan;
  Plan.Round = static_cast<uint64_t>(Doc["round"].asInt(0));
  Plan.Epoch = Doc["epoch"].asHexU64(0);
  Plan.Workers = static_cast<int>(Doc["workers"].asInt(0));
  Plan.Done = Doc["done"].asBool(false);
  if (!surfaceRefFromJson(Doc["surface"], Plan.Surface, Error))
    return false;
  for (const Json &PJ : Doc["points"].items())
    Plan.Points.push_back(designPointFromJson(PJ));
  Out = std::move(Plan);
  return true;
}

bool msem::saveWorkerShard(const WorkerShard &Shard, const std::string &Path,
                           std::string *Error) {
  Json J = Json::object();
  J.set("round", Json::number(static_cast<double>(Shard.Round)));
  J.set("epoch", Json::hexU64(Shard.Epoch));
  J.set("worker", Json::number(Shard.Worker));
  J.set("done", Json::boolean(Shard.Done));
  J.set("surface", surfaceRefToJson(Shard.Surface));
  Json Indices = Json::array();
  for (size_t I : Shard.Indices)
    Indices.push(Json::number(static_cast<double>(I)));
  J.set("indices", std::move(Indices));
  Json Points = Json::array();
  for (const DesignPoint &P : Shard.Points)
    Points.push(designPointToJson(P));
  J.set("points", std::move(Points));
  Json Values = Json::array(), Ok = Json::array(), Faults = Json::array(),
       Retries = Json::array(), Errors = Json::array();
  for (const PointOutcome &O : Shard.Outcomes) {
    Values.push(Json::number(O.Value));
    Ok.push(Json::boolean(O.Ok));
    Faults.push(Json::number(static_cast<double>(O.Faults)));
    Retries.push(Json::number(static_cast<double>(O.Retries)));
    Errors.push(Json::string(O.Error));
  }
  J.set("values", std::move(Values));
  J.set("ok", std::move(Ok));
  J.set("faults", std::move(Faults));
  J.set("retries", std::move(Retries));
  J.set("errors", std::move(Errors));
  return saveWireDoc(std::move(J), Path, Error);
}

bool msem::loadWorkerShard(const std::string &Path, WorkerShard &Out,
                           std::string *Error) {
  Json Doc;
  if (!loadWireDoc(Path, "worker shard", Doc, Error))
    return false;
  WorkerShard Shard;
  Shard.Round = static_cast<uint64_t>(Doc["round"].asInt(0));
  Shard.Epoch = Doc["epoch"].asHexU64(0);
  Shard.Worker = static_cast<int>(Doc["worker"].asInt(0));
  Shard.Done = Doc["done"].asBool(false);
  if (Doc.has("surface") &&
      !surfaceRefFromJson(Doc["surface"], Shard.Surface, Error))
    return false;
  for (const Json &V : Doc["indices"].items())
    Shard.Indices.push_back(static_cast<size_t>(V.asInt()));
  for (const Json &PJ : Doc["points"].items())
    Shard.Points.push_back(designPointFromJson(PJ));
  const Json &Values = Doc["values"], &Ok = Doc["ok"], &Faults = Doc["faults"],
             &Retries = Doc["retries"], &Errors = Doc["errors"];
  const size_t N = Values.size();
  if (Shard.Indices.size() != N || Shard.Points.size() != N ||
      Ok.size() != N || Faults.size() != N || Retries.size() != N ||
      Errors.size() != N)
    return failWith(Error, "worker shard '" + Path +
                               "': outcome array arity mismatch");
  Shard.Outcomes.resize(N);
  for (size_t I = 0; I < N; ++I) {
    Shard.Outcomes[I].Value = Values.at(I).asDouble();
    Shard.Outcomes[I].Ok = Ok.at(I).asBool(false);
    Shard.Outcomes[I].Faults = static_cast<size_t>(Faults.at(I).asInt(0));
    Shard.Outcomes[I].Retries = static_cast<size_t>(Retries.at(I).asInt(0));
    Shard.Outcomes[I].Error = Errors.at(I).asString();
  }
  Out = std::move(Shard);
  return true;
}

bool msem::saveHeartbeat(const WorkerHeartbeat &Hb, const std::string &Path,
                         std::string *Error) {
  Json J = Json::object();
  J.set("worker", Json::number(Hb.Worker));
  J.set("pid", Json::number(static_cast<double>(Hb.Pid)));
  J.set("round", Json::number(static_cast<double>(Hb.Round)));
  J.set("measured", Json::number(static_cast<double>(Hb.Measured)));
  J.set("unix_seconds", Json::number(static_cast<double>(Hb.UnixSeconds)));
  if (Hb.HasTelemetry)
    J.set("telemetry", telemetry::telemetrySnapshotToJson(Hb.Telemetry));
  return saveWireDoc(std::move(J), Path, Error);
}

bool msem::loadHeartbeat(const std::string &Path, WorkerHeartbeat &Out,
                         std::string *Error) {
  Json Doc;
  if (!loadWireDoc(Path, "worker heartbeat", Doc, Error))
    return false;
  WorkerHeartbeat Hb;
  Hb.Worker = static_cast<int>(Doc["worker"].asInt(0));
  Hb.Pid = Doc["pid"].asInt(0);
  Hb.Round = static_cast<uint64_t>(Doc["round"].asInt(0));
  Hb.Measured = static_cast<size_t>(Doc["measured"].asInt(0));
  Hb.UnixSeconds = Doc["unix_seconds"].asInt(0);
  if (Doc.has("telemetry")) {
    if (!telemetry::telemetrySnapshotFromJson(Doc["telemetry"], Hb.Telemetry,
                                              Error))
      return false;
    Hb.HasTelemetry = true;
  }
  Out = std::move(Hb);
  return true;
}
