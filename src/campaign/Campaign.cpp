//===- campaign/Campaign.cpp - Fault-tolerant campaign engine --------------===//

#include "campaign/Campaign.h"

#include "registry/ModelRegistry.h"
#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/StatsServer.h"
#include "telemetry/Introspection.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cmath>

using namespace msem;

std::string msem::surfaceKeyFor(const ExperimentJob &Job) {
  return Job.Workload + "|" + inputSetName(Job.Input) + "|" +
         responseMetricName(Job.Metric);
}

ResponseSurface::Options
msem::surfaceOptionsFor(const ExperimentSpec &Spec, const ExperimentJob &Job,
                        const std::string *CacheDirOverride) {
  ResponseSurface::Options Opts;
  Opts.Workload = Job.Workload;
  Opts.Input = Job.Input;
  Opts.Metric = Job.Metric;
  Opts.UseSmarts = Spec.UseSmarts;
  if (Spec.SmartsInterval > 0)
    Opts.Smarts.SamplingInterval = Spec.SmartsInterval;
  else if (Job.Input == InputSet::Test)
    Opts.Smarts.SamplingInterval = 10; // Short runs want dense sampling.
  Opts.CacheDir = CacheDirOverride ? *CacheDirOverride : Spec.CacheDir;
  // The campaign flushes at checkpoint time, keeping the cache file and
  // the checkpoint that references it in step.
  Opts.AutoFlush = false;
  Opts.Faults = Spec.Faults;
  return Opts;
}

Campaign::Campaign(ExperimentSpec S)
    : Spec(std::move(S)), Space(makeSpace(Spec.Space)) {
  if (Spec.Jobs.empty())
    Spec.Jobs.emplace_back();
  Progress.resize(Spec.Jobs.size());
}

Campaign::~Campaign() = default;

ResponseSurface &Campaign::surfaceFor(const ExperimentJob &Job) {
  std::string Key = surfaceKeyFor(Job);
  auto It = Surfaces.find(Key);
  if (It != Surfaces.end())
    return *It->second;

  ResponseSurface::Options Opts = surfaceOptionsFor(Spec, Job);
  if (Spec.RemoteMeasure)
    Opts.Remote = [Remote = Spec.RemoteMeasure, Job,
                   Key](const std::vector<DesignPoint> &Points) {
      return Remote(Job, Key, Points);
    };

  auto Surface = std::make_unique<ResponseSurface>(Space, std::move(Opts));
  if (const SurfaceShard *Restored = Shards.find(Key))
    Surface->preload(Restored->Points, Restored->Values);
  return *Surfaces.emplace(Key, std::move(Surface)).first->second;
}

size_t Campaign::totalSimulations() const {
  size_t N = RestoredSimulations;
  for (const auto &[Key, S] : Surfaces)
    N += S->simulationsRun();
  return N;
}

double Campaign::totalWallSeconds() const {
  return RestoredWallSeconds +
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       RunStart)
             .count();
}

bool Campaign::budgetExceeded() const {
  if (Spec.Budget.MaxSimulations &&
      totalSimulations() >= Spec.Budget.MaxSimulations)
    return true;
  if (Spec.Budget.MaxWallSeconds > 0 &&
      totalWallSeconds() >= Spec.Budget.MaxWallSeconds)
    return true;
  return false;
}

void Campaign::writeCheckpoint() {
  if (Spec.CheckpointPath.empty())
    return;
  telemetry::ScopedTimer Span("campaign.checkpoint");
  CampaignCheckpoint Ckpt;
  Ckpt.Spec = Spec;
  Ckpt.Jobs = Progress;
  for (const auto &[Key, S] : Surfaces) {
    S->flush();
    if (Ckpt.CachePath.empty())
      Ckpt.CachePath = S->cachePath();
    // A materialized surface was preloaded from its restored shard, so
    // its snapshot supersedes what the store holds; restored shards whose
    // surface has not been materialized yet (e.g. later jobs'
    // measurements while job 0 replays) stay in the store untouched, so a
    // second kill cannot lose work RestoredSimulations already charged to
    // the budget.
    Shards.update(Key, S->snapshot());
  }
  Ckpt.Surfaces = Shards.shards();
  Ckpt.SimulationsSpent = totalSimulations();
  Ckpt.WallSecondsSpent = totalWallSeconds();
  Ckpt.Build = buildStamp();

  std::string Error;
  if (!saveCheckpoint(Ckpt, Spec.CheckpointPath, &Error))
    fatalError("campaign checkpoint failed: " + Error);
  ++CheckpointsWritten;
  telemetry::count("campaign.checkpoints");
  updateHealth("running");
  if (Spec.OnCheckpointWritten)
    Spec.OnCheckpointWritten(CheckpointsWritten);
}

void Campaign::updateHealth(const char *State) {
  Json H = Json::object();
  H.set("state", Json::string(State));
  size_t Done = 0;
  for (const JobProgress &P : Progress)
    if (P.State == JobState::Done)
      ++Done;
  H.set("jobs_done", Json::number(static_cast<double>(Done)));
  H.set("jobs_total", Json::number(static_cast<double>(Progress.size())));
  H.set("checkpoints",
        Json::number(static_cast<double>(CheckpointsWritten)));
  H.set("simulations",
        Json::number(static_cast<double>(totalSimulations())));
  H.set("wall_seconds", Json::number(totalWallSeconds()));
  if (Spec.Budget.MaxSimulations)
    H.set("budget_simulations",
          Json::number(static_cast<double>(Spec.Budget.MaxSimulations)));
  if (Spec.Budget.MaxWallSeconds > 0)
    H.set("budget_wall_seconds", Json::number(Spec.Budget.MaxWallSeconds));
  std::string Rendered = H.dump();
  std::lock_guard<std::mutex> Lock(HealthMutex);
  HealthJson = std::move(Rendered);
}

bool Campaign::runBuildPhase(size_t J, ExperimentJobResult &JR,
                             ExperimentResult &Result) {
  const ExperimentJob &Job = Spec.Jobs[J];
  telemetry::ScopedTimer Span("campaign.build");
  Span.setDetail(Job.Workload);
  ResponseSurface &Surface = surfaceFor(Job);

  ModelBuilderOptions Build;
  Build.Technique = Job.Technique;
  Build.InitialDesignSize = Spec.InitialDesignSize;
  Build.AugmentStep = Spec.AugmentStep;
  Build.MaxDesignSize = Spec.MaxDesignSize;
  if (Job.DesignSizeCap) {
    Build.InitialDesignSize =
        std::min(Build.InitialDesignSize, Job.DesignSizeCap);
    Build.MaxDesignSize = std::min(Build.MaxDesignSize, Job.DesignSizeCap);
  }
  Build.TestSize = Spec.TestSize;
  Build.TargetMape = Spec.TargetMape;
  Build.CandidateCount = Spec.CandidateCount;
  Build.Expansion = Spec.Expansion;
  Build.Seed = Spec.Seed;
  Build.OnIteration = [this, J](const ModelBuildResult &Partial) {
    Progress[J].State = JobState::Modeling;
    Progress[J].ErrorCurve = Partial.ErrorCurve;
    writeCheckpoint();
    return !budgetExceeded();
  };

  Progress[J].State = JobState::Modeling;
  JR.Build = buildModel(Surface, Build);
  Progress[J].ErrorCurve = JR.Build.ErrorCurve;

  if (JR.Build.Stop == BuildStop::Failed) {
    JR.State = JobState::Failed;
    JR.Error = JR.Build.Error;
    Progress[J].State = JobState::Failed;
    Progress[J].Error = JR.Error;
    writeCheckpoint();
    Result.Status = CampaignStatus::Failed;
    Result.Error = formatString("job %zu (%s): ", J, Job.Workload.c_str()) +
                   JR.Error;
    return false;
  }
  if (JR.Build.Stop == BuildStop::Paused) {
    // Budget hit between iterations; the iteration hook already wrote the
    // checkpoint covering everything measured so far.
    JR.State = JobState::Modeling;
    Result.Status = CampaignStatus::BudgetExhausted;
    return false;
  }
  publishModels(J, JR);
  return true;
}

void Campaign::publishModels(size_t J, const ExperimentJobResult &JR) {
  std::string Dir =
      Spec.RegistryDir.empty() ? env().RegistryDir : Spec.RegistryDir;
  if (Dir.empty() || !JR.Build.FittedModel)
    return;
  if (!Registry) {
    ModelRegistry::Options Opts;
    Opts.Dir = Dir;
    Opts.CacheCapacity = static_cast<size_t>(env().RegistryCacheCap);
    Registry = std::make_unique<ModelRegistry>(std::move(Opts));
  }

  telemetry::ScopedTimer Span("campaign.publish");
  const ExperimentJob &Job = Spec.Jobs[J];
  ModelArtifactInfo Info;
  Info.Key.Workload = Job.Workload;
  Info.Key.Input = Job.Input;
  Info.Key.Metric = Job.Metric;
  Info.Key.Technique = modelTechniqueName(Job.Technique);
  Info.Key.Platform = "joint";
  Info.Space = Space;
  Info.Campaign = Spec.Name;
  Info.Seed = Spec.Seed;
  Info.TrainSize = JR.Build.TrainPoints.size();
  Info.TestSize = JR.Build.TestPoints.size();
  Info.SimulationsUsed = JR.Build.SimulationsUsed;
  Info.StopReason = buildStopName(JR.Build.Stop);
  Info.Build = buildStamp();
  Info.Quality = JR.Build.TestQuality;

  std::string Error;
  if (!Registry->publish(Info, *JR.Build.FittedModel, &Error))
    fatalError("model publish failed: " + Error);

  // One frozen-machine artifact per tuning platform: the same model, but
  // the envelope pins the Table-2 coordinates so a serving process can
  // answer compiler-only requests for that platform (needs the paper
  // space's Table 1 / Table 2 bridge).
  if (Spec.Space != SpaceKind::Paper)
    return;
  for (const PlatformSpec &Platform : Spec.TunePlatforms) {
    Info.Key.Platform = Platform.Name;
    Info.HasFrozenMachine = true;
    Info.Machine = Platform.Config;
    if (!Registry->publish(Info, *JR.Build.FittedModel, &Error))
      fatalError("model publish failed: " + Error);
  }
}

bool Campaign::runTuningPhase(size_t J, ExperimentJobResult &JR,
                              ExperimentResult &Result) {
  // The per-platform search needs the Table 1/Table 2 bridge, which only
  // the paper space provides.
  if (Spec.TunePlatforms.empty() || Spec.Space != SpaceKind::Paper)
    return true;

  const ExperimentJob &Job = Spec.Jobs[J];
  ResponseSurface &Surface = surfaceFor(Job);
  JobProgress *Restored = J < RestoredJobs.size() ? &RestoredJobs[J] : nullptr;

  for (size_t P = 0; P < Spec.TunePlatforms.size(); ++P) {
    const PlatformSpec &Platform = Spec.TunePlatforms[P];
    telemetry::ScopedTimer TuneSpan("campaign.tune", P);
    TuneSpan.setDetail(Platform.Name);
    DesignPoint O2Point =
        Space.fromConfigs(OptimizationConfig::O2(), Platform.Config);

    GaOptions Ga = Spec.Ga;
    if (Restored && Restored->HasGaState && Restored->TuningsDone == P) {
      // Continue the search that was in flight when the checkpoint was
      // cut; consumed once so later platforms start fresh.
      Ga.ResumeFrom = &Restored->Ga;
      Restored->HasGaState = false;
    }
    Ga.OnGeneration = [this, J, P](const GaState &S) {
      Progress[J].State = JobState::Tuning;
      Progress[J].TuningsDone = P;
      Progress[J].Ga = S;
      Progress[J].HasGaState = true;
      bool Continue = !budgetExceeded();
      if (!Continue || (Spec.GaCheckpointEvery > 0 &&
                        S.Generation % Spec.GaCheckpointEvery == 0))
        writeCheckpoint();
      return Continue;
    };

    GaResult Search =
        searchOptimalSettings(*JR.Build.FittedModel, Space, O2Point, Ga);
    if (Search.Paused) {
      JR.State = JobState::Tuning;
      Result.Status = CampaignStatus::BudgetExhausted;
      return false;
    }

    PlatformTuning Tuning;
    Tuning.Platform = Platform.Name;
    Tuning.Search = std::move(Search);
    if (Spec.VerifyTunings) {
      DesignPoint O3Point =
          Space.fromConfigs(OptimizationConfig::O3(), Platform.Config);
      MeasurementReport Report;
      std::vector<double> Measured = Surface.measureAll(
          {Tuning.Search.BestPoint, O2Point, O3Point}, &Report);
      if (Report.Aborted) {
        JR.State = JobState::Failed;
        JR.Error = Report.Error;
        Progress[J].State = JobState::Failed;
        Progress[J].Error = JR.Error;
        writeCheckpoint();
        Result.Status = CampaignStatus::Failed;
        Result.Error =
            formatString("job %zu (%s), platform %s: ", J,
                         Job.Workload.c_str(), Platform.Name.c_str()) +
            JR.Error;
        return false;
      }
      Tuning.MeasuredBest = Measured[0];
      Tuning.MeasuredO2 = Measured[1];
      Tuning.MeasuredO3 = Measured[2];
    }
    JR.Tunings.push_back(std::move(Tuning));

    Progress[J].TuningsDone = P + 1;
    Progress[J].HasGaState = false;
    writeCheckpoint();
  }
  return true;
}

ExperimentResult Campaign::run() {
  // The campaign is a trace root; its id derives from (name, seed), so a
  // resumed campaign rejoins the same trace and the tree is identical at
  // any MSEM_THREADS.
  telemetry::ScopedTimer Span(
      "campaign.run",
      telemetry::ScopedTimer::TraceRoot{
          telemetry::deriveTraceId(Spec.Name, Spec.Seed)});
  Span.setDetail(Spec.Name);
  RunStart = std::chrono::steady_clock::now();

  // Live introspection: /metrics, /tracez etc. when MSEM_STATS_PORT is
  // set (a pure env read otherwise), plus the campaign's own /healthz
  // fragment for the lifetime of this run.
  telemetry::ensureIntrospection();
  updateHealth("running");
  ScopedHealthProvider Health("campaign", [this] {
    std::lock_guard<std::mutex> Lock(HealthMutex);
    return HealthJson;
  });

  ExperimentResult Result;
  Result.CheckpointPath = Spec.CheckpointPath;

  for (size_t J = 0; J < Spec.Jobs.size(); ++J) {
    telemetry::ScopedTimer JobSpan("campaign.job", J);
    JobSpan.setDetail(surfaceKeyFor(Spec.Jobs[J]));
    ExperimentJobResult JR;
    JR.Job = Spec.Jobs[J];

    if (Result.Status == CampaignStatus::Complete && budgetExceeded()) {
      writeCheckpoint();
      Result.Status = CampaignStatus::BudgetExhausted;
    }
    if (Result.Status != CampaignStatus::Complete) {
      // Campaign already stopped: record the job untouched.
      Result.Jobs.push_back(std::move(JR));
      continue;
    }

    bool Continue = runBuildPhase(J, JR, Result) &&
                    runTuningPhase(J, JR, Result);
    if (Continue) {
      JR.State = JobState::Done;
      Progress[J].State = JobState::Done;
      writeCheckpoint();
    }
    Result.Jobs.push_back(std::move(JR));
  }

  Result.SimulationsUsed = totalSimulations();
  Result.WallSeconds = totalWallSeconds();
  telemetry::counter("campaign.simulations")
      .add(static_cast<uint64_t>(Result.SimulationsUsed));
  updateHealth(Result.Status == CampaignStatus::Complete ? "complete"
               : Result.Status == CampaignStatus::BudgetExhausted
                   ? "budget_exhausted"
                   : "failed");
  return Result;
}

ExperimentResult
Campaign::resume(const std::string &Path, const ExperimentBudget *NewBudget,
                 const std::function<void(ExperimentSpec &)> &Customize) {
  CampaignCheckpoint Ckpt;
  std::string Error;
  if (!loadCheckpoint(Path, Ckpt, &Error)) {
    ExperimentResult Result;
    Result.Status = CampaignStatus::Failed;
    Result.Error = Error;
    return Result;
  }
  // Run the *embedded* spec -- the checkpoint is the contract, so a
  // drifted caller cannot silently alter a half-finished campaign. The
  // budget is the exception: raising it is exactly why one resumes. The
  // customizer exists to reinstall the non-serialized hooks (progress
  // callbacks, Coordinator's RemoteMeasure) on the embedded spec.
  if (NewBudget)
    Ckpt.Spec.Budget = *NewBudget;
  Ckpt.Spec.CheckpointPath = Path;
  if (Customize)
    Customize(Ckpt.Spec);

  Campaign C(std::move(Ckpt.Spec));
  C.Shards.restore(std::move(Ckpt.Surfaces));
  C.RestoredJobs = std::move(Ckpt.Jobs);
  C.RestoredSimulations = Ckpt.SimulationsSpent;
  C.RestoredWallSeconds = Ckpt.WallSecondsSpent;
  telemetry::count("campaign.resumes");
  return C.run();
}
