//===- sampling/Smarts.h - SMARTS statistical sampling ------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SMARTS-style systematic sampling (Wunderlich et al., ISCA 2003), the
/// simulation-time reduction the paper relies on: between detailed
/// measurement windows the program executes under *functional warming*
/// (caches and branch predictors stay up to date while no timing is
/// modeled), so micro-architectural state is warm when each detailed window
/// opens. CPI is estimated as the mean over windows with a normal
/// confidence interval; the paper uses window size 1000, interval 1000 and
/// reports < 1% error at 99.7% confidence.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SAMPLING_SMARTS_H
#define MSEM_SAMPLING_SMARTS_H

#include "uarch/Simulator.h"

namespace msem {

/// Sampling parameters (paper defaults).
struct SmartsConfig {
  uint64_t WindowSize = 1000;       ///< Instructions measured per window.
  uint64_t SamplingInterval = 1000; ///< 1 of every N windows is measured.
  uint64_t DetailedWarmupWindows = 1; ///< Unmeasured detailed lead-in.
  double Confidence = 0.997;        ///< For the error bound.
  /// Keep caches/predictors warm between detailed windows (SMARTS's key
  /// idea). Disabling it is an ablation: windows then open on cold or
  /// stale state and the estimate degrades.
  bool FunctionalWarming = true;
};

/// Outcome of a sampled simulation.
struct SmartsResult {
  ExecResult Exec;
  uint64_t TotalInstructions = 0;
  uint64_t SampledInstructions = 0;
  size_t MeasuredWindows = 0;
  double EstimatedCpi = 0.0;
  uint64_t EstimatedCycles = 0;
  /// Relative half-width of the CPI confidence interval (z*s/(sqrt(n)*m)).
  double RelativeErrorBound = 0.0;
  /// True when the program finished before one full window was measured
  /// and the estimate fell back to whatever was simulated in detail.
  bool FellBackToDetailed = false;
};

/// Runs \p Prog under systematic sampling.
///
/// Re-entrant: every piece of simulation state (executor, memory
/// hierarchy, predictors, OoO core, CPI statistics) is constructed per
/// call, so concurrent invocations from thread-pool workers are
/// independent and each is bitwise deterministic in its inputs. The
/// parallel measurement engine (ResponseSurface::measureAll) depends on
/// this; keep new simulator state per-call, never static.
///
/// When \p Capture is set, the retired-instruction stream is additionally
/// recorded for later replay (uarch/TraceCache.h). The stream is
/// sampling-independent -- warming vs detailed windows change only which
/// sink observes each instruction -- so one capture serves every later
/// machine config and sampling scheme.
SmartsResult simulateSmarts(const MachineProgram &Prog,
                            const MachineConfig &Config,
                            const SmartsConfig &Sampling,
                            uint64_t MaxInstructions = 4'000'000'000ull,
                            TraceBuilder *Capture = nullptr);

/// Sampled re-simulation of a captured run: the recorded stream drives
/// functional warming and the detailed windows instead of the executor.
/// Bitwise-identical to simulateSmarts of the same program and config
/// (cycles, CPI, CI fields, window counts).
SmartsResult simulateSmartsReplay(const ReplayImage &Image,
                                  const MachineConfig &Config,
                                  const SmartsConfig &Sampling);

} // namespace msem

#endif // MSEM_SAMPLING_SMARTS_H
