//===- sampling/Smarts.cpp - SMARTS statistical sampling -----------------------===//

#include "sampling/Smarts.h"

#include "support/Statistics.h"
#include "telemetry/Telemetry.h"
#include "uarch/FunctionalWarming.h"
#include "uarch/TraceCache.h"

using namespace msem;

namespace {

/// The one SMARTS driver, shared by live execution, capture and replay:
/// \p Exec is anything with Executor's run/halted/result interface, and
/// \p DetailedFallback re-simulates fully detailed when the program was too
/// short to sample. Span names and telemetry are identical across modes so
/// the canonical span tree does not depend on cache state.
template <typename SourceT, typename FallbackT>
SmartsResult runSmartsOn(SourceT &Exec, const MachineConfig &Config,
                         const SmartsConfig &Sampling,
                         FallbackT &&DetailedFallback) {
  telemetry::ScopedTimer Span("sim.smarts");

  MemoryHierarchy Memory(Config);
  CombinedPredictor Predictor(Config.BranchPredictorSize,
                              MachineConfig::ReturnStackEntries);
  OoOCore Core(Config, Memory, Predictor);
  WarmingSink Warm(Memory, Predictor);
  auto Detail = [&Core](const RetiredInstr &RI) { Core.consume(RI); };

  OnlineStats WindowCpi;

  // Registry lookups hoisted out of the per-window loop; metric references
  // are stable for the process lifetime (telemetry/Telemetry.h).
  telemetry::Histogram *CpiHist = nullptr;
  telemetry::Series *CiSeries = nullptr;
  if (telemetry::enabled()) {
    CpiHist = &telemetry::histogram(
        "smarts.window_cpi", {0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0});
    CiSeries = &telemetry::series("smarts.ci_rel_error");
  }

  const uint64_t W = Sampling.WindowSize;
  const uint64_t WarmupInstrs = Sampling.DetailedWarmupWindows * W;
  // One period = (interval-1-warmup) warm windows, warmup detailed
  // windows, then 1 measured window.
  uint64_t FunctionalPerPeriod =
      Sampling.SamplingInterval > 1 + Sampling.DetailedWarmupWindows
          ? (Sampling.SamplingInterval - 1 -
             Sampling.DetailedWarmupWindows) *
                W
          : 0;

  auto NoWarm = [](const RetiredInstr &) {};

  uint64_t Sampled = 0;
  uint64_t Period = 0;
  while (!Exec.halted()) {
    // Keyed on the period ordinal: the simulation runs single-threaded,
    // but the enclosing measurement fan-out does not, so the key keeps
    // span ids schedule-independent. MSEM_TRACE_SAMPLE bounds the volume
    // on long runs.
    telemetry::ScopedTimer WindowSpan("smarts.window", Period++);
    if (FunctionalPerPeriod > 0) {
      if (Sampling.FunctionalWarming)
        Exec.run(Warm, FunctionalPerPeriod);
      else
        Exec.run(NoWarm, FunctionalPerPeriod);
      if (Exec.halted())
        break;
    }
    if (WarmupInstrs > 0) {
      Exec.run(Detail, WarmupInstrs);
      if (Exec.halted())
        break;
    }
    uint64_t Before = Core.cycles();
    uint64_t Retired = Exec.run(Detail, W);
    Sampled += Retired;
    if (Retired == W) {
      uint64_t Delta = Core.cycles() - Before;
      double Cpi = static_cast<double>(Delta) / static_cast<double>(W);
      WindowCpi.add(Cpi);
      if (CpiHist) {
        CpiHist->observe(Cpi);
        // CI convergence trajectory: relative half-width after each window.
        if (WindowCpi.count() > 1 && WindowCpi.mean() > 0)
          CiSeries->record(static_cast<double>(WindowCpi.count()),
                           zValueForConfidence(Sampling.Confidence) *
                               WindowCpi.standardError() / WindowCpi.mean());
      }
    }
  }

  SmartsResult R;
  R.Exec = Exec.result();
  R.TotalInstructions = R.Exec.InstructionsExecuted;
  R.SampledInstructions = Sampled;
  R.MeasuredWindows = WindowCpi.count();

  if (telemetry::enabled()) {
    telemetry::counter("smarts.runs").add(1);
    telemetry::counter("smarts.instructions.total")
        .add(R.TotalInstructions);
    telemetry::counter("smarts.instructions.sampled").add(Sampled);
    telemetry::counter("smarts.windows.measured").add(WindowCpi.count());
    if (R.TotalInstructions)
      telemetry::gauge("smarts.sampled_fraction")
          .set(static_cast<double>(Sampled) /
               static_cast<double>(R.TotalInstructions));
  }

  if (WindowCpi.count() == 0) {
    // Program too short to sample: whatever ran in detail is the estimate;
    // re-simulate fully detailed for a usable number.
    R.FellBackToDetailed = true;
    telemetry::count("smarts.detailed_fallbacks");
    SimulationResult Full = DetailedFallback();
    R.EstimatedCpi = Full.cpi();
    R.EstimatedCycles = Full.Cycles;
    return R;
  }

  R.EstimatedCpi = WindowCpi.mean();
  R.EstimatedCycles = static_cast<uint64_t>(
      R.EstimatedCpi * static_cast<double>(R.TotalInstructions));
  double Z = zValueForConfidence(Sampling.Confidence);
  if (WindowCpi.mean() > 0)
    R.RelativeErrorBound =
        Z * WindowCpi.standardError() / WindowCpi.mean();
  telemetry::gaugeSet("smarts.ci_rel_error.last", R.RelativeErrorBound);
  return R;
}

} // namespace

SmartsResult msem::simulateSmarts(const MachineProgram &Prog,
                                  const MachineConfig &Config,
                                  const SmartsConfig &Sampling,
                                  uint64_t MaxInstructions,
                                  TraceBuilder *Capture) {
  // The too-short-to-sample fallback re-runs live *without* capture: the
  // sampling loop above it already drove the executor to halt, so the
  // trace is complete by the time the fallback fires.
  auto Fallback = [&] { return simulateDetailed(Prog, Config, MaxInstructions); };
  if (Capture) {
    CapturingExecutor Exec(Prog, MaxInstructions, *Capture);
    return runSmartsOn(Exec, Config, Sampling, Fallback);
  }
  Executor Exec(Prog, MaxInstructions);
  return runSmartsOn(Exec, Config, Sampling, Fallback);
}

SmartsResult msem::simulateSmartsReplay(const ReplayImage &Image,
                                        const MachineConfig &Config,
                                        const SmartsConfig &Sampling) {
  ReplaySource Exec(Image);
  return runSmartsOn(Exec, Config, Sampling,
                     [&] { return simulateDetailedReplay(Image, Config); });
}
