//===- sampling/Smarts.cpp - SMARTS statistical sampling -----------------------===//

#include "sampling/Smarts.h"

#include "support/Statistics.h"
#include "telemetry/Telemetry.h"

using namespace msem;

namespace {

/// Functional warming: architectural state advances (the executor does
/// that), caches and predictors are kept warm, no timing is computed.
class WarmingSink {
public:
  WarmingSink(MemoryHierarchy &Memory, CombinedPredictor &Predictor)
      : Memory(Memory), Predictor(Predictor) {}

  void operator()(const RetiredInstr &RI) {
    const MachineInstr &MI = *RI.MI;
    uint64_t Pc = MachineProgram::codeAddress(RI.CodeIndex);
    uint64_t Line = Pc / MachineConfig::L1LineBytes;
    if (Line != LastLine) {
      LastLine = Line;
      Memory.touchInstr(Pc);
    }
    if (MI.isLoad())
      Memory.touchData(RI.MemAddr, /*IsWrite=*/false);
    else if (MI.isStore())
      Memory.touchData(RI.MemAddr, /*IsWrite=*/true);
    else if (MI.isPrefetch())
      Memory.touchData(RI.MemAddr, /*IsWrite=*/false);

    if (MI.isConditionalBranch())
      Predictor.updateConditional(Pc, RI.BranchTaken);
    else if (MI.Op == MOp::JAL)
      Predictor.pushReturn(MachineProgram::codeAddress(RI.CodeIndex + 1));
    else if (MI.Op == MOp::JR)
      (void)Predictor.predictReturn(
          MachineProgram::codeAddress(RI.NextCodeIndex));
  }

private:
  MemoryHierarchy &Memory;
  CombinedPredictor &Predictor;
  uint64_t LastLine = ~0ull;
};

} // namespace

SmartsResult msem::simulateSmarts(const MachineProgram &Prog,
                                  const MachineConfig &Config,
                                  const SmartsConfig &Sampling,
                                  uint64_t MaxInstructions) {
  telemetry::ScopedTimer Span("sim.smarts");

  MemoryHierarchy Memory(Config);
  CombinedPredictor Predictor(Config.BranchPredictorSize,
                              MachineConfig::ReturnStackEntries);
  OoOCore Core(Config, Memory, Predictor);
  WarmingSink Warm(Memory, Predictor);
  auto Detail = [&Core](const RetiredInstr &RI) { Core.consume(RI); };

  Executor Exec(Prog, MaxInstructions);
  OnlineStats WindowCpi;

  const uint64_t W = Sampling.WindowSize;
  const uint64_t WarmupInstrs = Sampling.DetailedWarmupWindows * W;
  // One period = (interval-1-warmup) warm windows, warmup detailed
  // windows, then 1 measured window.
  uint64_t FunctionalPerPeriod =
      Sampling.SamplingInterval > 1 + Sampling.DetailedWarmupWindows
          ? (Sampling.SamplingInterval - 1 -
             Sampling.DetailedWarmupWindows) *
                W
          : 0;

  auto NoWarm = [](const RetiredInstr &) {};

  uint64_t Sampled = 0;
  uint64_t Period = 0;
  while (!Exec.halted()) {
    // Keyed on the period ordinal: the simulation runs single-threaded,
    // but the enclosing measurement fan-out does not, so the key keeps
    // span ids schedule-independent. MSEM_TRACE_SAMPLE bounds the volume
    // on long runs.
    telemetry::ScopedTimer WindowSpan("smarts.window", Period++);
    if (FunctionalPerPeriod > 0) {
      if (Sampling.FunctionalWarming)
        Exec.run(Warm, FunctionalPerPeriod);
      else
        Exec.run(NoWarm, FunctionalPerPeriod);
      if (Exec.halted())
        break;
    }
    if (WarmupInstrs > 0) {
      Exec.run(Detail, WarmupInstrs);
      if (Exec.halted())
        break;
    }
    uint64_t Before = Core.cycles();
    uint64_t Retired = Exec.run(Detail, W);
    Sampled += Retired;
    if (Retired == W) {
      uint64_t Delta = Core.cycles() - Before;
      double Cpi = static_cast<double>(Delta) / static_cast<double>(W);
      WindowCpi.add(Cpi);
      if (telemetry::enabled()) {
        telemetry::histogram("smarts.window_cpi",
                             {0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0})
            .observe(Cpi);
        // CI convergence trajectory: relative half-width after each window.
        if (WindowCpi.count() > 1 && WindowCpi.mean() > 0)
          telemetry::series("smarts.ci_rel_error")
              .record(static_cast<double>(WindowCpi.count()),
                      zValueForConfidence(Sampling.Confidence) *
                          WindowCpi.standardError() / WindowCpi.mean());
      }
    }
  }

  SmartsResult R;
  R.Exec = Exec.result();
  R.TotalInstructions = R.Exec.InstructionsExecuted;
  R.SampledInstructions = Sampled;
  R.MeasuredWindows = WindowCpi.count();

  if (telemetry::enabled()) {
    telemetry::counter("smarts.runs").add(1);
    telemetry::counter("smarts.instructions.total")
        .add(R.TotalInstructions);
    telemetry::counter("smarts.instructions.sampled").add(Sampled);
    telemetry::counter("smarts.windows.measured").add(WindowCpi.count());
    if (R.TotalInstructions)
      telemetry::gauge("smarts.sampled_fraction")
          .set(static_cast<double>(Sampled) /
               static_cast<double>(R.TotalInstructions));
  }

  if (WindowCpi.count() == 0) {
    // Program too short to sample: whatever ran in detail is the estimate;
    // re-simulate fully detailed for a usable number.
    R.FellBackToDetailed = true;
    telemetry::count("smarts.detailed_fallbacks");
    SimulationResult Full = simulateDetailed(Prog, Config, MaxInstructions);
    R.EstimatedCpi = Full.cpi();
    R.EstimatedCycles = Full.Cycles;
    return R;
  }

  R.EstimatedCpi = WindowCpi.mean();
  R.EstimatedCycles = static_cast<uint64_t>(
      R.EstimatedCpi * static_cast<double>(R.TotalInstructions));
  double Z = zValueForConfidence(Sampling.Confidence);
  if (WindowCpi.mean() > 0)
    R.RelativeErrorBound =
        Z * WindowCpi.standardError() / WindowCpi.mean();
  telemetry::gaugeSet("smarts.ci_rel_error.last", R.RelativeErrorBound);
  return R;
}
