//===- uarch/MachineConfig.cpp - Table 2 microarchitecture params -------------===//

#include "uarch/MachineConfig.h"

#include "support/Format.h"

using namespace msem;

MachineConfig MachineConfig::constrained() {
  MachineConfig C;
  C.IssueWidth = 2;
  C.BranchPredictorSize = 512;
  C.RuuSize = 16;
  C.IcacheBytes = 8 * 1024;
  C.DcacheBytes = 8 * 1024;
  C.DcacheAssoc = 1;
  C.DcacheLatency = 1;
  C.L2Bytes = 256 * 1024;
  C.L2Assoc = 2;
  C.L2Latency = 6;
  C.MemoryLatency = 50;
  return C;
}

MachineConfig MachineConfig::typical() {
  MachineConfig C;
  C.IssueWidth = 4;
  C.BranchPredictorSize = 2048;
  C.RuuSize = 64;
  C.IcacheBytes = 32 * 1024;
  C.DcacheBytes = 32 * 1024;
  C.DcacheAssoc = 1;
  C.DcacheLatency = 2;
  C.L2Bytes = 1024 * 1024;
  C.L2Assoc = 4;
  C.L2Latency = 10;
  C.MemoryLatency = 100;
  return C;
}

MachineConfig MachineConfig::aggressive() {
  MachineConfig C;
  C.IssueWidth = 4;
  C.BranchPredictorSize = 8192;
  C.RuuSize = 128;
  C.IcacheBytes = 128 * 1024;
  C.DcacheBytes = 128 * 1024;
  C.DcacheAssoc = 2;
  C.DcacheLatency = 3;
  C.L2Bytes = 8 * 1024 * 1024;
  C.L2Assoc = 8;
  C.L2Latency = 16;
  C.MemoryLatency = 150;
  return C;
}

std::string MachineConfig::toString() const {
  return formatString("w%u bp%u ruu%u il1:%uK dl1:%uK/%u/%u l2:%uK/%u/%u "
                      "mem%u",
                      IssueWidth, BranchPredictorSize, RuuSize,
                      IcacheBytes / 1024, DcacheBytes / 1024, DcacheAssoc,
                      DcacheLatency, L2Bytes / 1024, L2Assoc, L2Latency,
                      MemoryLatency);
}
