//===- uarch/Cache.h - Set-associative caches and the hierarchy --*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set-associative LRU caches (tag state only -- the simulator is
/// trace-driven, data lives in the functional executor) and the two-level
/// hierarchy with a finite-bandwidth memory bus. The hierarchy supports
/// both timed accesses (returning completion cycles, used by the detailed
/// core) and untimed touches (used for SMARTS functional warming).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_CACHE_H
#define MSEM_UARCH_CACHE_H

#include "uarch/MachineConfig.h"

#include <cstdint>
#include <vector>

namespace msem {

/// One level of set-associative cache with true-LRU replacement.
class Cache {
public:
  /// \p SizeBytes and \p Assoc must yield a power-of-two number of sets.
  Cache(uint64_t SizeBytes, unsigned Assoc, unsigned LineBytes);

  /// Looks up \p Addr; on hit updates LRU and returns true. On miss, fills
  /// the line (evicting LRU; *WasDirtyEviction reports a dirty writeback)
  /// and returns false. \p IsWrite marks the line dirty.
  ///
  /// Defined inline: this is the innermost call of both functional
  /// warming and the detailed core's memory path, hot enough that the
  /// cross-TU call overhead is measurable.
  bool access(uint64_t Addr, bool IsWrite, bool *WasDirtyEviction = nullptr) {
    uint64_t LineAddr = Addr >> SetShift;
    unsigned Set = static_cast<unsigned>(LineAddr & (NumSets - 1));
    uint64_t Tag = LineAddr >> TagShift;
    size_t Base = static_cast<size_t>(Set) * Assoc;
    const uint64_t *SetTags = &Tags[Base];
    ++Clock;
    for (unsigned W = 0; W < Assoc; ++W) {
      if (SetTags[W] == Tag && (Flags[Base + W] & FlagValid)) {
        Stamps[Base + W] = Clock;
        Flags[Base + W] |= IsWrite ? FlagDirty : 0;
        ++Hits;
        return true;
      }
    }
    ++Misses;
    // Choose the LRU victim (prefer invalid ways).
    size_t Victim = Base;
    for (unsigned W = 0; W < Assoc; ++W) {
      if (!(Flags[Base + W] & FlagValid)) {
        Victim = Base + W;
        break;
      }
      if (Stamps[Base + W] < Stamps[Victim])
        Victim = Base + W;
    }
    if (WasDirtyEviction)
      *WasDirtyEviction = (Flags[Victim] & (FlagValid | FlagDirty)) ==
                          (FlagValid | FlagDirty);
    Tags[Victim] = Tag;
    Flags[Victim] = FlagValid | (IsWrite ? FlagDirty : 0);
    Stamps[Victim] = Clock;
    return false;
  }

  /// Invalidate-free probe: true if the line is present (no LRU update).
  bool probe(uint64_t Addr) const;

  void reset();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  unsigned lineBytes() const { return LineBytes; }

private:
  /// Line state is split into parallel arrays (tags / LRU stamps / flags)
  /// so the hit path scans a set's tags in one contiguous 8B*Assoc block
  /// instead of striding through 24-byte structs.
  static constexpr uint8_t FlagValid = 1;
  static constexpr uint8_t FlagDirty = 2;

  unsigned NumSets;
  unsigned Assoc;
  unsigned LineBytes;
  unsigned SetShift;
  unsigned TagShift; ///< log2(NumSets), precomputed off the access path.
  std::vector<uint64_t> Tags;   // NumSets * Assoc.
  std::vector<uint64_t> Stamps; // NumSets * Assoc.
  std::vector<uint8_t> Flags;   // NumSets * Assoc.
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Per-run memory system statistics.
struct MemoryStats {
  uint64_t IcacheMisses = 0;
  uint64_t DcacheMisses = 0;
  uint64_t L2Misses = 0;
  uint64_t DcacheAccesses = 0;
  uint64_t IcacheAccesses = 0;
  uint64_t Writebacks = 0;
  uint64_t Prefetches = 0;
};

/// IL1 + DL1 + unified L2 + finite memory bus.
///
/// Timed accesses return the cycle at which the requested data is
/// available, serializing on the (single) memory bus when both levels
/// miss. Instruction and data addresses live in disjoint spaces (code
/// addresses come from MachineProgram::codeAddress).
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MachineConfig &Config);

  /// Timed instruction fetch of the line containing \p Pc starting at
  /// \p Cycle; returns data-ready cycle.
  uint64_t accessInstr(uint64_t Pc, uint64_t Cycle);

  /// Timed data access at \p Cycle; returns data-ready cycle. Prefetches
  /// fill caches and consume bus bandwidth but their completion time is
  /// irrelevant to the consumer.
  ///
  /// The timed entry points stay out-of-line on purpose: unlike the
  /// untimed touches they are called from the already-large detailed
  /// core, where inlining them measurably bloats OoOCore::consume and
  /// slows it down.
  uint64_t accessData(uint64_t Addr, bool IsWrite, bool IsPrefetch,
                      uint64_t Cycle);

  /// Untimed warming (SMARTS functional warming between detailed
  /// windows). Inline for the same reason as Cache::access: these are the
  /// warming loops' only per-event calls.
  void touchInstr(uint64_t Pc) {
    ++Stats.IcacheAccesses;
    if (!Icache.access(Pc, /*IsWrite=*/false)) {
      ++Stats.IcacheMisses;
      if (!L2.access(Pc | (1ull << 60), /*IsWrite=*/false))
        ++Stats.L2Misses;
    }
  }
  void touchData(uint64_t Addr, bool IsWrite) {
    ++Stats.DcacheAccesses;
    if (!Dcache.access(Addr, IsWrite)) {
      ++Stats.DcacheMisses;
      if (!L2.access(Addr, IsWrite))
        ++Stats.L2Misses;
    }
  }

  const MemoryStats &stats() const { return Stats; }
  void resetStats() { Stats = MemoryStats(); }

private:
  /// L2 + bus path shared by both L1s; returns ready cycle.
  uint64_t accessL2(uint64_t Addr, bool IsWrite, uint64_t Cycle);

  MachineConfig Config;
  Cache Icache;
  Cache Dcache;
  Cache L2;
  uint64_t MemBusFree = 0;
  MemoryStats Stats;
};

} // namespace msem

#endif // MSEM_UARCH_CACHE_H
