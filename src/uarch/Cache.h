//===- uarch/Cache.h - Set-associative caches and the hierarchy --*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set-associative LRU caches (tag state only -- the simulator is
/// trace-driven, data lives in the functional executor) and the two-level
/// hierarchy with a finite-bandwidth memory bus. The hierarchy supports
/// both timed accesses (returning completion cycles, used by the detailed
/// core) and untimed touches (used for SMARTS functional warming).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_CACHE_H
#define MSEM_UARCH_CACHE_H

#include "uarch/MachineConfig.h"

#include <cstdint>
#include <vector>

namespace msem {

/// One level of set-associative cache with true-LRU replacement.
class Cache {
public:
  /// \p SizeBytes and \p Assoc must yield a power-of-two number of sets.
  Cache(uint64_t SizeBytes, unsigned Assoc, unsigned LineBytes);

  /// Looks up \p Addr; on hit updates LRU and returns true. On miss, fills
  /// the line (evicting LRU; *WasDirtyEviction reports a dirty writeback)
  /// and returns false. \p IsWrite marks the line dirty.
  bool access(uint64_t Addr, bool IsWrite, bool *WasDirtyEviction = nullptr);

  /// Invalidate-free probe: true if the line is present (no LRU update).
  bool probe(uint64_t Addr) const;

  void reset();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  unsigned lineBytes() const { return LineBytes; }

private:
  struct Line {
    uint64_t Tag = ~0ull;
    bool Valid = false;
    bool Dirty = false;
    uint64_t LruStamp = 0;
  };

  unsigned NumSets;
  unsigned Assoc;
  unsigned LineBytes;
  unsigned SetShift;
  std::vector<Line> Lines; // NumSets * Assoc.
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Per-run memory system statistics.
struct MemoryStats {
  uint64_t IcacheMisses = 0;
  uint64_t DcacheMisses = 0;
  uint64_t L2Misses = 0;
  uint64_t DcacheAccesses = 0;
  uint64_t IcacheAccesses = 0;
  uint64_t Writebacks = 0;
  uint64_t Prefetches = 0;
};

/// IL1 + DL1 + unified L2 + finite memory bus.
///
/// Timed accesses return the cycle at which the requested data is
/// available, serializing on the (single) memory bus when both levels
/// miss. Instruction and data addresses live in disjoint spaces (code
/// addresses come from MachineProgram::codeAddress).
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MachineConfig &Config);

  /// Timed instruction fetch of the line containing \p Pc starting at
  /// \p Cycle; returns data-ready cycle.
  uint64_t accessInstr(uint64_t Pc, uint64_t Cycle);

  /// Timed data access at \p Cycle; returns data-ready cycle. Prefetches
  /// fill caches and consume bus bandwidth but their completion time is
  /// irrelevant to the consumer.
  uint64_t accessData(uint64_t Addr, bool IsWrite, bool IsPrefetch,
                      uint64_t Cycle);

  /// Untimed warming (SMARTS functional warming between detailed windows).
  void touchInstr(uint64_t Pc);
  void touchData(uint64_t Addr, bool IsWrite);

  const MemoryStats &stats() const { return Stats; }
  void resetStats() { Stats = MemoryStats(); }

private:
  /// L2 + bus path shared by both L1s; returns ready cycle.
  uint64_t accessL2(uint64_t Addr, bool IsWrite, uint64_t Cycle);

  MachineConfig Config;
  Cache Icache;
  Cache Dcache;
  Cache L2;
  uint64_t MemBusFree = 0;
  MemoryStats Stats;
};

} // namespace msem

#endif // MSEM_UARCH_CACHE_H
