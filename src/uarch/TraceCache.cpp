//===- uarch/TraceCache.cpp - Retired-trace capture & replay --------------===//

#include "uarch/TraceCache.h"

#include "support/Env.h"
#include "support/Format.h"
#include "support/StatsServer.h"
#include "telemetry/Telemetry.h"

namespace msem {

size_t CapturedTrace::bytes() const {
  size_t N = sizeof(CapturedTrace);
  N += MemDeltas.capacity();
  N += BranchBits.capacity() * sizeof(uint64_t);
  N += JrTargets.capacity() * sizeof(uint64_t);
  N += Exec.TrapMessage.size();
  N += Exec.Output.capacity() * sizeof(EmitRecord);
  return N;
}

size_t ReplayImage::bytes() const {
  size_t N = sizeof(ReplayImage) + Trace.bytes();
  N += Steps.capacity() * sizeof(ReplayStep);
  N += MemAddrs.capacity() * sizeof(uint64_t);
  N += CtrlRet.capacity() * sizeof(uint64_t);
  N += CtrlNext.capacity() * sizeof(uint32_t);
  N += MemSitePrefix.capacity() * sizeof(uint32_t);
  N += MemSiteIdx.capacity() * sizeof(uint32_t);
  N += MemSiteIsStore.capacity();
  N += CondPrefix.capacity() * sizeof(uint32_t);
  N += CondSitePc.capacity() * sizeof(uint64_t);
  if (Prog) {
    N += Prog->Code.capacity() * sizeof(MachineInstr);
    for (const LinkedGlobal &G : Prog->Globals)
      N += G.Init.capacity();
  }
  return N;
}

std::shared_ptr<const ReplayImage>
ReplayImage::build(std::shared_ptr<const MachineProgram> Prog,
                   CapturedTrace Trace) {
  auto Image = std::make_shared<ReplayImage>();
  Image->Steps.resize(Prog->Code.size());
  for (size_t I = 0; I < Prog->Code.size(); ++I) {
    const MachineInstr &MI = Prog->Code[I];
    ReplayStep &S = Image->Steps[I];
    if (MI.isConditionalBranch()) {
      S.Kind = ReplayKind::CondBr;
      S.Target = static_cast<uint32_t>(MI.Target);
    } else if (MI.Op == MOp::J) {
      S.Kind = ReplayKind::Jump;
      S.Target = static_cast<uint32_t>(MI.Target);
    } else if (MI.Op == MOp::JAL) {
      S.Kind = ReplayKind::Call;
      S.Target = static_cast<uint32_t>(MI.Target);
    } else if (MI.Op == MOp::JR) {
      S.Kind = ReplayKind::Jr;
    } else if (MI.accessSize() > 0) {
      S.Kind = MI.isStore() ? ReplayKind::MemStore : ReplayKind::Mem;
    } else {
      S.Kind = ReplayKind::Plain;
    }
  }
  // Static side of the warming tape: per-code-index prefix sums plus the
  // site lists they slice. Within a straight-line segment execution order
  // is static order, so a segment's warming events are contiguous runs of
  // these arrays.
  const size_t N = Image->Steps.size();
  Image->MemSitePrefix.resize(N + 1);
  Image->CondPrefix.resize(N + 1);
  uint32_t MemCount = 0, CondCount = 0;
  for (size_t I = 0; I < N; ++I) {
    Image->MemSitePrefix[I] = MemCount;
    Image->CondPrefix[I] = CondCount;
    ReplayKind K = Image->Steps[I].Kind;
    if (K == ReplayKind::Mem || K == ReplayKind::MemStore) {
      Image->MemSiteIdx.push_back(static_cast<uint32_t>(I));
      Image->MemSiteIsStore.push_back(K == ReplayKind::MemStore ? 1 : 0);
      ++MemCount;
    } else if (K == ReplayKind::CondBr) {
      Image->CondSitePc.push_back(MachineProgram::codeAddress(I));
      ++CondCount;
    }
  }
  Image->MemSitePrefix[N] = MemCount;
  Image->CondPrefix[N] = CondCount;
  // Decode the zigzag-varint address stream once; every replay (one per
  // machine point) then indexes a flat array instead of re-decoding.
  Image->MemAddrs.reserve(Trace.NumMemOps);
  const uint8_t *P = Trace.MemDeltas.data();
  uint64_t Last = 0;
  for (uint64_t I = 0; I < Trace.NumMemOps; ++I) {
    uint64_t Z = 0;
    unsigned Shift = 0;
    uint8_t B;
    do {
      B = *P++;
      Z |= static_cast<uint64_t>(B & 0x7F) << Shift;
      Shift += 7;
    } while (B & 0x80);
    int64_t Delta = static_cast<int64_t>(Z >> 1) ^ -static_cast<int64_t>(Z & 1);
    Last = static_cast<uint64_t>(static_cast<int64_t>(Last) + Delta);
    Image->MemAddrs.push_back(Last);
  }
  // Dynamic side: one walk of the trace recording every taken control
  // transfer (retired index, successor). The warming fast path streams
  // straight-line segments between consecutive entries.
  {
    uint64_t Pc = 0, BrPos = 0;
    size_t JrP = 0;
    const uint64_t *Bits = Trace.BranchBits.data();
    for (uint64_t R = 0; R < Trace.NumRetired; ++R) {
      const ReplayStep &S = Image->Steps[Pc];
      uint64_t Next = Pc + 1;
      switch (S.Kind) {
      case ReplayKind::CondBr:
        if ((Bits[BrPos >> 6] >> (BrPos & 63)) & 1) {
          Next = S.Target;
          Image->CtrlRet.push_back(R);
          Image->CtrlNext.push_back(S.Target);
        }
        ++BrPos;
        break;
      case ReplayKind::Jump:
      case ReplayKind::Call:
        Next = S.Target;
        Image->CtrlRet.push_back(R);
        Image->CtrlNext.push_back(S.Target);
        break;
      case ReplayKind::Jr:
        Next = Trace.JrTargets[JrP++];
        Image->CtrlRet.push_back(R);
        Image->CtrlNext.push_back(static_cast<uint32_t>(Next));
        break;
      default:
        break;
      }
      Pc = Next;
    }
  }
  Image->Prog = std::move(Prog);
  Image->Trace = std::move(Trace);
  return Image;
}

TraceCache::TraceCache() {
  int64_t Mb = env().TraceCacheMB;
  BudgetBytes = static_cast<size_t>(Mb) * 1024 * 1024;
}

TraceCache &TraceCache::global() {
  static TraceCache *Cache = [] {
    auto *C = new TraceCache();
    // Process-lifetime /statusz section; intentionally leaked alongside
    // the cache itself (same pattern as telemetry/Introspection.cpp).
    new ScopedStatusProvider("trace_cache",
                             [C] { return C->statusSection(); });
    return C;
  }();
  return *Cache;
}

bool TraceCache::enabled() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return BudgetBytes > 0;
}

std::shared_ptr<const ReplayImage>
TraceCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (BudgetBytes == 0)
    return nullptr;
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Counters.Misses;
    telemetry::count("sim.trace_cache.misses");
    return nullptr;
  }
  Lru.splice(Lru.begin(), Lru, It->second.LruPos);
  ++Counters.Hits;
  telemetry::count("sim.trace_cache.hits");
  return It->second.Image;
}

bool TraceCache::insert(const std::string &Key,
                        std::shared_ptr<const ReplayImage> Image) {
  size_t Need = Image->bytes();
  std::lock_guard<std::mutex> Lock(Mutex);
  if (BudgetBytes == 0)
    return false;
  if (Map.count(Key))
    return true; // Concurrent capture of the same program; keep-first.
  if (Need > BudgetBytes) {
    ++Counters.Fallbacks;
    telemetry::count("sim.trace_cache.fallbacks");
    return false;
  }
  evictToFitLocked(Need);
  Lru.push_front(Key);
  Map.emplace(Key, Entry{std::move(Image), Lru.begin(), Need});
  CurrentBytes += Need;
  ++Counters.Inserts;
  if (telemetry::enabled()) {
    telemetry::count("sim.trace_cache.inserts");
    telemetry::gaugeSet("sim.trace_cache.bytes",
                        static_cast<double>(CurrentBytes));
    telemetry::gaugeSet("sim.trace_cache.entries",
                        static_cast<double>(Map.size()));
  }
  return true;
}

void TraceCache::evictToFitLocked(size_t NeedBytes) {
  while (CurrentBytes + NeedBytes > BudgetBytes && !Lru.empty()) {
    auto It = Map.find(Lru.back());
    CurrentBytes -= It->second.Bytes;
    Map.erase(It);
    Lru.pop_back();
    ++Counters.Evictions;
    telemetry::count("sim.trace_cache.evictions");
  }
}

void TraceCache::setBudgetBytes(size_t Bytes) {
  std::lock_guard<std::mutex> Lock(Mutex);
  BudgetBytes = Bytes;
  evictToFitLocked(0);
}

void TraceCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Map.clear();
  Lru.clear();
  CurrentBytes = 0;
}

TraceCache::Stats TraceCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S = Counters;
  S.Bytes = CurrentBytes;
  S.Entries = Map.size();
  S.BudgetBytes = BudgetBytes;
  return S;
}

std::string TraceCache::statusSection() const {
  Stats S = stats();
  return formatString("entries: %llu  bytes: %llu / %llu budget\n"
                      "hits: %llu  misses: %llu  inserts: %llu  "
                      "evictions: %llu  fallbacks: %llu\n",
                      (unsigned long long)S.Entries,
                      (unsigned long long)S.Bytes,
                      (unsigned long long)S.BudgetBytes,
                      (unsigned long long)S.Hits,
                      (unsigned long long)S.Misses,
                      (unsigned long long)S.Inserts,
                      (unsigned long long)S.Evictions,
                      (unsigned long long)S.Fallbacks);
}

} // namespace msem
