//===- uarch/EnergyModel.h - Event-based energy estimation --------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Wattch-style event-count energy model over the detailed simulator's
/// statistics. The paper notes (Section 2.2) that the empirical modeling
/// methodology applies to "other metrics such as power consumption or code
/// size"; this model supplies the power response. Dynamic energy is
/// per-event (instruction class, cache accesses scaled by structure size,
/// bus transfers, predictor lookups); static energy is leakage per cycle
/// proportional to the total SRAM capacity configured.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_ENERGYMODEL_H
#define MSEM_UARCH_ENERGYMODEL_H

#include "uarch/Simulator.h"

namespace msem {

/// Energy coefficients (picojoules per event; loosely Wattch-class 90nm
/// numbers -- the absolute scale is irrelevant to the empirical models,
/// the *structure* of the response is what matters).
struct EnergyParams {
  double IntOpPj = 8.0;
  double MulDivPj = 24.0;
  double FpOpPj = 30.0;
  double BranchPj = 6.0;
  /// Per-access base cost of a cache, plus a size-dependent term:
  /// access = Base + PerKb * (bytes / 1024)^0.5 (bitline/wordline growth).
  double CacheAccessBasePj = 10.0;
  double CacheAccessPerSqrtKbPj = 2.0;
  /// A miss adds the next level's access plus fill overhead.
  double MissOverheadPj = 20.0;
  double BusTransferPj = 120.0;
  double PredictorLookupPj = 2.5;
  /// Leakage per cycle per KB of SRAM (caches + predictor + RUU).
  double LeakagePerCyclePerKbPj = 0.02;
  /// Fixed core leakage per cycle, scaled by issue width.
  double CoreLeakagePerCyclePj = 4.0;
};

/// Total energy for one simulated run, in nanojoules.
double estimateEnergyNanojoules(const SimulationResult &Run,
                                const MachineConfig &Config,
                                const EnergyParams &Params = EnergyParams());

} // namespace msem

#endif // MSEM_UARCH_ENERGYMODEL_H
