//===- uarch/Simulator.h - Whole-program detailed simulation ------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience driver tying the functional executor to the detailed
/// out-of-order timing model: runs a linked program to completion in fully
/// detailed mode and reports cycles plus all pipeline/memory statistics.
/// (The SMARTS sampling path lives in src/sampling.)
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_SIMULATOR_H
#define MSEM_UARCH_SIMULATOR_H

#include "isa/Executor.h"
#include "uarch/OoOCore.h"

namespace msem {

/// Branch-predictor counters, kept as a struct alongside Pipeline/Memory
/// so all three stat groups export uniformly (telemetry names
/// "sim.branch.*").
struct BranchStats {
  uint64_t Lookups = 0;
  uint64_t Mispredicts = 0;

  double mispredictRate() const {
    return Lookups ? static_cast<double>(Mispredicts) /
                         static_cast<double>(Lookups)
                   : 0.0;
  }
};

/// Result of a detailed whole-program simulation.
struct SimulationResult {
  ExecResult Exec;          ///< Architectural outcome (return, output).
  uint64_t Cycles = 0;      ///< Total execution time.
  PipelineStats Pipeline;   ///< Core counters.
  MemoryStats Memory;       ///< Cache/bus counters.
  BranchStats Branch;       ///< Predictor counters.

  double cpi() const {
    return Pipeline.Instructions
               ? static_cast<double>(Cycles) /
                     static_cast<double>(Pipeline.Instructions)
               : 0.0;
  }
};

class TraceBuilder;
struct ReplayImage;

/// Runs \p Prog to completion with every instruction simulated in detail.
/// When \p Capture is set, the retired-instruction stream is additionally
/// recorded into it for later replay (uarch/TraceCache.h).
SimulationResult simulateDetailed(const MachineProgram &Prog,
                                  const MachineConfig &Config,
                                  uint64_t MaxInstructions = 4'000'000'000ull,
                                  TraceBuilder *Capture = nullptr);

/// Re-simulates a captured run under a (typically different) machine
/// configuration without functional execution: the recorded stream is
/// replayed through fresh timing models. Bitwise-identical to
/// simulateDetailed of the same program and config.
SimulationResult simulateDetailedReplay(const ReplayImage &Image,
                                        const MachineConfig &Config);

/// Adds one run's pipeline/memory/branch counters to the global telemetry
/// registry under "sim.*" names. No-op when telemetry is disabled; called
/// automatically by simulateDetailed.
void exportSimulationTelemetry(const SimulationResult &R);

} // namespace msem

#endif // MSEM_UARCH_SIMULATOR_H
