//===- uarch/Simulator.h - Whole-program detailed simulation ------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience driver tying the functional executor to the detailed
/// out-of-order timing model: runs a linked program to completion in fully
/// detailed mode and reports cycles plus all pipeline/memory statistics.
/// (The SMARTS sampling path lives in src/sampling.)
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_SIMULATOR_H
#define MSEM_UARCH_SIMULATOR_H

#include "isa/Executor.h"
#include "uarch/OoOCore.h"

namespace msem {

/// Result of a detailed whole-program simulation.
struct SimulationResult {
  ExecResult Exec;          ///< Architectural outcome (return, output).
  uint64_t Cycles = 0;      ///< Total execution time.
  PipelineStats Pipeline;   ///< Core counters.
  MemoryStats Memory;       ///< Cache/bus counters.
  uint64_t BranchLookups = 0;
  uint64_t BranchMispredicts = 0;

  double cpi() const {
    return Pipeline.Instructions
               ? static_cast<double>(Cycles) /
                     static_cast<double>(Pipeline.Instructions)
               : 0.0;
  }
};

/// Runs \p Prog to completion with every instruction simulated in detail.
SimulationResult simulateDetailed(const MachineProgram &Prog,
                                  const MachineConfig &Config,
                                  uint64_t MaxInstructions = 4'000'000'000ull);

} // namespace msem

#endif // MSEM_UARCH_SIMULATOR_H
