//===- uarch/TraceCache.h - Retired-trace capture & replay --------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The level-2 simulation fast path: capture the retired-instruction
/// stream of one functional run into a compact structure-of-arrays
/// encoding and replay it through the timing models for every subsequent
/// microarchitecture point of the same program.
///
/// The functional stream of a (workload, input, flag-vector) is a pure
/// function of the program: machine knobs change *timing*, never the
/// instructions retired. So the Executor's switch-dispatch interpretation
/// only needs to run once per program; afterwards a ReplaySource
/// regenerates the identical RetiredInstr sequence from the trace in a
/// handful of branches per instruction.
///
/// Encoding (everything not derivable from the static program):
///   - one taken/not-taken bit per conditional branch (bitset),
///   - one zigzag-varint address delta per memory access (loads, stores
///     and prefetches; deltas are small because address streams stride),
///   - one 8-byte target per indirect jump (JR -- returns; rare),
///   - the run's ExecResult (return value, emitted output, trap state).
/// Direct J/JAL targets, opcode classes and register fields all come from
/// the MachineProgram, which the ReplayImage keeps alive via shared_ptr.
/// Typical cost is 1-2 bits per retired instruction -- far under the
/// 12-byte budget -- so multi-million-instruction workloads cache in a
/// few hundred kilobytes.
///
/// Invariant (enforced by tests/trace_replay_test.cpp and the msem_lint
/// replay smoke): a replayed simulation is *bitwise identical* to the live
/// one -- cycles, every PipelineStats / MemoryStats / BranchStats field,
/// and every SMARTS CI field -- because the timing models consume an
/// identical RetiredInstr sequence. Anything that would break stream
/// equality (a trapping run truncated by a different instruction budget,
/// for example) must not be cached.
///
/// TraceCache is the process-global bounded store for replay images, keyed
/// by the caller's (workload, input, flag-vector) string. MSEM_TRACE_CACHE_MB
/// bounds its footprint (default 256 MB; 0 disables the path entirely);
/// when an image does not fit even after LRU eviction the caller falls
/// back to live execution. sim.trace_cache.* telemetry and a /statusz
/// section expose hits/misses/bytes/evictions/fallbacks.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_TRACECACHE_H
#define MSEM_UARCH_TRACECACHE_H

#include "isa/Executor.h"
#include "uarch/FunctionalWarming.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace msem {

/// The compact structure-of-arrays recording of one functional run.
struct CapturedTrace {
  uint64_t NumRetired = 0;      ///< Retired instructions in the stream.
  uint64_t NumMemOps = 0;       ///< Loads + stores + prefetches.
  uint64_t NumCondBranches = 0; ///< Conditional branches (bitset bits).
  std::vector<uint8_t> MemDeltas;    ///< Zigzag-varint address deltas.
  std::vector<uint64_t> BranchBits;  ///< Taken bits, 64 per word.
  std::vector<uint64_t> JrTargets;   ///< Indirect-jump targets, in order.
  ExecResult Exec;                   ///< Architectural outcome of the run.
  uint64_t MaxInstructions = 0;      ///< Budget the run was captured under.

  /// Approximate heap footprint of the trace payload.
  size_t bytes() const;
};

/// Streaming encoder fed every RetiredInstr of a live run (via
/// CapturingExecutor below) and finished with the run's outcome.
class TraceBuilder {
public:
  void append(const RetiredInstr &RI) {
    const MachineInstr &MI = *RI.MI;
    ++Trace.NumRetired;
    if (MI.accessSize() > 0) {
      appendMemDelta(RI.MemAddr);
      ++Trace.NumMemOps;
    }
    if (MI.isConditionalBranch()) {
      if ((Trace.NumCondBranches & 63) == 0)
        Trace.BranchBits.push_back(0);
      if (RI.BranchTaken)
        Trace.BranchBits.back() |= 1ull << (Trace.NumCondBranches & 63);
      ++Trace.NumCondBranches;
    } else if (MI.Op == MOp::JR) {
      Trace.JrTargets.push_back(RI.NextCodeIndex);
    }
  }

  /// Seals the trace with the run's architectural outcome and the
  /// instruction budget it ran under. The builder is spent afterwards.
  CapturedTrace finish(const ExecResult &Outcome, uint64_t MaxInstructions) {
    Trace.Exec = Outcome;
    Trace.MaxInstructions = MaxInstructions;
    return std::move(Trace);
  }

private:
  void appendMemDelta(uint64_t Addr) {
    int64_t Delta =
        static_cast<int64_t>(Addr) - static_cast<int64_t>(LastMemAddr);
    LastMemAddr = Addr;
    // Zigzag then varint: short strides cost one byte.
    uint64_t Z = (static_cast<uint64_t>(Delta) << 1) ^
                 static_cast<uint64_t>(Delta >> 63);
    while (Z >= 0x80) {
      Trace.MemDeltas.push_back(static_cast<uint8_t>(Z) | 0x80);
      Z >>= 7;
    }
    Trace.MemDeltas.push_back(static_cast<uint8_t>(Z));
  }

  CapturedTrace Trace;
  uint64_t LastMemAddr = 0;
};

/// Executor-shaped source that forwards a live run to both a TraceBuilder
/// and the caller's sink. Drop-in for Executor in the simulation drivers.
class CapturingExecutor {
public:
  CapturingExecutor(const MachineProgram &Prog, uint64_t MaxInstructions,
                    TraceBuilder &Builder)
      : Exec(Prog, MaxInstructions), Builder(Builder) {}

  bool halted() const { return Exec.halted(); }
  const ExecResult &result() const { return Exec.result(); }

  template <typename SinkT>
  uint64_t run(SinkT &&Sink, uint64_t Budget = UINT64_MAX) {
    return Exec.run(
        [&](const RetiredInstr &RI) {
          Builder.append(RI);
          Sink(RI);
        },
        Budget);
  }

private:
  Executor Exec;
  TraceBuilder &Builder;
};

/// Per-static-instruction replay action, pre-decoded once per image so the
/// replay loop never re-classifies opcodes. Loads and stores (and J and
/// JAL) are distinguished so the warming fast path below knows the touch
/// direction and the return-stack effect without reading the instruction.
enum class ReplayKind : uint8_t {
  Plain,    ///< No trace payload; falls through to the next instruction.
  Mem,      ///< Consumes one address delta; warms as a read (load, PREF).
  MemStore, ///< Consumes one address delta; warms as a write.
  CondBr,   ///< Consumes one branch bit; taken jumps to Target.
  Jump,     ///< Always-taken direct jump to Target (J).
  Call,     ///< Jump that also pushes a return address (JAL).
  Jr,       ///< Consumes one indirect target; pops the return stack.
};

struct ReplayStep {
  uint32_t Target = 0; ///< Static target of CondBr / Jump / Call.
  ReplayKind Kind = ReplayKind::Plain;
};

/// A cached, replayable run: the program (kept alive), its trace, and the
/// pre-decoded per-instruction steps.
struct ReplayImage {
  std::shared_ptr<const MachineProgram> Prog;
  CapturedTrace Trace;
  std::vector<ReplayStep> Steps; ///< One per static instruction.
  /// Trace.MemDeltas decoded once at build time: replay loops index this
  /// flat array instead of re-running the varint decoder per memory op
  /// per machine point. Charged against the cache budget like the rest.
  std::vector<uint64_t> MemAddrs;

  /// Warming tape, precomputed once at build time so the warming fast
  /// path (ReplaySource::run(WarmingSink&)) can stream whole straight-line
  /// segments per dispatch instead of re-walking the trace instruction by
  /// instruction. A "segment" is the linear code between two taken control
  /// transfers; within one, every warming event position is static.
  ///
  /// Dynamic side -- one entry per taken control transfer of the run:
  std::vector<uint64_t> CtrlRet;  ///< Retired index of the transfer instr.
  std::vector<uint32_t> CtrlNext; ///< Code index it transfers to.
  /// Static side -- per-code-index prefix sums and site lists (execution
  /// order within a linear segment is static order, so a segment's events
  /// are a contiguous slice of these):
  std::vector<uint32_t> MemSitePrefix; ///< Code.size()+1: mem sites below i.
  std::vector<uint32_t> MemSiteIdx;    ///< Code index per mem site.
  std::vector<uint8_t> MemSiteIsStore; ///< Touch direction per mem site.
  std::vector<uint32_t> CondPrefix;    ///< Code.size()+1: CondBr sites below i.
  std::vector<uint64_t> CondSitePc;    ///< Code address per CondBr site.

  /// Decodes \p Prog's static side of the replay (opcode classes and
  /// direct targets) and adopts \p Trace as the dynamic side.
  static std::shared_ptr<const ReplayImage>
  build(std::shared_ptr<const MachineProgram> Prog, CapturedTrace Trace);

  /// Approximate footprint charged against the cache budget (program,
  /// trace and step array).
  size_t bytes() const;
};

/// Executor-compatible source that regenerates the recorded RetiredInstr
/// stream. Mirrors Executor's run/halted/result interface and its budget
/// semantics, so the detailed and SMARTS drivers consume either
/// interchangeably; halting is "the stream is exhausted" and result() is
/// the captured run's outcome.
class ReplaySource {
public:
  explicit ReplaySource(const ReplayImage &Image) : Img(Image) {}

  bool halted() const { return Pos >= Img.Trace.NumRetired; }
  const ExecResult &result() const { return Img.Trace.Exec; }

  template <typename SinkT>
  uint64_t run(SinkT &&Sink, uint64_t Budget = UINT64_MAX) {
    const ReplayStep *Steps = Img.Steps.data();
    const MachineInstr *Code = Img.Prog->Code.data();
    const uint64_t *Addrs = Img.MemAddrs.data();
    const uint64_t *Bits = Img.Trace.BranchBits.data();
    const uint64_t *Jr = Img.Trace.JrTargets.data();
    const uint64_t End = Img.Trace.NumRetired;
    // Cursor state lives in locals for the whole loop (written back on
    // exit): keeping it in members costs a through-`this` store per
    // retired instruction.
    uint64_t LPos = Pos, LPc = Pc, LBranchPos = BranchPos;
    size_t LMemPos = MemPos, LJrPos = JrPos;
    uint64_t Retired = 0;
    while (LPos < End && Retired < Budget) {
      RetiredInstr RI;
      RI.CodeIndex = LPc;
      RI.MI = &Code[LPc];
      uint64_t Next = LPc + 1;
      const ReplayStep S = Steps[LPc];
      switch (S.Kind) {
      case ReplayKind::Plain:
        break;
      case ReplayKind::Mem:
      case ReplayKind::MemStore:
        RI.MemAddr = Addrs[LMemPos++];
        break;
      case ReplayKind::CondBr:
        if ((Bits[LBranchPos >> 6] >> (LBranchPos & 63)) & 1) {
          Next = S.Target;
          RI.BranchTaken = true;
        }
        ++LBranchPos;
        break;
      case ReplayKind::Jump:
      case ReplayKind::Call:
        Next = S.Target;
        RI.BranchTaken = true;
        break;
      case ReplayKind::Jr:
        Next = Jr[LJrPos++];
        RI.BranchTaken = true;
        break;
      }
      RI.NextCodeIndex = Next;
      ++LPos;
      ++Retired;
      Sink(static_cast<const RetiredInstr &>(RI));
      LPc = Next;
    }
    Pos = LPos;
    Pc = LPc;
    BranchPos = LBranchPos;
    MemPos = LMemPos;
    JrPos = LJrPos;
    return Retired;
  }

  /// Functional-warming fast path: performs the exact touch/update
  /// sequence WarmingSink would under the generic run() -- same lines,
  /// addresses and predictor events in the same order, sharing the sink's
  /// LastLine dedup state -- without materializing RetiredInstr or
  /// re-walking the trace instruction by instruction. It streams the
  /// image's precomputed warming tape one straight-line segment at a
  /// time; within a segment the icache-line crossings sit at static
  /// 16-instruction boundaries and are merged with the data touches in
  /// exact program order (the two L1s share the L2, so their interleaving
  /// is observable), while predictor updates -- an independent subsystem
  /// -- are batched per segment. This is where most of the fast-path
  /// speedup comes from: under SMARTS the vast majority of instructions
  /// pass through warming only.
  uint64_t run(WarmingSink &Warm, uint64_t Budget = UINT64_MAX) {
    const ReplayStep *Steps = Img.Steps.data();
    const uint64_t *Addrs = Img.MemAddrs.data();
    const uint64_t *Bits = Img.Trace.BranchBits.data();
    const uint64_t *CtrlRet = Img.CtrlRet.data();
    const uint32_t *CtrlNext = Img.CtrlNext.data();
    const size_t NumCtrl = Img.CtrlRet.size();
    const uint32_t *MemPre = Img.MemSitePrefix.data();
    const uint32_t *MemIdx = Img.MemSiteIdx.data();
    const uint8_t *MemSt = Img.MemSiteIsStore.data();
    const uint32_t *CondPre = Img.CondPrefix.data();
    const uint64_t *CondPc = Img.CondSitePc.data();
    const uint64_t End = Img.Trace.NumRetired;
    MemoryHierarchy &Memory = Warm.Memory;
    CombinedPredictor &Predictor = Warm.Predictor;
    // Instructions per icache line; code addresses are linear
    // (codeAddress = 4 * index), which is what makes crossings static.
    constexpr uint64_t IPL = MachineConfig::L1LineBytes / 4;
    // Cursor state in locals for the whole loop (see the generic run()).
    uint64_t LPos = Pos, LPc = Pc, LBranchPos = BranchPos;
    size_t LMemPos = MemPos, LJrPos = JrPos, LCtrl = CtrlPos;
    uint64_t LastLine = Warm.LastLine;
    const uint64_t Start = LPos;
    const uint64_t R1 = (Budget >= End - LPos) ? End : LPos + Budget;
    // Detailed windows advance the shared cursors through the generic
    // run() without consuming control events; resynchronize first.
    while (LCtrl < NumCtrl && CtrlRet[LCtrl] < LPos)
      ++LCtrl;
    while (LPos < R1) {
      // Segment: linear code from LPc to the next taken transfer or the
      // chunk boundary, whichever comes first. PcB is its last instr.
      const bool EndsAtCtrl = LCtrl < NumCtrl && CtrlRet[LCtrl] < R1;
      const uint64_t SegRetEnd = EndsAtCtrl ? CtrlRet[LCtrl] : R1 - 1;
      const uint64_t PcB = LPc + (SegRetEnd - LPos);
      uint64_t Line = LPc / IPL;
      if (Line != LastLine)
        Memory.touchInstr(MachineProgram::codeAddress(LPc));
      uint64_t NextCross = (Line + 1) * IPL;
      // Data touches, with the icache-line crossings merged in at their
      // exact static positions.
      for (uint32_t K = MemPre[LPc], KE = MemPre[PcB + 1]; K < KE; ++K) {
        while (NextCross <= MemIdx[K]) {
          Memory.touchInstr(MachineProgram::codeAddress(NextCross));
          NextCross += IPL;
        }
        Memory.touchData(Addrs[LMemPos++], MemSt[K] != 0);
      }
      while (NextCross <= PcB) {
        Memory.touchInstr(MachineProgram::codeAddress(NextCross));
        NextCross += IPL;
      }
      LastLine = PcB / IPL;
      // Conditional-direction updates: the predictor shares no state with
      // the caches, so the segment's batch runs after the touches.
      for (uint32_t K = CondPre[LPc], KE = CondPre[PcB + 1]; K < KE; ++K) {
        bool Taken = (Bits[LBranchPos >> 6] >> (LBranchPos & 63)) & 1;
        ++LBranchPos;
        Predictor.updateConditional(CondPc[K], Taken);
      }
      LPos = SegRetEnd + 1;
      if (EndsAtCtrl) {
        // Return-stack effect of the transfer that ended the segment.
        ReplayKind K = Steps[PcB].Kind;
        if (K == ReplayKind::Call)
          Predictor.pushReturn(MachineProgram::codeAddress(PcB + 1));
        else if (K == ReplayKind::Jr) {
          ++LJrPos;
          (void)Predictor.predictReturn(
              MachineProgram::codeAddress(CtrlNext[LCtrl]));
        }
        LPc = CtrlNext[LCtrl];
        ++LCtrl;
      } else {
        LPc = PcB + 1;
      }
    }
    Pos = LPos;
    Pc = LPc;
    BranchPos = LBranchPos;
    MemPos = LMemPos;
    JrPos = LJrPos;
    CtrlPos = LCtrl;
    Warm.LastLine = LastLine;
    return R1 - Start;
  }

private:
  const ReplayImage &Img;
  uint64_t Pc = 0;        ///< Current static code index.
  uint64_t Pos = 0;       ///< Retired instructions replayed so far.
  size_t MemPos = 0;      ///< Cursor into ReplayImage::MemAddrs.
  uint64_t BranchPos = 0; ///< Bit cursor into BranchBits.
  size_t JrPos = 0;       ///< Cursor into JrTargets.
  size_t CtrlPos = 0;     ///< Cursor into the CtrlRet/CtrlNext tape.
};

/// Process-global bounded LRU store of replay images. Thread-safe; all
/// entries are shared_ptr so an image stays valid while in use even if
/// evicted concurrently.
class TraceCache {
public:
  /// Cache statistics (also exported as sim.trace_cache.* telemetry and a
  /// /statusz section).
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Inserts = 0;
    uint64_t Evictions = 0;
    uint64_t Fallbacks = 0; ///< Inserts rejected: image exceeds the budget.
    size_t Bytes = 0;
    size_t Entries = 0;
    size_t BudgetBytes = 0;
  };

  /// The process-wide cache, budgeted from MSEM_TRACE_CACHE_MB on first
  /// use. Also registers the "trace_cache" /statusz section.
  static TraceCache &global();

  /// False when the budget is zero: lookups miss without counting and
  /// callers should neither capture nor insert, reproducing the uncached
  /// pipeline bit-for-bit.
  bool enabled() const;

  /// The image cached under \p Key, refreshing its LRU position, or null.
  std::shared_ptr<const ReplayImage> lookup(const std::string &Key);

  /// Caches \p Image under \p Key, evicting LRU images until it fits.
  /// Returns false (counting a fallback) when the image alone exceeds the
  /// budget; keeps the existing image on a duplicate key (concurrent
  /// capturers of the same program produce identical traces).
  bool insert(const std::string &Key, std::shared_ptr<const ReplayImage> Image);

  /// Replaces the byte budget (tests; production uses MSEM_TRACE_CACHE_MB),
  /// evicting down to the new bound. 0 disables the cache.
  void setBudgetBytes(size_t Bytes);

  /// Drops every entry (statistics are kept; they are process-cumulative).
  void clear();

  Stats stats() const;

private:
  TraceCache();

  void evictToFitLocked(size_t NeedBytes);
  std::string statusSection() const;

  struct Entry {
    std::shared_ptr<const ReplayImage> Image;
    std::list<std::string>::iterator LruPos;
    size_t Bytes = 0;
  };

  mutable std::mutex Mutex;
  std::unordered_map<std::string, Entry> Map;
  std::list<std::string> Lru; ///< Front = most recent.
  size_t BudgetBytes = 0;
  size_t CurrentBytes = 0;
  Stats Counters;
};

} // namespace msem

#endif // MSEM_UARCH_TRACECACHE_H
