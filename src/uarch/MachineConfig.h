//===- uarch/MachineConfig.h - Table 2 microarchitecture params --*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 11 microarchitectural parameters of the paper's Table 2, with the
/// same ranges, plus the three reference configurations of Table 5
/// (constrained / typical / aggressive) and the derived constants the
/// timing model needs (line sizes, functional-unit counts per issue width,
/// front-end penalties).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_MACHINECONFIG_H
#define MSEM_UARCH_MACHINECONFIG_H

#include "isa/MachineInstr.h"

#include <cstdint>
#include <string>

namespace msem {

/// One microarchitectural configuration (the paper's Table 2 parameters).
struct MachineConfig {
  unsigned IssueWidth = 4;           ///< #15: 2 or 4.
  unsigned BranchPredictorSize = 2048; ///< #16: 512..8192 entries (pow2).
  unsigned RuuSize = 64;             ///< #17: 16..128 entries (pow2).
  unsigned IcacheBytes = 32 * 1024;  ///< #18: 8KB..128KB (pow2).
  unsigned DcacheBytes = 32 * 1024;  ///< #19: 8KB..128KB (pow2).
  unsigned DcacheAssoc = 1;          ///< #20: 1 or 2.
  unsigned DcacheLatency = 2;        ///< #21: 1..3 cycles.
  unsigned L2Bytes = 1024 * 1024;    ///< #22: 256KB..8MB (pow2).
  unsigned L2Assoc = 4;              ///< #23: 1..8 (pow2).
  unsigned L2Latency = 10;           ///< #24: 6..16 cycles.
  unsigned MemoryLatency = 100;      ///< #25: 50..150 cycles.

  // Derived constants (fixed across the design space, as in the paper's
  // simulator setup).
  static constexpr unsigned L1LineBytes = 32;
  static constexpr unsigned L2LineBytes = 64;
  static constexpr unsigned IcacheAssoc = 2;
  static constexpr unsigned IcacheLatency = 1;
  static constexpr unsigned MispredictPenalty = 3;
  static constexpr unsigned StoreBufferEntries = 8;
  static constexpr unsigned MemoryBusOccupancy = 4; ///< Cycles per transfer.
  static constexpr unsigned ReturnStackEntries = 8;

  /// Load/store queue size scales with the RUU, as in SimpleScalar.
  unsigned lsqSize() const { return RuuSize / 2; }

  /// Functional-unit count for \p Class at this issue width (SimpleScalar
  /// style resource table, scaled by width).
  unsigned fuCount(FuClass Class) const {
    bool Wide = IssueWidth >= 4;
    switch (Class) {
    case FuClass::IntAlu:
      return IssueWidth;
    case FuClass::IntMult:
      return Wide ? 2 : 1;
    case FuClass::IntDiv:
      return 1;
    case FuClass::FpAdd:
      return Wide ? 2 : 1;
    case FuClass::FpMult:
      return 1;
    case FuClass::FpDiv:
      return 1;
    case FuClass::MemPort:
      return Wide ? 2 : 1;
    case FuClass::None:
      return 0;
    }
    return 0;
  }

  /// Execution latency for \p Class (cycles until the result is ready).
  /// Table-indexed: this sits on the timing core's per-instruction path.
  /// Order matches FuClass: None, IntAlu, IntMult, IntDiv, FpAdd, FpMult,
  /// FpDiv, MemPort (MemPort is address generation only; the cache access
  /// adds its own time).
  static unsigned fuLatency(FuClass Class) {
    constexpr unsigned Lat[8] = {1, 1, 3, 20, 2, 4, 12, 1};
    return Lat[static_cast<unsigned>(Class)];
  }

  /// True when the unit blocks for its full latency (unpipelined).
  static bool fuUnpipelined(FuClass Class) {
    return Class == FuClass::IntDiv || Class == FuClass::FpDiv;
  }

  /// Table 5: the "constrained" configuration.
  static MachineConfig constrained();
  /// Table 5: the "typical" configuration.
  static MachineConfig typical();
  /// Table 5: the "aggressive" configuration.
  static MachineConfig aggressive();

  std::string toString() const;

  bool operator==(const MachineConfig &Other) const = default;
};

} // namespace msem

#endif // MSEM_UARCH_MACHINECONFIG_H
