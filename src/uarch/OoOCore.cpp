//===- uarch/OoOCore.cpp - Out-of-order timing model ---------------------------===//

#include "uarch/OoOCore.h"

#include <algorithm>

using namespace msem;

OoOCore::OoOCore(const MachineConfig &Config, MemoryHierarchy &Memory,
                 CombinedPredictor &Predictor)
    : Config(Config), Memory(Memory), Predictor(Predictor) {
  for (unsigned C = 0; C < 8; ++C) {
    unsigned N = Config.fuCount(static_cast<FuClass>(C));
    Units[C].assign(std::max(1u, N), 0);
  }
  RuuCommitRing.assign(Config.RuuSize, 0);
  StoreBuffer.assign(MachineConfig::StoreBufferEntries, 0);
  StoreDataFifo.assign(Config.lsqSize(), ~0ull);
}

uint64_t OoOCore::fetch(const RetiredInstr &RI) {
  // New cycle if the current fetch group is full.
  if (FetchedThisCycle >= Config.IssueWidth) {
    ++FetchCycle;
    FetchedThisCycle = 0;
  }
  // Instruction cache: one access per new line.
  uint64_t Pc = MachineProgram::codeAddress(RI.CodeIndex);
  uint64_t Line = Pc / MachineConfig::L1LineBytes;
  if (Line != LastFetchLine) {
    LastFetchLine = Line;
    uint64_t Ready = Memory.accessInstr(Pc, FetchCycle);
    // A hit costs the (pipelined) L1 latency; a miss stalls fetch.
    if (Ready > FetchCycle + MachineConfig::IcacheLatency) {
      Stats.FetchIcacheStallCycles +=
          Ready - (FetchCycle + MachineConfig::IcacheLatency);
      FetchCycle = Ready;
      FetchedThisCycle = 0;
    }
  }
  ++FetchedThisCycle;
  return FetchCycle;
}

void OoOCore::handleBranch(const RetiredInstr &RI, uint64_t ResolveCycle) {
  const MachineInstr &MI = *RI.MI;
  ++Stats.Branches;
  if (RI.BranchTaken)
    ++Stats.TakenBranches;

  bool Mispredicted = false;
  if (MI.isConditionalBranch()) {
    Predictor.noteLookup();
    uint64_t Pc = MachineProgram::codeAddress(RI.CodeIndex);
    bool Predicted = Predictor.predictConditional(Pc);
    Predictor.updateConditional(Pc, RI.BranchTaken);
    Mispredicted = Predicted != RI.BranchTaken;
  } else if (MI.Op == MOp::JR) {
    Predictor.noteLookup();
    Mispredicted = !Predictor.predictReturn(
        MachineProgram::codeAddress(RI.NextCodeIndex));
  } else if (MI.Op == MOp::JAL) {
    Predictor.pushReturn(MachineProgram::codeAddress(RI.CodeIndex + 1));
  }
  // Direct J/JAL are always predicted correctly (known targets).

  if (Mispredicted) {
    Predictor.noteMispredict();
    ++Stats.Mispredicts;
    // Fetch restarts after the branch resolves plus the redirect penalty.
    uint64_t Restart = ResolveCycle + MachineConfig::MispredictPenalty;
    if (Restart > FetchCycle) {
      Stats.FetchRedirectStallCycles += Restart - FetchCycle;
      FetchCycle = Restart;
      FetchedThisCycle = 0;
    }
    LastFetchLine = ~0ull;
  } else if (RI.BranchTaken) {
    // Correctly predicted taken branch still ends the fetch group.
    ++FetchCycle;
    FetchedThisCycle = 0;
    LastFetchLine = ~0ull;
  }
}

void OoOCore::consume(const RetiredInstr &RI) {
  const MachineInstr &MI = *RI.MI;
  ++Stats.Instructions;

  // ---- Fetch -------------------------------------------------------------
  uint64_t FetchDone = fetch(RI);

  // ---- Dispatch (in-order, width-limited, RUU-limited) -------------------
  uint64_t Dispatch = FetchDone + 1; // Decode/rename stage.
  if (Dispatch < DispatchCycle)
    Dispatch = DispatchCycle;
  if (Dispatch > DispatchCycle) {
    DispatchCycle = Dispatch;
    DispatchedThisCycle = 0;
  }
  if (DispatchedThisCycle >= Config.IssueWidth) {
    ++DispatchCycle;
    DispatchedThisCycle = 0;
    Dispatch = DispatchCycle;
  }
  ++DispatchedThisCycle;
  // RUU space: the entry of the instruction RuuSize older must have
  // committed.
  uint64_t OldestCommit = RuuCommitRing[RuuPos];
  if (Dispatch < OldestCommit) {
    Stats.DispatchRuuStallCycles += OldestCommit - Dispatch;
    Dispatch = OldestCommit;
  }

  // ---- Operand readiness --------------------------------------------------
  uint64_t Ready = Dispatch;
  int32_t Srcs[3];
  unsigned NS = MI.srcRegs(Srcs);
  for (unsigned S = 0; S < NS; ++S)
    Ready = std::max(Ready, RegReady[Srcs[S]]);
  Stats.IssueOperandStallCycles += Ready - Dispatch;

  // ---- Issue to a functional unit ----------------------------------------
  FuClass Class = MI.fuClass();
  uint64_t Issue = Ready;
  if (Class != FuClass::None) {
    auto &Pool = Units[static_cast<unsigned>(Class)];
    size_t Best = 0;
    for (size_t U = 1; U < Pool.size(); ++U)
      if (Pool[U] < Pool[Best])
        Best = U;
    Issue = std::max(Ready, Pool[Best]);
    Stats.IssueFuStallCycles += Issue - Ready;
    Pool[Best] = Issue + (MachineConfig::fuUnpipelined(Class)
                              ? MachineConfig::fuLatency(Class)
                              : 1);
  }

  // ---- Execute / memory ----------------------------------------------------
  uint64_t Complete;
  if (MI.isLoad()) {
    ++Stats.Loads;
    uint64_t AddrReady = Issue + 1; // Address generation.
    uint64_t Key = RI.MemAddr & ~7ull;
    auto Fwd = StoreData.find(Key);
    if (Fwd != StoreData.end()) {
      ++Stats.LoadForwards;
      Complete = std::max(AddrReady, Fwd->second) + 1;
    } else {
      Complete = Memory.accessData(RI.MemAddr, /*IsWrite=*/false,
                                   /*IsPrefetch=*/false, AddrReady);
    }
  } else if (MI.isStore()) {
    ++Stats.Stores;
    Complete = Issue + 1;
    // Record for store-to-load forwarding (bounded by LSQ size).
    uint64_t Key = RI.MemAddr & ~7ull;
    uint64_t Evict = StoreDataFifo[StoreDataPos];
    if (Evict != ~0ull)
      StoreData.erase(Evict);
    StoreDataFifo[StoreDataPos] = Key;
    StoreDataPos = (StoreDataPos + 1) % StoreDataFifo.size();
    StoreData[Key] = Complete;
  } else if (MI.isPrefetch()) {
    // The prefetch fills caches (consuming bandwidth) but nothing waits
    // for it.
    Memory.accessData(RI.MemAddr, /*IsWrite=*/false, /*IsPrefetch=*/true,
                      Issue + 1);
    Complete = Issue + 1;
  } else {
    Complete = Issue + MachineConfig::fuLatency(Class);
  }

  int32_t Rd = MI.destReg();
  if (Rd >= 0)
    RegReady[Rd] = Complete;

  // ---- Commit (in-order, width-limited) -----------------------------------
  uint64_t Commit = std::max(Complete, LastCommitCycle);
  if (Commit > CommitGroupCycle) {
    CommitGroupCycle = Commit;
    CommittedThisCycle = 0;
  }
  if (CommittedThisCycle >= Config.IssueWidth) {
    ++CommitGroupCycle;
    CommittedThisCycle = 0;
    Commit = CommitGroupCycle;
  }
  ++CommittedThisCycle;

  // Stores drain through the store buffer at commit.
  if (MI.isStore()) {
    size_t Best = 0;
    for (size_t E = 1; E < StoreBuffer.size(); ++E)
      if (StoreBuffer[E] < StoreBuffer[Best])
        Best = E;
    if (StoreBuffer[Best] > Commit) {
      ++Stats.StoreBufferStalls;
      Stats.CommitDrainStallCycles += StoreBuffer[Best] - Commit;
      Commit = StoreBuffer[Best];
    }
    uint64_t Done = Memory.accessData(RI.MemAddr, /*IsWrite=*/true,
                                      /*IsPrefetch=*/false, Commit);
    StoreBuffer[Best] = Done;
  }

  LastCommitCycle = Commit;
  RuuCommitRing[RuuPos] = Commit;
  RuuPos = (RuuPos + 1) % RuuCommitRing.size();

  // ---- Branch resolution ----------------------------------------------------
  if (MI.isBranch())
    handleBranch(RI, Complete);
}
