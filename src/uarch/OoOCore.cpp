//===- uarch/OoOCore.cpp - Out-of-order timing model ---------------------------===//

#include "uarch/OoOCore.h"

#include <algorithm>
#include <cassert>

using namespace msem;

OoOCore::OoOCore(const MachineConfig &Config, MemoryHierarchy &Memory,
                 CombinedPredictor &Predictor)
    : Config(Config), Memory(Memory), Predictor(Predictor),
      StoreFwd(Config.lsqSize()) {
  Width = Config.IssueWidth;
  for (unsigned C = 0; C < 8; ++C) {
    unsigned N = std::max(1u, Config.fuCount(static_cast<FuClass>(C)));
    for (unsigned U = 0; U < MaxFuPerClass; ++U)
      Units[C][U] = U < N ? 0 : ~0ull;
  }
  assert(Config.RuuSize <= MaxRuuSize && "RUU larger than the design space");
  RuuSize = Config.RuuSize;
}

uint64_t OoOCore::fetch(const RetiredInstr &RI) {
  // New cycle if the current fetch group is full (branchless: the
  // overflow fires once every IssueWidth instructions, which is exactly
  // the cadence branch predictors are worst at).
  unsigned FOver = FetchedThisCycle >= Width;
  FetchCycle += FOver;
  FetchedThisCycle = FOver ? 0 : FetchedThisCycle;
  // Instruction cache: one access per new line.
  uint64_t Pc = MachineProgram::codeAddress(RI.CodeIndex);
  uint64_t Line = Pc / MachineConfig::L1LineBytes;
  if (Line != LastFetchLine) {
    LastFetchLine = Line;
    uint64_t Ready = Memory.accessInstr(Pc, FetchCycle);
    // A hit costs the (pipelined) L1 latency; a miss stalls fetch.
    if (Ready > FetchCycle + MachineConfig::IcacheLatency) {
      Stats.FetchIcacheStallCycles +=
          Ready - (FetchCycle + MachineConfig::IcacheLatency);
      FetchCycle = Ready;
      FetchedThisCycle = 0;
    }
  }
  ++FetchedThisCycle;
  return FetchCycle;
}

void OoOCore::handleBranch(const RetiredInstr &RI, uint64_t ResolveCycle) {
  const MachineInstr &MI = *RI.MI;
  ++Stats.Branches;
  if (RI.BranchTaken)
    ++Stats.TakenBranches;

  bool Mispredicted = false;
  if (MI.isConditionalBranch()) {
    Predictor.noteLookup();
    uint64_t Pc = MachineProgram::codeAddress(RI.CodeIndex);
    bool Predicted = Predictor.predictConditional(Pc);
    Predictor.updateConditional(Pc, RI.BranchTaken);
    Mispredicted = Predicted != RI.BranchTaken;
  } else if (MI.Op == MOp::JR) {
    Predictor.noteLookup();
    Mispredicted = !Predictor.predictReturn(
        MachineProgram::codeAddress(RI.NextCodeIndex));
  } else if (MI.Op == MOp::JAL) {
    Predictor.pushReturn(MachineProgram::codeAddress(RI.CodeIndex + 1));
  }
  // Direct J/JAL are always predicted correctly (known targets).

  if (Mispredicted) {
    Predictor.noteMispredict();
    ++Stats.Mispredicts;
    // Fetch restarts after the branch resolves plus the redirect penalty.
    uint64_t Restart = ResolveCycle + MachineConfig::MispredictPenalty;
    if (Restart > FetchCycle) {
      Stats.FetchRedirectStallCycles += Restart - FetchCycle;
      FetchCycle = Restart;
      FetchedThisCycle = 0;
    }
    LastFetchLine = ~0ull;
  } else if (RI.BranchTaken) {
    // Correctly predicted taken branch still ends the fetch group.
    ++FetchCycle;
    FetchedThisCycle = 0;
    LastFetchLine = ~0ull;
  }
}

void OoOCore::consume(const RetiredInstr &RI) {
  const MachineInstr &MI = *RI.MI;
  ++Stats.Instructions;

  // ---- Fetch -------------------------------------------------------------
  uint64_t FetchDone = fetch(RI);

  // ---- Dispatch (in-order, width-limited, RUU-limited) -------------------
  // Branchless form: whether the group advances and whether the width
  // overflows depend on the instruction mix, so conditional moves beat
  // unpredictable branches here. The overflow can only fire when the
  // group did not advance (an advance resets the count to zero first).
  uint64_t Dispatch = std::max(FetchDone + 1, DispatchCycle);
  unsigned DCount = Dispatch > DispatchCycle ? 0 : DispatchedThisCycle;
  unsigned DOver = DCount >= Width;
  Dispatch += DOver;
  DispatchCycle = Dispatch;
  DispatchedThisCycle = (DOver ? 0 : DCount) + 1;
  // RUU space: the entry of the instruction RuuSize older must have
  // committed.
  uint64_t OldestCommit = RuuCommitRing[RuuPos];
  Stats.DispatchRuuStallCycles +=
      Dispatch < OldestCommit ? OldestCommit - Dispatch : 0;
  Dispatch = std::max(Dispatch, OldestCommit);

  // ---- Operand readiness --------------------------------------------------
  // Padded three-slot read: absent operands resolve to the scoreboard's
  // always-zero pad slot, so there is no data-dependent branch here.
  int32_t Srcs[3];
  MI.srcRegsPadded(Srcs);
  uint64_t Ready = std::max(Dispatch, RegReady[Srcs[0]]);
  Ready = std::max(Ready, RegReady[Srcs[1]]);
  Ready = std::max(Ready, RegReady[Srcs[2]]);
  Stats.IssueOperandStallCycles += Ready - Dispatch;

  // ---- Issue to a functional unit ----------------------------------------
  FuClass Class = MI.fuClass();
  uint64_t Issue = Ready;
  if (Class != FuClass::None) {
    uint64_t *Pool = Units[static_cast<unsigned>(Class)];
    size_t Best = 0;
    for (size_t U = 1; U < MaxFuPerClass; ++U)
      if (Pool[U] < Pool[Best])
        Best = U;
    Issue = std::max(Ready, Pool[Best]);
    Stats.IssueFuStallCycles += Issue - Ready;
    Pool[Best] = Issue + (MachineConfig::fuUnpipelined(Class)
                              ? MachineConfig::fuLatency(Class)
                              : 1);
  }

  // ---- Execute / memory ----------------------------------------------------
  uint64_t Complete;
  if (MI.isLoad()) {
    ++Stats.Loads;
    uint64_t AddrReady = Issue + 1; // Address generation.
    uint64_t Key = RI.MemAddr & ~7ull;
    if (const uint64_t *Fwd = StoreFwd.find(Key)) {
      ++Stats.LoadForwards;
      Complete = std::max(AddrReady, *Fwd) + 1;
    } else {
      Complete = Memory.accessData(RI.MemAddr, /*IsWrite=*/false,
                                   /*IsPrefetch=*/false, AddrReady);
    }
  } else if (MI.isStore()) {
    ++Stats.Stores;
    Complete = Issue + 1;
    // Record for store-to-load forwarding (bounded by LSQ size).
    StoreFwd.recordStore(RI.MemAddr & ~7ull, Complete);
  } else if (MI.isPrefetch()) {
    // The prefetch fills caches (consuming bandwidth) but nothing waits
    // for it.
    Memory.accessData(RI.MemAddr, /*IsWrite=*/false, /*IsPrefetch=*/true,
                      Issue + 1);
    Complete = Issue + 1;
  } else {
    Complete = Issue + MachineConfig::fuLatency(Class);
  }

  // Unconditional write-back: no-destination instructions dump into the
  // discard slot instead of branching around the store.
  int32_t Rd = MI.destReg();
  RegReady[Rd >= 0 ? Rd : static_cast<int32_t>(DiscardReg)] = Complete;

  // ---- Commit (in-order, width-limited) -----------------------------------
  // Same branchless shape as dispatch. Note the non-overflow case keeps
  // Commit possibly below the group cycle (the group tracks the latest
  // commit seen; earlier-completing instructions still commit at their
  // own cycle).
  uint64_t Commit = std::max(Complete, LastCommitCycle);
  unsigned CCount = Commit > CommitGroupCycle ? 0 : CommittedThisCycle;
  uint64_t CGroup = std::max(Commit, CommitGroupCycle);
  unsigned COver = CCount >= Width;
  CGroup += COver;
  Commit = COver ? CGroup : Commit;
  CommitGroupCycle = CGroup;
  CommittedThisCycle = (COver ? 0 : CCount) + 1;

  // Stores drain through the store buffer at commit.
  if (MI.isStore()) {
    size_t Best = 0;
    for (size_t E = 1; E < MachineConfig::StoreBufferEntries; ++E)
      if (StoreBuffer[E] < StoreBuffer[Best])
        Best = E;
    if (StoreBuffer[Best] > Commit) {
      ++Stats.StoreBufferStalls;
      Stats.CommitDrainStallCycles += StoreBuffer[Best] - Commit;
      Commit = StoreBuffer[Best];
    }
    uint64_t Done = Memory.accessData(RI.MemAddr, /*IsWrite=*/true,
                                      /*IsPrefetch=*/false, Commit);
    StoreBuffer[Best] = Done;
  }

  LastCommitCycle = Commit;
  RuuCommitRing[RuuPos] = Commit;
  // Increment-wrap instead of modulo: avoids an integer division per
  // instruction and stays correct for non-power-of-two RUU sizes.
  ++RuuPos;
  RuuPos = RuuPos == RuuSize ? 0 : RuuPos;

  // ---- Branch resolution ----------------------------------------------------
  if (MI.isBranch())
    handleBranch(RI, Complete);
}
