//===- uarch/StoreForwardTable.h - Flat store-forwarding table ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-flight store-to-load forwarding table of the OoO core: 8-byte-
/// aligned address -> data-ready cycle, bounded by the LSQ size with FIFO
/// aging. One flat open-addressing hash table (linear probing, backward-
/// shift deletion) sized to twice the LSQ, replacing the former
/// std::unordered_map + eviction-ring pair on the hottest simulator path:
/// every load probes it and every store inserts into it, so the node
/// allocations and pointer chases of a chained map were pure overhead.
///
/// Semantics are *bitwise identical* to the map it replaced, including the
/// duplicate-key aging quirk: the ring may hold the same key in several
/// slots, and the key's entry dies when the *oldest* such slot ages out,
/// even if the key was re-inserted since. The trace-replay identity suite
/// (tests/trace_replay_test.cpp) pins this equivalence against a reference
/// model.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_STOREFORWARDTABLE_H
#define MSEM_UARCH_STOREFORWARDTABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msem {

/// Fixed-capacity open-addressing map from store address (8-byte aligned,
/// so ~0 is an impossible key and serves as the empty sentinel) to the
/// cycle the stored data is ready for forwarding.
class StoreForwardTable {
public:
  /// Sizes the table for \p LsqEntries in-flight stores: the probe array
  /// has the next power of two >= 2 * LsqEntries slots, so the load factor
  /// never exceeds 1/2 and probe chains stay short.
  explicit StoreForwardTable(unsigned LsqEntries) {
    size_t Cap = 1;
    while (Cap < 2 * static_cast<size_t>(LsqEntries))
      Cap <<= 1;
    Mask = Cap - 1;
    Keys.assign(Cap, Empty);
    Vals.assign(Cap, 0);
    Ring.assign(LsqEntries, Empty);
  }

  /// Data-ready cycle of an in-flight store to \p Key, or nullptr.
  const uint64_t *find(uint64_t Key) const {
    size_t I = slotOf(Key);
    while (Keys[I] != Empty) {
      if (Keys[I] == Key)
        return &Vals[I];
      I = (I + 1) & Mask;
    }
    return nullptr;
  }

  /// Records a store to \p Key whose data is ready at \p ReadyCycle,
  /// aging out the store LsqEntries older first.
  void recordStore(uint64_t Key, uint64_t ReadyCycle) {
    uint64_t Aged = Ring[Pos];
    if (Aged != Empty)
      erase(Aged);
    Ring[Pos] = Key;
    Pos = (Pos + 1) % Ring.size();
    insertOrAssign(Key, ReadyCycle);
  }

private:
  static constexpr uint64_t Empty = ~0ull;

  size_t slotOf(uint64_t Key) const {
    // Fibonacci multiplicative mix; the high bits decide the slot.
    return static_cast<size_t>((Key * 0x9E3779B97F4A7C15ull) >> 32) & Mask;
  }

  void insertOrAssign(uint64_t Key, uint64_t Val) {
    size_t I = slotOf(Key);
    while (Keys[I] != Empty) {
      if (Keys[I] == Key) {
        Vals[I] = Val;
        return;
      }
      I = (I + 1) & Mask;
    }
    Keys[I] = Key;
    Vals[I] = Val;
  }

  /// Backward-shift deletion keeps probe chains tombstone-free: every
  /// element after the hole whose home slot lies at or before the hole is
  /// moved back into it. No-op when \p Key is absent (a ring slot whose
  /// key already aged out through an older duplicate).
  void erase(uint64_t Key) {
    size_t I = slotOf(Key);
    while (Keys[I] != Key) {
      if (Keys[I] == Empty)
        return;
      I = (I + 1) & Mask;
    }
    size_t J = I;
    for (;;) {
      J = (J + 1) & Mask;
      if (Keys[J] == Empty)
        break;
      size_t Home = slotOf(Keys[J]);
      if (((J - Home) & Mask) >= ((J - I) & Mask)) {
        Keys[I] = Keys[J];
        Vals[I] = Vals[J];
        I = J;
      }
    }
    Keys[I] = Empty;
  }

  std::vector<uint64_t> Keys;
  std::vector<uint64_t> Vals;
  std::vector<uint64_t> Ring; ///< FIFO of inserted keys (aging order).
  size_t Mask = 0;
  size_t Pos = 0;
};

} // namespace msem

#endif // MSEM_UARCH_STOREFORWARDTABLE_H
