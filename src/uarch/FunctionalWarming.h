//===- uarch/FunctionalWarming.h - SMARTS functional warming ------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional warming (Wunderlich et al., ISCA 2003): between detailed
/// SMARTS windows, architectural state advances (the executor does that)
/// while caches and branch predictors are kept warm and no timing is
/// computed. WarmingSink is the per-retired-instruction form consumed as
/// an Executor sink; ReplaySource (uarch/TraceCache.h) additionally has a
/// specialized fast path that performs the identical sequence of cache
/// touches and predictor updates straight from a captured trace's
/// pre-decoded steps, skipping the per-instruction sink dispatch.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_FUNCTIONALWARMING_H
#define MSEM_UARCH_FUNCTIONALWARMING_H

#include "isa/Executor.h"
#include "uarch/BranchPredictor.h"
#include "uarch/Cache.h"
#include "uarch/MachineConfig.h"

namespace msem {

/// Functional warming: architectural state advances (the executor does
/// that), caches and predictors are kept warm, no timing is computed.
///
/// The sink carries the icache-line dedup state (LastLine) across warming
/// chunks -- and deliberately NOT across the detailed windows in between,
/// which drive the timing model's own instruction fetches -- so one sink
/// object must serve a whole sampled run. ReplaySource::run(WarmingSink&)
/// reproduces this object's exact touch/update sequence from a trace and
/// shares its state, so warming may alternate between live and replayed
/// sources without divergence.
class WarmingSink {
public:
  WarmingSink(MemoryHierarchy &Memory, CombinedPredictor &Predictor)
      : Memory(Memory), Predictor(Predictor) {}

  void operator()(const RetiredInstr &RI) {
    const MachineInstr &MI = *RI.MI;
    uint64_t Pc = MachineProgram::codeAddress(RI.CodeIndex);
    uint64_t Line = Pc / MachineConfig::L1LineBytes;
    if (Line != LastLine) {
      LastLine = Line;
      Memory.touchInstr(Pc);
    }
    if (MI.isLoad())
      Memory.touchData(RI.MemAddr, /*IsWrite=*/false);
    else if (MI.isStore())
      Memory.touchData(RI.MemAddr, /*IsWrite=*/true);
    else if (MI.isPrefetch())
      Memory.touchData(RI.MemAddr, /*IsWrite=*/false);

    if (MI.isConditionalBranch())
      Predictor.updateConditional(Pc, RI.BranchTaken);
    else if (MI.Op == MOp::JAL)
      Predictor.pushReturn(MachineProgram::codeAddress(RI.CodeIndex + 1));
    else if (MI.Op == MOp::JR)
      (void)Predictor.predictReturn(
          MachineProgram::codeAddress(RI.NextCodeIndex));
  }

private:
  friend class ReplaySource; ///< The trace-driven warming fast path.

  MemoryHierarchy &Memory;
  CombinedPredictor &Predictor;
  uint64_t LastLine = ~0ull;
};

} // namespace msem

#endif // MSEM_UARCH_FUNCTIONALWARMING_H
