//===- uarch/BranchPredictor.cpp - Combined branch prediction -----------------===//

#include "uarch/BranchPredictor.h"

using namespace msem;

CombinedPredictor::CombinedPredictor(unsigned TableEntries,
                                     unsigned RasEntries)
    : Bimodal(TableEntries), TwoLevel(TableEntries), Meta(TableEntries),
      Ras(RasEntries, 0) {}

bool CombinedPredictor::predictConditional(uint64_t Pc) const {
  bool UseTwoLevel = Meta.taken(metaIndex(Pc));
  return UseTwoLevel ? TwoLevel.predict(Pc) : Bimodal.predict(Pc);
}

void CombinedPredictor::updateConditional(uint64_t Pc, bool Taken) {
  bool BimodalRight = Bimodal.predict(Pc) == Taken;
  bool TwoLevelRight = TwoLevel.predict(Pc) == Taken;
  // The meta table learns which component is more accurate per branch.
  if (BimodalRight != TwoLevelRight)
    Meta.update(metaIndex(Pc), TwoLevelRight);
  Bimodal.update(Pc, Taken);
  TwoLevel.update(Pc, Taken);
}

void CombinedPredictor::pushReturn(uint64_t ReturnPc) {
  RasTop = (RasTop + 1) % Ras.size();
  Ras[RasTop] = ReturnPc;
}

bool CombinedPredictor::predictReturn(uint64_t ActualTarget) {
  uint64_t Predicted = Ras[RasTop];
  RasTop = (RasTop + Ras.size() - 1) % Ras.size();
  return Predicted == ActualTarget;
}
