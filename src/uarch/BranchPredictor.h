//===- uarch/BranchPredictor.h - Combined branch prediction ------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's predictor: a combined predictor built from a bimodal table
/// and a 2-level (global history) predictor of equal sizes, selected by a
/// meta chooser, plus a return address stack for indirect returns. The
/// "branch predictor size" design parameter sets the table sizes.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_BRANCHPREDICTOR_H
#define MSEM_UARCH_BRANCHPREDICTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msem {

/// Saturating 2-bit counter helpers over a byte table.
class CounterTable {
public:
  explicit CounterTable(unsigned Entries, uint8_t InitValue = 1)
      : Table(Entries, InitValue) {}

  bool taken(unsigned Index) const { return Table[Index] >= 2; }
  void update(unsigned Index, bool Taken) {
    uint8_t &C = Table[Index];
    if (Taken && C < 3)
      ++C;
    else if (!Taken && C > 0)
      --C;
  }
  unsigned size() const { return Table.size(); }

private:
  std::vector<uint8_t> Table;
};

/// Bimodal (PC-indexed) direction predictor.
class BimodalPredictor {
public:
  explicit BimodalPredictor(unsigned Entries) : Counters(Entries) {}
  bool predict(uint64_t Pc) const { return Counters.taken(index(Pc)); }
  void update(uint64_t Pc, bool Taken) {
    Counters.update(index(Pc), Taken);
  }

private:
  unsigned index(uint64_t Pc) const {
    return static_cast<unsigned>((Pc >> 2) & (Counters.size() - 1));
  }
  CounterTable Counters;
};

/// 2-level predictor: global history XOR PC indexes a pattern table.
class TwoLevelPredictor {
public:
  explicit TwoLevelPredictor(unsigned Entries) : Counters(Entries) {}
  bool predict(uint64_t Pc) const { return Counters.taken(index(Pc)); }
  void update(uint64_t Pc, bool Taken) {
    Counters.update(index(Pc), Taken);
    History = (History << 1) | (Taken ? 1 : 0);
  }

private:
  unsigned index(uint64_t Pc) const {
    return static_cast<unsigned>(((Pc >> 2) ^ History) &
                                 (Counters.size() - 1));
  }
  CounterTable Counters;
  uint64_t History = 0;
};

/// The combined predictor with meta chooser and return-address stack.
class CombinedPredictor {
public:
  /// \p TableEntries is the paper's "branch predictor size" parameter: the
  /// size of each component table.
  CombinedPredictor(unsigned TableEntries, unsigned RasEntries);

  /// Predicts the direction of the conditional branch at \p Pc.
  bool predictConditional(uint64_t Pc) const;

  /// Updates all component tables with the outcome.
  void updateConditional(uint64_t Pc, bool Taken);

  /// Call at \p Pc returning to \p ReturnPc: pushes the RAS.
  void pushReturn(uint64_t ReturnPc);

  /// Return (JR): pops a predicted target; prediction is correct when it
  /// equals \p ActualTarget.
  bool predictReturn(uint64_t ActualTarget);

  uint64_t lookups() const { return Lookups; }
  uint64_t mispredicts() const { return Mispredicts; }
  void noteMispredict() { ++Mispredicts; }
  void noteLookup() { ++Lookups; }

private:
  unsigned metaIndex(uint64_t Pc) const {
    return static_cast<unsigned>((Pc >> 2) & (Meta.size() - 1));
  }

  BimodalPredictor Bimodal;
  TwoLevelPredictor TwoLevel;
  CounterTable Meta; ///< >=2 selects the 2-level component.
  std::vector<uint64_t> Ras;
  size_t RasTop = 0;
  uint64_t Lookups = 0;
  uint64_t Mispredicts = 0;
};

} // namespace msem

#endif // MSEM_UARCH_BRANCHPREDICTOR_H
