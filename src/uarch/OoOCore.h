//===- uarch/OoOCore.h - Out-of-order timing model ----------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace-driven, timestamp-based out-of-order core in the SimpleScalar RUU
/// tradition. Each committed instruction from the functional executor flows
/// through fetch -> dispatch -> issue -> execute -> commit with explicit
/// cycle timestamps:
///
///   - fetch: up to IssueWidth sequential instructions per cycle; the group
///     breaks at taken branches; instruction-cache misses stall fetch;
///     mispredicted branches restart fetch after resolution + penalty;
///   - dispatch: in-order, bounded by the RUU size (an instruction cannot
///     dispatch until the entry of the instruction RuuSize older commits);
///   - issue: when operands are ready and a functional unit of the class is
///     free (dividers are unpipelined);
///   - memory: loads access the hierarchy (with store-to-load forwarding
///     from in-flight stores); stores drain through a finite store buffer
///     at commit; prefetches consume a memory port and bus bandwidth;
///   - commit: in-order, up to IssueWidth per cycle.
///
/// Wrong-path fetch is not simulated; its cost is folded into the fixed
/// mispredict penalty (documented in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_UARCH_OOOCORE_H
#define MSEM_UARCH_OOOCORE_H

#include "isa/Executor.h"
#include "uarch/BranchPredictor.h"
#include "uarch/Cache.h"
#include "uarch/MachineConfig.h"
#include "uarch/StoreForwardTable.h"

namespace msem {

/// Counters accumulated by the detailed core.
struct PipelineStats {
  uint64_t Instructions = 0;
  uint64_t Branches = 0;
  uint64_t TakenBranches = 0;
  uint64_t Mispredicts = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t LoadForwards = 0;
  uint64_t StoreBufferStalls = 0;

  // Stall attribution: cycles an instruction waited in each stage beyond
  // the structural minimum. Per-instruction sums, so overlapping waits of
  // independent instructions are counted once each (they measure queueing
  // pressure, not a cycle-exact breakdown of execution time).
  uint64_t FetchIcacheStallCycles = 0;   ///< Fetch frozen on an I-miss.
  uint64_t FetchRedirectStallCycles = 0; ///< Fetch frozen on a mispredict.
  uint64_t DispatchRuuStallCycles = 0;   ///< Waiting for RUU space.
  uint64_t IssueOperandStallCycles = 0;  ///< Waiting for source operands.
  uint64_t IssueFuStallCycles = 0;       ///< Waiting for a functional unit.
  uint64_t CommitDrainStallCycles = 0;   ///< Waiting for store-buffer drain.
};

/// The detailed timing model. Consume the retired-instruction stream and
/// read cycles() at the end (or around SMARTS windows).
class OoOCore {
public:
  OoOCore(const MachineConfig &Config, MemoryHierarchy &Memory,
          CombinedPredictor &Predictor);

  /// Advances the model by one committed instruction.
  void consume(const RetiredInstr &RI);

  /// Cycle of the most recent commit: the program's execution time so far.
  uint64_t cycles() const { return LastCommitCycle; }

  const PipelineStats &stats() const { return Stats; }

private:
  uint64_t fetch(const RetiredInstr &RI);
  void handleBranch(const RetiredInstr &RI, uint64_t ResolveCycle);

  const MachineConfig &Config;
  MemoryHierarchy &Memory;
  CombinedPredictor &Predictor;
  PipelineStats Stats;

  /// Config.IssueWidth, cached by value: the width is read several times
  /// per instruction and the indirection through the config reference
  /// would be reloaded after every opaque call on the hot path.
  unsigned Width = 0;

  // Fetch state.
  uint64_t FetchCycle = 0;
  unsigned FetchedThisCycle = 0;
  uint64_t LastFetchLine = ~0ull;

  // Dispatch state.
  uint64_t DispatchCycle = 0;
  unsigned DispatchedThisCycle = 0;

  // Register availability (unified numbering, 64 registers). Slot 64 is
  // the reg::ScoreboardPad target of srcRegsPadded(); it is never written,
  // so its permanent zero makes the unconditional three-slot readiness
  // read a no-op for absent operands. Slot 65 is the mirror for writes:
  // instructions without a destination dump their completion time there,
  // making the result write-back unconditional as well.
  static constexpr unsigned DiscardReg = 65;
  uint64_t RegReady[66] = {};

  // Functional units: next-free cycle per unit, per class. Rows are fixed
  // width (the largest pool is IntAlu with IssueWidth <= 4 units); slots
  // beyond the configured count hold ~0ull so the constant-trip min-scan
  // can never pick them. Fixed rows keep the scan branch-free and avoid a
  // per-instruction vector indirection.
  static constexpr unsigned MaxFuPerClass = 4;
  uint64_t Units[8][MaxFuPerClass];

  // RUU occupancy: ring of the commit cycles of the last RuuSize instrs.
  // Flat maximum-size storage (RuuSize <= 128 across the design space);
  // only the first RuuSize slots are ever touched.
  static constexpr unsigned MaxRuuSize = 128;
  uint64_t RuuCommitRing[MaxRuuSize] = {};
  unsigned RuuSize = 0;
  unsigned RuuPos = 0;

  // Commit state.
  uint64_t LastCommitCycle = 0;
  uint64_t CommitGroupCycle = 0;
  unsigned CommittedThisCycle = 0;

  // Store buffer: next-free cycle per entry (statically sized: the entry
  // count is a design-space constant).
  uint64_t StoreBuffer[MachineConfig::StoreBufferEntries] = {};

  // In-flight store forwarding: 8-byte-aligned address -> data-ready cycle.
  // Bounded by the LSQ size with FIFO eviction; flat open-addressing table
  // on the hottest load/store path.
  StoreForwardTable StoreFwd;
};

} // namespace msem

#endif // MSEM_UARCH_OOOCORE_H
