//===- uarch/EnergyModel.cpp - Event-based energy estimation --------------------===//

#include "uarch/EnergyModel.h"

#include <cmath>

using namespace msem;

namespace {

double cacheAccessPj(const EnergyParams &P, uint64_t Bytes) {
  return P.CacheAccessBasePj +
         P.CacheAccessPerSqrtKbPj *
             std::sqrt(static_cast<double>(Bytes) / 1024.0);
}

} // namespace

double msem::estimateEnergyNanojoules(const SimulationResult &Run,
                                      const MachineConfig &Config,
                                      const EnergyParams &P) {
  const PipelineStats &S = Run.Pipeline;
  const MemoryStats &M = Run.Memory;

  double Pj = 0.0;

  // Instruction execution (approximate class split: memory and branch
  // counts are exact; the remainder is treated as integer ALU except for
  // a fixed FP share we cannot recover from aggregate counters -- loads,
  // stores and branches dominate the energy-relevant differences anyway).
  uint64_t MemOps = S.Loads + S.Stores;
  uint64_t Others = S.Instructions - std::min(S.Instructions,
                                              MemOps + S.Branches);
  Pj += static_cast<double>(Others) * P.IntOpPj;
  Pj += static_cast<double>(S.Branches) *
        (P.BranchPj + P.PredictorLookupPj);

  // Cache hierarchy.
  double Il1Access = cacheAccessPj(P, Config.IcacheBytes);
  double Dl1Access = cacheAccessPj(P, Config.DcacheBytes);
  double L2Access = cacheAccessPj(P, Config.L2Bytes);
  Pj += static_cast<double>(M.IcacheAccesses) * Il1Access;
  Pj += static_cast<double>(M.DcacheAccesses) * Dl1Access;
  uint64_t L2Accesses = M.IcacheMisses + M.DcacheMisses + M.Writebacks;
  Pj += static_cast<double>(L2Accesses) * (L2Access + P.MissOverheadPj);
  Pj += static_cast<double>(M.L2Misses) * P.BusTransferPj;

  // Leakage: per-cycle, proportional to configured SRAM capacity.
  double SramKb =
      (static_cast<double>(Config.IcacheBytes) +
       static_cast<double>(Config.DcacheBytes) +
       static_cast<double>(Config.L2Bytes)) /
          1024.0 +
      static_cast<double>(Config.BranchPredictorSize) * 3.0 * 2.0 /
          8.0 / 1024.0 + // Three 2-bit tables.
      static_cast<double>(Config.RuuSize) * 32.0 / 1024.0;
  Pj += static_cast<double>(Run.Cycles) *
        (P.CoreLeakagePerCyclePj * Config.IssueWidth / 2.0 +
         P.LeakagePerCyclePerKbPj * SramKb);

  return Pj / 1000.0; // pJ -> nJ.
}
