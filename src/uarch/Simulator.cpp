//===- uarch/Simulator.cpp - Whole-program detailed simulation -----------------===//

#include "uarch/Simulator.h"

using namespace msem;

SimulationResult msem::simulateDetailed(const MachineProgram &Prog,
                                        const MachineConfig &Config,
                                        uint64_t MaxInstructions) {
  MemoryHierarchy Memory(Config);
  CombinedPredictor Predictor(Config.BranchPredictorSize,
                              MachineConfig::ReturnStackEntries);
  OoOCore Core(Config, Memory, Predictor);

  Executor Exec(Prog, MaxInstructions);
  Exec.run([&Core](const RetiredInstr &RI) { Core.consume(RI); });

  SimulationResult R;
  R.Exec = Exec.result();
  R.Cycles = Core.cycles();
  R.Pipeline = Core.stats();
  R.Memory = Memory.stats();
  R.BranchLookups = Predictor.lookups();
  R.BranchMispredicts = Predictor.mispredicts();
  return R;
}
