//===- uarch/Simulator.cpp - Whole-program detailed simulation -----------------===//

#include "uarch/Simulator.h"

#include "telemetry/Telemetry.h"
#include "uarch/TraceCache.h"

using namespace msem;

namespace {

/// The one detailed-simulation driver, shared by live execution, capture
/// and replay: \p Exec is anything with Executor's run/result interface.
/// Span names are identical across the three modes so the canonical span
/// tree does not depend on cache state.
template <typename SourceT>
SimulationResult simulateDetailedOn(SourceT &Exec,
                                    const MachineConfig &Config) {
  telemetry::ScopedTimer Span("sim.detailed");

  MemoryHierarchy Memory(Config);
  CombinedPredictor Predictor(Config.BranchPredictorSize,
                              MachineConfig::ReturnStackEntries);
  OoOCore Core(Config, Memory, Predictor);

  Exec.run([&Core](const RetiredInstr &RI) { Core.consume(RI); });

  SimulationResult R;
  R.Exec = Exec.result();
  R.Cycles = Core.cycles();
  R.Pipeline = Core.stats();
  R.Memory = Memory.stats();
  R.Branch.Lookups = Predictor.lookups();
  R.Branch.Mispredicts = Predictor.mispredicts();

  exportSimulationTelemetry(R);
  if (uint64_t Ns = Span.elapsedNs(); Ns > 0 && R.Pipeline.Instructions)
    telemetry::gauge("sim.detailed.minstr_per_sec")
        .set(static_cast<double>(R.Pipeline.Instructions) * 1e3 /
             static_cast<double>(Ns));
  return R;
}

} // namespace

/// Exports one simulation's counters into the global telemetry registry.
/// Counters accumulate across runs, giving campaign-wide totals.
void msem::exportSimulationTelemetry(const SimulationResult &R) {
  namespace tl = telemetry;
  if (!tl::enabled())
    return;
  tl::counter("sim.runs").add(1);
  tl::counter("sim.instructions").add(R.Pipeline.Instructions);
  tl::counter("sim.cycles").add(R.Cycles);
  if (R.Cycles)
    tl::gauge("sim.ipc").set(static_cast<double>(R.Pipeline.Instructions) /
                             static_cast<double>(R.Cycles));

  tl::counter("sim.branch.lookups").add(R.Branch.Lookups);
  tl::counter("sim.branch.mispredicts").add(R.Branch.Mispredicts);
  tl::counter("sim.pipeline.branches").add(R.Pipeline.Branches);
  tl::counter("sim.pipeline.loads").add(R.Pipeline.Loads);
  tl::counter("sim.pipeline.stores").add(R.Pipeline.Stores);
  tl::counter("sim.pipeline.load_forwards").add(R.Pipeline.LoadForwards);

  tl::counter("sim.mem.icache.accesses").add(R.Memory.IcacheAccesses);
  tl::counter("sim.mem.icache.misses").add(R.Memory.IcacheMisses);
  tl::counter("sim.mem.dcache.accesses").add(R.Memory.DcacheAccesses);
  tl::counter("sim.mem.dcache.misses").add(R.Memory.DcacheMisses);
  tl::counter("sim.mem.l2.misses").add(R.Memory.L2Misses);
  tl::counter("sim.mem.writebacks").add(R.Memory.Writebacks);
  tl::counter("sim.mem.prefetches").add(R.Memory.Prefetches);

  tl::counter("sim.stall.fetch_icache").add(R.Pipeline.FetchIcacheStallCycles);
  tl::counter("sim.stall.fetch_redirect")
      .add(R.Pipeline.FetchRedirectStallCycles);
  tl::counter("sim.stall.dispatch_ruu").add(R.Pipeline.DispatchRuuStallCycles);
  tl::counter("sim.stall.issue_operand")
      .add(R.Pipeline.IssueOperandStallCycles);
  tl::counter("sim.stall.issue_fu").add(R.Pipeline.IssueFuStallCycles);
  tl::counter("sim.stall.commit_drain")
      .add(R.Pipeline.CommitDrainStallCycles);
}

SimulationResult msem::simulateDetailed(const MachineProgram &Prog,
                                        const MachineConfig &Config,
                                        uint64_t MaxInstructions,
                                        TraceBuilder *Capture) {
  if (Capture) {
    CapturingExecutor Exec(Prog, MaxInstructions, *Capture);
    return simulateDetailedOn(Exec, Config);
  }
  Executor Exec(Prog, MaxInstructions);
  return simulateDetailedOn(Exec, Config);
}

SimulationResult msem::simulateDetailedReplay(const ReplayImage &Image,
                                              const MachineConfig &Config) {
  ReplaySource Exec(Image);
  return simulateDetailedOn(Exec, Config);
}
