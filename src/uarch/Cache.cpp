//===- uarch/Cache.cpp - Set-associative caches and the hierarchy -------------===//

#include "uarch/Cache.h"

#include <algorithm>
#include <cassert>

using namespace msem;

static bool isPowerOfTwo(uint64_t X) { return X && !(X & (X - 1)); }

static unsigned log2u(uint64_t X) {
  unsigned L = 0;
  while (X > 1) {
    X >>= 1;
    ++L;
  }
  return L;
}

Cache::Cache(uint64_t SizeBytes, unsigned Assoc, unsigned LineBytes)
    : Assoc(Assoc), LineBytes(LineBytes) {
  assert(isPowerOfTwo(LineBytes) && "line size must be a power of two");
  uint64_t NumLines = SizeBytes / LineBytes;
  assert(NumLines % Assoc == 0 && "size/assoc mismatch");
  NumSets = static_cast<unsigned>(NumLines / Assoc);
  assert(isPowerOfTwo(NumSets) && "set count must be a power of two");
  SetShift = log2u(LineBytes);
  TagShift = log2u(NumSets);
  size_t Ways = static_cast<size_t>(NumSets) * Assoc;
  Tags.assign(Ways, ~0ull);
  Stamps.assign(Ways, 0);
  Flags.assign(Ways, 0);
}

bool Cache::probe(uint64_t Addr) const {
  uint64_t LineAddr = Addr >> SetShift;
  unsigned Set = static_cast<unsigned>(LineAddr & (NumSets - 1));
  uint64_t Tag = LineAddr >> TagShift;
  size_t Base = static_cast<size_t>(Set) * Assoc;
  for (unsigned W = 0; W < Assoc; ++W)
    if (Tags[Base + W] == Tag && (Flags[Base + W] & FlagValid))
      return true;
  return false;
}

void Cache::reset() {
  std::fill(Tags.begin(), Tags.end(), ~0ull);
  std::fill(Stamps.begin(), Stamps.end(), 0);
  std::fill(Flags.begin(), Flags.end(), 0);
  Clock = Hits = Misses = 0;
}

//===----------------------------------------------------------------------===//
// MemoryHierarchy
//===----------------------------------------------------------------------===//

MemoryHierarchy::MemoryHierarchy(const MachineConfig &Config)
    : Config(Config),
      Icache(Config.IcacheBytes, MachineConfig::IcacheAssoc,
             MachineConfig::L1LineBytes),
      Dcache(Config.DcacheBytes, Config.DcacheAssoc,
             MachineConfig::L1LineBytes),
      L2(Config.L2Bytes, Config.L2Assoc, MachineConfig::L2LineBytes) {}

uint64_t MemoryHierarchy::accessL2(uint64_t Addr, bool IsWrite,
                                   uint64_t Cycle) {
  bool DirtyEvict = false;
  if (L2.access(Addr, IsWrite, &DirtyEvict)) {
    if (DirtyEvict)
      ++Stats.Writebacks;
    return Cycle + Config.L2Latency;
  }
  ++Stats.L2Misses;
  if (DirtyEvict) {
    // Dirty L2 eviction occupies the bus for one transfer.
    ++Stats.Writebacks;
    MemBusFree = std::max(MemBusFree, Cycle) +
                 MachineConfig::MemoryBusOccupancy;
  }
  uint64_t Start = std::max(Cycle + Config.L2Latency, MemBusFree);
  MemBusFree = Start + MachineConfig::MemoryBusOccupancy;
  return Start + Config.MemoryLatency;
}

uint64_t MemoryHierarchy::accessInstr(uint64_t Pc, uint64_t Cycle) {
  ++Stats.IcacheAccesses;
  if (Icache.access(Pc, /*IsWrite=*/false))
    return Cycle + MachineConfig::IcacheLatency;
  ++Stats.IcacheMisses;
  return accessL2(Pc | (1ull << 60), /*IsWrite=*/false,
                  Cycle + MachineConfig::IcacheLatency);
}

uint64_t MemoryHierarchy::accessData(uint64_t Addr, bool IsWrite,
                                     bool IsPrefetch, uint64_t Cycle) {
  ++Stats.DcacheAccesses;
  if (IsPrefetch)
    ++Stats.Prefetches;
  bool DirtyEvict = false;
  if (Dcache.access(Addr, IsWrite, &DirtyEvict)) {
    return Cycle + Config.DcacheLatency;
  }
  ++Stats.DcacheMisses;
  if (DirtyEvict)
    // Writeback to L2: bandwidth effect folded into an L2 access.
    ++Stats.Writebacks;
  return accessL2(Addr, IsWrite, Cycle + Config.DcacheLatency);
}

