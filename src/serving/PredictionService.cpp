//===- serving/PredictionService.cpp - Shared prediction facade ------------===//

#include "serving/PredictionService.h"

#include "serving/SloTracker.h"
#include "support/BuildInfo.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <chrono>

using namespace msem;
using namespace msem::serving;

namespace {

/// Turns one raw request row into the full design point the artifact's
/// model expects: full-width rows pass through, compiler-only rows are
/// padded, and frozen-machine artifacts pin the Table-2 coordinates.
/// (Moved verbatim from tools/msem_predict.cpp; the contract is part of
/// the request format.)
bool requestToPoint(const DesignPoint &Row, const ModelArtifact &A,
                    DesignPoint &Out, std::string &Error) {
  const ParameterSpace &Space = A.Info.Space;
  if (Row.size() == Space.size()) {
    Out = Row;
  } else if (Row.size() == Space.numCompilerParams() &&
             Row.size() < Space.size()) {
    if (!A.Info.HasFrozenMachine) {
      Error = "compiler-only request against artifact '" + A.Info.Key.id() +
              "', which has no frozen machine configuration";
      return false;
    }
    Out = Row;
    for (size_t I = Row.size(); I < Space.size(); ++I)
      Out.push_back(Space.param(I).low());
  } else {
    Error = "request width " + std::to_string(Row.size()) +
            " matches neither the full space (" +
            std::to_string(Space.size()) + ") nor the compiler prefix (" +
            std::to_string(Space.numCompilerParams()) + ")";
    return false;
  }
  if (A.Info.HasFrozenMachine)
    Space.freezeMachine(Out, A.Info.Machine);
  return true;
}

HttpResponse jsonError(int Status, const std::string &Message) {
  Json Doc = Json::object();
  Doc.set("schema", Json::string(kPredictSchemaV1));
  Doc.set("error", Json::string(Message));
  HttpResponse Resp;
  Resp.Status = Status;
  Resp.ContentType = "application/json";
  Resp.Body = Doc.dump() + "\n";
  return Resp;
}

} // namespace

PredictionService::PredictionService(Options O)
    : Opts(O), Reg(ModelRegistry::fromEnv(O.RegistryDir)),
      Monitor(O.Monitor) {}

PredictionService::~PredictionService() { stopReloadWatch(); }

//===----------------------------------------------------------------------===//
// Admission queue
//===----------------------------------------------------------------------===//

PredictionService::ModelQueue &
PredictionService::queueFor(const std::string &ModelId) {
  std::lock_guard<std::mutex> Lock(QueuesMutex);
  std::unique_ptr<ModelQueue> &Slot = Queues[ModelId];
  if (!Slot)
    Slot = std::make_unique<ModelQueue>();
  return *Slot;
}

void PredictionService::drainAsLeader(ModelQueue &Q,
                                      std::unique_lock<std::mutex> &L) {
  while (!Q.Waiting.empty()) {
    std::vector<Call *> Batch;
    Batch.swap(Q.Waiting);

    // Flatten the coalesced rows: flat index -> (call, local row).
    size_t Rows = 0;
    for (Call *C : Batch)
      Rows += C->Points.size();
    Q.QueuedRows -= Rows;
    L.unlock();

    // Everything below runs unlocked; a throw (bad_alloc, a model
    // deserialization bug) must still complete every call in the batch
    // or the followers parked on Q.Cv wait forever.
    bool Failed = false;
    std::string FailMsg;
    try {
      std::vector<std::pair<Call *, size_t>> Slots;
      Slots.reserve(Rows);
      for (Call *C : Batch)
        for (size_t I = 0; I < C->Points.size(); ++I)
          Slots.emplace_back(C, I);

      // Same telemetry identity as the historical CLI batch; the coalesced
      // count is the only addition.
      telemetry::ScopedTimer Span("predict.batch");
      if (Span.capturing())
        Span.setDetail(Batch.front()->Artifact->Info.Key.id());
      std::vector<double> Flat = globalThreadPool().parallelMap(
          Rows,
          [&](size_t I) {
            telemetry::ScopedTimer RowSpan("predict.row", I);
            Call *C = Slots[I].first;
            return C->Artifact->M->predict(
                C->Artifact->Info.Space.encode(C->Points[Slots[I].second]));
          },
          "predict");
      telemetry::count("predict.requests", Rows);
      telemetry::count("predict.batches");
      if (Batch.size() > 1)
        telemetry::count("predict.coalesced_requests", Batch.size());
      if (telemetry::enabled() && Rows) {
        double PerRequestUs =
            static_cast<double>(Span.elapsedNs()) / 1000.0 / Rows;
        telemetry::observe("predict.request_us", PerRequestUs,
                           {1, 10, 100, 1000, 10000});
      }
      Monitor.recordBatch(Batch.front()->Artifact->Info.Key.id(), Rows,
                          Span.elapsedNs(),
                          Batch.front()->Artifact->Info.Quality.Mape);

      size_t Next = 0;
      for (Call *C : Batch) {
        C->Result.assign(Flat.begin() + Next,
                         Flat.begin() + Next + C->Points.size());
        Next += C->Points.size();
      }
    } catch (const std::exception &E) {
      Failed = true;
      FailMsg = E.what();
    } catch (...) {
      Failed = true;
      FailMsg = "unknown exception";
    }

    L.lock();
    for (Call *C : Batch) {
      if (Failed) {
        C->Failed = true;
        C->FailError = FailMsg;
      }
      C->Done = true;
    }
    if (Failed)
      telemetry::count("predict.batch_failures");
    Q.Cv.notify_all();
  }
}

bool PredictionService::admit(const std::string &ModelId, Call &C,
                              std::string &Error) {
  ModelQueue &Q = queueFor(ModelId);
  std::unique_lock<std::mutex> L(Q.M);
  if (Q.QueuedRows + C.Points.size() > Opts.MaxQueueRows) {
    Error = "model '" + ModelId + "' is overloaded (" +
            std::to_string(Q.QueuedRows) + " rows queued)";
    telemetry::count("serve.overloads");
    return false;
  }
  Q.Waiting.push_back(&C);
  Q.QueuedRows += C.Points.size();
  if (!Q.LeaderActive) {
    Q.LeaderActive = true;
    try {
      drainAsLeader(Q, L);
    } catch (...) {
      // drainAsLeader absorbs batch exceptions itself; this guards its
      // own bookkeeping allocations. Step down and wake the queue so
      // followers re-elect instead of waiting forever.
      if (!L.owns_lock())
        L.lock();
      Q.LeaderActive = false;
      Q.Cv.notify_all();
      throw;
    }
    Q.LeaderActive = false;
    // A request admitted while we were draining unlocked is impossible to
    // leave behind (the drain loop re-checks under the lock), but a call
    // that arrived just as we stepped down must elect itself; wake it.
    Q.Cv.notify_all();
  } else {
    Q.Cv.wait(L, [&] { return C.Done; });
  }
  if (C.Failed) {
    Error = "predict batch failed: " + C.FailError;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// predict
//===----------------------------------------------------------------------===//

int PredictionService::predictOnArtifact(
    const ModelKey &Key, const std::vector<DesignPoint> &Rows, bool Strict,
    std::vector<double> &Out, std::vector<RowError> *RowErrors,
    std::string &Error, std::string *ModelId, double *QualityMape) {
  std::shared_ptr<const ModelArtifact> A = Reg.fetch(Key, &Error);
  if (!A)
    return 404;
  if (ModelId)
    *ModelId = A->Info.Key.id();
  if (QualityMape)
    *QualityMape = A->Info.Quality.Mape;

  // Validate every row up front (the historical contract: strict callers
  // see the first failure before any prediction runs).
  Call C;
  C.Artifact = A;
  std::vector<size_t> ValidRows; ///< Request-row index per queued point.
  C.Points.reserve(Rows.size());
  ValidRows.reserve(Rows.size());
  for (size_t I = 0; I < Rows.size(); ++I) {
    DesignPoint P;
    std::string RowError_;
    if (!requestToPoint(Rows[I], *A, P, RowError_)) {
      if (Strict) {
        Error = "request " + std::to_string(I + 1) + ": " + RowError_;
        Monitor.recordError(A->Info.Key.id());
        return 400;
      }
      if (RowErrors)
        RowErrors->push_back({I, RowError_});
      continue;
    }
    C.Points.push_back(std::move(P));
    ValidRows.push_back(I);
  }

  Out.assign(Rows.size(), 0.0);
  if (C.Points.empty()) {
    if (RowErrors && !RowErrors->empty())
      Monitor.recordError(A->Info.Key.id());
    return 200; // Tolerant mode: every row failed; Errors says why.
  }

  if (!admit(A->Info.Key.id(), C, Error))
    return 503;
  for (size_t I = 0; I < ValidRows.size(); ++I)
    Out[ValidRows[I]] = C.Result[I];
  return 200;
}

int PredictionService::predict(const PredictRequest &Req,
                               PredictResponse &Resp, std::string &Error,
                               bool Strict) {
  if (Req.Rows.empty()) {
    Error = "no request rows";
    return 400;
  }
  if (Req.Rows.size() > Opts.MaxBatchRows) {
    Error = "request holds " + std::to_string(Req.Rows.size()) +
            " rows; the per-request limit is " +
            std::to_string(Opts.MaxBatchRows);
    return 413;
  }

  Resp = PredictResponse();
  Resp.Build = buildStamp();
  Resp.Metric = Req.Key.Metric;
  Resp.Platform = Req.Key.Platform;

  int Status =
      predictOnArtifact(Req.Key, Req.Rows, Strict, Resp.Predictions,
                        &Resp.Errors, Error, &Resp.ModelId, nullptr);
  if (Status != 200)
    return Status;

  if (!Req.ComparePlatform.empty()) {
    ModelKey OtherKey = Req.Key;
    OtherKey.Platform = Req.ComparePlatform;
    Resp.ComparePlatform = Req.ComparePlatform;
    // Compare mode is all-or-nothing even when tolerant: a ratio against
    // a row the base platform rejected is meaningless, so both platforms
    // run strict once the base succeeded.
    std::vector<RowError> Unused;
    Status = predictOnArtifact(OtherKey, Req.Rows, /*Strict=*/true,
                               Resp.ComparePredictions,
                               Strict ? nullptr : &Unused, Error, nullptr,
                               nullptr);
    if (Status != 200)
      return Status;
  }
  return 200;
}

//===----------------------------------------------------------------------===//
// HTTP handlers
//===----------------------------------------------------------------------===//

HttpResponse PredictionService::handlePredict(const HttpRequest &Req) {
  auto T0 = std::chrono::steady_clock::now();
  telemetry::ScopedTimer Span("serve.request");
  telemetry::count("serve.requests");

  // The RED sample's model id: the requested key as soon as the request
  // parses, upgraded to the resolved artifact id on success.
  std::string SloModel;
  uint64_t SloRows = 0;

  HttpResponse Resp = [&]() -> HttpResponse {
    std::string ParseError;
    Json Doc = Json::parse(Req.Body, &ParseError);
    if (!ParseError.empty()) {
      telemetry::count("serve.bad_requests");
      return jsonError(400, "request body: " + ParseError);
    }
    PredictRequest PReq;
    std::string Error;
    if (!parsePredictRequest(Doc, PReq, Error)) {
      telemetry::count("serve.bad_requests");
      return jsonError(400, Error);
    }
    SloModel = PReq.Key.id();
    SloRows = PReq.Rows.size();

    PredictResponse PResp;
    int Status = predict(PReq, PResp, Error, /*Strict=*/false);
    if (Status != 200) {
      telemetry::count("serve.failed_requests");
      return jsonError(Status, Error);
    }
    SloModel = PResp.ModelId;

    if (telemetry::enabled())
      telemetry::observe("serve.request_us",
                         static_cast<double>(Span.elapsedNs()) / 1000.0,
                         {100, 1000, 10000, 100000, 1000000});

    HttpResponse Out;
    switch (PReq.Format) {
    case PredictFormat::Csv:
      Out.ContentType = "text/csv; charset=utf-8";
      Out.Body = renderPredictCsv(PResp);
      break;
    case PredictFormat::Jsonl:
      Out.ContentType = "application/x-ndjson";
      Out.Body = renderPredictJsonl(PResp);
      break;
    case PredictFormat::Json:
      Out.ContentType = "application/json";
      Out.Body = serializePredictResponse(PResp).dump() + "\n";
      break;
    }
    return Out;
  }();

  if (Opts.Slo) {
    SloTracker::Sample S;
    S.Method = Req.Method;
    S.Endpoint = "/v1/predict";
    S.Model = SloModel;
    S.Status = Resp.Status;
    S.Rows = SloRows;
    S.LatencyUs = static_cast<double>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - T0)
                          .count()) /
                  1000.0;
    S.TraceId = Span.traceId();
    Opts.Slo->record(S);
  }
  return Resp;
}

HttpResponse PredictionService::handleModels(const HttpRequest &Req) {
  auto T0 = std::chrono::steady_clock::now();
  HttpResponse Resp = [&]() -> HttpResponse {
    std::string Error;
    std::vector<RegistryEntry> Entries = Reg.list(&Error);
    if (!Error.empty())
      return jsonError(500, Error);
    Json Models = Json::array();
    for (const RegistryEntry &E : Entries) {
      Json M = Json::object();
      M.set("id", Json::string(E.Key.id()));
      M.set("model", Json::string(keySpec(E.Key)));
      M.set("file", Json::string(E.File));
      Json Quality = Json::object();
      Quality.set("mape", Json::number(E.Quality.Mape));
      Quality.set("rmse", Json::number(E.Quality.Rmse));
      Quality.set("r2", Json::number(E.Quality.R2));
      M.set("quality", std::move(Quality));
      Models.push(std::move(M));
    }
    Json Doc = Json::object();
    Doc.set("schema", Json::string(kPredictSchemaV1));
    Doc.set("registry", Json::string(Reg.options().Dir));
    Doc.set("models", std::move(Models));
    HttpResponse Out;
    Out.ContentType = "application/json";
    Out.Body = Doc.dumpPretty();
    return Out;
  }();

  if (Opts.Slo) {
    SloTracker::Sample S;
    S.Method = Req.Method;
    S.Endpoint = "/v1/models";
    S.Status = Resp.Status;
    S.LatencyUs = static_cast<double>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - T0)
                          .count()) /
                  1000.0;
    Opts.Slo->record(S);
  }
  return Resp;
}

void PredictionService::registerRoutes(HttpRouter &Router) {
  Routes.emplace_back(Router, "POST", "/v1/predict",
                      [this](const HttpRequest &R) {
                        return handlePredict(R);
                      });
  Routes.emplace_back(Router, "GET", "/v1/models",
                      [this](const HttpRequest &R) {
                        return handleModels(R);
                      });
}

//===----------------------------------------------------------------------===//
// Hot reload
//===----------------------------------------------------------------------===//

bool PredictionService::pollManifestOnce() {
  uint64_t Sig = Reg.manifestSignature();
  {
    std::lock_guard<std::mutex> Lock(WatchMutex);
    if (Sig == LastManifestSig)
      return false;
    LastManifestSig = Sig;
  }
  size_t Dropped = Reg.invalidateCache();
  Reloads.fetch_add(1);
  telemetry::count("serve.reloads");
  telemetry::count("serve.reload_dropped", Dropped);
  return true;
}

void PredictionService::startReloadWatch(int PollMs) {
  stopReloadWatch();
  {
    std::lock_guard<std::mutex> Lock(WatchMutex);
    WatchStop = false;
    // Start from the current manifest: only future publishes reload.
    LastManifestSig = Reg.manifestSignature();
  }
  WatchThread = std::thread([this, PollMs] {
    std::unique_lock<std::mutex> Lock(WatchMutex);
    while (!WatchStop) {
      if (WatchCv.wait_for(Lock, std::chrono::milliseconds(PollMs),
                           [this] { return WatchStop; }))
        break;
      Lock.unlock();
      pollManifestOnce();
      Lock.lock();
    }
  });
}

void PredictionService::stopReloadWatch() {
  {
    std::lock_guard<std::mutex> Lock(WatchMutex);
    if (!WatchThread.joinable())
      return;
    WatchStop = true;
  }
  WatchCv.notify_all();
  WatchThread.join();
}
