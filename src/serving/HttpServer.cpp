//===- serving/HttpServer.cpp - Thread-per-core epoll HTTP server ----------===//

#include "serving/HttpServer.h"

#include "serving/SloTracker.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>

#ifndef EPOLLEXCLUSIVE
#define EPOLLEXCLUSIVE 0 // Pre-4.5 kernels: plain (thundering) wakeups.
#endif

using namespace msem;
using namespace msem::serving;

using SteadyClock = std::chrono::steady_clock;

//===----------------------------------------------------------------------===//
// Per-loop state
//===----------------------------------------------------------------------===//

struct HttpServer::Conn {
  int Fd = -1;
  HttpParser Parser;
  std::string Out;        ///< Bytes queued for the peer.
  size_t OutPos = 0;      ///< First unsent byte in Out.
  bool WantWrite = false; ///< Want EPOLLOUT (unsent output parked).
  bool Paused = false;    ///< Backpressure: dispatch/reads suspended.
  uint32_t Armed = 0;     ///< Events currently registered with epoll.
  bool CloseAfterDrain = false;
  SteadyClock::time_point LastActive;

  explicit Conn(int Fd, HttpParser::Limits Limits)
      : Fd(Fd), Parser(Limits), LastActive(SteadyClock::now()) {}
};

struct HttpServer::Loop {
  int EpollFd = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> Conns;
  SteadyClock::time_point LastSweep = SteadyClock::now();
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

HttpServer::HttpServer(HttpRouter &Router, Options Opts)
    : Router(Router), Opts(std::move(Opts)) {
  if (this->Opts.Threads < 1)
    this->Opts.Threads = 1;
}

HttpServer::~HttpServer() { stop(); }

static bool failErrno(std::string *Error, const char *What) {
  if (Error)
    *Error = std::string(What) + ": " + std::strerror(errno);
  return false;
}

bool HttpServer::start(std::string *Error) {
  if (Running.load())
    return true;
  StopFlag.store(false);

  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return failErrno(Error, "socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Opts.Port));
  if (::inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(ListenFd);
    ListenFd = -1;
    if (Error)
      *Error = "bad listen address '" + Opts.Host + "'";
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
          0 ||
      ::listen(ListenFd, 512) != 0) {
    bool Ok = failErrno(Error, "bind/listen");
    ::close(ListenFd);
    ListenFd = -1;
    return Ok;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);

  // The stop signal: written once by stop(), never read, so its
  // level-triggered readability wakes every loop no matter which polls
  // first.
  WakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (WakeFd < 0) {
    failErrno(Error, "eventfd");
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  auto Abort = [this](std::unique_ptr<Loop> Current) {
    if (Current && Current->EpollFd >= 0)
      ::close(Current->EpollFd);
    for (auto &Prev : Loops)
      ::close(Prev->EpollFd);
    Loops.clear();
    ::close(WakeFd);
    ::close(ListenFd);
    WakeFd = ListenFd = -1;
    return false;
  };

  Loops.clear();
  for (int I = 0; I < Opts.Threads; ++I) {
    auto L = std::make_unique<Loop>();
    L->EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (L->EpollFd < 0) {
      failErrno(Error, "epoll_create1");
      return Abort(std::move(L));
    }
    epoll_event Ev{};
    Ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    Ev.data.fd = ListenFd;
    if (::epoll_ctl(L->EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev) != 0) {
      failErrno(Error, "epoll_ctl(listen)");
      return Abort(std::move(L));
    }
    Ev.events = EPOLLIN;
    Ev.data.fd = WakeFd;
    if (::epoll_ctl(L->EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev) != 0) {
      failErrno(Error, "epoll_ctl(wake)");
      return Abort(std::move(L));
    }
    Loops.push_back(std::move(L));
  }

  Running.store(true);
  for (auto &L : Loops)
    Threads.emplace_back([this, Lp = L.get()] { runLoop(*Lp); });
  return true;
}

void HttpServer::stop() {
  if (!Running.load())
    return;
  StopFlag.store(true);
  uint64_t One = 1;
  ssize_t W = ::write(WakeFd, &One, sizeof(One));
  (void)W;
  for (std::thread &T : Threads)
    T.join();
  Threads.clear();
  for (auto &L : Loops)
    ::close(L->EpollFd);
  Loops.clear();
  ::close(WakeFd);
  ::close(ListenFd);
  WakeFd = ListenFd = -1;
  Running.store(false);
}

HttpServer::Stats HttpServer::stats() const {
  Stats S;
  S.Accepted = StatAccepted.load();
  S.Requests = StatRequests.load();
  S.ParseErrors = StatParseErrors.load();
  S.TimedOut = StatTimedOut.load();
  return S;
}

//===----------------------------------------------------------------------===//
// Event loop
//===----------------------------------------------------------------------===//

void HttpServer::runLoop(Loop &L) {
  epoll_event Events[64];
  while (!StopFlag.load()) {
    int N = ::epoll_wait(L.EpollFd, Events, 64, /*timeout ms=*/500);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    for (int I = 0; I < N && !StopFlag.load(); ++I) {
      int Fd = Events[I].data.fd;
      if (Fd == WakeFd)
        continue; // StopFlag re-checked by the loop condition.
      if (Fd == ListenFd) {
        handleAccept(L);
        continue;
      }
      auto It = L.Conns.find(Fd);
      if (It != L.Conns.end())
        handleConn(L, *It->second, Events[I].events);
    }
    sweepIdle(L);
  }
  // Drain on exit: close every connection this loop owns.
  for (auto &Entry : L.Conns)
    ::close(Entry.second->Fd);
  L.Conns.clear();
}

void HttpServer::handleAccept(Loop &L) {
  while (true) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN: another loop won the wakeup, or drained.
    }
    if (L.Conns.size() >= Opts.MaxConnectionsPerLoop) {
      ::close(Fd); // Shed load; the client sees a reset.
      continue;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    StatAccepted.fetch_add(1, std::memory_order_relaxed);
    auto C = std::make_unique<Conn>(Fd, Opts.Limits);
    C->Armed = EPOLLIN;
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = Fd;
    if (::epoll_ctl(L.EpollFd, EPOLL_CTL_ADD, Fd, &Ev) != 0) {
      ::close(Fd);
      continue;
    }
    L.Conns.emplace(Fd, std::move(C));
  }
}

void HttpServer::handleConn(Loop &L, Conn &C, uint32_t Events) {
  if (Events & (EPOLLHUP | EPOLLERR)) {
    closeConn(L, C);
    return;
  }
  C.LastActive = SteadyClock::now();

  if ((Events & EPOLLIN) && !C.Paused) {
    char Buf[16 * 1024];
    while (true) {
      ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
      if (N > 0) {
        C.Parser.feed(Buf, static_cast<size_t>(N));
        continue;
      }
      if (N == 0) {
        // Peer half-closed. Anything already queued still goes out; with
        // nothing pending there is nothing left to say.
        C.CloseAfterDrain = true;
        if (C.Out.size() == C.OutPos && C.Parser.status() != // no response
                                            HttpParser::Status::Complete) {
          closeConn(L, C);
          return;
        }
        break;
      }
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      closeConn(L, C);
      return;
    }
    if (!serviceRequests(L, C))
      C.CloseAfterDrain = true;
  }

  if (!flushWrites(L, C))
    return; // Connection closed.
}

bool HttpServer::serviceRequests(Loop &, Conn &C) {
  while (true) {
    // Backpressure: a pipelining client that never reads its responses
    // must not grow Out unboundedly. Park dispatch here; flushWrites
    // resumes it once the buffer drains.
    if (C.Out.size() - C.OutPos >= Opts.MaxPendingOutBytes) {
      C.Paused = true;
      return true;
    }
    HttpParser::Status St = C.Parser.status();
    if (St == HttpParser::Status::NeedMore)
      return true;
    if (St == HttpParser::Status::Error) {
      StatParseErrors.fetch_add(1, std::memory_order_relaxed);
      HttpResponse Resp;
      Resp.Status = C.Parser.errorStatus();
      Resp.Body = C.Parser.errorText() + "\n";
      C.Out += serializeHttpResponse(Resp, /*KeepAlive=*/false,
                                     /*HeadRequest=*/false);
      if (Opts.Slo) {
        // No route ever saw these bytes; record them under the synthetic
        // "(parse)" endpoint so transport rejects still burn the budget.
        SloTracker::Sample S;
        S.Endpoint = "(parse)";
        S.Status = Resp.Status;
        Opts.Slo->record(S);
      }
      return false; // Framing is lost; close once the 4xx drains.
    }
    // Complete: dispatch and queue the response.
    StatRequests.fetch_add(1, std::memory_order_relaxed);
    const HttpRequest &Req = C.Parser.request();
    bool Head = Req.Method == "HEAD";
    bool KeepAlive = C.Parser.keepAlive();
    HttpResponse Resp = Router.dispatch(Req);
    C.Out += serializeHttpResponse(Resp, KeepAlive, Head);
    if (!KeepAlive)
      return false;
    C.Parser.reset(); // May surface a pipelined request immediately.
  }
}

bool HttpServer::flushWrites(Loop &L, Conn &C) {
  while (true) {
    while (C.OutPos < C.Out.size()) {
      ssize_t N = ::send(C.Fd, C.Out.data() + C.OutPos,
                         C.Out.size() - C.OutPos, MSG_NOSIGNAL);
      if (N > 0) {
        C.OutPos += static_cast<size_t>(N);
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        C.WantWrite = true;
        updateInterest(L, C); // While paused this also drops EPOLLIN.
        return true;          // Parked; EPOLLOUT resumes us.
      }
      closeConn(L, C);
      return false;
    }

    // Fully drained.
    C.Out.clear();
    C.OutPos = 0;
    if (C.CloseAfterDrain) {
      closeConn(L, C);
      return false;
    }
    if (!C.Paused)
      break;
    // Backpressure released: dispatch the pipelined requests still
    // buffered in the parser, then loop to flush what they produced.
    C.Paused = false;
    if (!serviceRequests(L, C))
      C.CloseAfterDrain = true;
    if (C.Out.empty() && !C.CloseAfterDrain)
      break;
  }
  C.WantWrite = false;
  updateInterest(L, C);
  return true;
}

void HttpServer::updateInterest(Loop &L, Conn &C) {
  uint32_t Want = (C.Paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
                  (C.WantWrite ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  if (Want == C.Armed)
    return;
  C.Armed = Want;
  epoll_event Ev{};
  Ev.events = Want;
  Ev.data.fd = C.Fd;
  ::epoll_ctl(L.EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev);
}

void HttpServer::closeConn(Loop &L, Conn &C) {
  int Fd = C.Fd;
  ::epoll_ctl(L.EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  ::close(Fd);
  L.Conns.erase(Fd); // Invalidates C.
}

void HttpServer::sweepIdle(Loop &L) {
  SteadyClock::time_point Now = SteadyClock::now();
  if (Now - L.LastSweep < std::chrono::seconds(1))
    return;
  L.LastSweep = Now;
  std::vector<int> Expired;
  for (auto &[Fd, C] : L.Conns)
    if (Now - C->LastActive >
        std::chrono::milliseconds(Opts.IdleTimeoutMs))
      Expired.push_back(Fd);
  for (int Fd : Expired) {
    auto It = L.Conns.find(Fd);
    if (It != L.Conns.end()) {
      StatTimedOut.fetch_add(1, std::memory_order_relaxed);
      closeConn(L, *It->second);
    }
  }
}
