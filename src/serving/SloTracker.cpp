//===- serving/SloTracker.cpp - RED metrics and SLO burn rates ------------===//

#include "serving/SloTracker.h"

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>

using namespace msem;
using namespace msem::serving;

namespace {

/// Estimated Q-quantile over fixed-bound buckets by linear interpolation
/// within the containing bucket, clamped to the observed maximum (the
/// same estimate telemetry::Histogram::quantile computes).
double bucketQuantile(const std::array<double, 8> &Bounds,
                      const std::array<uint64_t, 9> &Counts, double Max,
                      double Q) {
  uint64_t Total = 0;
  for (uint64_t C : Counts)
    Total += C;
  if (Total == 0)
    return 0.0;
  double Rank = Q * static_cast<double>(Total);
  uint64_t Seen = 0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    uint64_t Here = Counts[I];
    if (static_cast<double>(Seen + Here) < Rank || Here == 0) {
      Seen += Here;
      continue;
    }
    double Lo = I == 0 ? 0.0 : Bounds[I - 1];
    double Hi = I < Bounds.size() ? Bounds[I] : Max;
    if (Hi < Lo)
      Hi = Lo;
    double Frac = (Rank - static_cast<double>(Seen)) /
                  static_cast<double>(Here);
    double V = Lo + (Hi - Lo) * Frac;
    return std::min(V, Max > 0 ? Max : V);
  }
  return Max;
}

/// bad_fraction / (1 - objective); the burn-rate normalization. 0 when
/// the window saw nothing (no traffic burns no budget).
double burnRate(uint64_t Bad, uint64_t Requests, double Objective) {
  if (Requests == 0)
    return 0.0;
  double Budget = 1.0 - Objective;
  if (Budget <= 0.0)
    Budget = 1e-9; // A 100% objective still yields a finite, huge burn.
  return (static_cast<double>(Bad) / static_cast<double>(Requests)) / Budget;
}

std::string statusClass(int Status) {
  if (Status >= 500)
    return "5xx";
  if (Status >= 400)
    return "4xx";
  return "ok";
}

} // namespace

SloTracker::SloTracker(Options O) : Opts(std::move(O)) {}

SloTracker::~SloTracker() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (AccessLog)
    std::fclose(AccessLog);
}

int64_t SloTracker::nowSeconds() const {
  return Clock ? Clock() : static_cast<int64_t>(::time(nullptr));
}

void SloTracker::setClockForTest(std::function<int64_t()> ClockFn) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Clock = std::move(ClockFn);
}

void SloTracker::appendAccessLine(const Sample &S, int64_t UnixMs) {
  // Called with Mutex held.
  if (Opts.AccessLogPath.empty() || AccessLogFailed)
    return;
  if (!AccessLog) {
    AccessLog = std::fopen(Opts.AccessLogPath.c_str(), "a");
    if (!AccessLog) {
      AccessLogFailed = true;
      std::fprintf(stderr, "msem slo: cannot open access log '%s'\n",
                   Opts.AccessLogPath.c_str());
      return;
    }
  }
  Json Line = Json::object();
  Line.set("schema", Json::string(kAccessLogSchema));
  Line.set("unix_ms", Json::number(static_cast<double>(UnixMs)));
  Line.set("method", Json::string(S.Method));
  Line.set("endpoint", Json::string(S.Endpoint));
  if (!S.Model.empty())
    Line.set("model", Json::string(S.Model));
  Line.set("status", Json::number(S.Status));
  Line.set("rows", Json::number(static_cast<double>(S.Rows)));
  Line.set("latency_us", Json::number(S.LatencyUs));
  if (S.TraceId)
    Line.set("trace", Json::hexU64(S.TraceId));
  std::string Text = Line.dump();
  Text += '\n';
  std::fwrite(Text.data(), 1, Text.size(), AccessLog);
  std::fflush(AccessLog);
}

void SloTracker::record(const Sample &S) {
  auto T0 = std::chrono::steady_clock::now();
  bool Error5xx = S.Status >= 500;
  bool Error4xx = S.Status >= 400 && S.Status < 500;
  bool Slow = S.LatencyUs > Opts.LatencyObjectiveMs * 1000.0;

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    int64_t Now = nowSeconds();
    KeyState &K = Keys[{S.Endpoint, S.Model}];

    K.Requests += 1;
    K.Errors4xx += Error4xx ? 1 : 0;
    K.Errors5xx += Error5xx ? 1 : 0;
    K.Slow += Slow ? 1 : 0;
    K.LatencyMaxUs = std::max(K.LatencyMaxUs, S.LatencyUs);
    size_t Bucket = kLatencyBoundsUs.size();
    for (size_t I = 0; I < kLatencyBoundsUs.size(); ++I)
      if (S.LatencyUs <= kLatencyBoundsUs[I]) {
        Bucket = I;
        break;
      }
    K.LatencyBuckets[Bucket] += 1;
    if ((Error5xx || Error4xx || Slow) && S.TraceId)
      K.ExemplarTraceId = S.TraceId;

    Slot &Sl = K.Ring[static_cast<size_t>(
        Now % static_cast<int64_t>(K.Ring.size()))];
    if (Sl.Second != Now)
      Sl = Slot{Now, 0, 0, 0};
    Sl.Requests += 1;
    Sl.Errors5xx += Error5xx ? 1 : 0;
    Sl.Slow += Slow ? 1 : 0;

    appendAccessLine(S, Now * 1000);
  }

  // The red.* registry fan-out: multi-label OpenMetrics families (see
  // mapRedMetricName). Gated like every other instrumentation point.
  if (telemetry::enabled()) {
    std::string Key = S.Endpoint + ":" + S.Model;
    telemetry::count("red.requests." + Key);
    if (Error4xx || Error5xx)
      telemetry::count("red.errors." + Key + ":" + statusClass(S.Status));
    telemetry::observe("red.latency_us." + Key, S.LatencyUs,
                       {kLatencyBoundsUs.begin(), kLatencyBoundsUs.end()});
  }

  uint64_t Ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  std::lock_guard<std::mutex> Lock(Mutex);
  SelfNs += Ns;
  Samples += 1;
}

std::vector<SloTracker::KeyReport> SloTracker::report() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  int64_t Now = nowSeconds();
  std::vector<KeyReport> Out;
  Out.reserve(Keys.size());
  for (const auto &[Key, K] : Keys) {
    KeyReport R;
    R.Endpoint = Key.first;
    R.Model = Key.second;
    R.Requests = K.Requests;
    R.Errors4xx = K.Errors4xx;
    R.Errors5xx = K.Errors5xx;
    R.Slow = K.Slow;
    R.LatencyMaxUs = K.LatencyMaxUs;
    R.LatencyP50Us =
        bucketQuantile(kLatencyBoundsUs, K.LatencyBuckets, K.LatencyMaxUs, 0.50);
    R.LatencyP95Us =
        bucketQuantile(kLatencyBoundsUs, K.LatencyBuckets, K.LatencyMaxUs, 0.95);
    R.LatencyP99Us =
        bucketQuantile(kLatencyBoundsUs, K.LatencyBuckets, K.LatencyMaxUs, 0.99);
    R.ExemplarTraceId = K.ExemplarTraceId;

    for (int WindowS : kSloWindowsSeconds) {
      WindowStats W;
      W.WindowSeconds = WindowS;
      // Sum the ring slots still inside [Now - W + 1, Now]; stale slots
      // (lazily unreset seconds from a previous lap) are filtered by the
      // Second check.
      for (int64_t Sec = Now - WindowS + 1; Sec <= Now; ++Sec) {
        const Slot &Sl = K.Ring[static_cast<size_t>(
            Sec % static_cast<int64_t>(K.Ring.size()))];
        if (Sl.Second != Sec)
          continue;
        W.Requests += Sl.Requests;
        W.Errors5xx += Sl.Errors5xx;
        W.Slow += Sl.Slow;
      }
      W.AvailabilityBurn =
          burnRate(W.Errors5xx, W.Requests, Opts.AvailabilityObjective);
      W.LatencyBurn = burnRate(W.Slow, W.Requests, Opts.AvailabilityObjective);
      R.Windows.push_back(W);
    }
    R.AllTime.WindowSeconds = 0;
    R.AllTime.Requests = K.Requests;
    R.AllTime.Errors5xx = K.Errors5xx;
    R.AllTime.Slow = K.Slow;
    R.AllTime.AvailabilityBurn =
        burnRate(K.Errors5xx, K.Requests, Opts.AvailabilityObjective);
    R.AllTime.LatencyBurn =
        burnRate(K.Slow, K.Requests, Opts.AvailabilityObjective);
    Out.push_back(std::move(R));
  }
  return Out;
}

Json SloTracker::renderSloz() const {
  std::vector<KeyReport> Report = report();
  auto WindowJson = [](const WindowStats &W) {
    Json J = Json::object();
    J.set("window_s", Json::number(W.WindowSeconds));
    J.set("requests", Json::number(static_cast<double>(W.Requests)));
    J.set("errors_5xx", Json::number(static_cast<double>(W.Errors5xx)));
    J.set("slow", Json::number(static_cast<double>(W.Slow)));
    J.set("availability_burn", Json::number(W.AvailabilityBurn));
    J.set("latency_burn", Json::number(W.LatencyBurn));
    return J;
  };

  Json Doc = Json::object();
  Doc.set("schema", Json::string(kSlozSchema));
  Doc.set("latency_objective_ms", Json::number(Opts.LatencyObjectiveMs));
  Doc.set("availability_objective",
          Json::number(Opts.AvailabilityObjective));
  Json Windows = Json::array();
  for (int W : kSloWindowsSeconds)
    Windows.push(Json::number(W));
  Doc.set("windows_s", std::move(Windows));

  Json KeysJson = Json::array();
  for (const KeyReport &R : Report) {
    Json K = Json::object();
    K.set("endpoint", Json::string(R.Endpoint));
    K.set("model", Json::string(R.Model));
    K.set("requests", Json::number(static_cast<double>(R.Requests)));
    K.set("errors_4xx", Json::number(static_cast<double>(R.Errors4xx)));
    K.set("errors_5xx", Json::number(static_cast<double>(R.Errors5xx)));
    K.set("slow", Json::number(static_cast<double>(R.Slow)));
    Json Lat = Json::object();
    Lat.set("p50_us", Json::number(R.LatencyP50Us));
    Lat.set("p95_us", Json::number(R.LatencyP95Us));
    Lat.set("p99_us", Json::number(R.LatencyP99Us));
    Lat.set("max_us", Json::number(R.LatencyMaxUs));
    K.set("latency", std::move(Lat));
    if (R.ExemplarTraceId)
      K.set("exemplar_trace", Json::hexU64(R.ExemplarTraceId));
    Json Burn = Json::array();
    for (const WindowStats &W : R.Windows)
      Burn.push(WindowJson(W));
    Burn.push(WindowJson(R.AllTime));
    K.set("burn", std::move(Burn));
    KeysJson.push(std::move(K));
  }
  Doc.set("keys", std::move(KeysJson));

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Json Self = Json::object();
    Self.set("samples", Json::number(static_cast<double>(Samples)));
    Self.set("record_ns", Json::number(static_cast<double>(SelfNs)));
    Doc.set("tracker", std::move(Self));
  }
  return Doc;
}

uint64_t SloTracker::selfNs() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return SelfNs;
}

uint64_t SloTracker::sampleCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Samples;
}
