//===- serving/PredictionService.h - Shared prediction facade ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving facade both front ends sit on: tools/msem_predict calls
/// predict() directly with strict (fail-the-batch) semantics, and
/// tools/msem_serve registers handlePredict/handleModels as HTTP routes
/// with tolerant (per-row error) semantics. Everything between request
/// validation and response values is shared, which is what makes the
/// serve-smoke bitwise-identity contract hold.
///
/// Pipeline per request:
///
///   rows --requestToPoint--> full-width points --admission queue-->
///       coalesced ThreadPool batch --slice--> per-request predictions
///
/// The admission queue is per model id and leader-follower shaped: the
/// first caller to find the queue idle becomes the leader, drains every
/// queued request (its own included) into ONE parallelMap batch over the
/// global thread pool, distributes the slices and hands leadership to
/// whoever queued meanwhile. Concurrent small requests therefore pay one
/// batch's scheduling overhead instead of N -- and because each row is a
/// pure function of its point, coalescing cannot change a single bit of
/// any response. Each queued call pins the artifact snapshot it resolved
/// at admission, so a hot reload mid-flight drains old requests on the
/// old version while new requests see the new one.
///
/// Hot reload: startReloadWatch polls ModelRegistry::manifestSignature
/// and, on any change, drops the artifact LRU (invalidateCache). No lock
/// is held across a cutover; in-flight shared_ptr holders keep their
/// artifacts alive until they finish.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SERVING_PREDICTIONSERVICE_H
#define MSEM_SERVING_PREDICTIONSERVICE_H

#include "registry/ModelRegistry.h"
#include "registry/ServingMonitor.h"
#include "serving/PredictSchema.h"
#include "support/Http.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace msem {
namespace serving {

class SloTracker;

class PredictionService {
public:
  struct Options {
    /// Registry root ("" = MSEM_REGISTRY_DIR).
    std::string RegistryDir;
    /// Rows one request may carry (413 beyond).
    size_t MaxBatchRows = 4096;
    /// Rows admitted per model across queued requests (503 beyond).
    size_t MaxQueueRows = 1 << 16;
    ServingMonitor::Options Monitor;
    /// When set, every HTTP handler outcome (endpoint, model, status,
    /// latency, exemplar trace) is recorded as one RED sample. Recording
    /// happens after the response is fully built and never alters its
    /// bytes. Not owned; must outlive the service.
    SloTracker *Slo = nullptr;
  };

  explicit PredictionService(Options O);
  ~PredictionService();

  /// Runs \p Req end to end. Returns an HTTP-shaped status: 200 on
  /// success (Resp filled), 400 for malformed rows (Strict) or an invalid
  /// request, 404 for an unpublished model, 413 for an oversized batch,
  /// 503 when the admission queue is full. \p Strict selects the CLI
  /// contract (first bad row fails the whole request, diagnostic
  /// "request N: ..."); tolerant mode predicts every valid row and
  /// reports the bad ones in Resp.Errors.
  int predict(const PredictRequest &Req, PredictResponse &Resp,
              std::string &Error, bool Strict);

  /// POST /v1/predict: body is a msem.predict.v1 document; the response
  /// renders in the requested format (json/csv/jsonl). Tolerant mode.
  HttpResponse handlePredict(const HttpRequest &Req);

  /// GET /v1/models: the manifest as a JSON inventory.
  HttpResponse handleModels(const HttpRequest &Req);

  /// Registers both endpoints on \p Router (owned until destruction).
  void registerRoutes(HttpRouter &Router);

  // --- Hot reload ----------------------------------------------------------

  /// Starts the manifest watch thread, polling every \p PollMs.
  void startReloadWatch(int PollMs);
  void stopReloadWatch();

  /// One watch step, synchronously (what the thread runs; tests call it
  /// directly). Returns true when a manifest change was observed and the
  /// artifact cache was dropped.
  bool pollManifestOnce();

  uint64_t reloadCount() const { return Reloads.load(); }

  ModelRegistry &registry() { return Reg; }
  ServingMonitor &monitor() { return Monitor; }
  const Options &options() const { return Opts; }

private:
  /// One admitted request's slice of a coalesced batch.
  struct Call {
    std::shared_ptr<const ModelArtifact> Artifact; ///< Pinned at admission.
    std::vector<DesignPoint> Points;               ///< Full-width, validated.
    std::vector<double> Result;
    bool Done = false;
    bool Failed = false;   ///< The batch this call rode threw.
    std::string FailError; ///< what() of the batch exception.
  };

  /// Per-model admission queue (leader-follower).
  struct ModelQueue {
    std::mutex M;
    std::condition_variable Cv;
    std::vector<Call *> Waiting;
    bool LeaderActive = false;
    size_t QueuedRows = 0;
  };

  ModelQueue &queueFor(const std::string &ModelId);

  /// Admits \p C on \p ModelId's queue and blocks until its slice is
  /// predicted (possibly by this thread as leader). Returns false (503)
  /// when the queue is full or the batch the call rode threw.
  bool admit(const std::string &ModelId, Call &C, std::string &Error);

  /// Leader body: drains \p Q into coalesced batches until it is empty.
  /// Called with \p L held; returns with it held. A throw from the
  /// unlocked batch section is absorbed: every call in the batch is
  /// completed with Failed set so no follower is left waiting.
  void drainAsLeader(ModelQueue &Q, std::unique_lock<std::mutex> &L);

  /// Fetch + validate + admit for one platform of the request.
  int predictOnArtifact(const ModelKey &Key,
                        const std::vector<DesignPoint> &Rows, bool Strict,
                        std::vector<double> &Out,
                        std::vector<RowError> *RowErrors, std::string &Error,
                        std::string *ModelId, double *QualityMape);

  Options Opts;
  ModelRegistry Reg;
  ServingMonitor Monitor;

  std::mutex QueuesMutex;
  std::map<std::string, std::unique_ptr<ModelQueue>> Queues;

  // Manifest watch.
  std::thread WatchThread;
  std::mutex WatchMutex;
  std::condition_variable WatchCv;
  bool WatchStop = false;
  uint64_t LastManifestSig = 0;
  std::atomic<uint64_t> Reloads{0};

  std::vector<ScopedRoute> Routes;
};

} // namespace serving
} // namespace msem

#endif // MSEM_SERVING_PREDICTIONSERVICE_H
