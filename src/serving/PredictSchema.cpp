//===- serving/PredictSchema.cpp - msem.predict.v1 wire schema ------------===//

#include "serving/PredictSchema.h"

#include "support/Format.h"

#include <cstdlib>
#include <set>

using namespace msem;
using namespace msem::serving;

//===----------------------------------------------------------------------===//
// Key specs
//===----------------------------------------------------------------------===//

bool serving::parseKeySpec(const std::string &Spec, ModelKey &Out,
                           std::string &Error) {
  std::vector<std::string> Parts = splitString(Spec, ',');
  if (Parts.size() < 4 || Parts.size() > 5) {
    Error = "model key wants workload,input,metric,technique[,platform]";
    return false;
  }
  Out.Workload = trimString(Parts[0]);
  if (!inputSetFromName(trimString(Parts[1]), Out.Input)) {
    Error = "unknown input set '" + Parts[1] + "'";
    return false;
  }
  if (!responseMetricFromName(trimString(Parts[2]), Out.Metric)) {
    Error = "unknown metric '" + Parts[2] + "'";
    return false;
  }
  Out.Technique = trimString(Parts[3]);
  Out.Platform = Parts.size() == 5 ? trimString(Parts[4]) : "joint";
  if (Out.Workload.empty() || Out.Technique.empty() || Out.Platform.empty()) {
    Error = "model key has an empty field";
    return false;
  }
  return true;
}

std::string serving::keySpec(const ModelKey &Key) {
  return Key.Workload + "," + inputSetName(Key.Input) + "," +
         responseMetricName(Key.Metric) + "," + Key.Technique + "," +
         Key.Platform;
}

//===----------------------------------------------------------------------===//
// Request parsing
//===----------------------------------------------------------------------===//

static bool failWith(std::string &Error, const std::string &Message) {
  Error = Message;
  return false;
}

/// Every row must agree on width (the artifact decides later whether that
/// width is the full space or the compiler prefix).
static bool checkRowWidths(const std::vector<DesignPoint> &Rows,
                           std::string &Error) {
  if (Rows.empty())
    return failWith(Error, "no request rows");
  for (size_t I = 1; I < Rows.size(); ++I)
    if (Rows[I].size() != Rows.front().size())
      return failWith(Error, "request rows disagree on width (row " +
                                 std::to_string(I + 1) + ")");
  return true;
}

bool serving::parsePredictRequest(const Json &Doc, PredictRequest &Out,
                                  std::string &Error) {
  if (Doc.kind() != Json::Kind::Object)
    return failWith(Error, "request is not a JSON object");
  const std::string &Schema = Doc["schema"].asString();
  if (Schema != kPredictSchemaV1)
    return failWith(Error, Schema.empty()
                               ? std::string("request is missing \"schema\"")
                               : "unsupported schema '" + Schema +
                                     "' (this build serves msem.predict.v1)");
  const std::string &Spec = Doc["model"].asString();
  if (Spec.empty())
    return failWith(Error, "request is missing \"model\"");
  if (!parseKeySpec(Spec, Out.Key, Error))
    return false;

  const Json &Rows = Doc["rows"];
  if (Rows.kind() != Json::Kind::Array)
    return failWith(Error, "request is missing \"rows\"");
  Out.Rows.clear();
  Out.Rows.reserve(Rows.size());
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Json &Row = Rows.at(I);
    if (Row.kind() != Json::Kind::Array)
      return failWith(Error,
                      "row " + std::to_string(I + 1) + " is not an array");
    DesignPoint P;
    P.reserve(Row.size());
    for (const Json &V : Row.items()) {
      if (V.kind() != Json::Kind::Number)
        return failWith(Error, "row " + std::to_string(I + 1) +
                                   " holds a non-numeric value");
      P.push_back(V.asInt());
    }
    Out.Rows.push_back(std::move(P));
  }
  if (!checkRowWidths(Out.Rows, Error))
    return false;

  const Json &Options = Doc["options"];
  Out.Format = PredictFormat::Json;
  Out.ComparePlatform.clear();
  if (!Options.isNull()) {
    if (Options.kind() != Json::Kind::Object)
      return failWith(Error, "\"options\" is not an object");
    // By value: with no "format" key asString returns a reference to its
    // temporary fallback argument, which dies at the end of this
    // expression.
    std::string Fmt = Options["format"].asString("json");
    if (Fmt == "json")
      Out.Format = PredictFormat::Json;
    else if (Fmt == "csv")
      Out.Format = PredictFormat::Csv;
    else if (Fmt == "jsonl")
      Out.Format = PredictFormat::Jsonl;
    else
      return failWith(Error, "unknown format '" + Fmt +
                                 "' (json, csv or jsonl)");
    Out.ComparePlatform = Options["compare"].asString();
  }
  return true;
}

Json serving::serializePredictRequest(const PredictRequest &Req) {
  Json Doc = Json::object();
  Doc.set("schema", Json::string(kPredictSchemaV1));
  Doc.set("model", Json::string(keySpec(Req.Key)));
  Json Rows = Json::array();
  for (const DesignPoint &P : Req.Rows) {
    Json Row = Json::array();
    for (int64_t V : P)
      Row.push(Json::number(static_cast<double>(V)));
    Rows.push(std::move(Row));
  }
  Doc.set("rows", std::move(Rows));
  if (Req.Format != PredictFormat::Json || !Req.ComparePlatform.empty()) {
    Json Options = Json::object();
    Options.set("format",
                Json::string(Req.Format == PredictFormat::Csv     ? "csv"
                             : Req.Format == PredictFormat::Jsonl ? "jsonl"
                                                                  : "json"));
    if (!Req.ComparePlatform.empty())
      Options.set("compare", Json::string(Req.ComparePlatform));
    Doc.set("options", std::move(Options));
  }
  return Doc;
}

bool serving::parseRowsText(const std::string &Text,
                            std::vector<DesignPoint> &Rows, bool &FromJsonl,
                            std::string &Error) {
  std::vector<std::string> Lines;
  for (const std::string &Line : splitString(Text, '\n')) {
    std::string T = trimString(Line);
    if (!T.empty())
      Lines.push_back(std::move(T));
  }
  if (Lines.empty())
    return failWith(Error, "no request rows");

  Rows.clear();
  FromJsonl = Lines.front()[0] == '[';
  if (FromJsonl) {
    for (size_t I = 0; I < Lines.size(); ++I) {
      std::string ParseError;
      Json Row = Json::parse(Lines[I], &ParseError);
      if (!ParseError.empty() || Row.kind() != Json::Kind::Array)
        return failWith(Error,
                        "request line " + std::to_string(I + 1) + ": " +
                            (ParseError.empty() ? "expected an array"
                                                : ParseError));
      DesignPoint P;
      P.reserve(Row.size());
      for (const Json &V : Row.items())
        P.push_back(V.asInt());
      Rows.push_back(std::move(P));
    }
  } else {
    // CSV; line 0 is the parameter-name header.
    for (size_t I = 1; I < Lines.size(); ++I) {
      DesignPoint P;
      for (const std::string &Cell : splitString(Lines[I], ',')) {
        std::string T = trimString(Cell);
        char *End = nullptr;
        long long V = std::strtoll(T.c_str(), &End, 10);
        if (End == T.c_str() || *End != '\0')
          return failWith(Error, "request line " + std::to_string(I + 1) +
                                     ": bad integer '" + T + "'");
        P.push_back(V);
      }
      Rows.push_back(std::move(P));
    }
  }
  return checkRowWidths(Rows, Error);
}

//===----------------------------------------------------------------------===//
// Response rendering
//===----------------------------------------------------------------------===//

Json serving::serializePredictResponse(const PredictResponse &Resp) {
  Json Doc = Json::object();
  Doc.set("schema", Json::string(kPredictSchemaV1));
  Doc.set("model", Json::string(Resp.ModelId));
  Doc.set("build", Json::string(Resp.Build));
  Doc.set("metric", Json::string(responseMetricName(Resp.Metric)));
  Doc.set("platform", Json::string(Resp.Platform));

  std::set<size_t> ErrorRows;
  for (const RowError &E : Resp.Errors)
    ErrorRows.insert(E.Row);

  Json Predictions = Json::array();
  for (size_t I = 0; I < Resp.Predictions.size(); ++I) {
    if (ErrorRows.count(I))
      continue;
    Json P = Json::object();
    P.set("row", Json::number(static_cast<double>(I)));
    P.set("prediction", Json::number(Resp.Predictions[I]));
    Predictions.push(std::move(P));
  }
  Doc.set("predictions", std::move(Predictions));

  if (!Resp.Errors.empty()) {
    Json Errors = Json::array();
    for (const RowError &E : Resp.Errors) {
      Json J = Json::object();
      J.set("row", Json::number(static_cast<double>(E.Row)));
      J.set("error", Json::string(E.Error));
      Errors.push(std::move(J));
    }
    Doc.set("errors", std::move(Errors));
  }

  if (!Resp.ComparePlatform.empty()) {
    Json Compare = Json::object();
    Compare.set("platform", Json::string(Resp.ComparePlatform));
    Compare.set("predictions", Json::numberArray(Resp.ComparePredictions));
    std::vector<double> Ratios(Resp.Predictions.size());
    for (size_t I = 0; I < Resp.Predictions.size() &&
                       I < Resp.ComparePredictions.size();
         ++I)
      Ratios[I] = Resp.ComparePredictions[I] != 0
                      ? Resp.Predictions[I] / Resp.ComparePredictions[I]
                      : 0.0;
    Compare.set("ratios", Json::numberArray(Ratios));
    Doc.set("compare", std::move(Compare));
  }
  return Doc;
}

/// Row index -> error text for the rows Resp.Errors rejected, so the
/// text renderers can mark them instead of emitting their placeholder
/// 0.0 as if it were a real prediction.
static std::vector<const std::string *>
rowErrorIndex(const PredictResponse &Resp) {
  std::vector<const std::string *> Idx(Resp.Predictions.size(), nullptr);
  for (const RowError &E : Resp.Errors)
    if (E.Row < Idx.size())
      Idx[E.Row] = &E.Error;
  return Idx;
}

std::string serving::renderPredictCsv(const PredictResponse &Resp) {
  const char *Metric = responseMetricName(Resp.Metric);
  std::vector<const std::string *> Errs = rowErrorIndex(Resp);
  std::string Out;
  if (Resp.ComparePlatform.empty()) {
    Out = formatString("predicted_%s\n", Metric);
    for (size_t I = 0; I < Resp.Predictions.size(); ++I)
      Out += Errs[I] ? "nan\n" : formatString("%.17g\n", Resp.Predictions[I]);
    return Out;
  }
  Out = formatString("predicted_%s_%s,predicted_%s_%s,ratio\n", Metric,
                     Resp.Platform.c_str(), Metric,
                     Resp.ComparePlatform.c_str());
  for (size_t I = 0; I < Resp.Predictions.size(); ++I) {
    if (Errs[I]) {
      Out += "nan,nan,nan\n";
      continue;
    }
    double A = Resp.Predictions[I];
    double B = I < Resp.ComparePredictions.size() ? Resp.ComparePredictions[I]
                                                  : 0.0;
    Out += formatString("%.17g,%.17g,%.6g\n", A, B, B != 0 ? A / B : 0.0);
  }
  return Out;
}

std::string serving::renderPredictJsonl(const PredictResponse &Resp) {
  std::vector<const std::string *> Errs = rowErrorIndex(Resp);
  std::string Out;
  for (size_t I = 0; I < Resp.Predictions.size(); ++I) {
    if (Errs[I]) {
      // Json::string handles the escaping the raw printf path cannot.
      Out += formatString("{\"request\": %zu, \"error\": %s}\n", I,
                          Json::string(*Errs[I]).dump().c_str());
      continue;
    }
    Out += formatString("{\"request\": %zu, \"prediction\": %.17g}\n", I,
                        Resp.Predictions[I]);
  }
  return Out;
}

std::string serving::renderRowsCsv(const ParameterSpace &Space,
                                   const std::vector<DesignPoint> &Rows) {
  std::string Out;
  for (size_t I = 0; I < Space.size(); ++I)
    Out += formatString("%s%s", I ? "," : "", Space.param(I).Name.c_str());
  Out += "\n";
  for (const DesignPoint &P : Rows) {
    for (size_t J = 0; J < P.size(); ++J)
      Out += formatString("%s%lld", J ? "," : "",
                          static_cast<long long>(P[J]));
    Out += "\n";
  }
  return Out;
}
