//===- serving/PredictSchema.h - msem.predict.v1 wire schema -----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned prediction request/response schema shared by the batch
/// CLI (tools/msem_predict) and the network server (tools/msem_serve).
/// One parser and one set of serializers means the two front ends cannot
/// drift: a row predicted over HTTP and the same row predicted from a CSV
/// file produce bitwise-identical bytes.
///
/// Request document ("msem.predict.v1"):
///
///   {
///     "schema":  "msem.predict.v1",
///     "model":   "art,train,cycles,rbf,joint",   // CLI --key spec
///     "rows":    [[...], [...]],                 // raw parameter values
///     "options": {                               // all optional
///       "format":  "json" | "csv" | "jsonl",     // response rendering
///       "compare": "<platform>"                  // cross-platform mode
///     }
///   }
///
/// Response document (format "json"):
///
///   {
///     "schema": "msem.predict.v1",
///     "model":  "<artifact id>",
///     "build":  "<buildStamp of the serving binary>",
///     "metric": "cycles",
///     "predictions": [{"row": 0, "prediction": 4.2e6}, ...],
///     "errors":      [{"row": 3, "error": "..."}, ...],   // absent if none
///     "compare": {"platform": "...", "predictions": [...],
///                 "ratios": [...]}                        // compare mode
///   }
///
/// Formats "csv" and "jsonl" render exactly the bytes the CLI has always
/// written for CSV and JSON-lines inputs -- that is the serve-smoke
/// bitwise-identity contract, so the renderers live here and nowhere else.
/// Doubles are serialized with 17 significant digits everywhere (the Json
/// DOM's convention), so every IEEE-754 prediction round-trips exactly.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SERVING_PREDICTSCHEMA_H
#define MSEM_SERVING_PREDICTSCHEMA_H

#include "registry/ModelArtifact.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace msem {
namespace serving {

/// The schema tag this build reads and writes.
constexpr const char *kPredictSchemaV1 = "msem.predict.v1";

/// Response renderings a request may ask for.
enum class PredictFormat { Json, Csv, Jsonl };

/// One parsed prediction request.
struct PredictRequest {
  ModelKey Key;
  std::vector<DesignPoint> Rows;
  PredictFormat Format = PredictFormat::Json;
  std::string ComparePlatform; ///< "" = single-platform mode.
};

/// One failed row (index into the request's rows).
struct RowError {
  size_t Row;
  std::string Error;
};

/// One computed prediction response, ready to render in any format.
struct PredictResponse {
  std::string ModelId;          ///< Served artifact id.
  std::string Build;            ///< buildStamp() of the serving process.
  ResponseMetric Metric = ResponseMetric::Cycles;
  std::string Platform;         ///< Served artifact's platform.
  std::vector<double> Predictions;
  std::vector<RowError> Errors; ///< Rows rejected before prediction.
  // --- Cross-platform (Table 5/7) mode -----------------------------------
  std::string ComparePlatform;  ///< "" = absent.
  std::vector<double> ComparePredictions;
};

// --- Key specs -------------------------------------------------------------

/// "workload,input,metric,technique[,platform]" -> ModelKey (the CLI --key
/// grammar; also the request document's "model" field).
bool parseKeySpec(const std::string &Spec, ModelKey &Out, std::string &Error);

/// The inverse: a ModelKey rendered back into the 5-field spec form.
std::string keySpec(const ModelKey &Key);

// --- Request parsing -------------------------------------------------------

/// Parses a msem.predict.v1 request document. Returns false with a
/// diagnostic on schema mismatch, unknown key fields, absent/ragged rows
/// or a malformed options block.
bool parsePredictRequest(const Json &Doc, PredictRequest &Out,
                         std::string &Error);

/// Builds the request document for \p Req (what --emit-request writes and
/// every load-generator client posts).
Json serializePredictRequest(const PredictRequest &Req);

/// Parses request rows from CSV-with-header or JSON-lines text (the CLI's
/// --in file formats, '-'-compatible). \p FromJsonl reports which form was
/// detected so the CLI can keep its historical output selection.
bool parseRowsText(const std::string &Text, std::vector<DesignPoint> &Rows,
                   bool &FromJsonl, std::string &Error);

// --- Response rendering ----------------------------------------------------

/// The JSON response document (format "json").
Json serializePredictResponse(const PredictResponse &Resp);

/// Format "csv": the CLI's CSV rendering, byte-for-byte -- the
/// "predicted_<metric>" header then one %.17g value per line; compare
/// mode emits the two-platform header and %.17g,%.17g,%.6g rows. Rows
/// rejected in tolerant mode (present in Resp.Errors) render as "nan"
/// cells so a client can never mistake them for a real 0 prediction
/// (the strict CLI never produces them, so CLI bytes are unchanged).
std::string renderPredictCsv(const PredictResponse &Resp);

/// Format "jsonl": the CLI's JSON-lines rendering, byte-for-byte --
/// {"request": N, "prediction": %.17g} per row; tolerant-mode rejected
/// rows render as {"request": N, "error": "..."} instead.
std::string renderPredictJsonl(const PredictResponse &Resp);

/// A request CSV (parameter-name header + raw rows) for --gen and the
/// load generator.
std::string renderRowsCsv(const ParameterSpace &Space,
                          const std::vector<DesignPoint> &Rows);

} // namespace serving
} // namespace msem

#endif // MSEM_SERVING_PREDICTSCHEMA_H
