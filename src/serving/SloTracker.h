//===- serving/SloTracker.h - RED metrics and SLO burn rates ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's RED/SLO engine: every request outcome (endpoint,
/// model, status, latency) is recorded once here, and fans out to three
/// consumers:
///
///   * RED telemetry -- per-(endpoint, model) request counters, error
///     counters by status class, and latency histograms, registered under
///     "red.*" names the OpenMetrics renderer maps to multi-label
///     families (msem_red_requests{endpoint=,model=}, msem_red_errors{
///     endpoint=,model=,class=}, msem_red_latency_us{endpoint=,model=}).
///     OpenMetrics text has no exemplar syntax our validator accepts, so
///     exemplar trace ids live in the /sloz JSON instead.
///
///   * SLO burn rates -- multi-window (60s / 300s / 1800s / all-time)
///     error-budget burn, the Google SRE multi-window multi-burn-rate
///     alerting shape. Both objectives share one "good fraction" target
///     (Options::AvailabilityObjective): availability burn counts 5xx
///     responses as bad, latency burn counts responses slower than
///     Options::LatencyObjectiveMs as bad, and burn rate is
///     bad_fraction / (1 - objective) -- 1.0 means "burning the budget
///     exactly at the sustainable rate", 14.4 is the classic page
///     threshold. Rendered by renderSloz() as a "msem.sloz.v1" document
///     (the /sloz endpoint) and by msem_report --slo as a table.
///
///   * Access log -- one structured "msem.access.v1" JSONL object per
///     request appended to Options::AccessLogPath (MSEM_ACCESS_LOG),
///     carrying the exemplar trace id that links a log line back to its
///     span tree.
///
/// record() is mutex-guarded and self-measuring: cumulative nanoseconds
/// spent inside it are exposed (selfNs) so bench_serve_load can assert
/// the engine stays under its overhead budget on the closed-loop path.
/// The per-second ring windows always update; the red.* registry fan-out
/// is gated on telemetry::enabled() so a sink-less server pays only for
/// what /sloz itself needs.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SERVING_SLOTRACKER_H
#define MSEM_SERVING_SLOTRACKER_H

#include "support/Json.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace msem {
namespace serving {

/// The access-log wire-format version this build writes.
inline constexpr const char *kAccessLogSchema = "msem.access.v1";
/// The /sloz document version this build renders.
inline constexpr const char *kSlozSchema = "msem.sloz.v1";

/// Burn-rate windows, seconds, ascending. The largest bounds the
/// per-key ring size.
inline constexpr std::array<int, 3> kSloWindowsSeconds = {60, 300, 1800};

class SloTracker {
public:
  struct Options {
    /// Latency objective: a request slower than this is "bad" for the
    /// latency SLO (--slo-latency-ms).
    double LatencyObjectiveMs = 100.0;
    /// Good-fraction objective shared by both SLOs, in (0, 1)
    /// (--slo-availability): 0.999 = "99.9% of requests are good".
    double AvailabilityObjective = 0.999;
    /// "msem.access.v1" JSONL append path ("" = no access log).
    std::string AccessLogPath;
  };

  /// One request outcome.
  struct Sample {
    std::string Method;   ///< "POST", "GET", ...
    std::string Endpoint; ///< "/v1/predict", "/v1/models", "(parse)".
    std::string Model;    ///< Artifact id ("" when not model-scoped).
    int Status = 200;
    uint64_t Rows = 0;      ///< Prediction rows carried (0 otherwise).
    double LatencyUs = 0.0; ///< Wall time serving the request.
    uint64_t TraceId = 0;   ///< Exemplar span trace id (0 = none).
  };

  /// Aggregates over one burn window (or all time).
  struct WindowStats {
    int WindowSeconds = 0; ///< 0 = all time.
    uint64_t Requests = 0;
    uint64_t Errors5xx = 0;
    uint64_t Slow = 0;
    /// bad_fraction / (1 - objective); 0 when the window saw no requests.
    double AvailabilityBurn = 0.0;
    double LatencyBurn = 0.0;
  };

  /// Everything known about one (endpoint, model) key.
  struct KeyReport {
    std::string Endpoint;
    std::string Model;
    uint64_t Requests = 0;
    uint64_t Errors4xx = 0;
    uint64_t Errors5xx = 0;
    uint64_t Slow = 0;
    double LatencyP50Us = 0.0;
    double LatencyP95Us = 0.0;
    double LatencyP99Us = 0.0;
    double LatencyMaxUs = 0.0;
    /// Most recent bad (error or slow) request's trace id, 0 when none.
    uint64_t ExemplarTraceId = 0;
    std::vector<WindowStats> Windows; ///< kSloWindowsSeconds order...
    WindowStats AllTime;              ///< ...plus the unwindowed totals.
  };

  explicit SloTracker(Options O);
  ~SloTracker();

  SloTracker(const SloTracker &) = delete;
  SloTracker &operator=(const SloTracker &) = delete;

  /// Records one request outcome: ring windows, totals, the red.*
  /// telemetry fan-out and the access-log line. Thread-safe.
  void record(const Sample &S);

  /// Deterministically ordered (endpoint, then model) report over every
  /// key seen. Thread-safe.
  std::vector<KeyReport> report() const;

  /// The "msem.sloz.v1" JSON document /sloz serves.
  Json renderSloz() const;

  /// Cumulative nanoseconds spent inside record() and the number of
  /// samples, for the bench overhead gate.
  uint64_t selfNs() const;
  uint64_t sampleCount() const;

  const Options &options() const { return Opts; }

  /// Replaces the wall clock (unix seconds) record()/report() use -- the
  /// window tests drive time by hand. nullptr restores the real clock.
  void setClockForTest(std::function<int64_t()> Clock);

private:
  /// Latency histogram bounds, microseconds (overflow bucket implicit).
  static constexpr std::array<double, 8> kLatencyBoundsUs = {
      100, 500, 1000, 5000, 10000, 50000, 100000, 1000000};

  /// One second of one key's traffic. The ring holds the last
  /// kSloWindowsSeconds.back() seconds; a slot is lazily reset when its
  /// second moves on.
  struct Slot {
    int64_t Second = -1;
    uint32_t Requests = 0;
    uint32_t Errors5xx = 0;
    uint32_t Slow = 0;
  };

  struct KeyState {
    uint64_t Requests = 0;
    uint64_t Errors4xx = 0;
    uint64_t Errors5xx = 0;
    uint64_t Slow = 0;
    double LatencyMaxUs = 0.0;
    std::array<uint64_t, kLatencyBoundsUs.size() + 1> LatencyBuckets{};
    uint64_t ExemplarTraceId = 0;
    std::vector<Slot> Ring;
    KeyState() : Ring(static_cast<size_t>(kSloWindowsSeconds.back())) {}
  };

  int64_t nowSeconds() const;
  void appendAccessLine(const Sample &S, int64_t UnixMs);

  Options Opts;
  mutable std::mutex Mutex;
  /// Key: (endpoint, model) -- std::map for deterministic report order.
  std::map<std::pair<std::string, std::string>, KeyState> Keys;
  std::function<int64_t()> Clock; ///< nullptr = ::time.
  std::FILE *AccessLog = nullptr; ///< Lazily opened append stream.
  bool AccessLogFailed = false;   ///< Open failed; warned once.
  uint64_t SelfNs = 0;
  uint64_t Samples = 0;
};

} // namespace serving
} // namespace msem

#endif // MSEM_SERVING_SLOTRACKER_H
