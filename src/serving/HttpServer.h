//===- serving/HttpServer.h - Thread-per-core epoll HTTP server --*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The networked transport under tools/msem_serve: a dependency-free
/// HTTP/1.1 server generalizing the loopback StatsServer transport from
/// one-thread/one-request to a thread-per-core epoll event loop.
///
/// Architecture:
///
///   * One shared non-blocking listen socket; N loop threads each own a
///     private epoll instance and register the listen fd EPOLLEXCLUSIVE,
///     so the kernel wakes exactly one loop per pending accept (no
///     thundering herd, no accept lock).
///
///   * Each accepted connection belongs to exactly one loop: its parser
///     state, write buffer and idle clock are thread-local to that loop,
///     so the hot path takes no locks at all.
///
///   * Per-connection state machine: EPOLLIN -> read until EAGAIN -> feed
///     the shared HttpParser -> on Complete, dispatch through the shared
///     HttpRouter and serialize with the shared serializer (identical
///     bytes to the loopback plane); pipelined requests drain in one
///     pass. Partial writes park the remainder and arm EPOLLOUT;
///     keep-alive connections rearm for the next request; an idle sweep
///     (epoll_wait timeout) closes connections quiet past IdleTimeoutMs.
///     Write backpressure: once MaxPendingOutBytes of responses sit
///     unsent, the connection stops reading and dispatching (EPOLLIN
///     dropped, TCP flow control pushes back on the peer) until the
///     buffer drains, so pipelining clients that never read responses
///     are bounded per connection.
///
///   * Handlers run inline on loop threads. Blocking handlers are
///     expected -- prediction handlers park on the admission queue -- and
///     that is exactly what makes request coalescing work: concurrent
///     loop threads pile onto the same per-model queue and one of them
///     predicts for all.
///
///   * stop() writes an eventfd every loop polls; loops close their
///     connections and exit, then start()'s listener closes. Zero
///     sockets leak across a stop/start cycle.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_SERVING_HTTPSERVER_H
#define MSEM_SERVING_HTTPSERVER_H

#include "support/Http.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace msem {
namespace serving {

class SloTracker;

class HttpServer {
public:
  struct Options {
    std::string Host = "127.0.0.1";
    int Port = 0; ///< 0 = kernel-assigned (port() reports it).
    int Threads = 2;
    int IdleTimeoutMs = 30000;
    size_t MaxConnectionsPerLoop = 4096;
    /// Write-backpressure high-water mark: once this many response bytes
    /// are queued unsent on a connection, request dispatch (and socket
    /// reads) pause until the buffer drains, so a client that pipelines
    /// requests without reading responses cannot grow memory unboundedly.
    size_t MaxPendingOutBytes = 1 << 20;
    HttpParser::Limits Limits;
    /// When set, transport-level failures the router never sees -- parse
    /// errors -- are recorded as RED samples under endpoint "(parse)"
    /// (handlers record their own endpoints). Not owned; must outlive
    /// the server.
    SloTracker *Slo = nullptr;
  };

  struct Stats {
    uint64_t Accepted = 0;
    uint64_t Requests = 0;
    uint64_t ParseErrors = 0;
    uint64_t TimedOut = 0;
  };

  /// Serves \p Router (not owned; must outlive the server).
  HttpServer(HttpRouter &Router, Options Opts);
  ~HttpServer();

  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Binds, listens and starts the loop threads. False + \p Error on any
  /// socket failure (port taken, bad host, ...).
  bool start(std::string *Error = nullptr);

  /// Stops every loop and joins. Idempotent.
  void stop();

  bool running() const { return Running.load(); }
  /// The bound port (resolves Options::Port == 0), 0 before start().
  int port() const { return BoundPort; }
  const Options &options() const { return Opts; }
  Stats stats() const;

private:
  struct Conn;
  struct Loop;

  void runLoop(Loop &L);
  void handleAccept(Loop &L);
  void handleConn(Loop &L, Conn &C, uint32_t Events);
  /// Parses + dispatches everything buffered on \p C; queues response
  /// bytes. Pauses (backpressure) once the unsent output exceeds
  /// MaxPendingOutBytes. Returns false when the connection must close
  /// once drained.
  bool serviceRequests(Loop &L, Conn &C);
  /// Flushes C's write buffer; arms EPOLLOUT on a partial write and
  /// resumes paused dispatch once the buffer drains. Returns false when
  /// the connection is done (error or drained-and-closing).
  bool flushWrites(Loop &L, Conn &C);
  /// Re-arms C's epoll interest from its Paused/WantWrite state.
  void updateInterest(Loop &L, Conn &C);
  void closeConn(Loop &L, Conn &C);
  void sweepIdle(Loop &L);

  HttpRouter &Router;
  Options Opts;

  int ListenFd = -1;
  int WakeFd = -1; ///< eventfd; stop() signals it, every loop polls it.
  int BoundPort = 0;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};

  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<std::thread> Threads;

  mutable std::atomic<uint64_t> StatAccepted{0}, StatRequests{0},
      StatParseErrors{0}, StatTimedOut{0};
};

} // namespace serving
} // namespace msem

#endif // MSEM_SERVING_HTTPSERVER_H
