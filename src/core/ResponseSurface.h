//===- core/ResponseSurface.h - Design point -> cycles -------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate behind the empirical models: a design point
/// (compiler settings + microarchitecture) is turned into a binary by the
/// optimizer/codegen and its execution time measured on the cycle-level
/// simulator, SMARTS-accelerated. Responses are memoized in memory and,
/// optionally, in a CSV cache on disk so that repeated experiment runs are
/// incremental ("each design point may correspond to a different program
/// binary" -- so each measurement includes a full recompile).
///
/// measureAll fans the compile+simulate of distinct unmeasured points
/// across the global thread pool; each point's response is a pure function
/// of the point (workload generation and SMARTS sampling are deterministic
/// and re-entrant), so results are bitwise identical to a sequential run
/// regardless of MSEM_THREADS. The in-memory memo is mutex-guarded; the
/// disk cache is rewritten atomically (temp file + rename) and its loader
/// tolerates partial or concurrently-written files.
///
/// Fault tolerance: long campaigns must survive flaky measurements. The
/// MSEM_FAULT_RATE test hook injects deterministic per-(point, attempt)
/// failures into the measurement path, and a FaultPolicy decides whether a
/// failed attempt is retried (with exponential backoff), skipped and
/// recorded, or aborts the batch with a structured error in the
/// MeasurementReport -- never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CORE_RESPONSESURFACE_H
#define MSEM_CORE_RESPONSESURFACE_H

#include "design/ParameterSpace.h"
#include "sampling/Smarts.h"
#include "workloads/Workloads.h"

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace msem {

/// Which response the surface measures (the paper's Section 2.2 remark:
/// "models can also be built for other metrics such as power consumption
/// or code size").
enum class ResponseMetric {
  Cycles,          ///< Execution time (the paper's primary response).
  EnergyNanojoules,///< Event-based energy (always fully detailed).
  CodeBytes,       ///< Static code size (no simulation at all).
};

const char *responseMetricName(ResponseMetric Metric);

/// Parses the responseMetricName form back ("cycles"/"energy"/"codesize").
/// Returns false on an unknown name, leaving \p Out untouched.
bool responseMetricFromName(const std::string &Name, ResponseMetric &Out);

/// What to do when a single measurement attempt fails.
enum class FaultAction {
  /// Re-attempt with exponential backoff, up to MaxAttempts. A point that
  /// exhausts its attempts aborts the batch with a structured error:
  /// retrying callers never opted into losing design points, so
  /// exhaustion is never silently degraded into Skip.
  Retry,
  Skip,  ///< Record the point as skipped (NaN response) and continue.
  Abort, ///< Stop the batch; the report carries a structured error.
};

const char *faultActionName(FaultAction Action);

/// How ResponseSurface handles measurement failures. Today the only
/// failure source is the MSEM_FAULT_RATE injection hook (real compiles
/// and simulations are deterministic), but the policy machinery is what a
/// campaign on real hardware would need verbatim.
struct FaultPolicy {
  FaultAction OnFault = FaultAction::Retry;
  /// Total attempts per point under Retry (>= 1).
  int MaxAttempts = 8;
  /// First retry waits this long, doubling per attempt (0 = no backoff;
  /// injected faults are instant, so tests keep this at 0).
  unsigned BackoffBaseMicros = 0;
  /// Injected-fault probability in [0, 1]; negative means "use the
  /// MSEM_FAULT_RATE environment default". The decision is a pure hash of
  /// (point, attempt), so injection is reproducible across runs, thread
  /// counts and process restarts.
  double InjectRate = -1.0;
};

/// Outcome of one measureAll batch beyond the response vector.
struct MeasurementReport {
  /// Indices into the request vector whose measurement was skipped (their
  /// response slot is NaN). Only non-empty under FaultAction::Skip.
  std::vector<size_t> SkippedIndices;
  /// Injected faults encountered across all attempts.
  size_t FaultsInjected = 0;
  /// Attempts beyond the first, summed over all points.
  size_t Retries = 0;
  /// True when the batch stopped: FaultAction::Abort hit a fault, or a
  /// Retry policy exhausted MaxAttempts on some point. Error says why.
  bool Aborted = false;
  std::string Error;

  bool ok() const { return !Aborted && SkippedIndices.empty(); }
};

/// The outcome of measuring one design point under the fault policy: the
/// unit of work a distributed campaign ships between processes. Because a
/// measurement -- injected faults included -- is a pure function of
/// (point, attempt), an outcome computed by a worker process is bitwise
/// identical to one computed in-process, which is what lets a coordinator
/// splice remote outcomes into measureAll's reduction unchanged.
struct PointOutcome {
  double Value = 0; ///< The response; meaningful only when Ok.
  bool Ok = false;  ///< False when the policy gave up on the point.
  size_t Faults = 0;  ///< Injected faults across this point's attempts.
  size_t Retries = 0; ///< Attempts beyond the first.
  /// Optional failure context (e.g. "worker 2 died 3 times"). When a
  /// failed outcome carries one, measureAll's abort diagnostic uses it
  /// verbatim; empty failures keep the classic per-point messages.
  std::string Error;
};

/// Compiles one workload at the given settings into a linked binary
/// (pass pipeline + codegen flags derived from the config).
MachineProgram compileWorkloadBinary(const std::string &Workload,
                                     InputSet Input,
                                     const OptimizationConfig &Config);

/// FNV-1a over the raw level values: the memo key on the hottest path
/// (replaces the formatted-string key, which allocated per lookup).
struct DesignPointHash {
  size_t operator()(const DesignPoint &Point) const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (int64_t V : Point) {
      H ^= static_cast<uint64_t>(V);
      H *= 0x100000001b3ull;
    }
    return static_cast<size_t>(H);
  }
};

/// Measures cycles for (workload, input) across design points.
class ResponseSurface {
public:
  struct Options {
    std::string Workload = "art";
    InputSet Input = InputSet::Train;
    ResponseMetric Metric = ResponseMetric::Cycles;
    bool UseSmarts = true;
    SmartsConfig Smarts = makeDefaultSmarts();
    /// Directory for the persistent response cache ("" = memory only).
    std::string CacheDir;
    /// Rewrite the disk cache after every measurement batch. Campaigns
    /// that checkpoint turn this off and call flush() at checkpoint time,
    /// so the cache file and the checkpoint referencing it stay in step.
    bool AutoFlush = true;
    /// Failure handling for the measurement path.
    FaultPolicy Faults;
    /// Distributed-measurement delegate. When set, measureAll hands each
    /// batch's distinct unmeasured points here instead of simulating them
    /// on the local thread pool; the returned outcomes (one per point, in
    /// order) feed the exact same reduction, memoization and fault
    /// handling as local measurement. The bitwise contract: the delegate
    /// must return what measureOutcomes would have returned in-process
    /// (campaign/Coordinator.h satisfies it by running measureOutcomes in
    /// worker processes). Never serialized.
    std::function<std::vector<PointOutcome>(
        const std::vector<DesignPoint> &)>
        Remote;

    static SmartsConfig makeDefaultSmarts() {
      SmartsConfig S;
      S.WindowSize = 1000;
      // The paper samples 1/1000 of billion-instruction SPEC runs; our
      // workloads are a few million instructions, so a denser default
      // keeps the estimator inside the same <1% error regime.
      S.SamplingInterval = 25;
      S.DetailedWarmupWindows = 1;
      return S;
    }
  };

  ResponseSurface(const ParameterSpace &Space, Options Opts);
  ~ResponseSurface();

  /// The configured response (cycles / energy / code size) at one design
  /// point. Thread-safe; concurrent callers of the same point may both
  /// simulate but always agree on the result. Under fault injection this
  /// retries per the policy and aborts fatally if the policy gives up; use
  /// measureAll with a report for structured failure handling.
  double measure(const DesignPoint &Point);

  /// Measures many points (with memoization). Distinct unmeasured points
  /// are compiled and simulated in parallel on the global thread pool.
  /// With \p Report, measurement failures are returned structurally:
  /// skipped points get NaN responses and their indices are listed, and an
  /// aborted batch sets Report->Aborted instead of crashing. Without a
  /// report, any unrecovered failure is fatal (the legacy contract).
  std::vector<double> measureAll(const std::vector<DesignPoint> &Points,
                                 MeasurementReport *Report = nullptr);

  /// Measures \p Points under the fault policy and returns per-point
  /// outcomes without consulting or touching the memo: the distributed
  /// worker's primitive. Points are simulated in parallel on the global
  /// thread pool; each outcome (value, injected faults, retries, success)
  /// is a pure function of its point, so outcomes computed here equal the
  /// ones a single-process measureAll would derive for the same
  /// first-time-measured points. Callers pass distinct points; duplicates
  /// are measured (not deduplicated) and simply cost extra simulations.
  std::vector<PointOutcome>
  measureOutcomes(const std::vector<DesignPoint> &Points) const;

  /// Seeds the in-memory memo with externally known responses (e.g. from a
  /// campaign checkpoint). Preloaded values count as neither simulations
  /// nor cache hits; they behave exactly like rows loaded from disk.
  void preload(const std::vector<DesignPoint> &Points,
               const std::vector<double> &Values);

  /// Snapshot of every memoized (point, response) pair, sorted by point
  /// for deterministic serialization.
  std::vector<std::pair<DesignPoint, double>> snapshot() const;

  /// Persists the memo to the disk cache (temp file + atomic rename),
  /// merging with whatever another process wrote in the meantime. Called
  /// automatically after each measurement batch while Options::AutoFlush
  /// is set, and always on destruction.
  void flush();

  /// Absolute or cwd-relative path of the disk-cache file this surface
  /// reads and rewrites ("" when the surface is memory-only). Campaign
  /// checkpoints record this path so a resume can verify the cache it
  /// depends on still exists.
  const std::string &cachePath() const { return CacheFile; }

  size_t simulationsRun() const;
  size_t cacheHits() const;
  const Options &options() const { return Opts; }
  const ParameterSpace &space() const { return Space; }

private:
  /// The compile+simulate kernel: a pure function of the point. Served by
  /// the two-level fast path: the per-flag-vector binary cache (level 1,
  /// compile once per distinct flag vector) and the process-global
  /// retired-trace replay cache (level 2, functional-execute once per
  /// distinct flag vector; see uarch/TraceCache.h). Both levels return
  /// bitwise-identical responses to the uncached pipeline.
  double computeResponse(const DesignPoint &Point) const;

  /// Level 1: the compiled binary for \p Point's compiler coordinates.
  /// Concurrent callers of the same flag vector share one compile
  /// (std::call_once); the cache is FIFO-bounded.
  std::shared_ptr<const MachineProgram>
  compiledBinary(const DesignPoint &Point) const;

  /// Level-2 cache key: (workload, version, input, compiler coordinates).
  /// Machine coordinates, the metric and the sampling scheme are excluded
  /// -- the retired-instruction stream does not depend on them -- so all
  /// surfaces over the same program share one trace.
  std::string traceKeyFor(const DesignPoint &Point) const;

  /// One fault-aware measurement: attempts computeResponse under the
  /// configured policy. Returns true on success; on failure returns false
  /// with \p Value untouched. \p Faults and \p Retries accumulate this
  /// point's injection statistics (the caller aggregates them).
  bool measureWithPolicy(const DesignPoint &Point, double &Value,
                         size_t &Faults, size_t &Retries) const;

  /// Disk-cache line key for one point: the surface prefix plus the raw
  /// level values.
  std::string diskKeyFor(const DesignPoint &Point) const;
  void loadDiskCache();

  const ParameterSpace &Space;
  Options Opts;
  /// Resolved injection probability (Options.Faults.InjectRate, with the
  /// environment default applied).
  double FaultRate = 0.0;
  /// Identifies this surface's rows in the shared on-disk cache.
  std::string DiskKeyPrefix;
  /// Prefix of the trace-cache key (workload, version, input).
  std::string TraceKeyPrefix;
  std::string CacheFile;

  /// Level-1 binary cache: flag-vector coordinates -> once-compiled
  /// binary. Defined in the .cpp (holds a std::once_flag).
  struct CompiledBinary;
  mutable std::mutex BinaryMutex; ///< Guards the two members below.
  mutable std::unordered_map<DesignPoint, std::shared_ptr<CompiledBinary>,
                             DesignPointHash>
      BinaryCache;
  mutable std::deque<DesignPoint> BinaryOrder; ///< FIFO eviction order.

  mutable std::mutex CacheMutex; ///< Guards the four members below.
  std::unordered_map<DesignPoint, double, DesignPointHash> Cache;
  size_t Simulations = 0;
  size_t CacheHits = 0;
  bool DiskDirty = false;
};

} // namespace msem

#endif // MSEM_CORE_RESPONSESURFACE_H
