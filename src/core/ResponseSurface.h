//===- core/ResponseSurface.h - Design point -> cycles -------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate behind the empirical models: a design point
/// (compiler settings + microarchitecture) is turned into a binary by the
/// optimizer/codegen and its execution time measured on the cycle-level
/// simulator, SMARTS-accelerated. Responses are memoized in memory and,
/// optionally, in a CSV cache on disk so that repeated experiment runs are
/// incremental ("each design point may correspond to a different program
/// binary" -- so each measurement includes a full recompile).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CORE_RESPONSESURFACE_H
#define MSEM_CORE_RESPONSESURFACE_H

#include "design/ParameterSpace.h"
#include "sampling/Smarts.h"
#include "workloads/Workloads.h"

#include <string>
#include <unordered_map>

namespace msem {

/// Which response the surface measures (the paper's Section 2.2 remark:
/// "models can also be built for other metrics such as power consumption
/// or code size").
enum class ResponseMetric {
  Cycles,          ///< Execution time (the paper's primary response).
  EnergyNanojoules,///< Event-based energy (always fully detailed).
  CodeBytes,       ///< Static code size (no simulation at all).
};

const char *responseMetricName(ResponseMetric Metric);

/// Compiles one workload at the given settings into a linked binary
/// (pass pipeline + codegen flags derived from the config).
MachineProgram compileWorkloadBinary(const std::string &Workload,
                                     InputSet Input,
                                     const OptimizationConfig &Config);

/// Measures cycles for (workload, input) across design points.
class ResponseSurface {
public:
  struct Options {
    std::string Workload = "art";
    InputSet Input = InputSet::Train;
    ResponseMetric Metric = ResponseMetric::Cycles;
    bool UseSmarts = true;
    SmartsConfig Smarts = makeDefaultSmarts();
    /// Directory for the persistent response cache ("" = memory only).
    std::string CacheDir;

    static SmartsConfig makeDefaultSmarts() {
      SmartsConfig S;
      S.WindowSize = 1000;
      // The paper samples 1/1000 of billion-instruction SPEC runs; our
      // workloads are a few million instructions, so a denser default
      // keeps the estimator inside the same <1% error regime.
      S.SamplingInterval = 25;
      S.DetailedWarmupWindows = 1;
      return S;
    }
  };

  ResponseSurface(const ParameterSpace &Space, Options Opts);

  /// The configured response (cycles / energy / code size) at one design
  /// point.
  double measure(const DesignPoint &Point);

  /// Measures many points (with memoization).
  std::vector<double> measureAll(const std::vector<DesignPoint> &Points);

  size_t simulationsRun() const { return Simulations; }
  size_t cacheHits() const { return CacheHits; }
  const Options &options() const { return Opts; }
  const ParameterSpace &space() const { return Space; }

private:
  std::string keyFor(const DesignPoint &Point) const;
  void loadDiskCache();
  void appendDiskCache(const std::string &Key, double Cycles);

  const ParameterSpace &Space;
  Options Opts;
  std::unordered_map<std::string, double> Cache;
  std::string CacheFile;
  size_t Simulations = 0;
  size_t CacheHits = 0;
};

} // namespace msem

#endif // MSEM_CORE_RESPONSESURFACE_H
