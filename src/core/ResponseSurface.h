//===- core/ResponseSurface.h - Design point -> cycles -------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate behind the empirical models: a design point
/// (compiler settings + microarchitecture) is turned into a binary by the
/// optimizer/codegen and its execution time measured on the cycle-level
/// simulator, SMARTS-accelerated. Responses are memoized in memory and,
/// optionally, in a CSV cache on disk so that repeated experiment runs are
/// incremental ("each design point may correspond to a different program
/// binary" -- so each measurement includes a full recompile).
///
/// measureAll fans the compile+simulate of distinct unmeasured points
/// across the global thread pool; each point's response is a pure function
/// of the point (workload generation and SMARTS sampling are deterministic
/// and re-entrant), so results are bitwise identical to a sequential run
/// regardless of MSEM_THREADS. The in-memory memo is mutex-guarded; the
/// disk cache is rewritten atomically (temp file + rename) and its loader
/// tolerates partial or concurrently-written files.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CORE_RESPONSESURFACE_H
#define MSEM_CORE_RESPONSESURFACE_H

#include "design/ParameterSpace.h"
#include "sampling/Smarts.h"
#include "workloads/Workloads.h"

#include <mutex>
#include <string>
#include <unordered_map>

namespace msem {

/// Which response the surface measures (the paper's Section 2.2 remark:
/// "models can also be built for other metrics such as power consumption
/// or code size").
enum class ResponseMetric {
  Cycles,          ///< Execution time (the paper's primary response).
  EnergyNanojoules,///< Event-based energy (always fully detailed).
  CodeBytes,       ///< Static code size (no simulation at all).
};

const char *responseMetricName(ResponseMetric Metric);

/// Compiles one workload at the given settings into a linked binary
/// (pass pipeline + codegen flags derived from the config).
MachineProgram compileWorkloadBinary(const std::string &Workload,
                                     InputSet Input,
                                     const OptimizationConfig &Config);

/// FNV-1a over the raw level values: the memo key on the hottest path
/// (replaces the formatted-string key, which allocated per lookup).
struct DesignPointHash {
  size_t operator()(const DesignPoint &Point) const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (int64_t V : Point) {
      H ^= static_cast<uint64_t>(V);
      H *= 0x100000001b3ull;
    }
    return static_cast<size_t>(H);
  }
};

/// Measures cycles for (workload, input) across design points.
class ResponseSurface {
public:
  struct Options {
    std::string Workload = "art";
    InputSet Input = InputSet::Train;
    ResponseMetric Metric = ResponseMetric::Cycles;
    bool UseSmarts = true;
    SmartsConfig Smarts = makeDefaultSmarts();
    /// Directory for the persistent response cache ("" = memory only).
    std::string CacheDir;

    static SmartsConfig makeDefaultSmarts() {
      SmartsConfig S;
      S.WindowSize = 1000;
      // The paper samples 1/1000 of billion-instruction SPEC runs; our
      // workloads are a few million instructions, so a denser default
      // keeps the estimator inside the same <1% error regime.
      S.SamplingInterval = 25;
      S.DetailedWarmupWindows = 1;
      return S;
    }
  };

  ResponseSurface(const ParameterSpace &Space, Options Opts);
  ~ResponseSurface();

  /// The configured response (cycles / energy / code size) at one design
  /// point. Thread-safe; concurrent callers of the same point may both
  /// simulate but always agree on the result.
  double measure(const DesignPoint &Point);

  /// Measures many points (with memoization). Distinct unmeasured points
  /// are compiled and simulated in parallel on the global thread pool.
  std::vector<double> measureAll(const std::vector<DesignPoint> &Points);

  /// Persists the memo to the disk cache (temp file + atomic rename),
  /// merging with whatever another process wrote in the meantime. Called
  /// automatically after each measurement batch and on destruction.
  void flushDiskCache();

  size_t simulationsRun() const;
  size_t cacheHits() const;
  const Options &options() const { return Opts; }
  const ParameterSpace &space() const { return Space; }

private:
  /// The compile+simulate kernel: a pure, re-entrant function of the
  /// point. No surface state is touched.
  double computeResponse(const DesignPoint &Point) const;

  /// Disk-cache line key for one point: the surface prefix plus the raw
  /// level values.
  std::string diskKeyFor(const DesignPoint &Point) const;
  void loadDiskCache();

  const ParameterSpace &Space;
  Options Opts;
  /// Identifies this surface's rows in the shared on-disk cache.
  std::string DiskKeyPrefix;
  std::string CacheFile;

  mutable std::mutex CacheMutex; ///< Guards the four members below.
  std::unordered_map<DesignPoint, double, DesignPointHash> Cache;
  size_t Simulations = 0;
  size_t CacheHits = 0;
  bool DiskDirty = false;
};

} // namespace msem

#endif // MSEM_CORE_RESPONSESURFACE_H
