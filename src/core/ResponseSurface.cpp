//===- core/ResponseSurface.cpp - Design point -> cycles --------------------------===//

#include "core/ResponseSurface.h"

#include "codegen/CodeGenerator.h"
#include "opt/Passes.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"
#include "uarch/EnergyModel.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <unistd.h>
#include <sys/stat.h>

using namespace msem;

const char *msem::responseMetricName(ResponseMetric Metric) {
  switch (Metric) {
  case ResponseMetric::Cycles:
    return "cycles";
  case ResponseMetric::EnergyNanojoules:
    return "energy";
  case ResponseMetric::CodeBytes:
    return "codesize";
  }
  return "?";
}

MachineProgram msem::compileWorkloadBinary(const std::string &Workload,
                                           InputSet Input,
                                           const OptimizationConfig &Config) {
  std::unique_ptr<Module> M = buildWorkload(Workload, Input);
  runPassPipeline(*M, Config);
  CodeGenOptions CG;
  CG.OmitFramePointer = Config.OmitFramePointer;
  CG.PostRaSchedule = Config.ScheduleInsns2;
  return compileToProgram(*M, CG);
}

ResponseSurface::ResponseSurface(const ParameterSpace &Space, Options Opts)
    : Space(Space), Opts(std::move(Opts)) {
  DiskKeyPrefix = this->Opts.Workload;
  DiskKeyPrefix += '|';
  DiskKeyPrefix += workloadVersion();
  DiskKeyPrefix += '|';
  DiskKeyPrefix += inputSetName(this->Opts.Input);
  DiskKeyPrefix += '|';
  DiskKeyPrefix += responseMetricName(this->Opts.Metric);
  DiskKeyPrefix += this->Opts.UseSmarts ? "|s" : "|d";
  if (!this->Opts.CacheDir.empty()) {
    ::mkdir(this->Opts.CacheDir.c_str(), 0755);
    CacheFile = this->Opts.CacheDir + "/responses.csv";
    loadDiskCache();
  }
}

ResponseSurface::~ResponseSurface() { flushDiskCache(); }

size_t ResponseSurface::simulationsRun() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return Simulations;
}

size_t ResponseSurface::cacheHits() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return CacheHits;
}

std::string ResponseSurface::diskKeyFor(const DesignPoint &Point) const {
  std::string Key = DiskKeyPrefix;
  for (int64_t V : Point)
    Key += formatString(",%lld", static_cast<long long>(V));
  return Key;
}

namespace {

/// Parses the ",v1,v2,..." tail of a disk-cache key. Returns false on any
/// malformed coordinate.
bool parsePointSuffix(const char *S, size_t Arity, DesignPoint &Out) {
  Out.clear();
  Out.reserve(Arity);
  while (*S) {
    if (*S != ',')
      return false;
    ++S;
    char *End = nullptr;
    long long V = std::strtoll(S, &End, 10);
    if (End == S)
      return false;
    Out.push_back(V);
    S = End;
  }
  return Out.size() == Arity;
}

} // namespace

void ResponseSurface::loadDiskCache() {
  std::FILE *F = std::fopen(CacheFile.c_str(), "r");
  if (!F)
    return;
  // Tolerant of a concurrently-appended or partially-written file: a line
  // is accepted only when it is newline-terminated (a truncated last line
  // is dropped), splits on ';', carries this surface's prefix and a
  // well-formed point of the right arity, and has a positive value.
  char Line[4096];
  DesignPoint Point;
  while (std::fgets(Line, sizeof(Line), F)) {
    size_t Len = std::strlen(Line);
    if (Len == 0 || Line[Len - 1] != '\n')
      continue;
    Line[--Len] = '\0';
    char *Sep = std::strrchr(Line, ';');
    if (!Sep)
      continue;
    *Sep = '\0';
    if (std::strncmp(Line, DiskKeyPrefix.c_str(), DiskKeyPrefix.size()) != 0)
      continue;
    if (!parsePointSuffix(Line + DiskKeyPrefix.size(), Space.size(), Point))
      continue;
    char *End = nullptr;
    double Value = std::strtod(Sep + 1, &End);
    if (End == Sep + 1 || !(Value > 0))
      continue;
    Cache.emplace(Point, Value);
  }
  std::fclose(F);
}

void ResponseSurface::flushDiskCache() {
  if (CacheFile.empty())
    return;
  // Snapshot our rows, then merge-rewrite outside the memo lock.
  std::map<std::string, double> Rows;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    if (!DiskDirty)
      return;
    for (const auto &[Point, Value] : Cache)
      Rows[diskKeyFor(Point)] = Value;
    DiskDirty = false;
  }
  // Preserve rows belonging to other surfaces (and newer rows from other
  // processes): re-read the current file and overlay ours.
  if (std::FILE *F = std::fopen(CacheFile.c_str(), "r")) {
    char Line[4096];
    while (std::fgets(Line, sizeof(Line), F)) {
      size_t Len = std::strlen(Line);
      if (Len == 0 || Line[Len - 1] != '\n')
        continue;
      Line[--Len] = '\0';
      char *Sep = std::strrchr(Line, ';');
      if (!Sep)
        continue;
      *Sep = '\0';
      char *End = nullptr;
      double Value = std::strtod(Sep + 1, &End);
      if (End == Sep + 1 || !(Value > 0))
        continue;
      Rows.emplace(Line, Value); // Our overlay wins on key collision.
    }
    std::fclose(F);
  }
  // Atomic publish: write a sibling temp file, then rename over. Readers
  // never observe a half-written cache.
  std::string TmpFile =
      CacheFile + formatString(".tmp.%ld", static_cast<long>(::getpid()));
  std::FILE *F = std::fopen(TmpFile.c_str(), "w");
  if (!F)
    return;
  for (const auto &[Key, Value] : Rows)
    std::fprintf(F, "%s;%.17g\n", Key.c_str(), Value);
  std::fclose(F);
  if (std::rename(TmpFile.c_str(), CacheFile.c_str()) != 0)
    std::remove(TmpFile.c_str());
}

double ResponseSurface::computeResponse(const DesignPoint &Point) const {
  OptimizationConfig Opt = Space.toOptimizationConfig(Point);
  MachineConfig Machine = Space.toMachineConfig(Point);
  MachineProgram Prog =
      compileWorkloadBinary(Opts.Workload, Opts.Input, Opt);

  if (Opts.Metric == ResponseMetric::CodeBytes) {
    // Static metric: no simulation.
    return static_cast<double>(Prog.Code.size()) * 4.0;
  }
  if (Opts.Metric == ResponseMetric::EnergyNanojoules) {
    // Energy needs the full event counts: always fully detailed.
    SimulationResult R = simulateDetailed(Prog, Machine);
    if (R.Exec.Trapped)
      fatalError("workload trapped during measurement: " +
                 R.Exec.TrapMessage);
    return estimateEnergyNanojoules(R, Machine);
  }

  if (Opts.UseSmarts) {
    SmartsResult R = simulateSmarts(Prog, Machine, Opts.Smarts);
    if (R.Exec.Trapped)
      fatalError("workload trapped during measurement: " +
                 R.Exec.TrapMessage);
    return static_cast<double>(R.EstimatedCycles);
  }
  SimulationResult R = simulateDetailed(Prog, Machine);
  if (R.Exec.Trapped)
    fatalError("workload trapped during measurement: " +
               R.Exec.TrapMessage);
  return static_cast<double>(R.Cycles);
}

double ResponseSurface::measure(const DesignPoint &Point) {
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Point);
    if (It != Cache.end()) {
      ++CacheHits;
      return It->second;
    }
  }
  double Value = computeResponse(Point);
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto [It, Inserted] = Cache.emplace(Point, Value);
    ++Simulations;
    if (Inserted)
      DiskDirty = true;
    Value = It->second; // A concurrent first writer wins (same number).
  }
  flushDiskCache();
  return Value;
}

std::vector<double>
ResponseSurface::measureAll(const std::vector<DesignPoint> &Points) {
  telemetry::ScopedTimer Span("surface.measure_all");

  // Distinct unmeasured points, in first-occurrence order. Each point's
  // response is a pure function of the point (workload generation, the
  // pass pipeline and SMARTS are all deterministically seeded per point),
  // so the fan-out below is bitwise deterministic.
  std::vector<const DesignPoint *> ToMeasure;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    std::unordered_map<DesignPoint, size_t, DesignPointHash> Pending;
    for (const DesignPoint &P : Points) {
      if (Cache.count(P) || Pending.count(P))
        continue;
      Pending.emplace(P, ToMeasure.size());
      ToMeasure.push_back(&P);
    }
  }

  std::vector<double> Fresh(ToMeasure.size());
  globalThreadPool().parallelFor(
      0, ToMeasure.size(),
      [&](size_t I) { Fresh[I] = computeResponse(*ToMeasure[I]); },
      "measure");

  std::vector<double> Y;
  Y.reserve(Points.size());
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    for (size_t I = 0; I < ToMeasure.size(); ++I)
      Cache.emplace(*ToMeasure[I], Fresh[I]);
    // Sequential counting semantics: the first occurrence of each new
    // point is a simulation, every other lookup is a hit.
    Simulations += ToMeasure.size();
    CacheHits += Points.size() - ToMeasure.size();
    if (!ToMeasure.empty())
      DiskDirty = true;
    for (const DesignPoint &P : Points)
      Y.push_back(Cache.at(P));
  }
  flushDiskCache();
  return Y;
}
