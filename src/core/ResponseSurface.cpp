//===- core/ResponseSurface.cpp - Design point -> cycles --------------------------===//

#include "core/ResponseSurface.h"

#include "codegen/CodeGenerator.h"
#include "opt/Passes.h"
#include "support/Error.h"
#include "support/Format.h"
#include "uarch/EnergyModel.h"

#include <cstdio>
#include <sys/stat.h>

using namespace msem;

const char *msem::responseMetricName(ResponseMetric Metric) {
  switch (Metric) {
  case ResponseMetric::Cycles:
    return "cycles";
  case ResponseMetric::EnergyNanojoules:
    return "energy";
  case ResponseMetric::CodeBytes:
    return "codesize";
  }
  return "?";
}

MachineProgram msem::compileWorkloadBinary(const std::string &Workload,
                                           InputSet Input,
                                           const OptimizationConfig &Config) {
  std::unique_ptr<Module> M = buildWorkload(Workload, Input);
  runPassPipeline(*M, Config);
  CodeGenOptions CG;
  CG.OmitFramePointer = Config.OmitFramePointer;
  CG.PostRaSchedule = Config.ScheduleInsns2;
  return compileToProgram(*M, CG);
}

ResponseSurface::ResponseSurface(const ParameterSpace &Space, Options Opts)
    : Space(Space), Opts(std::move(Opts)) {
  if (!this->Opts.CacheDir.empty()) {
    ::mkdir(this->Opts.CacheDir.c_str(), 0755);
    CacheFile = this->Opts.CacheDir + "/responses.csv";
    loadDiskCache();
  }
}

std::string ResponseSurface::keyFor(const DesignPoint &Point) const {
  std::string Key = Opts.Workload;
  Key += '|';
  Key += workloadVersion();
  Key += '|';
  Key += inputSetName(Opts.Input);
  Key += '|';
  Key += responseMetricName(Opts.Metric);
  Key += Opts.UseSmarts ? "|s" : "|d";
  for (int64_t V : Point)
    Key += formatString(",%lld", static_cast<long long>(V));
  return Key;
}

void ResponseSurface::loadDiskCache() {
  std::FILE *F = std::fopen(CacheFile.c_str(), "r");
  if (!F)
    return;
  char Line[4096];
  while (std::fgets(Line, sizeof(Line), F)) {
    std::string S(Line);
    size_t Sep = S.rfind(';');
    if (Sep == std::string::npos)
      continue;
    std::string Key = S.substr(0, Sep);
    double Cycles = std::strtod(S.c_str() + Sep + 1, nullptr);
    if (Cycles > 0)
      Cache[Key] = Cycles;
  }
  std::fclose(F);
}

void ResponseSurface::appendDiskCache(const std::string &Key,
                                      double Cycles) {
  if (CacheFile.empty())
    return;
  std::FILE *F = std::fopen(CacheFile.c_str(), "a");
  if (!F)
    return;
  std::fprintf(F, "%s;%.1f\n", Key.c_str(), Cycles);
  std::fclose(F);
}

double ResponseSurface::measure(const DesignPoint &Point) {
  std::string Key = keyFor(Point);
  auto It = Cache.find(Key);
  if (It != Cache.end()) {
    ++CacheHits;
    return It->second;
  }

  OptimizationConfig Opt = Space.toOptimizationConfig(Point);
  MachineConfig Machine = Space.toMachineConfig(Point);
  MachineProgram Prog =
      compileWorkloadBinary(Opts.Workload, Opts.Input, Opt);

  if (Opts.Metric == ResponseMetric::CodeBytes) {
    // Static metric: no simulation.
    double Bytes = static_cast<double>(Prog.Code.size()) * 4.0;
    ++Simulations;
    Cache[Key] = Bytes;
    appendDiskCache(Key, Bytes);
    return Bytes;
  }
  if (Opts.Metric == ResponseMetric::EnergyNanojoules) {
    // Energy needs the full event counts: always fully detailed.
    SimulationResult R = simulateDetailed(Prog, Machine);
    if (R.Exec.Trapped)
      fatalError("workload trapped during measurement: " +
                 R.Exec.TrapMessage);
    double Nj = estimateEnergyNanojoules(R, Machine);
    ++Simulations;
    Cache[Key] = Nj;
    appendDiskCache(Key, Nj);
    return Nj;
  }

  double Cycles;
  if (Opts.UseSmarts) {
    SmartsResult R = simulateSmarts(Prog, Machine, Opts.Smarts);
    if (R.Exec.Trapped)
      fatalError("workload trapped during measurement: " +
                 R.Exec.TrapMessage);
    Cycles = static_cast<double>(R.EstimatedCycles);
  } else {
    SimulationResult R = simulateDetailed(Prog, Machine);
    if (R.Exec.Trapped)
      fatalError("workload trapped during measurement: " +
                 R.Exec.TrapMessage);
    Cycles = static_cast<double>(R.Cycles);
  }
  ++Simulations;
  Cache[Key] = Cycles;
  appendDiskCache(Key, Cycles);
  return Cycles;
}

std::vector<double>
ResponseSurface::measureAll(const std::vector<DesignPoint> &Points) {
  std::vector<double> Y;
  Y.reserve(Points.size());
  for (const DesignPoint &P : Points)
    Y.push_back(measure(P));
  return Y;
}
