//===- core/ResponseSurface.cpp - Design point -> cycles --------------------------===//

#include "core/ResponseSurface.h"

#include "codegen/CodeGenerator.h"
#include "opt/Passes.h"
#include "support/Env.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"
#include "uarch/EnergyModel.h"
#include "uarch/TraceCache.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <thread>
#include <unistd.h>
#include <sys/stat.h>

using namespace msem;

const char *msem::responseMetricName(ResponseMetric Metric) {
  switch (Metric) {
  case ResponseMetric::Cycles:
    return "cycles";
  case ResponseMetric::EnergyNanojoules:
    return "energy";
  case ResponseMetric::CodeBytes:
    return "codesize";
  }
  return "?";
}

bool msem::responseMetricFromName(const std::string &Name,
                                  ResponseMetric &Out) {
  if (Name == "cycles")
    Out = ResponseMetric::Cycles;
  else if (Name == "energy")
    Out = ResponseMetric::EnergyNanojoules;
  else if (Name == "codesize")
    Out = ResponseMetric::CodeBytes;
  else
    return false;
  return true;
}

const char *msem::faultActionName(FaultAction Action) {
  switch (Action) {
  case FaultAction::Retry:
    return "retry";
  case FaultAction::Skip:
    return "skip";
  case FaultAction::Abort:
    return "abort";
  }
  return "?";
}

MachineProgram msem::compileWorkloadBinary(const std::string &Workload,
                                           InputSet Input,
                                           const OptimizationConfig &Config) {
  std::unique_ptr<Module> M = buildWorkload(Workload, Input);
  runPassPipeline(*M, Config);
  CodeGenOptions CG;
  CG.OmitFramePointer = Config.OmitFramePointer;
  CG.PostRaSchedule = Config.ScheduleInsns2;
  return compileToProgram(*M, CG);
}

/// A level-1 cache entry: the once-flag serializes the compile so that
/// concurrent first callers of a flag vector run it exactly once.
struct ResponseSurface::CompiledBinary {
  std::once_flag Once;
  std::shared_ptr<const MachineProgram> Prog;
};

ResponseSurface::ResponseSurface(const ParameterSpace &Space, Options Opts)
    : Space(Space), Opts(std::move(Opts)) {
  FaultRate = this->Opts.Faults.InjectRate >= 0.0
                  ? std::min(this->Opts.Faults.InjectRate, 1.0)
                  : env().FaultRate;
  DiskKeyPrefix = this->Opts.Workload;
  DiskKeyPrefix += '|';
  DiskKeyPrefix += workloadVersion();
  DiskKeyPrefix += '|';
  DiskKeyPrefix += inputSetName(this->Opts.Input);
  TraceKeyPrefix = DiskKeyPrefix + "|t";
  DiskKeyPrefix += '|';
  DiskKeyPrefix += responseMetricName(this->Opts.Metric);
  DiskKeyPrefix += this->Opts.UseSmarts ? "|s" : "|d";
  if (!this->Opts.CacheDir.empty()) {
    ::mkdir(this->Opts.CacheDir.c_str(), 0755);
    CacheFile = this->Opts.CacheDir + "/responses.csv";
    loadDiskCache();
  }
}

ResponseSurface::~ResponseSurface() { flush(); }

size_t ResponseSurface::simulationsRun() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return Simulations;
}

size_t ResponseSurface::cacheHits() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return CacheHits;
}

std::string ResponseSurface::diskKeyFor(const DesignPoint &Point) const {
  std::string Key = DiskKeyPrefix;
  for (int64_t V : Point)
    Key += formatString(",%lld", static_cast<long long>(V));
  return Key;
}

namespace {

/// Parses the ",v1,v2,..." tail of a disk-cache key. Returns false on any
/// malformed coordinate.
bool parsePointSuffix(const char *S, size_t Arity, DesignPoint &Out) {
  Out.clear();
  Out.reserve(Arity);
  while (*S) {
    if (*S != ',')
      return false;
    ++S;
    char *End = nullptr;
    long long V = std::strtoll(S, &End, 10);
    if (End == S)
      return false;
    Out.push_back(V);
    S = End;
  }
  return Out.size() == Arity;
}

/// The MSEM_FAULT_RATE injection decision for one measurement attempt: a
/// pure hash of (point, attempt) mapped onto [0, 1) and compared against
/// the rate. Deterministic across runs, thread counts and processes, so
/// fault-injected campaigns stay reproducible; independent retries see
/// fresh draws, so Retry converges with probability 1 - rate^attempts.
bool injectedFault(const DesignPoint &Point, int Attempt, double Rate) {
  if (Rate <= 0.0)
    return false;
  uint64_t H = 0x9E3779B97F4A7C15ull ^ static_cast<uint64_t>(Attempt);
  for (int64_t V : Point) {
    H ^= static_cast<uint64_t>(V) + 0x9E3779B97F4A7C15ull + (H << 6) +
         (H >> 2);
    H *= 0xFF51AFD7ED558CCDull;
    H ^= H >> 33;
  }
  H *= 0xC4CEB9FE1A85EC53ull;
  H ^= H >> 33;
  double U = static_cast<double>(H >> 11) * 0x1.0p-53;
  return U < Rate;
}

} // namespace

void ResponseSurface::loadDiskCache() {
  std::FILE *F = std::fopen(CacheFile.c_str(), "r");
  if (!F)
    return;
  // Tolerant of a concurrently-appended or partially-written file: a line
  // is accepted only when it is newline-terminated (a truncated last line
  // is dropped), splits on ';', carries this surface's prefix and a
  // well-formed point of the right arity, and has a positive value.
  char Line[4096];
  DesignPoint Point;
  while (std::fgets(Line, sizeof(Line), F)) {
    size_t Len = std::strlen(Line);
    if (Len == 0 || Line[Len - 1] != '\n')
      continue;
    Line[--Len] = '\0';
    char *Sep = std::strrchr(Line, ';');
    if (!Sep)
      continue;
    *Sep = '\0';
    if (std::strncmp(Line, DiskKeyPrefix.c_str(), DiskKeyPrefix.size()) != 0)
      continue;
    if (!parsePointSuffix(Line + DiskKeyPrefix.size(), Space.size(), Point))
      continue;
    char *End = nullptr;
    double Value = std::strtod(Sep + 1, &End);
    if (End == Sep + 1 || !(Value > 0))
      continue;
    Cache.emplace(Point, Value);
  }
  std::fclose(F);
}

void ResponseSurface::flush() {
  if (CacheFile.empty())
    return;
  // Snapshot our rows, then merge-rewrite outside the memo lock.
  std::map<std::string, double> Rows;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    if (!DiskDirty)
      return;
    for (const auto &[Point, Value] : Cache)
      Rows[diskKeyFor(Point)] = Value;
    DiskDirty = false;
  }
  // Preserve rows belonging to other surfaces (and newer rows from other
  // processes): re-read the current file and overlay ours.
  if (std::FILE *F = std::fopen(CacheFile.c_str(), "r")) {
    char Line[4096];
    while (std::fgets(Line, sizeof(Line), F)) {
      size_t Len = std::strlen(Line);
      if (Len == 0 || Line[Len - 1] != '\n')
        continue;
      Line[--Len] = '\0';
      char *Sep = std::strrchr(Line, ';');
      if (!Sep)
        continue;
      *Sep = '\0';
      char *End = nullptr;
      double Value = std::strtod(Sep + 1, &End);
      if (End == Sep + 1 || !(Value > 0))
        continue;
      Rows.emplace(Line, Value); // Our overlay wins on key collision.
    }
    std::fclose(F);
  }
  // Atomic publish: write a sibling temp file, then rename over. Readers
  // never observe a half-written cache.
  std::string TmpFile =
      CacheFile + formatString(".tmp.%ld", static_cast<long>(::getpid()));
  std::FILE *F = std::fopen(TmpFile.c_str(), "w");
  if (!F)
    return;
  for (const auto &[Key, Value] : Rows)
    std::fprintf(F, "%s;%.17g\n", Key.c_str(), Value);
  std::fclose(F);
  if (std::rename(TmpFile.c_str(), CacheFile.c_str()) != 0)
    std::remove(TmpFile.c_str());
}

void ResponseSurface::preload(const std::vector<DesignPoint> &Points,
                              const std::vector<double> &Values) {
  assert(Points.size() == Values.size() && "preload arity mismatch");
  std::lock_guard<std::mutex> Lock(CacheMutex);
  for (size_t I = 0; I < Points.size(); ++I)
    if (Cache.emplace(Points[I], Values[I]).second)
      DiskDirty = true;
}

std::vector<std::pair<DesignPoint, double>> ResponseSurface::snapshot() const {
  std::vector<std::pair<DesignPoint, double>> Rows;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    Rows.assign(Cache.begin(), Cache.end());
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Rows;
}

std::string ResponseSurface::traceKeyFor(const DesignPoint &Point) const {
  std::string Key = TraceKeyPrefix;
  size_t NumFlags = Space.numCompilerParams();
  for (size_t I = 0; I < NumFlags; ++I)
    Key += formatString(",%lld", static_cast<long long>(Point[I]));
  return Key;
}

std::shared_ptr<const MachineProgram>
ResponseSurface::compiledBinary(const DesignPoint &Point) const {
  // Bound chosen well above any campaign's distinct-flag-vector count at
  // one time; FIFO keeps the structure trivial (entries are cheap to
  // recompile if ever re-requested after eviction).
  constexpr size_t MaxBinaries = 128;

  DesignPoint FlagKey(Point.begin(),
                      Point.begin() + Space.numCompilerParams());
  std::shared_ptr<CompiledBinary> Entry;
  {
    std::lock_guard<std::mutex> Lock(BinaryMutex);
    auto It = BinaryCache.find(FlagKey);
    if (It != BinaryCache.end()) {
      Entry = It->second;
      telemetry::count("surface.binary_cache.hits");
    } else {
      Entry = std::make_shared<CompiledBinary>();
      BinaryCache.emplace(FlagKey, Entry);
      BinaryOrder.push_back(FlagKey);
      if (BinaryOrder.size() > MaxBinaries) {
        BinaryCache.erase(BinaryOrder.front());
        BinaryOrder.pop_front();
      }
      telemetry::count("surface.binary_cache.misses");
    }
  }
  std::call_once(Entry->Once, [&] {
    // The compile roots its own deterministic trace (keyed by the flag
    // vector, not the winning design point), so the pass-pipeline span
    // tree is identical regardless of which concurrent caller compiles.
    telemetry::ScopedTimer Span(
        "surface.compile",
        telemetry::ScopedTimer::TraceRoot{
            telemetry::deriveTraceId(traceKeyFor(Point), 0)});
    Entry->Prog = std::make_shared<const MachineProgram>(compileWorkloadBinary(
        Opts.Workload, Opts.Input, Space.toOptimizationConfig(Point)));
  });
  return Entry->Prog;
}

double ResponseSurface::computeResponse(const DesignPoint &Point) const {
  MachineConfig Machine = Space.toMachineConfig(Point);
  std::shared_ptr<const MachineProgram> Prog = compiledBinary(Point);

  if (Opts.Metric == ResponseMetric::CodeBytes) {
    // Static metric: no simulation.
    return static_cast<double>(Prog->Code.size()) * 4.0;
  }

  // Level 2: replay the recorded retired-instruction stream when this
  // program was already functionally executed (by any surface, for any
  // metric); capture it on the first execution. Two threads racing on the
  // same uncached key both run live -- identical streams, either insert
  // wins -- so the race is benign.
  constexpr uint64_t MaxInstructions = 4'000'000'000ull;
  TraceCache &Traces = TraceCache::global();
  std::string TraceKey;
  std::shared_ptr<const ReplayImage> Image;
  if (Traces.enabled()) {
    TraceKey = traceKeyFor(Point);
    Image = Traces.lookup(TraceKey);
  }

  if (Opts.Metric == ResponseMetric::EnergyNanojoules) {
    // Energy needs the full event counts: always fully detailed.
    SimulationResult R;
    if (Image) {
      R = simulateDetailedReplay(*Image, Machine);
    } else if (Traces.enabled()) {
      TraceBuilder Builder;
      R = simulateDetailed(*Prog, Machine, MaxInstructions, &Builder);
      if (!R.Exec.Trapped)
        Traces.insert(TraceKey, ReplayImage::build(
                                    Prog, Builder.finish(R.Exec,
                                                         MaxInstructions)));
    } else {
      R = simulateDetailed(*Prog, Machine);
    }
    if (R.Exec.Trapped)
      fatalError("workload trapped during measurement: " +
                 R.Exec.TrapMessage);
    return estimateEnergyNanojoules(R, Machine);
  }

  if (Opts.UseSmarts) {
    SmartsResult R;
    if (Image) {
      R = simulateSmartsReplay(*Image, Machine, Opts.Smarts);
    } else if (Traces.enabled()) {
      TraceBuilder Builder;
      R = simulateSmarts(*Prog, Machine, Opts.Smarts, MaxInstructions,
                         &Builder);
      if (!R.Exec.Trapped)
        Traces.insert(TraceKey, ReplayImage::build(
                                    Prog, Builder.finish(R.Exec,
                                                         MaxInstructions)));
    } else {
      R = simulateSmarts(*Prog, Machine, Opts.Smarts);
    }
    if (R.Exec.Trapped)
      fatalError("workload trapped during measurement: " +
                 R.Exec.TrapMessage);
    return static_cast<double>(R.EstimatedCycles);
  }

  SimulationResult R;
  if (Image) {
    R = simulateDetailedReplay(*Image, Machine);
  } else if (Traces.enabled()) {
    TraceBuilder Builder;
    R = simulateDetailed(*Prog, Machine, MaxInstructions, &Builder);
    if (!R.Exec.Trapped)
      Traces.insert(TraceKey, ReplayImage::build(
                                  Prog, Builder.finish(R.Exec,
                                                       MaxInstructions)));
  } else {
    R = simulateDetailed(*Prog, Machine);
  }
  if (R.Exec.Trapped)
    fatalError("workload trapped during measurement: " +
               R.Exec.TrapMessage);
  return static_cast<double>(R.Cycles);
}

bool ResponseSurface::measureWithPolicy(const DesignPoint &Point,
                                        double &Value, size_t &Faults,
                                        size_t &Retries) const {
  const FaultPolicy &Policy = Opts.Faults;
  int Attempts = Policy.OnFault == FaultAction::Retry
                     ? std::max(1, Policy.MaxAttempts)
                     : 1;
  for (int Attempt = 0; Attempt < Attempts; ++Attempt) {
    if (Attempt > 0) {
      ++Retries;
      if (Policy.BackoffBaseMicros > 0) {
        // Exponential backoff, capped at ~1s so a stuck campaign still
        // makes one attempt per second.
        uint64_t Micros = static_cast<uint64_t>(Policy.BackoffBaseMicros)
                          << std::min(Attempt - 1, 20);
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min<uint64_t>(Micros, 1000000)));
      }
    }
    if (injectedFault(Point, Attempt, FaultRate)) {
      ++Faults;
      telemetry::count("surface.faults_injected");
      continue;
    }
    Value = computeResponse(Point);
    return true;
  }
  return false;
}

double ResponseSurface::measure(const DesignPoint &Point) {
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Point);
    if (It != Cache.end()) {
      ++CacheHits;
      return It->second;
    }
  }
  double Value = 0;
  size_t Faults = 0, Retries = 0;
  if (!measureWithPolicy(Point, Value, Faults, Retries))
    fatalError(formatString(
        "measurement failed at a design point after %zu injected fault(s) "
        "(policy %s); use measureAll with a MeasurementReport for "
        "structured failure handling",
        Faults, faultActionName(Opts.Faults.OnFault)));
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto [It, Inserted] = Cache.emplace(Point, Value);
    ++Simulations;
    if (Inserted)
      DiskDirty = true;
    Value = It->second; // A concurrent first writer wins (same number).
  }
  if (Opts.AutoFlush)
    flush();
  return Value;
}

std::vector<PointOutcome> ResponseSurface::measureOutcomes(
    const std::vector<DesignPoint> &Points) const {
  std::vector<PointOutcome> Outcomes(Points.size());
  globalThreadPool().parallelFor(
      0, Points.size(),
      [&](size_t I) {
        // Keyed on the slot index so the span id is order-independent
        // across thread schedules; the point's disk key identifies it
        // for trace readers (slowest-point reports).
        telemetry::ScopedTimer PointSpan("surface.point", I);
        if (PointSpan.capturing())
          PointSpan.setDetail(diskKeyFor(Points[I]));
        Outcomes[I].Ok =
            measureWithPolicy(Points[I], Outcomes[I].Value,
                              Outcomes[I].Faults, Outcomes[I].Retries);
      },
      "measure");
  return Outcomes;
}

std::vector<double>
ResponseSurface::measureAll(const std::vector<DesignPoint> &Points,
                            MeasurementReport *Report) {
  telemetry::ScopedTimer Span("surface.measure_all");
  MeasurementReport Local;
  MeasurementReport &Rep = Report ? *Report : Local;
  Rep = MeasurementReport();

  // Distinct unmeasured points, in first-occurrence order. Each point's
  // response is a pure function of the point (workload generation, the
  // pass pipeline and SMARTS are all deterministically seeded per point),
  // so the fan-out below is bitwise deterministic.
  std::vector<DesignPoint> ToMeasure;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    std::unordered_map<DesignPoint, size_t, DesignPointHash> Pending;
    for (const DesignPoint &P : Points) {
      if (Cache.count(P) || Pending.count(P))
        continue;
      Pending.emplace(P, ToMeasure.size());
      ToMeasure.push_back(P);
    }
  }

  // Per-slot outcomes, computed locally or by a distributed delegate;
  // reductions over them run sequentially below, in index order, so fault
  // statistics are as deterministic as the values. Remote outcomes are
  // bitwise identical to local ones (see Options::Remote), so everything
  // downstream of this line is oblivious to where the simulations ran.
  std::vector<PointOutcome> Outcomes =
      Opts.Remote ? Opts.Remote(ToMeasure) : measureOutcomes(ToMeasure);
  if (Outcomes.size() != ToMeasure.size())
    fatalError(formatString(
        "remote measurement returned %zu outcome(s) for %zu point(s) "
        "(workload %s)",
        Outcomes.size(), ToMeasure.size(), Opts.Workload.c_str()));

  std::unordered_map<DesignPoint, uint8_t, DesignPointHash> Failed;
  for (size_t I = 0; I < ToMeasure.size(); ++I) {
    Rep.FaultsInjected += Outcomes[I].Faults;
    Rep.Retries += Outcomes[I].Retries;
    if (!Outcomes[I].Ok && !Rep.Aborted) {
      if (!Outcomes[I].Error.empty() &&
          Opts.Faults.OnFault != FaultAction::Skip) {
        // An outcome carrying its own context (a dead worker process)
        // aborts with that diagnostic rather than the generic per-point
        // message.
        Rep.Aborted = true;
        Rep.Error = Outcomes[I].Error;
      } else if (Opts.Faults.OnFault == FaultAction::Skip) {
        Failed.emplace(ToMeasure[I], 1);
      } else if (Opts.Faults.OnFault == FaultAction::Abort) {
        Rep.Aborted = true;
        Rep.Error = formatString(
            "measurement aborted by fault policy at design point %s "
            "(workload %s, %zu injected fault(s) in batch)",
            diskKeyFor(ToMeasure[I]).c_str(), Opts.Workload.c_str(),
            Rep.FaultsInjected);
      } else {
        // Retry exhaustion. Callers choosing Retry never opted into
        // losing design points, so this aborts the batch structurally
        // rather than degrading into the Skip path.
        Rep.Aborted = true;
        Rep.Error = formatString(
            "measurement failed %d attempt(s) at design point %s "
            "(workload %s, %zu injected fault(s) in batch); retry "
            "policy exhausted",
            std::max(1, Opts.Faults.MaxAttempts),
            diskKeyFor(ToMeasure[I]).c_str(), Opts.Workload.c_str(),
            Rep.FaultsInjected);
      }
    }
  }
  if (Rep.Aborted) {
    // Keep the successful measurements: they are valid and paid for.
    std::lock_guard<std::mutex> Lock(CacheMutex);
    for (size_t I = 0; I < ToMeasure.size(); ++I)
      if (Outcomes[I].Ok &&
          Cache.emplace(ToMeasure[I], Outcomes[I].Value).second) {
        ++Simulations;
        DiskDirty = true;
      }
    if (!Report)
      fatalError(Rep.Error);
    if (Opts.AutoFlush)
      flush();
    return {};
  }

  std::vector<double> Y;
  Y.reserve(Points.size());
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    for (size_t I = 0; I < ToMeasure.size(); ++I)
      if (Outcomes[I].Ok)
        Cache.emplace(ToMeasure[I], Outcomes[I].Value);
    // Sequential counting semantics: the first occurrence of each new
    // point is a simulation, every other lookup is a hit.
    Simulations += ToMeasure.size() - Failed.size();
    CacheHits += Points.size() - ToMeasure.size();
    if (ToMeasure.size() > Failed.size())
      DiskDirty = true;
    for (size_t I = 0; I < Points.size(); ++I) {
      if (Failed.count(Points[I])) {
        Rep.SkippedIndices.push_back(I);
        Y.push_back(std::numeric_limits<double>::quiet_NaN());
      } else {
        Y.push_back(Cache.at(Points[I]));
      }
    }
  }
  if (!Report && !Rep.SkippedIndices.empty())
    fatalError(formatString(
        "%zu measurement(s) skipped by fault policy with no report "
        "consumer (workload %s); pass a MeasurementReport to measureAll",
        Rep.SkippedIndices.size(), Opts.Workload.c_str()));
  if (Opts.AutoFlush)
    flush();
  return Y;
}
