//===- core/ModelBuilder.cpp - The Figure 1 iterative loop ------------------------===//

#include "core/ModelBuilder.h"

#include "model/LinearModel.h"
#include "model/Mars.h"
#include "model/RbfNetwork.h"
#include "support/Error.h"
#include "telemetry/Telemetry.h"

using namespace msem;

const char *msem::modelTechniqueName(ModelTechnique T) {
  switch (T) {
  case ModelTechnique::Linear:
    return "linear";
  case ModelTechnique::Mars:
    return "mars";
  case ModelTechnique::Rbf:
    return "rbf";
  }
  return "?";
}

std::unique_ptr<Model> msem::makeModel(ModelTechnique T) {
  switch (T) {
  case ModelTechnique::Linear:
    return std::make_unique<LinearModel>();
  case ModelTechnique::Mars:
    return std::make_unique<MarsModel>();
  case ModelTechnique::Rbf:
    return std::make_unique<RbfNetwork>();
  }
  fatalError("unknown model technique");
}

ModelBuildResult msem::buildModelWithTestSet(
    ResponseSurface &Surface, const ModelBuilderOptions &Options,
    const std::vector<DesignPoint> &TestPoints,
    const std::vector<double> &TestY) {
  telemetry::ScopedTimer Span("model.build");
  const ParameterSpace &Space = Surface.space();
  Rng R(Options.Seed);

  // Candidate set for the D-optimal selection (Latin hypercube, as the
  // paper suggests for candidate generation).
  std::vector<DesignPoint> Candidates =
      generateLatinHypercube(Space, Options.CandidateCount, R);

  Matrix TestX = encodeMatrix(Space, TestPoints);

  ModelBuildResult Result;
  size_t BaseSimulations = Surface.simulationsRun();

  DOptimalOptions DOpt;
  DOpt.Expansion = Options.Expansion;
  DOpt.Seed = Options.Seed ^ 0xD0E;

  std::vector<size_t> SelectedIndices;
  size_t WantSize = Options.InitialDesignSize;

  while (true) {
    DOpt.DesignSize = WantSize;
    DOptimalResult Sel =
        selectDOptimal(Space, Candidates, DOpt, SelectedIndices);
    SelectedIndices = Sel.Selected;

    Result.TrainPoints.clear();
    for (size_t Idx : SelectedIndices)
      Result.TrainPoints.push_back(Candidates[Idx]);
    {
      telemetry::ScopedTimer MeasureSpan("model.measure");
      Result.TrainY = Surface.measureAll(Result.TrainPoints);
    }

    Matrix TrainX = encodeMatrix(Space, Result.TrainPoints);
    Result.FittedModel = makeModel(Options.Technique);
    {
      telemetry::ScopedTimer FitSpan(
          std::string("model.fit.") + modelTechniqueName(Options.Technique));
      Result.FittedModel->train(TrainX, Result.TrainY);
    }
    telemetry::count("model.fits");

    Result.TestQuality = evaluateModel(*Result.FittedModel, TestX, TestY);
    Result.ErrorCurve.push_back(
        {Result.TrainPoints.size(), Result.TestQuality.Mape});
    // The Figure 5 learning curve: test MAPE vs. training-design size.
    telemetry::record("model.error_curve",
                      static_cast<double>(Result.TrainPoints.size()),
                      Result.TestQuality.Mape);

    if (Result.TestQuality.Mape <= Options.TargetMape)
      break;
    if (WantSize >= Options.MaxDesignSize)
      break;
    WantSize = std::min(Options.MaxDesignSize,
                        WantSize + Options.AugmentStep);
  }

  Result.TestPoints = TestPoints;
  Result.TestY = TestY;
  Result.SimulationsUsed = Surface.simulationsRun() - BaseSimulations;
  if (telemetry::enabled()) {
    telemetry::counter("model.simulations").add(Result.SimulationsUsed);
    telemetry::gauge("model.test_mape.last").set(Result.TestQuality.Mape);
    telemetry::gauge("model.test_r2.last").set(Result.TestQuality.R2);
  }
  return Result;
}

ModelBuildResult msem::buildModel(ResponseSurface &Surface,
                                  const ModelBuilderOptions &Options) {
  const ParameterSpace &Space = Surface.space();
  // Independent random test design.
  Rng R(Options.Seed ^ 0x7E57);
  std::vector<DesignPoint> TestPoints =
      generateRandomCandidates(Space, Options.TestSize, R);
  std::vector<double> TestY = Surface.measureAll(TestPoints);
  return buildModelWithTestSet(Surface, Options, TestPoints, TestY);
}
