//===- core/ModelBuilder.cpp - The Figure 1 iterative loop ------------------------===//

#include "core/ModelBuilder.h"

#include "model/LinearModel.h"
#include "model/Mars.h"
#include "model/RbfNetwork.h"
#include "support/Error.h"
#include "telemetry/Telemetry.h"

#include <algorithm>

using namespace msem;

const char *msem::modelTechniqueName(ModelTechnique T) {
  switch (T) {
  case ModelTechnique::Linear:
    return "linear";
  case ModelTechnique::Mars:
    return "mars";
  case ModelTechnique::Rbf:
    return "rbf";
  }
  return "?";
}

bool msem::modelTechniqueFromName(const std::string &Name,
                                  ModelTechnique &Out) {
  if (Name == "linear")
    Out = ModelTechnique::Linear;
  else if (Name == "mars")
    Out = ModelTechnique::Mars;
  else if (Name == "rbf")
    Out = ModelTechnique::Rbf;
  else
    return false;
  return true;
}

const char *msem::buildStopName(BuildStop Stop) {
  switch (Stop) {
  case BuildStop::Converged:
    return "converged";
  case BuildStop::DesignExhausted:
    return "design-exhausted";
  case BuildStop::Paused:
    return "paused";
  case BuildStop::Failed:
    return "failed";
  }
  return "?";
}

std::unique_ptr<Model> msem::makeModel(ModelTechnique T) {
  switch (T) {
  case ModelTechnique::Linear:
    return std::make_unique<LinearModel>();
  case ModelTechnique::Mars:
    return std::make_unique<MarsModel>();
  case ModelTechnique::Rbf:
    return std::make_unique<RbfNetwork>();
  }
  fatalError("unknown model technique");
}

namespace {

/// Records \p Point in \p Skipped unless an identical point is already
/// there (a skip-on-fault point recurs every iteration it is reselected).
void recordSkip(std::vector<DesignPoint> &Skipped, const DesignPoint &Point) {
  if (std::find(Skipped.begin(), Skipped.end(), Point) == Skipped.end())
    Skipped.push_back(Point);
}

/// Drops the entries of \p Points / \p Y named by \p Report.SkippedIndices
/// (which is sorted ascending), recording each dropped point.
void dropSkipped(const MeasurementReport &Report,
                 std::vector<DesignPoint> &Points, std::vector<double> &Y,
                 std::vector<DesignPoint> &Skipped) {
  if (Report.SkippedIndices.empty())
    return;
  std::vector<DesignPoint> KeptPoints;
  std::vector<double> KeptY;
  KeptPoints.reserve(Points.size());
  KeptY.reserve(Y.size());
  size_t NextSkip = 0;
  for (size_t I = 0; I < Points.size(); ++I) {
    if (NextSkip < Report.SkippedIndices.size() &&
        Report.SkippedIndices[NextSkip] == I) {
      ++NextSkip;
      recordSkip(Skipped, Points[I]);
      continue;
    }
    KeptPoints.push_back(std::move(Points[I]));
    KeptY.push_back(Y[I]);
  }
  Points = std::move(KeptPoints);
  Y = std::move(KeptY);
}

} // namespace

ModelBuildResult msem::buildModel(ResponseSurface &Surface,
                                  const ModelBuilderOptions &Options) {
  telemetry::ScopedTimer Span("model.build");
  const ParameterSpace &Space = Surface.space();

  ModelBuildResult Result;
  size_t BaseSimulations = Surface.simulationsRun();

  // The independent test design: external if supplied, measured up front
  // otherwise (it does not depend on the training design).
  if (Options.ExternalTest) {
    Result.TestPoints = Options.ExternalTest->Points;
    Result.TestY = Options.ExternalTest->Y;
  } else {
    Rng TestR(Options.Seed ^ 0x7E57);
    Result.TestPoints =
        generateRandomCandidates(Space, Options.TestSize, TestR);
    MeasurementReport Report;
    Result.TestY = Surface.measureAll(Result.TestPoints, &Report);
    if (Report.Aborted) {
      Result.Stop = BuildStop::Failed;
      Result.Error = Report.Error;
      Result.SimulationsUsed = Surface.simulationsRun() - BaseSimulations;
      return Result;
    }
    dropSkipped(Report, Result.TestPoints, Result.TestY,
                Result.SkippedPoints);
  }
  Matrix TestX = encodeMatrix(Space, Result.TestPoints);

  // Candidate set for the D-optimal selection (Latin hypercube, as the
  // paper suggests for candidate generation).
  Rng R(Options.Seed);
  std::vector<DesignPoint> Candidates =
      generateLatinHypercube(Space, Options.CandidateCount, R);

  DOptimalOptions DOpt;
  DOpt.Expansion = Options.Expansion;
  DOpt.Seed = Options.Seed ^ 0xD0E;

  std::vector<size_t> SelectedIndices;
  size_t WantSize = Options.InitialDesignSize;

  while (true) {
    DOpt.DesignSize = WantSize;
    DOptimalResult Sel =
        selectDOptimal(Space, Candidates, DOpt, SelectedIndices);
    SelectedIndices = Sel.Selected;

    Result.TrainPoints.clear();
    for (size_t Idx : SelectedIndices)
      Result.TrainPoints.push_back(Candidates[Idx]);
    {
      telemetry::ScopedTimer MeasureSpan("model.measure");
      MeasurementReport Report;
      Result.TrainY = Surface.measureAll(Result.TrainPoints, &Report);
      if (Report.Aborted) {
        Result.Stop = BuildStop::Failed;
        Result.Error = Report.Error;
        Result.SimulationsUsed = Surface.simulationsRun() - BaseSimulations;
        return Result;
      }
      dropSkipped(Report, Result.TrainPoints, Result.TrainY,
                  Result.SkippedPoints);
    }

    Matrix TrainX = encodeMatrix(Space, Result.TrainPoints);
    Result.FittedModel = makeModel(Options.Technique);
    {
      telemetry::ScopedTimer FitSpan(
          std::string("model.fit.") + modelTechniqueName(Options.Technique));
      Result.FittedModel->train(TrainX, Result.TrainY);
    }
    telemetry::count("model.fits");

    Result.TestQuality = evaluateModel(*Result.FittedModel, TestX,
                                       Result.TestY);
    Result.ErrorCurve.push_back(
        {Result.TrainPoints.size(), Result.TestQuality.Mape});
    // The Figure 5 learning curve: test MAPE vs. training-design size.
    telemetry::record("model.error_curve",
                      static_cast<double>(Result.TrainPoints.size()),
                      Result.TestQuality.Mape);

    if (Result.TestQuality.Mape <= Options.TargetMape) {
      Result.Stop = BuildStop::Converged;
      break;
    }
    if (WantSize >= Options.MaxDesignSize) {
      Result.Stop = BuildStop::DesignExhausted;
      break;
    }
    // The checkpoint hook: campaigns persist progress between iterations
    // and pause here when the budget runs out. Invoked only when the loop
    // will continue, so a completed build never reports Paused.
    if (Options.OnIteration && !Options.OnIteration(Result)) {
      Result.Stop = BuildStop::Paused;
      break;
    }
    WantSize = std::min(Options.MaxDesignSize,
                        WantSize + Options.AugmentStep);
  }

  Result.SimulationsUsed = Surface.simulationsRun() - BaseSimulations;
  if (telemetry::enabled()) {
    telemetry::counter("model.simulations").add(Result.SimulationsUsed);
    telemetry::gauge("model.test_mape.last").set(Result.TestQuality.Mape);
    telemetry::gauge("model.test_r2.last").set(Result.TestQuality.R2);
  }
  return Result;
}
