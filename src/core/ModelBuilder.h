//===- core/ModelBuilder.h - The Figure 1 iterative loop -----------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's empirical model building process (Figure 1):
///
///   1. identify predictors and domain (ParameterSpace),
///   2. choose the functional form (technique: linear / MARS / RBF),
///   3. measure the response at D-optimally selected design points,
///   4. estimate the model and its error on an independent test design,
///   5. augment the design and repeat until the desired accuracy.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CORE_MODELBUILDER_H
#define MSEM_CORE_MODELBUILDER_H

#include "core/ResponseSurface.h"
#include "design/Doe.h"
#include "model/Diagnostics.h"

#include <memory>

namespace msem {

/// Which regression technique to fit (the paper's three candidates).
enum class ModelTechnique { Linear, Mars, Rbf };

const char *modelTechniqueName(ModelTechnique T);

/// Constructs an untrained model of the given technique with the defaults
/// used throughout the evaluation.
std::unique_ptr<Model> makeModel(ModelTechnique T);

/// Knobs of the iterative loop.
struct ModelBuilderOptions {
  ModelTechnique Technique = ModelTechnique::Rbf;
  size_t InitialDesignSize = 100;
  size_t AugmentStep = 50;
  size_t MaxDesignSize = 400; ///< The paper's conservative choice.
  size_t TestSize = 100;      ///< The paper's independent test design.
  double TargetMape = 5.0;    ///< Stop when test error falls below this.
  size_t CandidateCount = 1500;
  ExpansionKind Expansion = ExpansionKind::Linear;
  uint64_t Seed = 0xB11D0001;
};

/// Everything the evaluation needs from one build.
struct ModelBuildResult {
  std::unique_ptr<Model> FittedModel;
  std::vector<DesignPoint> TrainPoints;
  std::vector<double> TrainY;
  std::vector<DesignPoint> TestPoints;
  std::vector<double> TestY;
  ModelQuality TestQuality;
  /// (training size, test MAPE) after each iteration: the Figure 5 curve.
  std::vector<std::pair<size_t, double>> ErrorCurve;
  size_t SimulationsUsed = 0;
};

/// Runs the loop against \p Surface. The test set is measured once up
/// front (it is independent of the training design).
ModelBuildResult buildModel(ResponseSurface &Surface,
                            const ModelBuilderOptions &Options);

/// Variant reusing an externally measured test set (lets several
/// techniques be compared on identical data, as in Table 3).
ModelBuildResult buildModelWithTestSet(
    ResponseSurface &Surface, const ModelBuilderOptions &Options,
    const std::vector<DesignPoint> &TestPoints,
    const std::vector<double> &TestY);

} // namespace msem

#endif // MSEM_CORE_MODELBUILDER_H
