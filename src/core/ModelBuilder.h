//===- core/ModelBuilder.h - The Figure 1 iterative loop -----------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's empirical model building process (Figure 1):
///
///   1. identify predictors and domain (ParameterSpace),
///   2. choose the functional form (technique: linear / MARS / RBF),
///   3. measure the response at D-optimally selected design points,
///   4. estimate the model and its error on an independent test design,
///   5. augment the design and repeat until the desired accuracy.
///
/// One entry point runs the loop: buildModel(Surface, Options). The test
/// design is measured up front by default; callers comparing several
/// techniques on identical data (Table 3) supply Options.ExternalTest
/// instead. The loop is deterministic given (Options, Surface options):
/// re-running it with the same seeds and a warm response cache replays the
/// same designs, fits and error curve bitwise -- the property campaign
/// resume is built on.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_CORE_MODELBUILDER_H
#define MSEM_CORE_MODELBUILDER_H

#include "core/ResponseSurface.h"
#include "design/Doe.h"
#include "model/Diagnostics.h"

#include <functional>
#include <memory>
#include <optional>

namespace msem {

/// Which regression technique to fit (the paper's three candidates).
enum class ModelTechnique { Linear, Mars, Rbf };

const char *modelTechniqueName(ModelTechnique T);

/// Parses the modelTechniqueName form back ("linear"/"mars"/"rbf").
/// Returns false on an unknown name, leaving \p Out untouched.
bool modelTechniqueFromName(const std::string &Name, ModelTechnique &Out);

/// Constructs an untrained model of the given technique with the defaults
/// used throughout the evaluation.
std::unique_ptr<Model> makeModel(ModelTechnique T);

struct ModelBuildResult;

/// An externally measured test design (lets several techniques be
/// compared on identical data, as in Table 3).
struct TestSet {
  std::vector<DesignPoint> Points;
  std::vector<double> Y;
};

/// Knobs of the iterative loop.
struct ModelBuilderOptions {
  ModelTechnique Technique = ModelTechnique::Rbf;
  size_t InitialDesignSize = 100;
  size_t AugmentStep = 50;
  size_t MaxDesignSize = 400; ///< The paper's conservative choice.
  size_t TestSize = 100;      ///< The paper's independent test design.
  double TargetMape = 5.0;    ///< Stop when test error falls below this.
  size_t CandidateCount = 1500;
  ExpansionKind Expansion = ExpansionKind::Linear;
  uint64_t Seed = 0xB11D0001;
  /// When set, skip measuring a test design and evaluate against these
  /// points instead (TestSize is then ignored).
  std::optional<TestSet> ExternalTest;
  /// Called after every Figure-1 iteration (measure + fit + evaluate)
  /// with the partial result; campaigns checkpoint here. Returning false
  /// pauses the loop: the result is valid but marked BuildStop::Paused.
  std::function<bool(const ModelBuildResult &)> OnIteration;
};

/// Why the iterative loop ended.
enum class BuildStop {
  Converged,       ///< Test MAPE reached TargetMape.
  DesignExhausted, ///< MaxDesignSize reached without convergence.
  Paused,          ///< OnIteration requested a pause (resumable).
  Failed,          ///< Measurement aborted; see ModelBuildResult::Error.
};

const char *buildStopName(BuildStop Stop);

/// Everything the evaluation needs from one build.
struct ModelBuildResult {
  std::unique_ptr<Model> FittedModel;
  std::vector<DesignPoint> TrainPoints;
  std::vector<double> TrainY;
  std::vector<DesignPoint> TestPoints;
  std::vector<double> TestY;
  ModelQuality TestQuality;
  /// (training size, test MAPE) after each iteration: the Figure 5 curve.
  std::vector<std::pair<size_t, double>> ErrorCurve;
  size_t SimulationsUsed = 0;
  /// How the loop ended. Paused and Failed results may carry no fitted
  /// model if the first iteration did not complete.
  BuildStop Stop = BuildStop::Converged;
  /// Design points dropped by a skip-on-fault measurement policy (they
  /// appear in neither TrainPoints nor TestPoints).
  std::vector<DesignPoint> SkippedPoints;
  /// Diagnostic for Stop == Failed.
  std::string Error;
};

/// Runs the Figure 1 loop against \p Surface. The single entry point: an
/// external test set, iteration callbacks and fault handling are all
/// carried by \p Options.
ModelBuildResult buildModel(ResponseSurface &Surface,
                            const ModelBuilderOptions &Options);

} // namespace msem

#endif // MSEM_CORE_MODELBUILDER_H
