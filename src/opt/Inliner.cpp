//===- opt/Inliner.cpp - Function inlining (-finline-functions) --------------===//
//
// Inlines call sites bottom-up, governed by the three Table 1 heuristics:
//
//   #10 max-inline-insns-auto: hard cap on the callee's instruction count;
//   #12 inline-call-cost: profitability gate -- a callee is worth inlining
//       when its body is small relative to the saved call overhead
//       (callee size <= 8 * inline-call-cost), so larger call costs admit
//       larger callees;
//   #11 inline-unit-growth: global budget -- the module may grow by at most
//       this percentage over its pre-inlining size.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "ir/Cloning.h"
#include "ir/Module.h"
#include "opt/Passes.h"

#include <unordered_map>

using namespace msem;

namespace {

/// Inlines one call site. \p CallIdx is the index of the call in \p CallBB.
void inlineCallSite(Function &Caller, BasicBlock *CallBB, size_t CallIdx) {
  Instruction *Call = CallBB->instructions()[CallIdx].get();
  Function *Callee = Call->callee();

  // 1. Split the block after the call: the continuation gets everything
  //    after the call, including the terminator.
  BasicBlock *Cont = Caller.createBlock(CallBB->name() + ".cont");
  while (CallBB->size() > CallIdx + 1) {
    auto I = CallBB->detachAt(CallIdx + 1);
    Cont->append(std::move(I));
  }
  // Successor phis that named CallBB now receive control from Cont.
  for (BasicBlock *Succ : Cont->successors()) {
    for (auto &I : Succ->instructions()) {
      if (I->opcode() != Opcode::Phi)
        break;
      for (BasicBlock *&From : I->phiBlocks())
        if (From == CallBB)
          From = Cont;
    }
  }

  // 2. Clone the callee body into the caller, mapping formals to actuals.
  CloneMapping Map;
  for (unsigned A = 0; A < Callee->numArgs(); ++A)
    Map.Values[Callee->arg(A)] = Call->operand(A);
  std::vector<BasicBlock *> Region;
  for (const auto &BB : Callee->blocks())
    Region.push_back(BB.get());
  std::vector<BasicBlock *> Cloned =
      cloneRegion(Region, Caller, "." + Callee->name(), Map);
  BasicBlock *ClonedEntry = Map.Blocks.at(Callee->entry());

  // 3. Rewrite cloned returns into jumps to the continuation, collecting
  //    the returned values for the result phi.
  std::vector<std::pair<Value *, BasicBlock *>> Returns;
  for (BasicBlock *BB : Cloned) {
    Instruction *Term = BB->terminator();
    if (!Term || Term->opcode() != Opcode::Ret)
      continue;
    Value *RetVal = Term->numOperands() ? Term->operand(0) : nullptr;
    size_t TermIdx = BB->indexOf(Term);
    BB->eraseAt(TermIdx);
    auto Jump = std::make_unique<Instruction>(Opcode::Jmp, Type::Void);
    Jump->setSuccessor(0, Cont);
    BB->append(std::move(Jump));
    Returns.push_back({RetVal, BB});
  }

  // 4. Replace the call's value with a phi over the returned values.
  if (Call->type() != Type::Void) {
    auto Phi = std::make_unique<Instruction>(Opcode::Phi, Call->type());
    for (auto &[V, BB] : Returns)
      Phi->addPhiIncoming(V, BB);
    Instruction *ResultPhi = Cont->insertAt(0, std::move(Phi));
    Caller.replaceAllUses(Call, ResultPhi);
  }

  // 5. The call block now jumps into the cloned entry.
  CallBB->eraseAt(CallIdx); // Drop the call itself.
  auto Jump = std::make_unique<Instruction>(Opcode::Jmp, Type::Void);
  Jump->setSuccessor(0, ClonedEntry);
  CallBB->append(std::move(Jump));

  // 6. Hoist cloned allocas into the caller's entry block so that frame
  //    slots are allocated once per activation, not per loop iteration.
  BasicBlock *Entry = Caller.entry();
  for (BasicBlock *BB : Cloned) {
    auto &Instrs = BB->instructions();
    for (size_t Idx = 0; Idx < Instrs.size();) {
      if (Instrs[Idx]->opcode() == Opcode::Alloca && BB != Entry) {
        auto I = BB->detachAt(Idx);
        Entry->insertAt(0, std::move(I));
      } else {
        ++Idx;
      }
    }
  }
}

} // namespace

bool msem::runInline(Module &M, const OptimizationConfig &Config) {
  if (!Config.InlineFunctions)
    return false;

  const unsigned OriginalSize = M.instructionCount();
  const unsigned Budget =
      OriginalSize +
      OriginalSize * static_cast<unsigned>(Config.InlineUnitGrowth) / 100;
  const unsigned SizeCap = static_cast<unsigned>(
      std::min<int>(Config.MaxInlineInsnsAuto, 8 * Config.InlineCallCost));

  bool EverChanged = false;
  // Iterate: inlining may expose further (cloned) call sites.
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    for (const auto &F : M.functions()) {
      bool FunctionChanged = true;
      while (FunctionChanged) {
        FunctionChanged = false;
        for (const auto &BB : F->blocks()) {
          for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
            Instruction *I = BB->instructions()[Idx].get();
            if (I->opcode() != Opcode::Call)
              continue;
            Function *Callee = I->callee();
            if (Callee == F.get())
              continue; // No direct self-inlining.
            unsigned CalleeSize = Callee->instructionCount();
            if (CalleeSize > SizeCap)
              continue;
            if (M.instructionCount() + CalleeSize > Budget)
              continue;
            inlineCallSite(*F, BB.get(), Idx);
            Changed = FunctionChanged = true;
            break; // Block structure changed; rescan the function.
          }
          if (FunctionChanged)
            break;
        }
      }
    }
    if (!Changed)
      break;
    EverChanged = true;
  }
  return EverChanged;
}
