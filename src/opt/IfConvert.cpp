//===- opt/IfConvert.cpp - If-conversion to conditional moves --------------------===//
//
// Converts small, side-effect-free branch hammocks into straight-line code
// with selects (lowered to conditional moves), trading instruction count
// for branch-predictor pressure -- the classic if-conversion trade-off
// whose profitability depends on the branch predictor configuration, an
// interaction the extended design space (Section 2.2's "other variables a
// compiler writer may be interested in modeling") lets the models see.
//
// Shapes handled, for a block P ending in `br cond, T, E`:
//
//   diamond:  T and E are single-predecessor, pure, small, both jump to
//             the same join J;
//   triangle: T is single-predecessor, pure, small, jumps to J == E.
//
// The side block(s) are speculated into P and every join phi becomes a
// select. The speculation budget (#instructions) is the pass's heuristic.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "ir/Module.h"
#include "opt/Passes.h"

using namespace msem;

namespace {

/// True if every instruction of \p BB (except the terminator) may be
/// speculated: pure, no phis, and within the size budget.
bool isSpeculatable(const BasicBlock &BB, unsigned MaxInsns) {
  if (BB.size() == 0 || BB.size() - 1 > MaxInsns)
    return false;
  for (size_t I = 0; I + 1 < BB.size(); ++I) {
    const Instruction &Ins = *BB.instructions()[I];
    if (!Ins.isPure() || Ins.opcode() == Opcode::Phi)
      return false;
  }
  const Instruction *Term = BB.terminator();
  return Term && Term->opcode() == Opcode::Jmp;
}

/// Moves all non-terminator instructions of \p From to the end of \p To
/// (before To's terminator slot -- To's terminator must already be gone).
void hoistBody(BasicBlock &From, BasicBlock &To) {
  while (From.size() > 1) {
    auto I = From.detachAt(0);
    To.append(std::move(I));
  }
}

bool convertOne(Function &F, unsigned MaxInsns) {
  auto Preds = computePredecessors(F);
  for (const auto &BBPtr : F.blocks()) {
    BasicBlock *P = BBPtr.get();
    Instruction *Term = P->terminator();
    if (!Term || Term->opcode() != Opcode::Br)
      continue;
    BasicBlock *T = Term->successor(0);
    BasicBlock *E = Term->successor(1);
    if (T == E)
      continue;
    Value *Cond = Term->operand(0);

    auto SinglePredOf = [&](BasicBlock *BB) {
      const auto &Ps = Preds.at(BB);
      return Ps.size() == 1 && Ps.front() == P;
    };

    BasicBlock *Join = nullptr;
    bool Diamond = false;
    if (SinglePredOf(T) && SinglePredOf(E) && isSpeculatable(*T, MaxInsns) &&
        isSpeculatable(*E, MaxInsns) &&
        T->terminator()->successor(0) == E->terminator()->successor(0)) {
      Join = T->terminator()->successor(0);
      Diamond = true;
    } else if (SinglePredOf(T) && isSpeculatable(*T, MaxInsns) &&
               T->terminator()->successor(0) == E) {
      Join = E; // Triangle with the fall-through edge as the join.
    } else {
      continue;
    }
    // The join must not be a loop header relative to P (converting a back
    // edge would break the loop's phi structure); requiring that the join
    // has exactly the expected predecessors keeps this safe.
    {
      const auto &JoinPreds = Preds.at(Join);
      size_t Expected = Diamond ? 2u : 2u; // {T,E} or {T,P}.
      if (JoinPreds.size() != Expected)
        continue;
      if (Join == P || Join == T || Join == E)
        continue;
    }

    // Rewrite the join's phis into selects (placed in P after the hoisted
    // bodies). Gather replacements first.
    std::vector<std::pair<Instruction *, std::unique_ptr<Instruction>>>
        PhiToSelect;
    bool AllPhisConvertible = true;
    for (const auto &I : Join->instructions()) {
      if (I->opcode() != Opcode::Phi)
        break;
      Value *TVal = nullptr, *EVal = nullptr;
      for (size_t Idx = 0; Idx < I->phiBlocks().size(); ++Idx) {
        if (I->phiBlocks()[Idx] == T)
          TVal = I->operand(Idx);
        else if (I->phiBlocks()[Idx] == (Diamond ? E : P))
          EVal = I->operand(Idx);
      }
      if (!TVal || !EVal) {
        AllPhisConvertible = false;
        break;
      }
      auto Sel = std::make_unique<Instruction>(Opcode::Select, I->type());
      Sel->addOperand(Cond);
      Sel->addOperand(TVal);
      Sel->addOperand(EVal);
      PhiToSelect.push_back({I.get(), std::move(Sel)});
    }
    if (!AllPhisConvertible)
      continue;

    // Commit: drop P's branch, splice the side bodies, emit selects, jump.
    P->eraseAt(P->indexOf(Term));
    hoistBody(*T, *P);
    if (Diamond)
      hoistBody(*E, *P);
    std::unordered_map<Value *, Value *> Replacements;
    for (auto &[Phi, Sel] : PhiToSelect) {
      Instruction *Placed = P->append(std::move(Sel));
      Replacements[Phi] = Placed;
    }
    auto Jump = std::make_unique<Instruction>(Opcode::Jmp, Type::Void);
    Jump->setSuccessor(0, Join);
    P->append(std::move(Jump));

    // Remove the converted phis and dead side blocks.
    while (!Join->empty() &&
           Join->instructions().front()->opcode() == Opcode::Phi)
      Join->eraseAt(0);
    if (!Replacements.empty())
      F.rewriteOperands(Replacements);
    F.eraseBlock(T);
    if (Diamond)
      F.eraseBlock(E);
    return true; // CFG changed; caller re-runs with fresh analyses.
  }
  return false;
}

} // namespace

bool msem::runIfConvert(Function &F, const OptimizationConfig &Config) {
  if (!Config.IfConvert)
    return false;
  bool Changed = false;
  for (int Round = 0; Round < 64; ++Round) {
    if (!convertOne(F, static_cast<unsigned>(Config.MaxIfConvertInsns)))
      break;
    Changed = true;
  }
  return Changed;
}
