//===- opt/Prefetcher.cpp - Software prefetching (-fprefetch-loop-arrays) ----===//
//
// For counted loops, finds loads whose address is affine in the induction
// variable (base + coeff*iv with loop-invariant base) and inserts a
// non-binding prefetch a fixed distance ahead. The distance adapts to the
// access stride so that small strides prefetch several iterations out while
// large strides prefetch the next few lines, mirroring gcc's
// -fprefetch-loop-arrays planning. Whether the prefetch helps (hiding DRAM
// latency) or hurts (cache pollution, bus contention) is decided by the
// microarchitectural model -- exactly the interaction the paper studies.
//
//===----------------------------------------------------------------------===//

#include "ir/LoopInfo.h"
#include "ir/Module.h"
#include "opt/Passes.h"

#include <cstdlib>
#include <unordered_set>

using namespace msem;

namespace {

/// Result of affine analysis: Value == Inv + Coeff * IV (Coeff in bytes
/// per IV increment when used on address expressions).
struct AffineResult {
  bool Ok = false;
  int64_t Coeff = 0;
};

AffineResult
analyzeAffine(Value *V, const Instruction *IndVar,
              const std::unordered_set<const Value *> &InLoop,
              unsigned Depth = 0) {
  AffineResult R;
  if (Depth > 16)
    return R;
  if (V == IndVar) {
    R.Ok = true;
    R.Coeff = 1;
    return R;
  }
  // Loop-invariant leaf (constant, argument, global, or out-of-loop def).
  if (!InLoop.count(V)) {
    R.Ok = true;
    R.Coeff = 0;
    return R;
  }
  auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return R;
  switch (I->opcode()) {
  case Opcode::Add:
  case Opcode::PtrAdd: {
    AffineResult A = analyzeAffine(I->operand(0), IndVar, InLoop, Depth + 1);
    AffineResult B = analyzeAffine(I->operand(1), IndVar, InLoop, Depth + 1);
    if (A.Ok && B.Ok) {
      R.Ok = true;
      R.Coeff = A.Coeff + B.Coeff;
    }
    return R;
  }
  case Opcode::Sub: {
    AffineResult A = analyzeAffine(I->operand(0), IndVar, InLoop, Depth + 1);
    AffineResult B = analyzeAffine(I->operand(1), IndVar, InLoop, Depth + 1);
    if (A.Ok && B.Ok) {
      R.Ok = true;
      R.Coeff = A.Coeff - B.Coeff;
    }
    return R;
  }
  case Opcode::Mul: {
    auto *CA = dyn_cast<Constant>(I->operand(0));
    auto *CB = dyn_cast<Constant>(I->operand(1));
    if (CB && CB->type() == Type::I64) {
      AffineResult A =
          analyzeAffine(I->operand(0), IndVar, InLoop, Depth + 1);
      if (A.Ok) {
        R.Ok = true;
        R.Coeff = A.Coeff * CB->intValue();
      }
      return R;
    }
    if (CA && CA->type() == Type::I64) {
      AffineResult B =
          analyzeAffine(I->operand(1), IndVar, InLoop, Depth + 1);
      if (B.Ok) {
        R.Ok = true;
        R.Coeff = B.Coeff * CA->intValue();
      }
      return R;
    }
    return R;
  }
  case Opcode::Shl: {
    auto *CB = dyn_cast<Constant>(I->operand(1));
    if (CB && CB->type() == Type::I64 && CB->intValue() >= 0 &&
        CB->intValue() < 32) {
      AffineResult A =
          analyzeAffine(I->operand(0), IndVar, InLoop, Depth + 1);
      if (A.Ok) {
        R.Ok = true;
        R.Coeff = A.Coeff << CB->intValue();
      }
    }
    return R;
  }
  default:
    return R;
  }
}

bool prefetchLoop(Function &F, Loop &L) {
  CountedLoop CL;
  if (!LoopAnalysis::matchCountedLoop(L, CL))
    return false;

  std::unordered_set<const Value *> InLoop;
  for (BasicBlock *BB : L.Blocks)
    for (const auto &I : BB->instructions())
      InLoop.insert(I.get());

  Module &M = *F.parent();
  bool Changed = false;
  unsigned Inserted = 0;
  const unsigned MaxPrefetchesPerLoop = 4; // gcc's simultaneous-prefetch cap.

  for (BasicBlock *BB : L.Blocks) {
    auto &Instrs = BB->instructions();
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
      if (Inserted >= MaxPrefetchesPerLoop)
        return Changed;
      Instruction *I = Instrs[Idx].get();
      if (I->opcode() != Opcode::Load)
        continue;
      Value *Addr = I->operand(0);
      AffineResult A = analyzeAffine(Addr, CL.IndVar, InLoop);
      if (!A.Ok || A.Coeff == 0)
        continue;
      int64_t StrideBytes = A.Coeff * CL.StepValue;
      if (StrideBytes == 0 || std::llabs(StrideBytes) > 256)
        continue;
      // Look ahead far enough to cover DRAM latency: several iterations
      // for small strides, a couple of lines for large ones.
      int64_t AheadIters =
          std::max<int64_t>(2, std::min<int64_t>(16, 512 / std::llabs(StrideBytes)));
      int64_t Delta = StrideBytes * AheadIters;

      auto AddrAhead = std::make_unique<Instruction>(Opcode::PtrAdd,
                                                     Type::Ptr);
      AddrAhead->addOperand(Addr);
      AddrAhead->addOperand(M.constInt(Delta));
      Instruction *AheadPtr = BB->insertAt(Idx, std::move(AddrAhead));

      auto Pref = std::make_unique<Instruction>(Opcode::Prefetch,
                                                Type::Void);
      Pref->addOperand(AheadPtr);
      BB->insertAt(Idx + 1, std::move(Pref));

      Idx += 2; // Skip the two instructions we just inserted.
      ++Inserted;
      Changed = true;
    }
  }
  return Changed;
}

} // namespace

bool msem::runPrefetch(Function &F) {
  DominatorTree DT(F);
  LoopAnalysis LA(F, DT);
  bool Changed = false;
  for (const auto &L : LA.loops())
    Changed |= prefetchLoop(F, *L);
  return Changed;
}
