//===- opt/DeadCodeElim.cpp - Mark-and-sweep dead code elimination ----------===//
//
// Liveness roots are side-effecting instructions and terminators; everything
// reachable through operands is live. Unreferenced pure instructions --
// including cyclic dead phi webs -- are removed.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "opt/Passes.h"

#include <unordered_set>
#include <vector>

using namespace msem;

bool msem::runDeadCodeElim(Function &F) {
  std::unordered_set<const Instruction *> Live;
  std::vector<const Instruction *> Work;

  auto MarkOperands = [&](const Instruction *I) {
    for (const Value *Op : I->operands()) {
      const auto *OpI = dyn_cast<Instruction>(Op);
      if (OpI && Live.insert(OpI).second)
        Work.push_back(OpI);
    }
  };

  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      // Roots: anything whose execution is observable. Prefetch is kept:
      // it has no uses but exists to change timing behaviour.
      bool IsRoot = I->isTerminator() || I->hasSideEffects() ||
                    I->opcode() == Opcode::Prefetch;
      if (IsRoot && Live.insert(I.get()).second)
        Work.push_back(I.get());
    }
  }
  while (!Work.empty()) {
    const Instruction *I = Work.back();
    Work.pop_back();
    MarkOperands(I);
  }

  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    auto &Instrs = BB->instructions();
    for (size_t Idx = Instrs.size(); Idx-- > 0;) {
      if (!Live.count(Instrs[Idx].get())) {
        BB->eraseAt(Idx);
        Changed = true;
      }
    }
  }
  return Changed;
}
