//===- opt/Licm.cpp - Loop-invariant code motion (-floop-optimize) -----------===//
//
// Hoists pure instructions whose operands are loop-invariant into the loop
// preheader, innermost loops first, iterating to a fixpoint per loop. This
// models gcc's -floop-optimize ("move constant expressions out of loops,
// simplify exit test conditions").
//
//===----------------------------------------------------------------------===//

#include "ir/LoopInfo.h"
#include "ir/Module.h"
#include "opt/Passes.h"

#include <unordered_set>

using namespace msem;

namespace {

/// Hoists from one loop; returns true on change.
bool hoistFromLoop(Function &F, Loop &L) {
  BasicBlock *Pre = LoopAnalysis::ensurePreheader(F, L);

  std::unordered_set<const Value *> InLoop;
  for (BasicBlock *BB : L.Blocks)
    for (const auto &I : BB->instructions())
      InLoop.insert(I.get());

  auto IsInvariant = [&](const Instruction &I) {
    if (!I.isPure())
      return false;
    for (const Value *Op : I.operands())
      if (InLoop.count(Op))
        return false;
    return true;
  };

  bool Changed = false;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (BasicBlock *BB : L.Blocks) {
      auto &Instrs = BB->instructions();
      for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
        Instruction *I = Instrs[Idx].get();
        if (!IsInvariant(*I))
          continue;
        // Move to the preheader, before its terminator. The definition
        // then dominates the whole loop.
        std::unique_ptr<Instruction> Detached = BB->detachAt(Idx);
        InLoop.erase(I);
        Pre->insertBeforeTerminator(std::move(Detached));
        Progress = true;
        Changed = true;
        --Idx; // Re-examine the instruction that slid into this slot.
      }
    }
  }
  return Changed;
}

} // namespace

bool msem::runLicm(Function &F) {
  bool EverChanged = false;
  // ensurePreheader may add blocks, invalidating the analyses; recompute
  // until a pass over all loops makes no change (bounded).
  for (int Round = 0; Round < 8; ++Round) {
    DominatorTree DT(F);
    LoopAnalysis LA(F, DT);
    bool Changed = false;
    // Innermost first: deeper loops appear later in the sorted loop list.
    const auto &Loops = LA.loops();
    for (size_t Idx = Loops.size(); Idx-- > 0;)
      Changed |= hoistFromLoop(F, *Loops[Idx]);
    if (!Changed)
      break;
    EverChanged = true;
  }
  return EverChanged;
}
