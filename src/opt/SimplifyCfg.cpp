//===- opt/SimplifyCfg.cpp - CFG cleanup -------------------------------------===//
//
// Three conservative transforms run to a bounded fixpoint:
//   1. br on a constant condition -> jmp (phi incomings on the dead edge are
//      dropped).
//   2. unreachable block removal.
//   3. merging a block into its unique jmp-predecessor when it is that
//      predecessor's unique successor.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "ir/Module.h"
#include "opt/Passes.h"

#include <unordered_map>

using namespace msem;

namespace {

/// Drops the phi incoming entries for edge From->To.
void removePhiIncoming(BasicBlock *To, BasicBlock *From) {
  for (auto &I : To->instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    auto &Blocks = I->phiBlocks();
    auto &Ops = I->operands();
    for (size_t Idx = Blocks.size(); Idx-- > 0;) {
      if (Blocks[Idx] == From) {
        Blocks.erase(Blocks.begin() + Idx);
        Ops.erase(Ops.begin() + Idx);
      }
    }
  }
}

bool foldConstantBranches(Function &F) {
  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    Instruction *Term = BB->terminator();
    if (!Term || Term->opcode() != Opcode::Br)
      continue;
    auto *C = dyn_cast<Constant>(Term->operand(0));
    if (!C)
      continue;
    BasicBlock *Taken = C->intValue() != 0 ? Term->successor(0)
                                           : Term->successor(1);
    BasicBlock *Dead = C->intValue() != 0 ? Term->successor(1)
                                          : Term->successor(0);
    if (Dead != Taken)
      removePhiIncoming(Dead, BB.get());
    // Rewrite the branch into a jump in place.
    size_t TermIdx = BB->indexOf(Term);
    BB->eraseAt(TermIdx);
    auto Jump = std::make_unique<Instruction>(Opcode::Jmp, Type::Void);
    Jump->setSuccessor(0, Taken);
    BB->append(std::move(Jump));
    Changed = true;
  }
  return Changed;
}

/// Merges S into P when P ends in `jmp S`, S has P as its only predecessor
/// and S is not the function entry.
bool mergeLinearPairs(Function &F) {
  auto Preds = computePredecessors(F);
  for (const auto &BBPtr : F.blocks()) {
    BasicBlock *P = BBPtr.get();
    Instruction *Term = P->terminator();
    if (!Term || Term->opcode() != Opcode::Jmp)
      continue;
    BasicBlock *S = Term->successor(0);
    if (S == P || S == F.entry())
      continue;
    const auto &SPreds = Preds.at(S);
    if (SPreds.size() != 1 || SPreds.front() != P)
      continue;

    // Collapse S's phis (single incoming, from P).
    std::unordered_map<Value *, Value *> Replacements;
    while (!S->empty() && S->instructions().front()->opcode() == Opcode::Phi) {
      Instruction *Phi = S->instructions().front().get();
      assert(Phi->numOperands() == 1 && "single-pred block phi arity");
      Replacements[Phi] = Phi->operand(0);
      S->eraseAt(0);
    }
    if (!Replacements.empty())
      F.rewriteOperands(Replacements);

    // Drop P's jmp, move S's instructions into P.
    P->eraseAt(P->indexOf(Term));
    while (!S->empty()) {
      auto I = S->detachAt(0);
      P->append(std::move(I));
    }
    // Phis in S's successors referenced S; they now come from P.
    for (BasicBlock *Succ : P->successors()) {
      for (auto &I : Succ->instructions()) {
        if (I->opcode() != Opcode::Phi)
          break;
        for (BasicBlock *&From : I->phiBlocks())
          if (From == S)
            From = P;
      }
    }
    F.eraseBlock(S);
    return true; // Predecessor map is stale; caller re-runs.
  }
  return false;
}

} // namespace

bool msem::runSimplifyCfg(Function &F) {
  bool EverChanged = false;
  for (int Round = 0; Round < 64; ++Round) {
    bool Changed = false;
    Changed |= foldConstantBranches(F);
    Changed |= removeUnreachableBlocks(F) > 0;
    Changed |= mergeLinearPairs(F);
    if (!Changed)
      break;
    EverChanged = true;
  }
  return EverChanged;
}
