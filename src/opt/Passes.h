//===- opt/Passes.h - Optimization pass entry points -------------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry points of all IR-level optimization passes and the flag-driven
/// pipeline. Each pass returns true when it changed the IR. Passes keep the
/// module verifier-clean; tests assert this around every invocation.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_OPT_PASSES_H
#define MSEM_OPT_PASSES_H

#include "ir/Module.h"
#include "opt/OptimizationConfig.h"

namespace msem {

/// Constant folding, algebraic simplification and phi collapsing.
bool runConstantFold(Function &F);

/// Mark-and-sweep dead code elimination (handles dead phi cycles).
bool runDeadCodeElim(Function &F);

/// Folds constant branches, removes unreachable blocks and merges
/// trivially linear block pairs.
bool runSimplifyCfg(Function &F);

/// Global value numbering CSE over pure instructions (-fgcse).
bool runGvn(Function &F);

/// Loop-invariant code motion of pure instructions (-floop-optimize).
bool runLicm(Function &F);

/// Induction-variable strength reduction: mul(iv, c) becomes an additive
/// recurrence (-fstrength-reduce).
bool runStrengthReduce(Function &F);

/// Loop unrolling with retained exit tests (-funroll-loops). Honours
/// MaxUnrollTimes and MaxUnrolledInsns from \p Config.
bool runUnroll(Function &F, const OptimizationConfig &Config);

/// Software prefetch insertion for strided loads in counted loops
/// (-fprefetch-loop-arrays).
bool runPrefetch(Function &F);

/// Pre-RA list scheduling within blocks: hoists loads away from their uses
/// by estimated latency (-fschedule-insns2, the "before RA" half; the
/// "after RA" half runs in codegen).
bool runIrSchedule(Function &F);

/// Static branch-probability-driven block layout (-freorder-blocks).
bool runReorderBlocks(Function &F);

/// Function inlining driven by the Table 1 heuristics (#10-#12).
bool runInline(Module &M, const OptimizationConfig &Config);

/// If-conversion of small pure hammocks into selects (extension knob).
bool runIfConvert(Function &F, const OptimizationConfig &Config);

/// Tail duplication of small join blocks (extension knob).
bool runTailDup(Function &F, const OptimizationConfig &Config);

/// Runs cleanup (fold + DCE + CFG simplification) on every function until
/// fixpoint (bounded).
void runCleanup(Module &M);

/// The full flag-driven pipeline in gcc-like order. Cleanup passes always
/// run; optimization passes run according to \p Config. OmitFramePointer
/// and the post-RA half of ScheduleInsns2 are consumed by codegen.
void runPassPipeline(Module &M, const OptimizationConfig &Config);

} // namespace msem

#endif // MSEM_OPT_PASSES_H
