//===- opt/TailDup.cpp - Tail duplication (trace formation) ----------------------===//
//
// Duplicates small join blocks into their predecessors so each incoming
// path gets its own straight-line copy -- the code-growth half of trace
// scheduling the paper's Section 2.2 describes ("the optimizer can be
// tuned to limit the increase in code size due to tail duplication").
// Removing merge points lengthens fall-through runs (fewer taken
// branches) at an instruction-cache cost; the growth budget is the pass's
// heuristic.
//
// A join J qualifies when:
//   - it has >= 2 predecessors and is not the entry block;
//   - it is not a loop header (duplicating one would break the canonical
//     loop shape the other loop passes rely on);
//   - its body is within the size budget;
//   - it ends in `ret` or `jmp` (single successor keeps phi fixups local).
//
// Each predecessor other than the first receives a private copy with J's
// phis resolved to that predecessor's incoming values.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "ir/Cloning.h"
#include "ir/LoopInfo.h"
#include "ir/Module.h"
#include "opt/Passes.h"

#include <unordered_set>

using namespace msem;

namespace {

bool duplicateOne(Function &F, unsigned MaxInsns) {
  DominatorTree DT(F);
  LoopAnalysis LA(F, DT);
  std::unordered_set<const BasicBlock *> Headers;
  for (const auto &L : LA.loops())
    Headers.insert(L->Header);
  auto Preds = computePredecessors(F);

  for (const auto &BBPtr : F.blocks()) {
    BasicBlock *J = BBPtr.get();
    if (J == F.entry() || Headers.count(J))
      continue;
    const auto &JPreds = Preds.at(J);
    if (JPreds.size() < 2 || J->size() > MaxInsns)
      continue;
    Instruction *Term = J->terminator();
    if (!Term ||
        (Term->opcode() != Opcode::Ret && Term->opcode() != Opcode::Jmp))
      continue;
    // Values defined in J and used elsewhere would need cross-copy phis;
    // keep the transform local by requiring all uses internal.
    {
      std::unordered_set<const Value *> Defined;
      for (const auto &I : J->instructions())
        Defined.insert(I.get());
      bool Escapes = false;
      for (const auto &OtherBB : F.blocks()) {
        if (OtherBB.get() == J)
          continue;
        for (const auto &I : OtherBB->instructions())
          for (const Value *Op : I->operands())
            if (Defined.count(Op))
              Escapes = true;
      }
      if (Escapes)
        continue;
    }
    BasicBlock *Succ =
        Term->opcode() == Opcode::Jmp ? Term->successor(0) : nullptr;
    if (Succ == J)
      continue; // Self-loop (shouldn't happen for a non-header, but safe).

    // Duplicate for every predecessor after the first.
    for (size_t PI = 1; PI < JPreds.size(); ++PI) {
      BasicBlock *P = JPreds[PI];
      CloneMapping Map;
      std::vector<BasicBlock *> Region{J};
      cloneRegion(Region, F, ".td" + std::to_string(PI), Map);
      BasicBlock *Copy = Map.Blocks.at(J);

      // Resolve the copy's phis to this predecessor's incoming values.
      std::unordered_map<Value *, Value *> Repl;
      for (const auto &I : J->instructions()) {
        if (I->opcode() != Opcode::Phi)
          break;
        Repl[Map.Values.at(I.get())] = I->phiIncomingFor(P);
      }
      while (!Copy->empty() &&
             Copy->instructions().front()->opcode() == Opcode::Phi)
        Copy->eraseAt(0);
      if (!Repl.empty())
        F.rewriteOperands(Repl);

      // Retarget P's edge J -> Copy, and drop P's phi contributions to J.
      Instruction *PTerm = P->terminator();
      for (unsigned S = 0; S < PTerm->numSuccessors(); ++S)
        if (PTerm->successor(S) == J)
          PTerm->setSuccessor(S, Copy);
      for (auto &I : J->instructions()) {
        if (I->opcode() != Opcode::Phi)
          break;
        auto &Blocks = I->phiBlocks();
        auto &Ops = I->operands();
        for (size_t Idx = Blocks.size(); Idx-- > 0;) {
          if (Blocks[Idx] == P) {
            Blocks.erase(Blocks.begin() + Idx);
            Ops.erase(Ops.begin() + Idx);
          }
        }
      }
      // The successor gains a predecessor: extend its phis.
      if (Succ) {
        for (auto &I : Succ->instructions()) {
          if (I->opcode() != Opcode::Phi)
            break;
          Value *FromJ = I->phiIncomingFor(J);
          auto It = Map.Values.find(FromJ);
          I->addPhiIncoming(It == Map.Values.end() ? FromJ : It->second,
                            Copy);
        }
      }
    }
    // J keeps its first predecessor only; its remaining phis collapse via
    // the cleanup passes.
    return true;
  }
  return false;
}

} // namespace

bool msem::runTailDup(Function &F, const OptimizationConfig &Config) {
  if (!Config.Tracer)
    return false;
  bool Changed = false;
  // One join per round (analyses go stale); budget-bounded.
  for (int Round = 0; Round < 16; ++Round) {
    if (!duplicateOne(F, static_cast<unsigned>(Config.TailDupInsns)))
      break;
    Changed = true;
    runConstantFold(F);
    runDeadCodeElim(F);
  }
  return Changed;
}
