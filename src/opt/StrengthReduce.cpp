//===- opt/StrengthReduce.cpp - IV strength reduction (-fstrength-reduce) ----===//
//
// Rewrites mul(iv, C) inside a counted loop as an additive recurrence:
//
//   pre:    acc.init = mul(init, C)          ; loop-invariant, folds often
//   header: acc = phi [acc.init, pre], [acc.next, latch]
//   latch:  acc.next = add acc, C*step
//
// replacing a per-iteration multiply (3-cycle FU latency on our machine
// model) with an add. Element-address computations produced by the
// workloads (index * element-size) are the dominant beneficiaries,
// exactly like gcc's array-indexing strength reduction.
//
// A second phase performs linear function test replacement (LFTR): when
// the original induction variable survives only to drive the loop's exit
// compare, the compare is rewritten against one of the reduced
// recurrences (with a pre-scaled bound computed in the preheader) so that
// dead-code elimination can delete the induction variable entirely --
// gcc's induction variable elimination.
//
//===----------------------------------------------------------------------===//

#include "ir/LoopInfo.h"
#include "ir/Module.h"
#include "opt/Passes.h"

using namespace msem;

namespace {

/// Flips an ordering predicate for a negative scale factor.
CmpPred flipForNegativeScale(CmpPred P) {
  switch (P) {
  case CmpPred::LT:
    return CmpPred::GT;
  case CmpPred::LE:
    return CmpPred::GE;
  case CmpPred::GT:
    return CmpPred::LT;
  case CmpPred::GE:
    return CmpPred::LE;
  default:
    return P; // EQ/NE are scale-invariant (C != 0).
  }
}

/// Attempts linear function test replacement on one counted loop.
/// Requires a prior DCE run so that stale uses do not pin the IV.
bool lftrLoop(Function &F, Loop &L) {
  CountedLoop CL;
  if (!LoopAnalysis::matchCountedLoop(L, CL))
    return false;
  if (!L.Preheader)
    return false;
  Module &M = *F.parent();

  // The IV must be used only by its step and the exit compare; the step
  // only by the phi and the compare.
  auto Uses = F.countUses();
  auto UseCount = [&](const Value *V) {
    auto It = Uses.find(V);
    return It == Uses.end() ? 0u : It->second;
  };
  unsigned IvUses = UseCount(CL.IndVar);
  unsigned StepUses = UseCount(CL.Step);
  unsigned IvExpected = CL.CondOnNext ? 1u : 2u;   // step (+ cond).
  unsigned StepExpected = CL.CondOnNext ? 2u : 1u; // phi (+ cond).
  if (IvUses != IvExpected || StepUses != StepExpected)
    return false;

  // Find a replacement recurrence: another header phi with a constant
  // step K that is an exact multiple of the IV step.
  BasicBlock *Latch = L.Latches.front();
  for (const auto &I : L.Header->instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    Instruction *Acc = I.get();
    if (Acc == CL.IndVar || Acc->type() != Type::I64)
      continue;
    if (Acc->numOperands() != 2)
      continue;
    auto *AccNext = dyn_cast<Instruction>(Acc->phiIncomingFor(Latch));
    if (!AccNext || AccNext->opcode() != Opcode::Add)
      continue;
    Value *Other = nullptr;
    if (AccNext->operand(0) == Acc)
      Other = AccNext->operand(1);
    else if (AccNext->operand(1) == Acc)
      Other = AccNext->operand(0);
    auto *KConst = Other ? dyn_cast<Constant>(Other) : nullptr;
    if (!KConst || KConst->type() != Type::I64)
      continue;
    int64_t K = KConst->intValue();
    if (K == 0 || K % CL.StepValue != 0)
      continue;
    int64_t Scale = K / CL.StepValue;
    if (Scale == 0)
      continue;

    // Preheader: boundScaled = accInit + (bound - init) * Scale.
    Value *AccInit = Acc->phiIncomingFor(L.Preheader);
    auto MakePre = [&](Opcode Op, Value *A, Value *B) {
      auto NI = std::make_unique<Instruction>(Op, Type::I64);
      NI->addOperand(A);
      NI->addOperand(B);
      return L.Preheader->insertBeforeTerminator(std::move(NI));
    };
    Value *Span = MakePre(Opcode::Sub, CL.Bound, CL.Init);
    Value *Scaled = MakePre(Opcode::Mul, Span, M.constInt(Scale));
    Value *BoundScaled = MakePre(Opcode::Add, AccInit, Scaled);

    // Rewrite the compare in place.
    Value *NewIv = CL.CondOnNext ? static_cast<Value *>(AccNext)
                                 : static_cast<Value *>(Acc);
    for (unsigned OpIdx = 0; OpIdx < CL.Cond->numOperands(); ++OpIdx) {
      Value *Op = CL.Cond->operand(OpIdx);
      if (Op == CL.IndVar || Op == CL.Step)
        CL.Cond->setOperand(OpIdx, NewIv);
      else if (Op == CL.Bound)
        CL.Cond->setOperand(OpIdx, BoundScaled);
    }
    if (Scale < 0)
      CL.Cond->setCmpPred(flipForNegativeScale(CL.Cond->cmpPred()));
    return true; // The dead IV is collected by the next DCE run.
  }
  return false;
}

bool reduceLoop(Function &F, Loop &L) {
  CountedLoop CL;
  if (!LoopAnalysis::matchCountedLoop(L, CL))
    return false;
  BasicBlock *Pre = LoopAnalysis::ensurePreheader(F, L);
  BasicBlock *Latch = L.Latches.front();
  Module &M = *F.parent();

  // Collect mul(iv, C) / mul(C, iv) instructions in the loop.
  std::vector<Instruction *> Candidates;
  for (BasicBlock *BB : L.Blocks) {
    for (auto &I : BB->instructions()) {
      if (I->opcode() != Opcode::Mul)
        continue;
      Value *A = I->operand(0), *B = I->operand(1);
      bool AIsIv = A == CL.IndVar;
      bool BIsIv = B == CL.IndVar;
      Value *Other = AIsIv ? B : A;
      if ((AIsIv ^ BIsIv) && isa<Constant>(Other))
        Candidates.push_back(I.get());
    }
  }
  if (Candidates.empty())
    return false;

  for (Instruction *MulI : Candidates) {
    Value *A = MulI->operand(0);
    auto *C = cast<Constant>(A == CL.IndVar ? MulI->operand(1) : A);
    int64_t Scale = C->intValue();

    // acc.init = init * Scale, computed in the preheader.
    auto InitMul = std::make_unique<Instruction>(Opcode::Mul, Type::I64);
    InitMul->addOperand(CL.Init);
    InitMul->addOperand(M.constInt(Scale));
    Instruction *AccInit = Pre->insertBeforeTerminator(std::move(InitMul));

    // acc = phi [acc.init, pre], [acc.next, latch] at the header.
    auto Phi = std::make_unique<Instruction>(Opcode::Phi, Type::I64);
    Instruction *Acc = L.Header->insertAt(0, std::move(Phi));

    // acc.next = acc + Scale*step, placed right after the IV step (which
    // SSA guarantees dominates the back edge).
    auto NextAdd = std::make_unique<Instruction>(Opcode::Add, Type::I64);
    NextAdd->addOperand(Acc);
    NextAdd->addOperand(M.constInt(Scale * CL.StepValue));
    BasicBlock *StepBB = CL.Step->parent();
    size_t StepIdx = StepBB->indexOf(CL.Step);
    Instruction *AccNext = StepBB->insertAt(StepIdx + 1, std::move(NextAdd));

    Acc->addPhiIncoming(AccInit, Pre);
    Acc->addPhiIncoming(AccNext, Latch);

    F.replaceAllUses(MulI, Acc);
    MulI->parent()->eraseAt(MulI->parent()->indexOf(MulI));
  }
  return true;
}

} // namespace

bool msem::runStrengthReduce(Function &F) {
  bool EverChanged = false;
  for (int Round = 0; Round < 4; ++Round) {
    DominatorTree DT(F);
    LoopAnalysis LA(F, DT);
    bool Changed = false;
    for (const auto &L : LA.loops())
      Changed |= reduceLoop(F, *L);
    if (!Changed)
      break;
    EverChanged = true;
  }
  // IV elimination: clear dead uses first, then retarget exit tests onto
  // the reduced recurrences, then collect the dead IVs.
  if (EverChanged) {
    runDeadCodeElim(F);
    DominatorTree DT(F);
    LoopAnalysis LA(F, DT);
    bool Replaced = false;
    for (const auto &L : LA.loops())
      Replaced |= lftrLoop(F, *L);
    if (Replaced)
      runDeadCodeElim(F);
  }
  return EverChanged;
}
