//===- opt/ReorderBlocks.cpp - Block layout (-freorder-blocks) ---------------===//
//
// Lays blocks out so that statically likely successors fall through.
// The machine model fetches past not-taken branches but breaks the fetch
// group at every taken branch, so a layout that keeps the hot path
// sequential reduces taken branches and improves icache locality -- the
// effects gcc's -freorder-blocks targets.
//
// Likelihood heuristics (no profile available, as in the paper's setup):
//   - a successor that stays in the current loop beats one that leaves it;
//   - a successor entering a deeper loop beats a shallower one;
//   - otherwise the fall-through (false) successor is considered likely
//     (forward branches predicted not-taken).
//
//===----------------------------------------------------------------------===//

#include "ir/LoopInfo.h"
#include "ir/Module.h"
#include "opt/Passes.h"

#include <unordered_set>

using namespace msem;

namespace {

unsigned loopDepthOf(const LoopAnalysis &LA, const BasicBlock *BB) {
  const Loop *L = LA.loopFor(BB);
  return L ? L->Depth : 0;
}

} // namespace

bool msem::runReorderBlocks(Function &F) {
  if (F.blocks().size() < 3)
    return false;
  DominatorTree DT(F);
  LoopAnalysis LA(F, DT);

  std::vector<BasicBlock *> Layout;
  Layout.reserve(F.blocks().size());
  std::unordered_set<const BasicBlock *> Placed;

  // Depth-first placement following the likely successor, so that the hot
  // path becomes one long fall-through chain.
  std::vector<BasicBlock *> Stack{F.entry()};
  while (!Stack.empty()) {
    BasicBlock *BB = Stack.back();
    Stack.pop_back();
    if (!Placed.insert(BB).second)
      continue;
    Layout.push_back(BB);

    std::vector<BasicBlock *> Succ = BB->successors();
    if (Succ.empty())
      continue;
    if (Succ.size() == 1) {
      Stack.push_back(Succ[0]);
      continue;
    }
    BasicBlock *Taken = Succ[0], *Fallthrough = Succ[1];
    const Loop *Cur = LA.loopFor(BB);
    auto StaysInLoop = [&](const BasicBlock *S) {
      return Cur && Cur->contains(S);
    };
    BasicBlock *Likely = Fallthrough;
    BasicBlock *Unlikely = Taken;
    if (StaysInLoop(Taken) && !StaysInLoop(Fallthrough)) {
      Likely = Taken;
      Unlikely = Fallthrough;
    } else if (StaysInLoop(Fallthrough) && !StaysInLoop(Taken)) {
      Likely = Fallthrough;
      Unlikely = Taken;
    } else if (loopDepthOf(LA, Taken) > loopDepthOf(LA, Fallthrough)) {
      Likely = Taken;
      Unlikely = Fallthrough;
    }
    // DFS stack: push unlikely first so likely is visited (placed) next.
    Stack.push_back(Unlikely);
    Stack.push_back(Likely);
  }

  // Unreachable blocks (if any) keep their relative order at the end.
  for (const auto &BB : F.blocks())
    if (!Placed.count(BB.get()))
      Layout.push_back(BB.get());

  // No-op check.
  bool Same = true;
  for (size_t I = 0; I < Layout.size(); ++I)
    if (F.blocks()[I].get() != Layout[I])
      Same = false;
  if (Same)
    return false;

  F.reorderBlocks(Layout);
  return true;
}
