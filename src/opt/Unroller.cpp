//===- opt/Unroller.cpp - Loop unrolling (-funroll-loops) --------------------===//
//
// Unrolls counted innermost loops by replicating the loop body
// MaxUnrollTimes-1 times with the exit test retained in every copy. This is
// semantics-preserving for any runtime trip count ("loops whose number of
// iterations can be determined ... at loop entry", as gcc's flag describes)
// and, combined with the always-on cleanup passes, fully collapses loops
// with small constant trip counts.
//
// Eligibility (mirrors Table 1's heuristics):
//   - the loop matches the canonical counted shape with a single latch;
//   - all loop exits leave from the latch, to a dedicated exit block;
//   - the body has at most MaxUnrolledInsns instructions (#14);
//   - the unroll factor is MaxUnrollTimes (#13).
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "ir/Cloning.h"
#include "ir/LoopInfo.h"
#include "ir/Module.h"
#include "opt/Passes.h"

#include <unordered_map>
#include <unordered_set>

using namespace msem;

namespace {

/// True if no other loop nests inside \p L.
bool isInnermost(const LoopAnalysis &LA, const Loop &L) {
  for (const auto &Other : LA.loops())
    if (Other.get() != &L && Other->ParentLoop == &L)
      return false;
  return true;
}

/// Inserts LCSSA phis in \p Exit for every loop-defined value used outside
/// the loop, so that adding new exit edges preserves dominance.
void formLcssa(Function &F, Loop &L, BasicBlock *Latch, BasicBlock *Exit) {
  std::unordered_set<const BasicBlock *> InLoop(L.Blocks.begin(),
                                                L.Blocks.end());
  std::vector<Instruction *> Escaping;
  // Find loop-defined values with uses outside the loop.
  std::unordered_set<const Value *> EscapeSet;
  for (const auto &BB : F.blocks()) {
    if (InLoop.count(BB.get()))
      continue;
    for (const auto &I : BB->instructions()) {
      for (Value *Op : I->operands()) {
        auto *Def = dyn_cast<Instruction>(Op);
        if (!Def || !InLoop.count(Def->parent()))
          continue;
        if (EscapeSet.insert(Def).second)
          Escaping.push_back(Def);
      }
    }
  }
  if (Escaping.empty())
    return;

  std::unordered_map<Value *, Value *> Replacements;
  std::vector<Instruction *> NewPhis;
  for (Instruction *Def : Escaping) {
    auto Phi = std::make_unique<Instruction>(Opcode::Phi, Def->type());
    Phi->addPhiIncoming(Def, Latch);
    Instruction *P = Exit->insertAt(0, std::move(Phi));
    Replacements[Def] = P;
    NewPhis.push_back(P);
  }
  // Rewrite only uses outside the loop; then restore the phi incomings that
  // the blanket rewrite redirected to themselves.
  for (const auto &BB : F.blocks()) {
    if (InLoop.count(BB.get()))
      continue;
    for (auto &I : BB->instructions()) {
      bool IsNewPhi = false;
      for (Instruction *P : NewPhis)
        if (I.get() == P)
          IsNewPhi = true;
      if (IsNewPhi)
        continue;
      for (unsigned OpIdx = 0; OpIdx < I->numOperands(); ++OpIdx) {
        auto It = Replacements.find(I->operand(OpIdx));
        if (It != Replacements.end())
          I->setOperand(OpIdx, It->second);
      }
    }
  }
}

bool unrollLoop(Function &F, Loop &L, unsigned Factor) {
  if (Factor < 2)
    return false;
  CountedLoop CL;
  if (!LoopAnalysis::matchCountedLoop(L, CL))
    return false;
  BasicBlock *Latch = L.Latches.front();

  // All exits must leave from the latch.
  for (BasicBlock *BB : L.Blocks) {
    if (BB == Latch)
      continue;
    for (BasicBlock *Succ : BB->successors())
      if (!L.contains(Succ))
        return false;
  }
  // The latch's exit edge must target a dedicated exit block.
  BasicBlock *Exit = CL.LatchBr->successor(0) == L.Header
                         ? CL.LatchBr->successor(1)
                         : CL.LatchBr->successor(0);
  if (Exit == L.Header)
    return false; // Degenerate self-loop-on-both-edges.
  auto Preds = computePredecessors(F);
  if (Preds.at(Exit).size() != 1)
    return false;
  // No allocas inside the loop (replication would grow the frame).
  for (BasicBlock *BB : L.Blocks)
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Alloca)
        return false;

  formLcssa(F, L, Latch, Exit);

  // Record the header phis and their latch-incoming values.
  struct PhiInfo {
    Instruction *Phi;
    Value *FromLatch;
  };
  std::vector<PhiInfo> HeaderPhis;
  for (const auto &I : L.Header->instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    HeaderPhis.push_back({I.get(), I->phiIncomingFor(Latch)});
  }
  // Exit phis and their latch-incoming values (includes the LCSSA phis).
  struct ExitPhiInfo {
    Instruction *Phi;
    Value *FromLatch;
  };
  std::vector<ExitPhiInfo> ExitPhis;
  for (const auto &I : Exit->instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    ExitPhis.push_back({I.get(), I->phiIncomingFor(Latch)});
  }

  // Clone the body Factor-1 times from the pristine region (the original
  // blocks are not rewired until every copy exists), then chain the copies.
  const std::vector<BasicBlock *> Region = L.Blocks;
  std::vector<CloneMapping> Maps;
  Maps.reserve(Factor - 1);
  CloneMapping Identity; // Empty map: lookup() is the identity.

  for (unsigned Copy = 1; Copy < Factor; ++Copy) {
    const CloneMapping &PrevMap = Copy == 1 ? Identity : Maps[Copy - 2];
    CloneMapping Map;
    cloneRegion(Region, F, ".u" + std::to_string(Copy), Map);
    BasicBlock *NewHeader = Map.Blocks.at(L.Header);
    BasicBlock *NewLatch = Map.Blocks.at(Latch);

    // Replace this copy's header phis with the previous copy's values.
    std::unordered_map<Value *, Value *> PhiRepl;
    for (const PhiInfo &PI : HeaderPhis)
      PhiRepl[Map.Values.at(PI.Phi)] = PrevMap.lookup(PI.FromLatch);
    F.rewriteOperands(PhiRepl);
    // Later Map lookups (exit phis, chaining) must see the replacement, not
    // the soon-to-be-deleted cloned phi.
    for (const PhiInfo &PI : HeaderPhis)
      Map.Values[PI.Phi] = PrevMap.lookup(PI.FromLatch);
    while (!NewHeader->empty() &&
           NewHeader->instructions().front()->opcode() == Opcode::Phi)
      NewHeader->eraseAt(0);

    // This copy's exit edge contributes new incomings to the exit phis.
    for (const ExitPhiInfo &EPI : ExitPhis)
      EPI.Phi->addPhiIncoming(Map.lookup(EPI.FromLatch), NewLatch);

    Maps.push_back(std::move(Map));
  }

  // Chain the copies: each latch's back edge (which currently re-enters its
  // own copy's header) advances to the next copy; the last returns to the
  // real header.
  for (unsigned Copy = 0; Copy < Maps.size(); ++Copy) {
    Instruction *PrevBr = Copy == 0
                              ? CL.LatchBr
                              : cast<Instruction>(
                                    Maps[Copy - 1].Values.at(CL.LatchBr));
    BasicBlock *OwnHeader =
        Copy == 0 ? L.Header : Maps[Copy - 1].Blocks.at(L.Header);
    for (unsigned S = 0; S < PrevBr->numSuccessors(); ++S)
      if (PrevBr->successor(S) == OwnHeader)
        PrevBr->setSuccessor(S, Maps[Copy].Blocks.at(L.Header));
  }
  const CloneMapping &LastMap = Maps.back();
  Instruction *LastBr = cast<Instruction>(LastMap.Values.at(CL.LatchBr));
  BasicBlock *LastOwnHeader = LastMap.Blocks.at(L.Header);
  for (unsigned S = 0; S < LastBr->numSuccessors(); ++S)
    if (LastBr->successor(S) == LastOwnHeader)
      LastBr->setSuccessor(S, L.Header);

  // The real header's phis now receive the last copy's values via the last
  // copy's latch.
  BasicBlock *LastLatch = LastMap.Blocks.at(Latch);
  for (const PhiInfo &PI : HeaderPhis) {
    for (size_t Idx = 0; Idx < PI.Phi->phiBlocks().size(); ++Idx) {
      if (PI.Phi->phiBlocks()[Idx] == Latch) {
        PI.Phi->phiBlocks()[Idx] = LastLatch;
        PI.Phi->setOperand(Idx, LastMap.lookup(PI.FromLatch));
      }
    }
  }
  return true;
}

} // namespace

bool msem::runUnroll(Function &F, const OptimizationConfig &Config) {
  if (!Config.UnrollLoops || Config.MaxUnrollTimes < 2)
    return false;
  bool EverChanged = false;
  // Unroll one loop per analysis round; cloning invalidates the analyses.
  // Each original innermost loop is unrolled once (its clones produce no
  // new counted innermost loops that still match the eligibility size gate
  // growth-free, and re-unrolling is prevented by marking via name suffix).
  std::unordered_set<std::string> Done;
  for (int Round = 0; Round < 64; ++Round) {
    DominatorTree DT(F);
    LoopAnalysis LA(F, DT);
    bool Changed = false;
    for (const auto &L : LA.loops()) {
      if (!isInnermost(LA, *L))
        continue;
      if (Done.count(L->Header->name()))
        continue;
      Done.insert(L->Header->name());
      if (L->instructionCount() >
          static_cast<unsigned>(Config.MaxUnrolledInsns))
        continue;
      if (unrollLoop(F, *L, static_cast<unsigned>(Config.MaxUnrollTimes))) {
        Changed = true;
        break; // Analyses are stale.
      }
    }
    if (!Changed)
      break;
    EverChanged = true;
  }
  return EverChanged;
}
