//===- opt/Gvn.cpp - Global value numbering CSE (-fgcse) ---------------------===//
//
// Dominator-scoped common subexpression elimination over pure instructions.
// Blocks are visited in reverse post-order; an instruction is replaced by an
// equivalent earlier one when the earlier definition dominates it.
// Commutative integer/float operations are canonicalized by operand order.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "ir/Dominators.h"
#include "ir/Module.h"
#include "opt/Passes.h"

#include <algorithm>
#include <unordered_map>

using namespace msem;

namespace {

bool isCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::FAdd:
  case Opcode::FMul:
    return true;
  default:
    return false;
  }
}

struct ExprKey {
  Opcode Op;
  CmpPred Pred;
  const Value *A;
  const Value *B;

  bool operator==(const ExprKey &Other) const {
    return Op == Other.Op && Pred == Other.Pred && A == Other.A &&
           B == Other.B;
  }
};

struct ExprKeyHash {
  size_t operator()(const ExprKey &K) const {
    size_t H = static_cast<size_t>(K.Op) * 131 +
               static_cast<size_t>(K.Pred) * 17;
    H ^= std::hash<const void *>()(K.A) + 0x9e3779b97f4a7c15ULL + (H << 6);
    H ^= std::hash<const void *>()(K.B) + 0x9e3779b97f4a7c15ULL + (H << 6);
    return H;
  }
};

} // namespace

bool msem::runGvn(Function &F) {
  DominatorTree DT(F);
  std::unordered_map<ExprKey, std::vector<Instruction *>, ExprKeyHash> Table;
  std::unordered_map<Value *, Value *> Replacements;

  auto Resolve = [&](Value *V) {
    while (true) {
      auto It = Replacements.find(V);
      if (It == Replacements.end())
        return V;
      V = It->second;
    }
  };

  for (BasicBlock *BB : reversePostOrder(F)) {
    for (auto &I : BB->instructions()) {
      if (!I->isPure())
        continue;
      if (I->numOperands() == 0 || I->numOperands() > 2)
        continue;
      Value *A = Resolve(I->operand(0));
      Value *B = I->numOperands() == 2 ? Resolve(I->operand(1)) : nullptr;
      if (isCommutative(I->opcode()) && B && B < A)
        std::swap(A, B);
      ExprKey Key{I->opcode(), I->cmpPred(), A, B};

      auto &Candidates = Table[Key];
      Instruction *Found = nullptr;
      for (Instruction *Cand : Candidates) {
        if (Cand->parent() == BB ||
            DT.dominates(Cand->parent(), BB)) {
          Found = Cand;
          break;
        }
      }
      if (Found) {
        Replacements[I.get()] = Found;
        continue;
      }
      Candidates.push_back(I.get());
    }
  }

  if (Replacements.empty())
    return false;
  F.rewriteOperands(Replacements);
  // The replaced instructions are now dead; let DCE collect them.
  runDeadCodeElim(F);
  return true;
}
