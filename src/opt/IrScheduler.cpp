//===- opt/IrScheduler.cpp - Pre-RA list scheduling (-fschedule-insns2) ------===//
//
// Reorders instructions within each basic block by critical-path list
// scheduling so that long-latency producers (loads, multiplies, FP ops)
// start as early as possible. Dependences: SSA def-use within the block,
// plus a conservative memory order (loads may reorder among themselves;
// stores, calls and emits are ordered with all other memory operations).
// Phis stay at the block head, the terminator at the end.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "opt/Passes.h"

#include <algorithm>
#include <unordered_map>

using namespace msem;

namespace {

unsigned estimatedLatency(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::Load:
    return 3;
  case Opcode::Mul:
    return 3;
  case Opcode::Div:
  case Opcode::Rem:
    return 20;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
    return 4;
  case Opcode::FDiv:
    return 12;
  case Opcode::Call:
    return 8;
  default:
    return 1;
  }
}

bool isMemoryBarrier(const Instruction &I) {
  return I.opcode() == Opcode::Store || I.opcode() == Opcode::Call ||
         I.opcode() == Opcode::Emit;
}

bool readsMemory(const Instruction &I) {
  return I.opcode() == Opcode::Load || I.opcode() == Opcode::Prefetch;
}

bool scheduleBlock(BasicBlock &BB) {
  auto &Instrs = BB.instructions();
  // The schedulable window: after the phi prefix, before the terminator.
  size_t Begin = 0;
  while (Begin < Instrs.size() && Instrs[Begin]->opcode() == Opcode::Phi)
    ++Begin;
  if (Instrs.empty() || !Instrs.back()->isTerminator())
    return false;
  size_t End = Instrs.size() - 1;
  if (End <= Begin + 1)
    return false;

  size_t N = End - Begin;
  std::vector<Instruction *> Window(N);
  for (size_t I = 0; I < N; ++I)
    Window[I] = Instrs[Begin + I].get();

  // Dependence edges: Succs[i] lists successors of node i; PredCount[i]
  // counts unscheduled predecessors.
  std::vector<std::vector<unsigned>> Succs(N);
  std::vector<unsigned> PredCount(N, 0);
  std::unordered_map<const Value *, unsigned> DefIndex;
  for (size_t I = 0; I < N; ++I)
    DefIndex[Window[I]] = I;

  auto AddEdge = [&](unsigned From, unsigned To) {
    Succs[From].push_back(To);
    ++PredCount[To];
  };

  int LastBarrier = -1;
  std::vector<unsigned> ReadersSinceBarrier;
  for (size_t I = 0; I < N; ++I) {
    const Instruction &Ins = *Window[I];
    for (const Value *Op : Ins.operands()) {
      auto It = DefIndex.find(Op);
      if (It != DefIndex.end())
        AddEdge(It->second, I);
    }
    if (isMemoryBarrier(Ins)) {
      if (LastBarrier >= 0)
        AddEdge(static_cast<unsigned>(LastBarrier), I);
      for (unsigned Reader : ReadersSinceBarrier)
        AddEdge(Reader, I);
      ReadersSinceBarrier.clear();
      LastBarrier = static_cast<int>(I);
    } else if (readsMemory(Ins)) {
      if (LastBarrier >= 0)
        AddEdge(static_cast<unsigned>(LastBarrier), I);
      ReadersSinceBarrier.push_back(I);
    }
  }

  // Critical-path priority: longest latency path to any sink.
  std::vector<unsigned> Priority(N, 0);
  for (size_t I = N; I-- > 0;) {
    unsigned Best = 0;
    for (unsigned S : Succs[I])
      Best = std::max(Best, Priority[S]);
    Priority[I] = Best + estimatedLatency(*Window[I]);
  }

  // List scheduling; ties broken by original order for determinism.
  std::vector<unsigned> Order;
  Order.reserve(N);
  std::vector<unsigned> Ready;
  for (size_t I = 0; I < N; ++I)
    if (PredCount[I] == 0)
      Ready.push_back(I);
  while (!Ready.empty()) {
    size_t BestIdx = 0;
    for (size_t R = 1; R < Ready.size(); ++R) {
      if (Priority[Ready[R]] > Priority[Ready[BestIdx]] ||
          (Priority[Ready[R]] == Priority[Ready[BestIdx]] &&
           Ready[R] < Ready[BestIdx]))
        BestIdx = R;
    }
    unsigned Chosen = Ready[BestIdx];
    Ready.erase(Ready.begin() + BestIdx);
    Order.push_back(Chosen);
    for (unsigned S : Succs[Chosen])
      if (--PredCount[S] == 0)
        Ready.push_back(S);
  }
  assert(Order.size() == N && "scheduling dependence cycle");

  bool Changed = false;
  for (size_t I = 0; I < N; ++I)
    if (Order[I] != I)
      Changed = true;
  if (!Changed)
    return false;

  // Rebuild the window in the new order.
  std::vector<std::unique_ptr<Instruction>> NewWindow(N);
  std::vector<std::unique_ptr<Instruction>> OldWindow(N);
  for (size_t I = 0; I < N; ++I)
    OldWindow[I] = std::move(Instrs[Begin + I]);
  for (size_t I = 0; I < N; ++I)
    Instrs[Begin + I] = std::move(OldWindow[Order[I]]);
  return true;
}

} // namespace

bool msem::runIrSchedule(Function &F) {
  bool Changed = false;
  for (const auto &BB : F.blocks())
    Changed |= scheduleBlock(*BB);
  return Changed;
}
