//===- opt/PassPipeline.cpp - Flag-driven optimization pipeline --------------===//
//
// Orders the passes the way gcc 4.x does: inlining first (whole-module),
// then per-function loop optimizations, redundancy elimination, strength
// reduction, unrolling, prefetch planning, scheduling and block layout,
// with cleanup (fold/DCE/CFG-simplify) interleaved. OmitFramePointer and
// the post-RA half of ScheduleInsns2 are consumed by the code generator.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Verifier.h"
#include "support/Env.h"
#include "support/Error.h"
#include "telemetry/Telemetry.h"

using namespace msem;

namespace {

size_t countInstructions(const Function &F) {
  size_t N = 0;
  for (const auto &B : F.blocks())
    N += B->size();
  return N;
}

size_t countInstructions(const Module &M) {
  size_t N = 0;
  for (const auto &F : M.functions())
    N += countInstructions(*F);
  return N;
}

/// Runs one pass invocation under a "pass.<name>" timer and accumulates
/// the IR size change into "pass.<name>.ir_delta" (the -time-passes view).
/// The size recount only happens with telemetry on; the disabled path is
/// a single atomic load plus the pass itself.
template <typename UnitT, typename Fn>
bool timedPass(const char *Name, UnitT &U, Fn &&Run) {
  if (!telemetry::enabled())
    return Run();
  telemetry::ScopedTimer Span(std::string("pass.") + Name);
  size_t Before = countInstructions(U);
  bool Changed = Run();
  size_t After = countInstructions(U);
  telemetry::gauge(std::string("pass.") + Name + ".ir_delta")
      .add(static_cast<double>(After) - static_cast<double>(Before));
  if (Changed)
    telemetry::counter(std::string("pass.") + Name + ".changed").add(1);
  return Changed;
}

/// When MSEM_VERIFY_PASSES=1, the pipeline re-verifies the module after
/// every pass group and aborts with the violation list on breakage --
/// the debugging mode used while developing new passes.
bool verifyAfterPasses() { return env().VerifyPasses; }

void maybeVerify(Module &M, const char *After) {
  if (!verifyAfterPasses())
    return;
  auto Errors = verifyModule(M);
  if (Errors.empty())
    return;
  std::string All = std::string("after ") + After + ":\n";
  for (const auto &E : Errors)
    All += E + "\n";
  fatalError("MSEM_VERIFY_PASSES: " + All);
}

} // namespace

static void cleanupFunction(Function &F) {
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    Changed |= timedPass("fold", F, [&] { return runConstantFold(F); });
    Changed |= timedPass("simplifycfg", F, [&] { return runSimplifyCfg(F); });
    Changed |= timedPass("dce", F, [&] { return runDeadCodeElim(F); });
    if (!Changed)
      break;
  }
}

void msem::runCleanup(Module &M) {
  for (const auto &F : M.functions())
    cleanupFunction(*F);
}

void msem::runPassPipeline(Module &M, const OptimizationConfig &Config) {
  telemetry::ScopedTimer Span("opt.pipeline");
  telemetry::count("opt.pipeline.runs");

  runCleanup(M);

  if (Config.InlineFunctions) {
    timedPass("inline", M, [&] { return runInline(M, Config); });
    runCleanup(M);
    maybeVerify(M, "inline");
  }

  for (const auto &F : M.functions()) {
    if (Config.LoopOptimize) {
      timedPass("licm", *F, [&] { return runLicm(*F); });
      cleanupFunction(*F);
    }
    if (Config.Gcse) {
      timedPass("gvn", *F, [&] { return runGvn(*F); });
      cleanupFunction(*F);
    }
    if (Config.StrengthReduce) {
      timedPass("strength-reduce", *F,
                [&] { return runStrengthReduce(*F); });
      cleanupFunction(*F);
    }
    if (Config.UnrollLoops) {
      timedPass("unroll", *F, [&] { return runUnroll(*F, Config); });
      cleanupFunction(*F);
      // Unrolling exposes cross-copy redundancies.
      if (Config.Gcse) {
        timedPass("gvn", *F, [&] { return runGvn(*F); });
        cleanupFunction(*F);
      }
    }
    if (Config.PrefetchLoopArrays)
      timedPass("prefetch", *F, [&] { return runPrefetch(*F); });
    if (Config.IfConvert) {
      timedPass("if-convert", *F, [&] { return runIfConvert(*F, Config); });
      cleanupFunction(*F);
    }
    if (Config.Tracer) {
      timedPass("tail-dup", *F, [&] { return runTailDup(*F, Config); });
      cleanupFunction(*F);
    }
    if (Config.ScheduleInsns2)
      timedPass("ir-schedule", *F, [&] { return runIrSchedule(*F); });
    if (Config.ReorderBlocks)
      timedPass("reorder-blocks", *F, [&] { return runReorderBlocks(*F); });
  }
  maybeVerify(M, "per-function passes");
  M.renumber();
}
