//===- opt/PassPipeline.cpp - Flag-driven optimization pipeline --------------===//
//
// Orders the passes the way gcc 4.x does: inlining first (whole-module),
// then per-function loop optimizations, redundancy elimination, strength
// reduction, unrolling, prefetch planning, scheduling and block layout,
// with cleanup (fold/DCE/CFG-simplify) interleaved. OmitFramePointer and
// the post-RA half of ScheduleInsns2 are consumed by the code generator.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Verifier.h"
#include "support/Env.h"
#include "support/Error.h"

using namespace msem;

namespace {

/// When MSEM_VERIFY_PASSES=1, the pipeline re-verifies the module after
/// every pass group and aborts with the violation list on breakage --
/// the debugging mode used while developing new passes.
bool verifyAfterPasses() {
  static const bool Enabled = getEnvInt("MSEM_VERIFY_PASSES", 0) != 0;
  return Enabled;
}

void maybeVerify(Module &M, const char *After) {
  if (!verifyAfterPasses())
    return;
  auto Errors = verifyModule(M);
  if (Errors.empty())
    return;
  std::string All = std::string("after ") + After + ":\n";
  for (const auto &E : Errors)
    All += E + "\n";
  fatalError("MSEM_VERIFY_PASSES: " + All);
}

} // namespace

static void cleanupFunction(Function &F) {
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    Changed |= runConstantFold(F);
    Changed |= runSimplifyCfg(F);
    Changed |= runDeadCodeElim(F);
    if (!Changed)
      break;
  }
}

void msem::runCleanup(Module &M) {
  for (const auto &F : M.functions())
    cleanupFunction(*F);
}

void msem::runPassPipeline(Module &M, const OptimizationConfig &Config) {
  runCleanup(M);

  if (Config.InlineFunctions) {
    runInline(M, Config);
    runCleanup(M);
    maybeVerify(M, "inline");
  }

  for (const auto &F : M.functions()) {
    if (Config.LoopOptimize) {
      runLicm(*F);
      cleanupFunction(*F);
    }
    if (Config.Gcse) {
      runGvn(*F);
      cleanupFunction(*F);
    }
    if (Config.StrengthReduce) {
      runStrengthReduce(*F);
      cleanupFunction(*F);
    }
    if (Config.UnrollLoops) {
      runUnroll(*F, Config);
      cleanupFunction(*F);
      // Unrolling exposes cross-copy redundancies.
      if (Config.Gcse) {
        runGvn(*F);
        cleanupFunction(*F);
      }
    }
    if (Config.PrefetchLoopArrays)
      runPrefetch(*F);
    if (Config.IfConvert) {
      runIfConvert(*F, Config);
      cleanupFunction(*F);
    }
    if (Config.Tracer) {
      runTailDup(*F, Config);
      cleanupFunction(*F);
    }
    if (Config.ScheduleInsns2)
      runIrSchedule(*F);
    if (Config.ReorderBlocks)
      runReorderBlocks(*F);
  }
  maybeVerify(M, "per-function passes");
  M.renumber();
}
