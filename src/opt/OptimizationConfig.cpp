//===- opt/OptimizationConfig.cpp - Table 1 compiler parameters -------------===//

#include "opt/OptimizationConfig.h"

#include "support/Format.h"

using namespace msem;

OptimizationConfig OptimizationConfig::O0() { return OptimizationConfig(); }

OptimizationConfig OptimizationConfig::O1() { return OptimizationConfig(); }

OptimizationConfig OptimizationConfig::O2() {
  OptimizationConfig C;
  C.ScheduleInsns2 = true;
  C.LoopOptimize = true;
  C.Gcse = true;
  C.StrengthReduce = true;
  C.ReorderBlocks = true;
  return C;
}

OptimizationConfig OptimizationConfig::O3() {
  OptimizationConfig C = O2();
  C.InlineFunctions = true;
  C.OmitFramePointer = true;
  C.PrefetchLoopArrays = true;
  return C;
}

std::string OptimizationConfig::toString() const {
  std::string S = formatString(
      "%d%d%d%d%d%d%d%d%d i%d g%d c%d u%d n%d", InlineFunctions,
      UnrollLoops, ScheduleInsns2, LoopOptimize, Gcse, StrengthReduce,
      OmitFramePointer, ReorderBlocks, PrefetchLoopArrays,
      MaxInlineInsnsAuto, InlineUnitGrowth, InlineCallCost, MaxUnrollTimes,
      MaxUnrolledInsns);
  if (IfConvert || Tracer)
    S += formatString(" [ifc%d/%d td%d/%d]", IfConvert, MaxIfConvertInsns,
                      Tracer, TailDupInsns);
  return S;
}
