//===- opt/ConstantFold.cpp - Constant folding & algebraic simplify ---------===//
//
// Folds pure instructions with constant operands, applies algebraic
// identities and collapses single-value phis. Replacements are batched per
// sweep; sweeps repeat until a fixpoint (bounded).
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "opt/Passes.h"

#include <cmath>
#include <unordered_map>

using namespace msem;

namespace {

Constant *getIntConst(Value *V) {
  auto *C = dyn_cast<Constant>(V);
  return (C && C->type() == Type::I64) ? C : nullptr;
}

Constant *getFloatConst(Value *V) {
  auto *C = dyn_cast<Constant>(V);
  return (C && C->type() == Type::F64) ? C : nullptr;
}

bool isIntConstValue(Value *V, int64_t X) {
  Constant *C = getIntConst(V);
  return C && C->intValue() == X;
}

int64_t evalICmp(CmpPred P, int64_t A, int64_t B) {
  switch (P) {
  case CmpPred::EQ:
    return A == B;
  case CmpPred::NE:
    return A != B;
  case CmpPred::LT:
    return A < B;
  case CmpPred::LE:
    return A <= B;
  case CmpPred::GT:
    return A > B;
  case CmpPred::GE:
    return A >= B;
  }
  return 0;
}

int64_t evalFCmp(CmpPred P, double A, double B) {
  switch (P) {
  case CmpPred::EQ:
    return A == B;
  case CmpPred::NE:
    return A != B;
  case CmpPred::LT:
    return A < B;
  case CmpPred::LE:
    return A <= B;
  case CmpPred::GT:
    return A > B;
  case CmpPred::GE:
    return A >= B;
  }
  return 0;
}

/// Returns the value \p I simplifies to, or null if it does not simplify.
Value *simplify(Module &M, Instruction &I) {
  Opcode Op = I.opcode();

  // Phi with a single distinct incoming value (ignoring self-references)
  // collapses to that value.
  if (Op == Opcode::Phi) {
    Value *Unique = nullptr;
    for (Value *In : I.operands()) {
      if (In == &I)
        continue;
      if (Unique && Unique != In)
        return nullptr;
      Unique = In;
    }
    return Unique;
  }

  if (Op == Opcode::Select) {
    if (Constant *C = getIntConst(I.operand(0)))
      return C->intValue() != 0 ? I.operand(1) : I.operand(2);
    if (I.operand(1) == I.operand(2))
      return I.operand(1);
    return nullptr;
  }

  if (I.isBinaryIntOp()) {
    Value *A = I.operand(0), *B = I.operand(1);
    Constant *CA = getIntConst(A);
    Constant *CB = getIntConst(B);
    if (CA && CB) {
      int64_t X = CA->intValue(), Y = CB->intValue();
      switch (Op) {
      case Opcode::Add:
        return M.constInt(X + Y);
      case Opcode::Sub:
        return M.constInt(X - Y);
      case Opcode::Mul:
        return M.constInt(X * Y);
      case Opcode::Div:
        return Y == 0 ? nullptr : M.constInt(X / Y);
      case Opcode::Rem:
        return Y == 0 ? nullptr : M.constInt(X % Y);
      case Opcode::And:
        return M.constInt(X & Y);
      case Opcode::Or:
        return M.constInt(X | Y);
      case Opcode::Xor:
        return M.constInt(X ^ Y);
      case Opcode::Shl:
        return M.constInt(X << (Y & 63));
      case Opcode::Shr:
        return M.constInt(X >> (Y & 63));
      default:
        return nullptr;
      }
    }
    // Algebraic identities.
    switch (Op) {
    case Opcode::Add:
      if (isIntConstValue(B, 0))
        return A;
      if (isIntConstValue(A, 0))
        return B;
      break;
    case Opcode::Sub:
      if (isIntConstValue(B, 0))
        return A;
      if (A == B)
        return M.constInt(0);
      break;
    case Opcode::Mul:
      if (isIntConstValue(B, 1))
        return A;
      if (isIntConstValue(A, 1))
        return B;
      if (isIntConstValue(B, 0) || isIntConstValue(A, 0))
        return M.constInt(0);
      break;
    case Opcode::Div:
      if (isIntConstValue(B, 1))
        return A;
      break;
    case Opcode::And:
      if (A == B)
        return A;
      if (isIntConstValue(B, 0) || isIntConstValue(A, 0))
        return M.constInt(0);
      break;
    case Opcode::Or:
      if (A == B)
        return A;
      if (isIntConstValue(B, 0))
        return A;
      if (isIntConstValue(A, 0))
        return B;
      break;
    case Opcode::Xor:
      if (A == B)
        return M.constInt(0);
      if (isIntConstValue(B, 0))
        return A;
      break;
    case Opcode::Shl:
    case Opcode::Shr:
      if (isIntConstValue(B, 0))
        return A;
      break;
    default:
      break;
    }
    return nullptr;
  }

  if (Op == Opcode::ICmp) {
    Constant *CA = getIntConst(I.operand(0));
    Constant *CB = getIntConst(I.operand(1));
    if (CA && CB)
      return M.constInt(evalICmp(I.cmpPred(), CA->intValue(),
                                 CB->intValue()));
    return nullptr;
  }

  if (I.isBinaryFpOp()) {
    Constant *CA = getFloatConst(I.operand(0));
    Constant *CB = getFloatConst(I.operand(1));
    if (!CA || !CB)
      return nullptr;
    double X = CA->floatValue(), Y = CB->floatValue();
    switch (Op) {
    case Opcode::FAdd:
      return M.constFloat(X + Y);
    case Opcode::FSub:
      return M.constFloat(X - Y);
    case Opcode::FMul:
      return M.constFloat(X * Y);
    case Opcode::FDiv:
      return M.constFloat(X / Y);
    default:
      return nullptr;
    }
  }

  if (Op == Opcode::FCmp) {
    Constant *CA = getFloatConst(I.operand(0));
    Constant *CB = getFloatConst(I.operand(1));
    if (CA && CB)
      return M.constInt(evalFCmp(I.cmpPred(), CA->floatValue(),
                                 CB->floatValue()));
    return nullptr;
  }

  if (Op == Opcode::SIToFP) {
    if (Constant *C = getIntConst(I.operand(0)))
      return M.constFloat(static_cast<double>(C->intValue()));
    return nullptr;
  }
  if (Op == Opcode::FPToSI) {
    if (Constant *C = getFloatConst(I.operand(0)))
      return M.constInt(static_cast<int64_t>(C->floatValue()));
    return nullptr;
  }
  if (Op == Opcode::PtrAdd) {
    if (isIntConstValue(I.operand(1), 0))
      return I.operand(0);
    return nullptr;
  }
  return nullptr;
}

} // namespace

bool msem::runConstantFold(Function &F) {
  Module &M = *F.parent();
  bool EverChanged = false;
  for (int Sweep = 0; Sweep < 8; ++Sweep) {
    std::unordered_map<Value *, Value *> Replacements;
    for (const auto &BB : F.blocks()) {
      for (const auto &I : BB->instructions()) {
        if (Replacements.count(I.get()))
          continue;
        if (Value *S = simplify(M, *I)) {
          // Chase chains that were already replaced this sweep.
          while (true) {
            auto It = Replacements.find(S);
            if (It == Replacements.end())
              break;
            S = It->second;
          }
          if (S != I.get())
            Replacements[I.get()] = S;
        }
      }
    }
    if (Replacements.empty())
      break;
    F.rewriteOperands(Replacements);
    EverChanged = true;
  }
  return EverChanged;
}
