//===- opt/OptimizationConfig.h - Table 1 compiler parameters ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 14 compiler optimization flags and heuristics of the paper's Table 1,
/// with the same ranges. This struct is the "compiler half" of a design
/// point: the empirical models relate these settings (plus the
/// microarchitectural parameters) to execution time.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_OPT_OPTIMIZATIONCONFIG_H
#define MSEM_OPT_OPTIMIZATIONCONFIG_H

#include <string>

namespace msem {

/// Settings for every optimization the pipeline implements. Field order
/// matches the parameter numbering of the paper's Table 1.
struct OptimizationConfig {
  // Binary optimization flags (Table 1, #1-#9).
  bool InlineFunctions = false;    ///< #1 -finline-functions
  bool UnrollLoops = false;        ///< #2 -funroll-loops
  bool ScheduleInsns2 = false;     ///< #3 -fschedule-insns2 (pre & post RA)
  bool LoopOptimize = false;       ///< #4 -floop-optimize (LICM et al.)
  bool Gcse = false;               ///< #5 -fgcse (GVN + const/copy prop)
  bool StrengthReduce = false;     ///< #6 -fstrength-reduce
  bool OmitFramePointer = false;   ///< #7 -fomit-frame-pointer
  bool ReorderBlocks = false;      ///< #8 -freorder-blocks
  bool PrefetchLoopArrays = false; ///< #9 -fprefetch-loop-arrays

  // Numeric heuristics (Table 1, #10-#14), with the paper's ranges.
  int MaxInlineInsnsAuto = 100; ///< #10 in [50, 150]
  int InlineUnitGrowth = 50;    ///< #11 in [25, 75] (percent)
  int InlineCallCost = 16;      ///< #12 in [12, 20]
  int MaxUnrollTimes = 8;       ///< #13 in [4, 12]
  int MaxUnrolledInsns = 200;   ///< #14 in [100, 300]

  // Extension parameters (not part of the paper's Table 1; enabled via
  // ParameterSpace::extendedSpace(), following the paper's Section 2.2
  // remarks on trace-scheduling heuristics as further modelable
  // variables).
  bool IfConvert = false;    ///< ext: convert hammocks to selects.
  int MaxIfConvertInsns = 6; ///< ext: speculation budget, in [2, 12].
  bool Tracer = false;       ///< ext: tail-duplicate small joins.
  int TailDupInsns = 8;      ///< ext: join-size budget, in [2, 16].

  /// No optimization at all (baseline correctness testing).
  static OptimizationConfig O0();
  /// Cleanup only (constant folding, DCE, CFG simplification are always
  /// performed by the pipeline regardless of flags).
  static OptimizationConfig O1();
  /// The paper's -O2 reference point.
  static OptimizationConfig O2();
  /// The paper's default -O3 (Table 6 last row: all flags on except
  /// -funroll-loops, heuristics at 100/50/16/8/200).
  static OptimizationConfig O3();

  /// Short textual form, e.g. "111011101 i100 g50 c16 u8 n200".
  std::string toString() const;

  bool operator==(const OptimizationConfig &Other) const = default;
};

} // namespace msem

#endif // MSEM_OPT_OPTIMIZATIONCONFIG_H
