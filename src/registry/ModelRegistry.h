//===- registry/ModelRegistry.h - Directory-backed model store ---*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A versioned, directory-backed store of model artifacts keyed by
/// (workload, input, metric, technique, platform). The registry is the
/// handoff point between training and serving: campaigns publish every
/// model they fit, and msem_predict answers prediction requests from the
/// published artifacts alone -- no simulator, no re-fitting.
///
/// Layout under the registry directory:
///
///   manifest.json          index of every published model (id -> key,
///                          file, quality) -- what `msem_predict --list`
///                          and ModelRegistry::list read
///   models/<id>.json       one artifact per key (see ModelArtifact.h)
///
/// Durability matches the campaign checkpoints: every write (artifact and
/// manifest alike) goes through a sibling temp file, fsync and rename, so
/// a crash mid-publish leaves the previous state intact and readers never
/// observe a half-written document. Re-publishing a key overwrites its
/// artifact in place (last write wins), mirroring how a re-run campaign
/// supersedes its own results.
///
/// Reads go through a bounded in-memory LRU cache of deserialized
/// artifacts (shared_ptr, so eviction never invalidates a model a caller
/// is still predicting with). All operations are thread-safe; telemetry
/// counters (registry.*) record publishes, loads, hits and evictions.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_REGISTRY_MODELREGISTRY_H
#define MSEM_REGISTRY_MODELREGISTRY_H

#include "registry/ModelArtifact.h"

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace msem {

/// One manifest row: where an artifact lives and how good it was at
/// publish time (enough for listing without loading model payloads).
struct RegistryEntry {
  ModelKey Key;
  std::string File; ///< Path relative to the registry root.
  ModelQuality Quality;
};

class ModelRegistry {
public:
  struct Options {
    /// Registry root; created (mkdir -p) on first publish.
    std::string Dir = "msem-registry";
    /// Artifacts kept deserialized in memory (0 disables the cache; every
    /// fetch then round-trips through disk).
    size_t CacheCapacity = 32;
  };

  /// Cumulative operation counts (also exported as telemetry counters).
  struct Stats {
    size_t Publishes = 0;
    size_t Loads = 0;     ///< Disk deserializations (cache misses).
    size_t CacheHits = 0;
    size_t Evictions = 0;
  };

  explicit ModelRegistry(Options Opts);

  /// Opens a registry on EnvConfig defaults (MSEM_REGISTRY_DIR,
  /// MSEM_REGISTRY_CACHE); \p Dir overrides the directory when non-empty.
  static ModelRegistry fromEnv(const std::string &Dir = "");

  /// Serializes (Info, M) to models/<id>.json (temp + rename), then folds
  /// the entry into manifest.json (same discipline). Any cached copy of
  /// the key is dropped, so the next fetch observes the new artifact.
  bool publish(const ModelArtifactInfo &Info, const Model &M,
               std::string *Error = nullptr);

  /// The artifact for \p Key, from cache or disk. Returns nullptr with a
  /// structured error when absent, unreadable or schema-incompatible. The
  /// returned artifact is immutable and safe to share across threads.
  std::shared_ptr<const ModelArtifact> fetch(const ModelKey &Key,
                                             std::string *Error = nullptr);

  /// True when \p Key has a published artifact on disk (no cache effect).
  bool contains(const ModelKey &Key) const;

  /// Every manifest row, sorted by id for deterministic output.
  std::vector<RegistryEntry> list(std::string *Error = nullptr) const;

  /// Drops every cached artifact (in-flight shared_ptr holders keep their
  /// copies; the next fetch of any key re-reads disk). Returns the number
  /// of entries dropped. The hot-reload primitive: a serving process that
  /// observes a manifest change invalidates and cuts over with zero
  /// downtime -- old requests drain on the old artifacts, new requests
  /// deserialize the new ones.
  size_t invalidateCache();

  /// Change signature of manifest.json (support/fileSignature): differs
  /// across any atomic manifest rewrite, 0 when no manifest exists yet.
  /// Poll it to detect cross-process publishes without parsing anything.
  uint64_t manifestSignature() const;

  /// Absolute-ish path (Dir-relative join) of \p Key's artifact file.
  std::string artifactPath(const ModelKey &Key) const;
  std::string manifestPath() const;

  const Options &options() const { return Opts; }
  Stats stats() const;

private:
  /// Reads manifest.json, folds in \p Entry, rewrites atomically (under
  /// ManifestMutex, so in-process publishers never lose updates).
  bool updateManifest(const RegistryEntry &Entry, std::string *Error);

  Options Opts;

  mutable std::mutex ManifestMutex; ///< Serializes manifest read-modify-write.
  mutable std::mutex Mutex;         ///< Guards the cache and stats.
  struct CacheSlot {
    std::shared_ptr<const ModelArtifact> Artifact;
    std::list<std::string>::iterator LruIt;
  };
  /// Most-recently-used id at the front.
  std::list<std::string> Lru;
  std::unordered_map<std::string, CacheSlot> CacheById;
  Stats Counts;
};

} // namespace msem

#endif // MSEM_REGISTRY_MODELREGISTRY_H
