//===- registry/ModelArtifact.h - Versioned model artifacts -------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable form of a fitted empirical model. The paper's central
/// economic argument is that once a model is trained, predictions at
/// arbitrary compiler x microarchitecture configurations are near-free;
/// an artifact is what makes that true *across process boundaries*: a
/// single JSON document carrying the model payload (Model::save, bitwise
/// round-trip doubles) inside a versioned envelope with everything a
/// serving process needs to answer requests without re-fitting --
///
///   * the identity key (workload, input, metric, technique, platform),
///   * the full predictor-space description (parameter names, kinds and
///     levels, so raw configuration vectors can be encoded and validated
///     with no knowledge of how the space was constructed),
///   * the frozen machine configuration for platform-specialized
///     artifacts (the Table 5/7 cross-platform use case),
///   * training metadata (campaign, seed, design sizes, simulator cost)
///     and held-out quality statistics (ModelQuality).
///
/// Schema versioning is strict: deserializeArtifact rejects any document
/// whose schema_version it does not support with a structured error, so a
/// registry written by a future incompatible build fails loudly instead
/// of predicting garbage.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_REGISTRY_MODELARTIFACT_H
#define MSEM_REGISTRY_MODELARTIFACT_H

#include "core/ResponseSurface.h"
#include "model/Diagnostics.h"
#include "model/Model.h"
#include "support/Json.h"
#include "uarch/MachineConfig.h"

#include <memory>
#include <string>

namespace msem {

/// The artifact schema this build reads and writes.
constexpr int kModelArtifactSchemaVersion = 1;

/// Registry identity of one model: which program/input/response it
/// predicts, which technique fitted it, and which platform (if any) it is
/// specialized to. Campaign-published joint-space models use platform
/// "joint"; platform-specialized artifacts carry the platform's name and
/// a frozen MachineConfig in the envelope.
struct ModelKey {
  std::string Workload = "art";
  InputSet Input = InputSet::Train;
  ResponseMetric Metric = ResponseMetric::Cycles;
  /// Technique tag; the fitted model's name() ("rbf", "mars", "linear",
  /// "log-rbf", ...).
  std::string Technique = "rbf";
  std::string Platform = "joint";

  /// Filesystem-safe identity: the five components joined with '-', any
  /// non [a-zA-Z0-9._-] character mapped to '_'. Also the manifest key.
  std::string id() const;

  bool operator==(const ModelKey &O) const {
    return Workload == O.Workload && Input == O.Input && Metric == O.Metric &&
           Technique == O.Technique && Platform == O.Platform;
  }
  bool operator<(const ModelKey &O) const { return id() < O.id(); }
};

/// Everything in the envelope except the model payload itself. Split from
/// ModelArtifact so the publish path can serialize a live (borrowed)
/// model without transferring ownership.
struct ModelArtifactInfo {
  ModelKey Key;
  /// The predictor space the model was trained over (embedded in full).
  ParameterSpace Space;
  /// Platform-specialized artifacts freeze the microarchitectural
  /// coordinates of every request to this configuration before encoding.
  bool HasFrozenMachine = false;
  MachineConfig Machine;
  // --- Training metadata ---------------------------------------------------
  std::string Campaign;       ///< Producing campaign's display name.
  uint64_t Seed = 0;          ///< Build seed (exact, hex-encoded).
  size_t TrainSize = 0;       ///< Final training-design size.
  size_t TestSize = 0;        ///< Held-out test-design size.
  size_t SimulationsUsed = 0; ///< Simulator measurements the build spent.
  std::string StopReason;     ///< buildStopName of the producing build.
  /// Build identity (msem::buildStamp()) of the publishing binary.
  /// Informational; loading accepts artifacts from any build.
  std::string Build;
  /// Held-out quality at publish time (the Table 3 statistics).
  ModelQuality Quality;
};

/// A deserialized artifact: envelope plus the loaded model.
struct ModelArtifact {
  int SchemaVersion = kModelArtifactSchemaVersion;
  ModelArtifactInfo Info;
  std::unique_ptr<Model> M;
};

// --- MachineConfig <-> JSON (shared with campaign checkpoints) -------------
Json machineConfigToJson(const MachineConfig &M);
MachineConfig machineConfigFromJson(const Json &J);

/// Envelope + payload -> one JSON document.
Json serializeArtifact(const ModelArtifactInfo &Info, const Model &M);

/// JSON document -> artifact. Returns false with a structured diagnostic
/// on schema-version, kind or structure mismatches.
bool deserializeArtifact(const Json &Doc, ModelArtifact &Out,
                         std::string *Error);

/// Serializes and writes atomically (temp file + rename).
bool saveArtifact(const ModelArtifactInfo &Info, const Model &M,
                  const std::string &Path, std::string *Error);

/// Reads and deserializes \p Path.
bool loadArtifact(const std::string &Path, ModelArtifact &Out,
                  std::string *Error);

} // namespace msem

#endif // MSEM_REGISTRY_MODELARTIFACT_H
