//===- registry/ServingMonitor.h - Prediction-quality monitoring -*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serving-side observability for the prediction engine: per-model rolling
/// latency distributions, rolling prediction-error statistics against
/// ground truth (when the caller supplies actuals), and drift detection
/// against the quality each artifact recorded at publish time.
///
/// The drift rule is the paper's own acceptance criterion turned into a
/// monitor: an artifact ships with its held-out ModelQuality (test MAPE);
/// while serving, the monitor maintains a rolling MAPE over the most
/// recent residuals, and flags the model once
///
///     rolling MAPE > DriftThreshold x published MAPE
///
/// with at least MinResiduals residuals observed (so one outlier on a
/// fresh window cannot flag). A flagged model is still served -- the
/// monitor reports, it does not gate -- but msem_predict exits non-zero
/// under --check-drift so CI can gate on it.
///
/// Every statistic is mirrored into the telemetry registry under
/// "serving.<stat>.<model>" names that the OpenMetrics sink maps onto
/// families with a {model="..."} label:
///
///   serving.requests.<model>      counter   rows predicted
///   serving.errors.<model>        counter   failed batches
///   serving.latency_us.<model>    histogram per-row latency (amortized)
///   serving.residuals.<model>     counter   residuals observed
///   serving.rolling_mape.<model>  gauge     rolling MAPE, percent
///   serving.rolling_rmse.<model>  gauge     rolling RMSE
///   serving.drift_ratio.<model>   gauge     rolling / published MAPE
///   serving.drift_flag.<model>    gauge     1 when flagged
///
/// The monitor itself is deterministic: statistics depend only on the
/// sequence of record* calls, never on wall-clock (latency feeds only the
/// telemetry histogram, which is reporting, not results).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_REGISTRY_SERVINGMONITOR_H
#define MSEM_REGISTRY_SERVINGMONITOR_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace msem {

class ScopedStatusProvider;

/// One model's monitored state, as a value snapshot.
struct ServingModelStats {
  std::string ModelId;
  uint64_t Requests = 0; ///< Rows predicted (all batches).
  uint64_t Batches = 0;
  uint64_t Errors = 0; ///< Failed batches (malformed rows...).
  // Rolling latency (microseconds per row, amortized over each batch).
  double P50Us = 0, P95Us = 0, P99Us = 0, MaxUs = 0;
  // Rolling residual window.
  size_t Residuals = 0;    ///< Residuals currently in the window.
  double RollingMape = 0;  ///< Percent, like ModelQuality::Mape.
  double RollingRmse = 0;
  double BaselineMape = 0; ///< Published held-out MAPE (0 = unknown).
  double DriftRatio = 0;   ///< RollingMape / BaselineMape (0 = n/a).
  bool DriftFlagged = false;
};

/// Aggregates serving statistics per model id. Thread-safe; one instance
/// per serving process is the expected shape.
class ServingMonitor {
public:
  struct Options {
    /// Flag when rolling MAPE exceeds this multiple of the published MAPE
    /// (MSEM_DRIFT_THRESHOLD; <= 0 disables drift detection).
    double DriftThreshold = 2.0;
    /// Residuals kept in the rolling window.
    size_t ResidualWindow = 256;
    /// Minimum residuals before the drift rule may flag.
    size_t MinResiduals = 8;
  };

  explicit ServingMonitor(Options O);
  ServingMonitor() : ServingMonitor(Options()) {}
  ~ServingMonitor(); ///< Out of line: StatusSection's type is incomplete here.

  /// Options with DriftThreshold taken from the environment.
  static Options optionsFromEnv();

  /// Records one served batch: \p Rows rows in \p BatchNs wall nanoseconds
  /// against the model with published held-out MAPE \p BaselineMape.
  void recordBatch(const std::string &ModelId, size_t Rows, uint64_t BatchNs,
                   double BaselineMape);

  /// Records a failed batch (rows rejected before prediction).
  void recordError(const std::string &ModelId);

  /// Records one (predicted, actual) pair. Rows with actual == 0 count
  /// into RMSE but not MAPE (the percentage is undefined there).
  void recordResidual(const std::string &ModelId, double Predicted,
                      double Actual);

  /// Snapshot of every model seen so far, sorted by model id.
  std::vector<ServingModelStats> stats() const;

  /// True when any model is currently drift-flagged.
  bool anyDrift() const;

  /// The serving SLO table (TablePrinter-rendered; one row per model).
  std::string renderSummary() const;

private:
  struct ModelState {
    uint64_t Requests = 0;
    uint64_t Batches = 0;
    uint64_t Errors = 0;
    double BaselineMape = 0;
    std::deque<double> AbsPctErr; ///< |pred-actual|/|actual| * 100.
    std::deque<double> SqErr;     ///< (pred-actual)^2.
  };

  void publishQualityMetricsLocked(const std::string &ModelId,
                                   const ModelState &S);
  ServingModelStats statsForLocked(const std::string &ModelId,
                                   const ModelState &S) const;

  Options Opts;
  mutable std::mutex Mutex;
  std::map<std::string, ModelState> Models;

  /// /statusz "serving" section (the SLO table + drift state). Declared
  /// last so it deregisters before the state its callback reads.
  std::unique_ptr<ScopedStatusProvider> StatusSection;
};

} // namespace msem

#endif // MSEM_REGISTRY_SERVINGMONITOR_H
