//===- registry/ModelRegistry.cpp - Directory-backed model store -----------===//

#include "registry/ModelRegistry.h"

#include "support/Env.h"
#include "support/FileSystem.h"
#include "telemetry/Telemetry.h"

#include <algorithm>

using namespace msem;

namespace {

bool failWith(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

constexpr int kManifestVersion = 1;

Json entryToJson(const RegistryEntry &Entry) {
  Json J = Json::object();
  J.set("workload", Json::string(Entry.Key.Workload));
  J.set("input", Json::string(inputSetName(Entry.Key.Input)));
  J.set("metric", Json::string(responseMetricName(Entry.Key.Metric)));
  J.set("technique", Json::string(Entry.Key.Technique));
  J.set("platform", Json::string(Entry.Key.Platform));
  J.set("file", Json::string(Entry.File));
  Json Quality = Json::object();
  Quality.set("mape", Json::number(Entry.Quality.Mape));
  Quality.set("rmse", Json::number(Entry.Quality.Rmse));
  Quality.set("r2", Json::number(Entry.Quality.R2));
  J.set("quality", std::move(Quality));
  return J;
}

bool entryFromJson(const Json &J, RegistryEntry &Out, std::string *Error) {
  Out.Key.Workload = J["workload"].asString();
  if (!inputSetFromName(J["input"].asString("train"), Out.Key.Input))
    return failWith(Error, "manifest: unknown input set '" +
                               J["input"].asString() + "'");
  if (!responseMetricFromName(J["metric"].asString("cycles"),
                              Out.Key.Metric))
    return failWith(Error, "manifest: unknown metric '" +
                               J["metric"].asString() + "'");
  Out.Key.Technique = J["technique"].asString();
  Out.Key.Platform = J["platform"].asString("joint");
  Out.File = J["file"].asString();
  Out.Quality.Mape = J["quality"]["mape"].asDouble(0);
  Out.Quality.Rmse = J["quality"]["rmse"].asDouble(0);
  Out.Quality.R2 = J["quality"]["r2"].asDouble(0);
  return true;
}

/// Loads the manifest document, or a fresh empty one when the file does
/// not exist yet. A present-but-corrupt manifest is an error: silently
/// starting over would orphan every published artifact.
bool readManifest(const std::string &Path, Json &Out, std::string *Error) {
  if (!pathExists(Path)) {
    Out = Json::object();
    Out.set("version", Json::number(kManifestVersion));
    Out.set("models", Json::object());
    return true;
  }
  std::string Text;
  if (!readFileText(Path, Text, Error))
    return false;
  std::string ParseError;
  Out = Json::parse(Text, &ParseError);
  if (!ParseError.empty())
    return failWith(Error, "manifest '" + Path + "': " + ParseError);
  int Version = static_cast<int>(Out["version"].asInt(0));
  if (Version != kManifestVersion)
    return failWith(Error, "manifest '" + Path + "': unsupported version " +
                               std::to_string(Version));
  return true;
}

} // namespace

ModelRegistry::ModelRegistry(Options Opts) : Opts(std::move(Opts)) {}

ModelRegistry ModelRegistry::fromEnv(const std::string &Dir) {
  Options O;
  O.Dir = Dir.empty() ? env().RegistryDir : Dir;
  O.CacheCapacity = static_cast<size_t>(env().RegistryCacheCap);
  return ModelRegistry(std::move(O));
}

std::string ModelRegistry::artifactPath(const ModelKey &Key) const {
  return Opts.Dir + "/models/" + Key.id() + ".json";
}

std::string ModelRegistry::manifestPath() const {
  return Opts.Dir + "/manifest.json";
}

bool ModelRegistry::publish(const ModelArtifactInfo &Info, const Model &M,
                            std::string *Error) {
  if (Opts.Dir.empty())
    return failWith(Error, "registry: no directory configured");
  if (!createDirectories(Opts.Dir + "/models", Error))
    return false;

  const std::string Id = Info.Key.id();
  if (!saveArtifact(Info, M, artifactPath(Info.Key), Error))
    return false;

  RegistryEntry Entry;
  Entry.Key = Info.Key;
  Entry.File = "models/" + Id + ".json";
  Entry.Quality = Info.Quality;
  if (!updateManifest(Entry, Error))
    return false;

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = CacheById.find(Id);
    if (It != CacheById.end()) {
      Lru.erase(It->second.LruIt);
      CacheById.erase(It);
    }
    ++Counts.Publishes;
  }
  telemetry::count("registry.publishes");
  return true;
}

bool ModelRegistry::updateManifest(const RegistryEntry &Entry,
                                   std::string *Error) {
  // In-process publishers serialize on the lock; cross-process writers are
  // protected only by the atomic rename (last manifest write wins, exactly
  // like concurrent checkpoint writers).
  std::lock_guard<std::mutex> Lock(ManifestMutex);
  Json Doc;
  if (!readManifest(manifestPath(), Doc, Error))
    return false;
  Json Models = std::move(Doc["models"]);
  if (Models.kind() != Json::Kind::Object)
    Models = Json::object();
  Models.set(Entry.Key.id(), entryToJson(Entry));
  Doc.set("models", std::move(Models));
  return writeFileAtomic(manifestPath(), Doc.dumpPretty(), Error);
}

std::shared_ptr<const ModelArtifact>
ModelRegistry::fetch(const ModelKey &Key, std::string *Error) {
  const std::string Id = Key.id();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = CacheById.find(Id);
    if (It != CacheById.end()) {
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
      ++Counts.CacheHits;
      telemetry::count("registry.cache_hits");
      return It->second.Artifact;
    }
  }

  // Deserialize outside the lock: artifact loads dominate, and concurrent
  // fetches of distinct keys should not serialize on each other.
  auto Loaded = std::make_shared<ModelArtifact>();
  if (!loadArtifact(artifactPath(Key), *Loaded, Error))
    return nullptr;
  std::shared_ptr<const ModelArtifact> Artifact = std::move(Loaded);

  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counts.Loads;
  telemetry::count("registry.loads");
  if (Opts.CacheCapacity == 0)
    return Artifact;
  auto It = CacheById.find(Id);
  if (It != CacheById.end()) {
    // Another thread cached the same key while we were reading; keep its
    // copy so all callers share one deserialized artifact.
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return It->second.Artifact;
  }
  Lru.push_front(Id);
  CacheById.emplace(Id, CacheSlot{Artifact, Lru.begin()});
  while (CacheById.size() > Opts.CacheCapacity) {
    CacheById.erase(Lru.back());
    Lru.pop_back();
    ++Counts.Evictions;
    telemetry::count("registry.evictions");
  }
  return Artifact;
}

bool ModelRegistry::contains(const ModelKey &Key) const {
  return pathExists(artifactPath(Key));
}

std::vector<RegistryEntry> ModelRegistry::list(std::string *Error) const {
  std::vector<RegistryEntry> Entries;
  Json Doc;
  {
    std::lock_guard<std::mutex> Lock(ManifestMutex);
    if (!readManifest(manifestPath(), Doc, Error))
      return Entries;
  }
  // The manifest object is map-backed, so members() iterates ids in
  // sorted order and the listing is deterministic.
  for (const auto &[Id, EJ] : Doc["models"].members()) {
    RegistryEntry Entry;
    if (!entryFromJson(EJ, Entry, Error)) {
      Entries.clear();
      return Entries;
    }
    Entries.push_back(std::move(Entry));
  }
  return Entries;
}

size_t ModelRegistry::invalidateCache() {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Dropped = CacheById.size();
  CacheById.clear();
  Lru.clear();
  if (Dropped)
    telemetry::count("registry.invalidations", Dropped);
  return Dropped;
}

uint64_t ModelRegistry::manifestSignature() const {
  return fileSignature(manifestPath());
}

ModelRegistry::Stats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counts;
}
