//===- registry/ServingMonitor.cpp - Prediction-quality monitoring --------===//

#include "registry/ServingMonitor.h"

#include "support/Env.h"
#include "support/Format.h"
#include "support/StatsServer.h"
#include "support/TablePrinter.h"
#include "telemetry/Telemetry.h"

#include <cmath>

using namespace msem;

namespace {

/// Per-row serving latency buckets, microseconds. A tree walk is ~1us, an
/// RBF evaluation tens of us; the tail buckets catch cold artifact loads.
const std::vector<double> kLatencyBoundsUs = {1,  2.5, 5,   10,   25,
                                              50, 100, 250, 1000, 10000};

double meanOf(const std::deque<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

} // namespace

ServingMonitor::ServingMonitor(Options O) : Opts(O) {
  StatusSection = std::make_unique<ScopedStatusProvider>(
      "serving", [this] {
        std::string Body = renderSummary();
        if (anyDrift())
          Body += "\ndrift: FLAGGED";
        return Body;
      });
}

ServingMonitor::~ServingMonitor() = default;

ServingMonitor::Options ServingMonitor::optionsFromEnv() {
  Options O;
  O.DriftThreshold = env().DriftThreshold;
  return O;
}

void ServingMonitor::recordBatch(const std::string &ModelId, size_t Rows,
                                 uint64_t BatchNs, double BaselineMape) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ModelState &S = Models[ModelId];
  S.Requests += Rows;
  S.Batches += 1;
  S.BaselineMape = BaselineMape;
  if (telemetry::enabled()) {
    telemetry::counter("serving.requests." + ModelId).add(Rows);
    if (Rows > 0) {
      double PerRowUs =
          static_cast<double>(BatchNs) / 1000.0 / static_cast<double>(Rows);
      telemetry::Histogram &H = telemetry::histogram(
          "serving.latency_us." + ModelId, kLatencyBoundsUs);
      for (size_t I = 0; I < Rows; ++I)
        H.observe(PerRowUs);
    }
    publishQualityMetricsLocked(ModelId, S);
  }
}

void ServingMonitor::recordError(const std::string &ModelId) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ModelState &S = Models[ModelId];
  S.Errors += 1;
  telemetry::count("serving.errors." + ModelId);
}

void ServingMonitor::recordResidual(const std::string &ModelId,
                                    double Predicted, double Actual) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ModelState &S = Models[ModelId];
  double Err = Predicted - Actual;
  S.SqErr.push_back(Err * Err);
  if (S.SqErr.size() > Opts.ResidualWindow)
    S.SqErr.pop_front();
  if (Actual != 0.0) {
    S.AbsPctErr.push_back(std::fabs(Err / Actual) * 100.0);
    if (S.AbsPctErr.size() > Opts.ResidualWindow)
      S.AbsPctErr.pop_front();
  }
  if (telemetry::enabled()) {
    telemetry::counter("serving.residuals." + ModelId).add(1);
    publishQualityMetricsLocked(ModelId, S);
  }
}

void ServingMonitor::publishQualityMetricsLocked(const std::string &ModelId,
                                                 const ModelState &S) {
  ServingModelStats St = statsForLocked(ModelId, S);
  telemetry::gauge("serving.rolling_mape." + ModelId).set(St.RollingMape);
  telemetry::gauge("serving.rolling_rmse." + ModelId).set(St.RollingRmse);
  telemetry::gauge("serving.drift_ratio." + ModelId).set(St.DriftRatio);
  telemetry::gauge("serving.drift_flag." + ModelId)
      .set(St.DriftFlagged ? 1.0 : 0.0);
}

ServingModelStats
ServingMonitor::statsForLocked(const std::string &ModelId,
                               const ModelState &S) const {
  ServingModelStats St;
  St.ModelId = ModelId;
  St.Requests = S.Requests;
  St.Batches = S.Batches;
  St.Errors = S.Errors;
  St.Residuals = S.SqErr.size();
  St.RollingMape = meanOf(S.AbsPctErr);
  St.RollingRmse = std::sqrt(meanOf(S.SqErr));
  St.BaselineMape = S.BaselineMape;
  if (S.BaselineMape > 0 && !S.AbsPctErr.empty())
    St.DriftRatio = St.RollingMape / S.BaselineMape;
  St.DriftFlagged = Opts.DriftThreshold > 0 &&
                    S.AbsPctErr.size() >= Opts.MinResiduals &&
                    St.DriftRatio > Opts.DriftThreshold;
  return St;
}

std::vector<ServingModelStats> ServingMonitor::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<ServingModelStats> Out;
  for (const auto &[Id, S] : Models)
    Out.push_back(statsForLocked(Id, S));
  return Out;
}

bool ServingMonitor::anyDrift() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &[Id, S] : Models)
    if (statsForLocked(Id, S).DriftFlagged)
      return true;
  return false;
}

std::string ServingMonitor::renderSummary() const {
  std::vector<ServingModelStats> All = stats();
  TablePrinter T({"Model", "Requests", "Errors", "p50 us", "p95 us",
                  "p99 us", "Residuals", "Roll MAPE", "Pub MAPE", "Drift",
                  "Flag"});
  for (ServingModelStats &St : All) {
    // Latency quantiles come from the telemetry histogram (the monitor
    // itself only counts); absent when telemetry is disabled.
    double P50 = 0, P95 = 0, P99 = 0;
    if (telemetry::enabled()) {
      telemetry::Histogram &H = telemetry::histogram(
          "serving.latency_us." + St.ModelId, kLatencyBoundsUs);
      P50 = H.quantile(0.50);
      P95 = H.quantile(0.95);
      P99 = H.quantile(0.99);
    }
    T.addRowCells(St.ModelId, formatString("%llu",
                                           (unsigned long long)St.Requests),
                  formatString("%llu", (unsigned long long)St.Errors),
                  formatString("%.1f", P50), formatString("%.1f", P95),
                  formatString("%.1f", P99),
                  formatString("%zu", St.Residuals),
                  St.Residuals ? formatString("%.3g%%", St.RollingMape)
                               : std::string("-"),
                  St.BaselineMape > 0 ? formatString("%.3g%%", St.BaselineMape)
                                      : std::string("-"),
                  St.DriftRatio > 0 ? formatString("%.2fx", St.DriftRatio)
                                    : std::string("-"),
                  St.DriftFlagged ? std::string("DRIFT") : std::string("ok"));
  }
  return T.render();
}
