//===- registry/ModelArtifact.cpp - Versioned model artifacts ---------------===//

#include "registry/ModelArtifact.h"

#include "core/ModelBuilder.h"
#include "support/FileSystem.h"
#include "support/Format.h"

using namespace msem;

//===----------------------------------------------------------------------===//
// ModelKey
//===----------------------------------------------------------------------===//

namespace {

/// Maps any character outside [a-zA-Z0-9._-] to '_' so ids are safe as
/// file names and manifest keys on every filesystem we care about.
std::string sanitize(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    bool Safe = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-';
    Out.push_back(Safe ? C : '_');
  }
  return Out;
}

bool failWith(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

const char *paramKindName(ParamKind Kind) {
  switch (Kind) {
  case ParamKind::Binary:
    return "binary";
  case ParamKind::Discrete:
    return "discrete";
  case ParamKind::LogDiscrete:
    return "log2";
  }
  return "?";
}

bool paramKindFromName(const std::string &Name, ParamKind &Out) {
  if (Name == "binary")
    Out = ParamKind::Binary;
  else if (Name == "discrete")
    Out = ParamKind::Discrete;
  else if (Name == "log2")
    Out = ParamKind::LogDiscrete;
  else
    return false;
  return true;
}

Json spaceToJson(const ParameterSpace &Space) {
  Json J = Json::object();
  J.set("compiler_params",
        Json::number(static_cast<double>(Space.numCompilerParams())));
  Json Params = Json::array();
  for (const Parameter &P : Space.params()) {
    Json PJ = Json::object();
    PJ.set("name", Json::string(P.Name));
    PJ.set("kind", Json::string(paramKindName(P.Kind)));
    Json Levels = Json::array();
    for (int64_t V : P.Levels)
      Levels.push(Json::number(static_cast<double>(V)));
    PJ.set("levels", std::move(Levels));
    Params.push(std::move(PJ));
  }
  J.set("params", std::move(Params));
  return J;
}

bool spaceFromJson(const Json &J, ParameterSpace &Out, std::string *Error) {
  std::vector<Parameter> Params;
  for (const Json &PJ : J["params"].items()) {
    Parameter P;
    P.Name = PJ["name"].asString();
    if (!paramKindFromName(PJ["kind"].asString(), P.Kind))
      return failWith(Error, "artifact: unknown parameter kind '" +
                                 PJ["kind"].asString() + "'");
    for (const Json &V : PJ["levels"].items())
      P.Levels.push_back(V.asInt());
    if (P.Levels.empty())
      return failWith(Error,
                      "artifact: parameter '" + P.Name + "' has no levels");
    Params.push_back(std::move(P));
  }
  if (Params.empty())
    return failWith(Error, "artifact: empty parameter space");
  size_t CompilerParams =
      static_cast<size_t>(J["compiler_params"].asInt(0));
  Out = ParameterSpace::fromParams(std::move(Params), CompilerParams);
  return true;
}

} // namespace

std::string ModelKey::id() const {
  return sanitize(Workload) + "-" + inputSetName(Input) + "-" +
         responseMetricName(Metric) + "-" + sanitize(Technique) + "-" +
         sanitize(Platform);
}

//===----------------------------------------------------------------------===//
// MachineConfig <-> JSON
//===----------------------------------------------------------------------===//

Json msem::machineConfigToJson(const MachineConfig &M) {
  Json J = Json::object();
  J.set("issue_width", Json::number(M.IssueWidth));
  J.set("bpred_size", Json::number(M.BranchPredictorSize));
  J.set("ruu_size", Json::number(M.RuuSize));
  J.set("icache_bytes", Json::number(M.IcacheBytes));
  J.set("dcache_bytes", Json::number(M.DcacheBytes));
  J.set("dcache_assoc", Json::number(M.DcacheAssoc));
  J.set("dcache_latency", Json::number(M.DcacheLatency));
  J.set("l2_bytes", Json::number(M.L2Bytes));
  J.set("l2_assoc", Json::number(M.L2Assoc));
  J.set("l2_latency", Json::number(M.L2Latency));
  J.set("memory_latency", Json::number(M.MemoryLatency));
  return J;
}

MachineConfig msem::machineConfigFromJson(const Json &J) {
  MachineConfig M;
  M.IssueWidth = static_cast<unsigned>(J["issue_width"].asInt(M.IssueWidth));
  M.BranchPredictorSize =
      static_cast<unsigned>(J["bpred_size"].asInt(M.BranchPredictorSize));
  M.RuuSize = static_cast<unsigned>(J["ruu_size"].asInt(M.RuuSize));
  M.IcacheBytes =
      static_cast<unsigned>(J["icache_bytes"].asInt(M.IcacheBytes));
  M.DcacheBytes =
      static_cast<unsigned>(J["dcache_bytes"].asInt(M.DcacheBytes));
  M.DcacheAssoc =
      static_cast<unsigned>(J["dcache_assoc"].asInt(M.DcacheAssoc));
  M.DcacheLatency =
      static_cast<unsigned>(J["dcache_latency"].asInt(M.DcacheLatency));
  M.L2Bytes = static_cast<unsigned>(J["l2_bytes"].asInt(M.L2Bytes));
  M.L2Assoc = static_cast<unsigned>(J["l2_assoc"].asInt(M.L2Assoc));
  M.L2Latency = static_cast<unsigned>(J["l2_latency"].asInt(M.L2Latency));
  M.MemoryLatency =
      static_cast<unsigned>(J["memory_latency"].asInt(M.MemoryLatency));
  return M;
}

//===----------------------------------------------------------------------===//
// Envelope <-> JSON
//===----------------------------------------------------------------------===//

Json msem::serializeArtifact(const ModelArtifactInfo &Info, const Model &M) {
  Json Doc = Json::object();
  Doc.set("schema_version", Json::number(kModelArtifactSchemaVersion));

  Json Key = Json::object();
  Key.set("workload", Json::string(Info.Key.Workload));
  Key.set("input", Json::string(inputSetName(Info.Key.Input)));
  Key.set("metric", Json::string(responseMetricName(Info.Key.Metric)));
  Key.set("technique", Json::string(Info.Key.Technique));
  Key.set("platform", Json::string(Info.Key.Platform));
  Doc.set("key", std::move(Key));

  Doc.set("space", spaceToJson(Info.Space));
  if (Info.HasFrozenMachine)
    Doc.set("machine", machineConfigToJson(Info.Machine));

  Json Training = Json::object();
  Training.set("campaign", Json::string(Info.Campaign));
  Training.set("seed", Json::hexU64(Info.Seed));
  Training.set("train_size",
               Json::number(static_cast<double>(Info.TrainSize)));
  Training.set("test_size", Json::number(static_cast<double>(Info.TestSize)));
  Training.set("simulations",
               Json::number(static_cast<double>(Info.SimulationsUsed)));
  Training.set("stop", Json::string(Info.StopReason));
  if (!Info.Build.empty())
    Training.set("build", Json::string(Info.Build));
  Doc.set("training", std::move(Training));

  Json Quality = Json::object();
  Quality.set("mape", Json::number(Info.Quality.Mape));
  Quality.set("rmse", Json::number(Info.Quality.Rmse));
  Quality.set("r2", Json::number(Info.Quality.R2));
  Doc.set("quality", std::move(Quality));

  Json Payload = Json::object();
  M.save(Payload);
  Doc.set("model", std::move(Payload));
  return Doc;
}

bool msem::deserializeArtifact(const Json &Doc, ModelArtifact &Out,
                               std::string *Error) {
  if (Doc.kind() != Json::Kind::Object)
    return failWith(Error, "artifact: expected a JSON object");

  ModelArtifact A;
  A.SchemaVersion = static_cast<int>(Doc["schema_version"].asInt(0));
  if (A.SchemaVersion != kModelArtifactSchemaVersion)
    return failWith(
        Error, formatString("artifact: unsupported schema_version %d "
                            "(this build reads version %d)",
                            A.SchemaVersion, kModelArtifactSchemaVersion));

  const Json &Key = Doc["key"];
  A.Info.Key.Workload = Key["workload"].asString(A.Info.Key.Workload);
  if (!inputSetFromName(Key["input"].asString("train"), A.Info.Key.Input))
    return failWith(Error, "artifact: unknown input set '" +
                               Key["input"].asString() + "'");
  if (!responseMetricFromName(Key["metric"].asString("cycles"),
                              A.Info.Key.Metric))
    return failWith(Error, "artifact: unknown metric '" +
                               Key["metric"].asString() + "'");
  A.Info.Key.Technique = Key["technique"].asString(A.Info.Key.Technique);
  A.Info.Key.Platform = Key["platform"].asString(A.Info.Key.Platform);

  if (!spaceFromJson(Doc["space"], A.Info.Space, Error))
    return false;
  if (Doc.has("machine")) {
    A.Info.HasFrozenMachine = true;
    A.Info.Machine = machineConfigFromJson(Doc["machine"]);
  }

  const Json &Training = Doc["training"];
  A.Info.Campaign = Training["campaign"].asString();
  A.Info.Seed = Training["seed"].asHexU64(0);
  A.Info.TrainSize = static_cast<size_t>(Training["train_size"].asInt(0));
  A.Info.TestSize = static_cast<size_t>(Training["test_size"].asInt(0));
  A.Info.SimulationsUsed =
      static_cast<size_t>(Training["simulations"].asInt(0));
  A.Info.StopReason = Training["stop"].asString();
  A.Info.Build = Training["build"].asString();

  const Json &Quality = Doc["quality"];
  A.Info.Quality.Mape = Quality["mape"].asDouble(0);
  A.Info.Quality.Rmse = Quality["rmse"].asDouble(0);
  A.Info.Quality.R2 = Quality["r2"].asDouble(0);

  A.M = Model::fromJson(Doc["model"], Error);
  if (!A.M)
    return false;

  Out = std::move(A);
  return true;
}

//===----------------------------------------------------------------------===//
// File IO
//===----------------------------------------------------------------------===//

bool msem::saveArtifact(const ModelArtifactInfo &Info, const Model &M,
                        const std::string &Path, std::string *Error) {
  return writeFileAtomic(Path, serializeArtifact(Info, M).dumpPretty(),
                         Error);
}

bool msem::loadArtifact(const std::string &Path, ModelArtifact &Out,
                        std::string *Error) {
  std::string Text;
  if (!readFileText(Path, Text, Error)) {
    if (Error)
      *Error = "cannot open artifact: " + *Error;
    return false;
  }
  std::string ParseError;
  Json Doc = Json::parse(Text, &ParseError);
  if (!ParseError.empty())
    return failWith(Error, "artifact '" + Path + "': " + ParseError);
  return deserializeArtifact(Doc, Out, Error);
}
