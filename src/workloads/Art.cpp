//===- workloads/Art.cpp - Neural-network archetype ------------------------------===//
//
// Stands in for 179.art: an adaptive-resonance-style network. Each epoch
// computes F1 activations as dense dot products of the input against every
// neuron's weight row (the tight FP inner loop whose unrolling behaviour
// the paper's Figure 3 studies), picks the winner, and blends the winner's
// weights toward the input.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadLib.h"
#include "workloads/Workloads.h"

using namespace msem;

std::unique_ptr<Module> msem::buildArt(InputSet Set) {
  int64_t InputLen = 0, Neurons = 0, Epochs = 0;
  switch (Set) {
  case InputSet::Test:
    InputLen = 350;
    Neurons = 8;
    Epochs = 3;
    break;
  case InputSet::Train:
    InputLen = 1100;
    Neurons = 12;
    Epochs = 7;
    break;
  case InputSet::Ref:
    InputLen = 2400;
    Neurons = 14;
    Epochs = 12;
    break;
  }

  auto M = std::make_unique<Module>("art");
  GlobalVariable *In =
      M->createGlobal("input", static_cast<uint64_t>(InputLen) * 8);
  GlobalVariable *Wt = M->createGlobal(
      "weights", static_cast<uint64_t>(Neurons * InputLen) * 8);
  GlobalVariable *Act =
      M->createGlobal("act", static_cast<uint64_t>(Neurons) * 8);
  LcgStream Lcg(*M, "rng", 0xA27u + static_cast<uint64_t>(InputLen));

  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));

  {
    LoopBuilder L(B, B.constInt(0), B.constInt(InputLen), 1, "in_init");
    Value *F = B.fmul(B.siToFp(Lcg.nextBelow(B, 1000)),
                      B.constFloat(0.001));
    B.storeElem(F, In, L.indVar(), MemKind::Float64);
    L.finish();
  }
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(Neurons * InputLen), 1,
                  "wt_init");
    Value *F = B.fmul(B.siToFp(Lcg.nextBelow(B, 2000)),
                      B.constFloat(0.0005));
    B.storeElem(F, Wt, L.indVar(), MemKind::Float64);
    L.finish();
  }

  LoopBuilder Le(B, B.constInt(0), B.constInt(Epochs), 1, "epoch");
  Value *Score0 = Le.carried(B.constInt(0));

  // F1 activations: act[n] = dot(weights[n], input).
  {
    LoopBuilder Ln(B, B.constInt(0), B.constInt(Neurons), 1, "neuron");
    Value *Row = B.mul(Ln.indVar(), B.constInt(InputLen));
    LoopBuilder Lk(B, B.constInt(0), B.constInt(InputLen), 1, "dot");
    Value *Acc = Lk.carried(B.constFloat(0.0));
    Value *Wv = B.loadElem(Wt, B.add(Row, Lk.indVar()), MemKind::Float64);
    Value *Iv = B.loadElem(In, Lk.indVar(), MemKind::Float64);
    Lk.setNext(Acc, B.fadd(Acc, B.fmul(Wv, Iv)));
    Lk.finish();
    B.storeElem(Lk.exitValue(Acc), Act, Ln.indVar(), MemKind::Float64);
    Ln.finish();
  }
  // Winner-take-all (branchy argmax).
  Value *Winner;
  {
    LoopBuilder Lw(B, B.constInt(0), B.constInt(Neurons), 1, "wta");
    Value *BestIdx = Lw.carried(B.constInt(0));
    Value *BestVal = Lw.carried(B.constFloat(-1.0e30));
    Value *V = B.loadElem(Act, Lw.indVar(), MemKind::Float64);
    Value *Better = B.fcmp(CmpPred::GT, V, BestVal);
    Lw.setNext(BestVal, B.select(Better, V, BestVal));
    Lw.setNext(BestIdx, B.select(Better, Lw.indVar(), BestIdx));
    Lw.finish();
    Winner = Lw.exitValue(BestIdx);
  }
  // Blend the winner's weights toward the input (second hot FP loop).
  {
    Value *Row = B.mul(Winner, B.constInt(InputLen));
    LoopBuilder Lu(B, B.constInt(0), B.constInt(InputLen), 1, "learn");
    Value *Wv = B.loadElem(Wt, B.add(Row, Lu.indVar()), MemKind::Float64);
    Value *Iv = B.loadElem(In, Lu.indVar(), MemKind::Float64);
    Value *NewW = B.fadd(B.fmul(Wv, B.constFloat(0.9)),
                         B.fmul(Iv, B.constFloat(0.1)));
    B.storeElem(NewW, Wt, B.add(Row, Lu.indVar()), MemKind::Float64);
    Lu.finish();
  }
  // F2 feedback: normalize the winner row (norm pass + scale pass), then
  // apply a vigilance-style contrast pass to the input. Three more tight
  // FP loops per epoch; with unrolling enabled they replicate and the
  // epoch cycles between them, so the unrolled-code footprint vs the
  // instruction cache becomes the interaction Figure 3 studies.
  {
    Value *Row = B.mul(Winner, B.constInt(InputLen));
    LoopBuilder Ln(B, B.constInt(0), B.constInt(InputLen), 1, "norm");
    Value *Acc = Ln.carried(B.constFloat(1.0e-9));
    Value *Wv = B.loadElem(Wt, B.add(Row, Ln.indVar()), MemKind::Float64);
    Ln.setNext(Acc, B.fadd(Acc, B.fmul(Wv, Wv)));
    Ln.finish();
    Value *Norm = Ln.exitValue(Acc);
    Value *Scale = B.fdiv(B.constFloat(30.0),
                          B.fadd(Norm, B.constFloat(25.0)));

    LoopBuilder Lsc(B, B.constInt(0), B.constInt(InputLen), 1, "rescale");
    Value *Wv2 = B.loadElem(Wt, B.add(Row, Lsc.indVar()), MemKind::Float64);
    Value *Scaled = B.fadd(B.fmul(Wv2, B.constFloat(0.98)),
                           B.fmul(Wv2, B.fmul(Scale,
                                              B.constFloat(0.02))));
    B.storeElem(Scaled, Wt, B.add(Row, Lsc.indVar()), MemKind::Float64);
    Lsc.finish();

    LoopBuilder Lv(B, B.constInt(0), B.constInt(InputLen), 1, "vigilance");
    Value *Iv = B.loadElem(In, Lv.indVar(), MemKind::Float64);
    Value *Wv3 = B.loadElem(Wt, B.add(Row, Lv.indVar()), MemKind::Float64);
    Value *Diff = B.fsub(Iv, Wv3);
    Value *Contrast = B.fadd(Iv, B.fmul(Diff, B.constFloat(0.01)));
    B.storeElem(Contrast, In, Lv.indVar(), MemKind::Float64);
    Lv.finish();
  }
  // Perturb the input so later epochs pick different winners.
  {
    LoopBuilder Lp(B, B.constInt(0), B.constInt(InputLen), 13, "perturb");
    Value *Iv = B.loadElem(In, Lp.indVar(), MemKind::Float64);
    B.storeElem(B.fadd(Iv, B.constFloat(0.003)), In, Lp.indVar(),
                MemKind::Float64);
    Lp.finish();
  }
  Le.setNext(Score0, B.add(Score0, B.add(Winner, B.constInt(1))));
  Le.finish();

  // Checksum over final activations.
  LoopBuilder Ls(B, B.constInt(0), B.constInt(Neurons), 1, "csum");
  Value *Acc = Ls.carried(B.constFloat(0.0));
  Ls.setNext(Acc, B.fadd(Acc, B.loadElem(Act, Ls.indVar(),
                                         MemKind::Float64)));
  Ls.finish();
  Value *Result = B.add(Le.exitValue(Score0),
                        B.fpToSi(B.fmul(Ls.exitValue(Acc),
                                        B.constFloat(100.0))));
  B.emit(Result);
  B.ret(Result);
  return M;
}
