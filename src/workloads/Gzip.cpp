//===- workloads/Gzip.cpp - LZ77-style compression archetype -------------------===//
//
// Stands in for 164.gzip: a hash-chain LZ match search over a byte buffer
// of synthetically compressible data. The hot loop does byte loads, a hash
// computation (helper function -> inlining target), a hash-table probe, a
// data-dependent match/literal branch and a fixed-width match-length scan
// (counted inner loop -> unrolling target).
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadLib.h"
#include "workloads/Workloads.h"

using namespace msem;

std::unique_ptr<Module> msem::buildGzip(InputSet Set) {
  int64_t N = 0;
  switch (Set) {
  case InputSet::Test:
    N = 12 * 1024;
    break;
  case InputSet::Train:
    N = 72 * 1024;
    break;
  case InputSet::Ref:
    N = 192 * 1024;
    break;
  }
  const int64_t HashBits = 13;
  const int64_t HashSize = 1 << HashBits;
  const int64_t Window = 16 * 1024;

  auto M = std::make_unique<Module>("gzip");
  GlobalVariable *Input =
      M->createGlobal("input", static_cast<uint64_t>(N));
  GlobalVariable *Head =
      M->createGlobal("head", static_cast<uint64_t>(HashSize) * 4);
  LcgStream Lcg(*M, "rng", 0x67A1Fu + static_cast<uint64_t>(N));

  // hash3(b0, b1, b2) = ((b0*33 + b1)*33 + b2) & (HashSize-1)
  Function *Hash3 = M->createFunction(
      "hash3", Type::I64, {Type::I64, Type::I64, Type::I64},
      {"b0", "b1", "b2"});
  {
    IRBuilder B(*M);
    B.setInsertPoint(Hash3->createBlock("entry"));
    Value *H = B.mul(Hash3->arg(0), B.constInt(33));
    H = B.add(H, Hash3->arg(1));
    H = B.mul(H, B.constInt(33));
    H = B.add(H, Hash3->arg(2));
    B.ret(B.andOp(H, B.constInt(HashSize - 1)));
  }

  // matchLen8(p1, p2): length of the common prefix of two 8-byte regions,
  // computed branch-free with the prefix-product trick (unrollable).
  Function *MatchLen = M->createFunction("match_len8", Type::I64,
                                         {Type::Ptr, Type::Ptr},
                                         {"p1", "p2"});
  {
    IRBuilder B(*M);
    B.setInsertPoint(MatchLen->createBlock("entry"));
    LoopBuilder L(B, B.constInt(0), B.constInt(8), 1, "scan");
    Value *Len = L.carried(B.constInt(0));
    Value *Prefix = L.carried(B.constInt(1));
    Value *A = B.load(B.ptrAdd(MatchLen->arg(0), L.indVar()), MemKind::Int8);
    Value *Bb = B.load(B.ptrAdd(MatchLen->arg(1), L.indVar()), MemKind::Int8);
    Value *Eq = B.icmp(CmpPred::EQ, A, Bb);
    Value *NewPrefix = B.mul(Prefix, Eq);
    L.setNext(Prefix, NewPrefix);
    L.setNext(Len, B.add(Len, NewPrefix));
    L.finish();
    B.ret(L.exitValue(Len));
  }

  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));

  // Generate compressible input: ~60% of bytes repeat their predecessor.
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(N), 1, "gen");
    Value *Prev = L.carried(B.constInt(65));
    Value *R = Lcg.nextBelow(B, 32);
    Value *Repeat = B.icmp(CmpPred::LT, R, B.constInt(19));
    Value *Byte = B.select(Repeat, Prev, B.add(R, B.constInt(48)));
    B.storeElem(Byte, Input, L.indVar(), MemKind::Int8);
    L.setNext(Prev, Byte);
    L.finish();
  }

  // Deflate-style cover loop.
  LoopBuilder L(B, B.constInt(0), B.constInt(N - 8), 1, "deflate");
  Value *Csum = L.carried(B.constInt(0));
  Value *I = L.indVar();
  Value *B0 = B.loadElem(Input, I, MemKind::Int8);
  Value *B1 = B.loadElem(Input, B.add(I, B.constInt(1)), MemKind::Int8);
  Value *B2 = B.loadElem(Input, B.add(I, B.constInt(2)), MemKind::Int8);
  Value *H = B.call(Hash3, {B0, B1, B2});
  Value *Cand = B.loadElem(Head, H, MemKind::Int32); // Position + 1, 0=none.
  B.storeElem(B.add(I, B.constInt(1)), Head, H, MemKind::Int32);

  Value *CandPos = B.sub(Cand, B.constInt(1));
  Value *Dist = B.sub(I, CandPos);
  Value *HasCand = B.icmp(CmpPred::GT, Cand, B.constInt(0));
  Value *InWindow = B.icmp(CmpPred::LE, Dist, B.constInt(Window));
  Value *Fresh = B.icmp(CmpPred::GT, Dist, B.constInt(0));
  Value *TryMatch = B.andOp(B.andOp(HasCand, InWindow), Fresh);

  BasicBlock *MatchBB = Main->createBlock("match");
  BasicBlock *LiteralBB = Main->createBlock("literal");
  BasicBlock *Merge = Main->createBlock("cont");
  B.br(TryMatch, MatchBB, LiteralBB);

  B.setInsertPoint(MatchBB);
  Value *P1 = B.elemPtr(Input, I, MemKind::Int8);
  Value *P2 = B.elemPtr(Input, CandPos, MemKind::Int8);
  Value *Len = B.call(MatchLen, {P1, P2});
  Value *MatchScore = B.add(B.mul(Len, B.constInt(3)), B.constInt(1));
  B.jmp(Merge);

  B.setInsertPoint(LiteralBB);
  Value *LitScore = B.andOp(B0, B.constInt(255));
  B.jmp(Merge);

  B.setInsertPoint(Merge);
  Instruction *Score = B.phi(Type::I64);
  Score->addPhiIncoming(MatchScore, MatchBB);
  Score->addPhiIncoming(LitScore, LiteralBB);
  L.setNext(Csum, B.add(Csum, Score));
  L.finish();

  Value *Result = B.rem(L.exitValue(Csum), B.constInt(1000000007));
  B.emit(Result);
  B.ret(Result);
  return M;
}
