//===- workloads/Mcf.cpp - Pointer-chasing archetype ------------------------------===//
//
// Stands in for 181.mcf: network-simplex-style traversal of a node pool
// far larger than the L1 cache (multi-MB at ref scale). The hot loop
// chases pseudo-random successor indices -- every access is a likely
// cache miss, so L2 capacity and memory latency dominate, exactly the
// signature the paper's Table 4 reports for mcf.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadLib.h"
#include "workloads/Workloads.h"

using namespace msem;

std::unique_ptr<Module> msem::buildMcf(InputSet Set) {
  int64_t Nodes = 0, Chains = 0, Steps = 0;
  switch (Set) {
  case InputSet::Test:
    Nodes = 16 * 1024; // 256KB pool.
    Chains = 10;
    Steps = 2500;
    break;
  case InputSet::Train:
    Nodes = 96 * 1024; // 1.5MB pool.
    Chains = 40;
    Steps = 4500;
    break;
  case InputSet::Ref:
    Nodes = 320 * 1024; // 5MB pool.
    Chains = 64;
    Steps = 7000;
    break;
  }

  auto M = std::make_unique<Module>("mcf");
  GlobalVariable *Next =
      M->createGlobal("next", static_cast<uint64_t>(Nodes) * 4);
  GlobalVariable *Cost =
      M->createGlobal("cost", static_cast<uint64_t>(Nodes) * 4);
  GlobalVariable *Flow =
      M->createGlobal("flow", static_cast<uint64_t>(Nodes) * 8);
  LcgStream Lcg(*M, "rng", 0x3C0FFEEull + static_cast<uint64_t>(Nodes));

  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));

  {
    LoopBuilder L(B, B.constInt(0), B.constInt(Nodes), 1, "init");
    B.storeElem(Lcg.nextBelow(B, Nodes), Next, L.indVar(), MemKind::Int32);
    B.storeElem(Lcg.nextBelow(B, 100), Cost, L.indVar(), MemKind::Int32);
    B.storeElem(B.constInt(0), Flow, L.indVar(), MemKind::Int64);
    L.finish();
  }

  LoopBuilder Lc(B, B.constInt(0), B.constInt(Chains), 1, "chain");
  Value *Total0 = Lc.carried(B.constInt(0));
  Value *Start = B.rem(B.mul(Lc.indVar(), B.constInt(7919)),
                       B.constInt(Nodes));

  LoopBuilder Ls(B, B.constInt(0), B.constInt(Steps), 1, "chase");
  Value *Cur = Ls.carried(Start);
  Value *Total = Ls.carried(Total0);
  Value *Nx = B.loadElem(Next, Cur, MemKind::Int32);
  Value *C = B.loadElem(Cost, Cur, MemKind::Int32);
  Value *NewTotal = B.add(Total, C);

  // Augment flow along odd-cost arcs (data-dependent branch + RMW store).
  Value *Odd = B.andOp(C, B.constInt(1));
  BasicBlock *AugBB = Main->createBlock("augment");
  BasicBlock *SkipBB = Main->createBlock("noaug");
  BasicBlock *Merge = Main->createBlock("step");
  B.br(Odd, AugBB, SkipBB);
  B.setInsertPoint(AugBB);
  Value *F = B.loadElem(Flow, Cur, MemKind::Int64);
  B.storeElem(B.add(F, B.constInt(1)), Flow, Cur, MemKind::Int64);
  B.jmp(Merge);
  B.setInsertPoint(SkipBB);
  B.jmp(Merge);
  B.setInsertPoint(Merge);

  Ls.setNext(Cur, Nx);
  Ls.setNext(Total, NewTotal);
  Ls.finish();
  Lc.setNext(Total0, Ls.exitValue(Total));
  Lc.finish();

  Value *Result = B.rem(Lc.exitValue(Total0), B.constInt(1000000007));
  B.emit(Result);
  B.ret(Result);
  return M;
}
