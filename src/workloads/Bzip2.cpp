//===- workloads/Bzip2.cpp - Block-sorting archetype ------------------------------===//
//
// Stands in for 256.bzip2: the block-sorting phase as a recursive
// quicksort (with an insertion-sort base case built from a hand-rolled
// while loop -- heavily data-dependent branches, the classic
// branch-predictor stressor), followed by histogram and run-length
// checksum passes.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadLib.h"
#include "workloads/Workloads.h"

using namespace msem;

std::unique_ptr<Module> msem::buildBzip2(InputSet Set) {
  int64_t N = 0;
  switch (Set) {
  case InputSet::Test:
    N = 3000;
    break;
  case InputSet::Train:
    N = 15000;
    break;
  case InputSet::Ref:
    N = 42000;
    break;
  }

  auto M = std::make_unique<Module>("bzip2");
  GlobalVariable *Data =
      M->createGlobal("data", static_cast<uint64_t>(N) * 4);
  GlobalVariable *Hist = M->createGlobal("hist", 256 * 8);
  LcgStream Lcg(*M, "rng", 0xB21Bull + static_cast<uint64_t>(N));

  // qsort(lo, hi): in-place quicksort of data[lo..hi] (inclusive).
  Function *Qsort = M->createFunction("qsort_range", Type::Void,
                                      {Type::I64, Type::I64}, {"lo", "hi"});
  {
    IRBuilder B(*M);
    Value *Lo = Qsort->arg(0);
    Value *Hi = Qsort->arg(1);
    BasicBlock *Entry = Qsort->createBlock("entry");
    BasicBlock *Small = Qsort->createBlock("insertion");
    BasicBlock *Large = Qsort->createBlock("partition");
    B.setInsertPoint(Entry);
    Value *Span = B.sub(Hi, Lo);
    B.br(B.icmp(CmpPred::LT, Span, B.constInt(12)), Small, Large);

    // --- Insertion sort base case --------------------------------------
    B.setInsertPoint(Small);
    LoopBuilder Li(B, B.add(Lo, B.constInt(1)), B.add(Hi, B.constInt(1)),
                   1, "ins");
    {
      Value *I = Li.indVar();
      Value *V = B.loadElem(Data, I, MemKind::Int32);
      // Hand-rolled sift-down while loop:
      //   j = i; while (j > lo && data[j-1] > v) { data[j]=data[j-1]; --j; }
      BasicBlock *Pre = B.insertBlock();
      BasicBlock *WhileHead = Qsort->createBlock("sift.head");
      BasicBlock *CheckPrev = Qsort->createBlock("sift.check");
      BasicBlock *WhileBody = Qsort->createBlock("sift.body");
      BasicBlock *WhileExit = Qsort->createBlock("sift.exit");
      B.jmp(WhileHead);

      B.setInsertPoint(WhileHead);
      Instruction *J = B.phi(Type::I64);
      J->addPhiIncoming(I, Pre);
      Value *CanMove = B.icmp(CmpPred::GT, J, Lo);
      B.br(CanMove, CheckPrev, WhileExit);

      B.setInsertPoint(CheckPrev);
      Value *Prev =
          B.loadElem(Data, B.sub(J, B.constInt(1)), MemKind::Int32);
      Value *Bigger = B.icmp(CmpPred::GT, Prev, V);
      B.br(Bigger, WhileBody, WhileExit);

      B.setInsertPoint(WhileBody);
      B.storeElem(Prev, Data, J, MemKind::Int32);
      Value *JNext = B.sub(J, B.constInt(1));
      B.jmp(WhileHead);
      J->addPhiIncoming(JNext, WhileBody);

      B.setInsertPoint(WhileExit);
      B.storeElem(V, Data, J, MemKind::Int32);
      Li.finish();
    }
    B.ret();

    // --- Partition + recurse --------------------------------------------
    B.setInsertPoint(Large);
    Value *Pivot = B.loadElem(Data, Hi, MemKind::Int32);
    LoopBuilder Lp(B, Lo, Hi, 1, "part");
    Value *Store = Lp.carried(Lo);
    {
      Value *J = Lp.indVar();
      Value *Dj = B.loadElem(Data, J, MemKind::Int32);
      Value *Le = B.icmp(CmpPred::LE, Dj, Pivot);
      BasicBlock *Swap = Qsort->createBlock("part.swap");
      BasicBlock *Keep = Qsort->createBlock("part.keep");
      BasicBlock *Merge = Qsort->createBlock("part.merge");
      B.br(Le, Swap, Keep);
      B.setInsertPoint(Swap);
      Value *Tmp = B.loadElem(Data, Store, MemKind::Int32);
      B.storeElem(Dj, Data, Store, MemKind::Int32);
      B.storeElem(Tmp, Data, J, MemKind::Int32);
      Value *StoreInc = B.add(Store, B.constInt(1));
      B.jmp(Merge);
      B.setInsertPoint(Keep);
      B.jmp(Merge);
      B.setInsertPoint(Merge);
      Instruction *StoreNew = B.phi(Type::I64);
      StoreNew->addPhiIncoming(StoreInc, Swap);
      StoreNew->addPhiIncoming(Store, Keep);
      Lp.setNext(Store, StoreNew);
      Lp.finish();
    }
    Value *P = Lp.exitValue(Store);
    // Swap the pivot into place.
    Value *AtP = B.loadElem(Data, P, MemKind::Int32);
    B.storeElem(Pivot, Data, P, MemKind::Int32);
    B.storeElem(AtP, Data, Hi, MemKind::Int32);
    // Recurse on both halves.
    B.call(Qsort, {Lo, B.sub(P, B.constInt(1))});
    B.call(Qsort, {B.add(P, B.constInt(1)), Hi});
    B.ret();
  }

  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));

  emitFillRandom(B, Lcg, Data, N, MemKind::Int32, 10000, "fill");
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(256), 1, "hclear");
    B.storeElem(B.constInt(0), Hist, L.indVar(), MemKind::Int64);
    L.finish();
  }
  B.call(Qsort, {B.constInt(0), B.constInt(N - 1)});

  // Verify sortedness (counts violations; must be zero) and histogram.
  LoopBuilder Lv(B, B.constInt(1), B.constInt(N), 1, "verify");
  Value *Bad = Lv.carried(B.constInt(0));
  Value *Cur = B.loadElem(Data, Lv.indVar(), MemKind::Int32);
  Value *Before =
      B.loadElem(Data, B.sub(Lv.indVar(), B.constInt(1)), MemKind::Int32);
  Lv.setNext(Bad, B.add(Bad, B.icmp(CmpPred::GT, Before, Cur)));
  Value *Bucket = B.rem(Cur, B.constInt(256));
  Value *H = B.loadElem(Hist, Bucket, MemKind::Int64);
  B.storeElem(B.add(H, B.constInt(1)), Hist, Bucket, MemKind::Int64);
  Lv.finish();

  // Run-length checksum over the sorted data.
  LoopBuilder Lr(B, B.constInt(1), B.constInt(N), 1, "rle");
  Value *Run = Lr.carried(B.constInt(0));
  Value *Sum = Lr.carried(B.constInt(0));
  Value *A = B.loadElem(Data, Lr.indVar(), MemKind::Int32);
  Value *Pv =
      B.loadElem(Data, B.sub(Lr.indVar(), B.constInt(1)), MemKind::Int32);
  Value *Same = B.icmp(CmpPred::EQ, A, Pv);
  Value *NewRun = B.select(Same, B.add(Run, B.constInt(1)), B.constInt(0));
  Lr.setNext(Run, NewRun);
  Lr.setNext(Sum, B.add(Sum, B.add(NewRun, A)));
  Lr.finish();

  // Fold in a histogram sample.
  LoopBuilder Lh(B, B.constInt(0), B.constInt(256), 1, "hsum");
  Value *HAcc = Lh.carried(B.constInt(0));
  Value *Hv = B.loadElem(Hist, Lh.indVar(), MemKind::Int64);
  Lh.setNext(HAcc, B.add(HAcc, B.mul(Hv, Lh.indVar())));
  Lh.finish();

  Value *Penalty = B.mul(Lv.exitValue(Bad), B.constInt(1 << 30));
  Value *Result = B.rem(
      B.add(B.add(Lr.exitValue(Sum), Lh.exitValue(HAcc)), Penalty),
      B.constInt(1000000007));
  B.emit(Result);
  B.ret(Result);
  return M;
}
