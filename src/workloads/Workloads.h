//===- workloads/Workloads.h - SPEC CPU2000 archetype programs ----*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seven benchmark programs standing in for the paper's SPEC CPU2000
/// selection. Each builder returns a verified IR module whose computational
/// archetype matches the original benchmark:
///
///   gzip    LZ77-style compression: hash-chain match search over bytes.
///   vpr     Grid routing: wavefront cost relaxation over a 2D maze.
///   mesa    FP rasterization: vertex transform + z-buffered span fill.
///   art     Neural network: dense FP matvec layers, winner-take-all.
///   mcf     Network simplex: pointer chasing over a multi-MB node pool.
///   vortex  Object store: call-heavy hash-table insert/lookup layers.
///   bzip2   Block sorting: recursive quicksort + histogram/RLE passes.
///
/// Input sets scale the dynamic instruction count: Test (unit tests),
/// Train (model building, as in the paper) and Ref (the evaluation run of
/// Table 7).
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_WORKLOADS_WORKLOADS_H
#define MSEM_WORKLOADS_WORKLOADS_H

#include "ir/Module.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace msem {

/// Input scale, mirroring SPEC's data sets.
enum class InputSet { Test, Train, Ref };

const char *inputSetName(InputSet Set);

/// Parses the inputSetName form back ("test"/"train"/"ref"). Returns
/// false on an unknown name, leaving \p Out untouched.
bool inputSetFromName(const std::string &Name, InputSet &Out);

/// Version tag of the workload definitions. Bump when any builder changes
/// observable code or data so that persisted response caches invalidate.
inline const char *workloadVersion() { return "v2"; }

/// One benchmark: metadata + builder.
struct WorkloadSpec {
  std::string Name;      ///< Short name, e.g. "gzip".
  std::string PaperName; ///< Paper's row label, e.g. "164.gzip-graphic".
  std::function<std::unique_ptr<Module>(InputSet)> Build;
};

/// All seven benchmarks, in the paper's Table 3 order.
const std::vector<WorkloadSpec> &allWorkloads();

/// Builds one benchmark by short name; asserts if unknown.
std::unique_ptr<Module> buildWorkload(const std::string &Name, InputSet Set);

// Individual builders (exposed for focused tests).
std::unique_ptr<Module> buildGzip(InputSet Set);
std::unique_ptr<Module> buildVpr(InputSet Set);
std::unique_ptr<Module> buildMesa(InputSet Set);
std::unique_ptr<Module> buildArt(InputSet Set);
std::unique_ptr<Module> buildMcf(InputSet Set);
std::unique_ptr<Module> buildVortex(InputSet Set);
std::unique_ptr<Module> buildBzip2(InputSet Set);

} // namespace msem

#endif // MSEM_WORKLOADS_WORKLOADS_H
