//===- workloads/WorkloadLib.h - Shared IR-building helpers -------*- C++ -*-===//
//
// Part of the MSEM project (CGO 2007 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers the workload builders share: a linear congruential generator
/// kept in a global (so deterministic pseudo-random data can be produced
/// *inside* the benchmark, like SPEC input parsing does), array fills and
/// branch-free min/max.
///
//===----------------------------------------------------------------------===//

#ifndef MSEM_WORKLOADS_WORKLOADLIB_H
#define MSEM_WORKLOADS_WORKLOADLIB_H

#include "ir/IRBuilder.h"
#include "ir/LoopBuilder.h"

namespace msem {

/// Deterministic pseudo-random stream held in an 8-byte global.
class LcgStream {
public:
  /// Creates the state global (named \p Name) seeded with \p Seed.
  LcgStream(Module &M, const std::string &Name, uint64_t Seed);

  /// Emits code advancing the state and yielding a non-negative i64.
  Value *next(IRBuilder &B);

  /// Emits code yielding a value in [0, Mod). \p Mod must be positive.
  Value *nextBelow(IRBuilder &B, int64_t Mod);

private:
  GlobalVariable *State;
};

/// Branch-free minimum of two i64 values.
Value *emitMin(IRBuilder &B, Value *A, Value *Bv);

/// Branch-free maximum of two i64 values.
Value *emitMax(IRBuilder &B, Value *A, Value *Bv);

/// Fills Arr[0..N) (element kind MK) with LCG values in [0, Mod).
void emitFillRandom(IRBuilder &B, LcgStream &Lcg, GlobalVariable *Arr,
                    int64_t N, MemKind MK, int64_t Mod,
                    const std::string &LoopName);

} // namespace msem

#endif // MSEM_WORKLOADS_WORKLOADLIB_H
