//===- workloads/Mesa.cpp - FP rasterization archetype ---------------------------===//
//
// Stands in for 177.mesa: frames of vertex transformation (4x4 matrix
// times vec4, with a fully-counted inner product loop -- the classic
// unrolling target), perspective division (FP divides) and a z-buffered
// point rasterizer with an FP depth-test branch.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadLib.h"
#include "workloads/Workloads.h"

using namespace msem;

std::unique_ptr<Module> msem::buildMesa(InputSet Set) {
  int64_t NumVerts = 0, Frames = 0, ZDim = 0;
  switch (Set) {
  case InputSet::Test:
    NumVerts = 500;
    Frames = 2;
    ZDim = 48;
    break;
  case InputSet::Train:
    NumVerts = 2200;
    Frames = 4;
    ZDim = 96;
    break;
  case InputSet::Ref:
    NumVerts = 5000;
    Frames = 7;
    ZDim = 144;
    break;
  }
  const int64_t ZCells = ZDim * ZDim;

  auto M = std::make_unique<Module>("mesa");
  GlobalVariable *Verts =
      M->createGlobal("verts", static_cast<uint64_t>(NumVerts) * 4 * 8);
  GlobalVariable *TVerts =
      M->createGlobal("tverts", static_cast<uint64_t>(NumVerts) * 4 * 8);
  GlobalVariable *Mat = M->createGlobal("matrix", 16 * 8);
  GlobalVariable *ZBuf =
      M->createGlobal("zbuf", static_cast<uint64_t>(ZCells) * 8);
  LcgStream Lcg(*M, "rng", 0x3E5Au + static_cast<uint64_t>(NumVerts));

  Function *Main = M->createFunction("main", Type::I64, {});
  IRBuilder B(*M);
  B.setInsertPoint(Main->createBlock("entry"));

  // Vertex soup in [-1, 1]^3 with w = 1 + small jitter.
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(NumVerts * 4), 1, "verts");
    Value *R = Lcg.nextBelow(B, 2000);
    Value *F = B.fmul(B.siToFp(B.sub(R, B.constInt(1000))),
                      B.constFloat(0.001));
    Value *IsW = B.icmp(CmpPred::EQ, B.andOp(L.indVar(), B.constInt(3)),
                        B.constInt(3));
    Value *V = B.select(IsW, B.fadd(B.constFloat(2.0), F), F);
    B.storeElem(V, Verts, L.indVar(), MemKind::Float64);
    L.finish();
  }
  // A perspective-ish matrix.
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(16), 1, "mat");
    Value *OnDiag = B.icmp(CmpPred::EQ, B.divS(L.indVar(), B.constInt(4)),
                           B.rem(L.indVar(), B.constInt(4)));
    Value *Jitter = B.fmul(B.siToFp(Lcg.nextBelow(B, 100)),
                           B.constFloat(0.002));
    Value *V = B.select(OnDiag, B.fadd(B.constFloat(1.0), Jitter), Jitter);
    B.storeElem(V, Mat, L.indVar(), MemKind::Float64);
    L.finish();
  }

  LoopBuilder Lf(B, B.constInt(0), B.constInt(Frames), 1, "frame");
  Value *Hits0 = Lf.carried(B.constInt(0));

  // Clear the z-buffer.
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(ZCells), 1, "clear");
    B.storeElem(B.constFloat(1.0e30), ZBuf, L.indVar(), MemKind::Float64);
    L.finish();
  }
  // Animate the matrix a little each frame.
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(16), 1, "anim");
    Value *V = B.loadElem(Mat, L.indVar(), MemKind::Float64);
    Value *NewV = B.fadd(B.fmul(V, B.constFloat(0.999)),
                         B.constFloat(0.0005));
    B.storeElem(NewV, Mat, L.indVar(), MemKind::Float64);
    L.finish();
  }
  // Transform: tvert[v][row] = sum_k mat[row*4+k] * vert[v][k].
  {
    LoopBuilder Lv(B, B.constInt(0), B.constInt(NumVerts), 1, "xform");
    Value *VBase = B.mul(Lv.indVar(), B.constInt(4));
    {
      LoopBuilder Lr(B, B.constInt(0), B.constInt(4), 1, "row");
      Value *RBase = B.mul(Lr.indVar(), B.constInt(4));
      LoopBuilder Lk(B, B.constInt(0), B.constInt(4), 1, "dotk");
      Value *Acc = Lk.carried(B.constFloat(0.0));
      Value *Mv = B.loadElem(Mat, B.add(RBase, Lk.indVar()),
                             MemKind::Float64);
      Value *Vv = B.loadElem(Verts, B.add(VBase, Lk.indVar()),
                             MemKind::Float64);
      Lk.setNext(Acc, B.fadd(Acc, B.fmul(Mv, Vv)));
      Lk.finish();
      B.storeElem(Lk.exitValue(Acc), TVerts, B.add(VBase, Lr.indVar()),
                  MemKind::Float64);
      Lr.finish();
    }
    Lv.finish();
  }
  // Rasterize points with a depth test.
  LoopBuilder Lv(B, B.constInt(0), B.constInt(NumVerts), 1, "raster");
  Value *Hits = Lv.carried(Hits0);
  Value *VBase = B.mul(Lv.indVar(), B.constInt(4));
  Value *Tx = B.loadElem(TVerts, VBase, MemKind::Float64);
  Value *Ty =
      B.loadElem(TVerts, B.add(VBase, B.constInt(1)), MemKind::Float64);
  Value *Tz =
      B.loadElem(TVerts, B.add(VBase, B.constInt(2)), MemKind::Float64);
  Value *Tw =
      B.loadElem(TVerts, B.add(VBase, B.constInt(3)), MemKind::Float64);
  Value *InvW = B.fdiv(B.constFloat(1.0), Tw);
  Value *Half = B.constFloat(static_cast<double>(ZDim) / 2.0);
  Value *Px = B.fpToSi(
      B.fadd(B.fmul(B.fmul(Tx, InvW), Half), Half));
  Value *Py = B.fpToSi(
      B.fadd(B.fmul(B.fmul(Ty, InvW), Half), Half));
  Value *Z = B.fmul(Tz, InvW);
  Value *CPx = emitMax(B, B.constInt(0), emitMin(B, Px, B.constInt(ZDim - 1)));
  Value *CPy = emitMax(B, B.constInt(0), emitMin(B, Py, B.constInt(ZDim - 1)));
  Value *Idx = B.add(B.mul(CPy, B.constInt(ZDim)), CPx);
  Value *OldZ = B.loadElem(ZBuf, Idx, MemKind::Float64);
  Value *Nearer = B.fcmp(CmpPred::LT, Z, OldZ);

  // Four distinct shading pipelines selected per vertex (flat, gouraud,
  // specular-ish, fog-ish): data-dependent dispatch over separate FP code
  // paths, giving mesa the large instruction working set of a real
  // rasterizer (the paper's Table 4 reports a large il1 effect for mesa).
  Value *Mode = B.andOp(Lv.indVar(), B.constInt(3));
  BasicBlock *Sh0 = Main->createBlock("shade.flat");
  BasicBlock *Sh1 = Main->createBlock("shade.gouraud");
  BasicBlock *Sh2 = Main->createBlock("shade.spec");
  BasicBlock *Sh3 = Main->createBlock("shade.fog");
  BasicBlock *ShMerge = Main->createBlock("shade.merge");
  BasicBlock *Lo2 = Main->createBlock("shade.lo");
  BasicBlock *Hi2 = Main->createBlock("shade.hi");
  B.br(B.icmp(CmpPred::LE, Mode, B.constInt(1)), Lo2, Hi2);
  B.setInsertPoint(Lo2);
  B.br(B.icmp(CmpPred::EQ, Mode, B.constInt(0)), Sh0, Sh1);
  B.setInsertPoint(Hi2);
  B.br(B.icmp(CmpPred::EQ, Mode, B.constInt(2)), Sh2, Sh3);

  auto Chain = [&](Value *Seed, double A, double Bc, double Cc) {
    Value *S = B.fmul(Seed, B.constFloat(A));
    S = B.fadd(S, B.constFloat(Bc));
    S = B.fmul(S, B.fadd(Tx, B.constFloat(Cc)));
    S = B.fadd(S, B.fmul(Ty, B.constFloat(A * 0.5)));
    S = B.fmul(S, B.fadd(S, B.constFloat(Bc * 0.25)));
    S = B.fadd(S, B.fmul(Tz, B.constFloat(Cc * 0.125)));
    S = B.fmul(S, B.constFloat(0.03125));
    return S;
  };
  B.setInsertPoint(Sh0);
  Value *C0 = Chain(Z, 0.50, 1.00, 0.25);
  B.jmp(ShMerge);
  B.setInsertPoint(Sh1);
  Value *C1 = Chain(Z, 0.75, 0.50, 0.75);
  B.jmp(ShMerge);
  B.setInsertPoint(Sh2);
  Value *C2 = Chain(Z, 1.25, 0.25, 1.25);
  B.jmp(ShMerge);
  B.setInsertPoint(Sh3);
  Value *C3 = Chain(Z, 0.25, 2.00, 0.50);
  B.jmp(ShMerge);
  B.setInsertPoint(ShMerge);
  Instruction *Color = B.phi(Type::F64);
  Color->addPhiIncoming(C0, Sh0);
  Color->addPhiIncoming(C1, Sh1);
  Color->addPhiIncoming(C2, Sh2);
  Color->addPhiIncoming(C3, Sh3);
  Value *ZShaded = B.fadd(Z, B.fmul(Color, B.constFloat(1e-12)));

  BasicBlock *WriteBB = Main->createBlock("zwrite");
  BasicBlock *KeepBB = Main->createBlock("zkeep");
  BasicBlock *Merge = Main->createBlock("zmerge");
  B.br(Nearer, WriteBB, KeepBB);
  B.setInsertPoint(WriteBB);
  B.storeElem(ZShaded, ZBuf, Idx, MemKind::Float64);
  Value *HitsInc = B.add(Hits, B.constInt(1));
  B.jmp(Merge);
  B.setInsertPoint(KeepBB);
  B.jmp(Merge);
  B.setInsertPoint(Merge);
  Instruction *HitsNew = B.phi(Type::I64);
  HitsNew->addPhiIncoming(HitsInc, WriteBB);
  HitsNew->addPhiIncoming(Hits, KeepBB);
  Lv.setNext(Hits, HitsNew);
  Lv.finish();
  Lf.setNext(Hits0, Lv.exitValue(Hits));
  Lf.finish();

  // Checksum: hit count plus a sampled z-buffer reduction.
  LoopBuilder Ls(B, B.constInt(0), B.constInt(ZCells), 17, "zsum");
  Value *ZAcc = Ls.carried(B.constFloat(0.0));
  Value *Zv = B.loadElem(ZBuf, Ls.indVar(), MemKind::Float64);
  Value *Zc = B.select(B.fcmp(CmpPred::LT, Zv, B.constFloat(1.0e29)), Zv,
                       B.constFloat(0.0));
  Ls.setNext(ZAcc, B.fadd(ZAcc, Zc));
  Ls.finish();
  Value *Result =
      B.add(Lf.exitValue(Hits0),
            B.fpToSi(B.fmul(Ls.exitValue(ZAcc), B.constFloat(1000.0))));
  B.emit(Result);
  B.ret(Result);
  return M;
}
