//===- workloads/Vortex.cpp - Object-store archetype ------------------------------===//
//
// Stands in for 255.vortex: a call-heavy object store. The main loop goes
// through several layers of small functions (key derivation, hashing,
// open-addressing probe, record validation) per operation, so call
// overhead and instruction-cache locality dominate -- the benchmark where
// -finline-functions pays or backfires depending on the icache, one of the
// interactions the paper's models discover.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadLib.h"
#include "workloads/Workloads.h"

#include "support/Format.h"

#include <functional>

using namespace msem;

std::unique_ptr<Module> msem::buildVortex(InputSet Set) {
  int64_t Records = 0, Lookups = 0;
  switch (Set) {
  case InputSet::Test:
    Records = 900;
    Lookups = 2500;
    break;
  case InputSet::Train:
    Records = 4000;
    Lookups = 12000;
    break;
  case InputSet::Ref:
    Records = 9000;
    Lookups = 30000;
    break;
  }
  const int64_t TableBits = 14;
  const int64_t TableSize = 1 << TableBits; // 16K slots.
  const int64_t ProbeLimit = 12;

  auto M = std::make_unique<Module>("vortex");
  GlobalVariable *Keys =
      M->createGlobal("keys", static_cast<uint64_t>(TableSize) * 8);
  GlobalVariable *Vals =
      M->createGlobal("vals", static_cast<uint64_t>(TableSize) * 8);
  LcgStream Lcg(*M, "rng", 0x707E1ull + static_cast<uint64_t>(Records));

  IRBuilder B(*M);

  // makeKey(i): a little arithmetic shuffle producing non-zero keys.
  Function *MakeKey =
      M->createFunction("make_key", Type::I64, {Type::I64}, {"i"});
  {
    B.setInsertPoint(MakeKey->createBlock("entry"));
    Value *K = B.add(B.mul(MakeKey->arg(0), B.constInt(2654435761LL)),
                     B.constInt(11));
    B.ret(B.orOp(B.andOp(K, B.constInt((1LL << 40) - 1)), B.constInt(1)));
  }

  // hashKey(k): multiplicative hash into the table.
  Function *HashKey =
      M->createFunction("hash_key", Type::I64, {Type::I64}, {"k"});
  {
    B.setInsertPoint(HashKey->createBlock("entry"));
    Value *H = B.mul(HashKey->arg(0), B.constInt(0x2545F4914F6CDD1DLL));
    B.ret(B.andOp(B.shr(H, B.constInt(24)),
                  B.constInt(TableSize - 1)));
  }

  // probe(k): open-addressing scan (bounded, branch-free accumulation)
  // returning the slot holding k or the first free slot.
  Function *Probe =
      M->createFunction("probe", Type::I64, {Type::I64}, {"k"});
  {
    B.setInsertPoint(Probe->createBlock("entry"));
    Value *H = B.call(HashKey, {Probe->arg(0)});
    LoopBuilder L(B, B.constInt(0), B.constInt(ProbeLimit), 1, "scan");
    Value *Slot = L.carried(H);
    Value *Done = L.carried(B.constInt(0));
    Value *Idx = B.andOp(B.add(H, L.indVar()), B.constInt(TableSize - 1));
    Value *Kv = B.loadElem(Keys, Idx, MemKind::Int64);
    Value *Free = B.icmp(CmpPred::EQ, Kv, B.constInt(0));
    Value *Match = B.icmp(CmpPred::EQ, Kv, Probe->arg(0));
    Value *Hit = B.orOp(Free, Match);
    Value *Take = B.andOp(B.xorOp(Done, B.constInt(1)), Hit);
    L.setNext(Slot, B.select(Take, Idx, Slot));
    L.setNext(Done, B.orOp(Done, Take));
    L.finish();
    B.ret(L.exitValue(Slot));
  }

  // Sixteen distinct validation routines, one per record class. Real
  // vortex touches a large instruction working set because each object
  // type has its own handling code; the data-dependent dispatch below
  // reproduces that: across queries the touched code set spans all
  // sixteen routines, stressing small instruction caches (and interacting
  // with -finline-functions, as the paper's Table 4 reports).
  std::vector<Function *> Validators;
  for (int V = 0; V < 32; ++V) {
    Function *F = M->createFunction(formatString("check_class%d", V), Type::I64,
                                    {Type::I64}, {"v"});
    B.setInsertPoint(F->createBlock("entry"));
    Value *X = F->arg(0);
    // A distinct straight-line arithmetic pipeline per class.
    int64_t C1 = 0x9E37 + 131 * V;
    int64_t C2 = 0x85EB + 17 * V;
    Value *T = B.xorOp(X, B.shr(X, B.constInt(7 + (V & 3))));
    T = B.add(B.mul(T, B.constInt(C1)), B.constInt(C2));
    T = B.xorOp(T, B.shr(T, B.constInt(11)));
    T = B.mul(T, B.constInt(C2 | 1));
    T = B.add(T, B.shl(B.andOp(T, B.constInt(0xFF)),
                       B.constInt(3 + (V & 7))));
    T = B.xorOp(T, B.shr(T, B.constInt(13)));
    T = B.add(B.mul(T, B.constInt(C1 ^ 0x5A5A)), B.constInt(V));
    T = B.xorOp(T, B.shr(T, B.constInt(9)));
    T = B.orOp(T, B.shl(B.andOp(T, B.constInt(0x3F)),
                        B.constInt(5 + (V & 1))));
    T = B.add(B.mul(T, B.constInt(C2 ^ 0x3C3C)), B.constInt(2 * V + 1));
    T = B.xorOp(T, B.shr(T, B.constInt(6 + (V & 3))));
    T = B.add(T, B.andOp(B.mul(T, B.constInt(C1 | 1)),
                         B.constInt(0xFFFF)));
    T = B.xorOp(T, B.shr(T, B.constInt(15)));
    B.ret(B.andOp(T, B.constInt(0xFFFFFF)));
    Validators.push_back(F);
  }

  // checkRecord(v): dispatches to the class validator via a binary tree
  // of branches on the value's low bits.
  Function *Check =
      M->createFunction("check_record", Type::I64, {Type::I64}, {"v"});
  {
    B.setInsertPoint(Check->createBlock("entry"));
    Value *V = Check->arg(0);
    Value *Class = B.andOp(B.shr(V, B.constInt(3)), B.constInt(31));
    // Binary dispatch tree: 5 levels of branches.
    BasicBlock *Ret = Check->createBlock("ret");
    B.setInsertPoint(Ret);
    Instruction *Result = B.phi(Type::I64);
    B.ret(Result);

    std::function<void(BasicBlock *, int, int)> Emit =
        [&](BasicBlock *BB, int Lo, int Hi) {
          B.setInsertPoint(BB);
          if (Lo == Hi) {
            Value *R = B.call(Validators[static_cast<size_t>(Lo)], {V});
            Result->addPhiIncoming(R, B.insertBlock());
            B.jmp(Ret);
            return;
          }
          int Mid = (Lo + Hi) / 2;
          BasicBlock *L = Check->createBlock(
              "d" + std::to_string(Lo) + "_" + std::to_string(Mid));
          BasicBlock *R = Check->createBlock(
              "d" + std::to_string(Mid + 1) + "_" + std::to_string(Hi));
          Value *Cond = B.icmp(CmpPred::LE, Class, B.constInt(Mid));
          B.br(Cond, L, R);
          Emit(L, Lo, Mid);
          Emit(R, Mid + 1, Hi);
        };
    BasicBlock *Root = Check->createBlock("dispatch");
    // Entry falls into the dispatch tree.
    B.setInsertPoint(Check->entry());
    B.jmp(Root);
    Emit(Root, 0, 31);
  }

  // insert(k, v): probe, then store key and accumulate the value.
  Function *Insert = M->createFunction("insert", Type::I64,
                                       {Type::I64, Type::I64}, {"k", "v"});
  {
    B.setInsertPoint(Insert->createBlock("entry"));
    Value *Idx = B.call(Probe, {Insert->arg(0)});
    B.storeElem(Insert->arg(0), Keys, Idx, MemKind::Int64);
    Value *Old = B.loadElem(Vals, Idx, MemKind::Int64);
    B.storeElem(B.add(Old, Insert->arg(1)), Vals, Idx, MemKind::Int64);
    B.ret(Idx);
  }

  // lookup(k): probe and return the value when the key matches.
  Function *Lookup =
      M->createFunction("lookup", Type::I64, {Type::I64}, {"k"});
  {
    B.setInsertPoint(Lookup->createBlock("entry"));
    Value *Idx = B.call(Probe, {Lookup->arg(0)});
    Value *Kv = B.loadElem(Keys, Idx, MemKind::Int64);
    Value *Vv = B.loadElem(Vals, Idx, MemKind::Int64);
    Value *Match = B.icmp(CmpPred::EQ, Kv, Lookup->arg(0));
    B.ret(B.select(Match, Vv, B.constInt(0)));
  }

  Function *Main = M->createFunction("main", Type::I64, {});
  B.setInsertPoint(Main->createBlock("entry"));

  // Build phase.
  {
    LoopBuilder L(B, B.constInt(0), B.constInt(Records), 1, "build");
    Value *K = B.call(MakeKey, {L.indVar()});
    Value *V = B.add(B.mul(L.indVar(), B.constInt(3)), B.constInt(7));
    B.call(Insert, {K, V});
    L.finish();
  }
  // Query phase: 70% hits, 30% misses.
  LoopBuilder L(B, B.constInt(0), B.constInt(Lookups), 1, "query");
  Value *Acc = L.carried(B.constInt(0));
  Value *R = Lcg.nextBelow(B, 10);
  Value *HitId = Lcg.nextBelow(B, Records);
  Value *MissId = B.add(Lcg.nextBelow(B, Records), B.constInt(Records * 4));
  Value *Id = B.select(B.icmp(CmpPred::LT, R, B.constInt(7)), HitId,
                       MissId);
  Value *K = B.call(MakeKey, {Id});
  Value *V = B.call(Lookup, {K});
  Value *Checked = B.call(Check, {V});
  L.setNext(Acc, B.add(Acc, Checked));
  L.finish();

  Value *Result = B.rem(L.exitValue(Acc), B.constInt(1000000007));
  B.emit(Result);
  B.ret(Result);
  return M;
}
